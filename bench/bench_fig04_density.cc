/**
 * @file
 * Figure 4 + Table 6: D16 relative code density.
 *
 * Prints per-benchmark static sizes (bytes of stripped binary: text +
 * data, paper §3.1) for D16 and the four DLXe compiler variants, plus
 * the paper's headline: the DLXe/D16 size ratio per program and its
 * suite average (paper: ~1.5x; Table 6 averages 1.62/1.61/1.57/1.53
 * over the restricted variants).
 */

#include "common.hh"

#include "analysis/analysis.hh"
#include "verify/diag.hh"

using namespace d16bench;

namespace
{

/**
 * Cross-check the figure's inputs against the static binary analyzer:
 * rebuild each image, recover its CFG, and require the analyzer's
 * density accounting (decoded sites x width + pools + data) to equal
 * the measured sizeBytes *exactly*. A mismatch means the figure is
 * built on numbers the instruction stream does not support.
 */
int
staticCrossCheck(
    const std::vector<std::pair<std::string, CompileOptions>> &variants)
{
    int checked = 0;
    for (const Workload &w : workloadSuite()) {
        for (const auto &[name, opts] : variants) {
            const assem::Image img = core::build(w.source, opts);
            verify::DiagEngine diags;
            const analysis::AnalysisResult r = analysis::analyzeImage(
                img, diags, analysis::Abi::from(opts));
            const uint32_t measured = measure(w.name, opts).run.sizeBytes;
            if (r.staticBytes != measured || diags.failures()) {
                fatal("fig04 static cross-check failed for ", w.name, "/",
                      opts.name(), ": analyzer ", r.staticBytes,
                      " bytes vs measured ", measured, " (",
                      diags.failures(), " findings)");
            }
            ++checked;
        }
    }
    return checked;
}

} // namespace

int
main()
{
    header("Figure 4 / Table 6: code size and relative density",
           "Bunda et al. 1993, Fig. 4 and Table 6");

    const auto variants = allVariants();
    std::vector<JobSpec> plan;
    for (const Workload &w : workloadSuite())
        for (const auto &[name, opts] : variants)
            plan.push_back(JobSpec::base(w.name, opts));
    prefetch(std::move(plan));

    Table t({"Program", "D16/16/2", "DLXe/16/2", "DLXe/16/3",
             "DLXe/32/2", "DLXe/32/3", "density DLXe/D16"});
    std::vector<double> ratioSum(variants.size(), 0.0);
    int n = 0;

    for (const Workload &w : workloadSuite()) {
        std::vector<uint32_t> sizes;
        for (const auto &[name, opts] : variants)
            sizes.push_back(measure(w.name, opts).run.sizeBytes);
        for (size_t v = 0; v < variants.size(); ++v)
            ratioSum[v] += static_cast<double>(sizes[v]) / sizes[0];
        ++n;
        t.addRow({w.name, std::to_string(sizes[0]),
                  std::to_string(sizes[1]), std::to_string(sizes[2]),
                  std::to_string(sizes[3]), std::to_string(sizes[4]),
                  ratio(sizes[4], sizes[0])});
    }
    t.addRow({"(relative density avg)", "1.00",
              fixed(ratioSum[1] / n, 2), fixed(ratioSum[2] / n, 2),
              fixed(ratioSum[3] / n, 2), fixed(ratioSum[4] / n, 2),
              ""});
    t.print(std::cout);

    std::cout << "\nPaper Table 6 averages: D16=1.00, DLXe/16/2=1.62, "
                 "DLXe/16/3=1.61, DLXe/32/2=1.57, DLXe/32/3=1.53\n";

    const int checked = staticCrossCheck(variants);
    std::cout << "Static density cross-check: " << checked
              << " images match the binary CFG analyzer exactly\n";
    return 0;
}
