/**
 * @file
 * Shared helpers for the experiment-reproduction binaries in bench/.
 *
 * Each binary regenerates one or more of the paper's tables/figures:
 * it builds the benchmark suite for the machine variants involved,
 * simulates, applies the paper's §4 performance formulas, and prints
 * the same rows/series the paper reports. Absolute counts differ from
 * the paper (our workloads are reduced-scale miniatures); the
 * reproduction target is the shape: who wins, by what rough factor,
 * and where crossovers fall. EXPERIMENTS.md records paper-vs-measured
 * for every artifact.
 */

#ifndef D16SIM_BENCH_COMMON_HH
#define D16SIM_BENCH_COMMON_HH

#include <iostream>
#include <map>

#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace d16bench
{

using namespace d16sim;
using namespace d16sim::core;
using mc::CompileOptions;

/** The paper's five machine variants (Tables 5-7 column order). */
inline std::vector<std::pair<std::string, CompileOptions>>
allVariants()
{
    return {
        {"D16/16/2", CompileOptions::d16()},
        {"DLXe/16/2", CompileOptions::dlxe(16, false)},
        {"DLXe/16/3", CompileOptions::dlxe(16, true)},
        {"DLXe/32/2", CompileOptions::dlxe(32, false)},
        {"DLXe/32/3", CompileOptions::dlxe(32, true)},
    };
}

/** One workload built+run for one variant, memoized per process. */
struct Measurement
{
    assem::Image image;
    RunMeasurement run;
};

inline const Measurement &
measure(const std::string &workloadName, const CompileOptions &opts)
{
    static std::map<std::string, Measurement> cache;
    const std::string key = workloadName + "|" + opts.name();
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    Measurement m{build(core::workload(workloadName).source, opts), {}};
    m.run = run(m.image);
    return cache.emplace(key, std::move(m)).first->second;
}

inline std::string
ratio(double num, double den, int prec = 2)
{
    return fixed(den == 0 ? 0 : num / den, prec);
}

inline void
header(const std::string &what, const std::string &paperRef)
{
    std::cout << "\n=== " << what << " ===\n"
              << "(reproduces " << paperRef << ")\n\n";
}

} // namespace d16bench

#endif // D16SIM_BENCH_COMMON_HH
