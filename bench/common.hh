/**
 * @file
 * Shared helpers for the experiment-reproduction binaries in bench/.
 *
 * Each binary regenerates one or more of the paper's tables/figures:
 * it declares the slice of the experiment matrix it needs, lets the
 * sweep engine (src/core/sweep) build and simulate it in parallel,
 * then formats the same rows/series the paper reports. Absolute
 * counts differ from the paper (our workloads are reduced-scale
 * miniatures); the reproduction target is the shape: who wins, by
 * what rough factor, and where crossovers fall. EXPERIMENTS.md
 * records paper-vs-measured for every artifact.
 *
 * All measurements live in one process-wide thread-safe ResultStore
 * (the old function-local static-map memo here was unsynchronized and
 * handed out references across rehashing inserts — it is gone).
 * Thread count comes from D16SWEEP_JOBS, defaulting to the hardware
 * concurrency.
 */

#ifndef D16SIM_BENCH_COMMON_HH
#define D16SIM_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <thread>

#include "core/sweep/sweep.hh"
#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace d16bench
{

using namespace d16sim;
using namespace d16sim::core;
using mc::CompileOptions;
using sweep::JobResult;
using sweep::JobSpec;

/** The paper's five machine variants (Tables 5-7 column order). */
inline std::vector<std::pair<std::string, CompileOptions>>
allVariants()
{
    return sweep::paperVariants();
}

inline int
defaultJobs()
{
    if (const char *env = std::getenv("D16SWEEP_JOBS"))
        return std::max(1, std::atoi(env));
    return std::max(1u, std::thread::hardware_concurrency());
}

/** The process-wide result store every measurement lands in. */
inline sweep::ResultStore &
store()
{
    static sweep::ResultStore s;
    return s;
}

/** Run every listed job not already measured, in parallel. */
inline void
prefetch(std::vector<JobSpec> specs)
{
    sweep::SweepEngine engine(store(), defaultJobs());
    engine.add(std::move(specs));
    engine.run();
}

/** Fetch one job's result, computing it on demand if the driver did
 *  not prefetch it. */
inline const JobResult &
measureJob(const JobSpec &spec)
{
    const std::string key = sweep::jobKey(spec);
    if (const JobResult *r = store().find(key))
        return *r;
    return store().put(key, sweep::executeJob(spec));
}

/** One workload built+run for one variant (no probe). */
inline const JobResult &
measure(const std::string &workloadName, const CompileOptions &opts)
{
    return measureJob(JobSpec::base(workloadName, opts));
}

/** ... with the fetch-buffer probe on a `busBytes`-wide fetch path. */
inline const JobResult &
measureFetch(const std::string &workloadName, const CompileOptions &opts,
             uint32_t busBytes)
{
    return measureJob(JobSpec::fetch(workloadName, opts, busBytes));
}

/** ... with split I/D caches attached. */
inline const JobResult &
measureCache(const std::string &workloadName, const CompileOptions &opts,
             const mem::CacheConfig &icache, const mem::CacheConfig &dcache)
{
    return measureJob(JobSpec::cache(workloadName, opts, icache, dcache));
}

/** ... with the immediate-width classifier (paper Table 4). */
inline const JobResult &
measureImm(const std::string &workloadName, const CompileOptions &opts)
{
    return measureJob(JobSpec::imm(workloadName, opts));
}

inline std::string
ratio(double num, double den, int prec = 2)
{
    return fixed(den == 0 ? 0 : num / den, prec);
}

inline void
header(const std::string &what, const std::string &paperRef)
{
    std::cout << "\n=== " << what << " ===\n"
              << "(reproduces " << paperRef << ")\n\n";
}

} // namespace d16bench

#endif // D16SIM_BENCH_COMMON_HH
