/**
 * @file
 * Figures 17-18 + Table 13: CPI vs miss penalty with 4K and 16K
 * split I/D caches, for the cache benchmarks.
 *
 * Cycles = IC + Interlocks + MissPenalty * (Imiss + Rmiss + Wmiss)
 * (paper Appendix A.3). D16 CPI is also reported normalized by the
 * DLXe instruction count. The paper's headline: with 4K caches D16
 * matches or beats DLXe despite its longer path (for assem it wins
 * outright because 4K captures the D16 working set but not DLXe's).
 */

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figures 17-18 / Table 13: performance with caches",
           "Bunda et al. 1993, Figs. 17-18 and Table 13");

    const CompileOptions optD16 = CompileOptions::d16();
    const CompileOptions optDLXe = CompileOptions::dlxe();

    Table t13({"Program", "ISA", "insns", "interlock rate", "Ifetches",
               "Dreads", "Dwrites"});

    auto config = [](uint32_t kb) {
        mem::CacheConfig cfg;
        cfg.sizeBytes = kb * 1024;
        cfg.blockBytes = 32;
        cfg.subBlockBytes = 8;
        return cfg;
    };

    std::vector<JobSpec> plan;
    for (uint32_t kb : {4u, 16u})
        for (const std::string &name : cacheBenchmarkNames())
            for (const CompileOptions &opts : {optD16, optDLXe})
                plan.push_back(
                    JobSpec::cache(name, opts, config(kb), config(kb)));
    prefetch(std::move(plan));

    for (uint32_t kb : {4, 16}) {
        std::cout << "---- " << kb << "K instruction and data caches ----"
                  << "\n\n";
        for (const std::string &name : cacheBenchmarkNames()) {
            const mem::CacheConfig cfg = config(kb);
            const auto &jD = measureCache(name, optD16, cfg, cfg);
            const auto &jX = measureCache(name, optDLXe, cfg, cfg);
            const auto &mD = jD.run;
            const auto &mX = jX.run;

            if (kb == 4) {
                t13.addRow({name, "D16",
                            std::to_string(mD.stats.instructions),
                            fixed(mD.stats.interlockRate(), 3),
                            std::to_string(mD.stats.instructions),
                            std::to_string(mD.stats.loads),
                            std::to_string(mD.stats.stores)});
                t13.addRow({name, "DLXe",
                            std::to_string(mX.stats.instructions),
                            fixed(mX.stats.interlockRate(), 3),
                            std::to_string(mX.stats.instructions),
                            std::to_string(mX.stats.loads),
                            std::to_string(mX.stats.stores)});
            }

            Table t({"miss penalty", "DLXe CPI", "D16 CPI",
                     "D16 CPI (normalized)"});
            for (int penalty : {4, 8, 12, 16}) {
                const uint64_t cycD = cyclesWithCache(
                    mD.stats, penalty, jD.icache, jD.dcache);
                const uint64_t cycX = cyclesWithCache(
                    mX.stats, penalty, jX.icache, jX.dcache);
                t.addRow({std::to_string(penalty),
                          fixed(static_cast<double>(cycX) /
                                    mX.stats.instructions, 2),
                          fixed(static_cast<double>(cycD) /
                                    mD.stats.instructions, 2),
                          fixed(static_cast<double>(cycD) /
                                    mX.stats.instructions, 2)});
            }
            t.setTitle(name + " (path ratio D16/DLXe = " +
                       ratio(mD.stats.instructions,
                             mX.stats.instructions) + ")");
            t.print(std::cout);
            std::cout << "\n";
        }
    }

    t13.setTitle("Table 13: traffic and interlocks for the cache "
                 "benchmarks");
    t13.print(std::cout);
    return 0;
}
