/**
 * @file
 * Figures 6-7 + Table 3: effect of register-file size (16 vs 32).
 *
 * The DLXe compiler restricted to 16 registers is compared with full
 * 32-register DLXe, for static size, path length, and — Table 3 — the
 * increase in data traffic (loads+stores) relative to DLXe/32, for
 * both D16 and the restricted DLXe (paper: ~10% average penalty).
 */

#include <algorithm>

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figures 6-7 / Table 3: 16 vs 32 registers",
           "Bunda et al. 1993, Figs. 6-7 and Table 3");

    const CompileOptions d16 = CompileOptions::d16();
    const CompileOptions dlxe16 = CompileOptions::dlxe(16, true);
    const CompileOptions dlxe32 = CompileOptions::dlxe(32, true);

    std::vector<JobSpec> plan;
    for (const Workload &w : workloadSuite())
        for (const CompileOptions &opts : {d16, dlxe16, dlxe32})
            plan.push_back(JobSpec::base(w.name, opts));
    prefetch(std::move(plan));

    Table t({"Program", "size16/D16", "size32/D16", "path16/D16",
             "path32/D16", "dtraf D16 %", "dtraf DLXe-16 %"});
    double s16 = 0, s32 = 0, p16 = 0, p32 = 0, tD = 0, tX = 0;
    int n = 0, nTraffic = 0;

    for (const Workload &w : workloadSuite()) {
        const auto &mD = measure(w.name, d16);
        const auto &m16 = measure(w.name, dlxe16);
        const auto &m32 = measure(w.name, dlxe32);
        const double base = mD.run.sizeBytes;
        const double pbase = mD.run.stats.instructions;
        const double traffic32 = m32.run.stats.memOps();
        // The percentage is meaningless for programs the 32-register
        // compiler runs almost entirely in registers.
        const bool trafficMeaningful =
            traffic32 > m32.run.stats.instructions / 200.0;
        std::string dDs = "-", dXs = "-";
        if (trafficMeaningful) {
            const double dD =
                100.0 * (mD.run.stats.memOps() - traffic32) / traffic32;
            const double dX =
                100.0 * (m16.run.stats.memOps() - traffic32) / traffic32;
            tD += dD;
            tX += dX;
            ++nTraffic;
            dDs = fixed(dD, 1);
            dXs = fixed(dX, 1);
        }
        s16 += m16.run.sizeBytes / base;
        s32 += m32.run.sizeBytes / base;
        p16 += m16.run.stats.instructions / pbase;
        p32 += m32.run.stats.instructions / pbase;
        ++n;
        t.addRow({w.name, ratio(m16.run.sizeBytes, base),
                  ratio(m32.run.sizeBytes, base),
                  ratio(m16.run.stats.instructions, pbase),
                  ratio(m32.run.stats.instructions, pbase), dDs, dXs});
    }
    t.addRow({"(average)", fixed(s16 / n, 2), fixed(s32 / n, 2),
              fixed(p16 / n, 2), fixed(p32 / n, 2),
              fixed(tD / std::max(1, nTraffic), 1),
              fixed(tX / std::max(1, nTraffic), 1)});
    t.print(std::cout);

    std::cout << "\nPaper Table 3: average data-traffic increase over "
                 "DLXe/32 is ~10.1% (D16) and ~9.0% (DLXe-16).\n";
    return 0;
}
