/**
 * @file
 * Figures 8-9: two-address vs three-address instructions.
 *
 * DLXe restricted to two operands (destination tied to the left
 * source) against normal three-address DLXe, at both register-file
 * sizes; the paper finds a small but measurable advantage for
 * three-address instructions.
 */

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figures 8-9: two-address vs three-address",
           "Bunda et al. 1993, Figs. 8-9");

    Table t({"Program", "size 16/2", "size 16/3", "size 32/2",
             "size 32/3", "path 16/2", "path 16/3", "path 32/2",
             "path 32/3"});
    double sizeSum[4] = {0, 0, 0, 0};
    double pathSum[4] = {0, 0, 0, 0};
    int n = 0;

    const CompileOptions variants[4] = {
        CompileOptions::dlxe(16, false), CompileOptions::dlxe(16, true),
        CompileOptions::dlxe(32, false), CompileOptions::dlxe(32, true)};

    std::vector<JobSpec> plan;
    for (const Workload &w : workloadSuite()) {
        plan.push_back(JobSpec::base(w.name, CompileOptions::d16()));
        for (const CompileOptions &opts : variants)
            plan.push_back(JobSpec::base(w.name, opts));
    }
    prefetch(std::move(plan));

    for (const Workload &w : workloadSuite()) {
        const auto &base = measure(w.name, CompileOptions::d16());
        const double bSize = base.run.sizeBytes;
        const double bPath = base.run.stats.instructions;
        std::vector<std::string> row = {w.name};
        double sizes[4], paths[4];
        for (int v = 0; v < 4; ++v) {
            const auto &m = measure(w.name, variants[v]);
            sizes[v] = m.run.sizeBytes / bSize;
            paths[v] = m.run.stats.instructions / bPath;
            sizeSum[v] += sizes[v];
            pathSum[v] += paths[v];
        }
        for (int v = 0; v < 4; ++v)
            row.push_back(fixed(sizes[v], 2));
        for (int v = 0; v < 4; ++v)
            row.push_back(fixed(paths[v], 2));
        t.addRow(std::move(row));
        ++n;
    }
    std::vector<std::string> avg = {"(average, D16=1.00)"};
    for (int v = 0; v < 4; ++v)
        avg.push_back(fixed(sizeSum[v] / n, 2));
    for (int v = 0; v < 4; ++v)
        avg.push_back(fixed(pathSum[v] / n, 2));
    t.addRow(std::move(avg));
    t.print(std::cout);

    std::cout << "\nPaper Table 5: size 1.62/1.61/1.57/1.53 and path "
                 "0.95/0.94/0.90/0.87 for 16/2, 16/3, 32/2, 32/3.\n";
    return 0;
}
