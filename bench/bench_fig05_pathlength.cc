/**
 * @file
 * Figure 5 + Table 7: DLXe path-length reduction relative to D16.
 *
 * Path length = total executed instructions. The paper's finding: the
 * DLXe speedup is far smaller than density predicts (Table 7 averages
 * 0.95/0.94/0.90/0.87 vs D16 = 1.00, i.e. ~15% at best).
 */

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figure 5 / Table 7: path length",
           "Bunda et al. 1993, Fig. 5 and Table 7");

    const auto variants = allVariants();
    std::vector<JobSpec> plan;
    for (const Workload &w : workloadSuite())
        for (const auto &[name, opts] : variants)
            plan.push_back(JobSpec::base(w.name, opts));
    prefetch(std::move(plan));

    Table t({"Program", "D16/16/2", "DLXe/16/2", "DLXe/16/3",
             "DLXe/32/2", "DLXe/32/3", "ratio DLXe/D16"});
    std::vector<double> ratioSum(variants.size(), 0.0);
    int n = 0;

    for (const Workload &w : workloadSuite()) {
        std::vector<uint64_t> paths;
        for (const auto &[name, opts] : variants)
            paths.push_back(measure(w.name, opts).run.stats.instructions);
        for (size_t v = 0; v < variants.size(); ++v)
            ratioSum[v] += static_cast<double>(paths[v]) / paths[0];
        ++n;
        t.addRow({w.name, std::to_string(paths[0]),
                  std::to_string(paths[1]), std::to_string(paths[2]),
                  std::to_string(paths[3]), std::to_string(paths[4]),
                  ratio(paths[4], paths[0])});
    }
    t.addRow({"(path length avg)", "1.00", fixed(ratioSum[1] / n, 2),
              fixed(ratioSum[2] / n, 2), fixed(ratioSum[3] / n, 2),
              fixed(ratioSum[4] / n, 2), ""});
    t.print(std::cout);

    std::cout << "\nPaper Table 7 averages: D16=1.00, DLXe/16/2=0.95, "
                 "DLXe/16/3=0.94, DLXe/32/2=0.90, DLXe/32/3=0.87\n";
    return 0;
}
