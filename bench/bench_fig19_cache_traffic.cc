/**
 * @file
 * Figure 19: instruction traffic (bus words per cycle) with an
 * instruction cache, cache sizes 1K-16K, miss penalty 4.
 *
 * Traffic = words moved between memory and the I-cache (fills +
 * prefetches). The paper's headline: regardless of program or hit
 * rate, D16 instruction traffic stays significantly below DLXe's.
 */

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figure 19: instruction traffic with an instruction cache",
           "Bunda et al. 1993, Fig. 19");

    const CompileOptions optD16 = CompileOptions::d16();
    const CompileOptions optDLXe = CompileOptions::dlxe();
    const int missPenalty = 4;

    auto config = [](uint32_t kb) {
        mem::CacheConfig cfg;
        cfg.sizeBytes = kb * 1024;
        cfg.blockBytes = 32;
        cfg.subBlockBytes = 8;
        return cfg;
    };

    std::vector<JobSpec> plan;
    for (const std::string &name : cacheBenchmarkNames())
        for (const CompileOptions &opts : {optD16, optDLXe})
            for (uint32_t kb : {1u, 2u, 4u, 8u, 16u})
                plan.push_back(
                    JobSpec::cache(name, opts, config(kb), config(kb)));
    prefetch(std::move(plan));

    for (const std::string &name : cacheBenchmarkNames()) {
        Table t({"cache", "D16 words/cycle", "DLXe words/cycle",
                 "ratio"});
        for (uint32_t kb : {1, 2, 4, 8, 16}) {
            const mem::CacheConfig cfg = config(kb);
            const auto &jD = measureCache(name, optD16, cfg, cfg);
            const auto &jX = measureCache(name, optDLXe, cfg, cfg);

            const uint64_t cycD = cyclesWithCache(
                jD.run.stats, missPenalty, jD.icache, jD.dcache);
            const uint64_t cycX = cyclesWithCache(
                jX.run.stats, missPenalty, jX.icache, jX.dcache);
            const double wpcD =
                static_cast<double>(jD.icache.wordsTransferred()) /
                cycD;
            const double wpcX =
                static_cast<double>(jX.icache.wordsTransferred()) /
                cycX;
            t.addRow({std::to_string(kb) + "K", fixed(wpcD, 4),
                      fixed(wpcX, 4),
                      wpcD > 0 ? fixed(wpcX / wpcD, 2) : "-"});
        }
        t.setTitle("Benchmark: " + name);
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Paper shape: D16 well below DLXe at every size.\n";
    return 0;
}
