/**
 * @file
 * Figure 19: instruction traffic (bus words per cycle) with an
 * instruction cache, cache sizes 1K-16K, miss penalty 4.
 *
 * Traffic = words moved between memory and the I-cache (fills +
 * prefetches). The paper's headline: regardless of program or hit
 * rate, D16 instruction traffic stays significantly below DLXe's.
 */

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figure 19: instruction traffic with an instruction cache",
           "Bunda et al. 1993, Fig. 19");

    const CompileOptions optD16 = CompileOptions::d16();
    const CompileOptions optDLXe = CompileOptions::dlxe();
    const int missPenalty = 4;

    for (const std::string &name : cacheBenchmarkNames()) {
        const auto imgD = build(core::workload(name).source, optD16);
        const auto imgX = build(core::workload(name).source, optDLXe);

        Table t({"cache", "D16 words/cycle", "DLXe words/cycle",
                 "ratio"});
        for (uint32_t kb : {1, 2, 4, 8, 16}) {
            mem::CacheConfig cfg;
            cfg.sizeBytes = kb * 1024;
            cfg.blockBytes = 32;
            cfg.subBlockBytes = 8;
            CacheProbe pd(cfg, cfg), px(cfg, cfg);
            const auto mD = run(imgD, {&pd});
            const auto mX = run(imgX, {&px});

            const uint64_t cycD = cyclesWithCache(
                mD.stats, missPenalty, pd.icache().stats(),
                pd.dcache().stats());
            const uint64_t cycX = cyclesWithCache(
                mX.stats, missPenalty, px.icache().stats(),
                px.dcache().stats());
            const double wpcD =
                static_cast<double>(
                    pd.icache().stats().wordsTransferred()) /
                cycD;
            const double wpcX =
                static_cast<double>(
                    px.icache().stats().wordsTransferred()) /
                cycX;
            t.addRow({std::to_string(kb) + "K", fixed(wpcD, 4),
                      fixed(wpcX, 4),
                      wpcD > 0 ? fixed(wpcX / wpcD, 2) : "-"});
        }
        t.setTitle("Benchmark: " + name);
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Paper shape: D16 well below DLXe at every size.\n";
    return 0;
}
