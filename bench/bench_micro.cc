/**
 * @file
 * Google-benchmark microbenchmarks of the library itself: codec
 * throughput, simulator speed, cache model, and full compile time.
 * (Not a paper artifact — tooling health for the repository.)
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hh"
#include "core/replay/replay.hh"
#include "core/replay/trace.hh"
#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "isa/codec.hh"
#include "mem/cache.hh"
#include "sim/machine.hh"
#include "sim/predecode.hh"

using namespace d16sim;

static void
BM_D16Decode(benchmark::State &state)
{
    // A representative valid mix; 0x17fe is LDC (0x1ffe, previously
    // listed here, is the *reserved* LDC form and decode fatals on it).
    const uint16_t words[] = {0x4a00, 0x8123, 0xa456, 0x2345,
                              0x6789, 0x0404, 0x17fe, 0xc123};
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            isa::d16Decode(words[i++ % std::size(words)]));
    }
}
BENCHMARK(BM_D16Decode);

static void
BM_DLXeDecode(benchmark::State &state)
{
    const uint32_t words[] = {0x00000000, 0x10440005, 0x80640008,
                              0x94220004, 0xa0600000, 0x04420007};
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            isa::dlxeDecode(words[i++ % std::size(words)]));
    }
}
BENCHMARK(BM_DLXeDecode);

static void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheConfig cfg;
    cfg.sizeBytes = 4096;
    mem::Cache cache(cfg);
    uint32_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.read(addr & 0xffff, 4));
        addr += 36;  // mix of hits and misses
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_CompileDhrystone(benchmark::State &state)
{
    const auto &w = core::workload("dhrystone");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::build(w.source, mc::CompileOptions::d16()));
    }
}
BENCHMARK(BM_CompileDhrystone)->Unit(benchmark::kMillisecond);

static void
BM_SimulateQueens(benchmark::State &state)
{
    const auto img = core::build(core::workload("queens").source,
                                 mc::CompileOptions::dlxe());
    for (auto _ : state) {
        sim::Machine m(img);
        m.run();
        benchmark::DoNotOptimize(m.stats().instructions);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(1639487));
}
BENCHMARK(BM_SimulateQueens)->Unit(benchmark::kMillisecond);

static void
BM_SimulateQueensPredecoded(benchmark::State &state)
{
    // The sweep engine's configuration: one decode table built up
    // front and shared by every run of the image.
    const auto img = core::build(core::workload("queens").source,
                                 mc::CompileOptions::dlxe());
    const auto text = std::make_shared<const sim::DecodedText>(img);
    for (auto _ : state) {
        sim::Machine m(img, {}, text);
        m.run();
        benchmark::DoNotOptimize(m.stats().instructions);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(1639487));
}
BENCHMARK(BM_SimulateQueensPredecoded)->Unit(benchmark::kMillisecond);

static void
BM_TraceCaptureQueens(benchmark::State &state)
{
    const auto img = core::build(core::workload("queens").source,
                                 mc::CompileOptions::dlxe());
    const auto text = std::make_shared<const sim::DecodedText>(img);
    for (auto _ : state) {
        const auto trace = core::replay::capture(img, text);
        benchmark::DoNotOptimize(trace.runs.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(1639487));
}
BENCHMARK(BM_TraceCaptureQueens)->Unit(benchmark::kMillisecond);

static void
BM_ReplayCacheQueens(benchmark::State &state)
{
    // One full cache evaluation from a recorded trace — the unit of
    // work d16sweep does per cache variant instead of re-simulating.
    const auto img = core::build(core::workload("queens").source,
                                 mc::CompileOptions::dlxe());
    const auto trace = core::replay::capture(img);
    mem::CacheConfig cfg;
    cfg.sizeBytes = 4096;
    cfg.blockBytes = 32;
    cfg.subBlockBytes = 8;
    for (auto _ : state) {
        const auto stats = core::replay::replayCache(trace, cfg, cfg);
        benchmark::DoNotOptimize(stats.first.misses());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(1639487));
}
BENCHMARK(BM_ReplayCacheQueens)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
