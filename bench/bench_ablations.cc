/**
 * @file
 * Extension ablations (not paper artifacts — design-choice probes the
 * paper's DESIGN.md calls out):
 *
 *  1. narrow-immediates DLXe: restrict only the immediate widths to
 *     D16's, isolating §3.3.3 from register count and operand count;
 *  2. instruction scheduling off: how much the delay-slot filler and
 *     load-delay scheduler buy on each machine;
 *  3. optimization off: the unoptimized-compiler baseline (sanity
 *     anchor for "measurements use optimizing compilers");
 *  4. D16 constant-pool pressure: pool loads as a fraction of loads.
 */

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Extension ablations", "DESIGN.md design-choice probes");

    // Everything the four ablations consume, sweepable in parallel.
    {
        std::vector<JobSpec> plan;
        CompileOptions narrow = CompileOptions::dlxe();
        narrow.narrowImmediates = true;
        for (const Workload &w : workloadSuite()) {
            plan.push_back(JobSpec::base(w.name, CompileOptions::d16()));
            plan.push_back(JobSpec::base(w.name, CompileOptions::dlxe()));
            plan.push_back(JobSpec::base(w.name, narrow));
            if (!w.cacheBenchmark) {
                for (const auto &base :
                     {CompileOptions::d16(), CompileOptions::dlxe()}) {
                    for (int lvl : {0, 1}) {
                        CompileOptions o = base;
                        o.optLevel = lvl;
                        plan.push_back(JobSpec::base(w.name, o));
                    }
                }
            }
        }
        prefetch(std::move(plan));
    }

    // 1. Narrow immediates.
    {
        Table t({"Program", "path DLXe", "path DLXe-narrowimm",
                 "penalty %"});
        double sum = 0;
        int n = 0;
        CompileOptions narrow = CompileOptions::dlxe();
        narrow.narrowImmediates = true;
        for (const Workload &w : workloadSuite()) {
            const auto &wide = measure(w.name, CompileOptions::dlxe());
            const auto &slim = measure(w.name, narrow);
            const double pct =
                100.0 *
                (static_cast<double>(slim.run.stats.instructions) /
                     wide.run.stats.instructions -
                 1.0);
            sum += pct;
            ++n;
            t.addRow({w.name,
                      std::to_string(wide.run.stats.instructions),
                      std::to_string(slim.run.stats.instructions),
                      fixed(pct, 1)});
        }
        t.setTitle("Ablation 1: D16-width immediates on DLXe "
                   "(isolates the immediate-field effect; paper "
                   "attributes ~10% to immediates+displacements)");
        t.addRow({"(average)", "", "", fixed(sum / n, 1)});
        t.print(std::cout);
        std::cout << "\n";
    }

    // 2. Scheduling off; 3. optimization off.
    {
        Table t({"Variant", "interlocks O2", "interlocks O1 (no sched)",
                 "path O2", "path O0"});
        for (const auto &base :
             {CompileOptions::d16(), CompileOptions::dlxe()}) {
            uint64_t il2 = 0, il1 = 0, p2 = 0, p0 = 0;
            for (const Workload &w : workloadSuite()) {
                if (w.cacheBenchmark)
                    continue;  // keep the sweep quick
                CompileOptions o1 = base, o0 = base;
                o1.optLevel = 1;
                o0.optLevel = 0;
                const auto &m2 = measure(w.name, base);
                const auto &m1 = measure(w.name, o1);
                const auto &m0 = measure(w.name, o0);
                il2 += m2.run.stats.interlocks();
                il1 += m1.run.stats.interlocks();
                p2 += m2.run.stats.instructions;
                p0 += m0.run.stats.instructions;
            }
            t.addRow({base.name(), std::to_string(il2),
                      std::to_string(il1), std::to_string(p2),
                      std::to_string(p0)});
        }
        t.setTitle("Ablations 2-3: scheduling and optimization "
                   "(suite totals, cache benchmarks excluded)");
        t.print(std::cout);
        std::cout << "\n";
    }

    // 4. D16 pool pressure: loads D16 vs DLXe split.
    {
        Table t({"Program", "D16 loads", "DLXe loads",
                 "extra D16 loads %"});
        double sum = 0;
        int n = 0;
        for (const Workload &w : workloadSuite()) {
            const auto &d = measure(w.name, CompileOptions::d16());
            const auto &x = measure(w.name, CompileOptions::dlxe());
            const double pct =
                100.0 * (static_cast<double>(d.run.stats.loads) /
                             x.run.stats.loads -
                         1.0);
            sum += pct;
            ++n;
            t.addRow({w.name, std::to_string(d.run.stats.loads),
                      std::to_string(x.run.stats.loads),
                      fixed(pct, 1)});
        }
        t.setTitle("Ablation 4: D16 extra loads (constant pools and "
                   "register-pressure spills)");
        t.addRow({"(average)", "", "", fixed(sum / n, 1)});
        t.print(std::cout);
    }
    return 0;
}
