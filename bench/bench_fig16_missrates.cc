/**
 * @file
 * Figure 16 + Tables 14-16: instruction (and data) cache miss rates
 * for the cache benchmarks (assem, ipl, latex), cache sizes 1K-16K.
 *
 * Caches are direct-mapped, 32-byte blocks with 8-byte sub-blocks,
 * wrap-around prefetch on read misses, no prefetch on writes
 * (paper §4.1.1 / Appendix A.3). Miss rates are per instruction for
 * the I-cache and per read/write for the D-cache, as in Tables 14-16.
 * The paper's headline: byte-for-byte D16 has roughly half the I-cache
 * miss rate of DLXe.
 */

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figure 16 / Tables 14-16: cache miss rates",
           "Bunda et al. 1993, Fig. 16 and Tables 14-16");

    const CompileOptions optD16 = CompileOptions::d16();
    const CompileOptions optDLXe = CompileOptions::dlxe();

    auto config = [](uint32_t kb, uint32_t block) {
        mem::CacheConfig cfg;
        cfg.sizeBytes = kb * 1024;
        cfg.blockBytes = block;
        cfg.subBlockBytes = std::min(block, 8u);
        return cfg;
    };

    std::vector<JobSpec> plan;
    for (const std::string &name : cacheBenchmarkNames())
        for (const CompileOptions &opts : {optD16, optDLXe})
            for (uint32_t kb : {1u, 2u, 4u, 8u, 16u})
                for (uint32_t block : {8u, 16u, 32u, 64u})
                    plan.push_back(JobSpec::cache(
                        name, opts, config(kb, block), config(kb, block)));
    prefetch(std::move(plan));

    for (const std::string &name : cacheBenchmarkNames()) {
        Table t({"cache", "block", "I D16", "I DLXe", "Dread D16",
                 "Dread DLXe", "Dwrite D16", "Dwrite DLXe"});
        for (uint32_t kb : {1, 2, 4, 8, 16}) {
            for (uint32_t block : {8u, 16u, 32u, 64u}) {
                const mem::CacheConfig cfg = config(kb, block);
                const auto &jD = measureCache(name, optD16, cfg, cfg);
                const auto &jX = measureCache(name, optDLXe, cfg, cfg);

                auto perInsn = [](const mem::CacheStats &c,
                                  uint64_t insns) {
                    return static_cast<double>(c.misses()) / insns;
                };
                t.addRow({std::to_string(kb) + "K",
                          std::to_string(block),
                          fixed(perInsn(jD.icache,
                                        jD.run.stats.instructions), 3),
                          fixed(perInsn(jX.icache,
                                        jX.run.stats.instructions), 3),
                          fixed(jD.dcache.readMissRate(), 3),
                          fixed(jX.dcache.readMissRate(), 3),
                          fixed(jD.dcache.writeMissRate(), 3),
                          fixed(jX.dcache.writeMissRate(), 3)});
            }
        }
        t.setTitle("Benchmark: " + name +
                   " (I-cache misses per instruction; D per ref)");
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Paper shape: D16 I-miss rates roughly half of DLXe "
                 "at each size; both fall steeply with cache size.\n";
    return 0;
}
