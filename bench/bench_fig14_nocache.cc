/**
 * @file
 * Figures 14-15 + Tables 11-12: cacheless performance vs memory wait
 * states, for 32-bit and 64-bit fetch buses.
 *
 * Cycles = IC + Interlocks + latency * (IRequests + DRequests); CPI is
 * normalized by the DLXe path length to factor out instruction-count
 * differences (paper §4). Also prints fetch-bus saturation
 * (fetches/cycle, Fig. 15) and the cycle-ratio tables (11-12). The
 * paper's headline: D16 wins under any nonzero wait state on a 32-bit
 * bus and roughly ties on a 64-bit bus.
 */

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figures 14-15 / Tables 11-12: cacheless CPI vs wait states",
           "Bunda et al. 1993, Figs. 14-15 and Tables 11-12");

    const CompileOptions optD16 = CompileOptions::d16();
    const CompileOptions optDLXe = CompileOptions::dlxe();

    std::vector<JobSpec> plan;
    for (const Workload &w : workloadSuite())
        for (const CompileOptions &opts : {optD16, optDLXe})
            for (uint32_t bus : {4u, 8u})
                plan.push_back(JobSpec::fetch(w.name, opts, bus));
    prefetch(std::move(plan));

    for (int busBytes : {4, 8}) {
        struct Acc
        {
            double cpiD16[4] = {};
            double cpiD16Norm[4] = {};
            double cpiDLXe[4] = {};
            double fpcD16[4] = {};
            double fpcDLXe[4] = {};
            double ratio[4] = {};
        } acc;
        int n = 0;

        Table ratios({"Program", "l=0", "l=1", "l=2", "l=3"});

        for (const Workload &w : workloadSuite()) {
            const auto &jD = measureFetch(
                w.name, optD16, static_cast<uint32_t>(busBytes));
            const auto &jX = measureFetch(
                w.name, optDLXe, static_cast<uint32_t>(busBytes));
            const auto &mD = jD.run;
            const auto &mX = jX.run;

            std::vector<std::string> row = {w.name};
            for (int l = 0; l <= 3; ++l) {
                const uint64_t cycD =
                    cyclesNoCache(mD.stats, l, jD.fetch.requests);
                const uint64_t cycX =
                    cyclesNoCache(mX.stats, l, jX.fetch.requests);
                acc.cpiD16[l] += static_cast<double>(cycD) /
                                 mD.stats.instructions;
                acc.cpiD16Norm[l] += static_cast<double>(cycD) /
                                     mX.stats.instructions;
                acc.cpiDLXe[l] += static_cast<double>(cycX) /
                                  mX.stats.instructions;
                acc.fpcD16[l] +=
                    static_cast<double>(jD.fetch.requests) / cycD;
                acc.fpcDLXe[l] +=
                    static_cast<double>(jX.fetch.requests) / cycX;
                acc.ratio[l] += static_cast<double>(cycX) / cycD;
                row.push_back(ratio(cycX, cycD));
            }
            ratios.addRow(std::move(row));
            ++n;
        }

        std::cout << "---- " << busBytes * 8 << "-bit fetch bus (k="
                  << busBytes * 8 / 32 << " DLXe insns, "
                  << busBytes * 8 / 16 << " D16 insns) ----\n\n";

        Table cpi({"wait states", "DLXe CPI", "D16 CPI",
                   "D16 CPI (normalized)"});
        for (int l = 0; l <= 3; ++l) {
            cpi.addRow({std::to_string(l), fixed(acc.cpiDLXe[l] / n, 2),
                        fixed(acc.cpiD16[l] / n, 2),
                        fixed(acc.cpiD16Norm[l] / n, 2)});
        }
        cpi.setTitle("Figure 14: CPI vs memory wait states (suite "
                     "average)");
        cpi.print(std::cout);
        std::cout << "\n";

        Table sat({"wait states", "DLXe fetches/cycle",
                   "D16 fetches/cycle"});
        for (int l = 0; l <= 3; ++l) {
            sat.addRow({std::to_string(l), fixed(acc.fpcDLXe[l] / n, 3),
                        fixed(acc.fpcD16[l] / n, 3)});
        }
        sat.setTitle("Figure 15: instruction fetch saturation");
        sat.print(std::cout);
        std::cout << "\n";

        ratios.setTitle(std::string("Table ") +
                        (busBytes == 4 ? "11" : "12") +
                        ": DLXe/D16 cycle ratios (>1 means D16 wins)");
        std::vector<std::string> avg = {"(mean)"};
        for (int l = 0; l <= 3; ++l)
            avg.push_back(fixed(acc.ratio[l] / n, 2));
        ratios.addRow(std::move(avg));
        ratios.print(std::cout);
        std::cout << "\nPaper means: 32-bit bus 0.87/1.07/1.15/1.19; "
                     "64-bit bus 0.86/0.99/1.04/1.08.\n\n";
    }
    return 0;
}
