/**
 * @file
 * Figure 13 + Tables 8-10: instruction traffic, loads/stores, and
 * interlocks.
 *
 * Instruction traffic = 32-bit words fetched through a word-wide
 * fetch path (paper Table 8; D16 traffic exceeds half its path length
 * because fetches are word aligned). Also prints the paper's
 * uniformity check (Fig. 13): traffic ratio tracks static-size ratio.
 */

#include <algorithm>

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figure 13 / Tables 8-10: traffic, memory ops, interlocks",
           "Bunda et al. 1993, Fig. 13 and Tables 8-10");

    const CompileOptions d16 = CompileOptions::d16();
    const CompileOptions dlxe = CompileOptions::dlxe();

    std::vector<JobSpec> plan;
    for (const Workload &w : workloadSuite())
        for (const CompileOptions &opts : {d16, dlxe})
            plan.push_back(JobSpec::fetch(w.name, opts, 4));
    prefetch(std::move(plan));

    Table t8({"Program", "D16 path", "DLXe path", "D16 I-words",
              "DLXe I-words", "traffic ratio", "static ratio"});
    Table t9({"Program", "D16 ld+st", "DLXe ld+st", "increase %"});
    Table t10({"Program", "D16 interlocks", "D16 rate",
               "DLXe interlocks", "DLXe rate"});

    double trafficSum = 0, staticSum = 0, memSum = 0;
    double rateD = 0, rateX = 0;
    int n = 0, nMem = 0;

    for (const Workload &w : workloadSuite()) {
        // The word-wide fetch-path runs.
        const auto &jD = measureFetch(w.name, d16, 4);
        const auto &jX = measureFetch(w.name, dlxe, 4);
        const auto &mD = jD.run;
        const auto &mX = jX.run;

        const double trafficRatio =
            static_cast<double>(jX.fetch.words) / jD.fetch.words;
        const double staticRatio =
            static_cast<double>(mX.sizeBytes) / mD.sizeBytes;
        // Guard the percentage against programs DLXe runs almost
        // entirely in registers (pi, solver).
        const bool memMeaningful =
            mX.stats.memOps() > mX.stats.instructions / 200;
        std::string memIncStr = "-";
        if (memMeaningful) {
            const double memInc =
                100.0 *
                (static_cast<double>(mD.stats.memOps()) -
                 mX.stats.memOps()) /
                mX.stats.memOps();
            memSum += memInc;
            ++nMem;
            memIncStr = fixed(memInc, 1);
        }
        trafficSum += trafficRatio;
        staticSum += staticRatio;
        rateD += mD.stats.interlockRate();
        rateX += mX.stats.interlockRate();
        ++n;

        t8.addRow({w.name, std::to_string(mD.stats.instructions),
                   std::to_string(mX.stats.instructions),
                   std::to_string(jD.fetch.words),
                   std::to_string(jX.fetch.words), fixed(trafficRatio, 2),
                   fixed(staticRatio, 2)});
        t9.addRow({w.name, std::to_string(mD.stats.memOps()),
                   std::to_string(mX.stats.memOps()), memIncStr});
        t10.addRow({w.name, std::to_string(mD.stats.interlocks()),
                    fixed(mD.stats.interlockRate(), 3),
                    std::to_string(mX.stats.interlocks()),
                    fixed(mX.stats.interlockRate(), 3)});
    }

    t8.setTitle("Table 8: path length and instruction traffic "
                "(32-bit words)");
    t8.addRow({"(avg DLXe/D16 traffic " + fixed(trafficSum / n, 2) +
                   ", static " + fixed(staticSum / n, 2) + ")",
               "", "", "", "", "", ""});
    t8.print(std::cout);
    std::cout << "\nUniformity check (Fig. 13): traffic ratio should "
                 "track static ratio; paper finds D16 saves ~35% on "
                 "both.\n\n";

    t9.setTitle("Table 9: loads and stores (paper: D16 ~10% more on "
                "average)");
    t9.addRow({"(average increase %)", "", "",
               fixed(memSum / std::max(1, nMem), 1)});
    t9.print(std::cout);
    std::cout << "\n";

    t10.setTitle("Table 10: delayed-load and math-unit interlocks "
                 "(paper means: 0.104 D16, 0.122 DLXe)");
    t10.addRow({"(mean rates)", "", fixed(rateD / n, 3), "",
                fixed(rateX / n, 3)});
    t10.print(std::cout);
    return 0;
}
