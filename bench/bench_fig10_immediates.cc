/**
 * @file
 * Figure 10 + Table 4: the effect of DLXe's large immediate fields.
 *
 * Figure 10: speedup of DLXe/16/2 (which keeps wide immediates) over
 * D16 — the remaining gap once registers and address count are
 * equalized is the immediate-field effect. Table 4: the frequency of
 * executed restricted-DLXe instructions whose immediates exceed D16's
 * limits, by class (paper: cmp-imm 2.1%, ALU-imm 2.8%, displacements
 * 4.6%, total ~9.5%).
 *
 * An extension ablation also compiles DLXe with D16-width immediates
 * (narrowImmediates) to measure the effect in the other direction.
 */

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figure 10 / Table 4: immediate fields",
           "Bunda et al. 1993, Fig. 10 and Table 4");

    const CompileOptions d16 = CompileOptions::d16();
    const CompileOptions dlxe162 = CompileOptions::dlxe(16, false);
    CompileOptions narrow = CompileOptions::dlxe(16, false);
    narrow.narrowImmediates = true;

    std::vector<JobSpec> plan;
    for (const Workload &w : workloadSuite()) {
        plan.push_back(JobSpec::base(w.name, d16));
        plan.push_back(JobSpec::imm(w.name, dlxe162));
        plan.push_back(JobSpec::base(w.name, narrow));
    }
    prefetch(std::move(plan));

    Table t({"Program", "speedup DLXe/16/2 vs D16", "cmp-imm %",
             "alu-imm %", "mem-disp %", "total %",
             "narrow-imm path ratio"});
    double speedupSum = 0, cmpSum = 0, aluSum = 0, memSum = 0,
           narrowSum = 0;
    int n = 0;

    for (const Workload &w : workloadSuite()) {
        const auto &mD = measure(w.name, d16);
        // The restricted DLXe run under the immediate classifier.
        const auto &mX = measureImm(w.name, dlxe162);
        const auto &classifier = mX.imm;
        const auto &mN = measure(w.name, narrow);

        const double speedup =
            static_cast<double>(mD.run.stats.instructions) /
            mX.run.stats.instructions;
        const double narrowRatio =
            static_cast<double>(mN.run.stats.instructions) /
            mX.run.stats.instructions;
        const double cmpPct = classifier.pct(classifier.cmpImmediate);
        const double aluPct = classifier.pct(classifier.aluImmediate);
        const double memPct =
            classifier.pct(classifier.memDisplacement);

        speedupSum += speedup;
        cmpSum += cmpPct;
        aluSum += aluPct;
        memSum += memPct;
        narrowSum += narrowRatio;
        ++n;
        t.addRow({w.name, fixed(speedup, 2), fixed(cmpPct, 1),
                  fixed(aluPct, 1), fixed(memPct, 1),
                  fixed(cmpPct + aluPct + memPct, 1),
                  fixed(narrowRatio, 2)});
    }
    t.addRow({"(average)", fixed(speedupSum / n, 2), fixed(cmpSum / n, 1),
              fixed(aluSum / n, 1), fixed(memSum / n, 1),
              fixed((cmpSum + aluSum + memSum) / n, 1),
              fixed(narrowSum / n, 2)});
    t.print(std::cout);

    std::cout << "\nPaper Table 4 averages: compare-imm 2.1%, ALU-imm "
                 "2.8%, displacements 4.6%, total 9.5%; Fig. 10 average "
                 "speedup ~1.1x.\n";
    return 0;
}
