/**
 * @file
 * Figures 11-12 + Table 5: the full feature-interaction summary.
 *
 * Code-size and path-length ratios (DLXe variant / D16) for the four
 * DLXe compiler variants, per program and averaged — the paper's
 * Table 5 / Figures 11-12 rollup of the register-count, operand-count,
 * and immediate-field effects.
 */

#include "common.hh"

using namespace d16bench;

int
main()
{
    header("Figures 11-12 / Table 5: density and path-length summary",
           "Bunda et al. 1993, Figs. 11-12 and Table 5");

    const auto variants = allVariants();
    std::vector<JobSpec> plan;
    for (const Workload &w : workloadSuite())
        for (const auto &[name, opts] : variants)
            plan.push_back(JobSpec::base(w.name, opts));
    prefetch(std::move(plan));

    Table size({"Program", "DLXe/16/2", "DLXe/16/3", "DLXe/32/2",
                "DLXe/32/3"});
    Table path({"Program", "DLXe/16/2", "DLXe/16/3", "DLXe/32/2",
                "DLXe/32/3"});
    double sizeSum[4] = {0, 0, 0, 0}, pathSum[4] = {0, 0, 0, 0};
    int n = 0;

    for (const Workload &w : workloadSuite()) {
        const auto &base = measure(w.name, variants[0].second);
        std::vector<std::string> srow = {w.name}, prow = {w.name};
        for (int v = 1; v <= 4; ++v) {
            const auto &m = measure(w.name, variants[v].second);
            const double s = static_cast<double>(m.run.sizeBytes) /
                             base.run.sizeBytes;
            const double p =
                static_cast<double>(m.run.stats.instructions) /
                base.run.stats.instructions;
            sizeSum[v - 1] += s;
            pathSum[v - 1] += p;
            srow.push_back(fixed(s, 2));
            prow.push_back(fixed(p, 2));
        }
        size.addRow(std::move(srow));
        path.addRow(std::move(prow));
        ++n;
    }
    std::vector<std::string> savg = {"(average)"}, pavg = {"(average)"};
    for (int v = 0; v < 4; ++v) {
        savg.push_back(fixed(sizeSum[v] / n, 2));
        pavg.push_back(fixed(pathSum[v] / n, 2));
    }
    size.addRow(std::move(savg));
    path.addRow(std::move(pavg));

    size.setTitle("Code size, D16 = 1.00 (paper avg: "
                  "1.62 / 1.61 / 1.57 / 1.53)");
    size.print(std::cout);
    std::cout << "\n";
    path.setTitle("Path length, D16 = 1.00 (paper avg: "
                  "0.95 / 0.94 / 0.90 / 0.87)");
    path.print(std::cout);
    return 0;
}
