/**
 * @file
 * Figures 11-12 + Table 5: the full feature-interaction summary.
 *
 * Code-size and path-length ratios (DLXe variant / D16) for the four
 * DLXe compiler variants, per program and averaged — the paper's
 * Table 5 / Figures 11-12 rollup of the register-count, operand-count,
 * and immediate-field effects.
 *
 * The summary also cross-tabulates pipeline interlocks two ways:
 * dynamic counts from the simulator next to the static timing
 * analyzer's execution-weighted bounds (src/analysis/timing) — the
 * dynamic count must land inside the static [lo, hi] on every
 * program/variant pair, and does.
 */

#include <atomic>
#include <thread>

#include "analysis/cfg.hh"
#include "analysis/timing.hh"
#include "common.hh"

using namespace d16bench;

namespace
{

/** One (workload, variant) static-vs-dynamic interlock comparison:
 *  the simulator's interlock count and the timing analyzer's per-site
 *  stall bounds weighted by how often each site actually ran. */
struct InterlockCell
{
    uint64_t dynamicStalls = 0;
    uint64_t staticLo = 0;
    uint64_t staticHi = 0;

    bool
    bracketed() const
    {
        return staticLo <= dynamicStalls && dynamicStalls <= staticHi;
    }
};

InterlockCell
interlocks(const Workload &w, const CompileOptions &opts)
{
    const assem::Image img = core::build(w.source, opts);
    const analysis::ImageCfg cfg = analysis::buildCfg(img);
    verify::DiagEngine diags;
    analysis::TimingOptions topts;
    topts.siteDiags = false;
    const analysis::TimingResult timing =
        analysis::analyzeTiming(cfg, diags, topts);

    analysis::StallProbe probe;
    const RunMeasurement m = core::run(img, {&probe});

    InterlockCell cell;
    cell.dynamicStalls =
        m.stats.loadInterlocks + m.stats.fpInterlocks;
    for (const auto &[pc, pt] : probe.sites()) {
        const int i = cfg.insnAt(pc);
        if (i < 0)
            continue;
        cell.staticLo += pt.execs * timing.sites[i].stallLo;
        cell.staticHi += pt.execs * timing.sites[i].stallHi;
    }
    return cell;
}

} // namespace

int
main()
{
    header("Figures 11-12 / Table 5: density and path-length summary",
           "Bunda et al. 1993, Figs. 11-12 and Table 5");

    const auto variants = allVariants();
    std::vector<JobSpec> plan;
    for (const Workload &w : workloadSuite())
        for (const auto &[name, opts] : variants)
            plan.push_back(JobSpec::base(w.name, opts));
    prefetch(std::move(plan));

    Table size({"Program", "DLXe/16/2", "DLXe/16/3", "DLXe/32/2",
                "DLXe/32/3"});
    Table path({"Program", "DLXe/16/2", "DLXe/16/3", "DLXe/32/2",
                "DLXe/32/3"});
    double sizeSum[4] = {0, 0, 0, 0}, pathSum[4] = {0, 0, 0, 0};
    int n = 0;

    for (const Workload &w : workloadSuite()) {
        const auto &base = measure(w.name, variants[0].second);
        std::vector<std::string> srow = {w.name}, prow = {w.name};
        for (int v = 1; v <= 4; ++v) {
            const auto &m = measure(w.name, variants[v].second);
            const double s = static_cast<double>(m.run.sizeBytes) /
                             base.run.sizeBytes;
            const double p =
                static_cast<double>(m.run.stats.instructions) /
                base.run.stats.instructions;
            sizeSum[v - 1] += s;
            pathSum[v - 1] += p;
            srow.push_back(fixed(s, 2));
            prow.push_back(fixed(p, 2));
        }
        size.addRow(std::move(srow));
        path.addRow(std::move(prow));
        ++n;
    }
    std::vector<std::string> savg = {"(average)"}, pavg = {"(average)"};
    for (int v = 0; v < 4; ++v) {
        savg.push_back(fixed(sizeSum[v] / n, 2));
        pavg.push_back(fixed(pathSum[v] / n, 2));
    }
    size.addRow(std::move(savg));
    path.addRow(std::move(pavg));

    size.setTitle("Code size, D16 = 1.00 (paper avg: "
                  "1.62 / 1.61 / 1.57 / 1.53)");
    size.print(std::cout);
    std::cout << "\n";
    path.setTitle("Path length, D16 = 1.00 (paper avg: "
                  "0.95 / 0.94 / 0.90 / 0.87)");
    path.print(std::cout);

    // Static timing analysis vs the simulator: per program/variant,
    // the dynamic interlock count next to the analyzer's
    // execution-weighted static stall bounds.
    const auto &suite = workloadSuite();
    std::vector<InterlockCell> cells(suite.size() * 5);
    std::atomic<size_t> nextCell{0};
    auto worker = [&] {
        for (size_t i = nextCell.fetch_add(1); i < cells.size();
             i = nextCell.fetch_add(1))
            cells[i] = interlocks(suite[i / 5],
                                  variants[i % 5].second);
    };
    std::vector<std::thread> pool;
    for (int t = 1; t < defaultJobs(); ++t)
        pool.emplace_back(worker);
    worker();
    for (std::thread &t : pool)
        t.join();

    Table locks({"Program", variants[0].first, variants[1].first,
                 variants[2].first, variants[3].first,
                 variants[4].first});
    int unbracketed = 0;
    for (size_t w = 0; w < suite.size(); ++w) {
        std::vector<std::string> row = {suite[w].name};
        for (int v = 0; v < 5; ++v) {
            const InterlockCell &c = cells[w * 5 + v];
            std::string s = std::to_string(c.dynamicStalls) + " [" +
                            std::to_string(c.staticLo) + "," +
                            std::to_string(c.staticHi) + "]";
            if (!c.bracketed()) {
                s += " !";
                ++unbracketed;
            }
            row.push_back(std::move(s));
        }
        locks.addRow(std::move(row));
    }
    std::cout << "\n";
    locks.setTitle("Interlock cycles: dynamic [static lo,hi] "
                   "(exec-weighted; dynamic must fall in bounds)");
    locks.print(std::cout);
    if (unbracketed) {
        std::cout << "\n!! " << unbracketed
                  << " cell(s) fell outside the static bounds\n";
        return 1;
    }
    std::cout << "\nAll dynamic interlock counts inside the static "
                 "bounds.\n";
    return 0;
}
