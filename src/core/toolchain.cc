#include "core/toolchain.hh"

#include "analysis/analysis.hh"
#include "analysis/block_export.hh"
#include "verify/verify.hh"

namespace d16sim::core
{

assem::Image
build(std::string_view source, const mc::CompileOptions &opts)
{
    // Verification is always on in debug builds; release builds (where
    // the experiments run) enable it per-options via verifyEach.
#ifndef NDEBUG
    const bool verifying = true;
#else
    const bool verifying = opts.verifyEach;
#endif
    mc::CompileOptions effective = opts;
    if (verifying && !effective.verifyHook)
        verify::installIrVerifier(effective);

    mc::CompileResult comp = mc::compile(source, effective);
    assem::Assembler as(opts.target());
    as.add(std::move(comp.items));
    assem::Image img = as.link();
    if (verifying) {
        verify::lintImageOrThrow(img, std::string(opts.name()));
        analysis::analyzeImageOrThrow(img, opts, std::string(opts.name()));
    }
    return img;
}

std::shared_ptr<const sim::BlockProgram>
buildBlockProgram(const assem::Image &image,
                  std::shared_ptr<const sim::DecodedText> predecoded)
{
    if (!predecoded)
        predecoded = std::make_shared<const sim::DecodedText>(image);
    const analysis::ImageCfg cfg = analysis::buildCfg(image);
    return std::make_shared<const sim::BlockProgram>(
        image, *predecoded, analysis::exportBlockTable(cfg));
}

RunMeasurement
run(const assem::Image &image, std::vector<sim::Probe *> probes,
    sim::MachineConfig config,
    std::shared_ptr<const sim::DecodedText> predecoded,
    std::shared_ptr<const sim::BlockProgram> blocks)
{
    sim::Machine machine(image, config, std::move(predecoded));
    for (sim::Probe *p : probes) {
        if (auto *cp = dynamic_cast<CacheProbe *>(p))
            cp->setInsnBytes(image.target->insnBytes());
        machine.addProbe(p);
    }
    if (blocks) {
        machine.setBlockProgram(std::move(blocks));
        // A lone block-capable probe (the trace capturer) keeps block
        // dispatch eligible; anything else makes the machine fall
        // back to pure step dispatch on its own.
        if (probes.size() == 1)
            if (auto *sink = dynamic_cast<sim::TraceSink *>(probes[0]))
                machine.setTraceSink(sink);
    }
    RunMeasurement m;
    m.exitStatus = machine.run();
    m.output = machine.output();
    m.stats = machine.stats();
    m.sizeBytes = image.sizeBytes();
    m.textBytes = image.textSize;
    m.textInsns = image.textInsns;
    return m;
}

RunMeasurement
buildAndRun(std::string_view source, const mc::CompileOptions &opts,
            std::vector<sim::Probe *> probes)
{
    const assem::Image image = build(source, opts);
    return run(image, std::move(probes));
}

} // namespace d16sim::core
