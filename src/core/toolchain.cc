#include "core/toolchain.hh"

#include "analysis/analysis.hh"
#include "verify/verify.hh"

namespace d16sim::core
{

assem::Image
build(std::string_view source, const mc::CompileOptions &opts)
{
    // Verification is always on in debug builds; release builds (where
    // the experiments run) enable it per-options via verifyEach.
#ifndef NDEBUG
    const bool verifying = true;
#else
    const bool verifying = opts.verifyEach;
#endif
    mc::CompileOptions effective = opts;
    if (verifying && !effective.verifyHook)
        verify::installIrVerifier(effective);

    mc::CompileResult comp = mc::compile(source, effective);
    assem::Assembler as(opts.target());
    as.add(std::move(comp.items));
    assem::Image img = as.link();
    if (verifying) {
        verify::lintImageOrThrow(img, std::string(opts.name()));
        analysis::analyzeImageOrThrow(img, opts, std::string(opts.name()));
    }
    return img;
}

RunMeasurement
run(const assem::Image &image, std::vector<sim::Probe *> probes,
    sim::MachineConfig config,
    std::shared_ptr<const sim::DecodedText> predecoded)
{
    sim::Machine machine(image, config, std::move(predecoded));
    for (sim::Probe *p : probes) {
        if (auto *cp = dynamic_cast<CacheProbe *>(p))
            cp->setInsnBytes(image.target->insnBytes());
        machine.addProbe(p);
    }
    RunMeasurement m;
    m.exitStatus = machine.run();
    m.output = machine.output();
    m.stats = machine.stats();
    m.sizeBytes = image.sizeBytes();
    m.textBytes = image.textSize;
    m.textInsns = image.textInsns;
    return m;
}

RunMeasurement
buildAndRun(std::string_view source, const mc::CompileOptions &opts,
            std::vector<sim::Probe *> probes)
{
    const assem::Image image = build(source, opts);
    return run(image, std::move(probes));
}

} // namespace d16sim::core
