#include "core/toolchain.hh"

namespace d16sim::core
{

assem::Image
build(std::string_view source, const mc::CompileOptions &opts)
{
    mc::CompileResult comp = mc::compile(source, opts);
    assem::Assembler as(opts.target());
    as.add(std::move(comp.items));
    return as.link();
}

RunMeasurement
run(const assem::Image &image, std::vector<sim::Probe *> probes,
    sim::MachineConfig config)
{
    sim::Machine machine(image, config);
    for (sim::Probe *p : probes) {
        if (auto *cp = dynamic_cast<CacheProbe *>(p))
            cp->setInsnBytes(image.target->insnBytes());
        machine.addProbe(p);
    }
    RunMeasurement m;
    m.exitStatus = machine.run();
    m.output = machine.output();
    m.stats = machine.stats();
    m.sizeBytes = image.sizeBytes();
    m.textBytes = image.textSize;
    m.textInsns = image.textInsns;
    return m;
}

RunMeasurement
buildAndRun(std::string_view source, const mc::CompileOptions &opts,
            std::vector<sim::Probe *> probes)
{
    const assem::Image image = build(source, opts);
    return run(image, std::move(probes));
}

} // namespace d16sim::core
