#include "core/replay/trace.hh"

#include <fstream>

#include "support/error.hh"

namespace d16sim::core::replay
{

namespace
{

constexpr uint32_t HeaderMagic = 0x54363144;  // "D16T" little-endian
constexpr uint32_t TrailerMagic = 0x44363154; // "T16D" little-endian
constexpr uint32_t FormatVersion = 2;  // v2 added branchBubbles

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    put32(out, static_cast<uint32_t>(v));
    put32(out, static_cast<uint32_t>(v >> 32));
}

/** Bounds-checked little-endian reader over the serialized bytes. */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &bytes) : bytes_(bytes) {}

    uint8_t
    u8()
    {
        need(1);
        return bytes_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        const uint32_t v = static_cast<uint32_t>(bytes_[pos_]) |
                           (static_cast<uint32_t>(bytes_[pos_ + 1]) << 8) |
                           (static_cast<uint32_t>(bytes_[pos_ + 2]) << 16) |
                           (static_cast<uint32_t>(bytes_[pos_ + 3]) << 24);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        const uint64_t lo = u32();
        return lo | (static_cast<uint64_t>(u32()) << 32);
    }

    std::string
    str(uint64_t len)
    {
        need(len);
        std::string s(reinterpret_cast<const char *>(bytes_.data() + pos_),
                      static_cast<size_t>(len));
        pos_ += static_cast<size_t>(len);
        return s;
    }

    size_t remaining() const { return bytes_.size() - pos_; }

  private:
    void
    need(uint64_t n)
    {
        if (n > remaining())
            fatal("trace: truncated (need ", n, " bytes at offset ", pos_,
                  ", have ", remaining(), ")");
    }

    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

} // namespace

uint64_t
Trace::fetchCount() const
{
    uint64_t n = 0;
    for (const FetchRun &r : runs)
        n += r.count;
    return n;
}

std::vector<uint8_t>
Trace::serialize() const
{
    std::vector<uint8_t> out;
    out.reserve(128 + base.output.size() + runs.size() * 8 +
                accesses.size() * 5);

    put32(out, HeaderMagic);
    put32(out, FormatVersion);
    put32(out, insnBytes);
    put32(out, 0);  // reserved

    put32(out, static_cast<uint32_t>(base.exitStatus));
    put32(out, base.sizeBytes);
    put32(out, base.textBytes);
    put32(out, base.textInsns);
    put64(out, base.stats.instructions);
    put64(out, base.stats.loads);
    put64(out, base.stats.stores);
    put64(out, base.stats.loadInterlocks);
    put64(out, base.stats.fpInterlocks);
    put64(out, base.stats.branches);
    put64(out, base.stats.takenBranches);
    put64(out, base.stats.fpOps);
    put64(out, base.stats.traps);
    put64(out, base.stats.branchBubbles);
    put64(out, base.output.size());
    out.insert(out.end(), base.output.begin(), base.output.end());

    put64(out, runs.size());
    for (const FetchRun &r : runs) {
        put32(out, r.startPc);
        put32(out, r.count);
    }

    put64(out, accesses.size());
    for (const DataAccess &a : accesses) {
        put32(out, a.addr);
        out.push_back(static_cast<uint8_t>(a.size |
                                           (a.write ? 0x80u : 0u)));
    }

    put32(out, TrailerMagic);
    return out;
}

Trace
Trace::deserialize(const std::vector<uint8_t> &bytes)
{
    Reader in(bytes);
    if (in.u32() != HeaderMagic)
        fatal("trace: bad magic (not a D16T trace)");
    const uint32_t version = in.u32();
    if (version != FormatVersion)
        fatal("trace: unsupported format version ", version);

    Trace t;
    t.insnBytes = in.u32();
    if (t.insnBytes != 2 && t.insnBytes != 4)
        fatal("trace: bad instruction width ", t.insnBytes);
    if (in.u32() != 0)
        fatal("trace: reserved header field is not zero");

    t.base.exitStatus = static_cast<int>(in.u32());
    t.base.sizeBytes = in.u32();
    t.base.textBytes = in.u32();
    t.base.textInsns = in.u32();
    t.base.stats.instructions = in.u64();
    t.base.stats.loads = in.u64();
    t.base.stats.stores = in.u64();
    t.base.stats.loadInterlocks = in.u64();
    t.base.stats.fpInterlocks = in.u64();
    t.base.stats.branches = in.u64();
    t.base.stats.takenBranches = in.u64();
    t.base.stats.fpOps = in.u64();
    t.base.stats.traps = in.u64();
    t.base.stats.branchBubbles = in.u64();
    t.base.output = in.str(in.u64());

    const uint64_t runCount = in.u64();
    if (runCount * 8 > in.remaining())
        fatal("trace: truncated fetch-run table");
    t.runs.reserve(static_cast<size_t>(runCount));
    for (uint64_t i = 0; i < runCount; ++i) {
        FetchRun r;
        r.startPc = in.u32();
        r.count = in.u32();
        if (r.count == 0)
            fatal("trace: empty fetch run at index ", i);
        t.runs.push_back(r);
    }

    const uint64_t accessCount = in.u64();
    if (accessCount * 5 > in.remaining())
        fatal("trace: truncated data-access table");
    t.accesses.reserve(static_cast<size_t>(accessCount));
    for (uint64_t i = 0; i < accessCount; ++i) {
        DataAccess a;
        a.addr = in.u32();
        const uint8_t kind = in.u8();
        a.write = (kind & 0x80u) != 0;
        a.size = kind & 0x7fu;
        if (a.size != 1 && a.size != 2 && a.size != 4)
            fatal("trace: bad access size ", int{a.size}, " at index ", i);
        t.accesses.push_back(a);
    }

    if (in.u32() != TrailerMagic)
        fatal("trace: bad trailer (corrupt or truncated)");
    if (in.remaining() != 0)
        fatal("trace: ", in.remaining(), " trailing bytes");

    // Structural cross-checks against the recorded measurement.
    if (t.fetchCount() != t.base.stats.instructions)
        fatal("trace: fetch stream length ", t.fetchCount(),
              " does not match instruction count ",
              t.base.stats.instructions);
    if (t.accesses.size() != t.base.stats.memOps())
        fatal("trace: data stream length ", t.accesses.size(),
              " does not match memory-op count ", t.base.stats.memOps());
    return t;
}

void
Trace::writeFile(const std::string &path) const
{
    const std::vector<uint8_t> bytes = serialize();
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("trace: cannot write ", path);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        fatal("trace: short write to ", path);
}

Trace
Trace::readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("trace: cannot read ", path);
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return deserialize(bytes);
}

Trace
capture(const assem::Image &image,
        std::shared_ptr<const sim::DecodedText> predecoded,
        sim::MachineConfig config,
        std::shared_ptr<const sim::BlockProgram> blocks)
{
    panicIf(!image.target, "image has no target");
    TraceProbe probe(static_cast<uint32_t>(image.target->insnBytes()));
    RunMeasurement m = core::run(image, {&probe}, config,
                                 std::move(predecoded), std::move(blocks));
    return probe.take(std::move(m));
}

} // namespace d16sim::core::replay
