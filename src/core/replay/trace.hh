/**
 * @file
 * Trace — the recorded reference streams of one simulated execution,
 * plus the probe that captures them.
 *
 * The paper's §4 memory experiments evaluate the *same* execution
 * under many cache/latency parameterizations; the machine deliberately
 * does not model memory latency, so those models consume nothing but
 * the reference streams and the base-cycle statistics. A Trace records
 * exactly that, once, so every memory configuration can be evaluated
 * without re-simulating:
 *
 *  - the fetch stream, run-length encoded as (startPc, count) runs of
 *    sequential fetches — a new run starts at every taken-branch
 *    target, so the run boundaries *are* the taken-branch markers;
 *  - the data-access stream in program order, each access classed as
 *    read or write with its byte size (the split I/D cache models of
 *    §4.1 consume the two streams independently, so no interleaving
 *    with the fetch stream is needed);
 *  - the complete RunMeasurement of the capture run (path length,
 *    interlocks, static sizes, program output), identical to what a
 *    probe-less run reports, since probes never perturb execution.
 *
 * The serialized form is a compact little-endian binary ("D16T"): 8
 * bytes per fetch run, 5 bytes per data access, with header/trailer
 * magics and structural cross-checks so truncated or corrupted traces
 * are rejected rather than replayed.
 */

#ifndef D16SIM_CORE_REPLAY_TRACE_HH
#define D16SIM_CORE_REPLAY_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/toolchain.hh"
#include "sim/probe.hh"

namespace d16sim::core::replay
{

/** `count` sequential fetches starting at `startPc` (insnBytes apart). */
struct FetchRun
{
    uint32_t startPc = 0;
    uint32_t count = 0;
};

/** One data reference: `size` bytes at `addr`, read or write. */
struct DataAccess
{
    uint32_t addr = 0;
    uint8_t size = 0;
    bool write = false;
};

struct Trace
{
    uint32_t insnBytes = 4;  //!< fetch width of the traced machine
    RunMeasurement base;     //!< the capture run's full measurement
    std::vector<FetchRun> runs;
    std::vector<DataAccess> accesses;

    /** Total fetches recorded (== base.stats.instructions). */
    uint64_t fetchCount() const;

    /** Serialize to the compact binary format. */
    std::vector<uint8_t> serialize() const;

    /** Parse a serialized trace; FatalError on truncation, bad magic,
     *  or structural corruption. */
    static Trace deserialize(const std::vector<uint8_t> &bytes);

    /** File convenience wrappers around (de)serialize. */
    void writeFile(const std::string &path) const;
    static Trace readFile(const std::string &path);
};

/**
 * High-throughput capture probe. onIFetch folds sequential pcs into
 * the open run with one compare; data callbacks append fixed-size
 * records. Attach to one Machine, run to completion, then take() the
 * trace (with the run's measurement).
 *
 * Also a sim::TraceSink, so a machine with a block program keeps
 * block dispatch during capture: the engine hands over whole-block
 * fetch chunks (onFetchChunk) which merge into the same run-length
 * encoding the per-instruction path produces — all fetches inside a
 * block are sequential, so `count` fetches from `startPc` is exactly
 * `count` onIFetch calls. Step-fallback stretches keep using the
 * per-instruction callbacks on the same state, byte-identically.
 */
class TraceProbe : public sim::Probe, public sim::TraceSink
{
  public:
    explicit TraceProbe(uint32_t insnBytes) : insnBytes_(insnBytes)
    {
        trace_.insnBytes = insnBytes;
        trace_.runs.reserve(1024);
        trace_.accesses.reserve(4096);
    }

    void
    onIFetch(uint32_t pc) override
    {
        if (pc == nextPc_ && !trace_.runs.empty()) {
            ++trace_.runs.back().count;
        } else {
            trace_.runs.push_back({pc, 1});
        }
        nextPc_ = pc + insnBytes_;
    }

    void
    onFetchChunk(uint32_t startPc, uint32_t count) override
    {
        if (startPc == nextPc_ && !trace_.runs.empty())
            trace_.runs.back().count += count;
        else
            trace_.runs.push_back({startPc, count});
        nextPc_ = startPc + count * insnBytes_;
    }

    void
    onDataRead(uint32_t addr, int size) override
    {
        trace_.accesses.push_back(
            {addr, static_cast<uint8_t>(size), false});
    }

    void
    onDataWrite(uint32_t addr, int size) override
    {
        trace_.accesses.push_back(
            {addr, static_cast<uint8_t>(size), true});
    }

    /** Finish capture: attach the run's measurement and move the trace
     *  out (the probe is spent afterwards). */
    Trace
    take(RunMeasurement measurement)
    {
        trace_.base = std::move(measurement);
        return std::move(trace_);
    }

  private:
    uint32_t insnBytes_;
    uint32_t nextPc_ = 0;
    Trace trace_;
};

/** Simulate `image` once with a TraceProbe attached and return the
 *  recorded trace. `predecoded` and `blocks` are forwarded to the
 *  machine (block-compiled capture records identical traces). */
Trace capture(const assem::Image &image,
              std::shared_ptr<const sim::DecodedText> predecoded = nullptr,
              sim::MachineConfig config = {},
              std::shared_ptr<const sim::BlockProgram> blocks = nullptr);

} // namespace d16sim::core::replay

#endif // D16SIM_CORE_REPLAY_TRACE_HH
