#include "core/replay/replay.hh"

namespace d16sim::core::replay
{

void
replayCaches(const Trace &trace, std::vector<CacheEval> &evals)
{
    if (evals.empty())
        return;

    std::vector<mem::Cache> icaches, dcaches;
    icaches.reserve(evals.size());
    dcaches.reserve(evals.size());
    for (const CacheEval &e : evals) {
        icaches.emplace_back(e.icache);
        dcaches.emplace_back(e.dcache);
    }

    // The fetch side is run-length encoded, so each run feeds every
    // icache through the sequential-read fast path in one call.
    const int ib = static_cast<int>(trace.insnBytes);
    for (const FetchRun &r : trace.runs)
        for (mem::Cache &c : icaches)
            c.readSeq(r.startPc, ib, r.count);

    for (const DataAccess &a : trace.accesses) {
        if (a.write)
            for (mem::Cache &c : dcaches)
                c.write(a.addr, a.size);
        else
            for (mem::Cache &c : dcaches)
                c.read(a.addr, a.size);
    }

    for (size_t i = 0; i < evals.size(); ++i) {
        evals[i].icacheStats = icaches[i].stats();
        evals[i].dcacheStats = dcaches[i].stats();
    }
}

std::pair<mem::CacheStats, mem::CacheStats>
replayCache(const Trace &trace, const mem::CacheConfig &icache,
            const mem::CacheConfig &dcache)
{
    std::vector<CacheEval> evals(1);
    evals[0].icache = icache;
    evals[0].dcache = dcache;
    replayCaches(trace, evals);
    return {evals[0].icacheStats, evals[0].dcacheStats};
}

uint64_t
replayFetchRequests(const Trace &trace, uint32_t busBytes)
{
    // Mirrors FetchBufferProbe: a request whenever the fetch leaves the
    // currently buffered aligned block. Within a run the pc advances
    // monotonically by insnBytes (which divides busBytes), so the run
    // crosses exactly lastBlock - firstBlock boundaries, plus one
    // request up front if it starts outside the buffered block.
    uint64_t requests = 0;
    bool valid = false;
    uint32_t current = 0;
    for (const FetchRun &r : trace.runs) {
        const uint32_t first = r.startPc / busBytes;
        const uint32_t last =
            (r.startPc + (r.count - 1) * trace.insnBytes) / busBytes;
        requests += (last - first) + ((!valid || first != current) ? 1 : 0);
        valid = true;
        current = last;
    }
    return requests;
}

} // namespace d16sim::core::replay
