/**
 * @file
 * Replay — evaluate memory configurations from a recorded Trace.
 *
 * One functional execution, many costed evaluations (the structure the
 * paper's §4 figures share): the evaluators below stream a Trace's
 * fetch and data streams through any number of mem::Cache pairs — and
 * through the cacheless fetch-buffer model — producing CacheStats /
 * IRequests bit-identical to attaching the corresponding probe to a
 * live simulation, at a fraction of the cost (no decode, no execute,
 * no scoreboard).
 *
 * replayCaches() is the single-pass form: each recorded reference is
 * fed to every configuration in turn, so evaluating the paper's whole
 * 5-size x 4-block matrix touches the trace once.
 */

#ifndef D16SIM_CORE_REPLAY_REPLAY_HH
#define D16SIM_CORE_REPLAY_REPLAY_HH

#include <utility>
#include <vector>

#include "core/replay/trace.hh"
#include "mem/cache.hh"

namespace d16sim::core::replay
{

/** One split-cache configuration to evaluate; stats are filled in by
 *  replayCaches(). */
struct CacheEval
{
    mem::CacheConfig icache;
    mem::CacheConfig dcache;
    mem::CacheStats icacheStats;
    mem::CacheStats dcacheStats;
};

/**
 * Evaluate every configuration in `evals` over the trace in a single
 * pass: each fetch goes to every I-cache, each data access to every
 * D-cache, in recorded order. Results are exactly what a CacheProbe
 * with the same configuration would have measured on the traced run.
 */
void replayCaches(const Trace &trace, std::vector<CacheEval> &evals);

/** Single-configuration convenience: returns (icache, dcache) stats. */
std::pair<mem::CacheStats, mem::CacheStats>
replayCache(const Trace &trace, const mem::CacheConfig &icache,
            const mem::CacheConfig &dcache);

/**
 * The cacheless fetch-buffer model (§4): number of memory requests a
 * `busBytes`-wide fetch path issues over the recorded fetch stream.
 * Exactly FetchBufferProbe::requests() for the traced run.
 */
uint64_t replayFetchRequests(const Trace &trace, uint32_t busBytes);

} // namespace d16sim::core::replay

#endif // D16SIM_CORE_REPLAY_REPLAY_HH
