/**
 * @file
 * The benchmark suite (paper Table 2), reconstructed in MiniC.
 *
 * Fifteen programs: the Stanford-suite kernels and synthetic
 * benchmarks are restated directly; the programs we cannot reproduce
 * verbatim (the D16 assembler, LaTeX, the ipl PostScript plotter,
 * grep, linpack, dhrystone, whetstone) are faithful miniatures that
 * exercise the same operation mix (see DESIGN.md for the
 * substitution rationale). Workload scale is reduced so the whole
 * suite simulates in seconds; every comparison in the experiments is
 * ratio-based, so scale cancels.
 *
 * The three cache benchmarks (paper §4.1: assem, latex, ipl) carry
 * synthesized extra phases so their instruction working sets span the
 * 1K-16K cache range the paper sweeps.
 */

#ifndef D16SIM_CORE_WORKLOADS_HH
#define D16SIM_CORE_WORKLOADS_HH

#include <string>
#include <vector>

namespace d16sim::core
{

struct Workload
{
    std::string name;
    std::string description;
    std::string source;       //!< MiniC text
    bool floatingPoint = false;
    bool cacheBenchmark = false;  //!< one of assem/latex/ipl
};

/** The full suite, in the paper's Table 2 order. */
const std::vector<Workload> &workloadSuite();

/** Look up one workload by name; throws FatalError if unknown. */
const Workload &workload(const std::string &name);

/** Names of the §4.1 cache benchmarks: assem, latex, ipl. */
std::vector<std::string> cacheBenchmarkNames();

} // namespace d16sim::core

#endif // D16SIM_CORE_WORKLOADS_HH
