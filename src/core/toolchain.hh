/**
 * @file
 * Toolchain facade: MiniC source -> image -> simulated run, with the
 * measurement probes the paper's experiments need.
 */

#ifndef D16SIM_CORE_TOOLCHAIN_HH
#define D16SIM_CORE_TOOLCHAIN_HH

#include <map>
#include <memory>
#include <string>

#include "asm/assembler.hh"
#include "mc/compiler.hh"
#include "mem/cache.hh"
#include "sim/machine.hh"

namespace d16sim::core
{

/** Compile + assemble + link one program for one machine variant. */
assem::Image build(std::string_view source,
                   const mc::CompileOptions &opts);

/**
 * Fetch-buffer model of the cacheless machines (§4): the processor
 * holds the last fetched aligned block of `busBytes`; a fetch outside
 * it issues a memory request. Counts the paper's IRequests.
 */
class FetchBufferProbe : public sim::Probe
{
  public:
    explicit FetchBufferProbe(uint32_t busBytes) : busBytes_(busBytes) {}

    void
    onIFetch(uint32_t pc) override
    {
        const uint32_t block = pc / busBytes_;
        if (!valid_ || block != current_) {
            valid_ = true;
            current_ = block;
            ++requests_;
        }
    }

    uint64_t requests() const { return requests_; }

    /** Instruction traffic in 32-bit words. */
    uint64_t words() const { return requests_ * (busBytes_ / 4); }

  private:
    uint32_t busBytes_;
    bool valid_ = false;
    uint32_t current_ = 0;
    uint64_t requests_ = 0;
};

/** Split I/D cache model attached to the reference streams (§4.1). */
class CacheProbe : public sim::Probe
{
  public:
    CacheProbe(mem::CacheConfig icacheCfg, mem::CacheConfig dcacheCfg)
        : icache_(icacheCfg), dcache_(dcacheCfg)
    {}

    void onIFetch(uint32_t pc) override { icache_.read(pc, insnBytes_); }

    void
    onDataRead(uint32_t addr, int size) override
    {
        dcache_.read(addr, size);
    }

    void
    onDataWrite(uint32_t addr, int size) override
    {
        dcache_.write(addr, size);
    }

    void setInsnBytes(int n) { insnBytes_ = n; }

    const mem::Cache &icache() const { return icache_; }
    const mem::Cache &dcache() const { return dcache_; }

  private:
    mem::Cache icache_;
    mem::Cache dcache_;
    int insnBytes_ = 4;
};

/**
 * Classifies executed instructions whose immediate operands exceed the
 * limits of the D16 instruction set (paper Table 4), measured on a
 * restricted-DLXe instruction stream: immediate compares, ALU
 * immediates beyond 5 unsigned bits, and memory displacements D16
 * cannot express.
 */
class ImmediateClassProbe : public sim::Probe
{
  public:
    void
    onExec(const isa::DecodedInst &inst, uint32_t pc) override
    {
        (void)pc;
        ++total_;
        const auto &d16 = isa::TargetInfo::d16();
        switch (inst.op) {
          case isa::Op::CmpI:
            ++cmpImmediate_;
            break;
          case isa::Op::AddI: case isa::Op::SubI:
            if (!d16.aluImmFits(inst.op, inst.imm) &&
                !d16.aluImmFits(inst.op == isa::Op::AddI
                                    ? isa::Op::SubI
                                    : isa::Op::AddI,
                                -static_cast<int64_t>(inst.imm))) {
                ++aluImmediate_;
            }
            break;
          case isa::Op::AndI: case isa::Op::OrI: case isa::Op::XorI:
          case isa::Op::MvHI:
            ++aluImmediate_;  // D16 has no logical/upper immediates
            break;
          case isa::Op::Ld: case isa::Op::St:
          case isa::Op::Ldh: case isa::Op::Ldhu: case isa::Op::Sth:
          case isa::Op::Ldb: case isa::Op::Ldbu: case isa::Op::Stb:
            if (!d16.memOffsetFits(inst.op, inst.imm))
                ++memDisplacement_;
            break;
          default:
            break;
        }
    }

    uint64_t total() const { return total_; }
    uint64_t cmpImmediate() const { return cmpImmediate_; }
    uint64_t aluImmediate() const { return aluImmediate_; }
    uint64_t memDisplacement() const { return memDisplacement_; }

    double
    pct(uint64_t v) const
    {
        return total_ ? 100.0 * static_cast<double>(v) /
                            static_cast<double>(total_)
                      : 0.0;
    }

  private:
    uint64_t total_ = 0;
    uint64_t cmpImmediate_ = 0;
    uint64_t aluImmediate_ = 0;
    uint64_t memDisplacement_ = 0;
};

/** Everything one simulated execution yields. */
struct RunMeasurement
{
    std::string output;
    int exitStatus = 0;
    sim::SimStats stats;
    uint32_t sizeBytes = 0;   //!< static size (text+data)
    uint32_t textBytes = 0;
    uint32_t textInsns = 0;   //!< static instruction count
};

/** Compile the image's recovered CFG into a shared block program for
 *  the sim threaded-code engine (see sim::BlockProgram). Built once
 *  per image and shared read-only by every machine that runs it;
 *  `predecoded` reuses an existing decode table when available. */
std::shared_ptr<const sim::BlockProgram>
buildBlockProgram(const assem::Image &image,
                  std::shared_ptr<const sim::DecodedText> predecoded =
                      nullptr);

/** Run to completion with optional probes (not owned). `predecoded`
 *  optionally shares one decode table across runs of the same image
 *  (see sim::DecodedText); `blocks` optionally enables block-compiled
 *  dispatch (ignored by probe-attached runs except trace capture —
 *  results are bit-identical either way). */
RunMeasurement run(const assem::Image &image,
                   std::vector<sim::Probe *> probes = {},
                   sim::MachineConfig config = {},
                   std::shared_ptr<const sim::DecodedText> predecoded =
                       nullptr,
                   std::shared_ptr<const sim::BlockProgram> blocks =
                       nullptr);

/** Convenience: build + run. */
RunMeasurement buildAndRun(std::string_view source,
                           const mc::CompileOptions &opts,
                           std::vector<sim::Probe *> probes = {});

// ----- the paper's performance formulas (§4, Appendix A) ---------------

/** Cacheless: Cycles = IC + Interlocks + latency * (IReq + DReq). */
inline uint64_t
cyclesNoCache(const sim::SimStats &stats, int waitStates,
              uint64_t ifetchRequests)
{
    return stats.baseCycles() +
           static_cast<uint64_t>(waitStates) *
               (ifetchRequests + stats.memOps());
}

/** With caches: Cycles = IC + Interlocks + missPenalty * misses. */
inline uint64_t
cyclesWithCache(const sim::SimStats &stats, int missPenalty,
                const mem::CacheStats &icache,
                const mem::CacheStats &dcache)
{
    return stats.baseCycles() +
           static_cast<uint64_t>(missPenalty) *
               (icache.misses() + dcache.misses());
}

} // namespace d16sim::core

#endif // D16SIM_CORE_TOOLCHAIN_HH
