/**
 * @file
 * Job specification, job result, and the thread-safe ResultStore the
 * sweep engine and the bench drivers share.
 *
 * Keys follow the convention the old bench memo used —
 * "<workload>|<variant>" — extended with a third segment naming the
 * probe configuration ("|fb4", "|imm", "|cache:..."), so one store
 * holds every measurement a figure needs. std::map keeps the keys
 * sorted, which is what makes JSON emission canonical.
 */

#ifndef D16SIM_CORE_SWEEP_RESULT_STORE_HH
#define D16SIM_CORE_SWEEP_RESULT_STORE_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/toolchain.hh"
#include "support/json.hh"

namespace d16sim::core::replay
{
struct Trace;
}

namespace d16sim::core::sweep
{

enum class ProbeKind { None, FetchBuffer, CacheSim, ImmClass };

/** One experiment: build `workload` with `opts`, run it under the
 *  selected probe. */
struct JobSpec
{
    std::string workload;
    mc::CompileOptions opts;
    ProbeKind probe = ProbeKind::None;
    uint32_t busBytes = 4;          //!< FetchBuffer: fetch-path width
    mem::CacheConfig icache;        //!< CacheSim
    mem::CacheConfig dcache;        //!< CacheSim

    static JobSpec base(std::string workload, mc::CompileOptions opts);
    static JobSpec fetch(std::string workload, mc::CompileOptions opts,
                         uint32_t busBytes);
    static JobSpec cache(std::string workload, mc::CompileOptions opts,
                         mem::CacheConfig icache, mem::CacheConfig dcache);
    static JobSpec imm(std::string workload, mc::CompileOptions opts);
};

/** Variant segment of the key: CompileOptions::name() plus an "/O<n>"
 *  suffix for non-default optimization levels. */
std::string variantKey(const mc::CompileOptions &opts);

/** "size:block:sub:assoc", e.g. "4096:32:8:1". */
std::string cacheKey(const mem::CacheConfig &cfg);

/** Build-node key: "<workload>|<variant>". */
std::string buildKey(const JobSpec &spec);

/** Full job key: buildKey plus the probe segment (empty for base). */
std::string jobKey(const JobSpec &spec);

struct FetchMetrics
{
    uint32_t busBytes = 0;
    uint64_t requests = 0;  //!< the paper's IRequests
    uint64_t words = 0;     //!< instruction traffic in 32-bit words
};

struct ImmMetrics
{
    uint64_t total = 0;
    uint64_t cmpImmediate = 0;
    uint64_t aluImmediate = 0;
    uint64_t memDisplacement = 0;

    double
    pct(uint64_t v) const
    {
        return total ? 100.0 * static_cast<double>(v) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Everything one job yields. Probe sections are meaningful only for
 *  the job's ProbeKind. */
struct JobResult
{
    ProbeKind probe = ProbeKind::None;
    RunMeasurement run;
    FetchMetrics fetch;
    ImmMetrics imm;
    mem::CacheConfig icacheCfg, dcacheCfg;
    mem::CacheStats icache, dcache;

    Json json() const;
};

/** Execute one job in the calling thread (building the image itself). */
JobResult executeJob(const JobSpec &spec);

/** Execute one job against an already-built image; `predecoded`
 *  optionally shares one decode table across the image's runs and
 *  `blocks` a compiled block program (base runs then use the sim
 *  threaded-code engine; probe runs ignore it). */
JobResult executeJob(const JobSpec &spec, const assem::Image &image,
                     std::shared_ptr<const sim::DecodedText> predecoded =
                         nullptr,
                     std::shared_ptr<const sim::BlockProgram> blocks =
                         nullptr);

/** True when the job's measurement is fully determined by a recorded
 *  trace of its (workload, variant) execution — no re-simulation
 *  needed. Base, cache, and fetch-buffer jobs are; the immediate
 *  classifier is not (it consumes the decoded instruction stream,
 *  which traces do not record). */
bool replayable(const JobSpec &spec);

/** Evaluate one replayable job from a recorded trace. The run section
 *  is the trace's capture measurement; probe sections are computed by
 *  the replay evaluators — bit-identical to direct simulation. */
JobResult replayJob(const JobSpec &spec, const replay::Trace &trace);

/**
 * Thread-safe key -> JobResult map. References returned by put()/at()
 * are stable for the life of the store (std::map nodes never move).
 */
class ResultStore
{
  public:
    /** Insert (first writer wins); returns the stored result. */
    const JobResult &put(const std::string &key, JobResult result);

    /** nullptr when absent. */
    const JobResult *find(const std::string &key) const;

    /** FatalError when absent. */
    const JobResult &at(const std::string &key) const;

    bool contains(const std::string &key) const;
    size_t size() const;

    /** All keys, sorted. */
    std::vector<std::string> keys() const;

    /** The canonical results object: key -> JobResult::json(). */
    Json json() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, JobResult> results_;
};

} // namespace d16sim::core::sweep

#endif // D16SIM_CORE_SWEEP_RESULT_STORE_HH
