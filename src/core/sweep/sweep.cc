#include "core/sweep/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <thread>

#include "core/replay/replay.hh"
#include "core/replay/trace.hh"
#include "core/workloads.hh"
#include "support/error.hh"
#include "support/strings.hh"

namespace d16sim::core::sweep
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Fixed-size worker pool. Tasks may submit further tasks (that is how
 * run jobs are released when their build node finishes); wait()
 * returns when every transitively submitted task has run. The first
 * exception any task throws is rethrown from wait().
 */
class Pool
{
  public:
    explicit Pool(int threads)
    {
        for (int i = 0; i < std::max(1, threads); ++i)
            workers_.emplace_back([this] { work(); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            done_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }

    void
    submit(std::function<void()> task)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++outstanding_;
            queue_.push_back(std::move(task));
        }
        cv_.notify_one();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return outstanding_ == 0; });
        if (error_) {
            std::exception_ptr e = error_;
            error_ = nullptr;
            std::rethrow_exception(e);
        }
    }

  private:
    void
    work()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (true) {
            cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (done_)
                    return;
                continue;
            }
            std::function<void()> task = std::move(queue_.front());
            queue_.pop_front();
            lock.unlock();
            try {
                task();
            } catch (...) {
                std::lock_guard<std::mutex> elock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            lock.lock();
            if (--outstanding_ == 0)
                idle_.notify_all();
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;    //!< work available / shutdown
    std::condition_variable idle_;  //!< outstanding drained
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    int outstanding_ = 0;
    bool done_ = false;
    std::exception_ptr error_;
};

} // namespace

std::vector<std::pair<std::string, mc::CompileOptions>>
paperVariants()
{
    return {
        {"D16/16/2", mc::CompileOptions::d16()},
        {"DLXe/16/2", mc::CompileOptions::dlxe(16, false)},
        {"DLXe/16/3", mc::CompileOptions::dlxe(16, true)},
        {"DLXe/32/2", mc::CompileOptions::dlxe(32, false)},
        {"DLXe/32/3", mc::CompileOptions::dlxe(32, true)},
    };
}

mc::CompileOptions
parseVariant(const std::string &key)
{
    std::string k = toLower(key);
    mc::CompileOptions opts;

    // Optional "/oN" optimization suffix.
    int optLevel = 2;
    if (k.size() > 3 && k[k.size() - 3] == '/' && k[k.size() - 2] == 'o' &&
        k.back() >= '0' && k.back() <= '2') {
        optLevel = k.back() - '0';
        k.resize(k.size() - 3);
    }

    if (k == "d16" || k == "d16/16/2") {
        opts = mc::CompileOptions::d16();
    } else {
        bool narrow = false;
        if (k.size() > 3 && k.substr(k.size() - 3) == "/ni") {
            narrow = true;
            k.resize(k.size() - 3);
        }
        const auto parts = split(k, '/');
        if (parts.size() != 3 || parts[0] != "dlxe")
            fatal("unknown machine variant '", key,
                  "' (want D16, DLXe/<16|32>/<2|3>[/ni], optionally "
                  "+ /O0../O2)");
        const int regs = parts[1] == "16" ? 16 : parts[1] == "32" ? 32 : 0;
        const bool threeAddr = parts[2] == "3";
        if (!regs || (parts[2] != "2" && parts[2] != "3"))
            fatal("unknown machine variant '", key, "'");
        opts = mc::CompileOptions::dlxe(regs, threeAddr);
        opts.narrowImmediates = narrow;
    }
    opts.optLevel = optLevel;
    return opts;
}

Json
SweepTiming::json() const
{
    Json j = Json::object();
    j["threads"] = Json(threads);
    j["executedRuns"] = Json(executedRuns);
    j["executedBuilds"] = Json(executedBuilds);
    j["dedupedRuns"] = Json(dedupedRuns);
    j["cachedRuns"] = Json(cachedRuns);
    j["replayedRuns"] = Json(replayedRuns);
    j["capturedTraces"] = Json(capturedTraces);
    j["simulatedInstructions"] = Json(simulatedInstructions);
    j["wallSeconds"] = Json(wallSeconds);
    j["buildSeconds"] = Json(buildSeconds);
    j["simulateSeconds"] = Json(simulateSeconds);
    j["replaySeconds"] = Json(replaySeconds);
    j["busySeconds"] = Json(busySeconds());
    j["speedup"] = Json(speedup());
    j["simMips"] = Json(simMips());
    return j;
}

SweepEngine::SweepEngine(ResultStore &store, int threads)
    : store_(store), threads_(std::max(1, threads))
{
    timing_.threads = threads_;
}

void
SweepEngine::add(JobSpec spec)
{
    pending_.push_back(std::move(spec));
}

void
SweepEngine::add(std::vector<JobSpec> specs)
{
    for (JobSpec &s : specs)
        pending_.push_back(std::move(s));
}

void
SweepEngine::run()
{
    // Deduplicate the batch and drop jobs the store already has.
    std::map<std::string, JobSpec> unique;
    for (JobSpec &spec : pending_) {
        const std::string key = jobKey(spec);
        if (store_.contains(key)) {
            ++timing_.cachedRuns;
            continue;
        }
        if (!unique.emplace(key, std::move(spec)).second)
            ++timing_.dedupedRuns;
    }
    pending_.clear();

    // Group runs under their build node.
    struct BuildNode
    {
        std::vector<JobSpec> runs;
    };
    std::map<std::string, BuildNode> graph;
    for (auto &[key, spec] : unique)
        graph[buildKey(spec)].runs.push_back(std::move(spec));

    std::mutex timingMutex;
    const auto sweepStart = Clock::now();
    {
        Pool pool(threads_);
        for (auto &[bkey, node] : graph) {
            BuildNode *n = &node;
            pool.submit([this, n, &pool, &timingMutex] {
                // Build once per node: compile+assemble+link, then
                // predecode the text section for every dependent run.
                const auto buildStart = Clock::now();
                auto image = std::make_shared<const assem::Image>(
                    build(workload(n->runs.front().workload).source,
                          n->runs.front().opts));
                auto predecoded =
                    std::make_shared<const sim::DecodedText>(*image);
                // Block translation amortizes like predecoding: once
                // per image, shared by every dependent run.
                std::shared_ptr<const sim::BlockProgram> blocks;
                if (blockEngine_)
                    blocks = buildBlockProgram(*image, predecoded);
                const double bt = secondsSince(buildStart);
                {
                    std::lock_guard<std::mutex> lock(timingMutex);
                    ++timing_.executedBuilds;
                    timing_.buildSeconds += bt;
                }

                auto submitDirect = [this, image, predecoded, blocks,
                                     &pool,
                                     &timingMutex](const JobSpec *s) {
                    pool.submit([this, s, image, predecoded, blocks,
                                 &timingMutex] {
                        const auto simStart = Clock::now();
                        JobResult r =
                            executeJob(*s, *image, predecoded, blocks);
                        const double st = secondsSince(simStart);
                        const uint64_t insns = r.run.stats.instructions;
                        store_.put(jobKey(*s), std::move(r));
                        std::lock_guard<std::mutex> lock(timingMutex);
                        ++timing_.executedRuns;
                        timing_.simulateSeconds += st;
                        timing_.simulatedInstructions += insns;
                    });
                };

                // Trace-replay is worth a capture when the recorded
                // streams settle more than one job (the base run rides
                // along for free) — otherwise simulate directly.
                const JobSpec *baseSpec = nullptr;
                int probeReplayable = 0;
                for (const JobSpec &spec : n->runs) {
                    if (spec.probe == ProbeKind::None)
                        baseSpec = &spec;
                    else if (replayable(spec))
                        ++probeReplayable;
                }
                const bool useTrace =
                    replay_ && probeReplayable >= 1 &&
                    (baseSpec != nullptr || probeReplayable >= 2);

                if (!useTrace) {
                    for (const JobSpec &spec : n->runs)
                        submitDirect(&spec);
                    return;
                }

                // Simulate once under the trace probe; the capture IS
                // the base job's run. Fan out one cheap replay per
                // cache/fetch-buffer key; non-replayable jobs (imm
                // classification) still simulate against the shared
                // image.
                pool.submit([this, n, image, predecoded, blocks,
                             baseSpec, submitDirect, &pool,
                             &timingMutex] {
                    const auto simStart = Clock::now();
                    auto trace = std::make_shared<const replay::Trace>(
                        replay::capture(*image, predecoded, {}, blocks));
                    const double st = secondsSince(simStart);
                    if (baseSpec)
                        store_.put(jobKey(*baseSpec),
                                   replayJob(*baseSpec, *trace));
                    {
                        std::lock_guard<std::mutex> lock(timingMutex);
                        ++timing_.capturedTraces;
                        timing_.simulateSeconds += st;
                        timing_.simulatedInstructions +=
                            trace->base.stats.instructions;
                        if (baseSpec)
                            ++timing_.executedRuns;
                    }
                    for (const JobSpec &spec : n->runs) {
                        if (spec.probe == ProbeKind::None)
                            continue;
                        const JobSpec *s = &spec;
                        if (!replayable(spec)) {
                            submitDirect(s);
                            continue;
                        }
                        pool.submit([this, s, trace, &timingMutex] {
                            const auto replayStart = Clock::now();
                            JobResult r = replayJob(*s, *trace);
                            const double rt = secondsSince(replayStart);
                            store_.put(jobKey(*s), std::move(r));
                            std::lock_guard<std::mutex> lock(timingMutex);
                            ++timing_.executedRuns;
                            ++timing_.replayedRuns;
                            timing_.replaySeconds += rt;
                        });
                    }
                });
            });
        }
        pool.wait();
    }
    timing_.wallSeconds += secondsSince(sweepStart);
}

Json
sweepJson(const ResultStore &store, const SweepTiming *timing)
{
    Json doc = Json::object();
    doc["schema"] = Json("d16sweep-v1");
    doc["results"] = store.json();
    if (timing)
        doc["timing"] = timing->json();
    return doc;
}

namespace
{

void
compareValues(const Json &got, const Json &want, const std::string &path,
              double relTol, int &mismatches, std::string &diff);

void
report(const std::string &path, const std::string &what, int &mismatches,
       std::string &diff)
{
    ++mismatches;
    if (mismatches <= 10)
        diff += "  " + path + ": " + what + "\n";
}

void
compareObjects(const Json &got, const Json &want, const std::string &path,
               double relTol, int &mismatches, std::string &diff)
{
    for (const auto &[k, wv] : want.members()) {
        const Json *gv = got.find(k);
        if (!gv) {
            report(path + "/" + k, "missing in result", mismatches, diff);
            continue;
        }
        compareValues(*gv, wv, path + "/" + k, relTol, mismatches, diff);
    }
    for (const auto &[k, gv] : got.members())
        if (!want.find(k))
            report(path + "/" + k, "not in golden", mismatches, diff);
}

void
compareValues(const Json &got, const Json &want, const std::string &path,
              double relTol, int &mismatches, std::string &diff)
{
    if (want.isNumber() && got.isNumber()) {
        if (want.isInt() && got.isInt()) {
            if (got.asInt() != want.asInt())
                report(path,
                       "got " + std::to_string(got.asInt()) + ", want " +
                           std::to_string(want.asInt()),
                       mismatches, diff);
            return;
        }
        const double g = got.asDouble(), w = want.asDouble();
        const double scale = std::max(std::abs(g), std::abs(w));
        if (std::abs(g - w) > relTol * std::max(scale, 1.0))
            report(path,
                   "got " + std::to_string(g) + ", want " +
                       std::to_string(w),
                   mismatches, diff);
        return;
    }
    if (got.kind() != want.kind()) {
        report(path, "kind mismatch", mismatches, diff);
        return;
    }
    switch (want.kind()) {
      case Json::Kind::Null:
        break;
      case Json::Kind::Bool:
        if (got.asBool() != want.asBool())
            report(path, "bool mismatch", mismatches, diff);
        break;
      case Json::Kind::String:
        if (got.asString() != want.asString())
            report(path,
                   "got \"" + got.asString() + "\", want \"" +
                       want.asString() + "\"",
                   mismatches, diff);
        break;
      case Json::Kind::Array: {
        const auto &gi = got.items(), &wi = want.items();
        if (gi.size() != wi.size()) {
            report(path, "array size mismatch", mismatches, diff);
            break;
        }
        for (size_t i = 0; i < wi.size(); ++i)
            compareValues(gi[i], wi[i], path + "[" + std::to_string(i) + "]",
                          relTol, mismatches, diff);
        break;
      }
      case Json::Kind::Object:
        compareObjects(got, want, path, relTol, mismatches, diff);
        break;
      default:
        break;
    }
}

} // namespace

bool
compareSweeps(const Json &got, const Json &golden, std::string *diff,
              double relTol)
{
    int mismatches = 0;
    std::string out;
    // The comparable section is everything except "timing".
    for (const auto &[k, wv] : golden.members()) {
        if (k == "timing")
            continue;
        const Json *gv = got.find(k);
        if (!gv) {
            report("/" + k, "missing in result", mismatches, out);
            continue;
        }
        compareValues(*gv, wv, "/" + k, relTol, mismatches, out);
    }
    for (const auto &[k, gv] : got.members())
        if (k != "timing" && !golden.find(k))
            report("/" + k, "not in golden", mismatches, out);

    if (mismatches > 10)
        out += "  ... and " + std::to_string(mismatches - 10) + " more\n";
    if (diff)
        *diff = out;
    return mismatches == 0;
}

// ----- standard matrices ----------------------------------------------

namespace
{

mc::CompileOptions
narrowed(mc::CompileOptions opts)
{
    opts.narrowImmediates = true;
    return opts;
}

mem::CacheConfig
paperCacheConfig(uint32_t sizeBytes, uint32_t blockBytes)
{
    mem::CacheConfig cfg;
    cfg.sizeBytes = sizeBytes;
    cfg.blockBytes = blockBytes;
    cfg.subBlockBytes = std::min(blockBytes, 8u);
    return cfg;
}

} // namespace

std::vector<JobSpec>
fullMatrix()
{
    std::vector<JobSpec> jobs;
    const auto variants = paperVariants();
    const mc::CompileOptions d16 = mc::CompileOptions::d16();
    const mc::CompileOptions dlxe = mc::CompileOptions::dlxe();

    for (const Workload &w : workloadSuite()) {
        for (const auto &[label, opts] : variants)
            jobs.push_back(JobSpec::base(w.name, opts));

        // Narrow-immediate ablations (fig10 and bench_ablations).
        jobs.push_back(JobSpec::base(
            w.name, narrowed(mc::CompileOptions::dlxe(16, false))));
        jobs.push_back(JobSpec::base(w.name, narrowed(dlxe)));

        // Immediate classification on restricted DLXe (fig10).
        jobs.push_back(
            JobSpec::imm(w.name, mc::CompileOptions::dlxe(16, false)));

        // Fetch-buffer traffic on 32- and 64-bit buses (figs 13-15).
        for (const mc::CompileOptions &opts : {d16, dlxe})
            for (uint32_t bus : {4u, 8u})
                jobs.push_back(JobSpec::fetch(w.name, opts, bus));

        // Optimization-level ablations (bench_ablations; the cache
        // benchmarks are excluded there to keep the sweep quick).
        if (!w.cacheBenchmark) {
            for (const mc::CompileOptions &opts : {d16, dlxe}) {
                for (int lvl : {0, 1}) {
                    mc::CompileOptions o = opts;
                    o.optLevel = lvl;
                    jobs.push_back(JobSpec::base(w.name, o));
                }
            }
        }
    }

    // The §4.1 cache sweep (figs 16-19) over the cache benchmarks.
    for (const std::string &name : cacheBenchmarkNames()) {
        for (const mc::CompileOptions &opts : {d16, dlxe}) {
            for (uint32_t kb : {1u, 2u, 4u, 8u, 16u}) {
                for (uint32_t block : {8u, 16u, 32u, 64u}) {
                    const mem::CacheConfig cfg =
                        paperCacheConfig(kb * 1024, block);
                    jobs.push_back(JobSpec::cache(name, opts, cfg, cfg));
                }
            }
        }
    }
    return jobs;
}

std::vector<JobSpec>
smokeMatrix()
{
    std::vector<JobSpec> jobs;
    const mc::CompileOptions d16 = mc::CompileOptions::d16();
    const mc::CompileOptions dlxe = mc::CompileOptions::dlxe();

    for (const Workload &w : workloadSuite())
        for (const auto &[label, opts] : paperVariants())
            jobs.push_back(JobSpec::base(w.name, opts));

    for (const std::string &name : {std::string("bubblesort"),
                                    std::string("queens")}) {
        jobs.push_back(
            JobSpec::imm(name, mc::CompileOptions::dlxe(16, false)));
        for (const mc::CompileOptions &opts : {d16, dlxe})
            for (uint32_t bus : {4u, 8u})
                jobs.push_back(JobSpec::fetch(name, opts, bus));
    }

    const mem::CacheConfig cfg = paperCacheConfig(4096, 32);
    for (const std::string &name : cacheBenchmarkNames())
        for (const mc::CompileOptions &opts : {d16, dlxe})
            jobs.push_back(JobSpec::cache(name, opts, cfg, cfg));

    return jobs;
}

std::vector<JobSpec>
smokeBaseMatrix()
{
    std::vector<JobSpec> jobs;
    for (JobSpec &j : smokeMatrix())
        if (j.probe == ProbeKind::None)
            jobs.push_back(std::move(j));
    return jobs;
}

} // namespace d16sim::core::sweep
