/**
 * @file
 * Parallel experiment sweep engine.
 *
 * The paper's evaluation is a matrix of (workload x machine variant x
 * memory configuration) experiments; every figure consumes a slice of
 * it. The sweep engine executes that matrix as a deduplicated job
 * graph on a fixed-size thread pool:
 *
 *  - a *job* is one build+run: compile a workload for a variant, then
 *    simulate it, optionally under one measurement probe (fetch-buffer
 *    counter, split I/D cache, immediate classifier);
 *  - jobs sharing a (workload, variant) pair share one *build node*:
 *    the image is compiled once and its dependent runs are released as
 *    soon as it links;
 *  - results land in a thread-safe ResultStore keyed by the canonical
 *    job key, so result identity and ordering are independent of the
 *    schedule (determinism contract: same matrix => byte-identical
 *    canonical JSON, whatever --jobs is).
 *
 * Per-job wall time and whole-sweep throughput are accounted in
 * SweepTiming; sweepJson() emits everything the §4 formulas consume
 * (see DESIGN.md §8 for the schema).
 */

#ifndef D16SIM_CORE_SWEEP_SWEEP_HH
#define D16SIM_CORE_SWEEP_SWEEP_HH

#include <string>
#include <vector>

#include "core/sweep/result_store.hh"
#include "support/json.hh"

namespace d16sim::core::sweep
{

/** The paper's five machine variants (Tables 5-7 column order),
 *  as (display label, options) pairs. */
std::vector<std::pair<std::string, mc::CompileOptions>> paperVariants();

/** Parse a variant key ("D16", "DLXe/16/2", "DLXe/32/3/ni",
 *  optionally with an "/O0".."/O2" suffix); FatalError if unknown. */
mc::CompileOptions parseVariant(const std::string &key);

/** Whole-sweep accounting, split by phase (build / simulate / replay)
 *  so BENCH numbers are attributable: a cache-variant job evaluated
 *  from a trace books replay time, never build or simulate time. */
struct SweepTiming
{
    int threads = 1;
    int executedRuns = 0;   //!< jobs evaluated this sweep (sim or replay)
    int executedBuilds = 0; //!< unique images compiled this sweep
    int dedupedRuns = 0;    //!< duplicate specs folded away
    int cachedRuns = 0;     //!< jobs already present in the store
    int replayedRuns = 0;   //!< jobs evaluated from a recorded trace
    int capturedTraces = 0; //!< trace-capture simulations
    uint64_t simulatedInstructions = 0;  //!< across sims + captures
    double wallSeconds = 0;  //!< start of run() to completion
    double buildSeconds = 0; //!< compile+assemble+link, per build node
    double simulateSeconds = 0;  //!< direct sims + trace captures
    double replaySeconds = 0;    //!< trace replays
    /** CPU work executed / wall time: the observed parallel speedup
     *  (~= min(threads, width of the job graph) when runs dominate). */
    double
    busySeconds() const
    {
        return buildSeconds + simulateSeconds + replaySeconds;
    }
    double
    speedup() const
    {
        return wallSeconds > 0 ? busySeconds() / wallSeconds : 0.0;
    }
    /** Simulation throughput in millions of instructions per second. */
    double
    simMips() const
    {
        return simulateSeconds > 0
                   ? static_cast<double>(simulatedInstructions) /
                         simulateSeconds / 1e6
                   : 0.0;
    }
    Json json() const;
};

/**
 * Executes a batch of jobs on `threads` workers. Jobs whose key is
 * already present in the store are skipped; duplicate specs in one
 * batch are folded. The first error thrown by any job (build or run)
 * is rethrown from run() after the pool drains.
 */
class SweepEngine
{
  public:
    SweepEngine(ResultStore &store, int threads);

    void add(JobSpec spec);
    void add(std::vector<JobSpec> specs);

    /**
     * Trace-replay mode (default on): a build node with more than one
     * replayable job simulates its image once under a TraceProbe and
     * evaluates the cache/fetch-buffer variants from the recorded
     * streams. Results are bit-identical either way (the golden gate
     * runs both); off re-simulates every job as a correctness
     * cross-check and for A/B timing.
     */
    void setReplay(bool enabled) { replay_ = enabled; }
    bool replayEnabled() const { return replay_; }

    /**
     * Block-engine mode (default on): every build node compiles its
     * image's recovered CFG into a sim::BlockProgram (once, shared),
     * and base runs + trace captures dispatch block-compiled threaded
     * code instead of per-instruction step(). Results are
     * bit-identical either way (the differential gate runs both); off
     * re-simulates through step() for A/B timing and as a correctness
     * cross-check (tools expose this as --no-block-engine).
     */
    void setBlockEngine(bool enabled) { blockEngine_ = enabled; }
    bool blockEngineEnabled() const { return blockEngine_; }

    /** Execute everything added since the last run(); blocks. */
    void run();

    const SweepTiming &timing() const { return timing_; }

  private:
    ResultStore &store_;
    int threads_;
    bool replay_ = true;
    bool blockEngine_ = true;
    std::vector<JobSpec> pending_;
    SweepTiming timing_;
};

/**
 * Full document: {"schema", "matrix", "results"[, "timing"]}. The
 * comparable section is everything except "timing", which carries
 * wall-clock measurements and is omitted when `timing` is null —
 * two sweeps over the same matrix then dump byte-identically.
 */
Json sweepJson(const ResultStore &store, const SweepTiming *timing);

/**
 * Compare two sweep documents' comparable sections: integers, strings
 * and bools exactly; doubles to a relative tolerance (derived rates).
 * Returns true on match; else false with a description of the first
 * few mismatches in *diff.
 */
bool compareSweeps(const Json &got, const Json &golden, std::string *diff,
                   double relTol = 1e-9);

// ----- standard matrices ----------------------------------------------

/**
 * Every job the 12 bench drivers consume: base runs for all workloads
 * x all variants (plus narrow-immediate and O0/O1 ablation variants),
 * fetch-buffer runs on 32- and 64-bit buses, immediate classification,
 * and the §4.1 cache sweep (1K-16K x 8-64B blocks) over the cache
 * benchmarks. A full figure regeneration, embarrassingly parallel.
 */
std::vector<JobSpec> fullMatrix();

/**
 * Smoke scale: the full workload x variant base matrix, but only a
 * representative sample of probe jobs (one cache geometry, two
 * fetch/imm workloads). This is the golden-regression matrix.
 */
std::vector<JobSpec> smokeMatrix();

/**
 * The probe-less slice of the smoke matrix: one base build+run per
 * (workload x paper variant). This is what d16cfa's cross-validation
 * sweeps — every image the golden regression pins, no probe duplicates.
 */
std::vector<JobSpec> smokeBaseMatrix();

} // namespace d16sim::core::sweep

#endif // D16SIM_CORE_SWEEP_SWEEP_HH
