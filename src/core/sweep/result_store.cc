#include "core/sweep/result_store.hh"

#include "core/replay/replay.hh"
#include "core/replay/trace.hh"
#include "core/workloads.hh"
#include "support/error.hh"

namespace d16sim::core::sweep
{

JobSpec
JobSpec::base(std::string workload, mc::CompileOptions opts)
{
    JobSpec s;
    s.workload = std::move(workload);
    s.opts = std::move(opts);
    return s;
}

JobSpec
JobSpec::fetch(std::string workload, mc::CompileOptions opts,
               uint32_t busBytes)
{
    JobSpec s = base(std::move(workload), std::move(opts));
    s.probe = ProbeKind::FetchBuffer;
    s.busBytes = busBytes;
    return s;
}

JobSpec
JobSpec::cache(std::string workload, mc::CompileOptions opts,
               mem::CacheConfig icache, mem::CacheConfig dcache)
{
    JobSpec s = base(std::move(workload), std::move(opts));
    s.probe = ProbeKind::CacheSim;
    s.icache = icache;
    s.dcache = dcache;
    return s;
}

JobSpec
JobSpec::imm(std::string workload, mc::CompileOptions opts)
{
    JobSpec s = base(std::move(workload), std::move(opts));
    s.probe = ProbeKind::ImmClass;
    return s;
}

std::string
variantKey(const mc::CompileOptions &opts)
{
    std::string key = opts.name();
    if (opts.optLevel != 2)
        key += "/O" + std::to_string(opts.optLevel);
    return key;
}

std::string
cacheKey(const mem::CacheConfig &cfg)
{
    return std::to_string(cfg.sizeBytes) + ":" +
           std::to_string(cfg.blockBytes) + ":" +
           std::to_string(cfg.subBlockBytes) + ":" +
           std::to_string(cfg.assoc);
}

std::string
buildKey(const JobSpec &spec)
{
    return spec.workload + "|" + variantKey(spec.opts);
}

std::string
jobKey(const JobSpec &spec)
{
    std::string key = buildKey(spec);
    switch (spec.probe) {
      case ProbeKind::None:
        break;
      case ProbeKind::FetchBuffer:
        key += "|fb" + std::to_string(spec.busBytes);
        break;
      case ProbeKind::CacheSim:
        key += "|cache:i=" + cacheKey(spec.icache) +
               ",d=" + cacheKey(spec.dcache);
        break;
      case ProbeKind::ImmClass:
        key += "|imm";
        break;
    }
    return key;
}

JobResult
executeJob(const JobSpec &spec)
{
    const assem::Image image =
        build(workload(spec.workload).source, spec.opts);
    return executeJob(spec, image);
}

JobResult
executeJob(const JobSpec &spec, const assem::Image &image,
           std::shared_ptr<const sim::DecodedText> predecoded,
           std::shared_ptr<const sim::BlockProgram> blocks)
{
    JobResult r;
    r.probe = spec.probe;
    switch (spec.probe) {
      case ProbeKind::None:
        r.run = core::run(image, {}, {}, std::move(predecoded),
                          std::move(blocks));
        break;
      case ProbeKind::FetchBuffer: {
        FetchBufferProbe fb(spec.busBytes);
        r.run = core::run(image, {&fb}, {}, std::move(predecoded));
        r.fetch.busBytes = spec.busBytes;
        r.fetch.requests = fb.requests();
        r.fetch.words = fb.words();
        break;
      }
      case ProbeKind::CacheSim: {
        CacheProbe cp(spec.icache, spec.dcache);
        r.run = core::run(image, {&cp}, {}, std::move(predecoded));
        r.icacheCfg = spec.icache;
        r.dcacheCfg = spec.dcache;
        r.icache = cp.icache().stats();
        r.dcache = cp.dcache().stats();
        break;
      }
      case ProbeKind::ImmClass: {
        ImmediateClassProbe ic;
        r.run = core::run(image, {&ic}, {}, std::move(predecoded));
        r.imm.total = ic.total();
        r.imm.cmpImmediate = ic.cmpImmediate();
        r.imm.aluImmediate = ic.aluImmediate();
        r.imm.memDisplacement = ic.memDisplacement();
        break;
      }
    }
    return r;
}

bool
replayable(const JobSpec &spec)
{
    return spec.probe == ProbeKind::None ||
           spec.probe == ProbeKind::FetchBuffer ||
           spec.probe == ProbeKind::CacheSim;
}

JobResult
replayJob(const JobSpec &spec, const replay::Trace &trace)
{
    panicIf(!replayable(spec), "job kind cannot be replayed");
    JobResult r;
    r.probe = spec.probe;
    r.run = trace.base;
    switch (spec.probe) {
      case ProbeKind::None:
        break;
      case ProbeKind::FetchBuffer:
        r.fetch.busBytes = spec.busBytes;
        r.fetch.requests = replay::replayFetchRequests(trace, spec.busBytes);
        r.fetch.words = r.fetch.requests * (spec.busBytes / 4);
        break;
      case ProbeKind::CacheSim: {
        r.icacheCfg = spec.icache;
        r.dcacheCfg = spec.dcache;
        auto stats = replay::replayCache(trace, spec.icache, spec.dcache);
        r.icache = stats.first;
        r.dcache = stats.second;
        break;
      }
      case ProbeKind::ImmClass:
        break;
    }
    return r;
}

namespace
{

Json
cacheStatsJson(const mem::CacheConfig &cfg, const mem::CacheStats &s)
{
    Json j = Json::object();
    Json config = Json::object();
    config["sizeBytes"] = Json(cfg.sizeBytes);
    config["blockBytes"] = Json(cfg.blockBytes);
    config["subBlockBytes"] = Json(cfg.subBlockBytes);
    config["assoc"] = Json(cfg.assoc);
    j["config"] = std::move(config);
    j["reads"] = Json(s.reads);
    j["writes"] = Json(s.writes);
    j["readMisses"] = Json(s.readMisses);
    j["writeMisses"] = Json(s.writeMisses);
    j["wordsIn"] = Json(s.wordsIn);
    j["wordsOut"] = Json(s.wordsOut);
    j["missRate"] = Json(s.missRate());
    return j;
}

} // namespace

Json
JobResult::json() const
{
    Json j = Json::object();

    Json r = Json::object();
    r["exitStatus"] = Json(run.exitStatus);
    r["sizeBytes"] = Json(run.sizeBytes);
    r["textBytes"] = Json(run.textBytes);
    r["textInsns"] = Json(run.textInsns);
    r["instructions"] = Json(run.stats.instructions);
    r["loads"] = Json(run.stats.loads);
    r["stores"] = Json(run.stats.stores);
    r["loadInterlocks"] = Json(run.stats.loadInterlocks);
    r["fpInterlocks"] = Json(run.stats.fpInterlocks);
    r["branches"] = Json(run.stats.branches);
    r["takenBranches"] = Json(run.stats.takenBranches);
    r["fpOps"] = Json(run.stats.fpOps);
    r["traps"] = Json(run.stats.traps);
    r["branchBubbles"] = Json(run.stats.branchBubbles);
    j["run"] = std::move(r);

    Json d = Json::object();
    d["baseCycles"] = Json(run.stats.baseCycles());
    d["memOps"] = Json(run.stats.memOps());
    d["interlockRate"] = Json(run.stats.interlockRate());
    j["derived"] = std::move(d);

    switch (probe) {
      case ProbeKind::None:
        break;
      case ProbeKind::FetchBuffer: {
        Json f = Json::object();
        f["busBytes"] = Json(fetch.busBytes);
        f["requests"] = Json(fetch.requests);
        f["words"] = Json(fetch.words);
        j["fetch"] = std::move(f);
        break;
      }
      case ProbeKind::CacheSim:
        j["icache"] = cacheStatsJson(icacheCfg, icache);
        j["dcache"] = cacheStatsJson(dcacheCfg, dcache);
        break;
      case ProbeKind::ImmClass: {
        Json m = Json::object();
        m["total"] = Json(imm.total);
        m["cmpImmediate"] = Json(imm.cmpImmediate);
        m["aluImmediate"] = Json(imm.aluImmediate);
        m["memDisplacement"] = Json(imm.memDisplacement);
        j["imm"] = std::move(m);
        break;
      }
    }
    return j;
}

const JobResult &
ResultStore::put(const std::string &key, JobResult result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.emplace(key, std::move(result)).first->second;
}

const JobResult *
ResultStore::find(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = results_.find(key);
    return it == results_.end() ? nullptr : &it->second;
}

const JobResult &
ResultStore::at(const std::string &key) const
{
    const JobResult *r = find(key);
    if (!r)
        fatal("sweep: no result for job '", key, "'");
    return *r;
}

bool
ResultStore::contains(const std::string &key) const
{
    return find(key) != nullptr;
}

size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
}

std::vector<std::string>
ResultStore::keys() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(results_.size());
    for (const auto &[k, v] : results_)
        out.push_back(k);
    return out;
}

Json
ResultStore::json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Json j = Json::object();
    for (const auto &[k, v] : results_)
        j[k] = v.json();
    return j;
}

} // namespace d16sim::core::sweep
