#include "core/workloads.hh"

#include <sstream>

#include "support/error.hh"

namespace d16sim::core
{

namespace
{

// ---------------------------------------------------------------------
// Stanford-style kernels
// ---------------------------------------------------------------------

const char *ackermannSrc = R"(
/* Computes the Ackermann function (paper: "ackermann"). */
int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int main() {
    print_str("ack(3,5)=");
    print_int(ack(3, 5));
    print_char('\n');
    return 0;
}
)";

const char *bubblesortSrc = R"(
/* Sorting program from the Stanford suite. */
int data[180];
unsigned seed;
unsigned nextRand() {
    seed = seed * 1103515245u + 12345u;
    return seed >> 8;
}
int main() {
    int n = 180;
    int i, j;
    seed = 74755u;
    for (i = 0; i < n; i++) data[i] = (int)(nextRand() % 10000u);
    for (i = 0; i < n - 1; i++)
        for (j = 0; j < n - 1 - i; j++)
            if (data[j] > data[j + 1]) {
                int t = data[j];
                data[j] = data[j + 1];
                data[j + 1] = t;
            }
    int bad = 0;
    for (i = 0; i < n - 1; i++)
        if (data[i] > data[i + 1]) bad++;
    print_str("sorted bad=");
    print_int(bad);
    print_str(" lo=");
    print_int(data[0]);
    print_str(" hi=");
    print_int(data[n - 1]);
    print_char('\n');
    return bad;
}
)";

const char *queensSrc = R"(
/* The Stanford eight-queens program: counts all solutions. */
int cols[8];
int solutions;
int ok(int row, int col) {
    int i;
    for (i = 0; i < row; i++) {
        int c = cols[i];
        if (c == col) return 0;
        if (c - col == row - i) return 0;
        if (col - c == row - i) return 0;
    }
    return 1;
}
void place(int row) {
    int col;
    if (row == 8) { solutions++; return; }
    for (col = 0; col < 8; col++)
        if (ok(row, col)) {
            cols[row] = col;
            place(row + 1);
        }
}
int main() {
    solutions = 0;
    place(0);
    print_str("queens=");
    print_int(solutions);
    print_char('\n');
    return 0;
}
)";

const char *quicksortSrc = R"(
/* The Stanford quicksort program. */
int data[1400];
unsigned seed;
unsigned nextRand() {
    seed = seed * 1103515245u + 12345u;
    return seed >> 8;
}
void qsort_(int lo, int hi) {
    int i = lo, j = hi;
    int pivot = data[(lo + hi) / 2];
    while (i <= j) {
        while (data[i] < pivot) i++;
        while (data[j] > pivot) j--;
        if (i <= j) {
            int t = data[i];
            data[i] = data[j];
            data[j] = t;
            i++;
            j--;
        }
    }
    if (lo < j) qsort_(lo, j);
    if (i < hi) qsort_(i, hi);
}
int main() {
    int n = 1400;
    int i;
    seed = 74755u;
    for (i = 0; i < n; i++) data[i] = (int)(nextRand() % 100000u);
    qsort_(0, n - 1);
    int bad = 0;
    unsigned sum = 0u;
    for (i = 0; i < n; i++) {
        if (i && data[i - 1] > data[i]) bad++;
        sum += (unsigned)data[i];
    }
    print_str("qsort bad=");
    print_int(bad);
    print_str(" sum=");
    print_uint(sum);
    print_char('\n');
    return bad;
}
)";

const char *towersSrc = R"(
/* The Stanford towers of Hanoi program. */
int moves;
void hanoi(int n, int from, int to, int via) {
    if (n == 1) { moves++; return; }
    hanoi(n - 1, from, via, to);
    moves++;
    hanoi(n - 1, via, to, from);
}
int main() {
    moves = 0;
    hanoi(16, 1, 3, 2);
    print_str("moves=");
    print_int(moves);
    print_char('\n');
    return 0;
}
)";

// ---------------------------------------------------------------------
// Text / symbolic programs
// ---------------------------------------------------------------------

const char *grepSrc = R"(
/* Substring + character-class scan over a synthesized corpus
   (substitute for the BSD grep sources). */
char corpus[4096];
char pattern[8] = "abraca";
unsigned seed;
unsigned nextRand() {
    seed = seed * 1103515245u + 12345u;
    return seed >> 8;
}
void fill() {
    int i;
    seed = 99u;
    for (i = 0; i < 4095; i++) {
        unsigned r = nextRand() % 32u;
        if (r < 26u) corpus[i] = 'a' + (int)r;
        else if (r < 30u) corpus[i] = ' ';
        else corpus[i] = '\n';
    }
    /* plant some matches */
    for (i = 300; i < 4000; i += 512) {
        corpus[i] = 'a'; corpus[i+1] = 'b'; corpus[i+2] = 'r';
        corpus[i+3] = 'a'; corpus[i+4] = 'c'; corpus[i+5] = 'a';
    }
    corpus[4095] = 0;
}
int matchAt(char *s, char *p) {
    while (*p) {
        if (*s != *p) return 0;
        s++; p++;
    }
    return 1;
}
int main() {
    fill();
    int pass, hits = 0, vowels = 0, lines = 0;
    for (pass = 0; pass < 12; pass++) {
        char *s = corpus;
        while (*s) {
            char c = *s;
            if (c == pattern[0] && matchAt(s, pattern)) hits++;
            if (c == 'a' || c == 'e' || c == 'i' || c == 'o' ||
                c == 'u') vowels++;
            if (c == '\n') lines++;
            s++;
        }
    }
    print_str("hits=");
    print_int(hits);
    print_str(" vowels=");
    print_int(vowels);
    print_str(" lines=");
    print_int(lines);
    print_char('\n');
    return 0;
}
)";

const char *piSrc = R"(
/* Computes digits of pi with the integer spigot algorithm. */
int a[700];
int main() {
    int digits = 70;
    int n = 10 * digits / 3 + 1;
    int i, j, q, x;
    unsigned check = 0u;
    int predigit = 0, nines = 0, started = 0;
    for (i = 0; i < n; i++) a[i] = 2;
    for (j = 0; j < digits; j++) {
        q = 0;
        for (i = n - 1; i > 0; i--) {
            x = 10 * a[i] + q * (i + 1);
            a[i] = x % (2 * i + 1);
            q = x / (2 * i + 1);
        }
        a[0] = q % 10;
        q = q / 10;
        if (q == 9) {
            nines++;
        } else if (q == 10) {
            if (started) { check = check * 16u + (unsigned)(predigit + 1); }
            while (nines > 0) { check = check * 16u; nines--; }
            predigit = 0;
            started = 1;
        } else {
            if (started) { check = check * 16u + (unsigned)predigit; }
            started = 1;
            predigit = q;
            while (nines > 0) {
                check = check * 16u + 9u;
                nines--;
            }
        }
    }
    print_str("pi check=");
    print_uint(check);
    print_char('\n');
    return 0;
}
)";

// ---------------------------------------------------------------------
// Floating point
// ---------------------------------------------------------------------

const char *linpackSrc = R"(
/* LU factorization + solve, doubles (the linear programming /
   linpack-style kernel). */
double A[576];   /* 24 x 24 */
double b[24];
double x[24];
int main() {
    int n = 24;
    int i, j, k, rep;
    double residual = 0.0;
    for (rep = 0; rep < 3; rep++) {
        /* Fill a diagonally dominant system. */
        unsigned seed = 42u;
        for (i = 0; i < n; i++) {
            double rowsum = 0.0;
            for (j = 0; j < n; j++) {
                seed = seed * 1103515245u + 12345u;
                double v = (double)(int)((seed >> 16) % 19u) - 9.0;
                A[i * n + j] = v;
                if (v < 0.0) rowsum -= v; else rowsum += v;
            }
            A[i * n + i] = rowsum + 1.0;
            b[i] = (double)(i + 1);
        }
        /* LU (no pivoting needed: diagonally dominant). */
        for (k = 0; k < n - 1; k++) {
            for (i = k + 1; i < n; i++) {
                double m = A[i * n + k] / A[k * n + k];
                A[i * n + k] = m;
                for (j = k + 1; j < n; j++)
                    A[i * n + j] -= m * A[k * n + j];
            }
        }
        /* Forward/back substitution. */
        for (i = 0; i < n; i++) {
            double s = b[i];
            for (j = 0; j < i; j++) s -= A[i * n + j] * x[j];
            x[i] = s;
        }
        for (i = n - 1; i >= 0; i--) {
            double s = x[i];
            for (j = i + 1; j < n; j++) s -= A[i * n + j] * x[j];
            x[i] = s / A[i * n + i];
        }
        residual += x[0] + x[n - 1];
    }
    print_str("linpack r=");
    print_f64(residual);
    print_char('\n');
    return 0;
}
)";

const char *matrixSrc = R"(
/* Gaussian elimination (paper: "matrix"). */
double M[400];   /* 20 x 20 */
int main() {
    int n = 20;
    int i, j, k, rep;
    double detSum = 0.0;
    for (rep = 0; rep < 6; rep++) {
        unsigned seed = 7u + (unsigned)rep;
        for (i = 0; i < n; i++) {
            for (j = 0; j < n; j++) {
                seed = seed * 1103515245u + 12345u;
                M[i * n + j] = (double)(int)((seed >> 16) % 9u);
            }
            M[i * n + i] = M[i * n + i] + 10.0;
        }
        double det = 1.0;
        for (k = 0; k < n; k++) {
            det = det * M[k * n + k];
            for (i = k + 1; i < n; i++) {
                double m = M[i * n + k] / M[k * n + k];
                for (j = k; j < n; j++)
                    M[i * n + j] -= m * M[k * n + j];
            }
        }
        if (det < 0.0) det = -det;
        /* keep magnitudes printable */
        while (det > 100.0) det = det / 10.0;
        detSum += det;
    }
    print_str("matrix det=");
    print_f64(detSum);
    print_char('\n');
    return 0;
}
)";

const char *solverSrc = R"(
/* Newton-Raphson iterative solver (paper: "solver"). */
double f(double x) {
    return ((x - 1.0) * x + 3.0) * x - 10.0;
}
double fprime(double x) {
    return (3.0 * x - 2.0) * x + 3.0;
}
int main() {
    double acc = 0.0;
    int trial;
    for (trial = 0; trial < 800; trial++) {
        double x = 0.5 + (double)trial / 200.0;
        int it;
        for (it = 0; it < 20; it++) {
            double fx = f(x);
            if (fx < 0.000001 && fx > -0.000001) break;
            x = x - fx / fprime(x);
        }
        acc += x;
    }
    print_str("solver acc=");
    print_f64(acc / 800.0);
    print_char('\n');
    return 0;
}
)";

const char *whetstoneSrc = R"(
/* The synthetic floating point benchmark (whetstone-style cycle of
   modules; transcendentals replaced by rational approximations). */
double e1[4];
double t, t2;
double ratApprox(double x) {
    /* rational approximation standing in for sin/cos/exp */
    return x * (1.0 + x * (0.5 + x * 0.1666)) /
           (1.0 + x * (0.3 + x * 0.05));
}
void pa(double *e) {
    int j;
    for (j = 0; j < 6; j++) {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
        e[3] = (-e[0] + e[1] + e[2] + e[3]) / t2;
    }
}
int main() {
    int cycles = 120;
    int i, ix;
    double x = 1.0, y = 1.0, z = 1.0;
    t = 0.499975;
    t2 = 2.0;
    /* module 1: simple identifiers */
    x = 1.0; y = 1.0; z = 1.0;
    for (i = 0; i < cycles * 2; i++) {
        x = (x + y + z) * t;
        y = (x + y - z) * t;
        z = (x - y + z) * t;
    }
    /* module 2: array elements via procedure */
    e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
    for (i = 0; i < cycles; i++) pa(e1);
    /* module 3: integer arithmetic */
    ix = 1;
    int j = 2, k = 3;
    for (i = 0; i < cycles * 8; i++) {
        ix = j * (ix - k) + k * (j - ix);
        if (ix > 100) ix = ix % 97;
        if (ix < -100) ix = -(ix % 89);
    }
    /* module 4: "trig" via the rational stand-in */
    for (i = 0; i < cycles; i++) {
        x = t * ratApprox(x * 0.5);
        y = t * ratApprox(y * 0.25 + x * 0.125);
    }
    print_str("whet x=");
    print_f64(x);
    print_str(" y=");
    print_f64(y);
    print_str(" e=");
    print_f64(e1[0]);
    print_str(" ix=");
    print_int(ix);
    print_char('\n');
    return 0;
}
)";

// ---------------------------------------------------------------------
// Struct / string synthetic mix
// ---------------------------------------------------------------------

const char *dhrystoneSrc = R"(
/* The synthetic benchmark (dhrystone-style record/string mix). */
struct record {
    int discr;
    int enumComp;
    int intComp;
    char stringComp[32];
    int next;            /* index into pool: -1 = none */
};
struct record pool[4];
char str1[32] = "DHRYSTONE PROGRAM SOME STRING";
char str2[32];
int intGlob;
char chGlob;

int strcmp_(char *a, char *b) {
    while (*a && *a == *b) { a++; b++; }
    return *a - *b;
}
void strcpy_(char *d, char *s) {
    while (*s) { *d = *s; d++; s++; }
    *d = 0;
}
int func2(char *s1, char *s2) {
    int i = 1;
    char c = 0;
    while (i <= 1) {
        if (s1[i] == s2[i + 1]) { c = 'A'; i++; }
        else i++;
    }
    if (c >= 'W' && c < 'Z') i = 7;
    if (c == 'R') return 1;
    if (strcmp_(s1, s2) > 0) { intGlob += 10; return 1; }
    return 0;
}
void proc7(int a, int b, int *out) { *out = a + b + 2; }
void proc8(int *arr, int idx, int val) {
    arr[idx] = val;
    arr[idx + 1] = arr[idx];
    intGlob = 5;
}
void proc1(int idx) {
    struct record *p = &pool[idx];
    struct record *next = &pool[p->next];
    *next = pool[idx];
    p->intComp = 5;
    next->intComp = p->intComp;
    proc7(next->intComp, 10, &next->intComp);
    if (next->discr == 0) {
        next->intComp = 6;
        next->enumComp = p->enumComp;
    }
}
int main() {
    int runs = 1500;
    int i, run;
    int arr[12];
    pool[0].discr = 0;
    pool[0].enumComp = 2;
    pool[0].intComp = 40;
    pool[0].next = 1;
    strcpy_(pool[0].stringComp, str1);
    pool[1] = pool[0];
    pool[1].next = 0;
    intGlob = 0;
    for (run = 0; run < runs; run++) {
        strcpy_(str2, "DHRYSTONE PROGRAM 2 STRING");
        proc1(0);
        for (i = 0; i < 10; i++) arr[i] = run + i;
        proc8(arr, 3, run);
        if (func2(str1, str2)) intGlob++;
        chGlob = (char)('A' + (run % 26));
    }
    print_str("dhry ig=");
    print_int(intGlob);
    print_str(" ic=");
    print_int(pool[1].intComp);
    print_str(" ch=");
    print_char(chGlob);
    print_char('\n');
    return 0;
}
)";

// ---------------------------------------------------------------------
// Cache benchmarks: large-footprint programs (assem, latex, ipl)
// ---------------------------------------------------------------------

/** Synthesize `count` distinct phase functions plus a dispatcher that
 *  calls them round-robin; gives the program an instruction working
 *  set spanning the paper's 1K-16K cache sweep. */
std::string
synthesizePhases(const char *prefix, int count)
{
    std::ostringstream os;
    for (int i = 0; i < count; ++i) {
        const int c1 = 3 + (i * 7) % 23;
        const int c2 = 1 + (i * 5) % 13;
        const int c3 = 2 + (i * 11) % 29;
        os << "int " << prefix << "phase" << i << "(int v) {\n"
           << "    int r = v + " << c1 << ";\n";
        // Several rounds of distinct straight-line mixing so each
        // phase occupies a realistic slab of instruction memory.
        for (int round = 0; round < 6; ++round) {
            const int k1 = 1 + (i + round) % 5;
            const int k2 = 2 + (i + 2 * round) % 4;
            const int k3 = 1 + (i * 3 + round * 7) % 30;
            os << "    r ^= r << " << k1 << ";\n"
               << "    r += r >> " << k2 << ";\n"
               << "    r ^= v + " << k3 << ";\n"
               << "    if (r & " << (1 << ((i + round) % 8)) << ") r -= "
               << c2 + round << "; else r += " << c3 + round << ";\n";
        }
        os << "    r ^= v >> 1;\n"
           << "    r += v & " << (15 + i % 17) << ";\n"
           << "    if (r < 0) r = -r;\n"
           << "    return r % " << (97 + i) << ";\n"
           << "}\n";
    }
    os << "int " << prefix << "dispatch(int round, int v) {\n";
    os << "    int w = v;\n";
    for (int i = 0; i < count; ++i)
        os << "    w += " << prefix << "phase" << i << "(w + round);\n";
    os << "    return w;\n}\n";
    return os.str();
}

std::string
assemSrc()
{
    std::string src = R"(
/* A miniature two-pass assembler over an embedded source program
   (substitute for the D16 assembler, the paper's "assem"/"as16"). */
char src_[2048];
char symNames[128][8];
int symValues[64];
int symCount;
int words[512];
int wordCount;
unsigned seed;
unsigned nextRand() {
    seed = seed * 1103515245u + 12345u;
    return seed >> 8;
}
void makeSource() {
    /* synthesize "label: op reg, imm" lines */
    int pos = 0, line = 0;
    seed = 1234u;
    while (pos < 1900) {
        if (line % 4 == 0) {
            src_[pos++] = 'L';
            src_[pos++] = 'a' + (char)(line / 4 % 26);
            src_[pos++] = 'a' + (char)(line / 104 % 26);
            src_[pos++] = ':';
            src_[pos++] = ' ';
        }
        unsigned op = nextRand() % 4u;
        if (op == 0u) { src_[pos++]='a'; src_[pos++]='d'; src_[pos++]='d'; }
        else if (op == 1u) { src_[pos++]='s'; src_[pos++]='u'; src_[pos++]='b'; }
        else if (op == 2u) { src_[pos++]='l'; src_[pos++]='d'; src_[pos++]='w'; }
        else { src_[pos++]='b'; src_[pos++]='r'; src_[pos++]='a'; }
        src_[pos++] = ' ';
        src_[pos++] = 'r';
        src_[pos++] = '0' + (char)(nextRand() % 8u);
        src_[pos++] = ',';
        src_[pos++] = '0' + (char)(nextRand() % 10u);
        src_[pos++] = '0' + (char)(nextRand() % 10u);
        src_[pos++] = '\n';
        line++;
    }
    src_[pos] = 0;
}
int lookup(char *name, int len) {
    int i, j;
    for (i = 0; i < symCount; i++) {
        int same = 1;
        for (j = 0; j < len; j++)
            if (symNames[i][j] != name[j]) { same = 0; break; }
        if (same && symNames[i][len] == 0) return i;
    }
    if (symCount >= 128) return 0;
    /* insert */
    for (j = 0; j < len; j++) symNames[symCount][j] = name[j];
    symNames[symCount][len] = 0;
    symValues[symCount] = -1;
    symCount++;
    return symCount - 1;
}
int opcodeOf(char a, char b, char c) {
    if (a == 'a' && b == 'd') return 1;
    if (a == 's') return 2;
    if (a == 'l') return 3;
    if (a == 'b' && c == 'a') return 4;
    return 0;
}
void assemble(int pass) {
    int pos = 0, pc = 0;
    wordCount = 0;
    while (src_[pos]) {
        /* optional label */
        if (src_[pos] == 'L') {
            int start = pos;
            while (src_[pos] != ':') pos++;
            int id = lookup(&src_[start], pos - start);
            if (pass == 0) symValues[id] = pc;
            pos++;
            while (src_[pos] == ' ') pos++;
        }
        char a = src_[pos], b = src_[pos+1], c = src_[pos+2];
        pos += 3;
        int op = opcodeOf(a, b, c);
        while (src_[pos] == ' ') pos++;
        pos++; /* 'r' */
        int rn = src_[pos] - '0';
        pos++;
        pos++; /* ',' */
        int imm = 0;
        while (src_[pos] >= '0' && src_[pos] <= '9') {
            imm = imm * 10 + (src_[pos] - '0');
            pos++;
        }
        while (src_[pos] == '\n') pos++;
        if (pass == 1 && wordCount < 512)
            words[wordCount++] = (op << 24) | (rn << 16) | imm;
        pc++;
        mixState = as_dispatch(pc, mixState);
    }
}
)";
    src = std::string("int mixState;\nint as_dispatch(int round, int v);\n") +
          src + synthesizePhases("as_", 15);
    src += R"(
int main() {
    makeSource();
    int rep;
    unsigned check = 0u;
    mixState = 1;
    for (rep = 0; rep < 2; rep++) {
        symCount = 0;
        assemble(0);
        assemble(1);
        int i;
        for (i = 0; i < wordCount; i++)
            check = check * 31u + (unsigned)words[i];
    }
    print_str("assem syms=");
    print_int(symCount);
    print_str(" words=");
    print_int(wordCount);
    print_str(" check=");
    print_uint(check % 100000u);
    print_str(" mix=");
    print_int(mixState);
    print_char('\n');
    return 0;
}
)";
    return src;
}

std::string
latexSrc()
{
    std::string src = R"(
/* A greedy paragraph typesetter over synthesized text (substitute for
   the paper's LaTeX run). */
char text[6144];
int lineWidths[400];
unsigned seed;
unsigned nextRand() {
    seed = seed * 1103515245u + 12345u;
    return seed >> 8;
}
void makeText() {
    int pos = 0;
    seed = 777u;
    while (pos < 6000) {
        unsigned wlen = 2u + nextRand() % 9u;
        unsigned i;
        for (i = 0u; i < wlen && pos < 6000; i++)
            text[pos++] = 'a' + (char)(nextRand() % 26u);
        text[pos++] = ' ';
    }
    text[pos] = 0;
}
int breakParagraph(int width) {
    /* greedy fill: returns number of lines */
    int lines = 0, col = 0, pos = 0;
    int badness = 0;
    while (text[pos]) {
        /* measure next word */
        int wlen = 0;
        while (text[pos + wlen] && text[pos + wlen] != ' ') wlen++;
        if (col != 0 && col + 1 + wlen > width) {
            int slack = width - col;
            badness += slack * slack;
            if (lines < 400) lineWidths[lines] = col;
            lines++;
            col = 0;
            if ((lines & 3) == 0)
                mixState = tx_dispatch(lines, mixState);
        }
        if (col != 0) col++;
        col += wlen;
        pos += wlen;
        while (text[pos] == ' ') pos++;
    }
    if (col) lines++;
    return lines * 1000 + badness % 1000;
}
)";
    src = std::string("int mixState;\nint tx_dispatch(int round, int v);\n") + src + synthesizePhases("tx_", 24);
    src += R"(
int main() {
    makeText();
    int w, total = 0;
    mixState = 3;
    for (w = 38; w <= 72; w += 2) {
        total += breakParagraph(w);
    }
    print_str("latex total=");
    print_int(total);
    print_str(" mix=");
    print_int(mixState);
    print_char('\n');
    return 0;
}
)";
    return src;
}

std::string
iplSrc()
{
    std::string src = R"(
/* A plotting-command generator: samples curves, scales to device
   coordinates, and emits move/draw opcodes (substitute for the ipl
   PostScript plotting package). */
int cmds[2048];
int cmdCount;
int emit(int op, int x, int y) {
    if (cmdCount < 2048) cmds[cmdCount++] = (op << 28) | (x << 14) | y;
    return cmdCount;
}
/* fixed-point sine-ish curve via cubic approximation, x in [0,4096) */
int curve(int x, int k) {
    int t = (x * k) % 8192;
    if (t > 4096) t = 8192 - t;
    /* t*(4096-t) scaled */
    int v = (t / 16) * ((4096 - t) / 16);
    return v / 64;
}
int plotCurve(int k, int samples) {
    int i, lastx = 0, lasty = 0;
    int clipped = 0;
    for (i = 0; i < samples; i++) {
        int x = (i * 4096) / samples;
        int y = curve(x, k);
        /* window/viewport transform */
        int dx = 40 + (x * 560) / 4096;
        int dy = 40 + (y * 400) / 1024;
        if (dy > 440) { dy = 440; clipped++; }
        if (i == 0) emit(1, dx, dy);
        else if (dx != lastx || dy != lasty) emit(2, dx, dy);
        lastx = dx;
        lasty = dy;
        if ((i & 7) == 0) mixState = pl_dispatch(i, mixState);
    }
    return clipped;
}
)";
    src = std::string("int mixState;\nint pl_dispatch(int round, int v);\n") + src + synthesizePhases("pl_", 20);
    src += R"(
int main() {
    int k, clipped = 0;
    unsigned check = 0u;
    mixState = 9;
    for (k = 1; k <= 9; k++) {
        cmdCount = 0;
        clipped += plotCurve(k, 500);
        int i;
        for (i = 0; i < cmdCount; i++)
            check = check * 17u + (unsigned)cmds[i];
    }
    print_str("ipl cmds=");
    print_int(cmdCount);
    print_str(" clip=");
    print_int(clipped);
    print_str(" check=");
    print_uint(check % 100000u);
    print_str(" mix=");
    print_int(mixState);
    print_char('\n');
    return 0;
}
)";
    return src;
}

std::vector<Workload>
buildSuite()
{
    std::vector<Workload> suite;
    auto add = [&](const std::string &name, const std::string &desc,
                   std::string src, bool fp = false, bool cacheB = false) {
        Workload w;
        w.name = name;
        w.description = desc;
        w.source = std::move(src);
        w.floatingPoint = fp;
        w.cacheBenchmark = cacheB;
        suite.push_back(std::move(w));
    };

    add("ackermann", "Computes the Ackermann function", ackermannSrc);
    add("assem", "The D16 assembler (miniature two-pass assembler)",
        assemSrc(), false, true);
    add("bubblesort", "Sorting program from the Stanford suite",
        bubblesortSrc);
    add("queens", "The Stanford eight-queens program", queensSrc);
    add("quicksort", "The Stanford quicksort program", quicksortSrc);
    add("towers", "The Stanford towers of Hanoi program", towersSrc);
    add("grep", "The Unix utility (substring/char-class scan)", grepSrc);
    add("linpack", "The linear programming benchmark (LU solve)",
        linpackSrc, true);
    add("matrix", "Gaussian elimination", matrixSrc, true);
    add("dhrystone", "The synthetic benchmark", dhrystoneSrc);
    add("pi", "Computes digits of pi", piSrc);
    add("solver", "Newton-Raphson iterative solver", solverSrc, true);
    add("latex", "The typesetter (greedy paragraph breaker)", latexSrc(),
        false, true);
    add("ipl", "PostScript plotting package (command generator)",
        iplSrc(), false, true);
    add("whetstone", "The synthetic floating point benchmark",
        whetstoneSrc, true);
    return suite;
}

} // namespace

const std::vector<Workload> &
workloadSuite()
{
    static const std::vector<Workload> suite = buildSuite();
    return suite;
}

const Workload &
workload(const std::string &name)
{
    for (const Workload &w : workloadSuite())
        if (w.name == name)
            return w;
    fatal("unknown workload: ", name);
}

std::vector<std::string>
cacheBenchmarkNames()
{
    return {"assem", "latex", "ipl"};
}

} // namespace d16sim::core
