/**
 * @file
 * Flat byte-addressable memory with natural-alignment enforcement.
 *
 * Little-endian, like the image encoder. Misaligned or out-of-range
 * accesses raise FatalError (they indicate a bug in the guest program
 * or compiler, not in the library).
 */

#ifndef D16SIM_MEM_MEMORY_HH
#define D16SIM_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include <algorithm>
#include <string>

#include "asm/image.hh"
#include "support/error.hh"
#include "support/strings.hh"

namespace d16sim::mem
{

class Memory
{
  public:
    explicit Memory(uint32_t size) : bytes_(size, 0) {}

    uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }

    /** Copy an image's text+data into place. */
    void
    loadImage(const assem::Image &img)
    {
        check(img.textBase, static_cast<uint32_t>(img.bytes.size()), 1);
        std::copy(img.bytes.begin(), img.bytes.end(),
                  bytes_.begin() + img.textBase);
    }

    uint8_t
    read8(uint32_t addr) const
    {
        check(addr, 1, 1);
        return bytes_[addr];
    }

    uint16_t
    read16(uint32_t addr) const
    {
        check(addr, 2, 2);
        return static_cast<uint16_t>(bytes_[addr] | (bytes_[addr + 1] << 8));
    }

    uint32_t
    read32(uint32_t addr) const
    {
        check(addr, 4, 4);
        return static_cast<uint32_t>(bytes_[addr]) |
               (static_cast<uint32_t>(bytes_[addr + 1]) << 8) |
               (static_cast<uint32_t>(bytes_[addr + 2]) << 16) |
               (static_cast<uint32_t>(bytes_[addr + 3]) << 24);
    }

    void
    write8(uint32_t addr, uint8_t v)
    {
        check(addr, 1, 1);
        bytes_[addr] = v;
    }

    void
    write16(uint32_t addr, uint16_t v)
    {
        check(addr, 2, 2);
        bytes_[addr] = static_cast<uint8_t>(v);
        bytes_[addr + 1] = static_cast<uint8_t>(v >> 8);
    }

    void
    write32(uint32_t addr, uint32_t v)
    {
        check(addr, 4, 4);
        bytes_[addr] = static_cast<uint8_t>(v);
        bytes_[addr + 1] = static_cast<uint8_t>(v >> 8);
        bytes_[addr + 2] = static_cast<uint8_t>(v >> 16);
        bytes_[addr + 3] = static_cast<uint8_t>(v >> 24);
    }

    /** Read a NUL-terminated guest string (for trap services). */
    std::string
    readString(uint32_t addr, uint32_t maxLen = 1 << 20) const
    {
        std::string out;
        while (out.size() < maxLen) {
            const uint8_t c = read8(addr++);
            if (!c)
                break;
            out.push_back(static_cast<char>(c));
        }
        return out;
    }

  private:
    void
    check(uint32_t addr, uint32_t len, uint32_t align) const
    {
        if (addr % align != 0) {
            fatal("misaligned ", len, "-byte access at address ",
                  hexString(addr));
        }
        if (addr + len > bytes_.size() || addr + len < addr) {
            fatal("memory access out of range at address ",
                  hexString(addr));
        }
    }

    std::vector<uint8_t> bytes_;
};

} // namespace d16sim::mem

#endif // D16SIM_MEM_MEMORY_HH
