/**
 * @file
 * Sub-blocked cache model (the dinero-equivalent of paper §4.1).
 *
 * Matches the paper's configuration vocabulary: direct-mapped (or
 * set-associative) caches organized as blocks of 8..64 bytes with 4- or
 * 8-byte sub-blocks, wrap-around prefetch of the remainder of the block
 * on read misses, no prefetch on writes, write-allocate, write-back.
 *
 * Each frame holds one tag plus per-sub-block valid and dirty bits
 * (a "sector cache"): a read that hits the tag but misses its
 * sub-block counts as a miss and fills the invalid sub-blocks of the
 * block; a write miss fetches only the written sub-block.
 *
 * Traffic is counted in 32-bit words: wordsIn (memory -> cache fills
 * and prefetches) and wordsOut (dirty write-backs), the quantities
 * behind the paper's Figure 19 "Words/Cycle" curves.
 */

#ifndef D16SIM_MEM_CACHE_HH
#define D16SIM_MEM_CACHE_HH

#include <cstdint>
#include <vector>

namespace d16sim::mem
{

struct CacheConfig
{
    uint32_t sizeBytes = 4096;
    uint32_t blockBytes = 32;
    uint32_t subBlockBytes = 8;
    uint32_t assoc = 1;                  //!< 1 = direct-mapped
    bool prefetchWrapAround = true;      //!< fill rest of block on read miss
    bool writeAllocate = true;
    bool writeBack = true;
};

struct CacheStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t readMisses = 0;
    uint64_t writeMisses = 0;
    uint64_t wordsIn = 0;   //!< words fetched from memory
    uint64_t wordsOut = 0;  //!< words written back to memory

    uint64_t accesses() const { return reads + writes; }
    uint64_t misses() const { return readMisses + writeMisses; }

    double
    missRate() const
    {
        return accesses() ? static_cast<double>(misses()) /
                                static_cast<double>(accesses())
                          : 0.0;
    }

    double
    readMissRate() const
    {
        return reads ? static_cast<double>(readMisses) /
                           static_cast<double>(reads)
                     : 0.0;
    }

    double
    writeMissRate() const
    {
        return writes ? static_cast<double>(writeMisses) /
                            static_cast<double>(writes)
                      : 0.0;
    }

    uint64_t wordsTransferred() const { return wordsIn + wordsOut; }
};

class Cache
{
  public:
    explicit Cache(CacheConfig config);

    /**
     * Simulate one access. `size` bytes at `addr` (the access must not
     * span a sub-block, which natural alignment guarantees).
     * @return true on hit.
     */
    bool access(uint32_t addr, int size, bool isWrite);

    /** Read access convenience. */
    bool read(uint32_t addr, int size) { return access(addr, size, false); }
    /** Write access convenience. */
    bool write(uint32_t addr, int size) { return access(addr, size, true); }

    /**
     * `count` sequential reads of `size` bytes each, starting at
     * `addr` and advancing by `size` — exactly equivalent to calling
     * read() `count` times, but references after the first to one
     * sub-block are folded into the counters (they are guaranteed
     * hits: nothing can evict the sub-block between them). This is the
     * trace-replay fast path for instruction streams.
     */
    void readSeq(uint32_t addr, int size, uint32_t count);

    /** Flush: write back all dirty sub-blocks and invalidate. */
    void flush();

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

    uint32_t numSets() const { return numSets_; }
    uint32_t subBlocksPerBlock() const { return subPerBlock_; }

  private:
    struct Frame
    {
        uint32_t tag = 0;
        bool anyValid = false;
        uint64_t lastUse = 0;
        std::vector<bool> valid;
        std::vector<bool> dirty;
    };

    Frame &findVictim(uint32_t set);
    void evict(Frame &frame);

    CacheConfig config_;
    uint32_t numSets_ = 0;
    uint32_t subPerBlock_ = 0;
    uint32_t wordsPerSub_ = 0;

    // Shift/mask forms of the geometry divisors. Every dimension is a
    // power of two (asserted in the constructor), so set indexing and
    // sub-block selection are single-cycle bit operations on the
    // access hot path.
    uint32_t blockShift_ = 0;  //!< log2(blockBytes)
    uint32_t subShift_ = 0;    //!< log2(subBlockBytes)
    uint32_t setShift_ = 0;    //!< log2(numSets)
    uint32_t setMask_ = 0;     //!< numSets - 1
    uint32_t blockMask_ = 0;   //!< blockBytes - 1
    uint64_t useClock_ = 0;
    std::vector<Frame> frames_;  //!< numSets x assoc
    CacheStats stats_;
};

} // namespace d16sim::mem

#endif // D16SIM_MEM_CACHE_HH
