#include "mem/cache.hh"

#include "support/bits.hh"
#include "support/error.hh"

namespace d16sim::mem
{

Cache::Cache(CacheConfig config) : config_(config)
{
    const auto &c = config_;
    if (!isPowerOfTwo(c.sizeBytes) || !isPowerOfTwo(c.blockBytes) ||
        !isPowerOfTwo(c.subBlockBytes) || !isPowerOfTwo(c.assoc)) {
        fatal("cache geometry must be powers of two");
    }
    if (c.subBlockBytes < 4 || c.subBlockBytes > c.blockBytes)
        fatal("sub-block size must be in [4, blockBytes]");
    if (c.blockBytes * c.assoc > c.sizeBytes)
        fatal("cache smaller than one set");
    numSets_ = c.sizeBytes / (c.blockBytes * c.assoc);
    subPerBlock_ = c.blockBytes / c.subBlockBytes;
    wordsPerSub_ = c.subBlockBytes / 4;
    panicIf(!isPowerOfTwo(numSets_),
            "set count must be a power of two");
    blockShift_ = floorLog2(c.blockBytes);
    subShift_ = floorLog2(c.subBlockBytes);
    setShift_ = floorLog2(numSets_);
    setMask_ = numSets_ - 1;
    blockMask_ = c.blockBytes - 1;
    frames_.resize(numSets_ * c.assoc);
    for (Frame &f : frames_) {
        f.valid.assign(subPerBlock_, false);
        f.dirty.assign(subPerBlock_, false);
    }
}

Cache::Frame &
Cache::findVictim(uint32_t set)
{
    Frame *victim = &frames_[set * config_.assoc];
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Frame &f = frames_[set * config_.assoc + w];
        if (!f.anyValid)
            return f;
        if (f.lastUse < victim->lastUse)
            victim = &f;
    }
    return *victim;
}

void
Cache::evict(Frame &frame)
{
    if (!frame.anyValid)
        return;
    if (config_.writeBack) {
        for (uint32_t s = 0; s < subPerBlock_; ++s)
            if (frame.dirty[s])
                stats_.wordsOut += wordsPerSub_;
    }
    frame.anyValid = false;
    frame.valid.assign(subPerBlock_, false);
    frame.dirty.assign(subPerBlock_, false);
}

bool
Cache::access(uint32_t addr, int size, bool isWrite)
{
    panicIf(size <= 0 || static_cast<uint32_t>(size) > config_.subBlockBytes,
            "access size ", size, " exceeds sub-block");
    panicIf((addr >> subShift_) !=
                ((addr + static_cast<uint32_t>(size) - 1) >> subShift_),
            "access spans a sub-block boundary");

    if (isWrite)
        stats_.writes += 1;
    else
        stats_.reads += 1;

    const uint32_t blockAddr = addr >> blockShift_;
    const uint32_t set = blockAddr & setMask_;
    const uint32_t tag = blockAddr >> setShift_;
    const uint32_t sub = (addr & blockMask_) >> subShift_;

    // Look for the tag in the set.
    Frame *hitFrame = nullptr;
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Frame &f = frames_[set * config_.assoc + w];
        if (f.anyValid && f.tag == tag) {
            hitFrame = &f;
            break;
        }
    }

    ++useClock_;

    if (hitFrame && hitFrame->valid[sub]) {
        // Full hit.
        hitFrame->lastUse = useClock_;
        if (isWrite) {
            if (config_.writeBack) {
                hitFrame->dirty[sub] = true;
            } else {
                stats_.wordsOut += (size + 3) / 4;
            }
        }
        return true;
    }

    // Miss (tag miss, or sub-block miss within a resident block).
    if (isWrite)
        stats_.writeMisses += 1;
    else
        stats_.readMisses += 1;

    Frame *frame = hitFrame;
    if (!frame) {
        frame = &findVictim(set);
        evict(*frame);
        frame->tag = tag;
        frame->anyValid = true;
    }
    frame->lastUse = useClock_;

    if (isWrite && !config_.writeAllocate) {
        // Write-around: send the words to memory, no fill.
        stats_.wordsOut += (size + 3) / 4;
        if (!hitFrame) {
            // Nothing was allocated after all.
            frame->anyValid = false;
        }
        return false;
    }

    // Demand fill of the missed sub-block.
    frame->valid[sub] = true;
    frame->dirty[sub] = false;
    stats_.wordsIn += wordsPerSub_;

    if (!isWrite && config_.prefetchWrapAround) {
        // Wrap-around prefetch: fill the remaining (invalid) sub-blocks
        // of the block. No prefetch on writes.
        for (uint32_t s = 0; s < subPerBlock_; ++s) {
            if (!frame->valid[s]) {
                frame->valid[s] = true;
                frame->dirty[s] = false;
                stats_.wordsIn += wordsPerSub_;
            }
        }
    }

    if (isWrite) {
        if (config_.writeBack)
            frame->dirty[sub] = true;
        else
            stats_.wordsOut += (size + 3) / 4;
    }
    return false;
}

void
Cache::readSeq(uint32_t addr, int size, uint32_t count)
{
    const uint32_t stride = static_cast<uint32_t>(size);
    while (count) {
        // References left in this sub-block: the stride equals the
        // access size, so the i-th reference lands at addr + i*size.
        uint32_t k =
            (config_.subBlockBytes - (addr & (config_.subBlockBytes - 1))) /
            stride;
        if (k == 0)
            k = 1;  // let access() report the span violation
        if (k > count)
            k = count;
        access(addr, size, false);
        if (k > 1) {
            // The sub-block is resident now (a read miss demand-fills
            // it) and nothing intervenes, so the next k-1 reads are
            // guaranteed full hits; fold their counter updates.
            const uint32_t blockAddr = addr >> blockShift_;
            const uint32_t set = blockAddr & setMask_;
            const uint32_t tag = blockAddr >> setShift_;
            Frame *frame = nullptr;
            for (uint32_t w = 0; w < config_.assoc; ++w) {
                Frame &f = frames_[set * config_.assoc + w];
                if (f.anyValid && f.tag == tag) {
                    frame = &f;
                    break;
                }
            }
            panicIf(!frame, "readSeq lost the frame it just filled");
            stats_.reads += k - 1;
            useClock_ += k - 1;
            frame->lastUse = useClock_;
        }
        addr += k * stride;
        count -= k;
    }
}

void
Cache::flush()
{
    for (Frame &f : frames_)
        evict(f);
}

} // namespace d16sim::mem
