/**
 * @file
 * Worst-case static stack bounds over the call graph.
 *
 * Each function's frame size comes from its prologue (recovered in
 * cfg.cc); the stack bound is the longest frame-weighted path from the
 * program entry through the call graph. Recursion makes the bound
 * unbounded: every strongly-connected component with a cycle is
 * reported once as a `cfa-recursive-cycle` note (several of the
 * paper's workloads — ackermann, queens, towers — are legitimately
 * recursive, so recursion is informational, never a failure).
 */

#ifndef D16SIM_ANALYSIS_STACK_HH
#define D16SIM_ANALYSIS_STACK_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "verify/diag.hh"

namespace d16sim::analysis
{

struct StackBounds
{
    /** Worst-case stack bytes from the program entry; -1 = unbounded
     *  (recursion reachable from the entry). */
    int64_t maxStackBytes = 0;

    /** True when any call-graph cycle exists (reachable or not). */
    bool recursive = false;

    /** True when every frame on the bounding path parsed. */
    bool framesKnown = true;

    /** Per-function worst-case depth including the function's own
     *  frame; -1 = unbounded. Indexed like ImageCfg::funcs. */
    std::vector<int64_t> depth;
};

StackBounds analyzeStack(const ImageCfg &cfg, verify::DiagEngine &diags);

} // namespace d16sim::analysis

#endif // D16SIM_ANALYSIS_STACK_HH
