#include "analysis/dom.hh"

#include <algorithm>

#include "support/error.hh"

namespace d16sim::analysis
{

bool
DomInfo::dominates(int a, int b) const
{
    for (int x = b; x >= 0; x = idom[x]) {
        if (x == a)
            return true;
        if (idom[x] == x)
            break;
    }
    return false;
}

DomInfo
computeDoms(const ImageCfg &cfg, const Function &fn)
{
    DomInfo out;
    out.idom.assign(cfg.blocks.size(), -1);
    if (fn.entryBlock < 0)
        return out;

    // Reverse postorder over the function's blocks.
    const int fidx = cfg.blocks[fn.entryBlock].func;
    std::vector<int> rpo;
    std::vector<int> state(cfg.blocks.size(), 0);  // 0 new, 1 open, 2 done
    std::vector<std::pair<int, size_t>> stack{{fn.entryBlock, 0}};
    state[fn.entryBlock] = 1;
    while (!stack.empty()) {
        const int b = stack.back().first;
        size_t &next = stack.back().second;
        const auto &succs = cfg.blocks[b].succs;
        if (next < succs.size()) {
            const int s = succs[next++];
            if (state[s] == 0 && cfg.blocks[s].func == fidx) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            state[b] = 2;
            rpo.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(rpo.begin(), rpo.end());

    std::vector<int> order(cfg.blocks.size(), -1);  // block -> rpo index
    for (size_t i = 0; i < rpo.size(); ++i)
        order[rpo[i]] = static_cast<int>(i);

    // Iterative idom (Cooper-Harvey-Kennedy). The entry's idom is
    // itself during iteration; reported as -1 afterwards.
    std::vector<int> idom(cfg.blocks.size(), -1);
    idom[fn.entryBlock] = fn.entryBlock;
    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (order[a] > order[b])
                a = idom[a];
            while (order[b] > order[a])
                b = idom[b];
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == fn.entryBlock)
                continue;
            int newIdom = -1;
            for (int p : cfg.blocks[b].preds) {
                if (order[p] < 0 || idom[p] < 0)
                    continue;  // pred outside the function / unprocessed
                newIdom = newIdom < 0 ? p : intersect(p, newIdom);
            }
            if (newIdom >= 0 && idom[b] != newIdom) {
                idom[b] = newIdom;
                changed = true;
            }
        }
    }

    // Natural loops: back edges t -> h with h dominating t.
    out.idom = idom;
    std::vector<int> headers;
    for (int b : rpo) {
        for (int s : cfg.blocks[b].succs) {
            if (order[s] >= 0 && out.dominates(s, b))
                headers.push_back(s);
        }
    }
    std::sort(headers.begin(), headers.end());
    headers.erase(std::unique(headers.begin(), headers.end()),
                  headers.end());
    out.loopHeaders = std::move(headers);

    out.idom[fn.entryBlock] = -1;
    return out;
}

} // namespace d16sim::analysis
