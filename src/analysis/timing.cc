#include "analysis/timing.hh"

#include <algorithm>
#include <deque>

#include "analysis/dom.hh"
#include "sim/trap.hh"
#include "support/error.hh"
#include "support/strings.hh"

namespace d16sim::analysis
{

using isa::DecodedInst;
using isa::Op;
using isa::OpClass;
using isa::TargetInfo;
using verify::Diag;
using verify::DiagEngine;
using verify::Severity;

namespace
{

// ----- abstract domain ------------------------------------------------
//
// Resource indices: GPR r -> r, FPR f -> 32 + f, FP status -> 64.
// Per resource we keep an interval of *remaining delay*: how many
// cycles a consumer issuing next would stall (the machine's
// ready - (cycle_ + 1), clamped at zero). The maximum possible value
// is maxLatency - 1, so the domain has finite height and the hull
// join converges.

constexpr int NumRes = 65;
constexpr int StatusRes = 64;

struct Rem
{
    uint16_t lo = 0;
    uint16_t hi = 0;
};

struct State
{
    bool valid = false;  //!< bottom until the propagation reaches it
    std::array<Rem, NumRes> r{};
};

State
topState(uint16_t cap)
{
    State s;
    s.valid = true;
    for (Rem &x : s.r)
        x = {0, cap};
    return s;
}

/** Hull join; returns true if `into` changed. */
bool
join(State &into, const State &from)
{
    if (!from.valid)
        return false;
    if (!into.valid) {
        into = from;
        return true;
    }
    bool changed = false;
    for (int i = 0; i < NumRes; ++i) {
        if (from.r[i].lo < into.r[i].lo) {
            into.r[i].lo = from.r[i].lo;
            changed = true;
        }
        if (from.r[i].hi > into.r[i].hi) {
            into.r[i].hi = from.r[i].hi;
            changed = true;
        }
    }
    return changed;
}

// ----- per-op timing effects ------------------------------------------
//
// Mirrors sim::Machine::execute() exactly: which register resources an
// op waits on (in the machine's use order) and which one it defines,
// with the ready-time delta relative to its own issue cycle. This is
// deliberately NOT regEffects(): the canonical D16 nop really does
// read and write the at register for timing purposes, and Trap's
// timing model reads/writes only r2.

struct Eff
{
    std::array<int, 3> uses{};  //!< resource indices
    int nUses = 0;
    int def = -1;       //!< defined resource, -1 = none
    int defDelta = 0;   //!< ready - issue of the def
    bool haltTrap = false;
};

Eff
effectsOf(const TargetInfo &t, const DecodedInst &d,
          const sim::FpLatencies &fpu)
{
    Eff e;
    const bool r0z = t.r0IsZero();
    auto useG = [&](int r) {
        if (r == 0 && r0z)
            return;  // reads of DLXe r0 are always ready
        e.uses[e.nUses++] = r;
    };
    auto useF = [&](int r) { e.uses[e.nUses++] = 32 + r; };
    auto defG = [&](int r, int delta) {
        if (r == 0 && r0z)
            return;  // setGprReady skips r0 on DLXe
        e.def = r;
        e.defDelta = delta;
    };
    auto defF = [&](int r, int delta) {
        e.def = 32 + r;
        e.defDelta = delta;
    };

    switch (d.op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or:
      case Op::Xor: case Op::Shl: case Op::Shr: case Op::Shra:
        useG(d.rs1);
        useG(d.rs2);
        defG(d.rd, 1);
        break;
      case Op::Neg: case Op::Inv: case Op::Mv:
        useG(d.rs1);
        defG(d.rd, 1);
        break;
      case Op::AddI: case Op::SubI: case Op::AndI: case Op::OrI:
      case Op::XorI: case Op::ShlI: case Op::ShrI: case Op::ShraI:
        useG(d.rs1);
        defG(d.rd, 1);
        break;
      case Op::MvI: case Op::MvHI:
        defG(d.rd, 1);
        break;
      case Op::Cmp:
        useG(d.rs1);
        useG(d.rs2);
        defG(d.rd, 1);
        break;
      case Op::CmpI:
        useG(d.rs1);
        defG(d.rd, 1);
        break;
      case Op::Ld: case Op::Ldh: case Op::Ldhu:
      case Op::Ldb: case Op::Ldbu:
        useG(d.rs1);
        defG(d.rd, 2);  // one load delay slot
        break;
      case Op::St: case Op::Sth: case Op::Stb:
        useG(d.rs1);
        useG(d.rs2);
        break;
      case Op::Ldc:
        defG(0, 2);  // pool load into at; a real load delay on D16
        break;
      case Op::Br:
        break;
      case Op::Bz: case Op::Bnz:
        useG(d.rs1);
        break;
      case Op::J:
        break;
      case Op::Jl:
        defG(1, 1);
        break;
      case Op::Jr:
        useG(d.rs1);
        break;
      case Op::Jlr:
        useG(d.rs1);
        defG(1, 1);
        break;
      case Op::Jrz: case Op::Jrnz:
        useG(d.rs1);
        useG(d.rs2);
        break;
      case Op::FAddS: case Op::FSubS:
        useF(d.rs1);
        useF(d.rs2);
        defF(d.rd, fpu.addSub);
        break;
      case Op::FMulS:
        useF(d.rs1);
        useF(d.rs2);
        defF(d.rd, fpu.mul);
        break;
      case Op::FDivS:
        useF(d.rs1);
        useF(d.rs2);
        defF(d.rd, fpu.divS);
        break;
      case Op::FAddD: case Op::FSubD:
        useF(d.rs1);
        useF(d.rs2);
        defF(d.rd, fpu.addSub);
        break;
      case Op::FMulD:
        useF(d.rs1);
        useF(d.rs2);
        defF(d.rd, fpu.mul);
        break;
      case Op::FDivD:
        useF(d.rs1);
        useF(d.rs2);
        defF(d.rd, fpu.divD);
        break;
      case Op::FNegS: case Op::FNegD:
        useF(d.rs1);
        defF(d.rd, fpu.addSub);
        break;
      case Op::FMv:
        useF(d.rs1);
        defF(d.rd, fpu.move);
        break;
      case Op::FCmpS: case Op::FCmpD:
        useF(d.rs1);
        useF(d.rs2);
        e.def = StatusRes;
        e.defDelta = fpu.compare;
        break;
      case Op::CvtSiSf: case Op::CvtSiDf: case Op::CvtSfDf:
      case Op::CvtDfSf: case Op::CvtSfSi: case Op::CvtDfSi:
        useF(d.rs1);
        defF(d.rd, fpu.convert);
        break;
      case Op::MifL: case Op::MifH:
        useG(d.rs1);
        useF(d.rd);  // partial update reads the other half
        defF(d.rd, fpu.move);
        break;
      case Op::MfiL: case Op::MfiH:
        useF(d.rs1);
        defG(d.rd, 1);
        break;
      case Op::Trap:
        useG(2);
        defG(2, 1);
        e.haltTrap = d.imm == sim::TrapHalt;
        break;
      case Op::Rdsr:
        e.uses[e.nUses++] = StatusRes;
        defG(d.rd, 1);
        break;
      case Op::Nop:
        break;  // never decoded, but harmless
      default:
        panic("timing: unexecutable op ", opName(d.op));
    }
    return e;
}

struct StallIv
{
    uint16_t lo = 0;
    uint16_t hi = 0;
};

struct SiteStep
{
    StallIv gpr;    //!< stall contributed by GPR reads (load-use)
    StallIv fp;     //!< stall contributed by FPR/status reads
    StallIv total;  //!< the instruction's stall interval
};

/** Advance `s` across one instruction; returns the stall intervals.
 *  Exact (point intervals stay points) because the machine's stall is
 *  the max of the used resources' remaining delays, the cycle counter
 *  then advances by 1 + stall, and every other resource's remaining
 *  delay decays by exactly that amount. */
SiteStep
stepSite(State &s, const Eff &e)
{
    SiteStep st;
    for (int u = 0; u < e.nUses; ++u) {
        const Rem &r = s.r[e.uses[u]];
        StallIv &cat = e.uses[u] < 32 ? st.gpr : st.fp;
        cat.lo = std::max(cat.lo, r.lo);
        cat.hi = std::max(cat.hi, r.hi);
    }
    st.total.lo = std::max(st.gpr.lo, st.fp.lo);
    st.total.hi = std::max(st.gpr.hi, st.fp.hi);

    // Time advances by 1 + stall; remaining delays decay by that much.
    for (Rem &r : s.r) {
        const int lo = static_cast<int>(r.lo) - 1 - st.total.hi;
        const int hi = static_cast<int>(r.hi) - 1 - st.total.lo;
        r.lo = static_cast<uint16_t>(std::max(0, lo));
        r.hi = static_cast<uint16_t>(std::max(0, hi));
    }
    if (e.def >= 0) {
        const auto rem = static_cast<uint16_t>(e.defDelta - 1);
        s.r[e.def] = {rem, rem};
    }
    return st;
}

int
emitXval(DiagEngine &diags, const ImageCfg &cfg, const char *code,
         uint32_t addr, bool hasAddr, std::string message)
{
    Diag d;
    d.severity = Severity::Error;
    d.code = code;
    d.message = std::move(message);
    d.addr = addr;
    d.hasAddr = hasAddr;
    if (hasAddr)
        d.symbol = cfg.enclosingSymbol(addr);
    diags.report(std::move(d));
    return 1;
}

// ----- the analyzer ---------------------------------------------------

class TimingAnalyzer
{
  public:
    TimingAnalyzer(const ImageCfg &cfg, DiagEngine &diags,
                   const TimingOptions &opts)
        : cfg_(cfg), diags_(diags), opts_(opts)
    {}

    TimingResult run();

  private:
    void computeEffects();
    void propagate();
    void finalizeSites(TimingResult &tr);
    void analyzeLoops(TimingResult &tr);
    void computeBounds(TimingResult &tr);
    void note(const char *code, int insn, std::string message);

    uint16_t
    cap() const
    {
        int m = 2;  // load delta
        const sim::FpLatencies &f = opts_.fpu;
        for (int lat : {f.addSub, f.mul, f.divS, f.divD, f.convert,
                        f.compare, f.move})
            m = std::max(m, lat);
        return static_cast<uint16_t>(m - 1);
    }

    const ImageCfg &cfg_;
    DiagEngine &diags_;
    const TimingOptions &opts_;

    std::vector<Eff> eff_;               //!< per insn site
    std::vector<State> in_;              //!< per block entry
    std::vector<std::vector<int>> returnPoints_;  //!< per function
    std::vector<int64_t> haltPrefixLo_;  //!< per block, -1 = no halt site
    std::vector<int> selfTrip_;  //!< per block: 0 none, -1 unknown, >0 trips
    bool imprecise_ = false;     //!< an indirect transfer defeated tracking
};

void
TimingAnalyzer::computeEffects()
{
    const TargetInfo &t = *cfg_.image->target;
    eff_.reserve(cfg_.insns.size());
    for (const Insn &i : cfg_.insns)
        eff_.push_back(effectsOf(t, i.d, opts_.fpu));
}

void
TimingAnalyzer::propagate()
{
    const size_t nb = cfg_.blocks.size();
    in_.assign(nb, State{});
    returnPoints_.assign(cfg_.funcs.size(), {});

    for (const Block &b : cfg_.blocks) {
        if (b.func < 0)
            continue;
        if (b.hasIndirect)
            imprecise_ = true;
        if (b.isCall && b.callee >= 0)
            for (int s : b.succs)
                returnPoints_[b.callee].push_back(s);
    }

    if (imprecise_) {
        // An unresolvable transfer could land anywhere: every claimed
        // block conservatively starts in the top state. Still sound,
        // no longer precise. Toolchain-emitted images never get here
        // (the linter rejects unresolved indirection).
        const State top = topState(cap());
        for (const Block &b : cfg_.blocks)
            if (b.func >= 0)
                in_[b.id] = top;
        return;
    }

    if (cfg_.entryFunc < 0)
        return;
    const int entry = cfg_.funcs[cfg_.entryFunc].entryBlock;
    in_[entry].valid = true;  // machine starts with every register ready

    std::deque<int> work{entry};
    std::vector<bool> queued(nb, false);
    queued[entry] = true;
    const State top = topState(cap());

    while (!work.empty()) {
        const int id = work.front();
        work.pop_front();
        queued[id] = false;
        const Block &b = cfg_.blocks[id];

        State s = in_[id];
        for (int i = b.first; i <= b.last; ++i)
            stepSite(s, eff_[i]);

        auto push = [&](int t, const State &out) {
            if (join(in_[t], out) && !queued[t]) {
                queued[t] = true;
                work.push_back(t);
            }
        };

        if (b.isCall && b.callee >= 0 &&
            cfg_.funcs[b.callee].entryBlock >= 0) {
            // The callee sees the caller's scoreboard; its return
            // blocks flow back to every return point of the callee
            // (context-insensitive, handled by the isReturn case).
            push(cfg_.funcs[b.callee].entryBlock, s);
        } else if (b.isCall) {
            // Unresolved call: the callee could leave anything in
            // flight when it returns.
            for (int t : b.succs)
                push(t, top);
        } else if (b.isReturn) {
            for (int t : returnPoints_[b.func])
                push(t, s);
        } else {
            for (int t : b.succs)
                push(t, s);
        }
    }
}

void
TimingAnalyzer::note(const char *code, int insn, std::string message)
{
    if (!opts_.siteDiags)
        return;
    Diag d;
    d.severity = Severity::Note;
    d.code = code;
    d.message = std::move(message);
    d.addr = cfg_.insns[insn].addr;
    d.hasAddr = true;
    d.symbol = cfg_.enclosingSymbol(d.addr);
    d.line = cfg_.insns[insn].line;
    diags_.report(std::move(d));
}

void
TimingAnalyzer::finalizeSites(TimingResult &tr)
{
    const TargetInfo &t = *cfg_.image->target;
    const uint32_t bus = opts_.busBytes;
    tr.sites.assign(cfg_.insns.size(), SiteTiming{});
    tr.blocks.assign(cfg_.blocks.size(), BlockTiming{});
    haltPrefixLo_.assign(cfg_.blocks.size(), -1);
    const State top = topState(cap());

    for (const Block &b : cfg_.blocks) {
        BlockTiming &bt = tr.blocks[b.id];
        bt.size = static_cast<uint32_t>(b.size());
        const bool reachable = in_[b.id].valid;
        State s = reachable ? in_[b.id] : top;
        int64_t prefixLo = 0;

        for (int i = b.first; i <= b.last; ++i) {
            const SiteStep st = stepSite(s, eff_[i]);
            SiteTiming &site = tr.sites[i];
            site.stallLo = st.total.lo;
            site.stallHi = st.total.hi;
            site.loadUse = st.gpr.hi > 0;
            site.fpBusy = st.fp.hi > 0;
            site.guaranteedLoad = st.gpr.lo > 0;
            site.guaranteedFp = st.fp.lo > 0;
            site.reachable = reachable;
            bt.stallLo += st.total.lo;
            bt.stallHi += st.total.hi;
            prefixLo += 1 + st.total.lo;
            if (eff_[i].haltTrap && haltPrefixLo_[b.id] < 0)
                haltPrefixLo_[b.id] = prefixLo;

            const Insn &insn = cfg_.insns[i];
            // Branch bubble: a canonical nop in the terminator's shadow.
            if (b.cfIndex >= 0 && i == b.cfIndex + 1 &&
                isa::isCanonicalNop(t, insn.d)) {
                site.branchBubble = true;
                bt.bubbles += 1;
                note("tim-branch-bubble", i,
                     "unfilled delay slot: canonical nop in a " +
                         std::string(opName(
                             cfg_.insns[b.cfIndex].d.op)) +
                         " shadow");
            }
            // Sequential fetch refill: straight-line execution crosses
            // into a new bus-aligned fetch block at this site.
            if (insn.addr % bus == 0) {
                site.seqRefill = true;
                if (i > b.first)
                    bt.seqRefills += 1;
            }
            // Taken-transfer refill: the target is outside the fetch
            // block that held the delay slot, so taking the branch
            // always costs a buffer refill.
            if (i == b.cfIndex) {
                const Op op = insn.d.op;
                if (op == Op::Br || op == Op::Bz || op == Op::Bnz ||
                    op == Op::J || op == Op::Jl) {
                    const uint32_t target =
                        insn.addr + static_cast<uint32_t>(insn.d.imm);
                    const uint32_t slotAddr =
                        i < b.last ? cfg_.insns[i + 1].addr
                                   : insn.addr;
                    if (target / bus != slotAddr / bus) {
                        site.branchRefill = true;
                        note("tim-fetch-refill", i,
                             "taken " + std::string(opName(op)) +
                                 " to " + hexString(target) +
                                 " always refills the " +
                                 std::to_string(bus) +
                                 "-byte fetch buffer");
                    }
                }
            }
            if (site.guaranteedLoad) {
                note("tim-load-use", i,
                     "load-use interlock: stalls " +
                         std::to_string(st.gpr.lo) +
                         " cycle(s) on a delayed load");
            }
            if (site.guaranteedFp) {
                note("tim-fp-busy", i,
                     "math-unit busy: stalls " +
                         std::to_string(st.fp.lo) +
                         " cycle(s) on an FP result");
            }
        }
    }

    for (size_t i = 0; i < tr.sites.size(); ++i) {
        const SiteTiming &s = tr.sites[i];
        tr.loadUseSites += s.loadUse;
        tr.fpBusySites += s.fpBusy;
        tr.guaranteedStallSites += s.stallLo > 0;
        tr.maybeStallSites += s.stallHi > 0 && s.stallLo == 0;
        tr.preciseSites += s.precise();
        tr.bubbleSites += s.branchBubble;
        tr.seqRefillSites += s.seqRefill;
        tr.branchRefillSites += s.branchRefill;
        tr.staticStallLo += s.stallLo;
        tr.staticStallHi += s.stallHi;
    }
}

void
TimingAnalyzer::analyzeLoops(TimingResult &tr)
{
    // Trip bounds for the one shape we can prove: a single-block
    // self-loop whose terminator tests a counter that every entry
    // initializes with an immediate and the block steps by a constant.
    selfTrip_.assign(cfg_.blocks.size(), 0);

    auto lastDefOf = [&](const Block &b, int res) -> int {
        for (int i = b.last; i >= b.first; --i)
            if (eff_[i].def == res)
                return i;
        return -1;
    };

    for (const Block &b : cfg_.blocks) {
        if (b.func < 0)
            continue;
        const bool self =
            std::find(b.succs.begin(), b.succs.end(), b.id) !=
            b.succs.end();
        if (!self)
            continue;
        selfTrip_[b.id] = -1;  // a loop; unknown trip count until proven
        if (b.cfIndex < 0)
            continue;
        const DecodedInst &cf = cfg_.insns[b.cfIndex].d;
        if (cf.op != Op::Bnz)
            continue;
        const int counter = cf.rs1;
        if (counter == 0 && cfg_.image->target->r0IsZero())
            continue;

        // Exactly one in-block write to the counter: a constant step.
        int writeSite = -1;
        int writes = 0;
        for (int i = b.first; i <= b.last; ++i)
            if (eff_[i].def == counter) {
                writeSite = i;
                ++writes;
            }
        if (writes != 1)
            continue;
        const DecodedInst &w = cfg_.insns[writeSite].d;
        int64_t step = 0;
        if (w.op == Op::AddI && w.rd == counter && w.rs1 == counter)
            step = -static_cast<int64_t>(w.imm);
        else if (w.op == Op::SubI && w.rd == counter && w.rs1 == counter)
            step = static_cast<int64_t>(w.imm);
        else
            continue;
        if (step <= 0)
            continue;

        // Every outside entry must load the counter with one and the
        // same immediate whose countdown hits zero exactly. An
        // immediate load is mvi, or the DLXe assembler's lowering of
        // it: addi rX, r0, N.
        auto immInit = [&](const DecodedInst &d) -> int64_t {
            if (d.op == Op::MvI && d.rd == counter)
                return d.imm;
            if (d.op == Op::AddI && d.rd == counter && d.rs1 == 0 &&
                cfg_.image->target->r0IsZero())
                return d.imm;
            return -1;
        };
        int64_t init = -1;
        bool ok = true;
        for (int p : b.preds) {
            if (p == b.id)
                continue;
            const int def = lastDefOf(cfg_.blocks[p], counter);
            if (def < 0) {
                ok = false;
                break;
            }
            const int64_t n = immInit(cfg_.insns[def].d);
            if (n <= 0 || n % step != 0 || (init >= 0 && n != init)) {
                ok = false;
                break;
            }
            init = n;
        }
        if (!ok || init < 0)
            continue;
        // Decrement before the test: the tested values are
        // init-step .. 0 and the block runs init/step times; a
        // decrement in the delay slot is tested one iteration late.
        const int64_t trips = init / step +
                              (writeSite > b.cfIndex ? 1 : 0);
        selfTrip_[b.id] = static_cast<int>(trips);
    }

    // Classify every natural loop per function.
    for (size_t fi = 0; fi < cfg_.funcs.size(); ++fi) {
        const Function &fn = cfg_.funcs[fi];
        if (fn.entryBlock < 0)
            continue;
        const DomInfo dom = computeDoms(cfg_, fn);
        FuncTiming &ft = tr.funcs[fi];
        for (int h : dom.loopHeaders) {
            bool bounded = selfTrip_[h] > 0;
            // A bounded self-loop must be the loop's only back edge.
            if (bounded)
                for (int b : fn.blocks)
                    for (int s : cfg_.blocks[b].succs)
                        if (s == h && b != h && dom.dominates(h, b))
                            bounded = false;
            (bounded ? ft.boundedLoops : ft.unboundedLoops) += 1;
        }
        tr.boundedLoops += ft.boundedLoops;
        tr.unboundedLoops += ft.unboundedLoops;
    }
}

void
TimingAnalyzer::computeBounds(TimingResult &tr)
{
    constexpr int64_t INF = int64_t{1} << 60;
    const size_t nf = cfg_.funcs.size();

    // Map block id -> dense index per function for the path searches.
    auto intraSuccs = [&](const Block &b) -> const std::vector<int> & {
        return b.succs;  // call blocks' succs are their return points
    };

    // --- best case: shortest supergraph path (cycles are lower-bounded
    // by cost.lo, callees by their own best return cost). Iterate to a
    // fixpoint; values only decrease and are bounded below by zero.
    std::vector<int64_t> bestRet(nf, INF), bestHalt(nf, INF);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t fi = 0; fi < nf; ++fi) {
            const Function &fn = cfg_.funcs[fi];
            if (fn.entryBlock < 0)
                continue;
            std::vector<int64_t> dist(cfg_.blocks.size(), INF);
            dist[fn.entryBlock] = 0;
            // Bellman-Ford over the function's blocks (small graphs;
            // weights are non-negative so |blocks| passes suffice).
            for (size_t pass = 0; pass < fn.blocks.size(); ++pass) {
                bool relaxed = false;
                for (int bid : fn.blocks) {
                    if (dist[bid] >= INF)
                        continue;
                    const Block &b = cfg_.blocks[bid];
                    int64_t w = tr.blocks[bid].cycleLo();
                    if (b.isCall)
                        w += b.callee >= 0 ? bestRet[b.callee] : 1;
                    if (w >= INF)
                        continue;  // the callee never returns (yet)
                    for (int s : intraSuccs(b))
                        if (dist[bid] + w < dist[s]) {
                            dist[s] = dist[bid] + w;
                            relaxed = true;
                        }
                }
                if (!relaxed)
                    break;
            }
            int64_t ret = INF, halt = INF;
            for (int bid : fn.blocks) {
                if (dist[bid] >= INF)
                    continue;
                const Block &b = cfg_.blocks[bid];
                if (b.isReturn)
                    ret = std::min(ret,
                                   dist[bid] + tr.blocks[bid].cycleLo());
                if (haltPrefixLo_[bid] >= 0)
                    halt = std::min(halt, dist[bid] + haltPrefixLo_[bid]);
                if (b.isCall) {
                    // The callee may halt the program outright.
                    const int64_t inCallee =
                        b.callee >= 0 ? bestHalt[b.callee] : 0;
                    halt = std::min(halt, dist[bid] +
                                              tr.blocks[bid].cycleLo() +
                                              inCallee);
                }
            }
            if (ret < bestRet[fi]) {
                bestRet[fi] = ret;
                changed = true;
            }
            if (halt < bestHalt[fi]) {
                bestHalt[fi] = halt;
                changed = true;
            }
        }
    }

    // --- worst case: finite only when every loop is a proven
    // self-loop, the call graph is acyclic, and every call resolves.
    // Longest path over the self-loop-collapsed DAG, callee costs
    // included; -1 anywhere means unbounded.
    std::vector<int64_t> worstRet(nf, -1), worstAny(nf, -1);
    std::vector<char> onCycle(nf, 0);
    {
        // Call-graph cycles via iterative DFS colors.
        std::vector<int> color(nf, 0);
        for (size_t root = 0; root < nf; ++root) {
            if (color[root])
                continue;
            std::vector<std::pair<int, size_t>> stack{
                {static_cast<int>(root), 0}};
            color[root] = 1;
            while (!stack.empty()) {
                auto &[f, ci] = stack.back();
                const auto &callees = cfg_.funcs[f].callees;
                if (ci < callees.size()) {
                    const int c = callees[ci++];
                    if (color[c] == 1) {
                        onCycle[c] = 1;
                        onCycle[f] = 1;
                    } else if (color[c] == 0) {
                        color[c] = 1;
                        stack.push_back({c, 0});
                    }
                } else {
                    color[f] = 2;
                    stack.pop_back();
                }
            }
        }
    }

    changed = true;
    while (changed) {
        changed = false;
        for (size_t fi = 0; fi < nf; ++fi) {
            const Function &fn = cfg_.funcs[fi];
            if (fn.entryBlock < 0)
                continue;
            if (fn.hasUnresolvedCall || onCycle[fi])
                continue;
            if (tr.funcs[fi].unboundedLoops > 0)
                continue;
            bool calleesReady = true;
            for (int c : fn.callees)
                if (worstRet[c] < 0)
                    calleesReady = false;
            if (!calleesReady)
                continue;

            // Topological order over intra edges minus self-loops.
            std::vector<int> order;
            {
                std::vector<int> indeg(cfg_.blocks.size(), 0);
                for (int bid : fn.blocks)
                    for (int s : intraSuccs(cfg_.blocks[bid]))
                        if (s != bid && cfg_.blocks[s].func ==
                                            static_cast<int>(fi))
                            ++indeg[s];
                std::deque<int> q;
                for (int bid : fn.blocks)
                    if (indeg[bid] == 0)
                        q.push_back(bid);
                while (!q.empty()) {
                    const int bid = q.front();
                    q.pop_front();
                    order.push_back(bid);
                    for (int s : intraSuccs(cfg_.blocks[bid]))
                        if (s != bid && cfg_.blocks[s].func ==
                                            static_cast<int>(fi))
                            if (--indeg[s] == 0)
                                q.push_back(s);
                }
            }
            if (order.size() != fn.blocks.size())
                continue;  // residual cycle: stays unbounded

            auto weight = [&](int bid) -> int64_t {
                const Block &b = cfg_.blocks[bid];
                int64_t w = tr.blocks[bid].cycleHi();
                if (b.isCall)
                    w += worstRet[b.callee];
                else if (selfTrip_[bid] > 0)
                    w *= selfTrip_[bid];
                return w;
            };

            std::vector<int64_t> dist(cfg_.blocks.size(), -1);
            dist[fn.entryBlock] = 0;
            int64_t ret = -1, any = -1;
            for (int bid : order) {
                if (dist[bid] < 0)
                    continue;
                const Block &b = cfg_.blocks[bid];
                const int64_t w = weight(bid);
                any = std::max(any, dist[bid] + w);
                if (b.isReturn)
                    ret = std::max(ret, dist[bid] + w);
                if (b.isCall && worstAny[b.callee] >= 0)
                    any = std::max(any,
                                   dist[bid] + tr.blocks[bid].cycleHi() +
                                       worstAny[b.callee]);
                for (int s : intraSuccs(b))
                    if (s != bid &&
                        cfg_.blocks[s].func == static_cast<int>(fi))
                        dist[s] = std::max(dist[s], dist[bid] + w);
            }
            // A function with no reachable return keeps worstRet = -1:
            // callers treat that as unbounded (conservative). Its own
            // halting paths are still bounded via worstAny.
            if (ret >= 0 && ret != worstRet[fi]) {
                worstRet[fi] = ret;
                changed = true;
            }
            const int64_t newAny = std::max(any, ret);
            if (newAny >= 0 && newAny != worstAny[fi]) {
                worstAny[fi] = newAny;
                changed = true;
            }
        }
    }

    for (size_t fi = 0; fi < nf; ++fi) {
        tr.funcs[fi].bestCycles = bestRet[fi] >= INF ? 0 : bestRet[fi];
        tr.funcs[fi].worstCycles = worstRet[fi];
    }
    if (cfg_.entryFunc >= 0) {
        const int64_t best = std::min(bestRet[cfg_.entryFunc],
                                      bestHalt[cfg_.entryFunc]);
        tr.bestCycles = best >= INF ? 0 : best;
        tr.worstCycles = worstAny[cfg_.entryFunc];
    }
}

TimingResult
TimingAnalyzer::run()
{
    TimingResult tr;
    tr.cfg = &cfg_;
    tr.opts = opts_;
    tr.funcs.assign(cfg_.funcs.size(), FuncTiming{});
    computeEffects();
    propagate();
    finalizeSites(tr);
    analyzeLoops(tr);
    computeBounds(tr);
    return tr;
}

} // namespace

TimingResult
analyzeTiming(const ImageCfg &cfg, DiagEngine &diags,
              const TimingOptions &opts)
{
    panicIf(!cfg.image, "timing: CFG has no image");
    return TimingAnalyzer(cfg, diags, opts).run();
}

std::string
TimingResult::blockLabel(int blockId) const
{
    const uint32_t addr = cfg->insns[cfg->blocks[blockId].first].addr;
    std::string sym;
    uint32_t symAddr = 0;
    for (const auto &[a, name] : cfg->textSyms) {
        if (a > addr)
            break;
        sym = name;
        symAddr = a;
    }
    if (sym.empty())
        return hexString(addr);
    if (addr == symAddr)
        return sym;
    return sym + "+" + hexString(addr - symAddr);
}

void
TimingResult::renderText(std::ostream &os) const
{
    os << "  " << sites.size() << " sites: " << loadUseSites
       << " load-use, " << fpBusySites << " fp-busy ("
       << guaranteedStallSites << " guaranteed, " << maybeStallSites
       << " possible), " << bubbleSites << " bubbles, "
       << seqRefillSites << "+" << branchRefillSites
       << " fetch refills (seq+branch)\n";
    os << "  static stalls per pass: [" << staticStallLo << ", "
       << staticStallHi << "] cycles; " << preciseSites
       << " precise sites\n";
    os << "  loops: " << boundedLoops << " bounded, " << unboundedLoops
       << " unbounded\n";
    os << "  program base cycles: best " << bestCycles << ", worst ";
    if (worstCycles < 0)
        os << "unbounded";
    else
        os << worstCycles;
    os << "\n";
}

void
TimingResult::renderJson(std::ostream &os) const
{
    os << "{\"sites\":" << sites.size()
       << ",\"loadUseSites\":" << loadUseSites
       << ",\"fpBusySites\":" << fpBusySites
       << ",\"guaranteedStallSites\":" << guaranteedStallSites
       << ",\"maybeStallSites\":" << maybeStallSites
       << ",\"preciseSites\":" << preciseSites
       << ",\"bubbleSites\":" << bubbleSites
       << ",\"seqRefillSites\":" << seqRefillSites
       << ",\"branchRefillSites\":" << branchRefillSites
       << ",\"staticStallLo\":" << staticStallLo
       << ",\"staticStallHi\":" << staticStallHi
       << ",\"boundedLoops\":" << boundedLoops
       << ",\"unboundedLoops\":" << unboundedLoops
       << ",\"bestCycles\":" << bestCycles
       << ",\"worstCycles\":" << worstCycles << "}";
}

int
crossValidateTiming(const TimingResult &timing, const StallProbe &probe,
                    const sim::SimStats &stats, DiagEngine &diags)
{
    const ImageCfg &cfg = *timing.cfg;
    int findings = 0;
    uint64_t sumLoad = 0, sumFp = 0, bubbleExecs = 0;

    for (const auto &[pc, pt] : probe.sites()) {
        sumLoad += pt.loadStall;
        sumFp += pt.fpStall;
        const int i = cfg.insnAt(pc);
        if (i < 0) {
            findings += emitXval(
                diags, cfg, "tim-xval-unknown-pc", pc, true,
                "executed PC is not a decoded instruction site");
            continue;
        }
        const SiteTiming &s = timing.sites[i];
        if (!s.reachable) {
            findings += emitXval(
                diags, cfg, "tim-xval-unreachable", pc, true,
                "executed a site the timing propagation never reached");
        }
        const uint64_t total = pt.loadStall + pt.fpStall;
        const uint64_t lo = pt.execs * s.stallLo;
        const uint64_t hi = pt.execs * s.stallHi;
        if (total < lo || total > hi) {
            findings += emitXval(
                diags, cfg, "tim-xval-stall-range", pc, true,
                "observed " + std::to_string(total) +
                    " stall cycles over " + std::to_string(pt.execs) +
                    " executions, outside the static bounds [" +
                    std::to_string(lo) + ", " + std::to_string(hi) +
                    "]");
        }
        if (pt.loadStall > 0 && !s.loadUse) {
            findings += emitXval(
                diags, cfg, "tim-xval-category", pc, true,
                "a load interlock occurred where the static model "
                "proves none is possible");
        }
        if (pt.fpStall > 0 && !s.fpBusy) {
            findings += emitXval(
                diags, cfg, "tim-xval-category", pc, true,
                "an FP stall occurred where the static model proves "
                "none is possible");
        }
        if (s.branchBubble)
            bubbleExecs += pt.execs;
    }

    if (sumLoad != stats.loadInterlocks || sumFp != stats.fpInterlocks) {
        findings += emitXval(
            diags, cfg, "tim-xval-total", 0, false,
            "per-PC stalls sum to " + std::to_string(sumLoad) + "+" +
                std::to_string(sumFp) + " but the machine counted " +
                std::to_string(stats.loadInterlocks) + "+" +
                std::to_string(stats.fpInterlocks) +
                " load+fp interlock cycles");
    }
    if (bubbleExecs != stats.branchBubbles) {
        findings += emitXval(
            diags, cfg, "tim-xval-bubbles", 0, false,
            "static bubble sites executed " +
                std::to_string(bubbleExecs) +
                " times but the machine counted " +
                std::to_string(stats.branchBubbles) +
                " branch bubbles");
    }
    const uint64_t base = stats.baseCycles();
    if (static_cast<int64_t>(base) < timing.bestCycles ||
        (timing.worstCycles >= 0 &&
         static_cast<int64_t>(base) > timing.worstCycles)) {
        findings += emitXval(
            diags, cfg, "tim-xval-bounds", 0, false,
            "run took " + std::to_string(base) +
                " base cycles, outside the static bounds [" +
                std::to_string(timing.bestCycles) + ", " +
                (timing.worstCycles < 0
                     ? std::string("unbounded")
                     : std::to_string(timing.worstCycles)) +
                "]");
    }
    return findings;
}

mc::SchedFeedback
schedFeedback(const TimingResult &timing, DiagEngine &diags)
{
    const ImageCfg &cfg = *timing.cfg;
    const TargetInfo &t = *cfg.image->target;
    mc::SchedFeedback fb;

    auto effOf = [&](int i) {
        return effectsOf(t, cfg.insns[i].d, timing.opts.fpu);
    };
    auto memClass = [](Op op) {
        const OpClass c = opClass(op);
        return c == OpClass::Load || c == OpClass::Store ||
               c == OpClass::LoadConst;
    };
    auto isStore = [](Op op) { return opClass(op) == OpClass::Store; };
    auto reads = [](const Eff &e, int res) {
        for (int i = 0; i < e.nUses; ++i)
            if (e.uses[i] == res)
                return true;
        return false;
    };

    for (const Block &b : cfg.blocks) {
        if (b.func < 0)
            continue;
        for (int u = b.first + 1; u <= b.last; ++u) {
            if (!timing.sites[u].guaranteedLoad)
                continue;
            // The producer must be the load directly before the
            // consumer in this block (a cross-block interlock is not
            // the scheduler's to fix).
            const Eff le = effOf(u - 1);
            if (le.defDelta != 2)
                continue;
            if (!reads(effOf(u), le.def))
                continue;
            fb.loadUseSites += 1;

            // Could some later instruction of the block legally move
            // into the load delay? Same rules the scheduler applies:
            // stay inside the block, leave the terminator and its
            // delay slot alone, respect register dependences against
            // everything jumped over (and don't move a consumer of
            // the load itself — that just relocates the stall), and
            // order memory operations conservatively (a store never
            // crosses another memory op, a load never crosses a
            // store).
            const int limit = b.cfIndex >= 0 ? b.cfIndex - 1 : b.last;
            bool avoidable = false;
            for (int m = u + 1; m <= limit && !avoidable; ++m) {
                const DecodedInst &md = cfg.insns[m].d;
                if (md.op == Op::Trap)
                    break;  // syscalls are scheduling barriers
                if (isa::isCanonicalNop(t, md))
                    continue;  // moving a nop hides nothing
                const Eff me = effOf(m);
                bool ok = true;
                for (int k = u - 1; k < m && ok; ++k) {
                    const Eff ke = effOf(k);
                    if (me.def >= 0 &&
                        (ke.def == me.def || reads(ke, me.def)))
                        ok = false;
                    if (ke.def >= 0 && reads(me, ke.def))
                        ok = false;
                }
                if (ok && isStore(md.op)) {
                    for (int k = u - 1; k < m && ok; ++k)
                        ok = !memClass(cfg.insns[k].d.op);
                } else if (ok && memClass(md.op)) {
                    for (int k = u; k < m && ok; ++k)
                        ok = !isStore(cfg.insns[k].d.op);
                }
                avoidable = ok;
            }
            if (!avoidable)
                continue;
            fb.avoidableSites += 1;
            fb.avoidableAddrs.push_back(cfg.insns[u].addr);
            Diag d;
            d.severity = Severity::Note;
            d.code = "tim-avoidable-load-use";
            d.message = "this load-use interlock could be hidden by "
                        "scheduling a later independent instruction "
                        "into the load delay";
            d.addr = cfg.insns[u].addr;
            d.hasAddr = true;
            d.symbol = cfg.enclosingSymbol(d.addr);
            d.line = cfg.insns[u].line;
            diags.report(std::move(d));
        }
    }
    return fb;
}

} // namespace d16sim::analysis
