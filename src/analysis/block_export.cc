#include "analysis/block_export.hh"

namespace d16sim::analysis
{

sim::BlockTable
exportBlockTable(const ImageCfg &cfg)
{
    sim::BlockTable table;
    table.spans.reserve(cfg.blocks.size());
    for (const Block &b : cfg.blocks) {
        sim::BlockSpan span;
        span.startPc = cfg.insns[b.first].addr;
        span.count = static_cast<uint32_t>(b.size());
        table.spans.push_back(span);
    }
    return table;
}

} // namespace d16sim::analysis
