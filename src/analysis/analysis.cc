#include "analysis/analysis.hh"

#include <sstream>

#include "analysis/dom.hh"
#include "analysis/stack.hh"
#include "mc/machine_env.hh"
#include "support/strings.hh"

namespace d16sim::analysis
{

using verify::Diag;
using verify::DiagEngine;
using verify::Severity;

std::string_view
opClassTag(int cls)
{
    static constexpr std::string_view tags[numOpClasses] = {
        "int_alu", "int_alu_imm", "load",    "store",      "load_const",
        "branch",  "jump",        "fp_alu",  "fp_move",    "fp_convert",
        "misc",
    };
    return cls >= 0 && cls < numOpClasses ? tags[cls] : "?";
}

Abi
Abi::from(const mc::CompileOptions &opts)
{
    const mc::MachineEnv env(opts);
    Abi a;
    a.intArgCount =
        static_cast<int>(env.argRegs(mc::RegClass::Int).size());
    a.fpArgCount = static_cast<int>(env.argRegs(mc::RegClass::Fp).size());
    a.intAllocLast = env.allocatable(mc::RegClass::Int).back();
    a.fpAllocLast = env.allocatable(mc::RegClass::Fp).back();
    a.intCalleeFirst = a.intAllocLast + 1;
    a.intCalleeLast = a.intAllocLast;
    for (int r : env.allocatable(mc::RegClass::Int)) {
        if (env.isCalleeSaved(r, mc::RegClass::Int))
            a.intCalleeFirst = std::min(a.intCalleeFirst, r);
    }
    a.fpCalleeFirst = a.fpAllocLast + 1;
    a.fpCalleeLast = a.fpAllocLast;
    for (int r : env.allocatable(mc::RegClass::Fp)) {
        if (env.isCalleeSaved(r, mc::RegClass::Fp))
            a.fpCalleeFirst = std::min(a.fpCalleeFirst, r);
    }
    return a;
}

namespace
{

void
blame(DiagEngine &diags, Severity sev, const char *code,
      const ImageCfg &cfg, uint32_t addr, int line, std::string message)
{
    Diag d;
    d.severity = sev;
    d.code = code;
    d.message = std::move(message);
    d.addr = addr;
    d.hasAddr = true;
    d.symbol = cfg.enclosingSymbol(addr);
    d.line = line;
    diags.report(std::move(d));
}

} // namespace

AnalysisResult
analyzeImage(const assem::Image &img, DiagEngine &diags, const Abi &abi)
{
    AnalysisResult r;
    r.cfg = buildCfg(img);
    const ImageCfg &cfg = r.cfg;
    const isa::TargetInfo &t = *img.target;

    r.insnCount = static_cast<int>(cfg.insns.size());
    r.blockCount = static_cast<int>(cfg.blocks.size());
    r.edgeCount = cfg.edgeCount();
    r.funcCount = static_cast<int>(cfg.funcs.size());
    r.callEdgeCount = cfg.callEdgeCount();

    // Static instruction mix.
    for (const Insn &in : cfg.insns)
        ++r.opClassCounts[static_cast<int>(isa::opClass(in.d.op))];

    // Density identities. staticBytes is rebuilt from the decoded
    // stream (sites * width + non-instruction text + data) and must
    // reproduce the assembler's own accounting exactly.
    r.insnBytes = static_cast<uint32_t>(cfg.insns.size()) *
                  static_cast<uint32_t>(t.insnBytes());
    if (r.insnBytes > img.textSize ||
        cfg.insns.size() != img.textInsns) {
        blame(diags, Severity::Error, "cfa-density-mismatch", cfg,
              img.textBase, 0,
              "decoded instruction stream disagrees with the image: " +
                  std::to_string(cfg.insns.size()) + " sites vs " +
                  std::to_string(img.textInsns) + " textInsns");
        ++r.findings;
    }
    r.poolBytes = img.textSize - r.insnBytes;
    r.dataBytes = img.dataSize;
    r.bssBytes = img.bssSize;
    r.staticBytes = r.insnBytes + r.poolBytes + r.dataBytes - r.bssBytes;
    if (r.staticBytes != img.sizeBytes()) {
        blame(diags, Severity::Error, "cfa-density-mismatch", cfg,
              img.textBase, 0,
              "static size " + std::to_string(r.staticBytes) +
                  " != image sizeBytes " +
                  std::to_string(img.sizeBytes()));
        ++r.findings;
    }

    // Block partition must cover the instruction stream exactly.
    int covered = 0;
    for (const Block &b : cfg.blocks)
        covered += b.size();
    if (covered != r.insnCount) {
        blame(diags, Severity::Error, "cfa-density-mismatch", cfg,
              img.textBase, 0,
              "basic blocks cover " + std::to_string(covered) + " of " +
                  std::to_string(r.insnCount) + " instructions");
        ++r.findings;
    }

    // Unreachable code: blocks no function claimed.
    for (const Block &b : cfg.blocks) {
        if (b.func >= 0)
            continue;
        ++r.unreachableBlocks;
        const Insn &in = cfg.insns[b.first];
        blame(diags, Severity::Warning, "cfa-unreachable-block", cfg,
              in.addr, in.line,
              "unreachable code: " + std::to_string(b.size()) +
                  " instruction(s) no control-flow path reaches");
        ++r.findings;
    }

    // Unresolvable indirect transfers (a register jump that is neither
    // a return nor a recovered D16 call).
    for (const Block &b : cfg.blocks) {
        if (!b.hasIndirect)
            continue;
        const Insn &in = cfg.insns[b.cfIndex];
        blame(diags, Severity::Warning, "cfa-indirect-jump", cfg,
              in.addr, in.line,
              "indirect jump target could not be resolved statically");
        ++r.findings;
    }

    // Dominators / natural loops, and per-function summaries.
    for (const Function &fn : cfg.funcs) {
        const DomInfo di = computeDoms(cfg, fn);
        FunctionSummary fs;
        fs.name = fn.name;
        fs.entryAddr = fn.entryAddr;
        fs.blocks = static_cast<int>(fn.blocks.size());
        for (int b : fn.blocks)
            fs.insns += cfg.blocks[b].size();
        fs.loops = di.loopCount();
        fs.frameBytes = fn.frameBytes;
        fs.reachable = fn.reachable;
        r.loopCount += fs.loops;
        r.functions.push_back(std::move(fs));

        if (!fn.reachable) {
            ++r.deadFuncs;
            blame(diags, Severity::Note, "cfa-dead-function", cfg,
                  fn.entryAddr, 0,
                  "function '" + fn.name +
                      "' is linked but never called");
        }
    }

    // Interprocedural register dataflow.
    r.findings += analyzeDataflow(cfg, abi, diags);

    // Static stack bounds.
    const StackBounds sb = analyzeStack(cfg, diags);
    r.maxStackBytes = sb.maxStackBytes;
    r.recursive = sb.recursive;
    for (size_t f = 0; f < cfg.funcs.size(); ++f)
        r.functions[f].stackDepth = sb.depth[f];

    return r;
}

AnalysisResult
analyzeImage(const assem::Image &img, DiagEngine &diags)
{
    return analyzeImage(img, diags, Abi::defaultFor(*img.target));
}

void
analyzeImageOrThrow(const assem::Image &img,
                    const mc::CompileOptions &opts,
                    const std::string &unit)
{
    DiagEngine diags;
    diags.setUnit(unit.empty() ? opts.name() : unit);
    analyzeImage(img, diags, Abi::from(opts));
    if (!diags.failures())
        return;
    std::ostringstream os;
    os << "binary CFG analysis failed";
    if (!unit.empty())
        os << " for " << unit;
    os << ":\n";
    diags.renderText(os);
    panic(os.str());
}

void
AnalysisResult::renderJson(std::ostream &os) const
{
    os << "{\"insns\":" << insnCount << ",\"blocks\":" << blockCount
       << ",\"edges\":" << edgeCount << ",\"funcs\":" << funcCount
       << ",\"callEdges\":" << callEdgeCount << ",\"loops\":" << loopCount
       << ",\"unreachable\":" << unreachableBlocks
       << ",\"deadFuncs\":" << deadFuncs << ",\"insnBytes\":" << insnBytes
       << ",\"poolBytes\":" << poolBytes << ",\"dataBytes\":" << dataBytes
       << ",\"bssBytes\":" << bssBytes << ",\"staticBytes\":" << staticBytes
       << ",\"maxStack\":" << maxStackBytes
       << ",\"recursive\":" << (recursive ? "true" : "false")
       << ",\"findings\":" << findings << ",\"mix\":{";
    bool first = true;
    for (int c = 0; c < numOpClasses; ++c) {
        if (!opClassCounts[c])
            continue;
        os << (first ? "" : ",") << "\"" << opClassTag(c)
           << "\":" << opClassCounts[c];
        first = false;
    }
    os << "},\"functions\":[";
    for (size_t i = 0; i < functions.size(); ++i) {
        const FunctionSummary &f = functions[i];
        os << (i ? "," : "") << "{\"name\":\"" << f.name
           << "\",\"entry\":" << f.entryAddr << ",\"blocks\":" << f.blocks
           << ",\"insns\":" << f.insns << ",\"loops\":" << f.loops
           << ",\"frame\":" << f.frameBytes << ",\"depth\":" << f.stackDepth
           << ",\"reachable\":" << (f.reachable ? "true" : "false") << "}";
    }
    os << "]}";
}

void
AnalysisResult::renderText(std::ostream &os) const
{
    os << "  " << insnCount << " instructions, " << blockCount
       << " blocks, " << edgeCount << " edges, " << funcCount
       << " functions (" << callEdgeCount << " call edges, " << loopCount
       << " loops)\n";
    os << "  density: " << insnBytes << " insn + " << poolBytes
       << " pool + " << dataBytes - bssBytes << " data = " << staticBytes
       << " bytes static\n";
    os << "  stack: ";
    if (maxStackBytes < 0)
        os << "unbounded (recursive)";
    else
        os << maxStackBytes << " bytes worst case";
    if (unreachableBlocks || deadFuncs) {
        os << "\n  " << unreachableBlocks << " unreachable block(s), "
           << deadFuncs << " dead function(s)";
    }
    os << "\n  mix:";
    for (int c = 0; c < numOpClasses; ++c) {
        if (opClassCounts[c])
            os << " " << opClassTag(c) << "=" << opClassCounts[c];
    }
    os << "\n";
}

} // namespace d16sim::analysis
