#include "analysis/cfg.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "isa/codec.hh"
#include "support/error.hh"
#include "support/strings.hh"

namespace d16sim::analysis
{

using assem::Image;
using isa::DecodedInst;
using isa::Op;
using isa::OpClass;
using isa::TargetInfo;

namespace
{

uint32_t
wordAt(const Image &img, uint32_t addr, int bytes)
{
    const uint32_t off = addr - img.textBase;
    uint32_t w = 0;
    for (int b = 0; b < bytes; ++b)
        w |= static_cast<uint32_t>(img.bytes[off + b]) << (8 * b);
    return w;
}

} // namespace

RegEffects
regEffects(const TargetInfo &t, const DecodedInst &d)
{
    RegEffects e;
    auto gr = [&](int r) { e.gprRead |= uint64_t{1} << r; };
    auto gw = [&](int r) { e.gprWrite |= uint64_t{1} << r; };
    auto fr = [&](int r) { e.fprRead |= uint64_t{1} << r; };
    auto fw = [&](int r) { e.fprWrite |= uint64_t{1} << r; };

    // The canonical nop encodings touch no architectural state, so they
    // must not count as reads (a decoded D16 nop would otherwise "read"
    // the at register the last call clobbered).
    if (isa::isCanonicalNop(t, d))
        return e;

    switch (opClass(d.op)) {
      case OpClass::IntAlu:
        gr(d.rs1);
        if (d.op != Op::Neg && d.op != Op::Inv && d.op != Op::Mv &&
            d.op != Op::Cmp)
            gr(d.rs2);
        if (d.op == Op::Cmp)
            gr(d.rs2);
        gw(d.rd);
        break;
      case OpClass::IntAluImm:
        if (d.op != Op::MvI && d.op != Op::MvHI)
            gr(d.rs1);
        gw(d.rd);
        break;
      case OpClass::Load:
        gr(d.rs1);
        gw(d.rd);
        break;
      case OpClass::Store:
        gr(d.rs1);
        gr(d.rs2);
        break;
      case OpClass::LoadConst:
        gw(d.rd);  // Ldc: implicit r0 destination (decode sets rd)
        break;
      case OpClass::Branch:
        if (d.op == Op::Bz || d.op == Op::Bnz)
            gr(d.rs1);
        break;
      case OpClass::Jump:
        if (d.op == Op::Jr || d.op == Op::Jlr)
            gr(d.rs1);
        if (d.op == Op::Jrz || d.op == Op::Jrnz) {
            gr(d.rs1);
            gr(d.rs2);
        }
        if (d.op == Op::Jl || d.op == Op::Jlr)
            gw(d.rd);  // link register (decode sets rd = 1)
        break;
      case OpClass::FpAlu:
        fr(d.rs1);
        if (d.op != Op::FNegS && d.op != Op::FNegD)
            fr(d.rs2);
        if (d.op != Op::FCmpS && d.op != Op::FCmpD)
            fw(d.rd);  // FCmp writes the status register, not an FPR
        break;
      case OpClass::FpConvert:
        fr(d.rs1);
        fw(d.rd);
        break;
      case OpClass::FpMove:
        if (d.op == Op::FMv) {
            fr(d.rs1);
            fw(d.rd);
        } else if (d.op == Op::MifL || d.op == Op::MifH) {
            // A double is materialized as a MifL/MifH pair; either
            // half-write counts as defining the FPR, and the preserved
            // other half is not treated as a read.
            gr(d.rs1);
            fw(d.rd);
        } else {  // MfiL / MfiH
            fr(d.rs1);
            gw(d.rd);
        }
        break;
      case OpClass::Misc:
        if (d.op == Op::Trap) {
            gr(2);  // service argument (print/halt/alloc)
            fr(2);  // print_f64 argument; f2 is an FP arg reg, so this
                    // is never a spurious undefined-use
            gw(2);  // alloc result
        } else if (d.op == Op::Rdsr) {
            gw(d.rd);
        }
        break;
    }
    if (t.r0IsZero()) {
        // DLXe r0 reads as zero and ignores writes: never a dependence.
        e.gprRead &= ~uint64_t{1};
        e.gprWrite &= ~uint64_t{1};
    }
    return e;
}

// ----- ImageCfg queries -----------------------------------------------

int
ImageCfg::insnAt(uint32_t addr) const
{
    auto it = std::lower_bound(
        insns.begin(), insns.end(), addr,
        [](const Insn &a, uint32_t v) { return a.addr < v; });
    if (it == insns.end() || it->addr != addr)
        return -1;
    return static_cast<int>(it - insns.begin());
}

int
ImageCfg::blockAt(uint32_t addr) const
{
    const int i = insnAt(addr);
    if (i < 0)
        return -1;
    const int b = blockOf(i);
    return blocks[b].first == i ? b : -1;
}

int
ImageCfg::blockOf(int i) const
{
    auto it = std::upper_bound(
        blocks.begin(), blocks.end(), i,
        [](int v, const Block &b) { return v < b.first; });
    panicIf(it == blocks.begin(), "blockOf: no block for insn ", i);
    return static_cast<int>(it - blocks.begin()) - 1;
}

std::string
ImageCfg::enclosingSymbol(uint32_t addr) const
{
    auto it = std::upper_bound(
        textSyms.begin(), textSyms.end(), addr,
        [](uint32_t a, const auto &s) { return a < s.first; });
    return it == textSyms.begin() ? std::string() : (it - 1)->second;
}

int
ImageCfg::edgeCount() const
{
    int n = 0;
    for (const Block &b : blocks)
        n += static_cast<int>(b.succs.size());
    return n;
}

int
ImageCfg::callEdgeCount() const
{
    int n = 0;
    for (const Function &f : funcs)
        n += static_cast<int>(f.callees.size());
    return n;
}

// ----- construction ---------------------------------------------------

namespace
{

struct Builder
{
    const Image &img;
    const TargetInfo &t;
    const uint32_t step;
    ImageCfg cfg;

    explicit Builder(const Image &img)
        : img(img), t(*img.target),
          step(static_cast<uint32_t>(img.target->insnBytes()))
    {
        cfg.image = &img;
        cfg.textSyms = img.textSymbols();
    }

    bool
    contiguous(int i) const
    {
        return i + 1 < static_cast<int>(cfg.insns.size()) &&
               cfg.insns[i + 1].addr == cfg.insns[i].addr + step;
    }

    void
    decodeAll()
    {
        cfg.insns.reserve(img.insnSites.size());
        for (const assem::InsnSite &s : img.insnSites) {
            Insn in;
            in.addr = s.addr;
            in.line = s.line;
            in.d = isa::decode(t, wordAt(img, s.addr, t.insnBytes()));
            cfg.insns.push_back(in);
        }
    }

    /**
     * Resolve the callee address of the `jlr` at insn `i`: walk back
     * through the contiguous straight-line run for the last def of the
     * jump register; if it is an Ldc, the callee address is the pool
     * word it loads. Returns false when the def is out of sight (a
     * genuinely indirect call).
     */
    bool
    resolveJlr(int i, uint32_t &callee) const
    {
        const int target = cfg.insns[i].d.rs1;
        for (int j = i - 1; j >= 0; --j) {
            if (cfg.insns[j + 1].addr != cfg.insns[j].addr + step)
                return false;  // crossed a pool: different run
            const DecodedInst &d = cfg.insns[j].d;
            if (isControlFlow(d.op))
                return false;  // crossed a join/transfer
            const RegEffects e = regEffects(t, d);
            if (!(e.gprWrite & (uint64_t{1} << target)))
                continue;
            if (d.op != Op::Ldc)
                return false;  // defined by arithmetic: indirect
            const uint32_t pool =
                static_cast<uint32_t>((cfg.insns[j].addr & ~3u) + d.imm);
            if (pool < img.textBase ||
                pool + 4 > img.textBase + img.textSize)
                return false;
            callee = wordAt(img, pool, 4);
            return true;
        }
        return false;
    }

    void
    build()
    {
        decodeAll();
        const int n = static_cast<int>(cfg.insns.size());
        panicIf(n == 0, "buildCfg: image has no instructions");

        // Branch targets, call targets, unresolved indirect calls.
        std::set<uint32_t> branchTargets;
        std::set<uint32_t> callTargets;
        std::map<int, uint32_t> calleeOfCallsite;  // insn -> callee addr
        std::set<int> unresolvedCallsites;
        for (int i = 0; i < n; ++i) {
            const DecodedInst &d = cfg.insns[i].d;
            const uint32_t pcrel =
                static_cast<uint32_t>(cfg.insns[i].addr + d.imm);
            switch (d.op) {
              case Op::Br: case Op::Bz: case Op::Bnz: case Op::J:
                branchTargets.insert(pcrel);
                break;
              case Op::Jl:
                callTargets.insert(pcrel);
                calleeOfCallsite[i] = pcrel;
                break;
              case Op::Jlr: {
                uint32_t callee = 0;
                if (resolveJlr(i, callee)) {
                    callTargets.insert(callee);
                    calleeOfCallsite[i] = callee;
                } else {
                    unresolvedCallsites.insert(i);
                }
                break;
              }
              default:
                break;
            }
        }

        // Leaders: first insn, program entry, every branch/call target,
        // the insn after each control-flow insn's delay slot, and the
        // insn after any contiguity gap (an in-text pool).
        std::vector<bool> leader(n, false);
        leader[0] = true;
        auto markLeader = [&](uint32_t addr) {
            const int i = cfg.insnAt(addr);
            if (i >= 0)
                leader[i] = true;
        };
        markLeader(img.entry);
        for (uint32_t a : branchTargets)
            markLeader(a);
        for (uint32_t a : callTargets)
            markLeader(a);
        for (int i = 0; i < n; ++i) {
            if (isControlFlow(cfg.insns[i].d.op) && i + 2 < n)
                leader[i + 2] = true;
            if (!contiguous(i) && i + 1 < n)
                leader[i + 1] = true;
        }

        // Blocks: maximal [leader, next leader) runs.
        for (int i = 0; i < n; ++i) {
            if (leader[i]) {
                Block b;
                b.id = static_cast<int>(cfg.blocks.size());
                b.first = i;
                cfg.blocks.push_back(b);
            }
            cfg.blocks.back().last = i;
        }

        // Terminators and edges.
        for (Block &b : cfg.blocks) {
            for (int i = b.first; i <= b.last; ++i) {
                if (isControlFlow(cfg.insns[i].d.op)) {
                    b.cfIndex = i;
                    break;
                }
            }
            if (b.cfIndex < 0) {
                // Plain fall-through into the next leader (if any and
                // contiguous; a gap means the code runs into a pool,
                // which the machine-code linter reports).
                if (contiguous(b.last))
                    addEdge(b.id, b.id + 1);
                continue;
            }
            const Insn &cf = cfg.insns[b.cfIndex];
            const uint32_t target =
                static_cast<uint32_t>(cf.addr + cf.d.imm);
            const bool haveFall =
                b.id + 1 < static_cast<int>(cfg.blocks.size()) &&
                contiguous(b.last);
            switch (cf.d.op) {
              case Op::Br: case Op::J:
                addEdgeTo(b.id, target);
                break;
              case Op::Bz: case Op::Bnz:
                addEdgeTo(b.id, target);
                if (haveFall)
                    addEdge(b.id, b.id + 1);
                break;
              case Op::Jl: case Op::Jlr:
                b.isCall = true;
                if (haveFall)
                    addEdge(b.id, b.id + 1);  // the return point
                if (unresolvedCallsites.count(b.cfIndex))
                    b.hasIndirect = true;
                break;
              case Op::Jr:
                if (cf.d.rs1 == t.raReg())
                    b.isReturn = true;
                else
                    b.hasIndirect = true;
                break;
              case Op::Jrz: case Op::Jrnz:
                b.hasIndirect = true;
                if (haveFall)
                    addEdge(b.id, b.id + 1);
                break;
              default:
                break;
            }
        }

        // Functions: the entry plus every resolved call target, claimed
        // by intraprocedural traversal; then orphan text symbols (dead
        // code) the same way.
        std::vector<uint32_t> entries(callTargets.begin(),
                                      callTargets.end());
        if (!callTargets.count(img.entry))
            entries.insert(entries.begin(), img.entry);
        std::sort(entries.begin(), entries.end());
        for (uint32_t addr : entries)
            addFunction(addr, /*orphan=*/false);
        for (const auto &[addr, name] : cfg.textSyms) {
            if (startsWith(name, ".L"))
                continue;  // local label (block/pool/string)
            const int blk = cfg.blockAt(addr);
            if (blk >= 0 && cfg.blocks[blk].func < 0)
                addFunction(addr, /*orphan=*/true);
        }

        // Attach call edges + per-block callee indices.
        std::map<uint32_t, int> funcAt;
        for (size_t f = 0; f < cfg.funcs.size(); ++f)
            funcAt[cfg.funcs[f].entryAddr] = static_cast<int>(f);
        for (Block &b : cfg.blocks) {
            if (!b.isCall || b.func < 0)
                continue;
            auto ci = calleeOfCallsite.find(b.cfIndex);
            if (ci == calleeOfCallsite.end()) {
                cfg.funcs[b.func].hasUnresolvedCall = true;
                continue;
            }
            auto fi = funcAt.find(ci->second);
            if (fi == funcAt.end()) {
                cfg.funcs[b.func].hasUnresolvedCall = true;
                continue;
            }
            b.callee = fi->second;
            cfg.funcs[b.func].callees.push_back(fi->second);
        }
        for (Function &f : cfg.funcs) {
            std::sort(f.callees.begin(), f.callees.end());
            f.callees.erase(
                std::unique(f.callees.begin(), f.callees.end()),
                f.callees.end());
        }

        // Entry function + call-graph reachability.
        auto ei = funcAt.find(img.entry);
        if (ei != funcAt.end()) {
            cfg.entryFunc = ei->second;
            std::deque<int> work{cfg.entryFunc};
            while (!work.empty()) {
                const int f = work.front();
                work.pop_front();
                if (cfg.funcs[f].reachable)
                    continue;
                cfg.funcs[f].reachable = true;
                for (int c : cfg.funcs[f].callees)
                    work.push_back(c);
            }
        }

        for (Function &f : cfg.funcs)
            findFrame(f);
    }

    void
    addEdge(int from, int to)
    {
        cfg.blocks[from].succs.push_back(to);
        cfg.blocks[to].preds.push_back(from);
    }

    void
    addEdgeTo(int from, uint32_t targetAddr)
    {
        const int to = cfg.blockAt(targetAddr);
        if (to >= 0)
            addEdge(from, to);
        else
            cfg.blocks[from].hasIndirect = true;  // target off the map
    }

    /** Claim every block reachable intraprocedurally from `addr`. */
    void
    addFunction(uint32_t addr, bool orphan)
    {
        const int entryBlk = cfg.blockAt(addr);
        if (entryBlk < 0 || cfg.blocks[entryBlk].func >= 0)
            return;
        Function fn;
        fn.entryAddr = addr;
        fn.entryBlock = entryBlk;
        fn.orphan = orphan;
        fn.name = cfg.enclosingSymbol(addr);
        if (fn.name.empty() || img.symbols.at(fn.name) != addr)
            fn.name = hexString(addr);
        const int idx = static_cast<int>(cfg.funcs.size());

        std::deque<int> work{entryBlk};
        while (!work.empty()) {
            const int b = work.front();
            work.pop_front();
            if (cfg.blocks[b].func >= 0)
                continue;
            cfg.blocks[b].func = idx;
            fn.blocks.push_back(b);
            for (int s : cfg.blocks[b].succs)
                work.push_back(s);
        }
        std::sort(fn.blocks.begin(), fn.blocks.end());
        cfg.funcs.push_back(std::move(fn));
    }

    /**
     * Static frame size from the prologue's sp adjustment. The code
     * generator emits one of `subi sp, N`, `addi sp, sp, -N`, or (big
     * D16 frames) a materialization into `at` followed by
     * `sub sp, sp, at`; leaf runtime routines touch sp not at all.
     */
    void
    findFrame(Function &fn)
    {
        const int sp = t.spReg();
        const Block &entry = cfg.blocks[fn.entryBlock];
        int64_t atVal = 0;
        bool atKnown = false;
        for (int i = entry.first; i <= entry.last; ++i) {
            const DecodedInst &d = cfg.insns[i].d;
            if (d.op == Op::SubI && d.rd == sp && d.rs1 == sp) {
                fn.frameBytes = d.imm;
                return;
            }
            if (d.op == Op::AddI && d.rd == sp && d.rs1 == sp &&
                d.imm < 0) {
                fn.frameBytes = -d.imm;
                return;
            }
            if (d.op == Op::Sub && d.rd == sp && d.rs1 == sp) {
                if (atKnown && d.rs2 == t.atReg()) {
                    fn.frameBytes = static_cast<int>(atVal);
                } else {
                    fn.frameKnown = false;
                }
                return;
            }
            if (d.op == Op::MvI && d.rd == t.atReg()) {
                atVal = d.imm;
                atKnown = true;
            } else if (d.op == Op::Ldc && d.rd == t.atReg()) {
                const uint32_t pool = static_cast<uint32_t>(
                    (cfg.insns[i].addr & ~3u) + d.imm);
                if (pool >= img.textBase &&
                    pool + 4 <= img.textBase + img.textSize) {
                    atVal = wordAt(img, pool, 4);
                    atKnown = true;
                }
            } else if (regEffects(t, d).gprWrite &
                       (uint64_t{1} << sp)) {
                fn.frameKnown = false;  // unrecognized sp adjustment
                return;
            }
        }
        fn.frameBytes = 0;  // leaf with no frame
    }
};

} // namespace

ImageCfg
buildCfg(const Image &img)
{
    panicIf(img.target == nullptr, "buildCfg: image has no target");
    Builder b{img};
    b.build();
    return std::move(b.cfg);
}

} // namespace d16sim::analysis
