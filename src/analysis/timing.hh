/**
 * @file
 * Static pipeline-timing analysis over a recovered CFG.
 *
 * An abstract interpretation of the five-stage interlocked pipeline:
 * the machine's issue-time scoreboard (sim::Machine) is abstracted per
 * program point into, for every register resource (32 GPRs, 32 FPRs,
 * and the FP status word), an interval of *remaining delay* cycles —
 * how many cycles a consumer issuing next would still stall. The
 * transfer function mirrors Machine::execute() operation by operation
 * (including the D16 quirk that r0 is a real register there, so even a
 * canonical `mv r0, r0` nop can interlock against a pool load), block
 * entry states join by interval hull over all predecessors, and call /
 * return edges propagate states through the supergraph so FP latencies
 * are tracked across block and function boundaries.
 *
 * Per instruction site the pass classifies the pipeline hazards:
 *
 *  - load-use interlocks (a delayed-load producer feeding a consumer
 *    too early: any GPR remaining-delay can only come from a load);
 *  - FP/math-unit busy stalls (FPR or status remaining-delay);
 *  - branch bubbles (a canonical nop in a branch/jump shadow);
 *  - fetch-buffer refill boundaries (sequential fetch crossing a
 *    bus-aligned block, and taken transfers that always leave the
 *    fetch buffer's current block).
 *
 * Rollups: per-block static cycle-cost intervals and stall densities,
 * and loop-aware whole-program best/worst-case base-cycle bounds
 * (shortest supergraph path for the best case; for the worst case a
 * longest path that is finite only when every natural loop is a
 * self-loop with an immediate-bounded countdown counter and the call
 * graph is acyclic — anything else reports "unbounded", never a wrong
 * bound).
 *
 * The exactness contract (checked by crossValidateTiming against a
 * simulated run with a StallProbe attached):
 *
 *  - soundness everywhere: at every PC the observed stall cycles lie
 *    in [execs * stallLo, execs * stallHi], and a stall category is
 *    only observed where statically possible;
 *  - exactness on precise sites: wherever the interval is a point
 *    (in particular on straight-line/acyclic regions whose predecessor
 *    states agree), dynamic equals static exactly;
 *  - whole-program bounds bracket SimStats::baseCycles().
 *
 * Diag codes (all through verify::DiagEngine):
 *   tim-load-use            Note   guaranteed load-use interlock
 *   tim-fp-busy             Note   guaranteed math-unit busy stall
 *   tim-branch-bubble       Note   canonical nop in a delay slot
 *   tim-fetch-refill        Note   taken transfer always refills the
 *                                  fetch buffer
 *   tim-avoidable-load-use  Note   a later independent instruction
 *                                  could have been scheduled into the
 *                                  load delay slot
 *   tim-xval-unknown-pc     Error  executed PC is not a decoded site
 *   tim-xval-unreachable    Error  executed PC the supergraph missed
 *   tim-xval-stall-range    Error  observed stalls outside the bounds
 *   tim-xval-category       Error  stall category statically impossible
 *   tim-xval-total          Error  per-PC stalls don't sum to SimStats
 *   tim-xval-bubbles        Error  bubble taxonomy disagrees
 *   tim-xval-bounds         Error  baseCycles outside [best, worst]
 */

#ifndef D16SIM_ANALYSIS_TIMING_HH
#define D16SIM_ANALYSIS_TIMING_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "mc/sched.hh"
#include "sim/machine.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"
#include "verify/diag.hh"

namespace d16sim::analysis
{

struct TimingOptions
{
    /** FPU result latencies; must match the simulated machine's for
     *  the cross-validation contract to hold. */
    sim::FpLatencies fpu;

    /** Fetch-buffer width for refill classification (bytes). */
    uint32_t busBytes = 4;

    /** Emit per-site tim-* hazard notes through the DiagEngine. */
    bool siteDiags = true;
};

/** Static hazard classification of one instruction site. Stall bounds
 *  are cycles per execution of the site. */
struct SiteTiming
{
    uint16_t stallLo = 0;
    uint16_t stallHi = 0;
    bool loadUse = false;       //!< a GPR read may interlock (delayed load)
    bool fpBusy = false;        //!< an FPR/status read may stall
    bool guaranteedLoad = false;  //!< the GPR interlock always happens
    bool guaranteedFp = false;    //!< the FP stall always happens
    bool branchBubble = false;  //!< canonical nop in a branch shadow
    bool seqRefill = false;     //!< sequential fetch crosses a bus block
    bool branchRefill = false;  //!< taken transfer always refills
    bool reachable = false;     //!< the supergraph propagation got here

    bool precise() const { return stallLo == stallHi; }
};

/** Static cycle cost of one block, per execution. */
struct BlockTiming
{
    uint32_t size = 0;        //!< instruction sites
    uint32_t stallLo = 0;     //!< summed guaranteed stall cycles
    uint32_t stallHi = 0;     //!< summed worst-case stall cycles
    uint32_t bubbles = 0;     //!< nop delay slots
    uint32_t seqRefills = 0;  //!< in-block sequential fetch refills

    uint32_t cycleLo() const { return size + stallLo; }
    uint32_t cycleHi() const { return size + stallHi; }

    /** Worst-case stall cycles per instruction. */
    double
    stallDensity() const
    {
        return size ? static_cast<double>(stallHi) /
                          static_cast<double>(size)
                    : 0.0;
    }
};

/** Whole-function base-cycle bounds (entry to return). -1 = unbounded
 *  (an unprovable loop, recursion, or an unresolved call). */
struct FuncTiming
{
    int64_t bestCycles = 0;
    int64_t worstCycles = -1;
    int boundedLoops = 0;
    int unboundedLoops = 0;
};

struct TimingResult
{
    const ImageCfg *cfg = nullptr;
    TimingOptions opts;

    std::vector<SiteTiming> sites;    //!< parallel to cfg->insns
    std::vector<BlockTiming> blocks;  //!< parallel to cfg->blocks
    std::vector<FuncTiming> funcs;    //!< parallel to cfg->funcs

    /** Whole-program base-cycle bounds from the entry point to any
     *  halt (trap or return-to-sentinel). worstCycles = -1 means
     *  unbounded. */
    int64_t bestCycles = 0;
    int64_t worstCycles = -1;

    // Summary counters over all sites.
    int loadUseSites = 0;       //!< sites that may interlock on a load
    int fpBusySites = 0;        //!< sites that may stall on the FPU
    int guaranteedStallSites = 0;  //!< stallLo > 0
    int maybeStallSites = 0;       //!< stallHi > 0, stallLo == 0
    int preciseSites = 0;          //!< stallLo == stallHi
    int bubbleSites = 0;
    int seqRefillSites = 0;
    int branchRefillSites = 0;
    int boundedLoops = 0;
    int unboundedLoops = 0;

    /** Summed per-execution guaranteed/worst stall cycles (static,
     *  unweighted by execution counts). */
    int64_t staticStallLo = 0;
    int64_t staticStallHi = 0;

    void renderText(std::ostream &os) const;
    void renderJson(std::ostream &os) const;

    /** "symbol+0x10" style label for a block (hotspot reports). */
    std::string blockLabel(int blockId) const;
};

/** Run the timing analysis. `cfg` must outlive the result. */
TimingResult analyzeTiming(const ImageCfg &cfg, verify::DiagEngine &diags,
                           const TimingOptions &opts = {});

/**
 * Per-PC dynamic stall attribution: execution counts via onExec and
 * the machine's own interlock attribution via onStall. Attach to a
 * sim::Machine run, then hand to crossValidateTiming().
 */
class StallProbe : public sim::Probe
{
  public:
    struct PcTiming
    {
        uint64_t execs = 0;
        uint64_t loadStall = 0;  //!< delayed-load stall cycles
        uint64_t fpStall = 0;    //!< math-unit stall cycles
    };

    void
    onExec(const isa::DecodedInst &inst, uint32_t pc) override
    {
        (void)inst;
        ++sites_[pc].execs;
    }

    void
    onStall(uint32_t pc, uint64_t cycles, bool fp) override
    {
        PcTiming &s = sites_[pc];
        (fp ? s.fpStall : s.loadStall) += cycles;
    }

    const std::map<uint32_t, PcTiming> &sites() const { return sites_; }

  private:
    std::map<uint32_t, PcTiming> sites_;
};

/** Check a recorded run against the static classification, exactly
 *  (see the contract above). Returns the number of findings (0 = the
 *  static and dynamic timing models agree). */
int crossValidateTiming(const TimingResult &timing, const StallProbe &probe,
                        const sim::SimStats &stats,
                        verify::DiagEngine &diags);

/**
 * Feed hazard annotations back to the scheduler's report: find every
 * guaranteed load-use interlock in the image and decide, by the
 * scheduler's own legality rules (in-block, dependence- and
 * memory-safe, delay slots untouched), whether a later instruction of
 * the same block could have been moved into the load delay to hide it.
 * Emits a tim-avoidable-load-use note per avoidable site.
 */
mc::SchedFeedback schedFeedback(const TimingResult &timing,
                                verify::DiagEngine &diags);

} // namespace d16sim::analysis

#endif // D16SIM_ANALYSIS_TIMING_HH
