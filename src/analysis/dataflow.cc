#include "analysis/dataflow.hh"

#include <array>
#include <map>
#include <set>
#include <sstream>

#include "support/strings.hh"

namespace d16sim::analysis
{

using isa::DecodedInst;
using isa::Op;
using isa::TargetInfo;
using verify::Diag;
using verify::DiagEngine;
using verify::Severity;

namespace
{

enum : uint8_t { Undef = 0, Clobbered = 1, Def = 2 };

/** 64 lattice cells: [0..31] GPRs, [32..63] FPRs. */
using State = std::array<uint8_t, 64>;

bool
merge(State &into, const State &from)
{
    bool changed = false;
    for (int i = 0; i < 64; ++i) {
        if (from[i] > into[i]) {
            into[i] = from[i];
            changed = true;
        }
    }
    return changed;
}

struct Dataflow
{
    const ImageCfg &cfg;
    const Abi &abi;
    const TargetInfo &t;
    DiagEngine &diags;
    int findings = 0;

    /** (insn, cell) pairs already reported, to cap the flood. */
    std::set<std::pair<int, int>> reported;

    State
    entryState() const
    {
        State s{};
        s.fill(Undef);
        auto def = [&](int cell) { s[cell] = Def; };
        def(t.atReg());  // D16: holds the callee address at entry
        def(t.raReg());
        def(t.gpReg());
        def(t.spReg());
        for (int r = 2; r < 2 + abi.intArgCount; ++r)
            def(r);
        for (int r = abi.intCalleeFirst; r <= abi.intCalleeLast; ++r)
            def(r);
        for (int r = 2; r < 2 + abi.fpArgCount; ++r)
            def(32 + r);
        for (int r = abi.fpCalleeFirst; r <= abi.fpCalleeLast; ++r)
            def(32 + r);
        return s;
    }

    /** Caller-saved kill after a call completes: allocatable registers
     *  below the callee-saved boundary drop Def -> Clobbered, and the
     *  return/link registers become Def. `at` is the emission scratch
     *  and is clobbered too (D16; on DLXe it is the hardwired zero). */
    void
    applyCallSummary(State &s) const
    {
        auto kill = [&](int cell) {
            if (s[cell] == Def)
                s[cell] = Clobbered;
        };
        for (int r = 2; r <= abi.intAllocLast; ++r)
            if (r < abi.intCalleeFirst || r > abi.intCalleeLast)
                kill(r);
        if (!t.r0IsZero())
            kill(t.atReg());
        for (int r = 1; r <= abi.fpAllocLast; ++r)
            if (r < abi.fpCalleeFirst || r > abi.fpCalleeLast)
                kill(32 + r);
        kill(32 + 0);                    // f0, the FP scratch
        s[2] = Def;                      // integer return value
        s[32 + 2] = Def;                 // FP return value
        s[t.raReg()] = Def;              // restored by the callee
    }

    void
    emit(Severity sev, const char *code, int insnIdx, int cell,
         const char *what)
    {
        if (!reported.insert({insnIdx, cell}).second)
            return;
        const Insn &in = cfg.insns[insnIdx];
        Diag d;
        d.severity = sev;
        d.code = code;
        const std::string reg = cell < 32 ? t.regName(cell)
                                          : t.fregName(cell - 32);
        std::ostringstream os;
        os << opName(in.d.op) << " reads " << reg << ", which " << what;
        d.message = os.str();
        d.addr = in.addr;
        d.hasAddr = true;
        d.symbol = cfg.enclosingSymbol(in.addr);
        d.line = in.line;
        diags.report(std::move(d));
        ++findings;
    }

    /** Transfer one instruction; report reads when `report` is set. */
    void
    step(State &s, int insnIdx, bool report)
    {
        const RegEffects e = regEffects(t, cfg.insns[insnIdx].d);
        if (report) {
            for (int r = 0; r < 32; ++r) {
                if (!(e.gprRead & (uint64_t{1} << r)))
                    continue;
                if (s[r] == Undef) {
                    emit(Severity::Error, "cfa-use-before-def", insnIdx,
                         r, "no path from the function entry defines");
                } else if (s[r] == Clobbered) {
                    emit(Severity::Warning, "cfa-clobbered-across-call",
                         insnIdx, r,
                         "is caller-saved and was not preserved by an "
                         "intervening call");
                }
            }
            for (int r = 0; r < 32; ++r) {
                if (!(e.fprRead & (uint64_t{1} << r)))
                    continue;
                if (s[32 + r] == Undef) {
                    emit(Severity::Error, "cfa-use-before-def", insnIdx,
                         32 + r,
                         "no path from the function entry defines");
                } else if (s[32 + r] == Clobbered) {
                    emit(Severity::Warning, "cfa-clobbered-across-call",
                         insnIdx, 32 + r,
                         "is caller-saved and was not preserved by an "
                         "intervening call");
                }
            }
        }
        for (int r = 0; r < 32; ++r)
            if (e.gprWrite & (uint64_t{1} << r))
                s[r] = Def;
        for (int r = 0; r < 32; ++r)
            if (e.fprWrite & (uint64_t{1} << r))
                s[32 + r] = Def;
    }

    /** Transfer a whole block. The call summary applies at block exit:
     *  the delay slot executes before control reaches the callee. */
    void
    transfer(const Block &b, State &s, bool report)
    {
        for (int i = b.first; i <= b.last; ++i)
            step(s, i, report);
        if (b.isCall)
            applyCallSummary(s);
    }

    void
    runFunction(const Function &fn)
    {
        if (fn.entryBlock < 0)
            return;
        std::map<int, State> in;
        in[fn.entryBlock] = entryState();
        bool changed = true;
        while (changed) {
            changed = false;
            for (int b : fn.blocks) {
                auto it = in.find(b);
                if (it == in.end())
                    continue;
                State out = it->second;
                transfer(cfg.blocks[b], out, false);
                for (int s : cfg.blocks[b].succs) {
                    if (cfg.blocks[s].func != cfg.blocks[b].func)
                        continue;
                    auto [si, fresh] = in.emplace(s, out);
                    if (fresh || merge(si->second, out))
                        changed = true;
                }
            }
        }
        // Reporting pass at the fixpoint, deterministic block order.
        for (int b : fn.blocks) {
            auto it = in.find(b);
            if (it == in.end())
                continue;
            State s = it->second;
            transfer(cfg.blocks[b], s, true);
        }
    }
};

} // namespace

Abi
Abi::defaultFor(const TargetInfo &t)
{
    Abi a;
    const bool d16 = t.kind() == isa::IsaKind::D16;
    a.intArgCount = d16 ? 4 : 8;
    a.fpArgCount = d16 ? 4 : 8;
    a.intCalleeFirst = d16 ? 10 : 16;
    a.intCalleeLast = d16 ? 13 : 29;
    a.fpCalleeFirst = d16 ? 10 : 16;
    a.fpCalleeLast = d16 ? 15 : 31;
    a.intAllocLast = d16 ? 13 : 29;
    a.fpAllocLast = d16 ? 15 : 31;
    return a;
}

int
analyzeDataflow(const ImageCfg &cfg, const Abi &abi, DiagEngine &diags)
{
    Dataflow df{cfg, abi, *cfg.image->target, diags};
    for (const Function &fn : cfg.funcs)
        df.runFunction(fn);
    return df.findings;
}

} // namespace d16sim::analysis
