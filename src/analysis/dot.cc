#include "analysis/dot.hh"

#include "support/strings.hh"

namespace d16sim::analysis
{

namespace
{

/** Quote a symbol for a DOT identifier/label. */
std::string
q(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

std::string
blockLabel(const ImageCfg &cfg, const Block &b)
{
    const uint32_t lo = cfg.insns[b.first].addr;
    const uint32_t hi = cfg.insns[b.last].addr;
    std::string l = hexString(lo, 4);
    if (hi != lo)
        l += "-" + hexString(hi, 4);
    l += "\\n" + std::to_string(b.size()) + " insn";
    return l;
}

} // namespace

void
writeCfgDot(const ImageCfg &cfg, std::ostream &os)
{
    os << "digraph cfg {\n"
       << "  node [shape=box, fontname=monospace, fontsize=9];\n";
    for (size_t f = 0; f < cfg.funcs.size(); ++f) {
        const Function &fn = cfg.funcs[f];
        os << "  subgraph cluster_" << f << " {\n"
           << "    label=" << q(fn.name) << ";\n";
        if (!fn.reachable)
            os << "    style=dashed;\n";
        for (int b : fn.blocks)
            os << "    b" << b << " [label=\""
               << blockLabel(cfg, cfg.blocks[b]) << "\"];\n";
        os << "  }\n";
    }
    for (const Block &b : cfg.blocks) {
        if (b.func < 0)
            os << "  b" << b.id << " [label=\"" << blockLabel(cfg, b)
               << "\", style=dashed];\n";
    }
    for (const Block &b : cfg.blocks) {
        for (int s : b.succs)
            os << "  b" << b.id << " -> b" << s << ";\n";
        if (b.isCall && b.callee >= 0)
            os << "  b" << b.id << " -> b"
               << cfg.funcs[b.callee].entryBlock
               << " [style=dotted, constraint=false];\n";
    }
    os << "}\n";
}

void
writeCallGraphDot(const ImageCfg &cfg, std::ostream &os)
{
    os << "digraph calls {\n"
       << "  node [shape=box, fontname=monospace, fontsize=10];\n";
    for (size_t f = 0; f < cfg.funcs.size(); ++f) {
        const Function &fn = cfg.funcs[f];
        os << "  f" << f << " [label=" << q(fn.name);
        if (!fn.reachable)
            os << ", style=dashed";
        os << "];\n";
    }
    for (size_t f = 0; f < cfg.funcs.size(); ++f)
        for (int c : cfg.funcs[f].callees)
            os << "  f" << f << " -> f" << c << ";\n";
    os << "}\n";
}

} // namespace d16sim::analysis
