/**
 * @file
 * Whole-program CFG recovery from a linked image.
 *
 * The analyzer works on the *binary*, not the compiler IR: it decodes
 * every instruction site of an `assem::Image` (both ISAs), splits the
 * text into basic blocks at branch targets and fall-throughs, and
 * groups blocks into functions by traversal from the program entry and
 * every resolved call target. The structures here are what every
 * downstream analysis (dominators/loops, register dataflow, stack
 * bounds, cross-validation) consumes.
 *
 * Delay-slot semantics (one slot on both machines): the instruction in
 * a branch's delay slot executes before the transfer, so it belongs to
 * the *branch's* block — a block ends after the slot, and a leader
 * starts two sites past any control-flow instruction. Conditional
 * branches therefore get two successors: the target block and the
 * fall-through block that starts after the slot.
 *
 * Call resolution: DLXe calls are direct (`jl sym`). D16 calls load
 * the callee address from a constant pool (`ldc .LPf_i` then `jlr at`);
 * the callee is recovered by scanning back through the straight-line
 * run for the last def of the jump register and reading the 32-bit
 * pool word out of the image.
 */

#ifndef D16SIM_ANALYSIS_CFG_HH
#define D16SIM_ANALYSIS_CFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/image.hh"
#include "isa/decoded.hh"

namespace d16sim::analysis
{

/** One decoded instruction site. */
struct Insn
{
    uint32_t addr = 0;
    int line = 0;              //!< assembler source line, 0 = unknown
    isa::DecodedInst d;
};

struct Block
{
    int id = -1;
    int first = 0;             //!< index of first insn (inclusive)
    int last = 0;              //!< index of last insn (inclusive)
    int func = -1;             //!< owning function, -1 = unclaimed
    std::vector<int> succs;    //!< intraprocedural successor block ids
    std::vector<int> preds;

    int cfIndex = -1;          //!< insn index of the terminator, -1 = none
    int callee = -1;           //!< function index of a direct call target
    bool isCall = false;       //!< ends in Jl/Jlr
    bool isReturn = false;     //!< ends in Jr ra
    bool hasIndirect = false;  //!< unresolvable indirect transfer

    int size() const { return last - first + 1; }
};

struct Function
{
    std::string name;          //!< text symbol at entry, or hex address
    uint32_t entryAddr = 0;
    int entryBlock = -1;
    std::vector<int> blocks;   //!< block ids, ascending address
    std::vector<int> callees;  //!< function indices, sorted unique
    bool hasUnresolvedCall = false;

    /** Reachable from the program entry through the call graph; dead
     *  functions (the always-linked runtime routines a workload never
     *  calls) are reported as notes, not failures. */
    bool reachable = false;

    /** Discovered from an orphan text symbol rather than a call site
     *  (never-called code; implies !reachable). */
    bool orphan = false;

    int frameBytes = 0;        //!< static stack frame from the prologue
    bool frameKnown = true;    //!< false if the sp adjustment didn't parse
};

struct ImageCfg
{
    const assem::Image *image = nullptr;
    std::vector<Insn> insns;        //!< ascending address, = insnSites
    std::vector<Block> blocks;      //!< ascending address
    std::vector<Function> funcs;    //!< ascending entry address
    int entryFunc = -1;

    /** (addr, name) text symbols, ascending (cached Image::textSymbols). */
    std::vector<std::pair<uint32_t, std::string>> textSyms;

    /** Insn index at exactly `addr`, or -1. */
    int insnAt(uint32_t addr) const;

    /** Block whose first insn is at `addr`, or -1. */
    int blockAt(uint32_t addr) const;

    /** Block containing insn index `i`. */
    int blockOf(int i) const;

    /** Name of the nearest preceding text symbol, "" if none. */
    std::string enclosingSymbol(uint32_t addr) const;

    /** Total intraprocedural edges. */
    int edgeCount() const;

    /** Total call-graph edges. */
    int callEdgeCount() const;
};

/**
 * Decode + partition + claim. Throws FatalError if a site does not
 * decode (run the machine-code linter first for a diagnosis). The
 * returned graph is structurally complete; orphan blocks that belong
 * to no function stay with func == -1 and are the unreachable-code
 * findings of analyzeImage().
 */
ImageCfg buildCfg(const assem::Image &img);

// ----- shared register model ------------------------------------------

/** Register read/write sets of one decoded instruction, as bit masks
 *  over GPR/FPR numbers. The canonical nop encodings (D16 `mv r0,r0`,
 *  DLXe `add r0,r0,r0`) report no effects. Trap conservatively reads
 *  r2 (service argument) and f2 (print_f64) and writes r2 (alloc). */
struct RegEffects
{
    uint64_t gprRead = 0, gprWrite = 0;
    uint64_t fprRead = 0, fprWrite = 0;
};

RegEffects regEffects(const isa::TargetInfo &t, const isa::DecodedInst &d);

} // namespace d16sim::analysis

#endif // D16SIM_ANALYSIS_CFG_HH
