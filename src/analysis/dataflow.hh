/**
 * @file
 * Interprocedural machine-register dataflow over the recovered CFG.
 *
 * A forward may-analysis per function with calling-convention
 * summaries at call sites. Each GPR and FPR carries one of three
 * lattice states:
 *
 *     Undef < Clobbered < Def
 *
 * merged by max (a register counts as defined if it is defined on ANY
 * path — the same deliberate policy as the IR verifier, so only
 * provably-uninitialized uses are flagged). At function entry the
 * arguments, the callee-saved range, and the dedicated registers
 * (at/ra/gp/sp, DLXe r0) are Def; caller temps beyond the arguments
 * are Undef. A call kills the caller-saved range Def -> Clobbered and
 * defines the return registers (r2/f2) and the link register; the
 * delay-slot instruction is accounted before the kill, because it
 * executes before the callee.
 *
 * Findings: a read of an Undef register is `cfa-use-before-def`
 * (Error: no def reaches on any path from the entry); a read of a
 * Clobbered register is `cfa-clobbered-across-call` (Warning: the
 * value was held in a caller-saved register across a call).
 */

#ifndef D16SIM_ANALYSIS_DATAFLOW_HH
#define D16SIM_ANALYSIS_DATAFLOW_HH

#include "analysis/cfg.hh"
#include "verify/diag.hh"

namespace d16sim::mc
{
struct CompileOptions;
}

namespace d16sim::analysis
{

/** Calling convention as the analyzer needs it. Build with `from()`
 *  for the exact compile variant (restricted DLXe register sets move
 *  the callee-saved boundary!) or `defaultFor()` when only the target
 *  is known (D16, or full DLXe conventions). */
struct Abi
{
    int intArgCount = 8;      //!< args in r2 .. r2+n-1
    int fpArgCount = 8;       //!< args in f2 .. f2+n-1
    int intCalleeFirst = 16;  //!< callee-saved GPRs [first, last]
    int intCalleeLast = 29;
    int fpCalleeFirst = 16;   //!< callee-saved FPRs [first, last]
    int fpCalleeLast = 31;
    int intAllocLast = 29;    //!< highest allocatable GPR
    int fpAllocLast = 31;

    static Abi defaultFor(const isa::TargetInfo &t);

    /** Exact conventions of one compile variant, derived from the same
     *  MachineEnv the register allocator used (defined in analysis.cc
     *  to keep this header free of mc dependencies). */
    static Abi from(const mc::CompileOptions &opts);
};

/** Run the dataflow over every function, reporting through `diags`.
 *  Returns the number of findings. */
int analyzeDataflow(const ImageCfg &cfg, const Abi &abi,
                    verify::DiagEngine &diags);

} // namespace d16sim::analysis

#endif // D16SIM_ANALYSIS_DATAFLOW_HH
