/**
 * @file
 * Bridge from CFG recovery to the sim block engine.
 *
 * The analyzer proves where every basic block starts and that each
 * block owns its terminator's delay slot; the block engine only needs
 * those spans (sim cannot depend on analysis, so the sim::BlockTable
 * struct is the narrow waist between the two layers).
 */

#ifndef D16SIM_ANALYSIS_BLOCK_EXPORT_HH
#define D16SIM_ANALYSIS_BLOCK_EXPORT_HH

#include "analysis/cfg.hh"
#include "sim/block_engine.hh"

namespace d16sim::analysis
{

/** Project the CFG's blocks onto (startPc, count) spans for
 *  sim::BlockProgram translation. Spans come out disjoint and
 *  ascending because cfg.blocks is. */
sim::BlockTable exportBlockTable(const ImageCfg &cfg);

} // namespace d16sim::analysis

#endif // D16SIM_ANALYSIS_BLOCK_EXPORT_HH
