/**
 * @file
 * Static/dynamic cross-validation.
 *
 * An ExecProbe attached to a simulated run records how many times each
 * PC executed; crossValidate() then checks the static analysis against
 * that ground truth *exactly* (no tolerances):
 *
 *  - every executed PC is a decoded instruction site inside a block
 *    the static call-graph traversal claimed (nothing executed code the
 *    analyzer called unreachable);
 *  - the per-site counts sum to SimStats::instructions;
 *  - the counts at branch/jump sites sum to SimStats::branches;
 *  - within each block, execution is prefix-shaped: counts are
 *    non-increasing from the block head (a block can only be entered
 *    at its head; only a halting trap may exit it early);
 *  - when the probe records edges (construct it with the target's
 *    instruction width), every observed non-sequential transfer is an
 *    edge the static CFG predicts: it leaves from the last site of
 *    its block and lands on a successor head, the resolved callee's
 *    entry, or a valid return point of the returning function —
 *    i.e. the dynamically observed block graph is a subset of the
 *    static one.
 *
 * Violations are Error-severity `cfa-xval-*` diagnostics.
 */

#ifndef D16SIM_ANALYSIS_XVALIDATE_HH
#define D16SIM_ANALYSIS_XVALIDATE_HH

#include <cstdint>
#include <map>

#include "analysis/cfg.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"
#include "verify/diag.hh"

namespace d16sim::analysis
{

/** Per-PC execution counter (ordered so validation is deterministic).
 *  Constructed with the target's instruction width it also records
 *  every non-sequential PC transition — the dynamically taken CFG
 *  edges (branch/jump/call/return transfers, delay slot to target). */
class ExecProbe : public sim::Probe
{
  public:
    ExecProbe() = default;
    explicit ExecProbe(int insnBytes)
        : insnBytes_(static_cast<uint32_t>(insnBytes))
    {}

    void
    onExec(const isa::DecodedInst &inst, uint32_t pc) override
    {
        (void)inst;
        ++counts_[pc];
        if (insnBytes_ != 0) {
            if (havePrev_ && pc != prevPc_ + insnBytes_)
                ++edges_[{prevPc_, pc}];
            havePrev_ = true;
            prevPc_ = pc;
        }
    }

    const std::map<uint32_t, uint64_t> &counts() const { return counts_; }

    bool recordsEdges() const { return insnBytes_ != 0; }

    /** Observed non-sequential transfers (from, to) -> count. */
    const std::map<std::pair<uint32_t, uint32_t>, uint64_t> &
    edges() const
    {
        return edges_;
    }

  private:
    std::map<uint32_t, uint64_t> counts_;
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> edges_;
    uint32_t insnBytes_ = 0;
    uint32_t prevPc_ = 0;
    bool havePrev_ = false;
};

/** Validate a recorded run against the static CFG. Returns the number
 *  of findings reported (0 = the analyses agree exactly). */
int crossValidate(const ImageCfg &cfg, const ExecProbe &probe,
                  const sim::SimStats &stats, verify::DiagEngine &diags);

} // namespace d16sim::analysis

#endif // D16SIM_ANALYSIS_XVALIDATE_HH
