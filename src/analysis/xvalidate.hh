/**
 * @file
 * Static/dynamic cross-validation.
 *
 * An ExecProbe attached to a simulated run records how many times each
 * PC executed; crossValidate() then checks the static analysis against
 * that ground truth *exactly* (no tolerances):
 *
 *  - every executed PC is a decoded instruction site inside a block
 *    the static call-graph traversal claimed (nothing executed code the
 *    analyzer called unreachable);
 *  - the per-site counts sum to SimStats::instructions;
 *  - the counts at branch/jump sites sum to SimStats::branches;
 *  - within each block, execution is prefix-shaped: counts are
 *    non-increasing from the block head (a block can only be entered
 *    at its head; only a halting trap may exit it early).
 *
 * Violations are Error-severity `cfa-xval-*` diagnostics.
 */

#ifndef D16SIM_ANALYSIS_XVALIDATE_HH
#define D16SIM_ANALYSIS_XVALIDATE_HH

#include <cstdint>
#include <map>

#include "analysis/cfg.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"
#include "verify/diag.hh"

namespace d16sim::analysis
{

/** Per-PC execution counter (ordered so validation is deterministic). */
class ExecProbe : public sim::Probe
{
  public:
    void
    onExec(const isa::DecodedInst &inst, uint32_t pc) override
    {
        (void)inst;
        ++counts_[pc];
    }

    const std::map<uint32_t, uint64_t> &counts() const { return counts_; }

  private:
    std::map<uint32_t, uint64_t> counts_;
};

/** Validate a recorded run against the static CFG. Returns the number
 *  of findings reported (0 = the analyses agree exactly). */
int crossValidate(const ImageCfg &cfg, const ExecProbe &probe,
                  const sim::SimStats &stats, verify::DiagEngine &diags);

} // namespace d16sim::analysis

#endif // D16SIM_ANALYSIS_XVALIDATE_HH
