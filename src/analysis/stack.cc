#include "analysis/stack.hh"

#include <algorithm>
#include <sstream>

namespace d16sim::analysis
{

using verify::Diag;
using verify::DiagEngine;
using verify::Severity;

namespace
{

/** Tarjan SCC over the call graph. */
struct Scc
{
    const ImageCfg &cfg;
    int counter = 0;
    std::vector<int> index, low, comp;
    std::vector<bool> onStack;
    std::vector<int> stack;
    std::vector<std::vector<int>> comps;

    explicit Scc(const ImageCfg &cfg)
        : cfg(cfg), index(cfg.funcs.size(), -1),
          low(cfg.funcs.size(), 0), comp(cfg.funcs.size(), -1),
          onStack(cfg.funcs.size(), false)
    {
        for (size_t f = 0; f < cfg.funcs.size(); ++f)
            if (index[f] < 0)
                visit(static_cast<int>(f));
    }

    void
    visit(int f)
    {
        index[f] = low[f] = counter++;
        stack.push_back(f);
        onStack[f] = true;
        for (int c : cfg.funcs[f].callees) {
            if (index[c] < 0) {
                visit(c);
                low[f] = std::min(low[f], low[c]);
            } else if (onStack[c]) {
                low[f] = std::min(low[f], index[c]);
            }
        }
        if (low[f] == index[f]) {
            std::vector<int> members;
            int m;
            do {
                m = stack.back();
                stack.pop_back();
                onStack[m] = false;
                comp[m] = static_cast<int>(comps.size());
                members.push_back(m);
            } while (m != f);
            std::sort(members.begin(), members.end());
            comps.push_back(std::move(members));
        }
    }

    bool
    hasCycle(int c) const
    {
        if (comps[c].size() > 1)
            return true;
        const int f = comps[c][0];
        const auto &cal = cfg.funcs[f].callees;
        return std::find(cal.begin(), cal.end(), f) != cal.end();
    }
};

} // namespace

StackBounds
analyzeStack(const ImageCfg &cfg, DiagEngine &diags)
{
    StackBounds out;
    out.depth.assign(cfg.funcs.size(), 0);
    if (cfg.funcs.empty())
        return out;

    const Scc scc(cfg);

    // Report each cyclic component once, at its lexically-first member.
    for (size_t c = 0; c < scc.comps.size(); ++c) {
        if (!scc.hasCycle(static_cast<int>(c)))
            continue;
        out.recursive = true;
        std::ostringstream os;
        os << "recursive call cycle: ";
        for (size_t i = 0; i < scc.comps[c].size(); ++i) {
            if (i)
                os << " -> ";
            os << cfg.funcs[scc.comps[c][i]].name;
        }
        os << " (static stack bound is unbounded)";
        const Function &head = cfg.funcs[scc.comps[c][0]];
        Diag d;
        d.severity = Severity::Note;
        d.code = "cfa-recursive-cycle";
        d.message = os.str();
        d.addr = head.entryAddr;
        d.hasAddr = true;
        d.symbol = head.name;
        diags.report(std::move(d));
    }

    // Longest frame-weighted path, memoized over the component DAG
    // (Tarjan numbers components in reverse topological order, so
    // callees' components are complete before callers').
    std::vector<int64_t> depth(cfg.funcs.size(), -2);  // -2 = unset
    // Process functions so callees resolve first: by component index
    // ascending (callees have smaller component numbers).
    std::vector<int> order(cfg.funcs.size());
    for (size_t f = 0; f < order.size(); ++f)
        order[f] = static_cast<int>(f);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return scc.comp[a] < scc.comp[b];
    });
    for (int f : order) {
        if (scc.hasCycle(scc.comp[f])) {
            depth[f] = -1;  // unbounded
            continue;
        }
        int64_t calleeMax = 0;
        bool unbounded = false;
        for (int c : cfg.funcs[f].callees) {
            if (depth[c] == -1)
                unbounded = true;
            else
                calleeMax = std::max(calleeMax, depth[c]);
        }
        if (!cfg.funcs[f].frameKnown)
            out.framesKnown = false;
        depth[f] = unbounded ? -1 : cfg.funcs[f].frameBytes + calleeMax;
    }
    out.depth = depth;
    out.maxStackBytes =
        cfg.entryFunc >= 0 ? depth[cfg.entryFunc] : 0;
    return out;
}

} // namespace d16sim::analysis
