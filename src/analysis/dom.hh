/**
 * @file
 * Dominator trees and natural-loop detection over a recovered CFG.
 *
 * Per function: immediate dominators by the iterative Cooper-Harvey-
 * Kennedy algorithm over a reverse-postorder of the function's blocks,
 * then natural loops as back edges t -> h where h dominates t. Loop
 * counts (distinct headers) feed the per-function summary; the
 * dominator query is exposed for the tests.
 */

#ifndef D16SIM_ANALYSIS_DOM_HH
#define D16SIM_ANALYSIS_DOM_HH

#include <vector>

#include "analysis/cfg.hh"

namespace d16sim::analysis
{

/** Dominance facts for one function. Block ids are global (ImageCfg)
 *  ids; blocks outside the function answer false/-1. */
struct DomInfo
{
    /** idom[b] = immediate dominator of global block b, -1 for the
     *  function entry and for blocks not in this function. */
    std::vector<int> idom;

    /** Back-edge headers, sorted: one entry per natural loop. */
    std::vector<int> loopHeaders;

    /** Does block `a` dominate block `b`? */
    bool dominates(int a, int b) const;

    int loopCount() const { return static_cast<int>(loopHeaders.size()); }
};

DomInfo computeDoms(const ImageCfg &cfg, const Function &fn);

} // namespace d16sim::analysis

#endif // D16SIM_ANALYSIS_DOM_HH
