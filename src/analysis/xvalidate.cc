#include "analysis/xvalidate.hh"

#include <sstream>

#include "support/strings.hh"

namespace d16sim::analysis
{

using verify::Diag;
using verify::DiagEngine;
using verify::Severity;

namespace
{

int
emit(DiagEngine &diags, const ImageCfg &cfg, const char *code,
     uint32_t addr, bool hasAddr, std::string message)
{
    Diag d;
    d.severity = Severity::Error;
    d.code = code;
    d.message = std::move(message);
    d.addr = addr;
    d.hasAddr = hasAddr;
    if (hasAddr)
        d.symbol = cfg.enclosingSymbol(addr);
    diags.report(std::move(d));
    return 1;
}

} // namespace

int
crossValidate(const ImageCfg &cfg, const ExecProbe &probe,
              const sim::SimStats &stats, DiagEngine &diags)
{
    int findings = 0;
    uint64_t total = 0;
    uint64_t cfTotal = 0;

    // Per-site checks + totals.
    std::vector<uint64_t> siteCount(cfg.insns.size(), 0);
    for (const auto &[pc, count] : probe.counts()) {
        total += count;
        const int i = cfg.insnAt(pc);
        if (i < 0) {
            findings += emit(
                diags, cfg, "cfa-xval-unknown-pc", pc, true,
                "executed PC is not a decoded instruction site");
            continue;
        }
        siteCount[i] = count;
        const isa::OpClass cls = isa::opClass(cfg.insns[i].d.op);
        if (cls == isa::OpClass::Branch || cls == isa::OpClass::Jump)
            cfTotal += count;
        const int b = cfg.blockOf(i);
        if (cfg.blocks[b].func < 0) {
            findings += emit(
                diags, cfg, "cfa-xval-unreachable-executed", pc, true,
                "executed PC lies in a block the static analysis "
                "found unreachable");
        }
    }

    // Exact dynamic totals.
    if (total != stats.instructions) {
        findings += emit(
            diags, cfg, "cfa-xval-count-mismatch", 0, false,
            "per-site execution counts sum to " + std::to_string(total) +
                " but the machine retired " +
                std::to_string(stats.instructions) + " instructions");
    }
    if (cfTotal != stats.branches) {
        findings += emit(
            diags, cfg, "cfa-xval-count-mismatch", 0, false,
            "branch/jump-site counts sum to " + std::to_string(cfTotal) +
                " but the machine counted " +
                std::to_string(stats.branches) + " branches");
    }

    // Prefix-shaped execution within each block.
    for (const Block &b : cfg.blocks) {
        for (int i = b.first; i < b.last; ++i) {
            if (siteCount[i + 1] > siteCount[i]) {
                findings += emit(
                    diags, cfg, "cfa-xval-block-profile",
                    cfg.insns[i + 1].addr, true,
                    "instruction executed " +
                        std::to_string(siteCount[i + 1]) +
                        " times, more than its block predecessor (" +
                        std::to_string(siteCount[i]) +
                        "): block boundaries are wrong");
                break;  // one finding per block is enough
            }
        }
    }

    return findings;
}

} // namespace d16sim::analysis
