#include "analysis/xvalidate.hh"

#include <algorithm>
#include <sstream>

#include "support/strings.hh"

namespace d16sim::analysis
{

using verify::Diag;
using verify::DiagEngine;
using verify::Severity;

namespace
{

int
emit(DiagEngine &diags, const ImageCfg &cfg, const char *code,
     uint32_t addr, bool hasAddr, std::string message)
{
    Diag d;
    d.severity = Severity::Error;
    d.code = code;
    d.message = std::move(message);
    d.addr = addr;
    d.hasAddr = hasAddr;
    if (hasAddr)
        d.symbol = cfg.enclosingSymbol(addr);
    diags.report(std::move(d));
    return 1;
}

} // namespace

int
crossValidate(const ImageCfg &cfg, const ExecProbe &probe,
              const sim::SimStats &stats, DiagEngine &diags)
{
    int findings = 0;
    uint64_t total = 0;
    uint64_t cfTotal = 0;

    // Per-site checks + totals.
    std::vector<uint64_t> siteCount(cfg.insns.size(), 0);
    for (const auto &[pc, count] : probe.counts()) {
        total += count;
        const int i = cfg.insnAt(pc);
        if (i < 0) {
            findings += emit(
                diags, cfg, "cfa-xval-unknown-pc", pc, true,
                "executed PC is not a decoded instruction site");
            continue;
        }
        siteCount[i] = count;
        const isa::OpClass cls = isa::opClass(cfg.insns[i].d.op);
        if (cls == isa::OpClass::Branch || cls == isa::OpClass::Jump)
            cfTotal += count;
        const int b = cfg.blockOf(i);
        if (cfg.blocks[b].func < 0) {
            findings += emit(
                diags, cfg, "cfa-xval-unreachable-executed", pc, true,
                "executed PC lies in a block the static analysis "
                "found unreachable");
        }
    }

    // Exact dynamic totals.
    if (total != stats.instructions) {
        findings += emit(
            diags, cfg, "cfa-xval-count-mismatch", 0, false,
            "per-site execution counts sum to " + std::to_string(total) +
                " but the machine retired " +
                std::to_string(stats.instructions) + " instructions");
    }
    if (cfTotal != stats.branches) {
        findings += emit(
            diags, cfg, "cfa-xval-count-mismatch", 0, false,
            "branch/jump-site counts sum to " + std::to_string(cfTotal) +
                " but the machine counted " +
                std::to_string(stats.branches) + " branches");
    }

    // The dynamically taken edges must be a subset of the static
    // graph: each observed transfer leaves from the end of its block
    // and lands exactly where the CFG says control can go.
    if (probe.recordsEdges()) {
        // Valid return points per function: the fall-through heads of
        // every resolved call site of that function.
        std::vector<std::vector<uint32_t>> returnPoints(cfg.funcs.size());
        for (const Block &b : cfg.blocks)
            if (b.func >= 0 && b.isCall && b.callee >= 0)
                for (int s : b.succs)
                    returnPoints[b.callee].push_back(
                        cfg.insns[cfg.blocks[s].first].addr);

        for (const auto &[edge, count] : probe.edges()) {
            const auto [from, to] = edge;
            const int fi = cfg.insnAt(from);
            const int ti = cfg.insnAt(to);
            if (fi < 0 || ti < 0)
                continue;  // already reported as cfa-xval-unknown-pc
            const Block &b = cfg.blocks[cfg.blockOf(fi)];
            if (b.func < 0)
                continue;  // already cfa-xval-unreachable-executed
            if (b.hasIndirect)
                continue;  // statically unresolved: anything goes
            std::string reason;
            if (fi != b.last) {
                reason = "control left mid-block";
            } else if (b.isCall && b.callee >= 0) {
                if (to != cfg.funcs[b.callee].entryAddr)
                    reason = "call did not enter the resolved callee " +
                             cfg.funcs[b.callee].name;
            } else if (b.isCall) {
                // Unresolved callee: no static claim to check.
            } else if (b.isReturn) {
                const auto &rps = returnPoints[b.func];
                if (std::find(rps.begin(), rps.end(), to) == rps.end())
                    reason = "return landed on a PC that is not a "
                             "return point of " + cfg.funcs[b.func].name;
            } else {
                bool found = false;
                for (int s : b.succs)
                    found |= to == cfg.insns[cfg.blocks[s].first].addr;
                if (!found)
                    reason = "transfer target is not a static "
                             "successor head";
            }
            if (!reason.empty()) {
                findings += emit(
                    diags, cfg, "cfa-xval-edge", from, true,
                    "observed edge to " + hexString(to) + " (taken " +
                        std::to_string(count) + " time(s)) is not in "
                        "the static CFG: " + reason);
            }
        }
    }

    // Prefix-shaped execution within each block.
    for (const Block &b : cfg.blocks) {
        for (int i = b.first; i < b.last; ++i) {
            if (siteCount[i + 1] > siteCount[i]) {
                findings += emit(
                    diags, cfg, "cfa-xval-block-profile",
                    cfg.insns[i + 1].addr, true,
                    "instruction executed " +
                        std::to_string(siteCount[i + 1]) +
                        " times, more than its block predecessor (" +
                        std::to_string(siteCount[i]) +
                        "): block boundaries are wrong");
                break;  // one finding per block is enough
            }
        }
    }

    return findings;
}

} // namespace d16sim::analysis
