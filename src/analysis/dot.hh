/**
 * @file
 * Graphviz export of the recovered control-flow and call graphs
 * (`d16cfa --cfg` / `--calls`).
 */

#ifndef D16SIM_ANALYSIS_DOT_HH
#define D16SIM_ANALYSIS_DOT_HH

#include <ostream>

#include "analysis/cfg.hh"

namespace d16sim::analysis
{

/** Whole-program CFG, one cluster per function; blocks are labeled
 *  with their address range and instruction count. Unclaimed
 *  (unreachable) blocks render outside any cluster, dashed. */
void writeCfgDot(const ImageCfg &cfg, std::ostream &os);

/** Call graph: one node per function (dead ones dashed), one edge per
 *  caller/callee pair. */
void writeCallGraphDot(const ImageCfg &cfg, std::ostream &os);

} // namespace d16sim::analysis

#endif // D16SIM_ANALYSIS_DOT_HH
