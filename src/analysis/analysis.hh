/**
 * @file
 * Whole-program binary analysis orchestrator.
 *
 * analyzeImage() runs every static pass over one linked image — CFG
 * recovery, dominators/natural loops, unreachable-code and
 * dead-function detection, interprocedural register dataflow, static
 * stack bounds — and folds the results into one AnalysisResult with a
 * canonical JSON rendering (the golden-file format of
 * tests/analysis_test.cc). Findings go through the same DiagEngine as
 * the IR verifier and the machine-code linter, with stable `cfa-*`
 * codes:
 *
 *   cfa-use-before-def          Error    dataflow (no def on any path)
 *   cfa-density-mismatch        Error    static size identities broken
 *   cfa-clobbered-across-call   Warning  caller-saved value outlives call
 *   cfa-unreachable-block       Warning  code no function can reach
 *   cfa-indirect-jump           Warning  unresolvable register jump
 *   cfa-dead-function           Note     linked but never called
 *   cfa-recursive-cycle         Note     call-graph cycle (bound unbounded)
 *
 * The Error/Warning set is empty for every image the toolchain emits;
 * core::build enforces that through analyzeImageOrThrow() whenever
 * verification is on, exactly like the machine-code linter.
 */

#ifndef D16SIM_ANALYSIS_ANALYSIS_HH
#define D16SIM_ANALYSIS_ANALYSIS_HH

#include <array>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "verify/diag.hh"

namespace d16sim::analysis
{

/** Static per-function report (instruction mix rolls up globally). */
struct FunctionSummary
{
    std::string name;
    uint32_t entryAddr = 0;
    int blocks = 0;
    int insns = 0;
    int loops = 0;          //!< natural-loop headers
    int frameBytes = 0;
    int64_t stackDepth = 0; //!< worst-case incl. callees; -1 unbounded
    bool reachable = false;
};

/** Number of isa::OpClass values (operation.hh has no Count member). */
constexpr int numOpClasses = 11;

/** Stable lower-case tag for an OpClass index, for reports/JSON. */
std::string_view opClassTag(int cls);

struct AnalysisResult
{
    // Graph shape.
    int insnCount = 0;
    int blockCount = 0;
    int edgeCount = 0;
    int funcCount = 0;
    int callEdgeCount = 0;
    int loopCount = 0;
    int unreachableBlocks = 0;
    int deadFuncs = 0;

    // Static code density (the paper's §3.1 measures, recomputed from
    // the decoded instruction stream and checked against the image).
    uint32_t insnBytes = 0;   //!< decoded sites * insn width
    uint32_t poolBytes = 0;   //!< text bytes that are not instructions
    uint32_t dataBytes = 0;
    uint32_t bssBytes = 0;
    uint32_t staticBytes = 0; //!< == Image::sizeBytes()

    // Stack bounds.
    int64_t maxStackBytes = 0; //!< from entry; -1 = unbounded (recursion)
    bool recursive = false;

    /** Static instruction mix, indexed by isa::OpClass. */
    std::array<int, numOpClasses> opClassCounts{};

    std::vector<FunctionSummary> functions; //!< ascending entry address

    /** Error- + Warning-severity findings this analysis reported. */
    int findings = 0;

    /** The recovered graph, retained for DOT export and dynamic
     *  cross-validation. Valid as long as the analyzed image lives. */
    ImageCfg cfg;

    /** Canonical JSON (stable field order; the golden-file format). */
    void renderJson(std::ostream &os) const;

    /** Human-readable multi-line summary (d16cfa's default output). */
    void renderText(std::ostream &os) const;
};

/** Run every pass; append findings to `diags`. `abi` selects the
 *  calling convention for the dataflow (use Abi::from for restricted
 *  DLXe variants — their callee-saved boundary differs). */
AnalysisResult analyzeImage(const assem::Image &img,
                            verify::DiagEngine &diags, const Abi &abi);

/** Convenience: the target's default conventions. */
AnalysisResult analyzeImage(const assem::Image &img,
                            verify::DiagEngine &diags);

/** Analyze and throw PanicError listing the findings when any Error or
 *  Warning is produced (core::build's post-link gate). */
void analyzeImageOrThrow(const assem::Image &img,
                         const mc::CompileOptions &opts,
                         const std::string &unit = "");

} // namespace d16sim::analysis

#endif // D16SIM_ANALYSIS_ANALYSIS_HH
