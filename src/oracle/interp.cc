#include "oracle/interp.hh"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "mc/parser.hh"
#include "mc/sema.hh"
#include "support/bits.hh"
#include "support/error.hh"

namespace d16sim::oracle
{

using namespace d16sim::mc;

namespace
{

// Signals that unwind the evaluator.  Traps and limits are part of the
// result, not errors: the differential driver discards such programs.
struct TrapSignal { std::string reason; };
struct LimitSignal { std::string reason; };
struct HaltSignal { int status; };

/**
 * One runtime value.  The active field is keyed off the static
 * Expr::type at every use site — sema's explicit Cast nodes guarantee
 * the evaluator never has to guess.  Integers, pointers, and char are
 * in `i` (char sign-extended), float in `f`, double in `d`.
 */
struct Value
{
    uint32_t i = 0;
    float f = 0.0f;
    double d = 0.0;

    static Value ofInt(uint32_t v) { Value r; r.i = v; return r; }
    static Value ofFloat(float v) { Value r; r.f = v; return r; }
    static Value ofDouble(double v) { Value r; r.d = v; return r; }
};

enum class Flow : uint8_t { Normal, Break, Continue, Return };

/** An lvalue: either a memory address or a register-bound local. */
struct Place
{
    bool inMemory = false;
    uint32_t addr = 0;
    int localId = -1;
};

/** Mirrors codegen's evalConstNum: global initializers fold in double
 *  arithmetic and look through casts. */
double
constNum(const Expr &e)
{
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::SizeofType:
        return static_cast<double>(e.intValue);
      case ExprKind::FloatLit:
        return e.floatValue;
      case ExprKind::Unary:
        if (e.unOp == UnOp::Neg)
            return -constNum(*e.a);
        if (e.unOp == UnOp::Plus)
            return constNum(*e.a);
        break;
      case ExprKind::Binary: {
        const double a = constNum(*e.a);
        const double b = constNum(*e.b);
        switch (e.binOp) {
          case BinOp::Add: return a + b;
          case BinOp::Sub: return a - b;
          case BinOp::Mul: return a * b;
          case BinOp::Div: return a / b;
          default: break;
        }
        break;
      }
      case ExprKind::Cast:
        return constNum(*e.a);
      default:
        break;
    }
    fatal("minic line ", e.line, ": global initializer is not constant");
}

class Interp
{
  public:
    Interp(const Program &prog, const Limits &lim)
        : prog_(prog), lim_(lim), mem_(lim.memBytes, 0)
    {
        for (const FuncDecl &f : prog_.functions)
            if (f.body)
                funcs_[f.name] = &f;
        layoutAndInitGlobals();
    }

    RunResult
    run()
    {
        RunResult res;
        try {
            const FuncDecl *main = findFunc("main");
            if (!main)
                throw TrapSignal{"no main function"};
            std::vector<Value> args(main->params.size());
            const Value ret = call(*main, std::move(args));
            res.outcome = Outcome::Exit;
            res.exitStatus = static_cast<int>(ret.i);
        } catch (const HaltSignal &h) {
            res.outcome = Outcome::Exit;
            res.exitStatus = h.status;
        } catch (const TrapSignal &t) {
            res.outcome = Outcome::Trap;
            res.reason = t.reason;
        } catch (const LimitSignal &l) {
            res.outcome = Outcome::Limit;
            res.reason = l.reason;
        }
        res.output = std::move(output_);
        res.steps = steps_;
        return res;
    }

  private:
    // Globals start past a small unmapped guard region so that null
    // (and near-null) dereferences trap instead of aliasing data.
    static constexpr uint32_t kGuardBytes = 64;

    const Program &prog_;
    Limits lim_;
    std::vector<uint8_t> mem_;
    std::map<std::string, uint32_t> globalAddr_;
    std::vector<uint32_t> stringAddr_;
    std::map<std::string, const FuncDecl *> funcs_;
    uint32_t heapPtr_ = 0;
    uint32_t stackPtr_ = 0;
    uint64_t steps_ = 0;
    int depth_ = 0;
    std::string output_;

    struct Frame
    {
        const FuncDecl *fn = nullptr;
        std::vector<Value> regs;      //!< register-bound locals
        std::vector<uint32_t> addrs;  //!< frame addresses (inMemory)
        std::vector<uint8_t> inMem;
    };
    Frame *frame_ = nullptr;

    const FuncDecl *
    findFunc(const std::string &name) const
    {
        auto it = funcs_.find(name);
        return it == funcs_.end() ? nullptr : it->second;
    }

    void
    tick()
    {
        if (++steps_ > lim_.maxSteps)
            throw LimitSignal{"step limit exceeded"};
    }

    // ----- memory ---------------------------------------------------------

    uint8_t *
    checked(uint32_t addr, uint32_t size)
    {
        if (addr < kGuardBytes || addr > mem_.size() ||
            mem_.size() - addr < size)
            throw TrapSignal{"out-of-bounds access at address " +
                             std::to_string(addr)};
        if (size > 1 && addr % size != 0)
            throw TrapSignal{"misaligned access at address " +
                             std::to_string(addr)};
        return mem_.data() + addr;
    }

    uint32_t
    loadWord(uint32_t addr)
    {
        uint32_t v;
        std::memcpy(&v, checked(addr, 4), 4);
        return v;
    }

    void
    storeWord(uint32_t addr, uint32_t v)
    {
        std::memcpy(checked(addr, 4), &v, 4);
    }

    Value
    loadValue(uint32_t addr, const Type *t)
    {
        switch (t->kind()) {
          case TypeKind::Char:
            return Value::ofInt(static_cast<uint32_t>(
                static_cast<int32_t>(static_cast<int8_t>(
                    *checked(addr, 1)))));
          case TypeKind::Float:
            return Value::ofFloat(std::bit_cast<float>(loadWord(addr)));
          case TypeKind::Double: {
            uint64_t bits;
            std::memcpy(&bits, checked(addr, 8), 8);
            return Value::ofDouble(std::bit_cast<double>(bits));
          }
          default:
            return Value::ofInt(loadWord(addr));
        }
    }

    void
    storeValue(uint32_t addr, const Type *t, const Value &v)
    {
        switch (t->kind()) {
          case TypeKind::Char:
            *checked(addr, 1) = static_cast<uint8_t>(v.i & 0xff);
            break;
          case TypeKind::Float:
            storeWord(addr, std::bit_cast<uint32_t>(v.f));
            break;
          case TypeKind::Double: {
            const uint64_t bits = std::bit_cast<uint64_t>(v.d);
            std::memcpy(checked(addr, 8), &bits, 8);
            break;
          }
          default:
            storeWord(addr, v.i);
            break;
        }
    }

    // ----- global layout (mirrors CodeGen::layoutGlobals/emitData) --------

    void
    layoutAndInitGlobals()
    {
        uint32_t cursor = kGuardBytes;
        auto place = [&](const std::string &name, int size, int align) {
            cursor = static_cast<uint32_t>(roundUp(cursor, align));
            globalAddr_[name] = cursor;
            cursor += static_cast<uint32_t>(size);
        };
        for (const GlobalDecl &g : prog_.globals)
            if (!g.type->isArray() && !g.type->isStruct())
                place(g.name, g.type->size(), g.type->align());
        for (const GlobalDecl &g : prog_.globals)
            if (g.type->isArray() || g.type->isStruct())
                place(g.name, g.type->size(),
                      std::max(g.type->align(), 4));
        stringAddr_.resize(prog_.strings.size());
        for (size_t i = 0; i < prog_.strings.size(); ++i) {
            stringAddr_[i] = cursor;
            cursor += static_cast<uint32_t>(prog_.strings[i].size()) + 1;
        }
        heapPtr_ = static_cast<uint32_t>(roundUp(cursor, 8));
        if (heapPtr_ >= lim_.memBytes)
            fatal("oracle memory too small for globals");
        stackPtr_ = lim_.memBytes & ~7u;

        for (size_t i = 0; i < prog_.strings.size(); ++i) {
            const std::string &s = prog_.strings[i];
            std::memcpy(mem_.data() + stringAddr_[i], s.data(),
                        s.size());
        }
        for (const GlobalDecl &g : prog_.globals)
            initGlobal(g);
    }

    uint32_t
    scalarInitBits(const Type *t, const Expr *init)
    {
        // Pointer globals may be initialized from a string literal or
        // another global's address; everything else folds numerically.
        if (t->kind() == TypeKind::Pointer && init) {
            if (init->kind == ExprKind::StringLit)
                return stringAddr_.at(
                    static_cast<size_t>(init->intValue));
            if (init->kind == ExprKind::Ident)
                return globalAddr_.at(init->strValue);
        }
        const double v = init ? constNum(*init) : 0.0;
        switch (t->kind()) {
          case TypeKind::Float:
            return std::bit_cast<uint32_t>(static_cast<float>(v));
          case TypeKind::Char:
            return static_cast<uint32_t>(static_cast<int64_t>(v)) &
                   0xff;
          default:
            return static_cast<uint32_t>(static_cast<int64_t>(v));
        }
    }

    void
    initScalarAt(uint32_t addr, const Type *t, const Expr *init)
    {
        switch (t->kind()) {
          case TypeKind::Char:
            *checked(addr, 1) =
                static_cast<uint8_t>(scalarInitBits(t, init));
            break;
          case TypeKind::Double: {
            const double v = init ? constNum(*init) : 0.0;
            const uint64_t bits = std::bit_cast<uint64_t>(v);
            std::memcpy(checked(addr, 8), &bits, 8);
            break;
          }
          default:
            storeWord(addr, scalarInitBits(t, init));
            break;
        }
    }

    void
    initGlobal(const GlobalDecl &g)
    {
        const uint32_t base = globalAddr_.at(g.name);
        if (g.hasStringInit) {
            std::memcpy(mem_.data() + base, g.stringInit.data(),
                        g.stringInit.size());
            return;
        }
        if (!g.initList.empty()) {
            if (g.type->isStruct()) {
                const StructInfo *rec = g.type->record();
                for (size_t i = 0; i < rec->fields.size(); ++i) {
                    const StructField &f = rec->fields[i];
                    const Expr *init = i < g.initList.size()
                                           ? g.initList[i].get()
                                           : nullptr;
                    initScalarAt(base + static_cast<uint32_t>(f.offset),
                                 f.type, init);
                }
                return;
            }
            const Type *elem =
                g.type->isArray() ? g.type->pointee() : g.type;
            uint32_t off = 0;
            for (const ExprPtr &init : g.initList) {
                initScalarAt(base + off, elem, init.get());
                off += static_cast<uint32_t>(elem->size());
            }
            return;
        }
        if (g.init && g.type->isScalar())
            initScalarAt(base, g.type, g.init.get());
    }

    // ----- pinned arithmetic ----------------------------------------------

    static int32_t s32(uint32_t v) { return static_cast<int32_t>(v); }
    static uint32_t u32(int32_t v) { return static_cast<uint32_t>(v); }

    static uint32_t
    normalizeChar(uint32_t v)
    {
        return static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int8_t>(v & 0xff)));
    }

    uint32_t
    intBinary(BinOp op, bool isUnsigned, uint32_t a, uint32_t b)
    {
        switch (op) {
          case BinOp::Add: return a + b;
          case BinOp::Sub: return a - b;
          case BinOp::Mul: return a * b;
          case BinOp::Div:
            if (b == 0)
                throw TrapSignal{"division by zero"};
            if (isUnsigned)
                return a / b;
            if (a == 0x80000000u && b == 0xffffffffu)
                throw TrapSignal{"INT32_MIN / -1 overflow"};
            return u32(s32(a) / s32(b));
          case BinOp::Rem:
            if (b == 0)
                throw TrapSignal{"remainder by zero"};
            if (isUnsigned)
                return a % b;
            if (a == 0x80000000u && b == 0xffffffffu)
                throw TrapSignal{"INT32_MIN % -1 overflow"};
            return u32(s32(a) % s32(b));
          case BinOp::And: return a & b;
          case BinOp::Or: return a | b;
          case BinOp::Xor: return a ^ b;
          case BinOp::Shl: return a << (b & 31);
          case BinOp::Shr:
            return isUnsigned ? a >> (b & 31)
                              : u32(s32(a) >> (b & 31));
          default:
            break;
        }
        panic("oracle: unexpected integer binop");
    }

    static bool
    compareInt(BinOp op, bool isUnsigned, uint32_t a, uint32_t b)
    {
        switch (op) {
          case BinOp::Eq: return a == b;
          case BinOp::Ne: return a != b;
          case BinOp::Lt:
            return isUnsigned ? a < b : s32(a) < s32(b);
          case BinOp::Le:
            return isUnsigned ? a <= b : s32(a) <= s32(b);
          case BinOp::Gt:
            return isUnsigned ? a > b : s32(a) > s32(b);
          case BinOp::Ge:
            return isUnsigned ? a >= b : s32(a) >= s32(b);
          default:
            break;
        }
        panic("oracle: unexpected comparison");
    }

    template <typename T>
    static bool
    compareFp(BinOp op, T a, T b)
    {
        switch (op) {
          case BinOp::Eq: return a == b;
          case BinOp::Ne: return a != b;
          case BinOp::Lt: return a < b;
          case BinOp::Le: return a <= b;
          case BinOp::Gt: return a > b;
          case BinOp::Ge: return a >= b;
          default:
            break;
        }
        panic("oracle: unexpected fp comparison");
    }

    template <typename T>
    static T
    fpBinary(BinOp op, T a, T b)
    {
        switch (op) {
          case BinOp::Add: return a + b;
          case BinOp::Sub: return a - b;
          case BinOp::Mul: return a * b;
          case BinOp::Div: return a / b;  // IEEE: x/0 is inf/nan
          default:
            break;
        }
        panic("oracle: unexpected fp binop");
    }

    uint32_t
    fpToInt(double v)
    {
        // The machines use a plain truncating convert; values whose
        // truncation does not fit int32 are host UB there, so they are
        // a trap here and such programs are discarded.
        if (std::isnan(v) || !(v > -2147483649.0 && v < 2147483648.0))
            throw TrapSignal{"FP to integer conversion out of range"};
        return u32(static_cast<int32_t>(v));
    }

    Value
    castValue(const Type *to, const Type *from, Value v)
    {
        if (to == from)
            return v;
        const bool fromFp = from->isFp();
        const bool toFp = to->isFp();
        if (fromFp && toFp) {
            if (to->kind() == TypeKind::Float)
                return Value::ofFloat(
                    from->kind() == TypeKind::Float
                        ? v.f
                        : static_cast<float>(v.d));
            return Value::ofDouble(from->kind() == TypeKind::Float
                                       ? static_cast<double>(v.f)
                                       : v.d);
        }
        if (!fromFp && toFp) {
            // Pinned: the machines only have signed int->FP converts.
            if (to->kind() == TypeKind::Float)
                return Value::ofFloat(static_cast<float>(s32(v.i)));
            return Value::ofDouble(static_cast<double>(s32(v.i)));
        }
        if (fromFp && !toFp) {
            uint32_t r = fpToInt(from->kind() == TypeKind::Float
                                     ? static_cast<double>(v.f)
                                     : v.d);
            if (to->kind() == TypeKind::Char)
                r = normalizeChar(r);
            return Value::ofInt(r);
        }
        if (to->kind() == TypeKind::Char &&
            from->kind() != TypeKind::Char)
            return Value::ofInt(normalizeChar(v.i));
        return v;
    }

    bool
    truthy(const Value &v, const Type *t)
    {
        if (t->kind() == TypeKind::Float)
            return v.f != 0.0f;
        if (t->kind() == TypeKind::Double)
            return v.d != 0.0;
        return v.i != 0;
    }

    // ----- lvalues --------------------------------------------------------

    bool
    localInMemory(int localId) const
    {
        return frame_->inMem[static_cast<size_t>(localId)] != 0;
    }

    Place
    place(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::Ident: {
            if (e.binding == Expr::Binding::Local) {
                Place p;
                p.inMemory = localInMemory(e.localId);
                if (p.inMemory)
                    p.addr = frame_->addrs[
                        static_cast<size_t>(e.localId)];
                else
                    p.localId = e.localId;
                return p;
            }
            Place p;
            p.inMemory = true;
            p.addr = globalAddr_.at(e.strValue);
            return p;
          }
          case ExprKind::StringLit: {
            Place p;
            p.inMemory = true;
            p.addr = stringAddr_.at(static_cast<size_t>(e.intValue));
            return p;
          }
          case ExprKind::Unary: {
            panicIf(e.unOp != UnOp::Deref,
                    "oracle: place of non-lvalue unary");
            Place p;
            p.inMemory = true;
            p.addr = eval(*e.a).i;
            return p;
          }
          case ExprKind::Index: {
            // Same evaluation order as irgen: base, then index; the
            // stride is the size of the indexed element itself.
            const uint32_t base = eval(*e.a).i;
            const uint32_t idx = eval(*e.b).i;
            const uint32_t esz =
                static_cast<uint32_t>(e.type->size());
            Place p;
            p.inMemory = true;
            p.addr = base + idx * esz;
            return p;
          }
          case ExprKind::Member: {
            const StructField *f = nullptr;
            uint32_t base;
            if (e.arrow) {
                f = e.a->type->pointee()->record()->findField(
                    e.strValue);
                base = eval(*e.a).i;
            } else {
                f = e.a->type->record()->findField(e.strValue);
                base = addressOf(*e.a);
            }
            panicIf(!f, "oracle: field vanished after sema");
            Place p;
            p.inMemory = true;
            p.addr = base + static_cast<uint32_t>(f->offset);
            return p;
          }
          default:
            panic("oracle: place of non-lvalue expression");
        }
    }

    uint32_t
    addressOf(const Expr &e)
    {
        const Place p = place(e);
        panicIf(!p.inMemory, "oracle: address of register-bound local");
        return p.addr;
    }

    Value
    readPlace(const Place &p, const Type *t)
    {
        if (!p.inMemory)
            return frame_->regs[static_cast<size_t>(p.localId)];
        return loadValue(p.addr, t);
    }

    void
    writePlace(const Place &p, const Type *t, const Value &v)
    {
        if (!p.inMemory)
            frame_->regs[static_cast<size_t>(p.localId)] = v;
        else
            storeValue(p.addr, t, v);
    }

    // ----- expression evaluation ------------------------------------------

    Value
    eval(const Expr &e)
    {
        tick();
        switch (e.kind) {
          case ExprKind::IntLit:
          case ExprKind::SizeofType:
            if (e.type && e.type->kind() == TypeKind::Float)
                return Value::ofFloat(
                    static_cast<float>(e.intValue));
            if (e.type && e.type->kind() == TypeKind::Double)
                return Value::ofDouble(
                    static_cast<double>(e.intValue));
            return Value::ofInt(static_cast<uint32_t>(e.intValue));

          case ExprKind::FloatLit:
            if (e.type->kind() == TypeKind::Float)
                return Value::ofFloat(
                    static_cast<float>(e.floatValue));
            return Value::ofDouble(e.floatValue);

          case ExprKind::StringLit:
            return Value::ofInt(
                stringAddr_.at(static_cast<size_t>(e.intValue)));

          case ExprKind::Ident: {
            if (e.type->isArray() || e.type->isStruct())
                return Value::ofInt(addressOf(e));
            const Place p = place(e);
            return readPlace(p, e.type);
          }

          case ExprKind::Unary:
            return evalUnary(e);
          case ExprKind::Binary:
            return evalBinary(e);
          case ExprKind::Assign:
            return evalAssign(e);

          case ExprKind::Cond:
            return truthy(eval(*e.a), e.a->type) ? eval(*e.b)
                                                 : eval(*e.c);

          case ExprKind::Call:
            return evalCall(e);

          case ExprKind::Index:
          case ExprKind::Member: {
            if (e.type->isArray() || e.type->isStruct())
                return Value::ofInt(addressOf(e));
            const Place p = place(e);
            return readPlace(p, e.type);
          }

          case ExprKind::Cast: {
            if (e.castType->isVoid()) {
                eval(*e.a);
                return Value{};
            }
            return castValue(e.castType, e.a->type, eval(*e.a));
          }

          case ExprKind::IncDec:
            return evalIncDec(e);
        }
        panic("oracle: unhandled expr kind");
    }

    Value
    evalUnary(const Expr &e)
    {
        switch (e.unOp) {
          case UnOp::AddrOf:
            return Value::ofInt(addressOf(*e.a));
          case UnOp::Deref: {
            if (e.type->isArray() || e.type->isStruct())
                return Value::ofInt(eval(*e.a).i);
            const uint32_t addr = eval(*e.a).i;
            return loadValue(addr, e.type);
          }
          case UnOp::Neg: {
            const Value v = eval(*e.a);
            if (e.type->kind() == TypeKind::Float)
                return Value::ofFloat(-v.f);
            if (e.type->kind() == TypeKind::Double)
                return Value::ofDouble(-v.d);
            return Value::ofInt(0u - v.i);
          }
          case UnOp::BitNot:
            return Value::ofInt(~eval(*e.a).i);
          case UnOp::LogNot: {
            const Value v = eval(*e.a);
            return Value::ofInt(truthy(v, e.a->type) ? 0 : 1);
          }
          case UnOp::Plus:
            return eval(*e.a);
        }
        panic("oracle: bad unop");
    }

    Value
    evalBinary(const Expr &e)
    {
        const BinOp op = e.binOp;
        if (op == BinOp::LogAnd) {
            if (!truthy(eval(*e.a), e.a->type))
                return Value::ofInt(0);
            return Value::ofInt(
                truthy(eval(*e.b), e.b->type) ? 1 : 0);
        }
        if (op == BinOp::LogOr) {
            if (truthy(eval(*e.a), e.a->type))
                return Value::ofInt(1);
            return Value::ofInt(
                truthy(eval(*e.b), e.b->type) ? 1 : 0);
        }

        const Type *ta = e.a->type;

        if (op == BinOp::Lt || op == BinOp::Gt || op == BinOp::Le ||
            op == BinOp::Ge || op == BinOp::Eq || op == BinOp::Ne) {
            const Value a = eval(*e.a);
            const Value b = eval(*e.b);
            bool r;
            if (ta->kind() == TypeKind::Float)
                r = compareFp(op, a.f, b.f);
            else if (ta->kind() == TypeKind::Double)
                r = compareFp(op, a.d, b.d);
            else
                r = compareInt(op, ta->isUnsigned() || ta->isPointer(),
                               a.i, b.i);
            return Value::ofInt(r ? 1 : 0);
        }

        if (ta->isFp()) {
            const Value a = eval(*e.a);
            const Value b = eval(*e.b);
            if (ta->kind() == TypeKind::Float)
                return Value::ofFloat(fpBinary(op, a.f, b.f));
            return Value::ofDouble(fpBinary(op, a.d, b.d));
        }

        if (ta->isPointer() && (op == BinOp::Add || op == BinOp::Sub)) {
            const uint32_t esz =
                static_cast<uint32_t>(ta->pointee()->size());
            const uint32_t base = eval(*e.a).i;
            if (e.b->type->isPointer()) {
                const uint32_t diff = base - eval(*e.b).i;
                if (esz == 1)
                    return Value::ofInt(diff);
                return Value::ofInt(u32(s32(diff) /
                                        s32(esz)));
            }
            const uint32_t idx = eval(*e.b).i;
            const uint32_t delta = idx * esz;
            return Value::ofInt(op == BinOp::Sub ? base - delta
                                                 : base + delta);
        }

        const Value a = eval(*e.a);
        const Value b = eval(*e.b);
        return Value::ofInt(intBinary(op, ta->isUnsigned(), a.i, b.i));
    }

    Value
    applyCompound(const Expr &e, Value oldVal)
    {
        const Type *lt = e.a->type;
        if (lt->isFp()) {
            const Value rhs = eval(*e.b);
            if (lt->kind() == TypeKind::Float)
                return Value::ofFloat(
                    fpBinary(e.binOp, oldVal.f, rhs.f));
            return Value::ofDouble(fpBinary(e.binOp, oldVal.d, rhs.d));
        }
        if (lt->isPointer()) {
            const uint32_t esz =
                static_cast<uint32_t>(lt->pointee()->size());
            const uint32_t delta = eval(*e.b).i * esz;
            return Value::ofInt(e.binOp == BinOp::Sub
                                    ? oldVal.i - delta
                                    : oldVal.i + delta);
        }
        uint32_t r = intBinary(e.binOp, lt->isUnsigned(), oldVal.i,
                               eval(*e.b).i);
        if (lt->kind() == TypeKind::Char)
            r = normalizeChar(r);
        return Value::ofInt(r);
    }

    Value
    evalAssign(const Expr &e)
    {
        const Expr &lhs = *e.a;

        if (lhs.type->isStruct()) {
            // Memberwise copy; same order as irgen (dst address, then
            // src address).
            const uint32_t dst = addressOf(lhs);
            const uint32_t src = addressOf(*e.b);
            const uint32_t n =
                static_cast<uint32_t>(lhs.type->size());
            checked(dst, 1);
            checked(dst + n - 1, 1);
            checked(src, 1);
            checked(src + n - 1, 1);
            std::memmove(mem_.data() + dst, mem_.data() + src, n);
            return Value{};
        }

        // Evaluation order mirrors irgen: the lvalue's address first,
        // then (for compound) the old value, then the right-hand side.
        const Place p = place(lhs);
        Value value;
        if (e.compound)
            value = applyCompound(e, readPlace(p, lhs.type));
        else
            value = eval(*e.b);
        writePlace(p, lhs.type, value);
        return value;
    }

    Value
    evalIncDec(const Expr &e)
    {
        const Expr &lhs = *e.a;
        const Place p = place(lhs);
        const Value old = readPlace(p, lhs.type);
        Value updated;
        if (lhs.type->kind() == TypeKind::Float)
            updated =
                Value::ofFloat(old.f + (e.isIncrement ? 1.0f : -1.0f));
        else if (lhs.type->kind() == TypeKind::Double)
            updated =
                Value::ofDouble(old.d + (e.isIncrement ? 1.0 : -1.0));
        else {
            uint32_t delta = 1;
            if (lhs.type->isPointer())
                delta = static_cast<uint32_t>(
                    lhs.type->pointee()->size());
            updated = Value::ofInt(e.isIncrement ? old.i + delta
                                                 : old.i - delta);
            if (lhs.type->kind() == TypeKind::Char)
                updated.i = normalizeChar(updated.i);
        }
        writePlace(p, lhs.type, updated);
        return e.isPrefix ? updated : old;
    }

    // ----- calls and builtins ---------------------------------------------

    std::string
    readGuestString(uint32_t addr)
    {
        std::string s;
        for (uint32_t a = addr;; ++a) {
            const char c = static_cast<char>(*checked(a, 1));
            if (c == '\0')
                break;
            s.push_back(c);
        }
        return s;
    }

    Value
    doBuiltin(int trapCode, const std::vector<Value> &args)
    {
        char buf[64];
        switch (trapCode) {
          case 1:  // print_int
            std::snprintf(buf, sizeof(buf), "%d", s32(args.at(0).i));
            output_ += buf;
            return Value{};
          case 2:  // print_char
            output_.push_back(static_cast<char>(args.at(0).i));
            return Value{};
          case 3:  // print_str
            output_ += readGuestString(args.at(0).i);
            return Value{};
          case 4:  // print_f64
            std::snprintf(buf, sizeof(buf), "%.4f", args.at(0).d);
            output_ += buf;
            return Value{};
          case 5:  // halt
            throw HaltSignal{s32(args.at(0).i)};
          case 6: {  // alloc: bump allocator, mirrors Machine::doTrap
            const uint32_t bytes = args.at(0).i;
            const uint32_t base = heapPtr_;
            const uint64_t next = roundUp(
                static_cast<uint64_t>(heapPtr_) + bytes, 8);
            if (bytes > lim_.memBytes || next > stackPtr_)
                throw TrapSignal{"heap/stack collision"};
            heapPtr_ = static_cast<uint32_t>(next);
            return Value::ofInt(base);
          }
          case 7:  // print_uint
            std::snprintf(buf, sizeof(buf), "%u", args.at(0).i);
            output_ += buf;
            return Value{};
          default:
            throw TrapSignal{"unknown builtin trap code " +
                             std::to_string(trapCode)};
        }
    }

    Value
    evalCall(const Expr &e)
    {
        const FuncSig &sig = prog_.signatures.at(e.strValue);
        std::vector<Value> args;
        args.reserve(e.args.size());
        for (const ExprPtr &arg : e.args)
            args.push_back(eval(*arg));
        if (sig.isBuiltin)
            return doBuiltin(sig.trapCode, args);
        const FuncDecl *fn = findFunc(e.strValue);
        if (!fn)
            throw TrapSignal{"call to undefined function " +
                             e.strValue};
        return call(*fn, std::move(args));
    }

    Value
    call(const FuncDecl &fn, std::vector<Value> args)
    {
        if (++depth_ > lim_.maxCallDepth) {
            --depth_;
            throw LimitSignal{"call depth limit exceeded"};
        }
        const uint32_t savedSp = stackPtr_;
        Frame frame;
        frame.fn = &fn;
        frame.regs.resize(fn.locals.size());
        frame.addrs.resize(fn.locals.size(), 0);
        frame.inMem.resize(fn.locals.size(), 0);
        for (size_t i = 0; i < fn.locals.size(); ++i) {
            const FuncDecl::LocalVar &var = fn.locals[i];
            const bool inMemory = var.addressTaken ||
                                  var.type->isArray() ||
                                  var.type->isStruct();
            if (!inMemory)
                continue;
            frame.inMem[i] = 1;
            const uint32_t size =
                static_cast<uint32_t>(var.type->size());
            const uint32_t align = static_cast<uint32_t>(
                std::max(var.type->align(), 4));
            uint32_t sp = stackPtr_;
            if (sp < size + align || sp - size < heapPtr_ + 4096) {
                stackPtr_ = savedSp;
                --depth_;
                throw LimitSignal{"stack exhausted"};
            }
            sp -= size;
            sp &= ~(align - 1);
            stackPtr_ = sp;
            frame.addrs[i] = sp;
            // Fresh stack memory reads as zero on the machines too
            // (reads of stale recycled frames are unspecified either
            // way; the generator never produces them).
            std::memset(mem_.data() + sp, 0, size);
        }
        for (size_t i = 0; i < args.size() && i < fn.locals.size();
             ++i) {
            if (frame.inMem[i])
                storeValue(frame.addrs[i], fn.locals[i].type, args[i]);
            else
                frame.regs[i] = args[i];
        }

        Frame *savedFrame = frame_;
        frame_ = &frame;
        Value ret;  // fall-off-the-end returns zero, like irgen
        try {
            const Flow flow = exec(*fn.body, &ret);
            panicIf(flow == Flow::Break || flow == Flow::Continue,
                    "oracle: break/continue escaped a function");
        } catch (...) {
            frame_ = savedFrame;
            stackPtr_ = savedSp;
            --depth_;
            throw;
        }
        frame_ = savedFrame;
        stackPtr_ = savedSp;
        --depth_;
        return ret;
    }

    // ----- statements -----------------------------------------------------

    Flow
    exec(const Stmt &s, Value *ret)
    {
        tick();
        switch (s.kind) {
          case StmtKind::Block:
            for (const StmtPtr &sub : s.body) {
                const Flow f = exec(*sub, ret);
                if (f != Flow::Normal)
                    return f;
            }
            return Flow::Normal;

          case StmtKind::If:
            if (truthy(eval(*s.cond), s.cond->type))
                return exec(*s.thenStmt, ret);
            if (s.elseStmt)
                return exec(*s.elseStmt, ret);
            return Flow::Normal;

          case StmtKind::While:
            while (truthy(eval(*s.cond), s.cond->type)) {
                const Flow f = exec(*s.loopBody, ret);
                if (f == Flow::Break)
                    break;
                if (f == Flow::Return)
                    return f;
                tick();
            }
            return Flow::Normal;

          case StmtKind::DoWhile:
            do {
                const Flow f = exec(*s.loopBody, ret);
                if (f == Flow::Break)
                    break;
                if (f == Flow::Return)
                    return f;
                tick();
            } while (truthy(eval(*s.cond), s.cond->type));
            return Flow::Normal;

          case StmtKind::For: {
            if (s.forInit) {
                const Flow f = exec(*s.forInit, ret);
                if (f != Flow::Normal)
                    return f;
            }
            while (!s.cond ||
                   truthy(eval(*s.cond), s.cond->type)) {
                const Flow f = exec(*s.loopBody, ret);
                if (f == Flow::Return)
                    return f;
                if (f == Flow::Break)
                    break;
                if (s.forStep)
                    eval(*s.forStep);
                tick();
            }
            return Flow::Normal;
          }

          case StmtKind::Return:
            if (s.expr)
                *ret = eval(*s.expr);
            return Flow::Return;

          case StmtKind::Break:
            return Flow::Break;
          case StmtKind::Continue:
            return Flow::Continue;

          case StmtKind::ExprStmt:
            eval(*s.expr);
            return Flow::Normal;

          case StmtKind::Decl:
            for (const LocalDecl &d : s.decls)
                execDecl(d);
            return Flow::Normal;

          case StmtKind::Empty:
            return Flow::Normal;
        }
        panic("oracle: unhandled stmt kind");
    }

    void
    execDecl(const LocalDecl &d)
    {
        const size_t id = static_cast<size_t>(d.localId);
        if (d.init) {
            const Value v = eval(*d.init);
            if (d.type->isStruct()) {
                // The initializer is a struct rvalue (an address).
                const uint32_t n =
                    static_cast<uint32_t>(d.type->size());
                checked(v.i, 1);
                checked(v.i + n - 1, 1);
                std::memmove(mem_.data() + frame_->addrs[id],
                             mem_.data() + v.i, n);
            } else if (frame_->inMem[id]) {
                storeValue(frame_->addrs[id], d.type, v);
            } else {
                frame_->regs[id] = v;
            }
        }
        if (!d.initList.empty()) {
            const Type *elem =
                d.type->isArray() ? d.type->pointee() : d.type;
            uint32_t off = 0;
            for (const ExprPtr &init : d.initList) {
                const Value v = eval(*init);
                storeValue(frame_->addrs[id] + off, elem, v);
                off += static_cast<uint32_t>(elem->size());
            }
        }
    }
};

} // namespace

RunResult
interpret(const Program &prog, const Limits &limits)
{
    Interp interp(prog, limits);
    return interp.run();
}

RunResult
interpretSource(std::string_view source, const Limits &limits)
{
    Program prog = parseProgram(source);
    // Mirror mc::compile: global-initializer strings are pooled before
    // sema so .Lstr indexes line up with the compiled image.
    for (GlobalDecl &g : prog.globals) {
        auto pool = [&](Expr &e) {
            if (e.kind == ExprKind::StringLit) {
                prog.strings.push_back(e.strValue);
                e.intValue =
                    static_cast<int64_t>(prog.strings.size()) - 1;
            }
        };
        if (g.init)
            pool(*g.init);
        for (ExprPtr &e : g.initList)
            pool(*e);
    }
    analyze(prog);
    return interpret(prog, limits);
}

} // namespace d16sim::oracle
