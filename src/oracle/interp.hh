/**
 * @file
 * MiniC reference interpreter: an independent executable definition of
 * MiniC semantics for differential testing.
 *
 * The interpreter evaluates the type-checked AST directly (reusing the
 * src/mc lexer, parser, and sema — and nothing after them), so it
 * shares no code with the IR generator, optimizer, legalizer, register
 * allocator, code generator, assembler, or simulator whose composition
 * it is the oracle for.  Its semantics are pinned (DESIGN.md §10):
 *
 *   - all integer arithmetic wraps modulo 2^32
 *   - shift counts are masked to the low 5 bits
 *   - x/0, x%0, INT32_MIN/-1 and INT32_MIN%-1 trap
 *   - signed division rounds toward zero; rem takes the dividend's sign
 *   - char is a signed 8-bit type held sign-extended in 32 bits
 *   - integer -> FP conversion treats the source as signed int32
 *     (the machines only have signed converts)
 *   - FP -> integer conversion truncates toward zero and traps when
 *     the truncated value does not fit in int32 (or the input is NaN)
 *   - FP arithmetic is host IEEE-754 (float ops in float precision)
 *   - any out-of-bounds, misaligned, or null memory access traps
 *
 * A program whose oracle run traps is discarded by the differential
 * driver (CSmith-style): its behavior is outside the pinned semantics
 * and the machines are free to do anything, so only cleanly exiting
 * programs are compared.
 */

#ifndef D16SIM_ORACLE_INTERP_HH
#define D16SIM_ORACLE_INTERP_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "mc/ast.hh"

namespace d16sim::oracle
{

/** Why an interpretation finished. */
enum class Outcome : uint8_t
{
    Exit,   //!< main returned; output and exitStatus are meaningful
    Trap,   //!< pinned-semantics violation (divide by zero, OOB, ...)
    Limit,  //!< step or call-depth budget exhausted
};

struct RunResult
{
    Outcome outcome = Outcome::Exit;
    std::string output;    //!< everything the print_* builtins emitted
    int exitStatus = 0;    //!< main's return value
    std::string reason;    //!< Trap/Limit: what happened
    uint64_t steps = 0;    //!< expression evaluations performed
};

struct Limits
{
    uint64_t maxSteps = 200'000'000;
    int maxCallDepth = 1500;
    uint32_t memBytes = 4u << 20;
};

/** Interpret an analyzed program (sema must already have run). */
RunResult interpret(const mc::Program &prog, const Limits &limits = {});

/**
 * Front half of the compiler (parse + string pooling + sema), then
 * interpret.  Throws support::FatalError on malformed source with the
 * same diagnostics mc::compile would produce.
 */
RunResult interpretSource(std::string_view source,
                          const Limits &limits = {});

} // namespace d16sim::oracle

#endif // D16SIM_ORACLE_INTERP_HH
