/**
 * @file
 * IR verifier — structural consistency checks over mc IR functions.
 *
 * Run after IR generation and after every optimization / lowering pass
 * (the `--verify-each` hook in CompileOptions), so a pass that corrupts
 * the CFG or a def-use chain is caught at the pass boundary instead of
 * silently skewing the paper's measurements. Three groups of checks:
 *
 *  - CFG well-formedness: block ids equal their indices, every block
 *    has exactly one terminator and it is the last instruction (no
 *    fallthrough off the end), every branch target names an existing
 *    block, block 0 is the entry.
 *  - Type/class consistency per mc/type.hh and the RegClass rules of
 *    mc/ir.hh: integer ops read/write Int vregs, FP arithmetic reads/
 *    writes Fp vregs, conversions and GPR<->FPR moves cross classes in
 *    the documented direction, vreg ids index vregClass and agree with
 *    the recorded class, frame slots exist, load/store sizes are legal,
 *    and Ret carries a value exactly when the function returns one.
 *  - Use-before-def: a forward dataflow over virtual registers; a use
 *    with no reaching definition on ANY path from entry is an error
 *    (function parameters count as defined on entry). This is a
 *    may-analysis: it never flags a legitimately conditionally-assigned
 *    variable, but catches a pass that deletes or reorders a def past
 *    its use.
 *
 * When a MachineEnv is supplied (post-legalization IR), the verifier
 * additionally enforces machine shape: immediates fit the target's
 * encodable ranges, compare conditions exist on the target, ops with no
 * hardware (multiply/divide, direct FP loads/stores, int<->fp value
 * conversions) are fully lowered, and BrCmp carries a compare temp
 * exactly on DLXe (D16 writes r0 implicitly).
 */

#ifndef D16SIM_VERIFY_IR_VERIFY_HH
#define D16SIM_VERIFY_IR_VERIFY_HH

#include "mc/ir.hh"
#include "mc/machine_env.hh"
#include "verify/diag.hh"

namespace d16sim::verify
{

struct IrVerifyOptions
{
    /** When set, also check machine-shaped invariants (legal
     *  immediates, available conditions, no BrCmp on D16). */
    const mc::MachineEnv *env = nullptr;

    /** Label recorded in diagnostics, e.g. the pass that just ran. */
    std::string stage;
};

/** Verify one function; append findings to `diags`. Returns true when
 *  no Error-severity diagnostic was produced. */
bool verifyIr(const mc::IrFunction &fn, DiagEngine &diags,
              const IrVerifyOptions &opts = {});

/** Verify and throw PanicError listing the findings on any error
 *  (the compiler is at fault, not the user program). */
void verifyIrOrThrow(const mc::IrFunction &fn,
                     const IrVerifyOptions &opts = {});

} // namespace d16sim::verify

#endif // D16SIM_VERIFY_IR_VERIFY_HH
