#include "verify/verify.hh"

namespace d16sim::verify
{

void
installIrVerifier(mc::CompileOptions &opts)
{
    opts.verifyHook = [](const mc::IrFunction &fn, const char *stage,
                         const mc::MachineEnv *env) {
        IrVerifyOptions vo;
        vo.env = env;
        vo.stage = stage;
        verifyIrOrThrow(fn, vo);
    };
}

} // namespace d16sim::verify
