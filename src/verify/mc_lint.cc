#include "verify/mc_lint.hh"

#include <algorithm>
#include <optional>
#include <sstream>
#include <vector>

#include "isa/codec.hh"
#include "isa/disasm.hh"
#include "isa/reconstruct.hh"
#include "support/error.hh"
#include "support/strings.hh"

namespace d16sim::verify
{

using assem::Image;
using assem::InsnSite;
using isa::DecodedInst;
using isa::Op;
using isa::OpClass;
using isa::TargetInfo;

namespace
{

/** Does the decoded instruction read GPR `reg`? Only GPR reads matter
 *  here: loads write GPRs, so only a GPR read can hit the load-use
 *  interlock. */
bool
readsGpr(const DecodedInst &d, int reg)
{
    switch (opClass(d.op)) {
      case OpClass::IntAlu:
        if (d.op == Op::Neg || d.op == Op::Inv || d.op == Op::Mv)
            return d.rs1 == reg;
        return d.rs1 == reg || d.rs2 == reg;
      case OpClass::IntAluImm:
        if (d.op == Op::MvI || d.op == Op::MvHI)
            return false;
        return d.rs1 == reg;
      case OpClass::Load:
        return d.rs1 == reg;
      case OpClass::Store:
        return d.rs1 == reg || d.rs2 == reg;
      case OpClass::LoadConst:
        return false;
      case OpClass::Branch:
        return (d.op == Op::Bz || d.op == Op::Bnz) && d.rs1 == reg;
      case OpClass::Jump:
        if (d.op == Op::J || d.op == Op::Jl)
            return false;
        if (d.op == Op::Jrz || d.op == Op::Jrnz)
            return d.rs1 == reg || d.rs2 == reg;
        return d.rs1 == reg;
      case OpClass::FpMove:
        // MifL/MifH move a GPR into the FPU; MfiL/MfiH and FMv do not
        // read GPRs.
        return (d.op == Op::MifL || d.op == Op::MifH) && d.rs1 == reg;
      case OpClass::FpAlu:
      case OpClass::FpConvert:
      case OpClass::Misc:
        return false;
    }
    return false;
}

struct Linter
{
    const Image &img;
    DiagEngine &diags;
    const LintOptions &opts;
    const TargetInfo &t;
    bool ok = true;

    /** (addr, name) for every text symbol, ascending — used to blame
     *  findings on the enclosing function. */
    std::vector<std::pair<uint32_t, std::string>> textSyms;

    /** Instruction addresses, ascending (mirrors img.insnSites). */
    std::vector<uint32_t> siteAddrs;

    explicit Linter(const Image &img, DiagEngine &diags,
                    const LintOptions &opts)
        : img(img), diags(diags), opts(opts), t(*img.target)
    {
        textSyms = img.textSymbols();
        siteAddrs.reserve(img.insnSites.size());
        for (const InsnSite &s : img.insnSites)
            siteAddrs.push_back(s.addr);
    }

    std::string
    enclosingSymbol(uint32_t addr) const
    {
        auto it = std::upper_bound(
            textSyms.begin(), textSyms.end(), addr,
            [](uint32_t a, const auto &s) { return a < s.first; });
        return it == textSyms.begin() ? std::string() : (it - 1)->second;
    }

    void
    emit(Severity sev, std::string code, const InsnSite &site,
         std::string msg)
    {
        Diag d;
        d.severity = sev;
        d.code = std::move(code);
        d.message = std::move(msg);
        d.addr = site.addr;
        d.hasAddr = true;
        d.symbol = enclosingSymbol(site.addr);
        d.line = site.line;
        diags.report(std::move(d));
        if (sev != Severity::Note)
            ok = false;
    }

    uint32_t
    wordAt(uint32_t addr) const
    {
        const uint32_t off = addr - img.textBase;
        uint32_t w = 0;
        for (int b = 0; b < t.insnBytes(); ++b)
            w |= static_cast<uint32_t>(img.bytes[off + b]) << (8 * b);
        return w;
    }

    bool
    inText(uint32_t addr) const
    {
        return addr >= img.textBase && addr < img.textBase + img.textSize;
    }

    void run();
    void checkRoundTrip(const InsnSite &site, uint32_t word);
    void checkTarget(const InsnSite &site, const DecodedInst &d);
};

void
Linter::checkRoundTrip(const InsnSite &site, uint32_t word)
{
    const DecodedInst d = isa::decode(t, word);
    const uint32_t back = isa::encode(t, isa::reconstruct(t, d));
    if (back != word) {
        std::ostringstream os;
        os << "word " << hexString(word, t.insnBytes() * 2)
           << " re-encodes as " << hexString(back, t.insnBytes() * 2)
           << " (" << isa::opName(d.op) << ")";
        emit(Severity::Error, "mc-roundtrip-mismatch", site, os.str());
    }
}

void
Linter::checkTarget(const InsnSite &site, const DecodedInst &d)
{
    const OpClass cls = opClass(d.op);
    const bool pcRelJump = d.op == Op::J || d.op == Op::Jl;
    if (cls == OpClass::LoadConst) {
        const uint32_t target =
            static_cast<uint32_t>((site.addr & ~3u) + d.imm);
        if (!inText(target) || target % 4 != 0) {
            std::ostringstream os;
            os << isa::opName(d.op) << " pool reference "
               << hexString(target) << " is outside the text section";
            emit(Severity::Error, "mc-pool-target", site, os.str());
        }
        return;
    }
    if (cls != OpClass::Branch && !pcRelJump)
        return;
    const uint32_t target = static_cast<uint32_t>(site.addr + d.imm);
    const bool aligned = target % t.insnBytes() == 0;
    const bool isSite = std::binary_search(siteAddrs.begin(),
                                           siteAddrs.end(), target);
    if (!inText(target) || !aligned || !isSite) {
        std::ostringstream os;
        os << isa::opName(d.op) << " targets " << hexString(target)
           << ", which is not an instruction in the text section";
        emit(Severity::Error, "mc-branch-target", site, os.str());
    }
}

void
Linter::run()
{
    const auto &sites = img.insnSites;
    std::vector<std::optional<DecodedInst>> dec(sites.size());

    for (size_t i = 0; i < sites.size(); ++i) {
        const uint32_t word = wordAt(sites[i].addr);
        try {
            dec[i] = isa::decode(t, word);
        } catch (const FatalError &e) {
            std::ostringstream os;
            os << "word " << hexString(word, t.insnBytes() * 2)
               << " does not decode: " << e.what();
            emit(Severity::Error, "mc-reserved-encoding", sites[i],
                 os.str());
            continue;
        }
        checkRoundTrip(sites[i], word);
        checkTarget(sites[i], *dec[i]);
    }

    // Delay-slot discipline: each branch/jump needs a contiguous
    // following instruction that is not itself control flow.
    const uint32_t step = static_cast<uint32_t>(t.insnBytes());
    for (size_t i = 0; i < sites.size(); ++i) {
        if (!dec[i] || !isControlFlow(dec[i]->op))
            continue;
        const bool haveSlot = i + 1 < sites.size() &&
                              sites[i + 1].addr == sites[i].addr + step;
        if (!haveSlot) {
            emit(Severity::Error, "mc-missing-delay-slot", sites[i],
                 std::string(isa::opName(dec[i]->op)) +
                     " has no instruction in its delay slot "
                     "(falls into data or off the end of text)");
            continue;
        }
        if (dec[i + 1] && isControlFlow(dec[i + 1]->op)) {
            emit(Severity::Error, "mc-branch-in-delay-slot", sites[i + 1],
                 std::string(isa::opName(dec[i + 1]->op)) +
                     " sits in the delay slot of the " +
                     std::string(isa::opName(dec[i]->op)) + " at " +
                     hexString(sites[i].addr));
        }
    }

    // Load-use stalls: legal (the hardware interlocks) but each costs a
    // cycle, so surface them only as opt-in perf notes.
    if (opts.perfNotes) {
        for (size_t i = 0; i + 1 < sites.size(); ++i) {
            if (!dec[i] || !dec[i + 1])
                continue;
            const OpClass cls = opClass(dec[i]->op);
            if (cls != OpClass::Load && cls != OpClass::LoadConst)
                continue;
            if (sites[i + 1].addr != sites[i].addr + step)
                continue;
            const int rd = cls == OpClass::LoadConst ? 0 : dec[i]->rd;
            if (t.r0IsZero() && rd == 0)
                continue;  // result discarded; no dependence
            if (readsGpr(*dec[i + 1], rd)) {
                std::ostringstream os;
                os << isa::opName(dec[i + 1]->op) << " uses "
                   << t.regName(rd) << " right after the "
                   << isa::opName(dec[i]->op) << " that loads it "
                   "(one interlock stall cycle)";
                emit(Severity::Note, "mc-load-use-interlock", sites[i + 1],
                     os.str());
            }
        }
    }

    // Entry point.
    if (!sites.empty()) {
        const bool entryOk = std::binary_search(siteAddrs.begin(),
                                                siteAddrs.end(), img.entry);
        if (!entryOk) {
            InsnSite at{img.entry, 0};
            emit(Severity::Error, "mc-bad-entry", at,
                 "program entry " + hexString(img.entry) +
                     " is not an instruction in the text section");
        }
    }
}

} // namespace

bool
lintImage(const Image &img, DiagEngine &diags, const LintOptions &opts)
{
    panicIf(img.target == nullptr, "lintImage: image has no target");
    Linter l{img, diags, opts};
    l.run();
    return l.ok;
}

void
lintImageOrThrow(const Image &img, const std::string &unit)
{
    DiagEngine diags;
    diags.setUnit(unit.empty() ? std::string(img.target->name()) : unit);
    if (lintImage(img, diags))
        return;
    std::ostringstream os;
    os << "machine-code lint failed";
    if (!unit.empty())
        os << " for " << unit;
    os << ":\n";
    diags.renderText(os);
    panic(os.str());
}

} // namespace d16sim::verify
