#include "verify/ir_verify.hh"

#include <sstream>

#include "support/error.hh"

namespace d16sim::verify
{

using mc::Address;
using mc::AddrKind;
using mc::BasicBlock;
using mc::IrFunction;
using mc::IrInst;
using mc::IrOp;
using mc::MachineEnv;
using mc::Operand;
using mc::RegClass;
using mc::VReg;

namespace
{

/** Register class a Type lives in (mirrors irgen's classOf). */
RegClass
classOfType(const mc::Type *t)
{
    return t != nullptr && t->isFp() ? RegClass::Fp : RegClass::Int;
}

/** Expected operand classes of one instruction; Unused = no operand. */
enum class Cls : uint8_t { Unused, Int, Fp, Any };

struct OperandRules
{
    Cls dst = Cls::Unused;
    Cls a = Cls::Unused;
    Cls b = Cls::Unused;   //!< class when b is a register operand
    bool bMayBeImm = true;
};

OperandRules
rulesFor(IrOp op)
{
    switch (op) {
      case IrOp::Add: case IrOp::Sub: case IrOp::Mul:
      case IrOp::DivS: case IrOp::DivU: case IrOp::RemS: case IrOp::RemU:
      case IrOp::And: case IrOp::Or: case IrOp::Xor:
      case IrOp::Shl: case IrOp::ShrL: case IrOp::ShrA:
      case IrOp::Cmp:
        return {Cls::Int, Cls::Int, Cls::Int, true};
      case IrOp::Neg: case IrOp::Not:
        return {Cls::Int, Cls::Int, Cls::Unused, false};
      case IrOp::Mov:
        return {Cls::Any, Cls::Any, Cls::Unused, false};
      case IrOp::MovImm:
        return {Cls::Int, Cls::Unused, Cls::Unused, false};
      case IrOp::FMovImm:
        return {Cls::Fp, Cls::Unused, Cls::Unused, false};
      case IrOp::FAdd: case IrOp::FSub: case IrOp::FMul: case IrOp::FDiv:
        return {Cls::Fp, Cls::Fp, Cls::Fp, false};
      case IrOp::FNeg:
        return {Cls::Fp, Cls::Fp, Cls::Unused, false};
      case IrOp::FCmp:
        return {Cls::Int, Cls::Fp, Cls::Fp, false};
      case IrOp::CvtIF:
        return {Cls::Fp, Cls::Int, Cls::Unused, false};
      case IrOp::CvtFI:
        return {Cls::Int, Cls::Fp, Cls::Unused, false};
      case IrOp::CvtFF:
        return {Cls::Fp, Cls::Fp, Cls::Unused, false};
      case IrOp::Load:
        return {Cls::Any, Cls::Unused, Cls::Unused, false};
      case IrOp::Store:
        return {Cls::Unused, Cls::Any, Cls::Unused, false};
      case IrOp::AddrOf:
        return {Cls::Int, Cls::Unused, Cls::Unused, false};
      case IrOp::Call:
        return {Cls::Any, Cls::Unused, Cls::Unused, false};
      case IrOp::Ret:
        return {Cls::Unused, Cls::Any, Cls::Unused, false};
      case IrOp::Br:
        return {Cls::Unused, Cls::Int, Cls::Unused, false};
      case IrOp::Jmp:
        return {Cls::Unused, Cls::Unused, Cls::Unused, false};
      case IrOp::MifL: case IrOp::MifH:
        return {Cls::Fp, Cls::Int, Cls::Unused, false};
      case IrOp::MfiL: case IrOp::MfiH:
        return {Cls::Int, Cls::Fp, Cls::Unused, false};
      case IrOp::CvtRawIF: case IrOp::CvtRawFI:
        return {Cls::Fp, Cls::Fp, Cls::Unused, false};
      case IrOp::BrCmp:
        return {Cls::Any, Cls::Int, Cls::Int, true};
      case IrOp::BrFCmp:
        return {Cls::Any, Cls::Fp, Cls::Fp, false};
    }
    return {};
}

bool
classOk(Cls want, RegClass have)
{
    switch (want) {
      case Cls::Any: return true;
      case Cls::Int: return have == RegClass::Int;
      case Cls::Fp: return have == RegClass::Fp;
      case Cls::Unused: return false;
    }
    return false;
}

struct Verifier
{
    const IrFunction &fn;
    DiagEngine &diags;
    const IrVerifyOptions &opts;
    bool ok = true;

    void
    emit(std::string code, int block, int inst, std::string msg)
    {
        Diag d;
        d.severity = Severity::Error;
        d.code = std::move(code);
        d.message = std::move(msg);
        if (!opts.stage.empty())
            d.message += " (after " + opts.stage + ")";
        d.symbol = fn.name;
        d.block = block;
        d.inst = inst;
        diags.report(std::move(d));
        ok = false;
    }

    /** True iff the vreg is well-formed (id indexes vregClass and the
     *  carried class agrees with the registry). */
    bool
    checkVReg(VReg r, int b, int i, const char *what)
    {
        if (r.id < 0 || r.id >= fn.numVRegs()) {
            std::ostringstream os;
            os << what << " vreg v" << r.id << " out of range (function has "
               << fn.numVRegs() << " vregs) in " << mc::dumpInst(
                      fn.blocks[b].insts[i]);
            emit("ir-bad-vreg", b, i, os.str());
            return false;
        }
        if (fn.vregClass[r.id] != r.cls) {
            std::ostringstream os;
            os << what << " vreg v" << r.id
               << " carries the wrong register class in "
               << mc::dumpInst(fn.blocks[b].insts[i]);
            emit("ir-class-mismatch", b, i, os.str());
            return false;
        }
        return true;
    }

    void
    checkClass(Cls want, VReg r, int b, int i, const char *what)
    {
        if (!checkVReg(r, b, i, what))
            return;
        if (!classOk(want, r.cls)) {
            std::ostringstream os;
            os << what << " operand v" << r.id << " has class "
               << (r.cls == RegClass::Int ? "Int" : "Fp")
               << " but the op wants "
               << (want == Cls::Int ? "Int" : "Fp") << " in "
               << mc::dumpInst(fn.blocks[b].insts[i]);
            emit("ir-class-mismatch", b, i, os.str());
        }
    }

    void checkCfg();
    void checkInstructions();
    void checkInst(const IrInst &inst, int b, int i);
    void checkMachineShape(const IrInst &inst, int b, int i);
    void checkUseBeforeDef();
    std::vector<bool> reachability() const;
};

void
Verifier::checkCfg()
{
    const int n = static_cast<int>(fn.blocks.size());
    if (n == 0) {
        emit("ir-empty-function", -1, -1,
             "function has no basic blocks");
        return;
    }
    for (int b = 0; b < n; ++b) {
        const BasicBlock &bb = fn.blocks[b];
        if (bb.id != b) {
            std::ostringstream os;
            os << "block at index " << b << " carries id " << bb.id;
            emit("ir-block-id", b, -1, os.str());
        }
        if (bb.insts.empty()) {
            emit("ir-no-terminator", b, -1, "block is empty");
            continue;
        }
        for (size_t i = 0; i < bb.insts.size(); ++i) {
            const bool last = i + 1 == bb.insts.size();
            if (bb.insts[i].isTerminator() != last) {
                if (last) {
                    emit("ir-no-terminator", b, static_cast<int>(i),
                         "block does not end in a terminator "
                         "(fallthrough off the end)");
                } else {
                    emit("ir-terminator-middle", b, static_cast<int>(i),
                         "terminator " + mc::dumpInst(bb.insts[i]) +
                             " is not the last instruction of the block");
                }
            }
        }
        const IrInst &t = bb.insts.back();
        if (!t.isTerminator())
            continue;
        auto checkTarget = [&](int target) {
            if (target < 0 || target >= n) {
                std::ostringstream os;
                os << mc::dumpInst(t) << " targets nonexistent block "
                   << target;
                emit("ir-bad-branch-target", b,
                     static_cast<int>(bb.insts.size()) - 1, os.str());
            }
        };
        switch (t.op) {
          case IrOp::Jmp:
            checkTarget(t.thenBB);
            break;
          case IrOp::Br: case IrOp::BrCmp: case IrOp::BrFCmp:
            checkTarget(t.thenBB);
            checkTarget(t.elseBB);
            break;
          default:
            break;
        }
    }
}

void
Verifier::checkInst(const IrInst &inst, int b, int i)
{
    const OperandRules rules = rulesFor(inst.op);

    if (rules.dst == Cls::Unused) {
        // defOf() already reports no destination for these ops; a set
        // dst field is simply ignored, except BrCmp/BrFCmp handled in
        // checkMachineShape.
    } else if (inst.dst.valid()) {
        checkClass(rules.dst, inst.dst, b, i, "destination");
    } else if (rules.dst != Cls::Any && inst.op != IrOp::Call) {
        emit("ir-missing-dst", b, i,
             mc::dumpInst(inst) + " has no destination register");
    }

    if (rules.a != Cls::Unused) {
        if (inst.a.valid()) {
            checkClass(rules.a, inst.a, b, i, "first");
        } else if (inst.op != IrOp::Ret) {
            emit("ir-missing-operand", b, i,
                 mc::dumpInst(inst) + " is missing its first operand");
        }
    }

    if (rules.b != Cls::Unused) {
        if (inst.b.isReg()) {
            checkClass(rules.b, inst.b.reg, b, i, "second");
        } else if (inst.b.isImm() && !rules.bMayBeImm) {
            emit("ir-imm-operand", b, i,
                 mc::dumpInst(inst) +
                     " takes a register second operand, not an immediate");
        }
    }

    // Memory operands.
    if (inst.op == IrOp::Load || inst.op == IrOp::Store ||
        inst.op == IrOp::AddrOf) {
        const Address &addr = inst.addr;
        if (addr.kind == AddrKind::Reg) {
            if (addr.base.valid())
                checkClass(Cls::Int, addr.base, b, i, "address base");
            else
                emit("ir-missing-operand", b, i,
                     mc::dumpInst(inst) + " has no address base register");
        } else if (addr.kind == AddrKind::Frame) {
            if (addr.frameSlot < 0 ||
                addr.frameSlot >= static_cast<int>(fn.slots.size())) {
                std::ostringstream os;
                os << mc::dumpInst(inst) << " names frame slot "
                   << addr.frameSlot << " but the function has "
                   << fn.slots.size();
                emit("ir-bad-frame-slot", b, i, os.str());
            }
        } else if (addr.sym.empty()) {
            emit("ir-missing-operand", b, i,
                 mc::dumpInst(inst) + " has an empty global symbol");
        }
        if (inst.op != IrOp::AddrOf && inst.size != 1 && inst.size != 2 &&
            inst.size != 4 && inst.size != 8) {
            std::ostringstream os;
            os << mc::dumpInst(inst) << " has illegal access size "
               << inst.size;
            emit("ir-bad-access-size", b, i, os.str());
        }
    }

    // Mov never crosses register classes (MifL/MfiL etc. do that).
    if (inst.op == IrOp::Mov && inst.dst.valid() && inst.a.valid() &&
        inst.dst.cls != inst.a.cls) {
        emit("ir-class-mismatch", b, i,
             mc::dumpInst(inst) + " moves between register classes");
    }

    for (const VReg &arg : inst.args)
        checkVReg(arg, b, i, "call argument");

    // Return-type consistency (mc/type.hh): a value exactly when the
    // function returns one, in the matching register class.
    if (inst.op == IrOp::Ret && fn.retType != nullptr) {
        const bool isVoid = fn.retType->isVoid();
        if (isVoid && inst.a.valid()) {
            emit("ir-ret-type", b, i,
                 "ret carries a value but " + fn.name + " returns " +
                     fn.retType->str());
        } else if (!isVoid && !inst.a.valid()) {
            emit("ir-ret-type", b, i,
                 "ret carries no value but " + fn.name + " returns " +
                     fn.retType->str());
        } else if (!isVoid && inst.a.valid() &&
                   inst.a.cls != classOfType(fn.retType)) {
            emit("ir-ret-type", b, i,
                 "ret value class does not match return type " +
                     fn.retType->str());
        }
    }

    if (opts.env != nullptr)
        checkMachineShape(inst, b, i);
}

void
Verifier::checkMachineShape(const IrInst &inst, int b, int i)
{
    const MachineEnv &env = *opts.env;
    const bool d16 = env.target().kind() == isa::IsaKind::D16;

    auto immErr = [&](int64_t v) {
        std::ostringstream os;
        os << "immediate " << v << " in " << mc::dumpInst(inst)
           << " is not encodable on " << env.target().name();
        emit("ir-imm-unencodable", b, i, os.str());
    };

    switch (inst.op) {
      case IrOp::Mul: case IrOp::DivS: case IrOp::DivU:
      case IrOp::RemS: case IrOp::RemU:
        emit("ir-op-not-lowered", b, i,
             mc::dumpInst(inst) +
                 " survived legalization (no multiply/divide hardware)");
        return;
      case IrOp::CvtIF: case IrOp::CvtFI: case IrOp::FMovImm:
        emit("ir-op-not-lowered", b, i,
             mc::dumpInst(inst) + " survived legalization (must go "
                                  "through the GPR<->FPR half moves)");
        return;
      case IrOp::Load:
        if (inst.dst.valid() && inst.dst.cls == RegClass::Fp) {
            emit("ir-op-not-lowered", b, i,
                 mc::dumpInst(inst) +
                     " loads an FP register directly (no FP memory ops)");
        }
        break;
      case IrOp::Store:
        if (inst.a.valid() && inst.a.cls == RegClass::Fp) {
            emit("ir-op-not-lowered", b, i,
                 mc::dumpInst(inst) +
                     " stores an FP register directly (no FP memory ops)");
        }
        break;
      case IrOp::Add: case IrOp::Sub:
        if (inst.b.isImm()) {
            // Codegen may flip add<->sub to negate the immediate.
            const int64_t v = inst.b.imm;
            if (!env.aluImmFits(isa::Op::AddI, v) &&
                !env.aluImmFits(isa::Op::SubI, v) &&
                !env.aluImmFits(isa::Op::AddI, -v) &&
                !env.aluImmFits(isa::Op::SubI, -v)) {
                immErr(v);
            }
        }
        break;
      case IrOp::And: case IrOp::Or: case IrOp::Xor:
        if (inst.b.isImm()) {
            const isa::Op op = inst.op == IrOp::And ? isa::Op::AndI :
                               inst.op == IrOp::Or ? isa::Op::OrI
                                                   : isa::Op::XorI;
            if (!env.aluImmFits(op, inst.b.imm))
                immErr(inst.b.imm);
        }
        break;
      case IrOp::Shl: case IrOp::ShrL: case IrOp::ShrA:
        // Same rule legalize applies: shift amounts are mod-32 fields.
        if (inst.b.isImm() && (inst.b.imm < 0 || inst.b.imm >= 32))
            immErr(inst.b.imm);
        break;
      case IrOp::Cmp: case IrOp::BrCmp:
        if (inst.b.isImm()) {
            if (!env.hasCmpImmediate() ||
                !env.aluImmFits(isa::Op::CmpI, inst.b.imm)) {
                immErr(inst.b.imm);
            }
        }
        if (!env.hasIntCond(inst.cond)) {
            emit("ir-cond-unavailable", b, i,
                 mc::dumpInst(inst) + " uses a condition " +
                     std::string(isa::condName(inst.cond)) +
                     " the target cannot encode");
        }
        break;
      case IrOp::FCmp: case IrOp::BrFCmp:
        if (inst.cond != isa::Cond::Lt && inst.cond != isa::Cond::Le &&
            inst.cond != isa::Cond::Eq) {
            emit("ir-cond-unavailable", b, i,
                 mc::dumpInst(inst) + " uses an FP condition " +
                     std::string(isa::condName(inst.cond)) +
                     " the FPU cannot test");
        }
        break;
      default:
        break;
    }

    // D16 fused compare-and-branch writes r0 implicitly: no compare
    // temp; DLXe needs one (ir.hh: "dst = DLXe compare temp; invalid
    // on D16").
    if (inst.op == IrOp::BrCmp || inst.op == IrOp::BrFCmp) {
        if (d16 && inst.dst.valid()) {
            emit("ir-class-mismatch", b, i,
                 mc::dumpInst(inst) +
                     " carries a compare temp on D16 (r0 is implicit)");
        } else if (!d16 && !inst.dst.valid()) {
            emit("ir-missing-dst", b, i,
                 mc::dumpInst(inst) + " needs a compare temp on DLXe");
        }
    }
}

void
Verifier::checkInstructions()
{
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
        const BasicBlock &bb = fn.blocks[b];
        for (size_t i = 0; i < bb.insts.size(); ++i)
            checkInst(bb.insts[i], static_cast<int>(b),
                      static_cast<int>(i));
    }
}

std::vector<bool>
Verifier::reachability() const
{
    const int n = static_cast<int>(fn.blocks.size());
    std::vector<bool> reach(n, false);
    if (n == 0)
        return reach;
    std::vector<int> stack = {0};
    reach[0] = true;
    while (!stack.empty()) {
        const int b = stack.back();
        stack.pop_back();
        const BasicBlock &bb = fn.blocks[b];
        if (bb.insts.empty() || !bb.insts.back().isTerminator())
            continue;  // malformed; already diagnosed
        const IrInst &t = bb.insts.back();
        auto push = [&](int s) {
            if (s >= 0 && s < n && !reach[s]) {
                reach[s] = true;
                stack.push_back(s);
            }
        };
        switch (t.op) {
          case IrOp::Jmp:
            push(t.thenBB);
            break;
          case IrOp::Br: case IrOp::BrCmp: case IrOp::BrFCmp:
            push(t.thenBB);
            push(t.elseBB);
            break;
          default:
            break;
        }
    }
    return reach;
}

void
Verifier::checkUseBeforeDef()
{
    const int n = static_cast<int>(fn.blocks.size());
    const int nv = fn.numVRegs();
    if (n == 0 || nv == 0)
        return;
    const std::vector<bool> reach = reachability();

    // Forward may-analysis: defined[b] = set of vregs with at least one
    // reaching definition at block entry. A use outside the set has no
    // def on ANY path from entry — definitely broken, never a false
    // positive on conditionally-assigned variables.
    auto bitGet = [nv](const std::vector<uint64_t> &s, int id) {
        return (s[id / 64] >> (id % 64)) & 1;
    };
    auto bitSet = [](std::vector<uint64_t> &s, int id) {
        s[id / 64] |= uint64_t{1} << (id % 64);
    };
    const size_t words = (nv + 63) / 64;
    std::vector<std::vector<uint64_t>> in(n,
                                          std::vector<uint64_t>(words, 0));
    for (const VReg &p : fn.params) {
        if (p.id >= 0 && p.id < nv)
            bitSet(in[0], p.id);
    }
    // Precolored vregs are pinned to physical registers the calling
    // convention may define outside the IR (argument registers read by
    // the ABI prologue, return registers written by callees), so they
    // count as defined on entry.
    for (int id = 0; id < nv; ++id) {
        if (fn.precolorOf(id) >= 0)
            bitSet(in[0], id);
    }

    // Per-block def summaries (gen sets).
    std::vector<std::vector<uint64_t>> gen(n,
                                           std::vector<uint64_t>(words, 0));
    for (int b = 0; b < n; ++b) {
        for (const IrInst &inst : fn.blocks[b].insts) {
            const VReg d = mc::defOf(inst);
            if (d.valid() && d.id < nv)
                bitSet(gen[b], d.id);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = 0; b < n; ++b) {
            if (!reach[b])
                continue;
            const BasicBlock &bb = fn.blocks[b];
            if (bb.insts.empty() || !bb.insts.back().isTerminator())
                continue;
            std::vector<uint64_t> out = in[b];
            for (size_t w = 0; w < words; ++w)
                out[w] |= gen[b][w];
            for (int s : bb.successors()) {
                if (s < 0 || s >= n)
                    continue;
                for (size_t w = 0; w < words; ++w) {
                    const uint64_t merged = in[s][w] | out[w];
                    if (merged != in[s][w]) {
                        in[s][w] = merged;
                        changed = true;
                    }
                }
            }
        }
    }

    for (int b = 0; b < n; ++b) {
        if (!reach[b])
            continue;
        std::vector<uint64_t> live = in[b];
        for (size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
            const IrInst &inst = fn.blocks[b].insts[i];
            mc::forEachUse(inst, [&](VReg r) {
                if (r.id < 0 || r.id >= nv)
                    return;  // diagnosed by checkVReg
                if (!bitGet(live, r.id)) {
                    std::ostringstream os;
                    os << "v" << r.id << " is used by "
                       << mc::dumpInst(inst)
                       << " but no definition reaches it on any path";
                    emit("ir-use-before-def", b, static_cast<int>(i),
                         os.str());
                    bitSet(live, r.id);  // report each vreg once per block
                }
            });
            const VReg d = mc::defOf(inst);
            if (d.valid() && d.id < nv)
                bitSet(live, d.id);
        }
    }
}

} // namespace

bool
verifyIr(const IrFunction &fn, DiagEngine &diags,
         const IrVerifyOptions &opts)
{
    Verifier v{fn, diags, opts};
    v.checkCfg();
    v.checkInstructions();
    // Dataflow only converges on a structurally sound CFG.
    if (v.ok)
        v.checkUseBeforeDef();
    return v.ok;
}

void
verifyIrOrThrow(const IrFunction &fn, const IrVerifyOptions &opts)
{
    DiagEngine diags;
    if (verifyIr(fn, diags, opts))
        return;
    std::ostringstream os;
    os << "IR verification failed for " << fn.name;
    if (!opts.stage.empty())
        os << " after " << opts.stage;
    os << ":\n";
    diags.renderText(os);
    panic(os.str());
}

} // namespace d16sim::verify
