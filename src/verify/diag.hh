/**
 * @file
 * Diagnostics engine for the toolchain verification layer.
 *
 * Every analyzer (the IR verifier, the machine-code linter) reports
 * through a DiagEngine: a flat list of Diag records with a severity, a
 * stable machine-readable code (e.g. "mc-branch-in-delay-slot"), a
 * human message, and whatever location coordinates the producing layer
 * has — IR block/instruction indices for the verifier, image addresses
 * plus assembler source lines and the nearest preceding symbol for the
 * linter. Output is either human-readable text or line-oriented JSON so
 * CI can diff lint results across revisions (scripts/check.sh).
 */

#ifndef D16SIM_VERIFY_DIAG_HH
#define D16SIM_VERIFY_DIAG_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace d16sim::verify
{

enum class Severity : uint8_t
{
    Note,     //!< informational (perf hints); never fails a run
    Warning,  //!< suspicious but not provably wrong
    Error,    //!< a broken invariant; the artifact is untrustworthy
};

std::string_view severityName(Severity s);

/** One finding. Location fields are optional; unset ones are omitted
 *  from the rendered output. */
struct Diag
{
    Severity severity = Severity::Error;
    std::string code;     //!< stable identifier, e.g. "ir-use-before-def"
    std::string message;

    std::string unit;     //!< compilation unit / workload / function
    std::string symbol;   //!< nearest preceding text symbol (linter)
    uint32_t addr = 0;    //!< image address (linter)
    bool hasAddr = false;
    int line = 0;         //!< assembler source line; 0 = unknown
    int block = -1;       //!< IR basic-block index (verifier)
    int inst = -1;        //!< IR instruction index within the block
};

class DiagEngine
{
  public:
    void report(Diag d);

    // Convenience producers used by the analyzers.
    void
    error(std::string code, std::string message)
    {
        report({Severity::Error, std::move(code), std::move(message),
                {}, {}, 0, false, 0, -1, -1});
    }

    const std::vector<Diag> &diags() const { return diags_; }
    bool empty() const { return diags_.empty(); }

    int count(Severity s) const;
    int errors() const { return count(Severity::Error); }
    int warnings() const { return count(Severity::Warning); }
    int notes() const { return count(Severity::Note); }

    /** Errors + warnings: what `d16lint` (and CI) fail on. */
    int failures() const { return errors() + warnings(); }

    bool has(std::string_view code) const;

    /** Context prefix attached to the `unit` field of every subsequent
     *  report (e.g. "perm/DLXe"). */
    void setUnit(std::string unit) { unit_ = std::move(unit); }
    const std::string &unit() const { return unit_; }

    /** Render all diagnostics, one per line, human-readable. */
    void renderText(std::ostream &os) const;

    /** Render as a JSON array (stable field order, sorted input order). */
    void renderJson(std::ostream &os) const;

    /** Text rendering of one diagnostic (also used in exceptions). */
    static std::string format(const Diag &d);

  private:
    std::vector<Diag> diags_;
    std::string unit_;
};

} // namespace d16sim::verify

#endif // D16SIM_VERIFY_DIAG_HH
