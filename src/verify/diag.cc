#include "verify/diag.hh"

#include <sstream>

#include "support/strings.hh"

namespace d16sim::verify
{

std::string_view
severityName(Severity s)
{
    switch (s) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

void
DiagEngine::report(Diag d)
{
    if (d.unit.empty())
        d.unit = unit_;
    diags_.push_back(std::move(d));
}

int
DiagEngine::count(Severity s) const
{
    int n = 0;
    for (const Diag &d : diags_)
        if (d.severity == s)
            ++n;
    return n;
}

bool
DiagEngine::has(std::string_view code) const
{
    for (const Diag &d : diags_)
        if (d.code == code)
            return true;
    return false;
}

std::string
DiagEngine::format(const Diag &d)
{
    std::ostringstream os;
    os << severityName(d.severity) << "[" << d.code << "]";
    if (!d.unit.empty())
        os << " " << d.unit;
    if (d.hasAddr)
        os << " @" << hexString(d.addr);
    if (!d.symbol.empty())
        os << " (" << d.symbol << ")";
    if (d.block >= 0) {
        os << " bb" << d.block;
        if (d.inst >= 0)
            os << ":" << d.inst;
    }
    if (d.line > 0)
        os << " line " << d.line;
    os << ": " << d.message;
    return os.str();
}

void
DiagEngine::renderText(std::ostream &os) const
{
    for (const Diag &d : diags_)
        os << format(d) << "\n";
}

namespace
{

void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
DiagEngine::renderJson(std::ostream &os) const
{
    os << "[";
    for (size_t i = 0; i < diags_.size(); ++i) {
        const Diag &d = diags_[i];
        os << (i ? ",\n " : "\n ");
        os << "{\"severity\":";
        jsonString(os, std::string(severityName(d.severity)));
        os << ",\"code\":";
        jsonString(os, d.code);
        os << ",\"unit\":";
        jsonString(os, d.unit);
        if (d.hasAddr)
            os << ",\"addr\":" << d.addr;
        if (!d.symbol.empty()) {
            os << ",\"symbol\":";
            jsonString(os, d.symbol);
        }
        if (d.block >= 0) {
            os << ",\"block\":" << d.block;
            if (d.inst >= 0)
                os << ",\"inst\":" << d.inst;
        }
        if (d.line > 0)
            os << ",\"line\":" << d.line;
        os << ",\"message\":";
        jsonString(os, d.message);
        os << "}";
    }
    os << (diags_.empty() ? "]" : "\n]") << "\n";
}

} // namespace d16sim::verify
