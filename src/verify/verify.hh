/**
 * @file
 * Umbrella for the toolchain verification layer.
 *
 * The layer sits above mc and asm: the compiler knows nothing about it
 * and only exposes the VerifyHook seam in CompileOptions. core::build
 * installs the IR verifier through installIrVerifier() (always in debug
 * builds, on request via CompileOptions::verifyEach elsewhere) and runs
 * the machine-code linter over the linked image.
 */

#ifndef D16SIM_VERIFY_VERIFY_HH
#define D16SIM_VERIFY_VERIFY_HH

#include "mc/options.hh"
#include "verify/diag.hh"
#include "verify/ir_verify.hh"
#include "verify/mc_lint.hh"

namespace d16sim::verify
{

/** Point opts.verifyHook at the IR verifier: every compile through
 *  these options then checks the IR at stage boundaries (and, with
 *  opts.verifyEach, after every optimization pass) and throws
 *  PanicError naming the offending stage on a broken invariant. */
void installIrVerifier(mc::CompileOptions &opts);

} // namespace d16sim::verify

#endif // D16SIM_VERIFY_VERIFY_HH
