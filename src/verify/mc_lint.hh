/**
 * @file
 * Machine-code linter — post-link checks over assembled images.
 *
 * Walks every instruction site of a linked Image (the assembler records
 * one per emitted instruction, so in-text constant pools are never
 * misread as code) and checks, for both encodings:
 *
 *  - every word decodes (reserved encodings are rejected by the codecs)
 *    and survives an encode(reconstruct(decode(w))) == w round trip, so
 *    what the simulator executes is exactly what the compiler meant;
 *  - branch, jump, and Ldc displacements land inside the text section,
 *    on an instruction boundary, and (for control flow) on a real
 *    instruction rather than a pool word;
 *  - delay-slot discipline: every branch/jump is followed by a
 *    contiguous instruction, and that instruction is not itself a
 *    branch or jump (the pipeline has exactly one delay slot);
 *  - the program entry point is an instruction inside text.
 *
 * A load feeding its result to the very next instruction is legal (the
 * hardware interlocks and stalls one cycle), so it is reported only as
 * a Note, and only when LintOptions::perfNotes is set.
 */

#ifndef D16SIM_VERIFY_MC_LINT_HH
#define D16SIM_VERIFY_MC_LINT_HH

#include <string>

#include "asm/image.hh"
#include "verify/diag.hh"

namespace d16sim::verify
{

struct LintOptions
{
    /** Also report Note-severity performance findings (load-use
     *  interlock stalls). Off by default: they are not defects. */
    bool perfNotes = false;
};

/** Lint one linked image; append findings to `diags`. Returns true when
 *  no Error- or Warning-severity diagnostic was produced. */
bool lintImage(const assem::Image &img, DiagEngine &diags,
               const LintOptions &opts = {});

/** Lint and throw PanicError listing the findings on any failure. */
void lintImageOrThrow(const assem::Image &img, const std::string &unit = "");

} // namespace d16sim::verify

#endif // D16SIM_VERIFY_MC_LINT_HH
