/**
 * @file
 * MachineEnv — the register convention the code generator and the
 * register allocator agree on (a reconstruction; see isa/target.hh).
 *
 * Dedicated registers (at, ra, gp, sp) are never allocatable. The
 * D16 `at` register doubles as the emission-time scratch for address
 * and constant materialization; DLXe never needs one (16-bit
 * displacements and mvhi/ori pairs build everything in the
 * destination). f0 is reserved on both machines as the FP scratch.
 */

#ifndef D16SIM_MC_MACHINE_ENV_HH
#define D16SIM_MC_MACHINE_ENV_HH

#include <vector>

#include "isa/target.hh"
#include "mc/ir.hh"
#include "mc/options.hh"

namespace d16sim::mc
{

class MachineEnv
{
  public:
    explicit MachineEnv(const CompileOptions &opts);

    const isa::TargetInfo &target() const { return *target_; }
    const CompileOptions &options() const { return opts_; }

    /** Two-address emission (D16 always; DLXe when restricted). */
    bool twoAddress() const { return !opts_.threeAddress; }

    const std::vector<int> &allocatable(RegClass cls) const
    {
        return cls == RegClass::Int ? intAlloc_ : fpAlloc_;
    }

    bool isCalleeSaved(int reg, RegClass cls) const;

    const std::vector<int> &argRegs(RegClass cls) const
    {
        return cls == RegClass::Int ? intArgs_ : fpArgs_;
    }

    int retReg(RegClass) const { return 2; }

    int atReg() const { return target_->atReg(); }
    int raReg() const { return target_->raReg(); }
    int gpReg() const { return target_->gpReg(); }
    int spReg() const { return target_->spReg(); }
    int fpScratch() const { return 0; }  //!< f0

    /** Immediate legality honoring the narrowImmediates ablation. */
    bool aluImmFits(isa::Op op, int64_t v) const;
    bool mviImmFits(int64_t v) const;
    bool memOffsetFits(isa::Op op, int64_t v) const;
    bool hasCmpImmediate() const;
    bool hasIntCond(isa::Cond c) const;

  private:
    const isa::TargetInfo *target_;
    CompileOptions opts_;
    std::vector<int> intAlloc_, fpAlloc_;
    std::vector<int> intArgs_, fpArgs_;
    int intCalleeFirst_ = 0;  //!< callee-saved int regs are >= this
    int fpCalleeFirst_ = 0;
};

} // namespace d16sim::mc

#endif // D16SIM_MC_MACHINE_ENV_HH
