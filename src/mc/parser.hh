/**
 * @file
 * MiniC recursive-descent parser.
 */

#ifndef D16SIM_MC_PARSER_HH
#define D16SIM_MC_PARSER_HH

#include <string_view>

#include "mc/ast.hh"

namespace d16sim::mc
{

/** Parse a MiniC translation unit. Throws FatalError on syntax errors.
 *  The returned Program is unresolved; run Sema next. */
Program parseProgram(std::string_view source);

/** Fold a constant integer expression (literals, sizeof, arithmetic).
 *  Throws FatalError if the expression is not constant. */
int64_t evalConstInt(const Expr &e);

} // namespace d16sim::mc

#endif // D16SIM_MC_PARSER_HH
