/**
 * @file
 * Chaitin-style graph-coloring register allocation (the approach the
 * paper cites for its compilers, [CAC+81]), with conservative Briggs
 * coalescing and iterated spilling.
 *
 * ABI lowering happens first (lowerCallsAbi): call arguments become
 * moves into fresh *precolored* virtual registers, results move out of
 * the precolored return register, function parameters move in from
 * precolored entry registers, and excess arguments go through the
 * outgoing-argument area of the frame. The allocator then colors
 * everything at once; coalescing deletes most ABI moves, and the
 * caller-saved convention is enforced by restricting any register live
 * across a call to callee-saved colors.
 *
 * Spilled registers are rewritten to short load/use/store ranges over
 * fresh temporaries and allocation repeats ("spills are to stack frame
 * variables", paper §3.3.1).
 */

#ifndef D16SIM_MC_REGALLOC_HH
#define D16SIM_MC_REGALLOC_HH

#include <vector>

#include "mc/ir.hh"
#include "mc/machine_env.hh"

namespace d16sim::mc
{

/** Pseudo frame-slot ids used in Address::frame by the ABI lowering:
 *  outgoingArgSlot(k) is the k-th outgoing stack argument (at sp+4k),
 *  incomingArgSlot(k) the k-th incoming one (above the frame). */
constexpr int outgoingArgSlot(int k) { return -100 - k; }
constexpr int incomingArgSlot(int k) { return -2 - k; }
constexpr bool isOutgoingArgSlot(int s) { return s <= -100; }
constexpr bool isIncomingArgSlot(int s) { return s <= -2 && s > -100; }
constexpr int outgoingArgIndex(int s) { return -100 - s; }
constexpr int incomingArgIndex(int s) { return -2 - s; }

struct Allocation
{
    /** vreg id -> physical register number. */
    std::vector<int> color;

    /** Callee-saved registers actually used, per class. */
    std::vector<int> usedCalleeSavedInt;
    std::vector<int> usedCalleeSavedFp;

    /** Bytes of outgoing stack-argument area required. */
    int outgoingArgBytes = 0;

    /** Number of coalesced (deleted) moves, for diagnostics. */
    int coalescedMoves = 0;
    int spilledRegs = 0;
};

/** Rewrite calls/params/returns into precolored-move form. */
void lowerCallsAbi(IrFunction &fn, const MachineEnv &env);

/** Color every virtual register; rewrites spills into fn (new slots,
 *  new temporaries). Must run after lowerCallsAbi. */
Allocation allocateRegisters(IrFunction &fn, const MachineEnv &env);

} // namespace d16sim::mc

#endif // D16SIM_MC_REGALLOC_HH
