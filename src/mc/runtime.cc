#include "mc/runtime.hh"

namespace d16sim::mc
{

namespace
{

// D16: two-address; compares and conditional branches go through at.
constexpr std::string_view runtimeD16 = R"(
; D16 integer multiply/divide runtime (shift-add / restoring division).
    .text
__mul:
    mvi r4, 0
__mul_loop:
    mvi r5, 1
    and r5, r3
    mv at, r5
    bz __mul_skip
    nop
    add r4, r2
__mul_skip:
    shli r2, 1
    shri r3, 1
    mv at, r3
    bnz __mul_loop
    nop
    mv r2, r4
    ret
    nop

__udiv:
    mv at, r3
    bnz __udiv_go
    nop
    mvi r2, 0
    ret
    nop
__udiv_go:
    mvi r4, 0
    mvi r6, 0
    mvi r5, 32
__udiv_loop:
    shli r6, 1
    mv r7, r2
    shri r7, 31
    or r6, r7
    shli r2, 1
    shli r4, 1
    cmp.leu r3, r6
    bz __udiv_skip
    nop
    sub r6, r3
    addi r4, 1
__udiv_skip:
    subi r5, 1
    mv at, r5
    bnz __udiv_loop
    nop
    mv r2, r4
    ret
    nop

__urem:
    mv at, r3
    bnz __urem_go
    nop
    ret
    nop
__urem_go:
    mvi r4, 0
    mvi r6, 0
    mvi r5, 32
__urem_loop:
    shli r6, 1
    mv r7, r2
    shri r7, 31
    or r6, r7
    shli r2, 1
    shli r4, 1
    cmp.leu r3, r6
    bz __urem_skip
    nop
    sub r6, r3
    addi r4, 1
__urem_skip:
    subi r5, 1
    mv at, r5
    bnz __urem_loop
    nop
    mv r2, r6
    ret
    nop

__div:
    mv r6, r2
    xor r6, r3
    shri r6, 31
    mv r7, r2
    shrai r7, 31
    xor r2, r7
    sub r2, r7
    mv r7, r3
    shrai r7, 31
    xor r3, r7
    sub r3, r7
    mv at, r3
    bnz __div_go
    nop
    mvi r2, 0
    ret
    nop
__div_go:
    mvi r4, 0
    mvi r5, 32
    mvi r8, 0
__div_loop:
    shli r8, 1
    mv r7, r2
    shri r7, 31
    or r8, r7
    shli r2, 1
    shli r4, 1
    cmp.leu r3, r8
    bz __div_skip
    nop
    sub r8, r3
    addi r4, 1
__div_skip:
    subi r5, 1
    mv at, r5
    bnz __div_loop
    nop
    mv r2, r4
    mv at, r6
    bz __div_done
    nop
    neg r2, r2
__div_done:
    ret
    nop

__rem:
    mv r6, r2
    shri r6, 31
    mv r7, r2
    shrai r7, 31
    xor r2, r7
    sub r2, r7
    mv r7, r3
    shrai r7, 31
    xor r3, r7
    sub r3, r7
    mv at, r3
    bnz __rem_go
    nop
    br __rem_sign
    nop
__rem_go:
    mvi r4, 0
    mvi r5, 32
    mvi r8, 0
__rem_loop:
    shli r8, 1
    mv r7, r2
    shri r7, 31
    or r8, r7
    shli r2, 1
    shli r4, 1
    cmp.leu r3, r8
    bz __rem_skip
    nop
    sub r8, r3
    addi r4, 1
__rem_skip:
    subi r5, 1
    mv at, r5
    bnz __rem_loop
    nop
    mv r2, r8
__rem_sign:
    mv at, r6
    bz __rem_done
    nop
    neg r2, r2
__rem_done:
    ret
    nop
)";

// DLXe: three-address transliteration of the same algorithms.
constexpr std::string_view runtimeDLXe = R"(
; DLXe integer multiply/divide runtime (shift-add / restoring division).
    .text
__mul:
    mvi r4, 0
__mul_loop:
    andi r5, r3, 1
    bz r5, __mul_skip
    nop
    add r4, r4, r2
__mul_skip:
    shli r2, r2, 1
    shri r3, r3, 1
    bnz r3, __mul_loop
    nop
    mv r2, r4
    ret
    nop

__udiv:
    bnz r3, __udiv_go
    nop
    mvi r2, 0
    ret
    nop
__udiv_go:
    mvi r4, 0
    mvi r6, 0
    mvi r5, 32
__udiv_loop:
    shli r6, r6, 1
    shri r7, r2, 31
    or r6, r6, r7
    shli r2, r2, 1
    shli r4, r4, 1
    cmp.leu r7, r3, r6
    bz r7, __udiv_skip
    nop
    sub r6, r6, r3
    addi r4, r4, 1
__udiv_skip:
    subi r5, r5, 1
    bnz r5, __udiv_loop
    nop
    mv r2, r4
    ret
    nop

__urem:
    bnz r3, __urem_go
    nop
    ret
    nop
__urem_go:
    mvi r4, 0
    mvi r6, 0
    mvi r5, 32
__urem_loop:
    shli r6, r6, 1
    shri r7, r2, 31
    or r6, r6, r7
    shli r2, r2, 1
    shli r4, r4, 1
    cmp.leu r7, r3, r6
    bz r7, __urem_skip
    nop
    sub r6, r6, r3
    addi r4, r4, 1
__urem_skip:
    subi r5, r5, 1
    bnz r5, __urem_loop
    nop
    mv r2, r6
    ret
    nop

__div:
    xor r6, r2, r3
    shri r6, r6, 31
    shrai r7, r2, 31
    xor r2, r2, r7
    sub r2, r2, r7
    shrai r7, r3, 31
    xor r3, r3, r7
    sub r3, r3, r7
    bnz r3, __div_go
    nop
    mvi r2, 0
    ret
    nop
__div_go:
    mvi r4, 0
    mvi r5, 32
    mvi r8, 0
__div_loop:
    shli r8, r8, 1
    shri r7, r2, 31
    or r8, r8, r7
    shli r2, r2, 1
    shli r4, r4, 1
    cmp.leu r7, r3, r8
    bz r7, __div_skip
    nop
    sub r8, r8, r3
    addi r4, r4, 1
__div_skip:
    subi r5, r5, 1
    bnz r5, __div_loop
    nop
    mv r2, r4
    bz r6, __div_done
    nop
    neg r2, r2
__div_done:
    ret
    nop

__rem:
    shri r6, r2, 31
    shrai r7, r2, 31
    xor r2, r2, r7
    sub r2, r2, r7
    shrai r7, r3, 31
    xor r3, r3, r7
    sub r3, r3, r7
    bnz r3, __rem_go
    nop
    br __rem_sign
    nop
__rem_go:
    mvi r4, 0
    mvi r5, 32
    mvi r8, 0
__rem_loop:
    shli r8, r8, 1
    shri r7, r2, 31
    or r8, r8, r7
    shli r2, r2, 1
    shli r4, r4, 1
    cmp.leu r7, r3, r8
    bz r7, __rem_skip
    nop
    sub r8, r8, r3
    addi r4, r4, 1
__rem_skip:
    subi r5, r5, 1
    bnz r5, __rem_loop
    nop
    mv r2, r8
__rem_sign:
    bz r6, __rem_done
    nop
    neg r2, r2
__rem_done:
    ret
    nop
)";

} // namespace

std::string_view
runtimeSource(isa::IsaKind kind)
{
    return kind == isa::IsaKind::D16 ? runtimeD16 : runtimeDLXe;
}

} // namespace d16sim::mc
