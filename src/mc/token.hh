/**
 * @file
 * Token definitions for MiniC, the C subset the benchmark suite is
 * written in (our stand-in for the paper's GCC 2.1 toolchain).
 */

#ifndef D16SIM_MC_TOKEN_HH
#define D16SIM_MC_TOKEN_HH

#include <cstdint>
#include <string>

namespace d16sim::mc
{

enum class Tok : uint8_t
{
    End,
    // literals / identifiers
    Ident, IntLit, FloatLit, CharLit, StringLit,
    // keywords
    KwInt, KwUnsigned, KwChar, KwFloat, KwDouble, KwVoid, KwStruct,
    KwIf, KwElse, KwWhile, KwFor, KwDo, KwReturn, KwBreak, KwContinue,
    KwSizeof,
    // punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semi, Comma, Dot, Arrow,
    // operators
    Assign,                                    // =
    PlusEq, MinusEq, StarEq, SlashEq, PercentEq,
    AmpEq, PipeEq, CaretEq, ShlEq, ShrEq,
    Question, Colon,
    OrOr, AndAnd,
    Pipe, Caret, Amp,
    EqEq, NotEq, Lt, Gt, Le, Ge,
    Shl, Shr,
    Plus, Minus, Star, Slash, Percent,
    Not, Tilde,
    PlusPlus, MinusMinus,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;      //!< identifier / string body
    int64_t intValue = 0;  //!< IntLit / CharLit
    double floatValue = 0; //!< FloatLit
    bool floatIsSingle = false;  //!< 1.5f suffix
    int line = 0;
};

/** Human-readable token name for diagnostics. */
std::string tokName(Tok t);

} // namespace d16sim::mc

#endif // D16SIM_MC_TOKEN_HH
