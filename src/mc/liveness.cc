#include "mc/liveness.hh"

namespace d16sim::mc
{

Liveness
computeLiveness(const IrFunction &fn)
{
    const int n = static_cast<int>(fn.blocks.size());
    const int regs = fn.numVRegs();

    // Per-block gen (upward-exposed uses) and kill (defs).
    std::vector<RegSet> gen(n, RegSet(regs));
    std::vector<RegSet> kill(n, RegSet(regs));
    for (int b = 0; b < n; ++b) {
        for (const IrInst &inst : fn.blocks[b].insts) {
            forEachUse(inst, [&](VReg r) {
                if (!kill[b].contains(r.id))
                    gen[b].add(r.id);
            });
            const VReg d = defOf(inst);
            if (d.valid())
                kill[b].add(d.id);
        }
    }

    Liveness lv;
    lv.liveIn.assign(n, RegSet(regs));
    lv.liveOut.assign(n, RegSet(regs));

    // Iterate to fixpoint (reverse order converges fast).
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = n - 1; b >= 0; --b) {
            RegSet out(regs);
            for (int s : fn.blocks[b].successors())
                out.unionWith(lv.liveIn[s]);
            if (lv.liveOut[b].unionWith(out))
                changed = true;
            // liveIn = gen U (liveOut - kill)
            RegSet in = gen[b];
            lv.liveOut[b].forEach([&](int id) {
                if (!kill[b].contains(id))
                    in.add(id);
            });
            if (lv.liveIn[b].unionWith(in))
                changed = true;
        }
    }
    return lv;
}

} // namespace d16sim::mc
