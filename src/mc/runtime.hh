/**
 * @file
 * Integer multiply/divide runtime routines.
 *
 * Neither instruction set has integer multiply or divide (paper
 * Table 1); the compiler calls these hand-written assembly routines.
 * "Library source is identical" across machines in the paper; here
 * each ISA gets a direct transliteration of the same algorithms
 * (shift-add multiply, restoring division) using only caller-saved
 * registers r2..r8, so the routines need no stack frame.
 *
 * ABI: arguments r2, r3; result r2. Division by zero returns 0 for the
 * quotient and the dividend for the remainder (defined here; C leaves
 * it undefined).
 */

#ifndef D16SIM_MC_RUNTIME_HH
#define D16SIM_MC_RUNTIME_HH

#include <string_view>

#include "isa/target.hh"

namespace d16sim::mc
{

/** Assembly source of the runtime library for the given encoding. */
std::string_view runtimeSource(isa::IsaKind kind);

} // namespace d16sim::mc

#endif // D16SIM_MC_RUNTIME_HH
