#include "mc/irgen.hh"

#include "support/error.hh"

namespace d16sim::mc
{

namespace
{

using isa::Cond;

RegClass
classOf(const Type *t)
{
    return t->isFp() ? RegClass::Fp : RegClass::Int;
}

Cond
condOf(BinOp op, bool unsignedCmp)
{
    switch (op) {
      case BinOp::Lt: return unsignedCmp ? Cond::Ltu : Cond::Lt;
      case BinOp::Gt: return unsignedCmp ? Cond::Gtu : Cond::Gt;
      case BinOp::Le: return unsignedCmp ? Cond::Leu : Cond::Le;
      case BinOp::Ge: return unsignedCmp ? Cond::Geu : Cond::Ge;
      case BinOp::Eq: return Cond::Eq;
      case BinOp::Ne: return Cond::Ne;
      default: panic("not a comparison");
    }
}

bool
isComparison(BinOp op)
{
    switch (op) {
      case BinOp::Lt: case BinOp::Gt: case BinOp::Le: case BinOp::Ge:
      case BinOp::Eq: case BinOp::Ne:
        return true;
      default:
        return false;
    }
}

struct IrGen
{
    const Program &prog;
    const FuncDecl *fn = nullptr;
    IrFunction *out = nullptr;
    int curBB = 0;

    std::vector<VReg> localReg;  //!< localId -> vreg (invalid if memory)
    std::vector<int> localSlot;  //!< localId -> frame slot (-1 if reg)
    std::vector<int> breakStack, continueStack;
    int stringBase = 0;  //!< unused; strings are globally pooled

    // ----- block plumbing ----------------------------------------------

    BasicBlock &bb() { return out->blocks[curBB]; }

    bool
    terminated() const
    {
        const BasicBlock &b = out->blocks[curBB];
        return !b.insts.empty() && b.insts.back().isTerminator();
    }

    void
    emit(IrInst inst)
    {
        if (!terminated())
            bb().insts.push_back(std::move(inst));
    }

    int
    newBlock()
    {
        BasicBlock b;
        b.id = static_cast<int>(out->blocks.size());
        out->blocks.push_back(std::move(b));
        return out->blocks.back().id;
    }

    void
    jumpTo(int target)
    {
        IrInst j;
        j.op = IrOp::Jmp;
        j.thenBB = target;
        emit(std::move(j));
    }

    void setBlock(int id) { curBB = id; }

    VReg newInt() { return out->newReg(RegClass::Int); }
    VReg newFp() { return out->newReg(RegClass::Fp); }

    VReg
    emitMovImm(int64_t v)
    {
        IrInst i;
        i.op = IrOp::MovImm;
        i.dst = newInt();
        i.imm = v;
        const VReg dst = i.dst;
        emit(std::move(i));
        return dst;
    }

    VReg
    emitBin(IrOp op, VReg a, Operand b)
    {
        IrInst i;
        i.op = op;
        i.dst = newInt();
        i.a = a;
        i.b = b;
        const VReg dst = i.dst;
        emit(std::move(i));
        return dst;
    }

    VReg
    emitFpBin(IrOp op, VReg a, VReg b, bool single)
    {
        IrInst i;
        i.op = op;
        i.dst = newFp();
        i.a = a;
        i.b = Operand::ofReg(b);
        i.isSingle = single;
        const VReg dst = i.dst;
        emit(std::move(i));
        return dst;
    }

    // ----- addresses ------------------------------------------------------

    /** Compute the address of an lvalue (or of a string literal). */
    Address
    genAddr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::Ident: {
            if (e.binding == Expr::Binding::Local) {
                const int slot = localSlot[e.localId];
                panicIf(slot < 0, "address of register-bound local");
                return Address::frame(slot);
            }
            return Address::global(e.strValue);
          }
          case ExprKind::StringLit:
            return Address::global(".Lstr" + std::to_string(e.intValue));
          case ExprKind::Unary:
            panicIf(e.unOp != UnOp::Deref, "genAddr on non-lvalue unary");
            return Address::reg(genExpr(*e.a));
          case ExprKind::Index: {
            const Address base = genAddrOfPointerValue(*e.a);
            // The stride is the size of the indexed element itself; for
            // a multi-dimensional a[i][j] the element of a[i] is a whole
            // row, not a row's element.
            const int esz = e.type->size();
            // Constant index folds into the displacement.
            int64_t constIdx;
            if (isConstInt(*e.b, constIdx)) {
                Address a = base;
                a.offset += static_cast<int32_t>(constIdx * esz);
                return a;
            }
            const VReg idx = genExpr(*e.b);
            const VReg scaled = emitBin(IrOp::Mul, idx,
                                        Operand::ofImm(esz));
            const VReg baseReg = materializeAddr(base);
            return Address::reg(
                emitBin(IrOp::Add, baseReg, Operand::ofReg(scaled)));
          }
          case ExprKind::Member: {
            const StructField *f = nullptr;
            Address a;
            if (e.arrow) {
                const Type *pt = e.a->type;  // pointer to struct
                f = pt->pointee()->record()->findField(e.strValue);
                a = Address::reg(genExpr(*e.a));
            } else {
                f = e.a->type->record()->findField(e.strValue);
                a = genAddr(*e.a);
            }
            panicIf(!f, "field vanished after sema");
            a.offset += f->offset;
            return a;
          }
          default:
            panic("genAddr on non-lvalue expression");
        }
    }

    /** For Index bases: the pointer value's address arithmetic. The
     *  base expression is a pointer rvalue (arrays were decayed). */
    Address
    genAddrOfPointerValue(const Expr &e)
    {
        // &arr decay nodes fold directly into the array's address.
        if (e.kind == ExprKind::Unary && e.unOp == UnOp::AddrOf)
            return genAddr(*e.a);
        return Address::reg(genExpr(e));
    }

    /** Turn a symbolic address into a register holding it. */
    VReg
    materializeAddr(const Address &a)
    {
        if (a.kind == AddrKind::Reg && a.offset == 0)
            return a.base;
        if (a.kind == AddrKind::Reg)
            return emitBin(IrOp::Add, a.base, Operand::ofImm(a.offset));
        IrInst i;
        i.op = IrOp::AddrOf;
        i.dst = newInt();
        i.addr = a;
        const VReg dst = i.dst;
        emit(std::move(i));
        return dst;
    }

    // ----- loads / stores -------------------------------------------------

    VReg
    emitLoad(const Address &a, const Type *t)
    {
        IrInst i;
        i.op = IrOp::Load;
        i.addr = a;
        i.size = t->size();
        i.signedLoad = !t->isUnsigned();
        i.dst = out->newReg(classOf(t));
        i.isSingle = t->kind() == TypeKind::Float;
        const VReg dst = i.dst;
        emit(std::move(i));
        return dst;
    }

    void
    emitStore(const Address &a, const Type *t, VReg v)
    {
        IrInst i;
        i.op = IrOp::Store;
        i.addr = a;
        i.size = t->size();
        i.a = v;
        i.isSingle = t->kind() == TypeKind::Float;
        emit(std::move(i));
    }

    // ----- constants --------------------------------------------------------

    bool
    isConstInt(const Expr &e, int64_t &out_) const
    {
        if (e.kind == ExprKind::IntLit || e.kind == ExprKind::SizeofType) {
            out_ = e.intValue;
            return true;
        }
        if (e.kind == ExprKind::Cast && e.castType->isInteger()) {
            if (!isConstInt(*e.a, out_))
                return false;
            // A constant that folds through a char cast must narrow
            // like the runtime normalizeChar sequence would.
            if (e.castType->kind() == TypeKind::Char)
                out_ = static_cast<int8_t>(
                    static_cast<uint64_t>(out_) & 0xff);
            return true;
        }
        return false;
    }

    // ----- expressions -------------------------------------------------------

    /** Generate an rvalue. */
    VReg
    genExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
          case ExprKind::SizeofType:
            return emitMovImm(e.intValue);

          case ExprKind::FloatLit: {
            IrInst i;
            i.op = IrOp::FMovImm;
            i.dst = newFp();
            i.fimm = e.floatValue;
            i.isSingle = e.type->kind() == TypeKind::Float;
            const VReg dst = i.dst;
            emit(std::move(i));
            return dst;
          }

          case ExprKind::StringLit:
            return materializeAddr(genAddr(e));

          case ExprKind::Ident: {
            if (e.binding == Expr::Binding::Local &&
                localReg[e.localId].valid()) {
                return localReg[e.localId];
            }
            if (e.type->isArray() || e.type->isStruct())
                return materializeAddr(genAddr(e));
            return emitLoad(genAddr(e), e.type);
          }

          case ExprKind::Unary:
            return genUnary(e);

          case ExprKind::Binary:
            return genBinary(e);

          case ExprKind::Assign:
            return genAssign(e);

          case ExprKind::Cond: {
            const int thenB = newBlock();
            const int elseB = newBlock();
            const int joinB = newBlock();
            const VReg result = out->newReg(classOf(e.type));
            genCond(*e.a, thenB, elseB);
            setBlock(thenB);
            moveInto(result, genExpr(*e.b));
            jumpTo(joinB);
            setBlock(elseB);
            moveInto(result, genExpr(*e.c));
            jumpTo(joinB);
            setBlock(joinB);
            return result;
          }

          case ExprKind::Call:
            return genCall(e);

          case ExprKind::Index:
          case ExprKind::Member: {
            if (e.type->isArray())
                return materializeAddr(genAddr(e));
            if (e.type->isStruct())
                return materializeAddr(genAddr(e));
            return emitLoad(genAddr(e), e.type);
          }

          case ExprKind::Cast:
            return genCast(e);

          case ExprKind::IncDec:
            return genIncDec(e);
        }
        panic("unhandled expr kind in irgen");
    }

    void
    moveInto(VReg dst, VReg src)
    {
        if (dst == src)
            return;
        IrInst i;
        i.op = IrOp::Mov;
        i.dst = dst;
        i.a = src;
        emit(std::move(i));
    }

    VReg
    genUnary(const Expr &e)
    {
        switch (e.unOp) {
          case UnOp::AddrOf:
            return materializeAddr(genAddr(*e.a));
          case UnOp::Deref:
            if (e.type->isArray() || e.type->isStruct())
                return materializeAddr(genAddr(e));
            return emitLoad(genAddr(e), e.type);
          case UnOp::Neg: {
            if (e.type->isFp()) {
                IrInst i;
                i.op = IrOp::FNeg;
                i.dst = newFp();
                i.a = genExpr(*e.a);
                i.isSingle = e.type->kind() == TypeKind::Float;
                const VReg dst = i.dst;
                emit(std::move(i));
                return dst;
            }
            IrInst i;
            i.op = IrOp::Neg;
            i.dst = newInt();
            i.a = genExpr(*e.a);
            const VReg dst = i.dst;
            emit(std::move(i));
            return dst;
          }
          case UnOp::BitNot: {
            IrInst i;
            i.op = IrOp::Not;
            i.dst = newInt();
            i.a = genExpr(*e.a);
            const VReg dst = i.dst;
            emit(std::move(i));
            return dst;
          }
          case UnOp::LogNot: {
            // !x == (x == 0)
            if (e.a->type->isFp()) {
                const VReg zero = genFpZero(e.a->type);
                return emitFpCmp(Cond::Eq, genExpr(*e.a), zero,
                                 e.a->type->kind() == TypeKind::Float);
            }
            IrInst i;
            i.op = IrOp::Cmp;
            i.cond = Cond::Eq;
            i.dst = newInt();
            i.a = genExpr(*e.a);
            i.b = Operand::ofImm(0);
            const VReg dst = i.dst;
            emit(std::move(i));
            return dst;
          }
          case UnOp::Plus:
            return genExpr(*e.a);
        }
        panic("bad unop");
    }

    VReg
    genFpZero(const Type *t)
    {
        IrInst i;
        i.op = IrOp::FMovImm;
        i.dst = newFp();
        i.fimm = 0.0;
        i.isSingle = t->kind() == TypeKind::Float;
        const VReg dst = i.dst;
        emit(std::move(i));
        return dst;
    }

    VReg
    emitFpCmp(Cond c, VReg a, VReg b, bool single)
    {
        IrInst i;
        i.op = IrOp::FCmp;
        i.cond = c;
        i.dst = newInt();
        i.a = a;
        i.b = Operand::ofReg(b);
        i.isSingle = single;
        const VReg dst = i.dst;
        emit(std::move(i));
        return dst;
    }

    /** Operand for the RHS of an integer op: immediate when constant. */
    Operand
    genOperand(const Expr &e)
    {
        int64_t v;
        if (isConstInt(e, v))
            return Operand::ofImm(v);
        return Operand::ofReg(genExpr(e));
    }

    VReg
    genBinary(const Expr &e)
    {
        const BinOp op = e.binOp;

        if (op == BinOp::LogAnd || op == BinOp::LogOr) {
            // Value form of short-circuit: result in a register.
            const int thenB = newBlock();
            const int elseB = newBlock();
            const int joinB = newBlock();
            const VReg result = newInt();
            genCond(e, thenB, elseB);
            setBlock(thenB);
            {
                IrInst i;
                i.op = IrOp::MovImm;
                i.dst = result;
                i.imm = 1;
                emit(std::move(i));
            }
            jumpTo(joinB);
            setBlock(elseB);
            {
                IrInst i;
                i.op = IrOp::MovImm;
                i.dst = result;
                i.imm = 0;
                emit(std::move(i));
            }
            jumpTo(joinB);
            setBlock(joinB);
            return result;
        }

        const Type *ta = e.a->type;

        if (isComparison(op)) {
            if (ta->isFp()) {
                const bool single = ta->kind() == TypeKind::Float;
                return emitFpCmp(condOf(op, false), genExpr(*e.a),
                                 genExpr(*e.b), single);
            }
            IrInst i;
            i.op = IrOp::Cmp;
            i.cond = condOf(op, ta->isUnsigned());
            i.dst = newInt();
            i.a = genExpr(*e.a);
            i.b = genOperand(*e.b);
            const VReg dst = i.dst;
            emit(std::move(i));
            return dst;
        }

        if (ta->isFp()) {
            const bool single = ta->kind() == TypeKind::Float;
            IrOp fop;
            switch (op) {
              case BinOp::Add: fop = IrOp::FAdd; break;
              case BinOp::Sub: fop = IrOp::FSub; break;
              case BinOp::Mul: fop = IrOp::FMul; break;
              case BinOp::Div: fop = IrOp::FDiv; break;
              default: panic("bad fp binop");
            }
            return emitFpBin(fop, genExpr(*e.a), genExpr(*e.b), single);
        }

        // Pointer arithmetic: scale the integer side.
        if (ta->isPointer() && (op == BinOp::Add || op == BinOp::Sub)) {
            const int esz = ta->pointee()->size();
            const VReg base = genExpr(*e.a);
            if (e.b->type->isPointer()) {
                // ptr - ptr: byte difference divided by element size.
                const VReg diff = emitBin(IrOp::Sub, base,
                                          Operand::ofReg(genExpr(*e.b)));
                if (esz == 1)
                    return diff;
                return emitBin(IrOp::DivS, diff, Operand::ofImm(esz));
            }
            int64_t cidx;
            if (isConstInt(*e.b, cidx)) {
                const int64_t delta =
                    (op == BinOp::Sub ? -cidx : cidx) * esz;
                if (delta == 0)
                    return base;
                return emitBin(IrOp::Add, base, Operand::ofImm(delta));
            }
            VReg idx = genExpr(*e.b);
            if (esz != 1)
                idx = emitBin(IrOp::Mul, idx, Operand::ofImm(esz));
            return emitBin(op == BinOp::Sub ? IrOp::Sub : IrOp::Add, base,
                           Operand::ofReg(idx));
        }

        const bool un = ta->isUnsigned();
        IrOp iop;
        switch (op) {
          case BinOp::Add: iop = IrOp::Add; break;
          case BinOp::Sub: iop = IrOp::Sub; break;
          case BinOp::Mul: iop = IrOp::Mul; break;
          case BinOp::Div: iop = un ? IrOp::DivU : IrOp::DivS; break;
          case BinOp::Rem: iop = un ? IrOp::RemU : IrOp::RemS; break;
          case BinOp::And: iop = IrOp::And; break;
          case BinOp::Or: iop = IrOp::Or; break;
          case BinOp::Xor: iop = IrOp::Xor; break;
          case BinOp::Shl: iop = IrOp::Shl; break;
          case BinOp::Shr: iop = un ? IrOp::ShrL : IrOp::ShrA; break;
          default: panic("bad int binop");
        }
        const VReg a = genExpr(*e.a);
        return emitBin(iop, a, genOperand(*e.b));
    }

    /** Apply a binary IR op for compound assignment (int class). */
    VReg
    applyCompound(const Expr &e, VReg lhsVal)
    {
        const Type *lt = e.a->type;
        if (lt->isFp()) {
            const bool single = lt->kind() == TypeKind::Float;
            VReg rhs = genExpr(*e.b);
            IrOp fop;
            switch (e.binOp) {
              case BinOp::Add: fop = IrOp::FAdd; break;
              case BinOp::Sub: fop = IrOp::FSub; break;
              case BinOp::Mul: fop = IrOp::FMul; break;
              case BinOp::Div: fop = IrOp::FDiv; break;
              default: panic("bad fp compound op");
            }
            return emitFpBin(fop, lhsVal, rhs, single);
        }
        if (lt->isPointer()) {
            const int esz = lt->pointee()->size();
            int64_t c;
            if (isConstInt(*e.b, c)) {
                const int64_t delta =
                    (e.binOp == BinOp::Sub ? -c : c) * esz;
                return emitBin(IrOp::Add, lhsVal, Operand::ofImm(delta));
            }
            VReg idx = genExpr(*e.b);
            if (esz != 1)
                idx = emitBin(IrOp::Mul, idx, Operand::ofImm(esz));
            return emitBin(e.binOp == BinOp::Sub ? IrOp::Sub : IrOp::Add,
                           lhsVal, Operand::ofReg(idx));
        }
        const bool un = lt->isUnsigned();
        IrOp iop;
        switch (e.binOp) {
          case BinOp::Add: iop = IrOp::Add; break;
          case BinOp::Sub: iop = IrOp::Sub; break;
          case BinOp::Mul: iop = IrOp::Mul; break;
          case BinOp::Div: iop = un ? IrOp::DivU : IrOp::DivS; break;
          case BinOp::Rem: iop = un ? IrOp::RemU : IrOp::RemS; break;
          case BinOp::And: iop = IrOp::And; break;
          case BinOp::Or: iop = IrOp::Or; break;
          case BinOp::Xor: iop = IrOp::Xor; break;
          case BinOp::Shl: iop = IrOp::Shl; break;
          case BinOp::Shr: iop = un ? IrOp::ShrL : IrOp::ShrA; break;
          default: panic("bad compound op");
        }
        VReg result = emitBin(iop, lhsVal, genOperand(*e.b));
        // Narrow char results back to the invariant representation.
        if (lt->kind() == TypeKind::Char)
            result = normalizeChar(result);
        return result;
    }

    VReg
    normalizeChar(VReg v)
    {
        const VReg shifted = emitBin(IrOp::Shl, v, Operand::ofImm(24));
        return emitBin(IrOp::ShrA, shifted, Operand::ofImm(24));
    }

    VReg
    genAssign(const Expr &e)
    {
        const Expr &lhs = *e.a;

        // Struct assignment: memberwise word copy.
        if (lhs.type->isStruct()) {
            const Address dst = genAddr(lhs);
            const Address src = genAddr(*e.b);
            copyAggregate(dst, src, lhs.type->size());
            return VReg{};
        }

        // Register-bound local on the left: operate on the vreg.
        if (lhs.kind == ExprKind::Ident &&
            lhs.binding == Expr::Binding::Local &&
            localReg[lhs.localId].valid()) {
            const VReg target = localReg[lhs.localId];
            VReg value;
            if (e.compound)
                value = applyCompound(e, target);
            else
                value = genExpr(*e.b);
            moveInto(target, value);
            return target;
        }

        const Address addr = genAddr(lhs);
        VReg value;
        if (e.compound) {
            const VReg old = emitLoad(addr, lhs.type);
            value = applyCompound(e, old);
        } else {
            value = genExpr(*e.b);
        }
        emitStore(addr, lhs.type, value);
        return value;
    }

    void
    copyAggregate(const Address &dst, const Address &src, int bytes)
    {
        const VReg d = materializeAddr(dst);
        const VReg s = materializeAddr(src);
        int off = 0;
        const Type *word = prog.types.intTy();
        const Type *byteTy = prog.types.charTy();
        while (bytes - off >= 4) {
            const VReg t = emitLoad(Address::reg(s, off), word);
            emitStore(Address::reg(d, off), word, t);
            off += 4;
        }
        while (bytes - off >= 1) {
            const VReg t = emitLoad(Address::reg(s, off), byteTy);
            emitStore(Address::reg(d, off), byteTy, t);
            off += 1;
        }
    }

    VReg
    genCall(const Expr &e)
    {
        const FuncSig &sig = prog.signatures.at(e.strValue);
        IrInst call;
        call.op = IrOp::Call;
        call.sym = e.strValue;
        if (sig.isBuiltin)
            call.trapCode = sig.trapCode;
        for (const ExprPtr &arg : e.args)
            call.args.push_back(genExpr(*arg));
        if (!sig.retType->isVoid())
            call.dst = out->newReg(classOf(sig.retType));
        const VReg dst = call.dst;
        emit(std::move(call));
        return dst;
    }

    VReg
    genCast(const Expr &e)
    {
        const Type *to = e.castType;
        const Type *from = e.a->type;
        if (to->isVoid()) {
            genExpr(*e.a);
            return VReg{};
        }
        const VReg src = genExpr(*e.a);
        if (to == from)
            return src;

        const bool fromFp = from->isFp();
        const bool toFp = to->isFp();
        if (fromFp && toFp) {
            IrInst i;
            i.op = IrOp::CvtFF;
            i.dst = newFp();
            i.a = src;
            i.isSingle = to->kind() == TypeKind::Float;
            i.srcSingle = from->kind() == TypeKind::Float;
            const VReg dst = i.dst;
            emit(std::move(i));
            return dst;
        }
        if (!fromFp && toFp) {
            IrInst i;
            i.op = IrOp::CvtIF;
            i.dst = newFp();
            i.a = src;
            i.isSingle = to->kind() == TypeKind::Float;
            const VReg dst = i.dst;
            emit(std::move(i));
            return dst;
        }
        if (fromFp && !toFp) {
            IrInst i;
            i.op = IrOp::CvtFI;
            i.dst = newInt();
            i.a = src;
            i.srcSingle = from->kind() == TypeKind::Float;
            const VReg dst = i.dst;
            emit(std::move(i));
            VReg r = dst;
            if (to->kind() == TypeKind::Char)
                r = normalizeChar(r);
            return r;
        }
        // Integer/pointer conversions: only char narrowing changes bits.
        if (to->kind() == TypeKind::Char && from->kind() != TypeKind::Char)
            return normalizeChar(src);
        return src;
    }

    VReg
    genIncDec(const Expr &e)
    {
        const Expr &lhs = *e.a;
        if (lhs.type->isFp())
            return genIncDecFp(e);
        int64_t delta = e.isIncrement ? 1 : -1;
        if (lhs.type->isPointer())
            delta *= lhs.type->pointee()->size();

        if (lhs.kind == ExprKind::Ident &&
            lhs.binding == Expr::Binding::Local &&
            localReg[lhs.localId].valid()) {
            const VReg target = localReg[lhs.localId];
            VReg oldVal;
            if (!e.isPrefix) {
                oldVal = newInt();
                moveInto(oldVal, target);
            }
            VReg updated =
                emitBin(IrOp::Add, target, Operand::ofImm(delta));
            if (lhs.type->kind() == TypeKind::Char)
                updated = normalizeChar(updated);
            moveInto(target, updated);
            return e.isPrefix ? target : oldVal;
        }

        const Address addr = genAddr(lhs);
        const VReg old = emitLoad(addr, lhs.type);
        VReg updated = emitBin(IrOp::Add, old, Operand::ofImm(delta));
        if (lhs.type->kind() == TypeKind::Char)
            updated = normalizeChar(updated);
        emitStore(addr, lhs.type, updated);
        return e.isPrefix ? updated : old;
    }

    /** ++/-- on float/double: an integer Add would read the FP vreg
     *  through the integer register file, so step by an FP +/-1. */
    VReg
    genIncDecFp(const Expr &e)
    {
        const Expr &lhs = *e.a;
        const bool single = lhs.type->kind() == TypeKind::Float;
        const auto genOne = [&] {
            IrInst i;
            i.op = IrOp::FMovImm;
            i.dst = newFp();
            i.fimm = e.isIncrement ? 1.0 : -1.0;
            i.isSingle = single;
            const VReg dst = i.dst;
            emit(std::move(i));
            return dst;
        };

        if (lhs.kind == ExprKind::Ident &&
            lhs.binding == Expr::Binding::Local &&
            localReg[lhs.localId].valid()) {
            const VReg target = localReg[lhs.localId];
            VReg oldVal;
            if (!e.isPrefix) {
                oldVal = newFp();
                moveInto(oldVal, target);
            }
            const VReg updated =
                emitFpBin(IrOp::FAdd, target, genOne(), single);
            moveInto(target, updated);
            return e.isPrefix ? target : oldVal;
        }

        const Address addr = genAddr(lhs);
        const VReg old = emitLoad(addr, lhs.type);
        const VReg updated = emitFpBin(IrOp::FAdd, old, genOne(), single);
        emitStore(addr, lhs.type, updated);
        return e.isPrefix ? updated : old;
    }

    // ----- conditions ---------------------------------------------------------

    void
    genCond(const Expr &e, int thenB, int elseB)
    {
        // Logical connectives short-circuit through blocks.
        if (e.kind == ExprKind::Binary && e.binOp == BinOp::LogAnd) {
            const int mid = newBlock();
            genCond(*e.a, mid, elseB);
            setBlock(mid);
            genCond(*e.b, thenB, elseB);
            return;
        }
        if (e.kind == ExprKind::Binary && e.binOp == BinOp::LogOr) {
            const int mid = newBlock();
            genCond(*e.a, thenB, mid);
            setBlock(mid);
            genCond(*e.b, thenB, elseB);
            return;
        }
        if (e.kind == ExprKind::Unary && e.unOp == UnOp::LogNot) {
            genCond(*e.a, elseB, thenB);
            return;
        }
        int64_t c;
        if (isConstInt(e, c)) {
            jumpTo(c ? thenB : elseB);
            return;
        }
        IrInst br;
        br.op = IrOp::Br;
        if (e.type->isFp()) {
            // FP truthiness: Br reads the integer register file, so
            // branch on the integer result of (x != 0.0).
            const VReg v = genExpr(e);
            const VReg zero = genFpZero(e.type);
            br.a = emitFpCmp(Cond::Ne, v, zero,
                             e.type->kind() == TypeKind::Float);
        } else {
            br.a = genExpr(e);
        }
        br.thenBB = thenB;
        br.elseBB = elseB;
        emit(std::move(br));
    }

    // ----- statements ------------------------------------------------------------

    void
    genLocalDecl(const LocalDecl &d)
    {
        const FuncDecl::LocalVar &var = fn->locals[d.localId];
        const bool inMemory = var.addressTaken || d.type->isArray() ||
                              d.type->isStruct();
        if (inMemory) {
            localSlot[d.localId] =
                out->newSlot(d.type->size(), d.type->align(), d.name);
            localReg[d.localId] = VReg{};
        } else {
            localReg[d.localId] = out->newReg(classOf(d.type));
            localSlot[d.localId] = -1;
        }

        if (d.init) {
            const VReg v = genExpr(*d.init);
            if (d.type->isStruct()) {
                // init is a struct rvalue (an address).
                const Address dst = Address::frame(localSlot[d.localId]);
                copyAggregateFromReg(dst, v, d.type->size());
            } else if (inMemory) {
                emitStore(Address::frame(localSlot[d.localId]), d.type, v);
            } else {
                moveInto(localReg[d.localId], v);
            }
        }
        if (!d.initList.empty()) {
            const Type *elem =
                d.type->isArray() ? d.type->pointee() : d.type;
            int off = 0;
            for (const ExprPtr &init : d.initList) {
                const VReg v = genExpr(*init);
                emitStore(Address::frame(localSlot[d.localId], off), elem,
                          v);
                off += elem->size();
            }
        }
    }

    void
    copyAggregateFromReg(const Address &dst, VReg srcAddr, int bytes)
    {
        copyAggregate(dst, Address::reg(srcAddr), bytes);
    }

    void
    genStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::Block:
            for (const StmtPtr &child : s.body) {
                if (terminated())
                    break;  // unreachable code after return/break
                genStmt(*child);
            }
            break;

          case StmtKind::If: {
            const int thenB = newBlock();
            const int elseB = s.elseStmt ? newBlock() : -1;
            const int joinB = newBlock();
            genCond(*s.cond, thenB, s.elseStmt ? elseB : joinB);
            setBlock(thenB);
            genStmt(*s.thenStmt);
            jumpTo(joinB);
            if (s.elseStmt) {
                setBlock(elseB);
                genStmt(*s.elseStmt);
                jumpTo(joinB);
            }
            setBlock(joinB);
            break;
          }

          case StmtKind::While: {
            const int condB = newBlock();
            const int bodyB = newBlock();
            const int exitB = newBlock();
            jumpTo(condB);
            setBlock(condB);
            genCond(*s.cond, bodyB, exitB);
            breakStack.push_back(exitB);
            continueStack.push_back(condB);
            setBlock(bodyB);
            genStmt(*s.loopBody);
            jumpTo(condB);
            breakStack.pop_back();
            continueStack.pop_back();
            setBlock(exitB);
            break;
          }

          case StmtKind::DoWhile: {
            const int bodyB = newBlock();
            const int condB = newBlock();
            const int exitB = newBlock();
            jumpTo(bodyB);
            breakStack.push_back(exitB);
            continueStack.push_back(condB);
            setBlock(bodyB);
            genStmt(*s.loopBody);
            jumpTo(condB);
            breakStack.pop_back();
            continueStack.pop_back();
            setBlock(condB);
            genCond(*s.cond, bodyB, exitB);
            setBlock(exitB);
            break;
          }

          case StmtKind::For: {
            if (s.forInit)
                genStmt(*s.forInit);
            const int condB = newBlock();
            const int bodyB = newBlock();
            const int stepB = newBlock();
            const int exitB = newBlock();
            jumpTo(condB);
            setBlock(condB);
            if (s.cond)
                genCond(*s.cond, bodyB, exitB);
            else
                jumpTo(bodyB);
            breakStack.push_back(exitB);
            continueStack.push_back(stepB);
            setBlock(bodyB);
            genStmt(*s.loopBody);
            jumpTo(stepB);
            breakStack.pop_back();
            continueStack.pop_back();
            setBlock(stepB);
            if (s.forStep)
                genExpr(*s.forStep);
            jumpTo(condB);
            setBlock(exitB);
            break;
          }

          case StmtKind::Return: {
            IrInst ret;
            ret.op = IrOp::Ret;
            if (s.expr)
                ret.a = genExpr(*s.expr);
            emit(std::move(ret));
            break;
          }

          case StmtKind::Break:
            panicIf(breakStack.empty(), "break outside loop after sema");
            jumpTo(breakStack.back());
            break;

          case StmtKind::Continue:
            jumpTo(continueStack.back());
            break;

          case StmtKind::ExprStmt:
            genExpr(*s.expr);
            break;

          case StmtKind::Decl:
            for (const LocalDecl &d : s.decls)
                genLocalDecl(d);
            break;

          case StmtKind::Empty:
            break;
        }
    }

    IrFunction
    generate(const FuncDecl &f)
    {
        IrFunction irf;
        irf.name = f.name;
        irf.retType = f.retType;
        fn = &f;
        out = &irf;
        curBB = 0;
        out->blocks.clear();
        newBlock();  // entry = bb0

        localReg.assign(f.locals.size(), VReg{});
        localSlot.assign(f.locals.size(), -1);

        // Parameters arrive in fresh vregs; address-taken ones are
        // spilled to slots at entry.
        for (size_t i = 0; i < f.params.size(); ++i) {
            const FuncDecl::LocalVar &var = f.locals[i];
            const VReg p = out->newReg(classOf(var.type));
            irf.params.push_back(p);
            if (var.addressTaken) {
                const int slot = out->newSlot(var.type->size(),
                                              var.type->align(), var.name);
                localSlot[i] = slot;
                emitStore(Address::frame(slot), var.type, p);
            } else {
                localReg[i] = p;
            }
        }

        genStmt(*f.body);

        // Guarantee a terminator.
        if (!terminated()) {
            IrInst ret;
            ret.op = IrOp::Ret;
            if (!f.retType->isVoid()) {
                // Falling off a non-void function returns 0.
                ret.a = emitMovImm(0);
            }
            emit(std::move(ret));
        }
        // Every block needs a terminator (empty join blocks fall into
        // a final ret; give them explicit rets).
        for (BasicBlock &b : irf.blocks) {
            if (b.insts.empty() || !b.insts.back().isTerminator()) {
                IrInst ret;
                ret.op = IrOp::Ret;
                if (!f.retType->isVoid()) {
                    IrInst zero;
                    zero.op = IrOp::MovImm;
                    zero.dst = irf.newReg(RegClass::Int);
                    zero.imm = 0;
                    ret.a = zero.dst;
                    b.insts.push_back(std::move(zero));
                }
                b.insts.push_back(std::move(ret));
            }
        }
        return irf;
    }
};

} // namespace

IrModule
generateIr(const Program &prog)
{
    IrModule mod;
    IrGen gen{prog};
    for (const FuncDecl &f : prog.functions) {
        if (f.body)
            mod.functions.push_back(gen.generate(f));
    }
    return mod;
}

} // namespace d16sim::mc
