#include "mc/sema.hh"

#include <unordered_map>

#include "support/error.hh"

namespace d16sim::mc
{

namespace
{

struct Builtin
{
    const char *name;
    int trapCode;
};

constexpr Builtin builtins[] = {
    {"print_int", 1}, {"print_char", 2}, {"print_str", 3},
    {"print_f64", 4}, {"halt", 5},       {"alloc", 6},
    {"print_uint", 7},
};

struct Sema
{
    Program &prog;
    FuncDecl *fn = nullptr;

    /** Scope stack: name -> localId. */
    std::vector<std::unordered_map<std::string, int>> scopes;

    [[noreturn]] void
    err(int line, const std::string &msg) const
    {
        fatal("minic line ", line, ": ", msg);
    }

    // ----- helpers -----------------------------------------------------

    const Type *intTy() const { return prog.types.intTy(); }

    int
    findLocal(const std::string &name) const
    {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return f->second;
        }
        return -1;
    }

    int
    declareLocal(const std::string &name, const Type *type, bool isParam,
                 int line)
    {
        if (scopes.back().count(name))
            err(line, "redeclaration of '" + name + "'");
        FuncDecl::LocalVar v;
        v.name = name;
        v.type = type;
        v.isParam = isParam;
        fn->locals.push_back(std::move(v));
        const int id = static_cast<int>(fn->locals.size()) - 1;
        scopes.back()[name] = id;
        return id;
    }

    const GlobalDecl *
    findGlobal(const std::string &name) const
    {
        for (const GlobalDecl &g : prog.globals)
            if (g.name == name)
                return &g;
        return nullptr;
    }

    /** Wrap e in a Cast node targeting t (no-op if already t). */
    ExprPtr
    castTo(ExprPtr e, const Type *t)
    {
        if (e->type == t)
            return e;
        auto c = std::make_unique<Expr>();
        c->kind = ExprKind::Cast;
        c->line = e->line;
        c->castType = t;
        c->type = t;
        c->a = std::move(e);
        return c;
    }

    /** Array-to-pointer decay for rvalue use. */
    ExprPtr
    decay(ExprPtr e)
    {
        if (e->type && e->type->isArray()) {
            auto addr = std::make_unique<Expr>();
            addr->kind = ExprKind::Unary;
            addr->unOp = UnOp::AddrOf;
            addr->line = e->line;
            addr->type = prog.types.pointerTo(e->type->pointee());
            addr->a = std::move(e);
            return addr;
        }
        return e;
    }

    /** Usual arithmetic conversions. */
    const Type *
    commonType(const Type *a, const Type *b, int line)
    {
        if (!a->isArith() || !b->isArith())
            err(line, "arithmetic operands required");
        if (a->kind() == TypeKind::Double || b->kind() == TypeKind::Double)
            return prog.types.doubleTy();
        if (a->kind() == TypeKind::Float || b->kind() == TypeKind::Float)
            return prog.types.floatTy();
        if (a->isUnsigned() || b->isUnsigned())
            return prog.types.uintTy();
        return intTy();
    }

    void
    requireScalar(const Expr &e, const char *what)
    {
        if (!e.type || !e.type->isScalar())
            err(e.line, std::string(what) + " requires a scalar value");
    }

    // ----- expressions --------------------------------------------------

    /** Check an expression; returns the (possibly rewritten) node. */
    ExprPtr
    check(ExprPtr e)
    {
        switch (e->kind) {
          case ExprKind::IntLit:
            e->type = intTy();
            return e;

          case ExprKind::FloatLit:
            e->type = e->floatIsSingle ? prog.types.floatTy()
                                       : prog.types.doubleTy();
            return e;

          case ExprKind::StringLit: {
            prog.strings.push_back(e->strValue);
            e->intValue = static_cast<int64_t>(prog.strings.size()) - 1;
            e->type = prog.types.pointerTo(prog.types.charTy());
            return e;
          }

          case ExprKind::Ident: {
            const int local = findLocal(e->strValue);
            if (local >= 0) {
                e->binding = Expr::Binding::Local;
                e->localId = local;
                e->type = fn->locals[local].type;
                e->lvalue = true;
                return e;
            }
            if (const GlobalDecl *g = findGlobal(e->strValue)) {
                e->binding = Expr::Binding::Global;
                e->type = g->type;
                e->lvalue = true;
                return e;
            }
            err(e->line, "undeclared identifier '" + e->strValue + "'");
          }

          case ExprKind::Unary:
            return checkUnary(std::move(e));

          case ExprKind::Binary:
            return checkBinary(std::move(e));

          case ExprKind::Assign:
            return checkAssign(std::move(e));

          case ExprKind::Cond: {
            e->a = decay(check(std::move(e->a)));
            requireScalar(*e->a, "?: condition");
            e->b = decay(check(std::move(e->b)));
            e->c = decay(check(std::move(e->c)));
            const Type *bt = e->b->type;
            const Type *ct = e->c->type;
            if (bt->isArith() && ct->isArith()) {
                const Type *t = commonType(bt, ct, e->line);
                e->b = castTo(std::move(e->b), t);
                e->c = castTo(std::move(e->c), t);
                e->type = t;
            } else if (bt->isPointer() && ct->isPointer()) {
                e->type = bt;
            } else if (bt == ct) {
                e->type = bt;
            } else {
                err(e->line, "incompatible ?: operand types");
            }
            return e;
          }

          case ExprKind::Call:
            return checkCall(std::move(e));

          case ExprKind::Index: {
            e->a = decay(check(std::move(e->a)));
            e->b = decay(check(std::move(e->b)));
            if (!e->a->type->isPointer())
                err(e->line, "subscripted value is not a pointer/array");
            if (!e->b->type->isInteger())
                err(e->line, "array index must be an integer");
            e->b = castTo(std::move(e->b), intTy());
            e->type = e->a->type->pointee();
            e->lvalue = true;
            return e;
          }

          case ExprKind::Member: {
            e->a = check(std::move(e->a));
            const Type *base = e->a->type;
            if (e->arrow) {
                e->a = decay(std::move(e->a));
                base = e->a->type;
                if (!base->isPointer() || !base->pointee()->isStruct())
                    err(e->line, "-> applied to non-struct-pointer");
                base = base->pointee();
            } else if (!base->isStruct()) {
                err(e->line, ". applied to non-struct");
            }
            const StructField *f = base->record()->findField(e->strValue);
            if (!f)
                err(e->line, "no field '" + e->strValue + "' in struct " +
                                 base->record()->name);
            e->type = f->type;
            e->lvalue = true;
            return e;
          }

          case ExprKind::Cast: {
            e->a = decay(check(std::move(e->a)));
            const Type *to = e->castType;
            const Type *from = e->a->type;
            const bool ok =
                (to->isScalar() && from->isScalar()) || to->isVoid();
            if (!ok)
                err(e->line, "invalid cast from " + from->str() + " to " +
                                 to->str());
            if (to->isPointer() && from->isFp())
                err(e->line, "cannot cast floating point to pointer");
            if (from->isPointer() && to->isFp())
                err(e->line, "cannot cast pointer to floating point");
            e->type = to;
            return e;
          }

          case ExprKind::SizeofType: {
            if (!e->sizeofType) {
                e->a = check(std::move(e->a));
                e->sizeofType = e->a->type;
                e->a.reset();
            }
            e->type = intTy();
            e->intValue = e->sizeofType->size();
            return e;
          }

          case ExprKind::IncDec: {
            e->a = check(std::move(e->a));
            if (!e->a->lvalue || !e->a->type->isScalar())
                err(e->line, "++/-- requires a scalar lvalue");
            e->type = e->a->type;
            return e;
          }
        }
        panic("unhandled expr kind");
    }

    ExprPtr
    checkUnary(ExprPtr e)
    {
        if (e->unOp == UnOp::AddrOf) {
            e->a = check(std::move(e->a));
            if (!e->a->lvalue)
                err(e->line, "& requires an lvalue");
            markAddressTaken(*e->a);
            e->type = prog.types.pointerTo(e->a->type->isArray()
                                               ? e->a->type->pointee()
                                               : e->a->type);
            // &array decays to pointer-to-element for simplicity.
            return e;
        }
        e->a = decay(check(std::move(e->a)));
        const Type *t = e->a->type;
        switch (e->unOp) {
          case UnOp::Deref:
            if (!t->isPointer())
                err(e->line, "* requires a pointer");
            e->type = t->pointee();
            e->lvalue = true;
            return e;
          case UnOp::Neg:
          case UnOp::Plus:
            if (!t->isArith())
                err(e->line, "unary +/- requires arithmetic type");
            if (t->isInteger())
                e->a = castTo(std::move(e->a),
                              t->isUnsigned() ? prog.types.uintTy()
                                              : intTy());
            e->type = e->a->type;
            if (e->unOp == UnOp::Plus)
                return std::move(e->a);
            return e;
          case UnOp::BitNot:
            if (!t->isInteger())
                err(e->line, "~ requires an integer");
            e->a = castTo(std::move(e->a), t->isUnsigned()
                                               ? prog.types.uintTy()
                                               : intTy());
            e->type = e->a->type;
            return e;
          case UnOp::LogNot:
            requireScalar(*e->a, "!");
            e->type = intTy();
            return e;
          default:
            panic("bad unop");
        }
    }

    void
    markAddressTaken(Expr &e)
    {
        if (e.kind == ExprKind::Ident &&
            e.binding == Expr::Binding::Local) {
            fn->locals[e.localId].addressTaken = true;
        }
        // Address of members/indexes roots at the base expression.
        if ((e.kind == ExprKind::Member && !e.arrow) ||
            e.kind == ExprKind::Index) {
            if (e.a)
                markAddressTaken(*e.a);
        }
    }

    ExprPtr
    checkBinary(ExprPtr e)
    {
        const BinOp op = e->binOp;
        if (op == BinOp::LogAnd || op == BinOp::LogOr) {
            e->a = decay(check(std::move(e->a)));
            e->b = decay(check(std::move(e->b)));
            requireScalar(*e->a, "logical operator");
            requireScalar(*e->b, "logical operator");
            e->type = intTy();
            return e;
        }

        e->a = decay(check(std::move(e->a)));
        e->b = decay(check(std::move(e->b)));
        const Type *ta = e->a->type;
        const Type *tb = e->b->type;

        // Pointer arithmetic and comparisons.
        if (op == BinOp::Add || op == BinOp::Sub) {
            if (ta->isPointer() && tb->isInteger()) {
                e->b = castTo(std::move(e->b), intTy());
                e->type = ta;
                return e;
            }
            if (op == BinOp::Add && ta->isInteger() && tb->isPointer()) {
                std::swap(e->a, e->b);
                e->b = castTo(std::move(e->b), intTy());
                e->type = e->a->type;
                return e;
            }
            if (op == BinOp::Sub && ta->isPointer() && tb->isPointer()) {
                if (ta->pointee() != tb->pointee())
                    err(e->line, "pointer subtraction type mismatch");
                e->type = intTy();
                return e;
            }
        }
        if (op == BinOp::Lt || op == BinOp::Gt || op == BinOp::Le ||
            op == BinOp::Ge || op == BinOp::Eq || op == BinOp::Ne) {
            if (ta->isPointer() || tb->isPointer()) {
                if (!(ta->isPointer() && tb->isPointer()) &&
                    !(ta->isPointer() && tb->isInteger()) &&
                    !(ta->isInteger() && tb->isPointer())) {
                    err(e->line, "invalid pointer comparison");
                }
                // Compare as unsigned words.
                e->a = castTo(std::move(e->a), prog.types.uintTy());
                e->b = castTo(std::move(e->b), prog.types.uintTy());
                e->type = intTy();
                return e;
            }
            const Type *t = commonType(ta, tb, e->line);
            e->a = castTo(std::move(e->a), t);
            e->b = castTo(std::move(e->b), t);
            e->type = intTy();
            return e;
        }

        // Shifts: result has the promoted type of the left operand.
        if (op == BinOp::Shl || op == BinOp::Shr) {
            if (!ta->isInteger() || !tb->isInteger())
                err(e->line, "shift requires integers");
            e->a = castTo(std::move(e->a),
                          ta->isUnsigned() ? prog.types.uintTy() : intTy());
            e->b = castTo(std::move(e->b), intTy());
            e->type = e->a->type;
            return e;
        }

        // Bitwise ops: integers only.
        if (op == BinOp::And || op == BinOp::Or || op == BinOp::Xor) {
            if (!ta->isInteger() || !tb->isInteger())
                err(e->line, "bitwise operator requires integers");
            const Type *t = commonType(ta, tb, e->line);
            e->a = castTo(std::move(e->a), t);
            e->b = castTo(std::move(e->b), t);
            e->type = t;
            return e;
        }

        // Remaining arithmetic.
        if (op == BinOp::Rem && (!ta->isInteger() || !tb->isInteger()))
            err(e->line, "% requires integers");
        const Type *t = commonType(ta, tb, e->line);
        e->a = castTo(std::move(e->a), t);
        e->b = castTo(std::move(e->b), t);
        e->type = t;
        return e;
    }

    ExprPtr
    checkAssign(ExprPtr e)
    {
        e->a = check(std::move(e->a));
        if (!e->a->lvalue)
            err(e->line, "assignment requires an lvalue");
        if (e->a->type->isArray())
            err(e->line, "cannot assign to an array");
        e->b = decay(check(std::move(e->b)));
        const Type *lt = e->a->type;
        const Type *rt = e->b->type;

        if (lt->isStruct()) {
            if (e->compound || rt != lt)
                err(e->line, "invalid struct assignment");
            e->type = lt;
            return e;
        }
        if (lt->isPointer()) {
            const bool ok = rt->isPointer() || rt->isInteger();
            if (!ok || (e->compound && e->binOp != BinOp::Add &&
                        e->binOp != BinOp::Sub)) {
                err(e->line, "invalid pointer assignment");
            }
            if (e->compound) {
                // p += n: keep n as int; scaling happens in irgen.
                e->b = castTo(std::move(e->b), intTy());
            }
            e->type = lt;
            return e;
        }
        if (!lt->isArith() || !rt->isScalar())
            err(e->line, "invalid assignment operand types");
        if (rt->isPointer() && !lt->isInteger())
            err(e->line, "cannot assign pointer to float");
        e->b = castTo(std::move(e->b), lt);
        e->type = lt;
        return e;
    }

    ExprPtr
    checkCall(ExprPtr e)
    {
        auto sig = prog.signatures.find(e->strValue);
        if (sig == prog.signatures.end())
            err(e->line, "call to undeclared function '" + e->strValue +
                             "'");
        const FuncSig &fs = sig->second;
        if (e->args.size() != fs.params.size()) {
            err(e->line, "wrong argument count for '" + e->strValue +
                             "' (got " + std::to_string(e->args.size()) +
                             ", want " + std::to_string(fs.params.size()) +
                             ")");
        }
        for (size_t i = 0; i < e->args.size(); ++i) {
            ExprPtr arg = decay(check(std::move(e->args[i])));
            const Type *want = fs.params[i];
            if (want->isStruct()) {
                err(e->line, "struct parameters are not supported; "
                             "pass a pointer");
            }
            if (arg->type != want) {
                if (!(arg->type->isScalar() && want->isScalar()))
                    err(e->line, "bad argument type for '" + e->strValue +
                                     "'");
                arg = castTo(std::move(arg), want);
            }
            e->args[i] = std::move(arg);
        }
        e->type = fs.retType;
        e->binding = Expr::Binding::Function;
        return e;
    }

    // ----- statements -----------------------------------------------------

    void
    checkLocalDeclStmt(Stmt &s)
    {
        for (LocalDecl &d : s.decls) {
            if (d.type->isVoid())
                err(d.line, "variable cannot be void");
            d.localId = declareLocal(d.name, d.type, false, d.line);
            if (d.init) {
                if (d.type->isArray())
                    err(d.line, "array initializer must be a brace list");
                d.init = decay(check(std::move(d.init)));
                if (d.type->isStruct()) {
                    if (d.init->type != d.type)
                        err(d.line, "bad struct initializer");
                } else {
                    d.init = castTo(std::move(d.init), d.type);
                }
            }
            for (ExprPtr &init : d.initList) {
                init = decay(check(std::move(init)));
                const Type *elem = d.type->isArray()
                                       ? d.type->pointee()
                                       : d.type;
                init = castTo(std::move(init), elem);
            }
            if (!d.initList.empty() && d.type->isArray() &&
                static_cast<int>(d.initList.size()) > d.type->arrayLen()) {
                err(d.line, "too many initializers");
            }
        }
    }

    void
    checkStmt(Stmt &s, int loopDepth)
    {
        switch (s.kind) {
          case StmtKind::Block:
            scopes.emplace_back();
            for (StmtPtr &child : s.body)
                checkStmt(*child, loopDepth);
            scopes.pop_back();
            break;
          case StmtKind::If:
            s.cond = decay(check(std::move(s.cond)));
            requireScalar(*s.cond, "if condition");
            checkStmt(*s.thenStmt, loopDepth);
            if (s.elseStmt)
                checkStmt(*s.elseStmt, loopDepth);
            break;
          case StmtKind::While:
          case StmtKind::DoWhile:
            s.cond = decay(check(std::move(s.cond)));
            requireScalar(*s.cond, "loop condition");
            checkStmt(*s.loopBody, loopDepth + 1);
            break;
          case StmtKind::For:
            scopes.emplace_back();
            if (s.forInit)
                checkStmt(*s.forInit, loopDepth);
            if (s.cond) {
                s.cond = decay(check(std::move(s.cond)));
                requireScalar(*s.cond, "loop condition");
            }
            if (s.forStep)
                s.forStep = check(std::move(s.forStep));
            checkStmt(*s.loopBody, loopDepth + 1);
            scopes.pop_back();
            break;
          case StmtKind::Return:
            if (s.expr) {
                if (fn->retType->isVoid())
                    err(s.line, "void function returns a value");
                s.expr = decay(check(std::move(s.expr)));
                s.expr = castTo(std::move(s.expr), fn->retType);
            } else if (!fn->retType->isVoid()) {
                err(s.line, "non-void function returns nothing");
            }
            break;
          case StmtKind::Break:
          case StmtKind::Continue:
            if (loopDepth == 0)
                err(s.line, "break/continue outside a loop");
            break;
          case StmtKind::ExprStmt:
            s.expr = check(std::move(s.expr));
            break;
          case StmtKind::Decl:
            checkLocalDeclStmt(s);
            break;
          case StmtKind::Empty:
            break;
        }
    }

    void
    checkFunction(FuncDecl &f)
    {
        fn = &f;
        scopes.clear();
        scopes.emplace_back();
        for (const Param &p : f.params) {
            if (p.type->isStruct())
                err(p.line, "struct parameters are not supported");
            if (p.type->isArray())
                err(p.line, "array parameters are not supported; "
                            "use a pointer");
            declareLocal(p.name, p.type, true, p.line);
        }
        checkStmt(*f.body, 0);
    }
};

void
checkGlobalInitializers(Program &prog)
{
    // Global initializers must be constants; full folding happens in
    // code generation (which also resolves symbol addresses). Here we
    // only validate shapes.
    for (GlobalDecl &g : prog.globals) {
        if (g.type->isVoid())
            fatal("minic line ", g.line, ": global cannot be void");
        if (g.hasStringInit) {
            if (!g.type->isArray() ||
                g.type->pointee()->kind() != TypeKind::Char) {
                fatal("minic line ", g.line,
                      ": string initializer requires char array");
            }
            if (g.type->arrayLen() <
                static_cast<int>(g.stringInit.size()) + 1) {
                fatal("minic line ", g.line,
                      ": string initializer too long");
            }
        }
        if (!g.initList.empty() && g.type->isArray() &&
            static_cast<int>(g.initList.size()) > g.type->arrayLen()) {
            fatal("minic line ", g.line, ": too many initializers");
        }
    }
}

} // namespace

void
analyze(Program &prog)
{
    // Collect signatures: builtins, then declared functions.
    for (const Builtin &b : builtins) {
        FuncSig sig;
        sig.isBuiltin = true;
        sig.trapCode = b.trapCode;
        const std::string name = b.name;
        if (name == "print_f64") {
            sig.retType = prog.types.voidTy();
            sig.params = {prog.types.doubleTy()};
        } else if (name == "print_str") {
            sig.retType = prog.types.voidTy();
            sig.params = {prog.types.pointerTo(prog.types.charTy())};
        } else if (name == "alloc") {
            sig.retType = prog.types.pointerTo(prog.types.charTy());
            sig.params = {prog.types.intTy()};
        } else if (name == "print_uint") {
            sig.retType = prog.types.voidTy();
            sig.params = {prog.types.uintTy()};
        } else {
            sig.retType = prog.types.voidTy();
            sig.params = {prog.types.intTy()};
        }
        prog.signatures[name] = std::move(sig);
    }

    for (const FuncDecl &f : prog.functions) {
        if (prog.signatures.count(f.name)) {
            auto &sig = prog.signatures[f.name];
            if (sig.isBuiltin)
                fatal("minic line ", f.line, ": '", f.name,
                      "' shadows a builtin");
            // Prototype + definition: check consistency.
            if (sig.retType != f.retType ||
                sig.params.size() != f.params.size()) {
                fatal("minic line ", f.line, ": conflicting declaration of '",
                      f.name, "'");
            }
            continue;
        }
        FuncSig sig;
        sig.retType = f.retType;
        for (const Param &p : f.params)
            sig.params.push_back(p.type);
        prog.signatures[f.name] = std::move(sig);
    }

    checkGlobalInitializers(prog);

    Sema sema{prog};
    for (FuncDecl &f : prog.functions) {
        if (f.body)
            sema.checkFunction(f);
    }
}

} // namespace d16sim::mc
