#include "mc/codegen.hh"

#include <bit>

#include "mc/parser.hh"
#include "support/bits.hh"
#include "support/error.hh"

namespace d16sim::mc
{

using assem::AsmItem;
using assem::DataValue;
using isa::AsmInst;
using isa::Cond;
using isa::Op;
using isa::Reloc;

namespace
{

/** Size/signedness to load opcode. */
Op
loadOp(int size, bool signedLoad)
{
    switch (size) {
      case 1: return signedLoad ? Op::Ldb : Op::Ldbu;
      case 2: return signedLoad ? Op::Ldh : Op::Ldhu;
      case 4: return Op::Ld;
      default: panic("bad load size ", size);
    }
}

Op
storeOp(int size)
{
    switch (size) {
      case 1: return Op::Stb;
      case 2: return Op::Sth;
      case 4: return Op::St;
      default: panic("bad store size ", size);
    }
}

/** Constant folding of global initializer expressions. */
double
evalConstNum(const Expr &e)
{
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::SizeofType:
        return static_cast<double>(e.intValue);
      case ExprKind::FloatLit:
        return e.floatValue;
      case ExprKind::Unary:
        if (e.unOp == UnOp::Neg)
            return -evalConstNum(*e.a);
        if (e.unOp == UnOp::Plus)
            return evalConstNum(*e.a);
        break;
      case ExprKind::Binary: {
        const double a = evalConstNum(*e.a);
        const double b = evalConstNum(*e.b);
        switch (e.binOp) {
          case BinOp::Add: return a + b;
          case BinOp::Sub: return a - b;
          case BinOp::Mul: return a * b;
          case BinOp::Div: return a / b;
          default: break;
        }
        break;
      }
      case ExprKind::Cast:
        return evalConstNum(*e.a);
      default:
        break;
    }
    fatal("minic line ", e.line, ": global initializer is not constant");
}

} // namespace

CodeGen::CodeGen(const Program &prog, const MachineEnv &env)
    : prog_(prog),
      env_(env),
      t_(env.target()),
      d16_(env.target().kind() == isa::IsaKind::D16)
{}

// ---------------------------------------------------------------------
// Data layout
// ---------------------------------------------------------------------

void
CodeGen::layoutGlobals()
{
    // Scalars first (cheap gp-relative reach matters most for them),
    // then aggregates, then string literals.
    auto place = [&](const std::string &name, int size, int align) {
        dataSize_ = static_cast<int32_t>(roundUp(dataSize_, align));
        gpOffsets_[name] = dataSize_;
        dataSize_ += size;
    };
    for (const GlobalDecl &g : prog_.globals)
        if (!g.type->isArray() && !g.type->isStruct())
            place(g.name, g.type->size(), g.type->align());
    for (const GlobalDecl &g : prog_.globals)
        if (g.type->isArray() || g.type->isStruct())
            place(g.name, g.type->size(), std::max(g.type->align(), 4));
    for (size_t i = 0; i < prog_.strings.size(); ++i) {
        place(".Lstr" + std::to_string(i),
              static_cast<int>(prog_.strings[i].size()) + 1, 1);
    }
}

int32_t
CodeGen::gpOffset(const std::string &sym) const
{
    auto it = gpOffsets_.find(sym);
    panicIf(it == gpOffsets_.end(), "unknown global ", sym);
    return it->second;
}

void
CodeGen::emitData()
{
    items_.push_back(AsmItem::section(false));

    auto emitScalar = [&](const Type *t, const Expr *init) {
        AsmItem item;
        switch (t->kind()) {
          case TypeKind::Char: {
            item.kind = assem::ItemKind::Byte;
            const int64_t v =
                init ? static_cast<int64_t>(evalConstNum(*init)) : 0;
            item.values = {DataValue(v & 0xff)};
            break;
          }
          case TypeKind::Float: {
            const float f =
                init ? static_cast<float>(evalConstNum(*init)) : 0.0f;
            item.kind = assem::ItemKind::Word;
            item.values = {
                DataValue(static_cast<int64_t>(std::bit_cast<uint32_t>(f)))};
            break;
          }
          case TypeKind::Double: {
            const double d = init ? evalConstNum(*init) : 0.0;
            const uint64_t bits = std::bit_cast<uint64_t>(d);
            item.kind = assem::ItemKind::Word;
            item.values = {
                DataValue(static_cast<int64_t>(bits & 0xffffffff)),
                DataValue(static_cast<int64_t>(bits >> 32))};
            break;
          }
          case TypeKind::Pointer: {
            item.kind = assem::ItemKind::Word;
            if (!init) {
                item.values = {DataValue(int64_t{0})};
            } else if (init->kind == ExprKind::StringLit) {
                item.values = {DataValue(
                    ".Lstr" + std::to_string(init->intValue))};
            } else if (init->kind == ExprKind::Ident) {
                item.values = {DataValue(init->strValue)};
            } else {
                item.values = {DataValue(
                    static_cast<int64_t>(evalConstNum(*init)))};
            }
            break;
          }
          default: {
            item.kind = assem::ItemKind::Word;
            const int64_t v =
                init ? static_cast<int64_t>(evalConstNum(*init)) : 0;
            item.values = {DataValue(static_cast<uint32_t>(v))};
            break;
          }
        }
        items_.push_back(std::move(item));
    };

    auto emitGlobal = [&](const GlobalDecl &g) {
        items_.push_back(AsmItem::align(std::max(g.type->align(),
                                                 g.type->isArray() ||
                                                         g.type->isStruct()
                                                     ? 4
                                                     : g.type->align())));
        items_.push_back(AsmItem::label(g.name));
        if (g.hasStringInit) {
            items_.push_back(AsmItem::ascii(g.stringInit));
            const int used = static_cast<int>(g.stringInit.size()) + 1;
            if (g.type->size() > used)
                items_.push_back(AsmItem::space(g.type->size() - used));
            return;
        }
        if (!g.initList.empty()) {
            const Type *elem = g.type->isArray() ? g.type->pointee()
                                                 : g.type;
            int emitted = 0;
            if (g.type->isStruct()) {
                // Field-by-field, padding between as needed.
                const StructInfo *rec = g.type->record();
                int off = 0;
                for (size_t i = 0; i < rec->fields.size(); ++i) {
                    const StructField &f = rec->fields[i];
                    if (f.offset > off) {
                        items_.push_back(AsmItem::space(f.offset - off));
                        off = f.offset;
                    }
                    const Expr *init = i < g.initList.size()
                                           ? g.initList[i].get()
                                           : nullptr;
                    emitScalar(f.type, init);
                    off += f.type->size();
                }
                if (g.type->size() > off)
                    items_.push_back(AsmItem::space(g.type->size() - off));
                return;
            }
            for (const ExprPtr &init : g.initList) {
                emitScalar(elem, init.get());
                emitted += elem->size();
            }
            if (g.type->size() > emitted)
                items_.push_back(AsmItem::space(g.type->size() - emitted));
            return;
        }
        if (g.init && g.type->isScalar()) {
            emitScalar(g.type, g.init.get());
            return;
        }
        items_.push_back(AsmItem::space(g.type->size()));
    };

    for (const GlobalDecl &g : prog_.globals)
        if (!g.type->isArray() && !g.type->isStruct())
            emitGlobal(g);
    for (const GlobalDecl &g : prog_.globals)
        if (g.type->isArray() || g.type->isStruct())
            emitGlobal(g);
    for (size_t i = 0; i < prog_.strings.size(); ++i) {
        items_.push_back(AsmItem::label(".Lstr" + std::to_string(i)));
        items_.push_back(AsmItem::ascii(prog_.strings[i]));
    }
}

// ---------------------------------------------------------------------
// Item plumbing
// ---------------------------------------------------------------------

void
CodeGen::put(AsmInst inst)
{
    body_.push_back(AsmItem::instruction(std::move(inst)));
}

void
CodeGen::putLabel(const std::string &name)
{
    body_.push_back(AsmItem::label(name));
}

std::string
CodeGen::blockLabel(int bb) const
{
    return ".L" + fn_->name + "_" + std::to_string(bb);
}

// ---------------------------------------------------------------------
// Constants, pools, addresses
// ---------------------------------------------------------------------

int
CodeGen::poolIndex(const PoolEntry &e)
{
    for (size_t i = 0; i < pool_.size(); ++i) {
        const PoolEntry &p = pool_[i];
        if (p.isSymbol == e.isSymbol && p.value == e.value &&
            p.sym == e.sym && p.addend == e.addend) {
            return static_cast<int>(i);
        }
    }
    pool_.push_back(e);
    return static_cast<int>(pool_.size()) - 1;
}

std::string
CodeGen::poolLabel(int index) const
{
    return ".LP" + fn_->name + "_" + std::to_string(index);
}

void
CodeGen::emitLdcPool(int index)
{
    AsmInst ldc;
    ldc.op = Op::Ldc;
    ldc.label = poolLabel(index);
    ldc.reloc = Reloc::PcRel;
    put(std::move(ldc));
}

void
CodeGen::materializeConst(int phys, int64_t v)
{
    if (env_.mviImmFits(v)) {
        put(AsmInst::ri(Op::MvI, phys, -1, v));
        return;
    }
    if (d16_) {
        PoolEntry e;
        e.value = v;
        emitLdcPool(poolIndex(e));
        if (phys != env_.atReg())
            put(AsmInst::ri(Op::Mv, phys, env_.atReg(), 0));
        return;
    }
    const uint32_t u = static_cast<uint32_t>(v);
    put(AsmInst::ri(Op::MvHI, phys, -1, (u >> 16) & 0xffff));
    if (u & 0xffff)
        put(AsmInst::ri(Op::OrI, phys, phys, u & 0xffff));
}

void
CodeGen::materializeSymbol(int phys, const std::string &sym,
                           int64_t addend)
{
    if (d16_) {
        PoolEntry e;
        e.isSymbol = true;
        e.sym = sym;
        e.addend = addend;
        emitLdcPool(poolIndex(e));
        if (phys != env_.atReg())
            put(AsmInst::ri(Op::Mv, phys, env_.atReg(), 0));
        return;
    }
    AsmInst hi = AsmInst::ri(Op::MvHI, phys, -1, addend);
    hi.label = sym;
    hi.reloc = Reloc::Hi16;
    put(std::move(hi));
    AsmInst lo = AsmInst::ri(Op::OrI, phys, phys, addend);
    lo.label = sym;
    lo.reloc = Reloc::Lo16;
    put(std::move(lo));
}

int32_t
CodeGen::slotDisp(int frameSlot) const
{
    if (isOutgoingArgSlot(frameSlot))
        return 4 * outgoingArgIndex(frameSlot);
    if (isIncomingArgSlot(frameSlot))
        return frameSize_ + 4 * incomingArgIndex(frameSlot);
    panicIf(frameSlot < 0 ||
                frameSlot >= static_cast<int>(slotOffsets_.size()),
            "bad frame slot ", frameSlot);
    return slotOffsets_[frameSlot];
}

CodeGen::MemTarget
CodeGen::resolveAddress(Op op, const Address &addr)
{
    int base = 0;
    int32_t disp = addr.offset;
    switch (addr.kind) {
      case AddrKind::Reg:
        base = reg(addr.base);
        break;
      case AddrKind::Frame:
        base = env_.spReg();
        disp += slotDisp(addr.frameSlot);
        break;
      case AddrKind::Global:
        base = env_.gpReg();
        disp += gpOffset(addr.sym);
        break;
    }
    if (env_.memOffsetFits(op, disp))
        return {base, disp};

    panicIf(!d16_, "DLXe displacement should have been legalized (",
            disp, ")");

    const int at = env_.atReg();
    if (addr.kind == AddrKind::Global) {
        // Absolute address from the constant pool.
        PoolEntry e;
        e.isSymbol = true;
        e.sym = addr.sym;
        e.addend = addr.offset;
        emitLdcPool(poolIndex(e));
        return {at, 0};
    }
    if (fitsSigned(disp, 9)) {
        put(AsmInst::ri(Op::MvI, at, -1, disp));
    } else {
        PoolEntry e;
        e.value = disp;
        emitLdcPool(poolIndex(e));
    }
    put(AsmInst::r3(Op::Add, at, at, base));
    return {at, 0};
}

// ---------------------------------------------------------------------
// Instruction lowering
// ---------------------------------------------------------------------

int
CodeGen::reg(VReg r) const
{
    panicIf(!r.valid(), "use of invalid vreg");
    const int c = alloc_->color[r.id];
    panicIf(c < 0, "use of uncolored vreg v", r.id, " in ", fn_->name);
    return c;
}

void
CodeGen::emitBinary(const IrInst &inst)
{
    static const std::map<IrOp, Op> regOps = {
        {IrOp::Add, Op::Add},   {IrOp::Sub, Op::Sub},
        {IrOp::And, Op::And},   {IrOp::Or, Op::Or},
        {IrOp::Xor, Op::Xor},   {IrOp::Shl, Op::Shl},
        {IrOp::ShrL, Op::Shr},  {IrOp::ShrA, Op::Shra},
        {IrOp::FAdd, Op::FAddS}, {IrOp::FSub, Op::FSubS},
        {IrOp::FMul, Op::FMulS}, {IrOp::FDiv, Op::FDivS},
    };
    const bool isFp = inst.op == IrOp::FAdd || inst.op == IrOp::FSub ||
                      inst.op == IrOp::FMul || inst.op == IrOp::FDiv;
    const int rd = reg(inst.dst);
    const int ra = reg(inst.a);

    if (isFp) {
        Op op = regOps.at(inst.op);
        if (!inst.isSingle) {
            // The S/D pairs are adjacent in the Op enum.
            op = static_cast<Op>(static_cast<int>(op) + 1);
        }
        put(AsmInst::r3(op, rd, ra, reg(inst.b.reg)));
        return;
    }

    if (inst.b.isReg()) {
        put(AsmInst::r3(regOps.at(inst.op), rd, ra, reg(inst.b.reg)));
        return;
    }

    const int64_t imm = inst.b.imm;
    switch (inst.op) {
      case IrOp::Add:
        if (env_.aluImmFits(Op::AddI, imm))
            put(AsmInst::ri(Op::AddI, rd, ra, imm));
        else
            put(AsmInst::ri(Op::SubI, rd, ra, -imm));
        return;
      case IrOp::Sub:
        if (env_.aluImmFits(Op::SubI, imm))
            put(AsmInst::ri(Op::SubI, rd, ra, imm));
        else
            put(AsmInst::ri(Op::AddI, rd, ra, -imm));
        return;
      case IrOp::And:
        put(AsmInst::ri(Op::AndI, rd, ra, imm));
        return;
      case IrOp::Or:
        put(AsmInst::ri(Op::OrI, rd, ra, imm));
        return;
      case IrOp::Xor:
        put(AsmInst::ri(Op::XorI, rd, ra, imm));
        return;
      case IrOp::Shl:
        put(AsmInst::ri(Op::ShlI, rd, ra, imm));
        return;
      case IrOp::ShrL:
        put(AsmInst::ri(Op::ShrI, rd, ra, imm));
        return;
      case IrOp::ShrA:
        put(AsmInst::ri(Op::ShraI, rd, ra, imm));
        return;
      default:
        panic("bad immediate binop");
    }
}

void
CodeGen::emitCompareValue(const IrInst &inst)
{
    if (inst.op == IrOp::FCmp) {
        AsmInst cmp = AsmInst::r3(inst.isSingle ? Op::FCmpS : Op::FCmpD,
                                  -1, reg(inst.a), reg(inst.b.reg));
        cmp.cond = inst.cond;
        put(std::move(cmp));
        put(AsmInst::ri(Op::Rdsr, reg(inst.dst), -1, 0));
        return;
    }
    if (inst.b.isImm()) {
        AsmInst cmp = AsmInst::ri(Op::CmpI, reg(inst.dst), reg(inst.a),
                                  inst.b.imm);
        cmp.cond = inst.cond;
        put(std::move(cmp));
        return;
    }
    if (d16_) {
        AsmInst cmp = AsmInst::cmp(inst.cond, 0, reg(inst.a),
                                   reg(inst.b.reg));
        put(std::move(cmp));
        put(AsmInst::ri(Op::Mv, reg(inst.dst), env_.atReg(), 0));
        return;
    }
    put(AsmInst::cmp(inst.cond, reg(inst.dst), reg(inst.a),
                     reg(inst.b.reg)));
}

void
CodeGen::emitCall(const IrInst &inst)
{
    if (inst.trapCode >= 0) {
        AsmInst t;
        t.op = Op::Trap;
        t.imm = inst.trapCode;
        put(std::move(t));
        return;
    }
    if (d16_) {
        PoolEntry e;
        e.isSymbol = true;
        e.sym = inst.sym;
        emitLdcPool(poolIndex(e));
        put(AsmInst::ri(Op::Jlr, -1, env_.atReg(), 0));
        put(AsmInst::nop());  // delay slot
        return;
    }
    AsmInst jl;
    jl.op = Op::Jl;
    jl.label = inst.sym;
    jl.reloc = Reloc::PcRel;
    put(std::move(jl));
    put(AsmInst::nop());
}

void
CodeGen::emitBranchShape(int testPhys, int thenBB, int elseBB, int nextBB)
{
    auto condBranch = [&](bool sense, int target) {
        AsmInst b = AsmInst::branch(sense ? Op::Bnz : Op::Bz,
                                    d16_ ? 0 : testPhys,
                                    blockLabel(target));
        put(std::move(b));
        put(AsmInst::nop());  // delay slot
    };
    auto jump = [&](int target) {
        AsmInst b;
        b.op = Op::Br;
        b.label = blockLabel(target);
        b.reloc = Reloc::PcRel;
        put(std::move(b));
        put(AsmInst::nop());
    };
    if (elseBB == nextBB) {
        condBranch(true, thenBB);
    } else if (thenBB == nextBB) {
        condBranch(false, elseBB);
    } else {
        condBranch(true, thenBB);
        jump(elseBB);
    }
}

void
CodeGen::emitTerminator(const IrInst &inst, int nextBB)
{
    switch (inst.op) {
      case IrOp::Ret:
        emitEpilogue();
        return;

      case IrOp::Jmp:
        if (inst.thenBB != nextBB) {
            AsmInst b;
            b.op = Op::Br;
            b.label = blockLabel(inst.thenBB);
            b.reloc = Reloc::PcRel;
            put(std::move(b));
            put(AsmInst::nop());
        }
        return;

      case IrOp::Br: {
        int testPhys = reg(inst.a);
        if (d16_ && testPhys != env_.atReg()) {
            put(AsmInst::ri(Op::Mv, env_.atReg(), testPhys, 0));
            testPhys = env_.atReg();
        }
        emitBranchShape(testPhys, inst.thenBB, inst.elseBB, nextBB);
        return;
      }

      case IrOp::BrCmp: {
        int testPhys;
        if (inst.b.isImm()) {
            AsmInst cmp = AsmInst::ri(Op::CmpI, reg(inst.dst),
                                      reg(inst.a), inst.b.imm);
            cmp.cond = inst.cond;
            put(std::move(cmp));
            testPhys = reg(inst.dst);
        } else if (d16_) {
            put(AsmInst::cmp(inst.cond, 0, reg(inst.a),
                             reg(inst.b.reg)));
            testPhys = 0;
        } else {
            put(AsmInst::cmp(inst.cond, reg(inst.dst), reg(inst.a),
                             reg(inst.b.reg)));
            testPhys = reg(inst.dst);
        }
        emitBranchShape(testPhys, inst.thenBB, inst.elseBB, nextBB);
        return;
      }

      case IrOp::BrFCmp: {
        AsmInst cmp = AsmInst::r3(inst.isSingle ? Op::FCmpS : Op::FCmpD,
                                  -1, reg(inst.a), reg(inst.b.reg));
        cmp.cond = inst.cond;
        put(std::move(cmp));
        const int testPhys = d16_ ? env_.atReg() : reg(inst.dst);
        put(AsmInst::ri(Op::Rdsr, testPhys, -1, 0));
        emitBranchShape(testPhys, inst.thenBB, inst.elseBB, nextBB);
        return;
      }

      default:
        panic("not a terminator");
    }
}

void
CodeGen::emitInst(const IrInst &inst)
{
    // Skip pure instructions whose destination was never colored (it
    // was unused and survived DCE in a corner case).
    const VReg d = defOf(inst);
    if (d.valid() && alloc_->color[d.id] < 0 && inst.op != IrOp::Call)
        return;

    switch (inst.op) {
      case IrOp::Mov: {
        const int rd = reg(inst.dst);
        const int rs = reg(inst.a);
        if (rd == rs)
            return;  // coalesced away
        if (inst.dst.cls == RegClass::Fp)
            put(AsmInst::ri(Op::FMv, rd, rs, 0));
        else
            put(AsmInst::ri(Op::Mv, rd, rs, 0));
        return;
      }

      case IrOp::MovImm:
        materializeConst(reg(inst.dst), inst.imm);
        return;

      case IrOp::Add: case IrOp::Sub: case IrOp::And: case IrOp::Or:
      case IrOp::Xor: case IrOp::Shl: case IrOp::ShrL: case IrOp::ShrA:
      case IrOp::FAdd: case IrOp::FSub: case IrOp::FMul: case IrOp::FDiv:
        emitBinary(inst);
        return;

      case IrOp::Neg:
        put(AsmInst::ri(Op::Neg, reg(inst.dst), reg(inst.a), 0));
        return;
      case IrOp::Not:
        put(AsmInst::ri(Op::Inv, reg(inst.dst), reg(inst.a), 0));
        return;

      case IrOp::FNeg:
        put(AsmInst::ri(inst.isSingle ? Op::FNegS : Op::FNegD,
                        reg(inst.dst), reg(inst.a), 0));
        return;

      case IrOp::Cmp:
      case IrOp::FCmp:
        emitCompareValue(inst);
        return;

      case IrOp::Load: {
        const Op op = loadOp(inst.size, inst.signedLoad);
        const MemTarget m = resolveAddress(op, inst.addr);
        put(AsmInst::ri(op, reg(inst.dst), m.base, m.disp));
        return;
      }

      case IrOp::Store: {
        const Op op = storeOp(inst.size);
        const MemTarget m = resolveAddress(op, inst.addr);
        AsmInst st;
        st.op = op;
        st.rs1 = m.base;
        st.rs2 = reg(inst.a);
        st.imm = m.disp;
        put(std::move(st));
        return;
      }

      case IrOp::AddrOf: {
        const int rd = reg(inst.dst);
        int base;
        int32_t disp = inst.addr.offset;
        if (inst.addr.kind == AddrKind::Frame) {
            base = env_.spReg();
            disp += slotDisp(inst.addr.frameSlot);
        } else {
            panicIf(inst.addr.kind != AddrKind::Global,
                    "AddrOf of register address");
            base = env_.gpReg();
            disp += gpOffset(inst.addr.sym);
        }
        if (disp == 0) {
            if (rd != base)
                put(AsmInst::ri(Op::Mv, rd, base, 0));
            return;
        }
        if (!d16_) {
            if (fitsSigned(disp, 16)) {
                put(AsmInst::ri(Op::AddI, rd, base, disp));
            } else {
                materializeConst(rd, disp);
                put(AsmInst::r3(Op::Add, rd, rd, base));
            }
            return;
        }
        if (disp > 0 && disp <= 31) {
            if (rd != base)
                put(AsmInst::ri(Op::Mv, rd, base, 0));
            put(AsmInst::ri(Op::AddI, rd, rd, disp));
            return;
        }
        if (inst.addr.kind == AddrKind::Global) {
            materializeSymbol(rd, inst.addr.sym, inst.addr.offset);
            return;
        }
        materializeConst(rd, disp);
        put(AsmInst::r3(Op::Add, rd, rd, base));
        return;
      }

      case IrOp::MifL:
        put(AsmInst::ri(Op::MifL, reg(inst.dst), reg(inst.a), 0));
        return;
      case IrOp::MifH:
        put(AsmInst::ri(Op::MifH, reg(inst.dst), reg(inst.a), 0));
        return;
      case IrOp::MfiL:
        put(AsmInst::ri(Op::MfiL, reg(inst.dst), reg(inst.a), 0));
        return;
      case IrOp::MfiH:
        put(AsmInst::ri(Op::MfiH, reg(inst.dst), reg(inst.a), 0));
        return;

      case IrOp::CvtRawIF:
        put(AsmInst::ri(inst.isSingle ? Op::CvtSiSf : Op::CvtSiDf,
                        reg(inst.dst), reg(inst.a), 0));
        return;
      case IrOp::CvtRawFI:
        put(AsmInst::ri(inst.srcSingle ? Op::CvtSfSi : Op::CvtDfSi,
                        reg(inst.dst), reg(inst.a), 0));
        return;
      case IrOp::CvtFF:
        put(AsmInst::ri(inst.isSingle ? Op::CvtDfSf : Op::CvtSfDf,
                        reg(inst.dst), reg(inst.a), 0));
        return;

      case IrOp::Call:
        emitCall(inst);
        return;

      default:
        panic("unexpected IR op in emission: ", dumpInst(inst));
    }
}

// ---------------------------------------------------------------------
// Frame, prologue, epilogue
// ---------------------------------------------------------------------

void
CodeGen::frameStore(int phys, int32_t disp)
{
    const int sp = env_.spReg();
    if (env_.memOffsetFits(Op::St, disp)) {
        AsmInst st;
        st.op = Op::St;
        st.rs1 = sp;
        st.rs2 = phys;
        st.imm = disp;
        put(std::move(st));
        return;
    }
    panicIf(!d16_, "frame displacement should fit on DLXe");
    panicIf(phys == env_.atReg(),
            "cannot spill at through a far frame slot");
    if (fitsSigned(disp, 9)) {
        put(AsmInst::ri(Op::MvI, env_.atReg(), -1, disp));
    } else {
        PoolEntry e;
        e.value = disp;
        emitLdcPool(poolIndex(e));
    }
    put(AsmInst::r3(Op::Add, env_.atReg(), env_.atReg(), sp));
    AsmInst st;
    st.op = Op::St;
    st.rs1 = env_.atReg();
    st.rs2 = phys;
    st.imm = 0;
    put(std::move(st));
}

void
CodeGen::frameLoad(int phys, int32_t disp)
{
    const int sp = env_.spReg();
    if (env_.memOffsetFits(Op::Ld, disp)) {
        put(AsmInst::ri(Op::Ld, phys, sp, disp));
        return;
    }
    panicIf(!d16_, "frame displacement should fit on DLXe");
    panicIf(phys == env_.atReg(),
            "cannot reload at through a far frame slot");
    if (fitsSigned(disp, 9)) {
        put(AsmInst::ri(Op::MvI, env_.atReg(), -1, disp));
    } else {
        PoolEntry e;
        e.value = disp;
        emitLdcPool(poolIndex(e));
    }
    put(AsmInst::r3(Op::Add, env_.atReg(), env_.atReg(), sp));
    put(AsmInst::ri(Op::Ld, phys, env_.atReg(), 0));
}

void
CodeGen::emitPrologue()
{
    const int sp = env_.spReg();
    if (frameSize_ > 0) {
        if (env_.aluImmFits(Op::SubI, frameSize_)) {
            put(AsmInst::ri(Op::SubI, sp, sp, frameSize_));
        } else if (!d16_) {
            put(AsmInst::ri(Op::AddI, sp, sp, -frameSize_));
        } else {
            materializeConst(env_.atReg(), frameSize_);
            put(AsmInst::r3(Op::Sub, sp, sp, env_.atReg()));
        }
    }
    for (const auto &[phys, disp] : savedInt_)
        frameStore(phys, disp);
    for (const auto &[phys, disp] : savedFp_) {
        put(AsmInst::ri(Op::MfiL, fpSaveScratch_, phys, 0));
        frameStore(fpSaveScratch_, disp);
        put(AsmInst::ri(Op::MfiH, fpSaveScratch_, phys, 0));
        frameStore(fpSaveScratch_, disp + 4);
    }
    if (raOffset_ >= 0)
        frameStore(env_.raReg(), raOffset_);
}

void
CodeGen::emitEpilogue()
{
    const int sp = env_.spReg();
    // FP restores first (they clobber the integer scratch), then the
    // integer callee-saved registers (restoring the scratch itself),
    // then ra.
    for (const auto &[phys, disp] : savedFp_) {
        frameLoad(fpSaveScratch_, disp);
        put(AsmInst::ri(Op::MifL, phys, fpSaveScratch_, 0));
        frameLoad(fpSaveScratch_, disp + 4);
        put(AsmInst::ri(Op::MifH, phys, fpSaveScratch_, 0));
    }
    for (const auto &[phys, disp] : savedInt_)
        frameLoad(phys, disp);
    if (raOffset_ >= 0)
        frameLoad(env_.raReg(), raOffset_);
    if (frameSize_ > 0) {
        if (env_.aluImmFits(Op::AddI, frameSize_)) {
            put(AsmInst::ri(Op::AddI, sp, sp, frameSize_));
        } else if (!d16_) {
            put(AsmInst::ri(Op::AddI, sp, sp, frameSize_));
        } else {
            materializeConst(env_.atReg(), frameSize_);
            put(AsmInst::r3(Op::Add, sp, sp, env_.atReg()));
        }
    }
    put(AsmInst::ri(Op::Jr, -1, env_.raReg(), 0));
    put(AsmInst::nop());  // delay slot
}

void
CodeGen::emitFunction(const IrFunction &fn, const Allocation &alloc)
{
    fn_ = &fn;
    alloc_ = &alloc;
    pool_.clear();
    body_.clear();
    savedInt_.clear();
    savedFp_.clear();
    raOffset_ = -1;

    hasCalls_ = false;
    for (const BasicBlock &bb : fn.blocks)
        for (const IrInst &inst : bb.insts)
            if (inst.op == IrOp::Call && inst.trapCode < 0)
                hasCalls_ = true;

    // Frame layout (low to high): outgoing args, saved registers, ra,
    // then local slots. Keeping the save area low keeps its
    // displacements inside D16's 124-byte window.
    int32_t off = alloc.outgoingArgBytes;
    std::vector<int> savedIntRegs = alloc.usedCalleeSavedInt;
    if (!d16_ && !alloc.usedCalleeSavedFp.empty() && savedIntRegs.empty()) {
        // Need an integer scratch to shuttle FP saves.
        savedIntRegs.push_back(
            env_.allocatable(RegClass::Int).back());
    }
    for (int phys : savedIntRegs) {
        savedInt_.emplace_back(phys, off);
        off += 4;
    }
    fpSaveScratch_ = d16_ ? env_.atReg()
                          : (savedInt_.empty() ? -1 : savedInt_[0].first);
    for (int phys : alloc.usedCalleeSavedFp) {
        off = static_cast<int32_t>(roundUp(off, 8));
        savedFp_.emplace_back(phys, off);
        off += 8;
    }
    if (hasCalls_) {
        raOffset_ = off;
        off += 4;
    }
    slotOffsets_.assign(fn.slots.size(), 0);
    for (size_t i = 0; i < fn.slots.size(); ++i) {
        off = static_cast<int32_t>(roundUp(off, fn.slots[i].align));
        slotOffsets_[i] = off;
        off += fn.slots[i].size;
    }
    frameSize_ = static_cast<int>(roundUp(off, 8));

    emitPrologue();
    const int nBlocks = static_cast<int>(fn.blocks.size());
    for (int b = 0; b < nBlocks; ++b) {
        putLabel(blockLabel(b));
        const BasicBlock &bb = fn.blocks[b];
        panicIf(bb.insts.empty(), "empty block in emission");
        for (size_t i = 0; i + 1 < bb.insts.size(); ++i)
            emitInst(bb.insts[i]);
        emitTerminator(bb.insts.back(), b + 1 < nBlocks ? b + 1 : -1);
    }

    // Splice: alignment, the function's constant pool (reachable
    // backward from every ldc in the body), the entry label, the body.
    items_.push_back(AsmItem::align(4));
    for (size_t i = 0; i < pool_.size(); ++i) {
        items_.push_back(AsmItem::label(poolLabel(static_cast<int>(i))));
        const PoolEntry &e = pool_[i];
        items_.push_back(AsmItem::word(
            {e.isSymbol ? DataValue(e.sym, e.addend)
                        : DataValue(e.value)}));
    }
    items_.push_back(AsmItem::label(fn.name));
    for (AsmItem &item : body_)
        items_.push_back(std::move(item));
    fn_ = nullptr;
}

} // namespace d16sim::mc
