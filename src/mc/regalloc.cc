#include "mc/regalloc.hh"

#include <cstdio>
#include <cstdlib>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "mc/liveness.hh"
#include "support/error.hh"

namespace d16sim::mc
{

namespace
{

IrInst
makeMov(VReg dst, VReg src)
{
    IrInst m;
    m.op = IrOp::Mov;
    m.dst = dst;
    m.a = src;
    return m;
}

} // namespace

void
lowerCallsAbi(IrFunction &fn, const MachineEnv &env)
{
    // Entry: parameters arrive in precolored registers (or on the
    // stack beyond the register count).
    {
        std::vector<IrInst> prologue;
        int intIdx = 0, fpIdx = 0;
        const auto &iArgs = env.argRegs(RegClass::Int);
        const auto &fArgs = env.argRegs(RegClass::Fp);
        int stackIdx = 0;
        for (VReg p : fn.params) {
            const bool isInt = p.cls == RegClass::Int;
            int &idx = isInt ? intIdx : fpIdx;
            const auto &regs = isInt ? iArgs : fArgs;
            if (idx < static_cast<int>(regs.size())) {
                const VReg pin = fn.newReg(p.cls);
                fn.setPrecolor(pin, regs[idx]);
                prologue.push_back(makeMov(p, pin));
                ++idx;
            } else {
                if (!isInt)
                    fatal("too many floating-point parameters in ",
                          fn.name);
                IrInst load;
                load.op = IrOp::Load;
                load.dst = p;
                load.addr = Address::frame(incomingArgSlot(stackIdx));
                load.size = 4;
                prologue.push_back(std::move(load));
                ++stackIdx;
            }
        }
        fn.blocks[0].insts.insert(fn.blocks[0].insts.begin(),
                                  std::make_move_iterator(prologue.begin()),
                                  std::make_move_iterator(prologue.end()));
    }

    for (BasicBlock &bb : fn.blocks) {
        std::vector<IrInst> out;
        out.reserve(bb.insts.size());
        for (IrInst &inst : bb.insts) {
            if (inst.op == IrOp::Ret && inst.a.valid()) {
                const VReg pret = fn.newReg(inst.a.cls);
                fn.setPrecolor(pret, env.retReg(inst.a.cls));
                out.push_back(makeMov(pret, inst.a));
                inst.a = pret;
                out.push_back(std::move(inst));
                continue;
            }
            if (inst.op != IrOp::Call) {
                out.push_back(std::move(inst));
                continue;
            }

            // Arguments into precolored registers / outgoing area.
            std::vector<VReg> newArgs;
            int intIdx = 0, fpIdx = 0, stackIdx = 0;
            const auto &iArgs = env.argRegs(RegClass::Int);
            const auto &fArgs = env.argRegs(RegClass::Fp);
            for (VReg arg : inst.args) {
                const bool isInt = arg.cls == RegClass::Int;
                int &idx = isInt ? intIdx : fpIdx;
                const auto &regs = isInt ? iArgs : fArgs;
                if (idx < static_cast<int>(regs.size())) {
                    const VReg p = fn.newReg(arg.cls);
                    fn.setPrecolor(p, regs[idx]);
                    out.push_back(makeMov(p, arg));
                    newArgs.push_back(p);
                    ++idx;
                } else {
                    if (!isInt)
                        fatal("too many floating-point arguments to ",
                              inst.sym);
                    IrInst st;
                    st.op = IrOp::Store;
                    st.a = arg;
                    st.addr =
                        Address::frame(outgoingArgSlot(stackIdx));
                    st.size = 4;
                    out.push_back(std::move(st));
                    ++stackIdx;
                }
            }
            inst.args = std::move(newArgs);

            // Result out of the precolored return register.
            if (inst.dst.valid()) {
                const VReg pret = fn.newReg(inst.dst.cls);
                fn.setPrecolor(pret, env.retReg(inst.dst.cls));
                const VReg realDst = inst.dst;
                inst.dst = pret;
                out.push_back(std::move(inst));
                out.push_back(makeMov(realDst, pret));
                continue;
            }
            out.push_back(std::move(inst));
        }
        bb.insts = std::move(out);
    }
}

namespace
{

/** The interference-graph colorer for one attempt. */
struct Colorer
{
    IrFunction &fn;
    const MachineEnv &env;

    int n = 0;
    std::vector<std::set<int>> adj;
    std::vector<int> degree;
    std::vector<bool> crossesCall;
    std::vector<double> spillCost;
    std::vector<int> loopDepth;  //!< per block

    // Union-find for coalescing.
    std::vector<int> alias;

    int
    find(int v)
    {
        while (alias[v] != v)
            v = alias[v] = alias[alias[v]];
        return v;
    }

    bool
    precolored(int v) const
    {
        return fn.precolorOf(v) >= 0;
    }

    void
    addEdge(int u, int v)
    {
        u = find(u);
        v = find(v);
        if (u == v)
            return;
        if (fn.vregClass[u] != fn.vregClass[v])
            return;
        if (adj[u].insert(v).second) {
            adj[v].insert(u);
            ++degree[u];
            ++degree[v];
        }
    }

    void
    computeLoopDepth()
    {
        const int nb = static_cast<int>(fn.blocks.size());
        loopDepth.assign(nb, 0);
        std::vector<std::vector<int>> preds(nb);
        for (int b = 0; b < nb; ++b)
            for (int s : fn.blocks[b].successors())
                preds[s].push_back(b);
        for (int header = 0; header < nb; ++header) {
            std::vector<int> latches;
            for (int p : preds[header])
                if (p >= header)
                    latches.push_back(p);
            if (latches.empty())
                continue;
            std::vector<bool> inLoop(nb, false);
            inLoop[header] = true;
            std::vector<int> work;
            for (int l : latches) {
                if (!inLoop[l]) {
                    inLoop[l] = true;
                    work.push_back(l);
                }
            }
            while (!work.empty()) {
                const int b = work.back();
                work.pop_back();
                if (b == header)
                    continue;
                for (int p : preds[b]) {
                    if (!inLoop[p]) {
                        inLoop[p] = true;
                        work.push_back(p);
                    }
                }
            }
            for (int b = 0; b < nb; ++b)
                if (inLoop[b])
                    ++loopDepth[b];
        }
    }

    void
    build()
    {
        n = fn.numVRegs();
        adj.assign(n, {});
        degree.assign(n, 0);
        crossesCall.assign(n, false);
        spillCost.assign(n, 0.0);
        alias.resize(n);
        for (int i = 0; i < n; ++i)
            alias[i] = i;

        computeLoopDepth();
        const Liveness lv = computeLiveness(fn);

        for (size_t b = 0; b < fn.blocks.size(); ++b) {
            RegSet live = lv.liveOut[b];
            const double weight =
                std::min(1e9, std::pow(10.0, loopDepth[b]));
            auto &insts = fn.blocks[b].insts;
            for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
                const IrInst &inst = *it;
                const VReg d = defOf(inst);

                if (inst.op == IrOp::Call && inst.trapCode < 0) {
                    // Everything live across a real call must avoid
                    // caller-saved registers (traps preserve
                    // registers other than their r2/f2 interface).
                    RegSet after = live;
                    if (d.valid())
                        after.remove(d.id);
                    after.forEach(
                        [&](int id) { crossesCall[id] = true; });
                }

                if (d.valid()) {
                    spillCost[d.id] += weight;
                    live.forEach([&](int id) {
                        if (id != d.id) {
                            // Move sources do not interfere with the
                            // destination (coalescing candidates).
                            if (inst.op == IrOp::Mov && inst.a.valid() &&
                                inst.a.id == id) {
                                return;
                            }
                            addEdge(d.id, id);
                        }
                    });
                    live.remove(d.id);
                }
                // Two-address tie: the second operand must not share
                // the destination's register.
                if (env.twoAddress() && d.valid() && inst.b.isReg() &&
                    inst.a.valid() && inst.a.id == d.id) {
                    addEdge(d.id, inst.b.reg.id);
                }
                forEachUse(inst, [&](VReg r) {
                    spillCost[r.id] += weight;
                    live.add(r.id);
                });
            }
        }
    }

    /** Conservative (Briggs) coalescing of move-related nodes. */
    int
    coalesce()
    {
        int merged = 0;
        bool changed = true;
        while (changed) {
            changed = false;
            for (BasicBlock &bb : fn.blocks) {
                for (IrInst &inst : bb.insts) {
                    if (inst.op != IrOp::Mov || !inst.a.valid() ||
                        !inst.dst.valid()) {
                        continue;
                    }
                    int u = find(inst.dst.id);
                    int v = find(inst.a.id);
                    if (u == v)
                        continue;
                    if (fn.vregClass[u] != fn.vregClass[v])
                        continue;
                    if (adj[u].count(v))
                        continue;  // interfere: cannot merge
                    if (precolored(u) && precolored(v))
                        continue;
                    // Merge into the precolored node if any.
                    if (precolored(v))
                        std::swap(u, v);
                    if (precolored(u)) {
                        // Merging v into a fixed register u is only
                        // safe if v never interferes with another node
                        // bound to the same register, and the register
                        // remains legal across any calls v spans.
                        const int phys = fn.precolorOf(u);
                        const RegClass cls = fn.vregClass[u];
                        if (crossesCall[find(v)] &&
                            !env.isCalleeSaved(phys, cls)) {
                            continue;
                        }
                        bool clash = false;
                        for (int w : adj[v]) {
                            const int rw = find(w);
                            if (rw != u && precolored(rw) &&
                                fn.precolorOf(rw) == phys) {
                                clash = true;
                                break;
                            }
                        }
                        if (clash)
                            continue;
                    }
                    // Briggs test: combined node has < K significant
                    // neighbors.
                    const auto &pool = env.allocatable(
                        fn.vregClass[u] == RegClass::Int
                            ? RegClass::Int
                            : RegClass::Fp);
                    const int k = static_cast<int>(pool.size());
                    std::set<int> combined;
                    int significant = 0;
                    for (int w : adj[u])
                        combined.insert(find(w));
                    for (int w : adj[v])
                        combined.insert(find(w));
                    combined.erase(u);
                    combined.erase(v);
                    for (int w : combined)
                        if (degreeOf(w) >= k || precolored(w))
                            ++significant;
                    if (significant >= k)
                        continue;
                    // Merge v into u.
                    alias[v] = u;
                    crossesCall[u] =
                        crossesCall[u] || crossesCall[v];
                    spillCost[u] += spillCost[v];
                    for (int w : adj[v]) {
                        const int rw = find(w);
                        if (rw != u) {
                            adj[u].insert(rw);
                            adj[rw].erase(v);
                            adj[rw].insert(u);
                        } else {
                            adj[rw].erase(v);
                        }
                    }
                    adj[v].clear();
                    degree[u] = static_cast<int>(adj[u].size());
                    ++merged;
                    changed = true;
                }
            }
        }
        return merged;
    }

    int
    degreeOf(int v)
    {
        int d = 0;
        for (int w : adj[v])
            if (find(w) != v)
                ++d;
        return d;
    }

    std::vector<int>
    allowedColors(int v) const
    {
        const RegClass cls = fn.vregClass[v];
        std::vector<int> colors;
        for (int r : env.allocatable(cls)) {
            if (crossesCall[v] && !env.isCalleeSaved(r, cls))
                continue;
            colors.push_back(r);
        }
        return colors;
    }

    /** Color; returns spilled representative nodes (empty = success).
     *  On success fills `color` for every representative. */
    std::vector<int>
    select(std::vector<int> &color)
    {
        color.assign(n, -1);
        std::vector<int> reps;
        for (int v = 0; v < n; ++v)
            if (find(v) == v && (adj[v].size() || isUsed(v)))
                reps.push_back(v);

        // Precolored get their colors immediately.
        for (int v : reps)
            if (precolored(v))
                color[v] = fn.precolorOf(v);

        // Simplify: repeatedly remove min-degree uncolored nodes.
        std::vector<int> stack;
        std::set<int> removed;
        std::vector<int> work;
        for (int v : reps)
            if (!precolored(v))
                work.push_back(v);

        auto liveDegree = [&](int v) {
            int d = 0;
            for (int w : adj[v])
                if (!removed.count(find(w)))
                    ++d;
            return d;
        };

        while (removed.size() < work.size()) {
            // Pick a node with degree < K if possible, else the one
            // with the lowest spill cost / degree (optimistic push).
            int best = -1;
            bool bestLow = false;
            double bestScore = 0;
            for (int v : work) {
                if (removed.count(v))
                    continue;
                const int k =
                    static_cast<int>(allowedColors(v).size());
                const int d = liveDegree(v);
                if (d < k) {
                    best = v;
                    bestLow = true;
                    break;
                }
                const double score =
                    spillCost[v] / std::max(1, d);
                if (best < 0 || score < bestScore) {
                    best = v;
                    bestScore = score;
                }
            }
            (void)bestLow;
            stack.push_back(best);
            removed.insert(best);
        }

        // Select in reverse order.
        std::vector<int> spilled;
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            const int v = *it;
            std::set<int> taken;
            for (int w : adj[v]) {
                const int rw = find(w);
                if (color[rw] >= 0)
                    taken.insert(color[rw]);
            }
            int chosen = -1;
            for (int c : allowedColors(v)) {
                if (!taken.count(c)) {
                    chosen = c;
                    break;
                }
            }
            if (chosen < 0)
                spilled.push_back(v);
            else
                color[v] = chosen;
        }
        return spilled;
    }

    bool
    isUsed(int v) const
    {
        return spillCost[v] > 0 || precolored(v);
    }
};

/** Rewrite a spilled vreg into load/store around each use/def. */
void
rewriteSpills(IrFunction &fn, const std::vector<int> &spilledIds,
              const std::vector<int> &aliasRoot)
{
    // Map every vreg whose representative spilled to one slot
    // (FP registers are 64 bits wide and need 8-byte slots).
    std::map<int, int> slotOf;  // representative -> frame slot
    for (int rep : spilledIds) {
        const bool fp = fn.vregClass[rep] == RegClass::Fp;
        slotOf[rep] = fn.newSlot(fp ? 8 : 4, fp ? 8 : 4, "spill");
    }

    auto spillSlot = [&](VReg r) -> int {
        auto it = slotOf.find(aliasRoot[r.id]);
        return it == slotOf.end() ? -1 : it->second;
    };

    for (BasicBlock &bb : fn.blocks) {
        std::vector<IrInst> out;
        out.reserve(bb.insts.size());
        for (IrInst &inst : bb.insts) {
            // Reload uses.
            std::map<int, VReg> reloaded;
            auto reload = [&](VReg &r) {
                const int slot = spillSlot(r);
                if (slot < 0)
                    return;
                auto it = reloaded.find(r.id);
                if (it != reloaded.end()) {
                    r = it->second;
                    return;
                }
                const VReg t = fn.newReg(r.cls);
                if (r.cls == RegClass::Fp) {
                    // 64-bit reload through two words and mif pairs.
                    for (int half = 0; half < 2; ++half) {
                        const VReg w = fn.newReg(RegClass::Int);
                        IrInst ld;
                        ld.op = IrOp::Load;
                        ld.dst = w;
                        ld.addr = Address::frame(slot, 4 * half);
                        ld.size = 4;
                        out.push_back(std::move(ld));
                        IrInst mif;
                        mif.op = half ? IrOp::MifH : IrOp::MifL;
                        mif.dst = t;
                        mif.a = w;
                        out.push_back(std::move(mif));
                    }
                } else {
                    IrInst ld;
                    ld.op = IrOp::Load;
                    ld.dst = t;
                    ld.addr = Address::frame(slot);
                    ld.size = 4;
                    out.push_back(std::move(ld));
                }
                reloaded[r.id] = t;
                r = t;
            };
            if (inst.a.valid() && spillSlot(inst.a) >= 0)
                reload(inst.a);
            if (inst.b.isReg() && spillSlot(inst.b.reg) >= 0)
                reload(inst.b.reg);
            if (inst.addr.kind == AddrKind::Reg &&
                inst.addr.base.valid() &&
                spillSlot(inst.addr.base) >= 0) {
                reload(inst.addr.base);
            }
            for (VReg &arg : inst.args)
                if (spillSlot(arg) >= 0)
                    reload(arg);

            // Spill definitions. A terminator's destination (a DLXe
            // fused-compare temp) dies immediately: redirect it to a
            // fresh temp without a store so the block still ends in
            // the terminator.
            if (inst.isTerminator() && defOf(inst).valid() &&
                spillSlot(defOf(inst)) >= 0) {
                inst.dst = fn.newReg(inst.dst.cls);
                out.push_back(std::move(inst));
                continue;
            }
            const VReg d = defOf(inst);
            const int dslot = d.valid() ? spillSlot(d) : -1;
            if (dslot >= 0) {
                // Reuse the reload temp when the instruction also read
                // this register (two-address ties and MifH partial
                // updates stay intact).
                VReg t;
                auto prev = reloaded.find(d.id);
                if (prev != reloaded.end())
                    t = prev->second;
                else
                    t = fn.newReg(d.cls);
                // MifH partially updates its destination, so the
                // previous value must be present in the temp.
                if (inst.op == IrOp::MifH && prev == reloaded.end()) {
                    for (int half = 0; half < 2; ++half) {
                        const VReg w = fn.newReg(RegClass::Int);
                        IrInst ld;
                        ld.op = IrOp::Load;
                        ld.dst = w;
                        ld.addr = Address::frame(dslot, 4 * half);
                        ld.size = 4;
                        out.push_back(std::move(ld));
                        IrInst mif;
                        mif.op = half ? IrOp::MifH : IrOp::MifL;
                        mif.dst = t;
                        mif.a = w;
                        out.push_back(std::move(mif));
                    }
                }
                inst.dst = t;
                out.push_back(std::move(inst));
                if (d.cls == RegClass::Fp) {
                    for (int half = 0; half < 2; ++half) {
                        const VReg w = fn.newReg(RegClass::Int);
                        IrInst mfi;
                        mfi.op = half ? IrOp::MfiH : IrOp::MfiL;
                        mfi.dst = w;
                        mfi.a = t;
                        out.push_back(std::move(mfi));
                        IrInst st;
                        st.op = IrOp::Store;
                        st.a = w;
                        st.addr = Address::frame(dslot, 4 * half);
                        st.size = 4;
                        out.push_back(std::move(st));
                    }
                } else {
                    IrInst st;
                    st.op = IrOp::Store;
                    st.a = t;
                    st.addr = Address::frame(dslot);
                    st.size = 4;
                    out.push_back(std::move(st));
                }
                continue;
            }
            out.push_back(std::move(inst));
        }
        bb.insts = std::move(out);
    }
}

} // namespace

Allocation
allocateRegisters(IrFunction &fn, const MachineEnv &env)
{
    Allocation result;

    for (int attempt = 0;; ++attempt) {
        panicIf(attempt > 16, "register allocation failed to converge in ",
                fn.name);
        const bool dbg = getenv("D16_DEBUG_COMPILE") != nullptr;
        if (dbg)
            fprintf(stderr, "[ra] attempt %d: %d vregs, build\n", attempt,
                    fn.numVRegs());
        Colorer col{fn, env};
        col.build();
        if (dbg)
            fprintf(stderr, "[ra] coalesce\n");
        result.coalescedMoves += col.coalesce();
        if (dbg)
            fprintf(stderr, "[ra] select\n");
        std::vector<int> color;
        const std::vector<int> spilled = col.select(color);
        if (dbg)
            fprintf(stderr, "[ra] spilled %zu\n", spilled.size());
        if (spilled.empty()) {
            // Map every vreg through its alias to its color.
            result.color.assign(fn.numVRegs(), -1);
            for (int v = 0; v < fn.numVRegs(); ++v) {
                const int rep = col.find(v);
                result.color[v] =
                    color[rep] >= 0 ? color[rep] : fn.precolorOf(rep);
            }
            // Record callee-saved usage.
            std::set<int> csInt, csFp;
            for (int v = 0; v < fn.numVRegs(); ++v) {
                const int c = result.color[v];
                if (c < 0)
                    continue;
                if (fn.vregClass[v] == RegClass::Int) {
                    if (env.isCalleeSaved(c, RegClass::Int))
                        csInt.insert(c);
                } else if (env.isCalleeSaved(c, RegClass::Fp)) {
                    csFp.insert(c);
                }
            }
            result.usedCalleeSavedInt.assign(csInt.begin(), csInt.end());
            result.usedCalleeSavedFp.assign(csFp.begin(), csFp.end());

            // Outgoing argument area.
            int maxOut = 0;
            for (const BasicBlock &bb : fn.blocks) {
                for (const IrInst &inst : bb.insts) {
                    if ((inst.op == IrOp::Store ||
                         inst.op == IrOp::Load) &&
                        inst.addr.kind == AddrKind::Frame &&
                        isOutgoingArgSlot(inst.addr.frameSlot)) {
                        maxOut = std::max(
                            maxOut,
                            4 * (outgoingArgIndex(inst.addr.frameSlot) +
                                 1));
                    }
                }
            }
            result.outgoingArgBytes = maxOut;
            return result;
        }

        // Spill and retry.
        result.spilledRegs += static_cast<int>(spilled.size());
        std::vector<int> roots(fn.numVRegs());
        for (int v = 0; v < fn.numVRegs(); ++v)
            roots[v] = col.find(v);
        rewriteSpills(fn, spilled, roots);
    }
}

} // namespace d16sim::mc
