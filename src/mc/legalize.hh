/**
 * @file
 * Target-aware IR legalization — where the paper's encoding
 * restrictions become extra instructions.
 *
 * After this pass the IR is machine-shaped for the selected variant:
 *
 *  - compare-and-branch pairs are fused (BrCmp/BrFCmp);
 *  - integer multiply/divide are strength-reduced or turned into
 *    runtime calls (__mul, __div, __udiv, __rem, __urem) — neither
 *    machine has integer multiply/divide hardware (Table 1);
 *  - immediates the target cannot encode are hoisted into MovImm
 *    registers (D16: 5-bit unsigned ALU immediates, no logical or
 *    compare immediates; DLXe: 16-bit) — the §3.3.3 effect;
 *  - D16-unavailable compare conditions are handled by operand swap,
 *    FP `ne` by an eq + xor;
 *  - FP values move between memory/GPRs/FPRs through explicit
 *    MifL/MifH/MfiL/MfiH (no direct FP loads/stores, §2);
 *  - two-address targets tie destinations to first sources via movs
 *    that the coalescing allocator usually eliminates (§3.3.2).
 */

#ifndef D16SIM_MC_LEGALIZE_HH
#define D16SIM_MC_LEGALIZE_HH

#include <functional>

#include "mc/ir.hh"
#include "mc/machine_env.hh"

namespace d16sim::mc
{

/** gpOffset callback: data-section offset of a global symbol. Needed
 *  to rewrite DLXe accesses whose gp displacement exceeds 16 bits into
 *  explicit address arithmetic (D16 handles far displacements at
 *  emission through its `at` scratch instead). */
using GpOffsetFn = std::function<int32_t(const std::string &)>;

void legalize(IrFunction &fn, const MachineEnv &env,
              const GpOffsetFn &gpOffset = {});

} // namespace d16sim::mc

#endif // D16SIM_MC_LEGALIZE_HH
