#include "mc/type.hh"

#include "support/bits.hh"
#include "support/error.hh"

namespace d16sim::mc
{

const StructField *
StructInfo::findField(const std::string &n) const
{
    for (const StructField &f : fields)
        if (f.name == n)
            return &f;
    return nullptr;
}

int
Type::size() const
{
    switch (kind_) {
      case TypeKind::Void: return 0;
      case TypeKind::Char: return 1;
      case TypeKind::Int:
      case TypeKind::Uint:
      case TypeKind::Float:
      case TypeKind::Pointer:
        return 4;
      case TypeKind::Double: return 8;
      case TypeKind::Array: return arrayLen_ * pointee_->size();
      case TypeKind::Struct:
        panicIf(!record_->complete, "size of incomplete struct ",
                record_->name);
        return record_->size;
    }
    panic("bad type kind");
}

int
Type::align() const
{
    switch (kind_) {
      case TypeKind::Array: return pointee_->align();
      case TypeKind::Struct: return record_->align;
      case TypeKind::Void: return 1;
      default: return size();
    }
}

std::string
Type::str() const
{
    switch (kind_) {
      case TypeKind::Void: return "void";
      case TypeKind::Int: return "int";
      case TypeKind::Uint: return "unsigned";
      case TypeKind::Char: return "char";
      case TypeKind::Float: return "float";
      case TypeKind::Double: return "double";
      case TypeKind::Pointer: return pointee_->str() + "*";
      case TypeKind::Array:
        return pointee_->str() + "[" + std::to_string(arrayLen_) + "]";
      case TypeKind::Struct: return "struct " + record_->name;
    }
    return "?";
}

TypeTable::TypeTable()
{
    void_.kind_ = TypeKind::Void;
    int_.kind_ = TypeKind::Int;
    uint_.kind_ = TypeKind::Uint;
    char_.kind_ = TypeKind::Char;
    float_.kind_ = TypeKind::Float;
    double_.kind_ = TypeKind::Double;
}

const Type *
TypeTable::pointerTo(const Type *t)
{
    for (const auto &d : derived_) {
        if (d->kind_ == TypeKind::Pointer && d->pointee_ == t)
            return d.get();
    }
    auto ty = std::unique_ptr<Type>(new Type());
    ty->kind_ = TypeKind::Pointer;
    ty->pointee_ = t;
    derived_.push_back(std::move(ty));
    return derived_.back().get();
}

const Type *
TypeTable::arrayOf(const Type *t, int n)
{
    panicIf(n <= 0, "array length must be positive");
    for (const auto &d : derived_) {
        if (d->kind_ == TypeKind::Array && d->pointee_ == t &&
            d->arrayLen_ == n) {
            return d.get();
        }
    }
    auto ty = std::unique_ptr<Type>(new Type());
    ty->kind_ = TypeKind::Array;
    ty->pointee_ = t;
    ty->arrayLen_ = n;
    derived_.push_back(std::move(ty));
    return derived_.back().get();
}

const Type *
TypeTable::structType(StructInfo *info)
{
    for (const auto &d : derived_) {
        if (d->kind_ == TypeKind::Struct && d->record_ == info)
            return d.get();
    }
    auto ty = std::unique_ptr<Type>(new Type());
    ty->kind_ = TypeKind::Struct;
    ty->record_ = info;
    derived_.push_back(std::move(ty));
    return derived_.back().get();
}

StructInfo *
TypeTable::declareStruct(const std::string &name)
{
    if (StructInfo *s = findStruct(name))
        return s;
    structs_.push_back(std::make_unique<StructInfo>());
    structs_.back()->name = name;
    return structs_.back().get();
}

StructInfo *
TypeTable::findStruct(const std::string &name)
{
    for (const auto &s : structs_)
        if (s->name == name)
            return s.get();
    return nullptr;
}

} // namespace d16sim::mc
