/**
 * @file
 * Compiler configuration — the knobs the paper's experiments turn.
 *
 * The five machine variants of the study (Tables 5-7):
 *
 *   D16                       CompileOptions::d16()
 *   DLXe / 16 regs / 2-addr   dlxe(16, false)
 *   DLXe / 16 regs / 3-addr   dlxe(16, true)
 *   DLXe / 32 regs / 2-addr   dlxe(32, false)
 *   DLXe (32 regs, 3-addr)    dlxe()
 *
 * `narrowImmediates` is an extension ablation (not one of the paper's
 * measured variants): it restricts DLXe code generation to D16's
 * immediate and displacement widths, isolating the immediate-field
 * effect of §3.3.3 directly.
 */

#ifndef D16SIM_MC_OPTIONS_HH
#define D16SIM_MC_OPTIONS_HH

#include <functional>

#include "isa/target.hh"

namespace d16sim::mc
{

struct IrFunction;
class MachineEnv;

/** Invoked at pipeline stage boundaries with the function as the stage
 *  left it, the stage name ("irgen", "opt:cse", "legalize", ...), and
 *  the machine environment (null before legalization). Installed by the
 *  verification layer (src/verify); expected to throw PanicError when an
 *  invariant is broken. */
using VerifyHook = std::function<void(const IrFunction &, const char *stage,
                                      const MachineEnv *env)>;

struct CompileOptions
{
    isa::IsaKind isa = isa::IsaKind::DLXe;

    /** Registers visible to the compiler per class (16 or 32 for DLXe;
     *  D16 is always 16). Counts include the dedicated registers. */
    int gprCount = 32;
    int fprCount = 32;

    /** Three-address code generation (D16 hardware is two-address;
     *  setting this false on DLXe ties destinations to first sources,
     *  the paper's two-address restriction). */
    bool threeAddress = true;

    /** Extension ablation: restrict DLXe ALU/compare/move immediates
     *  to D16 widths (displacements keep their native reach). */
    bool narrowImmediates = false;

    /** 0 = no optimization, 1 = local optimizations,
     *  2 = + branch fusion and instruction scheduling (default). */
    int optLevel = 2;

    /** Run the IR verifier after every pass, not just at the coarse
     *  stage boundaries (see core::build; defaults on in debug builds
     *  once a hook is installed). */
    bool verifyEach = false;

    /** Stage-boundary callback; unset = no verification. */
    VerifyHook verifyHook;

    static CompileOptions
    d16()
    {
        CompileOptions o;
        o.isa = isa::IsaKind::D16;
        o.gprCount = 16;
        o.fprCount = 16;
        o.threeAddress = false;
        return o;
    }

    static CompileOptions
    dlxe(int regs = 32, bool threeAddr = true)
    {
        CompileOptions o;
        o.isa = isa::IsaKind::DLXe;
        o.gprCount = regs;
        o.fprCount = regs;
        o.threeAddress = threeAddr;
        return o;
    }

    const isa::TargetInfo &target() const
    {
        return isa::TargetInfo::get(isa);
    }

    /** Short tag used in reports: "D16", "DLXe/16/2", ... */
    std::string name() const;
};

} // namespace d16sim::mc

#endif // D16SIM_MC_OPTIONS_HH
