#include "mc/legalize.hh"

#include <bit>

#include "support/bits.hh"
#include "support/error.hh"

namespace d16sim::mc
{

namespace
{

using isa::Cond;

/** Rewriter for one block: emits the legalized instruction stream. */
struct Rewriter
{
    IrFunction &fn;
    const MachineEnv &env;
    const GpOffsetFn &gpOffset;
    std::vector<IrInst> out;

    void push(IrInst inst) { out.push_back(std::move(inst)); }

    VReg
    movImm(int64_t v)
    {
        IrInst i;
        i.op = IrOp::MovImm;
        i.dst = fn.newReg(RegClass::Int);
        i.imm = v;
        const VReg dst = i.dst;
        push(std::move(i));
        return dst;
    }

    VReg
    bin(IrOp op, VReg a, Operand b)
    {
        IrInst i;
        i.op = op;
        i.dst = fn.newReg(RegClass::Int);
        i.a = a;
        i.b = b;
        const VReg dst = i.dst;
        legalizeImmediate(i);
        push(std::move(i));
        return dst;
    }

    void
    binInto(VReg dst, IrOp op, VReg a, Operand b)
    {
        IrInst i;
        i.op = op;
        i.dst = dst;
        i.a = a;
        i.b = b;
        legalizeImmediate(i);
        push(std::move(i));
    }

    void
    movInto(VReg dst, VReg src)
    {
        IrInst i;
        i.op = IrOp::Mov;
        i.dst = dst;
        i.a = src;
        push(std::move(i));
    }

    // ----- multiply / divide ------------------------------------------

    /** dst = a * c via shifts and adds; returns false if too costly. */
    bool
    mulByConstant(VReg dst, VReg a, int64_t c)
    {
        const bool negate = c < 0;
        uint32_t m = static_cast<uint32_t>(negate ? -c : c);
        if (m == 0) {
            IrInst i;
            i.op = IrOp::MovImm;
            i.dst = dst;
            i.imm = 0;
            push(std::move(i));
            return true;
        }
        if (std::popcount(m) > 3)
            return false;
        VReg acc;
        while (m) {
            const int k = 31 - std::countl_zero(m);
            m &= ~(uint32_t{1} << k);
            VReg term = a;
            if (k > 0)
                term = bin(IrOp::Shl, a, Operand::ofImm(k));
            acc = acc.valid()
                      ? bin(IrOp::Add, acc, Operand::ofReg(term))
                      : term;
        }
        if (negate) {
            IrInst n;
            n.op = IrOp::Neg;
            n.dst = dst;
            n.a = acc;
            push(std::move(n));
        } else {
            movInto(dst, acc);
        }
        return true;
    }

    /** Runtime-library call: dst = sym(a, b). */
    void
    runtimeCall(VReg dst, const char *sym, VReg a, VReg b)
    {
        IrInst call;
        call.op = IrOp::Call;
        call.sym = sym;
        call.args = {a, b};
        call.dst = dst;
        push(std::move(call));
    }

    VReg
    operandToReg(const Operand &o)
    {
        if (o.isReg())
            return o.reg;
        return movImm(o.imm);
    }

    void
    lowerMulDiv(IrInst inst)
    {
        const IrOp op = inst.op;
        if (inst.b.isImm()) {
            const int64_t c = inst.b.imm;
            const uint64_t uc = static_cast<uint64_t>(c);
            if (op == IrOp::Mul && mulByConstant(inst.dst, inst.a, c))
                return;
            if (c > 0 && isPowerOfTwo(uc)) {
                const int k = static_cast<int>(floorLog2(uc));
                switch (op) {
                  case IrOp::DivU:
                    binInto(inst.dst, IrOp::ShrL, inst.a,
                            Operand::ofImm(k));
                    return;
                  case IrOp::RemU:
                    binInto(inst.dst, IrOp::And, inst.a,
                            Operand::ofImm(c - 1));
                    return;
                  case IrOp::DivS: {
                    if (k == 0) {
                        movInto(inst.dst, inst.a);
                        return;
                    }
                    // Round-toward-zero adjustment:
                    // t = a >> 31; t >>= (32-k); dst = (a + t) >> k.
                    const VReg sign =
                        bin(IrOp::ShrA, inst.a, Operand::ofImm(31));
                    const VReg adj =
                        bin(IrOp::ShrL, sign, Operand::ofImm(32 - k));
                    const VReg sum =
                        bin(IrOp::Add, inst.a, Operand::ofReg(adj));
                    binInto(inst.dst, IrOp::ShrA, sum, Operand::ofImm(k));
                    return;
                  }
                  case IrOp::RemS: {
                    // dst = a - (a / 2^k) * 2^k.
                    const VReg q = fn.newReg(RegClass::Int);
                    IrInst div;
                    div.op = IrOp::DivS;
                    div.dst = q;
                    div.a = inst.a;
                    div.b = Operand::ofImm(c);
                    lowerMulDiv(std::move(div));
                    const VReg scaled =
                        bin(IrOp::Shl, q, Operand::ofImm(k));
                    binInto(inst.dst, IrOp::Sub, inst.a,
                            Operand::ofReg(scaled));
                    return;
                  }
                  default:
                    break;
                }
            }
        }
        const VReg b = operandToReg(inst.b);
        const char *sym = nullptr;
        switch (op) {
          case IrOp::Mul: sym = "__mul"; break;
          case IrOp::DivS: sym = "__div"; break;
          case IrOp::DivU: sym = "__udiv"; break;
          case IrOp::RemS: sym = "__rem"; break;
          case IrOp::RemU: sym = "__urem"; break;
          default: panic("not a muldiv op");
        }
        runtimeCall(inst.dst, sym, inst.a, b);
    }

    // ----- immediates ---------------------------------------------------

    /** Is `imm` directly encodable as this IR op's immediate? */
    bool
    immLegal(IrOp op, int64_t imm) const
    {
        using isa::Op;
        switch (op) {
          case IrOp::Add:
            return env.aluImmFits(Op::AddI, imm) ||
                   env.aluImmFits(Op::SubI, -imm);
          case IrOp::Sub:
            return env.aluImmFits(Op::SubI, imm) ||
                   env.aluImmFits(Op::AddI, -imm);
          case IrOp::And:
            return env.aluImmFits(Op::AndI, imm);
          case IrOp::Or:
            return env.aluImmFits(Op::OrI, imm);
          case IrOp::Xor:
            return env.aluImmFits(Op::XorI, imm);
          case IrOp::Shl: case IrOp::ShrL: case IrOp::ShrA:
            return imm >= 0 && imm < 32;
          case IrOp::Cmp:
          case IrOp::BrCmp:
            return env.hasCmpImmediate() &&
                   env.aluImmFits(Op::CmpI, imm);
          default:
            return false;
        }
    }

    void
    legalizeImmediate(IrInst &inst)
    {
        if (!inst.b.isImm())
            return;
        switch (inst.op) {
          case IrOp::Add: case IrOp::Sub: case IrOp::And: case IrOp::Or:
          case IrOp::Xor: case IrOp::Shl: case IrOp::ShrL:
          case IrOp::ShrA: case IrOp::Cmp: case IrOp::BrCmp:
            if (!immLegal(inst.op, inst.b.imm))
                inst.b = Operand::ofReg(movImm(inst.b.imm));
            break;
          default:
            break;
        }
    }

    /** D16 compare-condition availability: swap operands if needed. */
    void
    legalizeCondition(IrInst &inst)
    {
        if (inst.op == IrOp::Cmp || inst.op == IrOp::BrCmp) {
            if (!env.hasIntCond(inst.cond)) {
                // gt/gtu/ge/geu -> swap to lt/ltu/le/leu. The immediate
                // (if any) moves to the left, so hoist it first.
                if (inst.b.isImm())
                    inst.b = Operand::ofReg(movImm(inst.b.imm));
                std::swap(inst.a, inst.b.reg);
                inst.cond = isa::swapCond(inst.cond);
            }
            return;
        }
        if (inst.op == IrOp::FCmp || inst.op == IrOp::BrFCmp) {
            switch (inst.cond) {
              case Cond::Gt: case Cond::Ge:
                std::swap(inst.a, inst.b.reg);
                inst.cond = isa::swapCond(inst.cond);
                break;
              case Cond::Ne:
                if (inst.op == IrOp::BrFCmp) {
                    // branch-sense flip
                    inst.cond = Cond::Eq;
                    std::swap(inst.thenBB, inst.elseBB);
                } else {
                    // dst = (a != b) as 1 - (a == b).
                    const VReg eq = fn.newReg(RegClass::Int);
                    IrInst cmp = inst;
                    cmp.cond = Cond::Eq;
                    cmp.dst = eq;
                    push(std::move(cmp));
                    IrInst x;
                    x.op = IrOp::Xor;
                    x.dst = inst.dst;
                    x.a = eq;
                    x.b = Operand::ofImm(1);
                    legalizeImmediate(x);
                    push(std::move(x));
                    inst.op = IrOp::Jmp;  // marker: handled
                    inst.thenBB = -2;
                }
                break;
              default:
                break;
            }
        }
    }

    // ----- floating point -----------------------------------------------

    void
    lowerFMovImm(const IrInst &inst)
    {
        if (inst.isSingle) {
            const uint32_t bits = std::bit_cast<uint32_t>(
                static_cast<float>(inst.fimm));
            const VReg t = movImm(static_cast<int32_t>(bits));
            IrInst mif;
            mif.op = IrOp::MifL;
            mif.dst = inst.dst;
            mif.a = t;
            push(std::move(mif));
            return;
        }
        const uint64_t bits = std::bit_cast<uint64_t>(inst.fimm);
        const VReg lo =
            movImm(static_cast<int32_t>(static_cast<uint32_t>(bits)));
        IrInst mifl;
        mifl.op = IrOp::MifL;
        mifl.dst = inst.dst;
        mifl.a = lo;
        push(std::move(mifl));
        const VReg hi = movImm(static_cast<int32_t>(bits >> 32));
        IrInst mifh;
        mifh.op = IrOp::MifH;
        mifh.dst = inst.dst;
        mifh.a = hi;
        push(std::move(mifh));
    }

    Address
    offsetBy(const Address &a, int32_t delta)
    {
        Address r = a;
        r.offset += delta;
        return r;
    }

    void
    lowerFpLoad(const IrInst &inst)
    {
        // Low word.
        IrInst lo;
        lo.op = IrOp::Load;
        lo.dst = fn.newReg(RegClass::Int);
        lo.addr = inst.addr;
        lo.size = 4;
        const VReg loReg = lo.dst;
        push(std::move(lo));
        IrInst mifl;
        mifl.op = IrOp::MifL;
        mifl.dst = inst.dst;
        mifl.a = loReg;
        push(std::move(mifl));
        if (inst.size == 8) {
            IrInst hi;
            hi.op = IrOp::Load;
            hi.dst = fn.newReg(RegClass::Int);
            hi.addr = offsetBy(inst.addr, 4);
            hi.size = 4;
            const VReg hiReg = hi.dst;
            push(std::move(hi));
            IrInst mifh;
            mifh.op = IrOp::MifH;
            mifh.dst = inst.dst;
            mifh.a = hiReg;
            push(std::move(mifh));
        }
    }

    void
    lowerFpStore(const IrInst &inst)
    {
        IrInst mfil;
        mfil.op = IrOp::MfiL;
        mfil.dst = fn.newReg(RegClass::Int);
        mfil.a = inst.a;
        const VReg lo = mfil.dst;
        push(std::move(mfil));
        IrInst st;
        st.op = IrOp::Store;
        st.a = lo;
        st.addr = inst.addr;
        st.size = 4;
        push(std::move(st));
        if (inst.size == 8) {
            IrInst mfih;
            mfih.op = IrOp::MfiH;
            mfih.dst = fn.newReg(RegClass::Int);
            mfih.a = inst.a;
            const VReg hi = mfih.dst;
            push(std::move(mfih));
            IrInst st2;
            st2.op = IrOp::Store;
            st2.a = hi;
            st2.addr = offsetBy(inst.addr, 4);
            st2.size = 4;
            push(std::move(st2));
        }
    }

    /** DLXe: a global whose gp displacement exceeds 16 bits needs its
     *  address built in a register (D16 resolves this at emission
     *  through at). */
    void
    legalizeGlobalDisp(IrInst &inst)
    {
        if (env.target().kind() == isa::IsaKind::D16 || !gpOffset)
            return;
        if (inst.addr.kind != AddrKind::Global)
            return;
        const int64_t disp = gpOffset(inst.addr.sym) + inst.addr.offset;
        const isa::Op memOp = inst.op == IrOp::Store
                                  ? isa::Op::St
                                  : isa::Op::Ld;
        if (env.memOffsetFits(memOp, disp))
            return;
        IrInst addr;
        addr.op = IrOp::AddrOf;
        addr.dst = fn.newReg(RegClass::Int);
        addr.addr = inst.addr;
        const VReg base = addr.dst;
        push(std::move(addr));
        inst.addr = Address::reg(base);
    }

    // ----- main rewrite ----------------------------------------------------

    void
    rewrite(IrInst inst)
    {
        switch (inst.op) {
          case IrOp::Mul: case IrOp::DivS: case IrOp::DivU:
          case IrOp::RemS: case IrOp::RemU:
            lowerMulDiv(std::move(inst));
            return;

          case IrOp::FMovImm:
            lowerFMovImm(inst);
            return;

          case IrOp::CvtIF: {
            IrInst mif;
            mif.op = IrOp::MifL;
            mif.dst = inst.dst;
            mif.a = inst.a;
            push(std::move(mif));
            IrInst cvt;
            cvt.op = IrOp::CvtRawIF;
            cvt.dst = inst.dst;
            cvt.a = inst.dst;
            cvt.isSingle = inst.isSingle;
            push(std::move(cvt));
            return;
          }

          case IrOp::CvtFI: {
            IrInst cvt;
            cvt.op = IrOp::CvtRawFI;
            cvt.dst = fn.newReg(RegClass::Fp);
            cvt.a = inst.a;
            cvt.srcSingle = inst.srcSingle;
            const VReg tmp = cvt.dst;
            push(std::move(cvt));
            IrInst mfi;
            mfi.op = IrOp::MfiL;
            mfi.dst = inst.dst;
            mfi.a = tmp;
            push(std::move(mfi));
            return;
          }

          case IrOp::Load:
            if (inst.dst.cls == RegClass::Fp) {
                lowerFpLoad(inst);
                return;
            }
            legalizeGlobalDisp(inst);
            push(std::move(inst));
            return;

          case IrOp::Store:
            if (inst.a.cls == RegClass::Fp) {
                lowerFpStore(inst);
                return;
            }
            legalizeGlobalDisp(inst);
            push(std::move(inst));
            return;

          case IrOp::Cmp:
          case IrOp::BrCmp:
          case IrOp::FCmp:
          case IrOp::BrFCmp:
            legalizeCondition(inst);
            if (inst.op == IrOp::Jmp && inst.thenBB == -2)
                return;  // fully handled (fp-ne value form)
            legalizeImmediate(inst);
            push(std::move(inst));
            return;

          default:
            legalizeImmediate(inst);
            push(std::move(inst));
            return;
        }
    }
};

/** Fuse a Cmp/FCmp immediately preceding the Br that tests it. */
void
fuseCompareBranches(IrFunction &fn, const MachineEnv &env)
{
    // Count uses of every vreg.
    std::vector<int> uses(fn.numVRegs(), 0);
    for (const BasicBlock &bb : fn.blocks)
        for (const IrInst &inst : bb.insts)
            forEachUse(inst, [&](VReg r) { ++uses[r.id]; });

    const bool d16 = env.target().kind() == isa::IsaKind::D16;
    for (BasicBlock &bb : fn.blocks) {
        if (bb.insts.size() < 2)
            continue;
        IrInst &term = bb.insts.back();
        IrInst &prev = bb.insts[bb.insts.size() - 2];
        if (term.op != IrOp::Br)
            continue;
        if (prev.op != IrOp::Cmp && prev.op != IrOp::FCmp)
            continue;
        if (!(prev.dst == term.a) || uses[prev.dst.id] != 1)
            continue;
        term.op = prev.op == IrOp::Cmp ? IrOp::BrCmp : IrOp::BrFCmp;
        term.cond = prev.cond;
        term.a = prev.a;
        term.b = prev.b;
        term.isSingle = prev.isSingle;
        // DLXe compares still need a destination register; D16 writes
        // r0 implicitly.
        term.dst = d16 ? VReg{} : prev.dst;
        bb.insts.erase(bb.insts.end() - 2);
    }
}

/** Two-address tying: dst = a op b  =>  mov dst, a; dst = dst op b. */
void
tieTwoAddress(IrFunction &fn)
{
    auto isTied = [](IrOp op) {
        switch (op) {
          case IrOp::Add: case IrOp::Sub: case IrOp::And: case IrOp::Or:
          case IrOp::Xor: case IrOp::Shl: case IrOp::ShrL:
          case IrOp::ShrA:
          case IrOp::FAdd: case IrOp::FSub: case IrOp::FMul:
          case IrOp::FDiv:
            return true;
          default:
            return false;
        }
    };
    auto isCommutative = [](IrOp op) {
        switch (op) {
          case IrOp::Add: case IrOp::And: case IrOp::Or: case IrOp::Xor:
          case IrOp::FAdd: case IrOp::FMul:
            return true;
          default:
            return false;
        }
    };

    for (BasicBlock &bb : fn.blocks) {
        std::vector<IrInst> out;
        out.reserve(bb.insts.size());
        for (IrInst &inst : bb.insts) {
            if (!isTied(inst.op) || inst.dst == inst.a) {
                out.push_back(std::move(inst));
                continue;
            }
            if (inst.b.isReg() && inst.b.reg == inst.dst) {
                if (isCommutative(inst.op)) {
                    std::swap(inst.a, inst.b.reg);
                    out.push_back(std::move(inst));
                    continue;
                }
                // dst aliases b: go through a fresh temp.
                const VReg t = fn.newReg(inst.dst.cls);
                IrInst mov;
                mov.op = IrOp::Mov;
                mov.dst = t;
                mov.a = inst.a;
                out.push_back(std::move(mov));
                IrInst op = inst;
                op.dst = t;
                op.a = t;
                out.push_back(std::move(op));
                IrInst mov2;
                mov2.op = IrOp::Mov;
                mov2.dst = inst.dst;
                mov2.a = t;
                out.push_back(std::move(mov2));
                continue;
            }
            IrInst mov;
            mov.op = IrOp::Mov;
            mov.dst = inst.dst;
            mov.a = inst.a;
            out.push_back(std::move(mov));
            inst.a = inst.dst;
            out.push_back(std::move(inst));
        }
        bb.insts = std::move(out);
    }
}

} // namespace

void
legalize(IrFunction &fn, const MachineEnv &env, const GpOffsetFn &gpOffset)
{
    fuseCompareBranches(fn, env);

    for (BasicBlock &bb : fn.blocks) {
        Rewriter rw{fn, env, gpOffset};
        rw.out.reserve(bb.insts.size());
        for (IrInst &inst : bb.insts)
            rw.rewrite(std::move(inst));
        bb.insts = std::move(rw.out);
    }

    if (env.twoAddress())
        tieTwoAddress(fn);
}

} // namespace d16sim::mc
