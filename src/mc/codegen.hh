/**
 * @file
 * Code generation: allocated IR -> assembler items.
 *
 * This is where the two encodings' costs diverge concretely:
 *
 *  - D16 materializes large constants and far addresses through its
 *    per-function PC-relative constant pools (LDC), paying one pool
 *    word plus an `ldc` (and often a `mv` from at); DLXe uses
 *    mvhi/ori pairs.
 *  - D16 word loads/stores reach only 124 bytes (sub-word: 0), so far
 *    displacements cost an address computation through `at`; DLXe has
 *    16-bit displacements everywhere (§3.3.3).
 *  - D16 compares write r0/at and conditional branches test it; DLXe
 *    compares target any register.
 *  - Direct calls are `jl` on DLXe but `ldc + jlr at` on D16.
 *
 * Globals are laid out by the code generator itself (scalars first,
 * then arrays, then string literals) so every gp-relative displacement
 * is known exactly at code-generation time.
 */

#ifndef D16SIM_MC_CODEGEN_HH
#define D16SIM_MC_CODEGEN_HH

#include <vector>

#include "asm/item.hh"
#include "mc/ast.hh"
#include "mc/ir.hh"
#include "mc/machine_env.hh"
#include "mc/regalloc.hh"

namespace d16sim::mc
{

class CodeGen
{
  public:
    CodeGen(const Program &prog, const MachineEnv &env);

    /** Lay out the data section; must run before emitting functions. */
    void layoutGlobals();

    /** Emit one allocated function. */
    void emitFunction(const IrFunction &fn, const Allocation &alloc);

    /** Emit the .data section (globals + string literals). */
    void emitData();

    /** The accumulated module. */
    std::vector<assem::AsmItem> take() { return std::move(items_); }

    /** gp-relative offset of a global (after layoutGlobals). */
    int32_t gpOffset(const std::string &sym) const;

  private:
    struct PoolEntry
    {
        bool isSymbol = false;
        int64_t value = 0;
        std::string sym;
        int64_t addend = 0;
    };

    // --- item plumbing -------------------------------------------------
    void put(isa::AsmInst inst);
    void putLabel(const std::string &name);
    std::string blockLabel(int bb) const;

    // --- constants / addresses ------------------------------------------
    int poolIndex(const PoolEntry &e);
    std::string poolLabel(int index) const;
    void emitLdcPool(int index);
    void materializeConst(int phys, int64_t v);
    void materializeSymbol(int phys, const std::string &sym,
                           int64_t addend);

    struct MemTarget
    {
        int base;       //!< physical base register
        int32_t disp;   //!< displacement
    };
    /** Resolve an IR Address to base+disp and legalize the
     *  displacement for `op`, possibly emitting address arithmetic
     *  through `at` (D16). */
    MemTarget resolveAddress(isa::Op op, const Address &addr);

    // --- instruction lowering ---------------------------------------------
    int reg(VReg r) const;
    void emitInst(const IrInst &inst);
    void emitBinary(const IrInst &inst);
    void emitCompareValue(const IrInst &inst);
    void emitTerminator(const IrInst &inst, int nextBB);
    void emitBranchShape(int testPhys, int thenBB, int elseBB,
                         int nextBB);
    void emitCall(const IrInst &inst);
    void emitPrologue();
    void emitEpilogue();

    // --- frame ------------------------------------------------------------
    int32_t slotDisp(int frameSlot) const;
    void frameStore(int phys, int32_t disp);
    void frameLoad(int phys, int32_t disp);

    const Program &prog_;
    const MachineEnv &env_;
    const isa::TargetInfo &t_;
    bool d16_;

    std::vector<assem::AsmItem> items_;

    // Data layout.
    std::map<std::string, int32_t> gpOffsets_;
    int32_t dataSize_ = 0;

    // Per-function state.
    const IrFunction *fn_ = nullptr;
    const Allocation *alloc_ = nullptr;
    std::vector<PoolEntry> pool_;
    std::vector<assem::AsmItem> body_;
    std::vector<int32_t> slotOffsets_;
    int frameSize_ = 0;
    bool hasCalls_ = false;
    std::vector<std::pair<int, int32_t>> savedInt_;  //!< (phys, disp)
    std::vector<std::pair<int, int32_t>> savedFp_;
    int32_t raOffset_ = -1;
    int fpSaveScratch_ = -1;
};

} // namespace d16sim::mc

#endif // D16SIM_MC_CODEGEN_HH
