#include "mc/machine_env.hh"

#include "support/bits.hh"
#include "support/error.hh"

namespace d16sim::mc
{

std::string
CompileOptions::name() const
{
    if (isa == isa::IsaKind::D16)
        return "D16";
    std::string n = "DLXe/" + std::to_string(gprCount) + "/" +
                    (threeAddress ? "3" : "2");
    if (narrowImmediates)
        n += "/ni";
    return n;
}

MachineEnv::MachineEnv(const CompileOptions &opts)
    : target_(&opts.target()), opts_(opts)
{
    const bool d16 = opts.isa == isa::IsaKind::D16;
    if (d16) {
        panicIf(opts.gprCount != 16 || opts.fprCount != 16,
                "D16 has exactly 16 registers per class");
        panicIf(opts.threeAddress, "D16 hardware is two-address");
    }
    panicIf(opts.gprCount < 8 || opts.gprCount > target_->numGpr(),
            "unsupported register restriction");

    // Integer: r2..r(argEnd) args/ret + caller temps, then callee-saved
    // up to the restriction; at/ra/gp/sp are dedicated.
    const int intArgCount = d16 ? 4 : 8;
    for (int r = 2; r < 2 + intArgCount; ++r)
        intArgs_.push_back(r);
    // Allocatable: r2 .. (gprCount - 3) — the top two names of the
    // *visible* set are gp and sp on D16 / full DLXe; for restricted
    // DLXe the hardware gp=r30/sp=r31 stay outside the visible pool
    // and the restricted set is r0, r1, r2..r13, gp, sp (16 names).
    const int lastAlloc = d16 ? 13 : (opts.gprCount == 32 ? 29 : 13);
    for (int r = 2; r <= lastAlloc; ++r)
        intAlloc_.push_back(r);
    // Callee-saved: the top third-ish of the pool, matching the
    // convention in isa/target.hh.
    intCalleeFirst_ = d16 ? 10 : (opts.gprCount == 32 ? 16 : 10);

    // FP: f0 scratch; args f2..; callee-saved upper half.
    const int fpArgCount = d16 ? 4 : 8;
    for (int r = 2; r < 2 + fpArgCount; ++r)
        fpArgs_.push_back(r);
    const int lastFp = d16 ? 15 : (opts.fprCount == 32 ? 31 : 15);
    for (int r = 1; r <= lastFp; ++r)
        fpAlloc_.push_back(r);
    fpCalleeFirst_ = d16 ? 10 : (opts.fprCount == 32 ? 16 : 10);
}

bool
MachineEnv::isCalleeSaved(int reg, RegClass cls) const
{
    if (cls == RegClass::Int)
        return reg >= intCalleeFirst_ &&
               reg <= intAlloc_.back();
    return reg >= fpCalleeFirst_ && reg <= fpAlloc_.back();
}

bool
MachineEnv::aluImmFits(isa::Op op, int64_t v) const
{
    if (opts_.narrowImmediates)
        return isa::TargetInfo::d16().aluImmFits(op, v) &&
               target_->hasOp(op);
    return target_->aluImmFits(op, v);
}

bool
MachineEnv::mviImmFits(int64_t v) const
{
    if (opts_.narrowImmediates)
        return isa::TargetInfo::d16().mviImmFits(v);
    return target_->mviImmFits(v);
}

bool
MachineEnv::memOffsetFits(isa::Op op, int64_t v) const
{
    // The narrowImmediates ablation is scoped to ALU/compare/move
    // immediates; displacements keep the real encoding's reach (DLXe
    // has no scratch register to legalize frame displacements with).
    return target_->memOffsetFits(op, v);
}

bool
MachineEnv::hasCmpImmediate() const
{
    if (opts_.narrowImmediates)
        return false;
    return target_->kind() == isa::IsaKind::DLXe;
}

bool
MachineEnv::hasIntCond(isa::Cond c) const
{
    return target_->hasIntCond(c);
}

} // namespace d16sim::mc
