#include "mc/sched.hh"

#include <cstdint>

#include "support/error.hh"

namespace d16sim::mc
{

namespace
{

using assem::AsmItem;
using assem::ItemKind;
using isa::AsmInst;
using isa::Op;
using isa::OpClass;

/** Register-resource coding: GPR i -> i, FPR i -> 32+i, status -> 64. */
constexpr int kFprBase = 32;
constexpr int kStatus = 64;

struct Effects
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t readsHi = 0;   //!< bit i: resource 64+i
    uint64_t writesHi = 0;
    bool memRead = false;
    bool memWrite = false;

    void
    read(int res)
    {
        if (res < 64)
            reads |= uint64_t{1} << res;
        else
            readsHi |= uint64_t{1} << (res - 64);
    }

    void
    write(int res)
    {
        if (res < 64)
            writes |= uint64_t{1} << res;
        else
            writesHi |= uint64_t{1} << (res - 64);
    }
};

Effects
effectsOf(const AsmInst &inst)
{
    Effects e;
    auto g = [](int r) { return r; };
    auto f = [](int r) { return kFprBase + r; };

    switch (inst.op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or:
      case Op::Xor: case Op::Shl: case Op::Shr: case Op::Shra:
        e.read(g(inst.rs1));
        e.read(g(inst.rs2));
        e.write(g(inst.rd));
        break;
      case Op::Neg: case Op::Inv: case Op::Mv:
        e.read(g(inst.rs1));
        e.write(g(inst.rd));
        break;
      case Op::AddI: case Op::SubI: case Op::ShlI: case Op::ShrI:
      case Op::ShraI: case Op::AndI: case Op::OrI: case Op::XorI:
        e.read(g(inst.rs1));
        e.write(g(inst.rd));
        break;
      case Op::MvI: case Op::MvHI:
        e.write(g(inst.rd));
        break;
      case Op::Cmp:
        e.read(g(inst.rs1));
        e.read(g(inst.rs2));
        e.write(g(inst.rd < 0 ? 0 : inst.rd));
        break;
      case Op::CmpI:
        e.read(g(inst.rs1));
        e.write(g(inst.rd));
        break;
      case Op::Ld: case Op::Ldh: case Op::Ldhu: case Op::Ldb:
      case Op::Ldbu:
        e.read(g(inst.rs1));
        e.write(g(inst.rd));
        e.memRead = true;
        break;
      case Op::St: case Op::Sth: case Op::Stb:
        e.read(g(inst.rs1));
        e.read(g(inst.rs2));
        e.memWrite = true;
        break;
      case Op::Ldc:
        e.write(g(0));
        e.memRead = true;
        break;
      case Op::Br:
        break;
      case Op::Bz: case Op::Bnz:
        e.read(g(inst.rs1 < 0 ? 0 : inst.rs1));
        break;
      case Op::J:
        break;
      case Op::Jl:
        e.write(g(1));
        break;
      case Op::Jr:
        e.read(g(inst.rs1));
        break;
      case Op::Jlr:
        e.read(g(inst.rs1));
        e.write(g(1));
        break;
      case Op::Jrz: case Op::Jrnz:
        e.read(g(inst.rs1));
        e.read(g(inst.rs2 < 0 ? 0 : inst.rs2));
        break;
      case Op::FAddS: case Op::FAddD: case Op::FSubS: case Op::FSubD:
      case Op::FMulS: case Op::FMulD: case Op::FDivS: case Op::FDivD:
        e.read(f(inst.rs1));
        e.read(f(inst.rs2));
        e.write(f(inst.rd));
        break;
      case Op::FNegS: case Op::FNegD: case Op::FMv:
      case Op::CvtSiSf: case Op::CvtSiDf: case Op::CvtSfDf:
      case Op::CvtDfSf: case Op::CvtSfSi: case Op::CvtDfSi:
        e.read(f(inst.rs1));
        e.write(f(inst.rd));
        break;
      case Op::FCmpS: case Op::FCmpD:
        e.read(f(inst.rs1));
        e.read(f(inst.rs2));
        e.write(kStatus);
        break;
      case Op::MifL:
        e.read(g(inst.rs1));
        e.write(f(inst.rd));
        break;
      case Op::MifH:
        e.read(g(inst.rs1));
        e.read(f(inst.rd));  // partial update
        e.write(f(inst.rd));
        break;
      case Op::MfiL: case Op::MfiH:
        e.read(f(inst.rs1));
        e.write(g(inst.rd));
        break;
      case Op::Trap:
        e.read(g(2));
        e.read(f(2));
        e.write(g(2));
        e.memRead = true;
        e.memWrite = true;
        break;
      case Op::Rdsr:
        e.read(kStatus);
        e.write(g(inst.rd));
        break;
      case Op::Nop:
        break;
      default:
        break;
    }
    return e;
}

/** Do the two instructions commute (can their order swap)? */
bool
commute(const Effects &a, const Effects &b)
{
    if ((a.writes & b.writes) || (a.writesHi & b.writesHi))
        return false;
    if ((a.writes & b.reads) || (a.writesHi & b.readsHi))
        return false;
    if ((a.reads & b.writes) || (a.readsHi & b.writesHi))
        return false;
    if (a.memWrite && (b.memRead || b.memWrite))
        return false;
    if (b.memWrite && (a.memRead || a.memWrite))
        return false;
    return true;
}

bool
isBranchInst(const AsmItem &item)
{
    return item.kind == ItemKind::Inst &&
           isControlFlow(item.inst.op);
}

bool
isNopSlot(const AsmItem &item)
{
    return item.kind == ItemKind::Inst && item.inst.op == Op::Nop;
}

bool
isPlainInst(const AsmItem &item)
{
    return item.kind == ItemKind::Inst && !isControlFlow(item.inst.op) &&
           item.inst.op != Op::Nop && item.inst.op != Op::Trap;
}

} // namespace

SchedStats
schedule(std::vector<assem::AsmItem> &items, const isa::TargetInfo &target)
{
    (void)target;
    SchedStats stats;

    // ---- branch delay-slot filling -----------------------------------
    for (size_t i = 1; i + 1 < items.size(); ++i) {
        if (!isBranchInst(items[i]) || !isNopSlot(items[i + 1]))
            continue;
        AsmItem &cand = items[i - 1];
        if (!isPlainInst(cand)) {
            stats.slotsLeftNop += 1;
            continue;
        }
        // The candidate must not be a branch target (label right
        // before it) and must not itself sit in a delay slot.
        if (i < 2 || items[i - 2].kind == ItemKind::Label ||
            isBranchInst(items[i - 2])) {
            stats.slotsLeftNop += 1;
            continue;
        }
        const Effects branchFx = effectsOf(items[i].inst);
        const Effects candFx = effectsOf(cand.inst);
        if (!commute(branchFx, candFx)) {
            stats.slotsLeftNop += 1;
            continue;
        }
        // Move the candidate into the slot.
        items[i + 1] = std::move(items[i - 1]);
        items.erase(items.begin() + (i - 1));
        stats.slotsFilled += 1;
        --i;  // re-examine from the branch's new position
    }

    // ---- load-delay scheduling ----------------------------------------
    // Pattern [load, use, independent] -> [load, independent, use].
    for (size_t i = 0; i + 2 < items.size(); ++i) {
        if (items[i].kind != ItemKind::Inst)
            continue;
        const AsmInst &load = items[i].inst;
        if (opClass(load.op) != OpClass::Load &&
            opClass(load.op) != OpClass::LoadConst) {
            continue;
        }
        if (!isPlainInst(items[i + 1]) || !isPlainInst(items[i + 2]))
            continue;
        // No labels in between (straight-line only).
        const Effects loadFx = effectsOf(load);
        const Effects useFx = effectsOf(items[i + 1].inst);
        const Effects thirdFx = effectsOf(items[i + 2].inst);
        const bool usesLoad =
            (loadFx.writes & useFx.reads) ||
            (loadFx.writesHi & useFx.readsHi);
        if (!usesLoad)
            continue;
        const bool thirdUsesLoad =
            (loadFx.writes & thirdFx.reads) ||
            (loadFx.writesHi & thirdFx.readsHi) ||
            (loadFx.writes & thirdFx.writes);
        if (thirdUsesLoad)
            continue;
        if (!commute(useFx, thirdFx))
            continue;
        std::swap(items[i + 1], items[i + 2]);
        stats.loadsSeparated += 1;
    }

    return stats;
}

void
applyFeedback(SchedStats &stats, const SchedFeedback &fb)
{
    stats.residualLoadUse += fb.loadUseSites;
    stats.avoidableLoadUse += fb.avoidableSites;
}

} // namespace d16sim::mc
