#include "mc/lexer.hh"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/error.hh"

namespace d16sim::mc
{

namespace
{

const std::unordered_map<std::string_view, Tok> keywords = {
    {"int", Tok::KwInt},       {"unsigned", Tok::KwUnsigned},
    {"char", Tok::KwChar},     {"float", Tok::KwFloat},
    {"double", Tok::KwDouble}, {"void", Tok::KwVoid},
    {"struct", Tok::KwStruct}, {"if", Tok::KwIf},
    {"else", Tok::KwElse},     {"while", Tok::KwWhile},
    {"for", Tok::KwFor},       {"do", Tok::KwDo},
    {"return", Tok::KwReturn}, {"break", Tok::KwBreak},
    {"continue", Tok::KwContinue}, {"sizeof", Tok::KwSizeof},
};

struct Lexer
{
    std::string_view src;
    size_t pos = 0;
    int line = 1;

    [[noreturn]] void
    err(const std::string &msg) const
    {
        fatal("minic line ", line, ": ", msg);
    }

    char peek(int ahead = 0) const
    {
        return pos + ahead < src.size() ? src[pos + ahead] : '\0';
    }

    char
    advance()
    {
        const char c = src[pos++];
        if (c == '\n')
            ++line;
        return c;
    }

    bool
    match(char c)
    {
        if (peek() == c) {
            ++pos;
            return true;
        }
        return false;
    }

    char
    escape()
    {
        const char c = advance();
        switch (c) {
          case 'n': return '\n';
          case 't': return '\t';
          case 'r': return '\r';
          case '0': return '\0';
          case '\\': return '\\';
          case '\'': return '\'';
          case '"': return '"';
          default: err("unknown escape sequence");
        }
    }
};

} // namespace

std::string
tokName(Tok t)
{
    switch (t) {
      case Tok::End: return "end of input";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::FloatLit: return "float literal";
      case Tok::CharLit: return "char literal";
      case Tok::StringLit: return "string literal";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Semi: return "';'";
      case Tok::Comma: return "','";
      case Tok::Assign: return "'='";
      case Tok::Colon: return "':'";
      default: return "token#" + std::to_string(static_cast<int>(t));
    }
}

std::vector<Token>
lex(std::string_view source)
{
    Lexer lx{source};
    std::vector<Token> out;

    auto push = [&](Tok kind) {
        Token t;
        t.kind = kind;
        t.line = lx.line;
        out.push_back(std::move(t));
    };

    while (lx.pos < source.size()) {
        const char c = lx.peek();

        if (std::isspace(static_cast<unsigned char>(c))) {
            lx.advance();
            continue;
        }
        // Comments.
        if (c == '/' && lx.peek(1) == '/') {
            while (lx.pos < source.size() && lx.peek() != '\n')
                lx.advance();
            continue;
        }
        if (c == '/' && lx.peek(1) == '*') {
            lx.advance();
            lx.advance();
            while (lx.pos < source.size() &&
                   !(lx.peek() == '*' && lx.peek(1) == '/')) {
                lx.advance();
            }
            if (lx.pos >= source.size())
                lx.err("unterminated block comment");
            lx.advance();
            lx.advance();
            continue;
        }

        // Identifiers / keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            const int startLine = lx.line;
            size_t start = lx.pos;
            while (std::isalnum(static_cast<unsigned char>(lx.peek())) ||
                   lx.peek() == '_') {
                lx.advance();
            }
            const std::string_view word =
                source.substr(start, lx.pos - start);
            Token t;
            t.line = startLine;
            auto kw = keywords.find(word);
            if (kw != keywords.end()) {
                t.kind = kw->second;
            } else {
                t.kind = Tok::Ident;
                t.text = std::string(word);
            }
            out.push_back(std::move(t));
            continue;
        }

        // Numbers.
        if (std::isdigit(static_cast<unsigned char>(c))) {
            const int startLine = lx.line;
            size_t start = lx.pos;
            bool isFloat = false;
            if (c == '0' && (lx.peek(1) == 'x' || lx.peek(1) == 'X')) {
                lx.advance();
                lx.advance();
                while (std::isxdigit(static_cast<unsigned char>(lx.peek())))
                    lx.advance();
            } else {
                while (std::isdigit(static_cast<unsigned char>(lx.peek())))
                    lx.advance();
                if (lx.peek() == '.' &&
                    std::isdigit(static_cast<unsigned char>(lx.peek(1)))) {
                    isFloat = true;
                    lx.advance();
                    while (std::isdigit(
                        static_cast<unsigned char>(lx.peek()))) {
                        lx.advance();
                    }
                }
                if (lx.peek() == 'e' || lx.peek() == 'E') {
                    const char sign = lx.peek(1);
                    if (std::isdigit(static_cast<unsigned char>(sign)) ||
                        ((sign == '+' || sign == '-') &&
                         std::isdigit(
                             static_cast<unsigned char>(lx.peek(2))))) {
                        isFloat = true;
                        lx.advance();
                        if (lx.peek() == '+' || lx.peek() == '-')
                            lx.advance();
                        while (std::isdigit(
                            static_cast<unsigned char>(lx.peek()))) {
                            lx.advance();
                        }
                    }
                }
            }
            const std::string text(source.substr(start, lx.pos - start));
            Token t;
            t.line = startLine;
            if (isFloat) {
                t.kind = Tok::FloatLit;
                t.floatValue = std::strtod(text.c_str(), nullptr);
                if (lx.peek() == 'f' || lx.peek() == 'F') {
                    lx.advance();
                    t.floatIsSingle = true;
                }
            } else {
                t.kind = Tok::IntLit;
                t.intValue = std::strtoll(text.c_str(), nullptr, 0);
                if (lx.peek() == 'u' || lx.peek() == 'U')
                    lx.advance();  // accepted; type handled by sema
            }
            out.push_back(std::move(t));
            continue;
        }

        // Char literal.
        if (c == '\'') {
            const int startLine = lx.line;
            lx.advance();
            char v = lx.advance();
            if (v == '\\')
                v = lx.escape();
            if (lx.advance() != '\'')
                lx.err("unterminated char literal");
            Token t;
            t.kind = Tok::CharLit;
            t.intValue = static_cast<unsigned char>(v);
            t.line = startLine;
            out.push_back(std::move(t));
            continue;
        }

        // String literal (adjacent strings concatenate).
        if (c == '"') {
            const int startLine = lx.line;
            std::string body;
            while (lx.peek() == '"') {
                lx.advance();
                while (lx.peek() != '"') {
                    if (lx.pos >= source.size())
                        lx.err("unterminated string literal");
                    char v = lx.advance();
                    if (v == '\\')
                        v = lx.escape();
                    body.push_back(v);
                }
                lx.advance();
                // Skip whitespace to allow "a" "b" concatenation.
                while (std::isspace(static_cast<unsigned char>(lx.peek())))
                    lx.advance();
            }
            Token t;
            t.kind = Tok::StringLit;
            t.text = std::move(body);
            t.line = startLine;
            out.push_back(std::move(t));
            continue;
        }

        // Operators / punctuation.
        lx.advance();
        switch (c) {
          case '(': push(Tok::LParen); break;
          case ')': push(Tok::RParen); break;
          case '{': push(Tok::LBrace); break;
          case '}': push(Tok::RBrace); break;
          case '[': push(Tok::LBracket); break;
          case ']': push(Tok::RBracket); break;
          case ';': push(Tok::Semi); break;
          case ',': push(Tok::Comma); break;
          case '?': push(Tok::Question); break;
          case ':': push(Tok::Colon); break;
          case '~': push(Tok::Tilde); break;
          case '.': push(Tok::Dot); break;
          case '+':
            push(lx.match('+') ? Tok::PlusPlus
                 : lx.match('=') ? Tok::PlusEq : Tok::Plus);
            break;
          case '-':
            push(lx.match('-') ? Tok::MinusMinus
                 : lx.match('=') ? Tok::MinusEq
                 : lx.match('>') ? Tok::Arrow : Tok::Minus);
            break;
          case '*': push(lx.match('=') ? Tok::StarEq : Tok::Star); break;
          case '/': push(lx.match('=') ? Tok::SlashEq : Tok::Slash); break;
          case '%':
            push(lx.match('=') ? Tok::PercentEq : Tok::Percent);
            break;
          case '&':
            push(lx.match('&') ? Tok::AndAnd
                 : lx.match('=') ? Tok::AmpEq : Tok::Amp);
            break;
          case '|':
            push(lx.match('|') ? Tok::OrOr
                 : lx.match('=') ? Tok::PipeEq : Tok::Pipe);
            break;
          case '^': push(lx.match('=') ? Tok::CaretEq : Tok::Caret); break;
          case '=': push(lx.match('=') ? Tok::EqEq : Tok::Assign); break;
          case '!': push(lx.match('=') ? Tok::NotEq : Tok::Not); break;
          case '<':
            if (lx.match('<'))
                push(lx.match('=') ? Tok::ShlEq : Tok::Shl);
            else
                push(lx.match('=') ? Tok::Le : Tok::Lt);
            break;
          case '>':
            if (lx.match('>'))
                push(lx.match('=') ? Tok::ShrEq : Tok::Shr);
            else
                push(lx.match('=') ? Tok::Ge : Tok::Gt);
            break;
          default:
            lx.err(std::string("unexpected character '") + c + "'");
        }
    }

    push(Tok::End);
    return out;
}

} // namespace d16sim::mc
