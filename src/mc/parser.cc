#include "mc/parser.hh"

#include "mc/lexer.hh"

#include <algorithm>

#include "support/bits.hh"
#include "support/error.hh"

namespace d16sim::mc
{

namespace
{

struct Parser
{
    std::vector<Token> toks;
    size_t pos = 0;
    Program *prog = nullptr;

    const Token &peek(int ahead = 0) const
    {
        const size_t i = pos + ahead;
        return i < toks.size() ? toks[i] : toks.back();
    }

    const Token &advance() { return toks[pos < toks.size() - 1 ? pos++ : pos]; }

    bool check(Tok k) const { return peek().kind == k; }

    bool
    match(Tok k)
    {
        if (check(k)) {
            advance();
            return true;
        }
        return false;
    }

    [[noreturn]] void
    err(const std::string &msg) const
    {
        fatal("minic line ", peek().line, ": ", msg);
    }

    const Token &
    expect(Tok k, const char *what)
    {
        if (!check(k))
            err(std::string("expected ") + what + ", got " +
                tokName(peek().kind));
        return toks[pos++];
    }

    // ----- types ------------------------------------------------------

    bool
    startsType() const
    {
        switch (peek().kind) {
          case Tok::KwInt: case Tok::KwUnsigned: case Tok::KwChar:
          case Tok::KwFloat: case Tok::KwDouble: case Tok::KwVoid:
          case Tok::KwStruct:
            return true;
          default:
            return false;
        }
    }

    /** Base type + leading '*'s. */
    const Type *
    parseType()
    {
        const Type *base = nullptr;
        switch (advance().kind) {
          case Tok::KwInt: base = prog->types.intTy(); break;
          case Tok::KwUnsigned:
            match(Tok::KwInt);  // allow "unsigned int"
            base = prog->types.uintTy();
            break;
          case Tok::KwChar: base = prog->types.charTy(); break;
          case Tok::KwFloat: base = prog->types.floatTy(); break;
          case Tok::KwDouble: base = prog->types.doubleTy(); break;
          case Tok::KwVoid: base = prog->types.voidTy(); break;
          case Tok::KwStruct: {
            const Token &tag = expect(Tok::Ident, "struct tag");
            StructInfo *info = prog->types.declareStruct(tag.text);
            base = prog->types.structType(info);
            break;
          }
          default:
            err("expected type");
        }
        while (match(Tok::Star))
            base = prog->types.pointerTo(base);
        return base;
    }

    /** Trailing array dimensions on a declarator. */
    const Type *
    parseArraySuffix(const Type *t)
    {
        std::vector<int> dims;
        while (match(Tok::LBracket)) {
            ExprPtr sizeExpr = parseConditional();
            dims.push_back(static_cast<int>(evalConstInt(*sizeExpr)));
            expect(Tok::RBracket, "']'");
        }
        for (auto it = dims.rbegin(); it != dims.rend(); ++it)
            t = prog->types.arrayOf(t, *it);
        return t;
    }

    // ----- expressions -------------------------------------------------

    ExprPtr
    makeExpr(ExprKind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = peek().line;
        return e;
    }

    ExprPtr
    parsePrimary()
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::IntLit: {
            auto e = makeExpr(ExprKind::IntLit);
            e->intValue = t.intValue;
            advance();
            return e;
          }
          case Tok::CharLit: {
            auto e = makeExpr(ExprKind::IntLit);
            e->intValue = t.intValue;
            advance();
            return e;
          }
          case Tok::FloatLit: {
            auto e = makeExpr(ExprKind::FloatLit);
            e->floatValue = t.floatValue;
            e->floatIsSingle = t.floatIsSingle;
            advance();
            return e;
          }
          case Tok::StringLit: {
            auto e = makeExpr(ExprKind::StringLit);
            e->strValue = t.text;
            advance();
            return e;
          }
          case Tok::Ident: {
            if (peek(1).kind == Tok::LParen) {
                auto e = makeExpr(ExprKind::Call);
                e->strValue = t.text;
                advance();
                advance();
                if (!check(Tok::RParen)) {
                    do {
                        e->args.push_back(parseAssignment());
                    } while (match(Tok::Comma));
                }
                expect(Tok::RParen, "')'");
                return e;
            }
            auto e = makeExpr(ExprKind::Ident);
            e->strValue = t.text;
            advance();
            return e;
          }
          case Tok::LParen: {
            advance();
            ExprPtr e = parseExpr();
            expect(Tok::RParen, "')'");
            return e;
          }
          default:
            err("expected expression, got " + tokName(t.kind));
        }
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        while (true) {
            if (match(Tok::LBracket)) {
                auto idx = makeExpr(ExprKind::Index);
                idx->a = std::move(e);
                idx->b = parseExpr();
                expect(Tok::RBracket, "']'");
                e = std::move(idx);
            } else if (check(Tok::Dot) || check(Tok::Arrow)) {
                const bool arrow = advance().kind == Tok::Arrow;
                auto m = makeExpr(ExprKind::Member);
                m->arrow = arrow;
                m->a = std::move(e);
                m->strValue = expect(Tok::Ident, "field name").text;
                e = std::move(m);
            } else if (check(Tok::PlusPlus) || check(Tok::MinusMinus)) {
                const bool inc = advance().kind == Tok::PlusPlus;
                auto p = makeExpr(ExprKind::IncDec);
                p->isIncrement = inc;
                p->isPrefix = false;
                p->a = std::move(e);
                e = std::move(p);
            } else {
                break;
            }
        }
        return e;
    }

    ExprPtr
    parseUnary()
    {
        switch (peek().kind) {
          case Tok::Minus: case Tok::Not: case Tok::Tilde:
          case Tok::Star: case Tok::Amp: case Tok::Plus: {
            const Tok k = advance().kind;
            auto e = makeExpr(ExprKind::Unary);
            switch (k) {
              case Tok::Minus: e->unOp = UnOp::Neg; break;
              case Tok::Not: e->unOp = UnOp::LogNot; break;
              case Tok::Tilde: e->unOp = UnOp::BitNot; break;
              case Tok::Star: e->unOp = UnOp::Deref; break;
              case Tok::Amp: e->unOp = UnOp::AddrOf; break;
              default: e->unOp = UnOp::Plus; break;
            }
            e->a = parseUnary();
            return e;
          }
          case Tok::PlusPlus:
          case Tok::MinusMinus: {
            const bool inc = advance().kind == Tok::PlusPlus;
            auto e = makeExpr(ExprKind::IncDec);
            e->isIncrement = inc;
            e->isPrefix = true;
            e->a = parseUnary();
            return e;
          }
          case Tok::KwSizeof: {
            advance();
            auto e = makeExpr(ExprKind::SizeofType);
            expect(Tok::LParen, "'('");
            if (startsType()) {
                e->sizeofType = parseArraySuffixFree(parseType());
            } else {
                // sizeof(expr): keep the expression; sema sizes it.
                e->a = parseExpr();
            }
            expect(Tok::RParen, "')'");
            return e;
          }
          case Tok::LParen:
            // Cast?
            if (startsTypeAt(1)) {
                advance();
                const Type *t = parseType();
                expect(Tok::RParen, "')'");
                auto e = makeExpr(ExprKind::Cast);
                e->castType = t;
                e->a = parseUnary();
                return e;
            }
            return parsePostfix();
          default:
            return parsePostfix();
        }
    }

    bool
    startsTypeAt(int ahead) const
    {
        switch (peek(ahead).kind) {
          case Tok::KwInt: case Tok::KwUnsigned: case Tok::KwChar:
          case Tok::KwFloat: case Tok::KwDouble: case Tok::KwVoid:
          case Tok::KwStruct:
            return true;
          default:
            return false;
        }
    }

    const Type *
    parseArraySuffixFree(const Type *t)
    {
        // sizeof(int[10]) style suffix.
        return parseArraySuffix(t);
    }

    struct OpLevel
    {
        Tok tok;
        BinOp op;
        int prec;
    };

    static int
    precedence(Tok k, BinOp &op)
    {
        switch (k) {
          case Tok::Star: op = BinOp::Mul; return 10;
          case Tok::Slash: op = BinOp::Div; return 10;
          case Tok::Percent: op = BinOp::Rem; return 10;
          case Tok::Plus: op = BinOp::Add; return 9;
          case Tok::Minus: op = BinOp::Sub; return 9;
          case Tok::Shl: op = BinOp::Shl; return 8;
          case Tok::Shr: op = BinOp::Shr; return 8;
          case Tok::Lt: op = BinOp::Lt; return 7;
          case Tok::Gt: op = BinOp::Gt; return 7;
          case Tok::Le: op = BinOp::Le; return 7;
          case Tok::Ge: op = BinOp::Ge; return 7;
          case Tok::EqEq: op = BinOp::Eq; return 6;
          case Tok::NotEq: op = BinOp::Ne; return 6;
          case Tok::Amp: op = BinOp::And; return 5;
          case Tok::Caret: op = BinOp::Xor; return 4;
          case Tok::Pipe: op = BinOp::Or; return 3;
          case Tok::AndAnd: op = BinOp::LogAnd; return 2;
          case Tok::OrOr: op = BinOp::LogOr; return 1;
          default: return 0;
        }
    }

    ExprPtr
    parseBinary(int minPrec)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            BinOp op;
            const int prec = precedence(peek().kind, op);
            if (prec == 0 || prec < minPrec)
                return lhs;
            const int line = peek().line;
            advance();
            ExprPtr rhs = parseBinary(prec + 1);
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Binary;
            e->line = line;
            e->binOp = op;
            e->a = std::move(lhs);
            e->b = std::move(rhs);
            lhs = std::move(e);
        }
    }

    ExprPtr
    parseConditional()
    {
        ExprPtr cond = parseBinary(1);
        if (!match(Tok::Question))
            return cond;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Cond;
        e->line = cond->line;
        e->a = std::move(cond);
        e->b = parseAssignment();
        expect(Tok::Colon, "':'");
        e->c = parseConditional();
        return e;
    }

    ExprPtr
    parseAssignment()
    {
        ExprPtr lhs = parseConditional();
        BinOp op = BinOp::None;
        bool compound = true;
        switch (peek().kind) {
          case Tok::Assign: compound = false; break;
          case Tok::PlusEq: op = BinOp::Add; break;
          case Tok::MinusEq: op = BinOp::Sub; break;
          case Tok::StarEq: op = BinOp::Mul; break;
          case Tok::SlashEq: op = BinOp::Div; break;
          case Tok::PercentEq: op = BinOp::Rem; break;
          case Tok::AmpEq: op = BinOp::And; break;
          case Tok::PipeEq: op = BinOp::Or; break;
          case Tok::CaretEq: op = BinOp::Xor; break;
          case Tok::ShlEq: op = BinOp::Shl; break;
          case Tok::ShrEq: op = BinOp::Shr; break;
          default:
            return lhs;
        }
        const int line = peek().line;
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Assign;
        e->line = line;
        e->binOp = op;
        e->compound = compound;
        e->a = std::move(lhs);
        e->b = parseAssignment();
        return e;
    }

    ExprPtr parseExpr() { return parseAssignment(); }

    // ----- statements ---------------------------------------------------

    StmtPtr
    makeStmt(StmtKind k)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = k;
        s->line = peek().line;
        return s;
    }

    StmtPtr
    parseBlock()
    {
        auto block = makeStmt(StmtKind::Block);
        expect(Tok::LBrace, "'{'");
        while (!check(Tok::RBrace)) {
            if (check(Tok::End))
                err("unterminated block");
            block->body.push_back(parseStatement());
        }
        advance();
        return block;
    }

    StmtPtr
    parseLocalDecl()
    {
        auto s = makeStmt(StmtKind::Decl);
        const Type *base = parseType();
        do {
            LocalDecl d;
            d.line = peek().line;
            const Type *t = base;
            while (match(Tok::Star))
                t = prog->types.pointerTo(t);
            d.name = expect(Tok::Ident, "variable name").text;
            t = parseArraySuffix(t);
            d.type = t;
            if (match(Tok::Assign)) {
                if (check(Tok::LBrace)) {
                    advance();
                    do {
                        d.initList.push_back(parseAssignment());
                    } while (match(Tok::Comma) && !check(Tok::RBrace));
                    expect(Tok::RBrace, "'}'");
                } else {
                    d.init = parseAssignment();
                }
            }
            s->decls.push_back(std::move(d));
        } while (match(Tok::Comma));
        expect(Tok::Semi, "';'");
        return s;
    }

    StmtPtr
    parseStatement()
    {
        switch (peek().kind) {
          case Tok::LBrace:
            return parseBlock();
          case Tok::Semi:
            advance();
            return makeStmt(StmtKind::Empty);
          case Tok::KwIf: {
            auto s = makeStmt(StmtKind::If);
            advance();
            expect(Tok::LParen, "'('");
            s->cond = parseExpr();
            expect(Tok::RParen, "')'");
            s->thenStmt = parseStatement();
            if (match(Tok::KwElse))
                s->elseStmt = parseStatement();
            return s;
          }
          case Tok::KwWhile: {
            auto s = makeStmt(StmtKind::While);
            advance();
            expect(Tok::LParen, "'('");
            s->cond = parseExpr();
            expect(Tok::RParen, "')'");
            s->loopBody = parseStatement();
            return s;
          }
          case Tok::KwDo: {
            auto s = makeStmt(StmtKind::DoWhile);
            advance();
            s->loopBody = parseStatement();
            expect(Tok::KwWhile, "'while'");
            expect(Tok::LParen, "'('");
            s->cond = parseExpr();
            expect(Tok::RParen, "')'");
            expect(Tok::Semi, "';'");
            return s;
          }
          case Tok::KwFor: {
            auto s = makeStmt(StmtKind::For);
            advance();
            expect(Tok::LParen, "'('");
            if (!check(Tok::Semi)) {
                if (startsType()) {
                    s->forInit = parseLocalDecl();
                } else {
                    auto init = makeStmt(StmtKind::ExprStmt);
                    init->expr = parseExpr();
                    expect(Tok::Semi, "';'");
                    s->forInit = std::move(init);
                }
            } else {
                advance();
            }
            if (!check(Tok::Semi))
                s->cond = parseExpr();
            expect(Tok::Semi, "';'");
            if (!check(Tok::RParen))
                s->forStep = parseExpr();
            expect(Tok::RParen, "')'");
            s->loopBody = parseStatement();
            return s;
          }
          case Tok::KwReturn: {
            auto s = makeStmt(StmtKind::Return);
            advance();
            if (!check(Tok::Semi))
                s->expr = parseExpr();
            expect(Tok::Semi, "';'");
            return s;
          }
          case Tok::KwBreak: {
            auto s = makeStmt(StmtKind::Break);
            advance();
            expect(Tok::Semi, "';'");
            return s;
          }
          case Tok::KwContinue: {
            auto s = makeStmt(StmtKind::Continue);
            advance();
            expect(Tok::Semi, "';'");
            return s;
          }
          default:
            if (startsType())
                return parseLocalDecl();
            auto s = makeStmt(StmtKind::ExprStmt);
            s->expr = parseExpr();
            expect(Tok::Semi, "';'");
            return s;
        }
    }

    // ----- top level ------------------------------------------------------

    void
    parseStructDefinition()
    {
        advance();  // struct
        const Token &tag = expect(Tok::Ident, "struct tag");
        StructInfo *info = prog->types.declareStruct(tag.text);
        if (info->complete)
            err("struct '" + tag.text + "' redefined");
        expect(Tok::LBrace, "'{'");
        int offset = 0;
        int align = 1;
        while (!match(Tok::RBrace)) {
            const Type *base = parseType();
            do {
                StructField f;
                const Type *t = base;
                while (match(Tok::Star))
                    t = prog->types.pointerTo(t);
                f.name = expect(Tok::Ident, "field name").text;
                t = parseArraySuffix(t);
                f.type = t;
                const int a = t->align();
                offset = static_cast<int>(roundUp(offset, a));
                f.offset = offset;
                offset += t->size();
                align = std::max(align, a);
                info->fields.push_back(std::move(f));
            } while (match(Tok::Comma));
            expect(Tok::Semi, "';'");
        }
        expect(Tok::Semi, "';'");
        info->size = static_cast<int>(roundUp(offset, align));
        info->align = align;
        info->complete = true;
    }

    void
    parseTopLevel()
    {
        if (check(Tok::KwStruct) && peek(2).kind == Tok::LBrace) {
            parseStructDefinition();
            return;
        }
        const int line = peek().line;
        const Type *base = parseType();
        const std::string name = expect(Tok::Ident, "declarator name").text;

        if (check(Tok::LParen)) {
            // Function.
            advance();
            FuncDecl fn;
            fn.name = name;
            fn.retType = base;
            fn.line = line;
            if (!check(Tok::RParen) && !check(Tok::KwVoid)) {
                do {
                    Param p;
                    p.line = peek().line;
                    p.type = parseType();
                    p.name = expect(Tok::Ident, "parameter name").text;
                    fn.params.push_back(std::move(p));
                } while (match(Tok::Comma));
            } else {
                match(Tok::KwVoid);
            }
            expect(Tok::RParen, "')'");
            if (match(Tok::Semi)) {
                prog->functions.push_back(std::move(fn));  // prototype
                return;
            }
            fn.body = parseBlock();
            prog->functions.push_back(std::move(fn));
            return;
        }

        // Global variable(s).
        std::string declName = name;
        const Type *declBase = base;
        while (true) {
            GlobalDecl g;
            g.name = declName;
            g.line = line;
            g.type = parseArraySuffix(declBase);
            if (match(Tok::Assign)) {
                if (check(Tok::LBrace)) {
                    advance();
                    do {
                        g.initList.push_back(parseAssignment());
                    } while (match(Tok::Comma) && !check(Tok::RBrace));
                    expect(Tok::RBrace, "'}'");
                } else if (check(Tok::StringLit) && g.type->isArray()) {
                    g.stringInit = peek().text;
                    g.hasStringInit = true;
                    advance();
                } else {
                    g.init = parseAssignment();
                }
            }
            prog->globals.push_back(std::move(g));
            if (!match(Tok::Comma))
                break;
            declBase = base;
            while (match(Tok::Star))
                declBase = prog->types.pointerTo(declBase);
            declName = expect(Tok::Ident, "declarator name").text;
        }
        expect(Tok::Semi, "';'");
    }
};

} // namespace

int64_t
evalConstInt(const Expr &e)
{
    switch (e.kind) {
      case ExprKind::IntLit:
        return e.intValue;
      case ExprKind::SizeofType:
        if (e.sizeofType)
            return e.sizeofType->size();
        fatal("minic line ", e.line, ": sizeof(expr) not constant here");
      case ExprKind::Unary:
        switch (e.unOp) {
          case UnOp::Neg: return -evalConstInt(*e.a);
          case UnOp::BitNot: return ~evalConstInt(*e.a);
          case UnOp::Plus: return evalConstInt(*e.a);
          case UnOp::LogNot: return !evalConstInt(*e.a);
          default: break;
        }
        break;
      case ExprKind::Binary: {
        const int64_t a = evalConstInt(*e.a);
        const int64_t b = evalConstInt(*e.b);
        switch (e.binOp) {
          case BinOp::Add: return a + b;
          case BinOp::Sub: return a - b;
          case BinOp::Mul: return a * b;
          case BinOp::Div:
            if (!b)
                fatal("minic line ", e.line, ": division by zero");
            return a / b;
          case BinOp::Rem:
            if (!b)
                fatal("minic line ", e.line, ": division by zero");
            return a % b;
          case BinOp::And: return a & b;
          case BinOp::Or: return a | b;
          case BinOp::Xor: return a ^ b;
          case BinOp::Shl: return a << (b & 31);
          case BinOp::Shr: return a >> (b & 31);
          case BinOp::Lt: return a < b;
          case BinOp::Gt: return a > b;
          case BinOp::Le: return a <= b;
          case BinOp::Ge: return a >= b;
          case BinOp::Eq: return a == b;
          case BinOp::Ne: return a != b;
          default: break;
        }
        break;
      }
      case ExprKind::Cast:
        if (e.castType && e.castType->isInteger())
            return evalConstInt(*e.a);
        break;
      default:
        break;
    }
    fatal("minic line ", e.line, ": expression is not an integer constant");
}

Program
parseProgram(std::string_view source)
{
    Program prog;
    Parser p;
    p.toks = lex(source);
    p.prog = &prog;
    while (!p.check(Tok::End))
        p.parseTopLevel();
    return prog;
}

} // namespace d16sim::mc
