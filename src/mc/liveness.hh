/**
 * @file
 * Backward dataflow liveness over virtual registers.
 *
 * Feeds the interference graph of the Chaitin-style allocator and the
 * dead-code elimination pass. Register sets are bitsets indexed by
 * vreg id (the id space is shared across register classes).
 */

#ifndef D16SIM_MC_LIVENESS_HH
#define D16SIM_MC_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "mc/ir.hh"

namespace d16sim::mc
{

/** Dense bitset sized to a function's vreg count. */
class RegSet
{
  public:
    RegSet() = default;
    explicit RegSet(int bits) : words_((bits + 63) / 64, 0) {}

    void
    add(int id)
    {
        words_[id / 64] |= (uint64_t{1} << (id % 64));
    }

    void
    remove(int id)
    {
        words_[id / 64] &= ~(uint64_t{1} << (id % 64));
    }

    bool
    contains(int id) const
    {
        return (words_[id / 64] >> (id % 64)) & 1;
    }

    /** this |= other; returns true if this changed. */
    bool
    unionWith(const RegSet &other)
    {
        bool changed = false;
        for (size_t i = 0; i < words_.size(); ++i) {
            const uint64_t merged = words_[i] | other.words_[i];
            if (merged != words_[i]) {
                words_[i] = merged;
                changed = true;
            }
        }
        return changed;
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t bits = words_[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                fn(static_cast<int>(w * 64 + b));
                bits &= bits - 1;
            }
        }
    }

    int
    count() const
    {
        int n = 0;
        for (uint64_t w : words_)
            n += __builtin_popcountll(w);
        return n;
    }

  private:
    std::vector<uint64_t> words_;
};

struct Liveness
{
    std::vector<RegSet> liveIn;   //!< per block
    std::vector<RegSet> liveOut;  //!< per block
};

/** Compute liveness for the whole function. */
Liveness computeLiveness(const IrFunction &fn);

} // namespace d16sim::mc

#endif // D16SIM_MC_LIVENESS_HH
