#include "mc/opt.hh"

#include <map>
#include <optional>
#include <tuple>

#include "mc/liveness.hh"
#include "support/error.hh"

namespace d16sim::mc
{

namespace
{

bool
isPure(const IrInst &inst)
{
    switch (inst.op) {
      case IrOp::Store: case IrOp::Call: case IrOp::Ret:
      case IrOp::Br: case IrOp::Jmp: case IrOp::BrCmp: case IrOp::BrFCmp:
        return false;
      case IrOp::Load:
        return false;  // removable only via the load-CSE machinery
      default:
        return true;
    }
}

int64_t
foldBinary(IrOp op, isa::Cond cond, int64_t av, int64_t bv, bool &ok)
{
    const auto a = static_cast<uint32_t>(av);
    const auto b = static_cast<uint32_t>(bv);
    const auto sa = static_cast<int32_t>(a);
    const auto sb = static_cast<int32_t>(b);
    ok = true;
    switch (op) {
      case IrOp::Add: return static_cast<int32_t>(a + b);
      case IrOp::Sub: return static_cast<int32_t>(a - b);
      case IrOp::Mul: return static_cast<int32_t>(a * b);
      case IrOp::DivS:
        if (sb == 0 || (sa == INT32_MIN && sb == -1)) {
            ok = false;
            return 0;
        }
        return sa / sb;
      case IrOp::DivU:
        if (b == 0) {
            ok = false;
            return 0;
        }
        return static_cast<int32_t>(a / b);
      case IrOp::RemS:
        if (sb == 0 || (sa == INT32_MIN && sb == -1)) {
            ok = false;
            return 0;
        }
        return sa % sb;
      case IrOp::RemU:
        if (b == 0) {
            ok = false;
            return 0;
        }
        return static_cast<int32_t>(a % b);
      case IrOp::And: return static_cast<int32_t>(a & b);
      case IrOp::Or: return static_cast<int32_t>(a | b);
      case IrOp::Xor: return static_cast<int32_t>(a ^ b);
      case IrOp::Shl: return static_cast<int32_t>(a << (b & 31));
      case IrOp::ShrL: return static_cast<int32_t>(a >> (b & 31));
      case IrOp::ShrA: return sa >> (b & 31);
      case IrOp::Cmp: return isa::evalCond(cond, a, b) ? 1 : 0;
      default:
        ok = false;
        return 0;
    }
}

/** Per-block value tracking for constants and copies. */
struct BlockValues
{
    // vreg id -> known constant
    std::map<int, int64_t> constants;
    // vreg id -> vreg it copies (same class)
    std::map<int, VReg> copies;

    void
    invalidate(int id)
    {
        constants.erase(id);
        copies.erase(id);
        for (auto it = copies.begin(); it != copies.end();) {
            if (it->second.id == id)
                it = copies.erase(it);
            else
                ++it;
        }
    }

    VReg
    resolveCopy(VReg r) const
    {
        auto it = copies.find(r.id);
        int hops = 0;
        while (it != copies.end() && hops++ < 8) {
            r = it->second;
            it = copies.find(r.id);
        }
        return r;
    }

    std::optional<int64_t>
    constOf(VReg r) const
    {
        auto it = constants.find(resolveCopy(r).id);
        if (it != constants.end())
            return it->second;
        it = constants.find(r.id);
        if (it != constants.end())
            return it->second;
        return std::nullopt;
    }
};

} // namespace

void
foldConstants(IrFunction &fn)
{
    for (BasicBlock &bb : fn.blocks) {
        BlockValues vals;
        for (IrInst &inst : bb.insts) {
            // Rewrite register uses through known copies; immediates
            // replace register operands that are known constants.
            if (inst.a.valid() && inst.a.cls == RegClass::Int)
                inst.a = vals.resolveCopy(inst.a);
            if (inst.a.valid() && inst.a.cls == RegClass::Fp)
                inst.a = vals.resolveCopy(inst.a);
            if (inst.b.isReg()) {
                inst.b.reg = vals.resolveCopy(inst.b.reg);
                if (inst.b.reg.cls == RegClass::Int) {
                    if (auto c = vals.constOf(inst.b.reg))
                        inst.b = Operand::ofImm(*c);
                }
            }
            if (inst.addr.kind == AddrKind::Reg && inst.addr.base.valid())
                inst.addr.base = vals.resolveCopy(inst.addr.base);
            for (VReg &arg : inst.args)
                arg = vals.resolveCopy(arg);

            // Folding.
            switch (inst.op) {
              case IrOp::Add: case IrOp::Sub: case IrOp::Mul:
              case IrOp::DivS: case IrOp::DivU:
              case IrOp::RemS: case IrOp::RemU:
              case IrOp::And: case IrOp::Or: case IrOp::Xor:
              case IrOp::Shl: case IrOp::ShrL: case IrOp::ShrA:
              case IrOp::Cmp: {
                auto ca = vals.constOf(inst.a);
                std::optional<int64_t> cb;
                if (inst.b.isImm())
                    cb = inst.b.imm;
                else if (inst.b.isReg())
                    cb = vals.constOf(inst.b.reg);
                if (ca && cb) {
                    bool ok = false;
                    const int64_t v =
                        foldBinary(inst.op, inst.cond, *ca, *cb, ok);
                    if (ok) {
                        inst.op = IrOp::MovImm;
                        inst.imm = v;
                        inst.a = VReg{};
                        inst.b = Operand{};
                        break;
                    }
                }
                // Algebraic identities with a constant RHS.
                if (cb) {
                    const int64_t c = *cb;
                    const bool isAddSub =
                        inst.op == IrOp::Add || inst.op == IrOp::Sub;
                    const bool isShift = inst.op == IrOp::Shl ||
                                         inst.op == IrOp::ShrL ||
                                         inst.op == IrOp::ShrA;
                    if ((isAddSub || isShift || inst.op == IrOp::Or ||
                         inst.op == IrOp::Xor) &&
                        c == 0) {
                        inst.op = IrOp::Mov;
                        inst.b = Operand{};
                        break;
                    }
                    if (inst.op == IrOp::Mul && c == 1) {
                        inst.op = IrOp::Mov;
                        inst.b = Operand{};
                        break;
                    }
                    if ((inst.op == IrOp::DivS || inst.op == IrOp::DivU) &&
                        c == 1) {
                        inst.op = IrOp::Mov;
                        inst.b = Operand{};
                        break;
                    }
                    if ((inst.op == IrOp::Mul || inst.op == IrOp::And) &&
                        c == 0) {
                        inst.op = IrOp::MovImm;
                        inst.imm = 0;
                        inst.a = VReg{};
                        inst.b = Operand{};
                        break;
                    }
                }
                break;
              }
              case IrOp::Neg: case IrOp::Not: {
                if (auto c = vals.constOf(inst.a)) {
                    const bool isNeg = inst.op == IrOp::Neg;
                    inst.op = IrOp::MovImm;
                    // Negate in unsigned arithmetic: -INT32_MIN would be
                    // signed overflow on the host, the machine wraps.
                    inst.imm = isNeg ? static_cast<int32_t>(0u - *c)
                                     : ~static_cast<int32_t>(*c);
                    inst.a = VReg{};
                }
                break;
              }
              case IrOp::Br: {
                if (auto c = vals.constOf(inst.a)) {
                    inst.op = IrOp::Jmp;
                    inst.thenBB = *c ? inst.thenBB : inst.elseBB;
                    inst.a = VReg{};
                }
                break;
              }
              default:
                break;
            }

            // Record new facts.
            const VReg d = defOf(inst);
            if (d.valid()) {
                vals.invalidate(d.id);
                if (inst.op == IrOp::MovImm)
                    vals.constants[d.id] = inst.imm;
                else if (inst.op == IrOp::Mov && inst.a.valid() &&
                         !(inst.a == d)) {
                    vals.copies[d.id] = inst.a;
                }
            }
        }
    }
}

void
localCse(IrFunction &fn)
{
    using Key = std::tuple<int, int, int, int, int64_t, int, int,
                           std::string, int64_t>;
    for (BasicBlock &bb : fn.blocks) {
        std::map<Key, VReg> available;
        std::map<Key, VReg> loads;
        // vreg id -> keys that mention it (for invalidation).
        auto invalidateUses = [&](int id) {
            auto mentions = [id](const Key &key) {
                const auto &[op, cond, aId, bKind, bVal, ak, slot, sym,
                             off] = key;
                (void)op; (void)cond; (void)sym; (void)off;
                if (aId == id)
                    return true;
                if (bKind == 1 && bVal == id)
                    return true;
                // Register-based addresses key their base in `slot`.
                if (ak == static_cast<int>(AddrKind::Reg) && slot == id)
                    return true;
                return false;
            };
            for (auto it = available.begin(); it != available.end();) {
                if (mentions(it->first))
                    it = available.erase(it);
                else
                    ++it;
            }
            for (auto it = loads.begin(); it != loads.end();) {
                if (mentions(it->first))
                    it = loads.erase(it);
                else
                    ++it;
            }
        };

        auto makeKey = [](const IrInst &inst) -> Key {
            int bKind = 0;
            int64_t bVal = 0;
            if (inst.b.isReg()) {
                bKind = 1;
                bVal = inst.b.reg.id;
            } else if (inst.b.isImm()) {
                bKind = 2;
                bVal = inst.b.imm;
            }
            return {static_cast<int>(inst.op),
                    static_cast<int>(inst.cond),
                    inst.a.valid() ? inst.a.id : -1,
                    bKind,
                    bVal,
                    static_cast<int>(inst.addr.kind),
                    inst.addr.kind == AddrKind::Reg
                        ? inst.addr.base.id
                        : inst.addr.frameSlot,
                    inst.addr.sym,
                    (static_cast<int64_t>(inst.addr.offset) << 8) |
                        (inst.size & 0xff)};
        };

        for (size_t i = 0; i < bb.insts.size(); ++i) {
            IrInst &inst = bb.insts[i];
            const bool pure = isPure(inst) && inst.op != IrOp::Mov &&
                              inst.op != IrOp::MovImm &&
                              inst.op != IrOp::FMovImm &&
                              inst.op != IrOp::MifL &&
                              inst.op != IrOp::MifH;
            if (pure && defOf(inst).valid()) {
                const Key key = makeKey(inst);
                auto it = available.find(key);
                if (it != available.end()) {
                    IrInst mov;
                    mov.op = IrOp::Mov;
                    mov.dst = inst.dst;
                    mov.a = it->second;
                    inst = std::move(mov);
                } else {
                    available[key] = inst.dst;
                }
            } else if (inst.op == IrOp::Load) {
                const Key key = makeKey(inst);
                auto it = loads.find(key);
                if (it != loads.end() &&
                    it->second.cls == inst.dst.cls) {
                    IrInst mov;
                    mov.op = IrOp::Mov;
                    mov.dst = inst.dst;
                    mov.a = it->second;
                    inst = std::move(mov);
                } else {
                    loads[key] = inst.dst;
                }
            } else if (inst.op == IrOp::Store || inst.op == IrOp::Call) {
                // Conservative: memory changed.
                loads.clear();
            }

            const VReg d = defOf(inst);
            if (d.valid())
                invalidateUses(d.id);
        }
    }
}

void
eliminateDeadCode(IrFunction &fn)
{
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<int> uses(fn.numVRegs(), 0);
        for (const BasicBlock &bb : fn.blocks)
            for (const IrInst &inst : bb.insts)
                forEachUse(inst, [&](VReg r) { ++uses[r.id]; });

        for (BasicBlock &bb : fn.blocks) {
            std::vector<IrInst> kept;
            kept.reserve(bb.insts.size());
            for (IrInst &inst : bb.insts) {
                const VReg d = defOf(inst);
                const bool removable =
                    d.valid() && uses[d.id] == 0 &&
                    (isPure(inst) || inst.op == IrOp::Load);
                if (removable) {
                    changed = true;
                    continue;
                }
                // A call whose result is unused keeps running but
                // drops its destination.
                if (inst.op == IrOp::Call && inst.dst.valid() &&
                    uses[inst.dst.id] == 0) {
                    inst.dst = VReg{};
                }
                kept.push_back(std::move(inst));
            }
            bb.insts = std::move(kept);
        }
    }
}

void
simplifyCfg(IrFunction &fn)
{
    const int n = static_cast<int>(fn.blocks.size());

    // Thread jumps through empty forwarding blocks.
    std::vector<int> forward(n);
    for (int b = 0; b < n; ++b) {
        forward[b] = b;
        const BasicBlock &bb = fn.blocks[b];
        if (bb.insts.size() == 1 && bb.insts[0].op == IrOp::Jmp)
            forward[b] = bb.insts[0].thenBB;
    }
    auto resolve = [&](int b) {
        int hops = 0;
        while (forward[b] != b && hops++ < n)
            b = forward[b];
        return b;
    };
    for (BasicBlock &bb : fn.blocks) {
        if (bb.insts.empty())
            continue;
        IrInst &t = bb.insts.back();
        if (t.op == IrOp::Jmp || t.op == IrOp::Br ||
            t.op == IrOp::BrCmp || t.op == IrOp::BrFCmp) {
            t.thenBB = resolve(t.thenBB);
            if (t.op != IrOp::Jmp)
                t.elseBB = resolve(t.elseBB);
            // A conditional with equal targets is a jump.
            if (t.op == IrOp::Br && t.thenBB == t.elseBB) {
                t.op = IrOp::Jmp;
                t.a = VReg{};
            }
        }
    }

    // Drop unreachable blocks, remapping ids.
    std::vector<bool> reachable(n, false);
    std::vector<int> stack = {0};
    reachable[0] = true;
    while (!stack.empty()) {
        const int b = stack.back();
        stack.pop_back();
        for (int s : fn.blocks[b].successors()) {
            if (!reachable[s]) {
                reachable[s] = true;
                stack.push_back(s);
            }
        }
    }
    std::vector<int> remap(n, -1);
    std::vector<BasicBlock> kept;
    for (int b = 0; b < n; ++b) {
        if (reachable[b]) {
            remap[b] = static_cast<int>(kept.size());
            kept.push_back(std::move(fn.blocks[b]));
        }
    }
    for (size_t b = 0; b < kept.size(); ++b) {
        kept[b].id = static_cast<int>(b);
        IrInst &t = kept[b].insts.back();
        if (t.op == IrOp::Jmp || t.op == IrOp::Br ||
            t.op == IrOp::BrCmp || t.op == IrOp::BrFCmp) {
            t.thenBB = remap[t.thenBB];
            if (t.op != IrOp::Jmp)
                t.elseBB = remap[t.elseBB];
        }
    }
    fn.blocks = std::move(kept);
}

void
hoistLoopInvariants(IrFunction &fn)
{
    const int n = static_cast<int>(fn.blocks.size());
    if (n == 0)
        return;

    // Predecessors.
    std::vector<std::vector<int>> preds(n);
    for (int b = 0; b < n; ++b)
        for (int s : fn.blocks[b].successors())
            preds[s].push_back(b);

    // Iterative dominator computation (entry = block 0).
    std::vector<std::vector<bool>> dom(n, std::vector<bool>(n, true));
    dom[0].assign(n, false);
    dom[0][0] = true;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = 1; b < n; ++b) {
            std::vector<bool> next(n, true);
            bool any = false;
            for (int p : preds[b]) {
                any = true;
                for (int i = 0; i < n; ++i)
                    next[i] = next[i] && dom[p][i];
            }
            if (!any)
                next.assign(n, false);
            next[b] = true;
            if (next != dom[b]) {
                dom[b] = std::move(next);
                changed = true;
            }
        }
    }

    // Global def counts: we only hoist registers with exactly one
    // definition in the whole function (then partial redundancy of a
    // pure instruction is harmless).
    std::vector<int> defCount(fn.numVRegs(), 0);
    for (const BasicBlock &bb : fn.blocks)
        for (const IrInst &inst : bb.insts)
            if (defOf(inst).valid())
                ++defCount[defOf(inst).id];

    // Natural loops from back edges (latch -> header it is dominated
    // by).
    for (int header = 0; header < n; ++header) {
        std::vector<int> latches;
        for (int p : preds[header])
            if (dom[p][header])
                latches.push_back(p);
        if (latches.empty())
            continue;

        std::vector<bool> inLoop(n, false);
        inLoop[header] = true;
        std::vector<int> work;
        for (int l : latches) {
            if (!inLoop[l]) {
                inLoop[l] = true;
                work.push_back(l);
            }
        }
        while (!work.empty()) {
            const int b = work.back();
            work.pop_back();
            if (b == header)
                continue;
            for (int p : preds[b]) {
                if (!inLoop[p]) {
                    inLoop[p] = true;
                    work.push_back(p);
                }
            }
        }

        // Preheader: the unique predecessor of the header from outside
        // the loop, ending in an unconditional jump to the header.
        int preheader = -1;
        int outsidePreds = 0;
        for (int p : preds[header]) {
            if (!inLoop[p]) {
                ++outsidePreds;
                preheader = p;
            }
        }
        if (outsidePreds != 1 || preheader < 0)
            continue;
        BasicBlock &ph = fn.blocks[preheader];
        if (ph.insts.empty() || ph.insts.back().op != IrOp::Jmp ||
            ph.insts.back().thenBB != header) {
            continue;
        }

        // Registers defined anywhere in the loop.
        RegSet definedInLoop(fn.numVRegs());
        for (int b = 0; b < n; ++b) {
            if (!inLoop[b])
                continue;
            for (const IrInst &inst : fn.blocks[b].insts) {
                const VReg d = defOf(inst);
                if (d.valid())
                    definedInLoop.add(d.id);
            }
        }

        for (int b = 0; b < n; ++b) {
            if (!inLoop[b])
                continue;
            BasicBlock &bb = fn.blocks[b];
            std::vector<IrInst> kept;
            for (IrInst &inst : bb.insts) {
                const VReg d = defOf(inst);
                bool hoistable = d.valid() && isPure(inst) &&
                                 inst.op != IrOp::Mov &&
                                 inst.op != IrOp::MifL &&
                                 inst.op != IrOp::MifH &&
                                 defCount[d.id] == 1;
                if (hoistable) {
                    forEachUse(inst, [&](VReg r) {
                        if (definedInLoop.contains(r.id) &&
                            !(r == d)) {
                            hoistable = false;
                        }
                        if (r == d)
                            hoistable = false;  // self-dependent
                    });
                }
                if (hoistable) {
                    ph.insts.insert(ph.insts.end() - 1, inst);
                } else {
                    kept.push_back(std::move(inst));
                }
            }
            bb.insts = std::move(kept);
        }
    }
}

void
optimize(IrFunction &fn, int level, const PassHook &afterPass)
{
    if (level <= 0)
        return;
    auto run = [&](void (*pass)(IrFunction &), const char *name) {
        pass(fn);
        if (afterPass)
            afterPass(fn, name);
    };
    for (int round = 0; round < 3; ++round) {
        run(foldConstants, "opt:fold");
        run(localCse, "opt:cse");
        run(eliminateDeadCode, "opt:dce");
        run(simplifyCfg, "opt:simplify-cfg");
    }
    if (level >= 2) {
        run(hoistLoopInvariants, "opt:licm");
        run(foldConstants, "opt:fold");
        run(eliminateDeadCode, "opt:dce");
        run(simplifyCfg, "opt:simplify-cfg");
    }
}

} // namespace d16sim::mc
