/**
 * @file
 * Target-independent IR optimizations.
 *
 * The suite corresponds to what the paper's GCC 2.1 baseline would do
 * at -O: constant folding and propagation, copy propagation, local
 * common-subexpression elimination (including redundant loads), dead
 * code elimination, branch folding, jump threading, and unreachable
 * code removal. Loop-invariant code motion is run at opt level 2.
 */

#ifndef D16SIM_MC_OPT_HH
#define D16SIM_MC_OPT_HH

#include <functional>

#include "mc/ir.hh"

namespace d16sim::mc
{

/** Called after each pass with the function and the pass name; used by
 *  the verification layer to pin a broken invariant on the pass that
 *  introduced it. */
using PassHook = std::function<void(const IrFunction &, const char *pass)>;

/** Run the optimization pipeline in place. level: 0 none, 1 local,
 *  2 adds loop-invariant code motion. */
void optimize(IrFunction &fn, int level, const PassHook &afterPass = {});

// Individual passes, exposed for unit testing.
void foldConstants(IrFunction &fn);     //!< const/copy prop + folding
void localCse(IrFunction &fn);
void eliminateDeadCode(IrFunction &fn);
void simplifyCfg(IrFunction &fn);       //!< threading + unreachable
void hoistLoopInvariants(IrFunction &fn);

} // namespace d16sim::mc

#endif // D16SIM_MC_OPT_HH
