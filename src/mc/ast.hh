/**
 * @file
 * MiniC abstract syntax tree.
 *
 * Tagged structs rather than a class hierarchy: a compiler of this size
 * reads better with explicit kind switches than with double dispatch.
 * Sema fills in Expr::type and Expr::lvalue, and rewrites the tree to
 * make implicit conversions explicit Cast nodes, so the IR generator
 * can be purely type-directed.
 */

#ifndef D16SIM_MC_AST_HH
#define D16SIM_MC_AST_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mc/type.hh"

namespace d16sim::mc
{

enum class ExprKind : uint8_t
{
    IntLit,     //!< intValue (type int/unsigned/char set by context)
    FloatLit,   //!< floatValue
    StringLit,  //!< strValue; type char* after decay
    Ident,      //!< name; resolved by sema (local / global / function)
    Unary,      //!< op in unOp; a
    Binary,     //!< op in binOp; a, b
    Assign,     //!< a = b, or compound (binOp set, compound = true)
    Cond,       //!< a ? b : c
    Call,       //!< callee name in strValue; args
    Index,      //!< a[b]
    Member,     //!< a.field / a->field (arrow flag)
    Cast,       //!< (castType) a; also inserted by sema
    SizeofType, //!< sizeofType
    IncDec,     //!< ++/-- (isIncrement, isPrefix); operand a
};

enum class UnOp : uint8_t { Neg, LogNot, BitNot, Deref, AddrOf, Plus };

enum class BinOp : uint8_t
{
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    LogAnd, LogOr,
    Lt, Gt, Le, Ge, Eq, Ne,
    None,  //!< plain assignment marker
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr
{
    ExprKind kind = ExprKind::IntLit;
    int line = 0;

    // Filled by sema.
    const Type *type = nullptr;
    bool lvalue = false;

    int64_t intValue = 0;
    double floatValue = 0;
    bool floatIsSingle = false;
    std::string strValue;  //!< Ident/Call name, StringLit body, field

    UnOp unOp = UnOp::Neg;
    BinOp binOp = BinOp::None;
    bool compound = false;   //!< compound assignment
    bool arrow = false;      //!< -> vs .
    bool isIncrement = false;
    bool isPrefix = false;

    const Type *castType = nullptr;   //!< Cast
    const Type *sizeofType = nullptr; //!< SizeofType

    ExprPtr a, b, c;
    std::vector<ExprPtr> args;

    // Sema resolution for Ident.
    enum class Binding : uint8_t { Unresolved, Local, Global, Function };
    Binding binding = Binding::Unresolved;
    int localId = -1;  //!< index into the enclosing function's locals
};

enum class StmtKind : uint8_t
{
    Block, If, While, DoWhile, For, Return, Break, Continue, ExprStmt,
    Decl, Empty,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** One local variable declarator. */
struct LocalDecl
{
    std::string name;
    const Type *type = nullptr;
    ExprPtr init;                    //!< scalar initializer (may be null)
    std::vector<ExprPtr> initList;   //!< array/struct brace initializer
    int localId = -1;                //!< assigned by sema
    int line = 0;
};

struct Stmt
{
    StmtKind kind = StmtKind::Empty;
    int line = 0;

    std::vector<StmtPtr> body;  //!< Block
    ExprPtr cond;               //!< If/While/DoWhile/For
    StmtPtr thenStmt, elseStmt; //!< If
    StmtPtr loopBody;           //!< While/DoWhile/For
    StmtPtr forInit;            //!< For (Decl or ExprStmt)
    ExprPtr forStep;            //!< For
    ExprPtr expr;               //!< ExprStmt/Return value
    std::vector<LocalDecl> decls;  //!< Decl
};

/** Function parameter. */
struct Param
{
    std::string name;
    const Type *type = nullptr;
    int line = 0;
};

struct FuncDecl
{
    std::string name;
    const Type *retType = nullptr;
    std::vector<Param> params;
    StmtPtr body;  //!< null for a forward declaration
    int line = 0;

    // Sema: flat table of every local variable (params first).
    struct LocalVar
    {
        std::string name;
        const Type *type = nullptr;
        bool addressTaken = false;
        bool isParam = false;
    };
    std::vector<LocalVar> locals;
};

struct GlobalDecl
{
    std::string name;
    const Type *type = nullptr;
    ExprPtr init;                  //!< scalar constant initializer
    std::vector<ExprPtr> initList; //!< brace initializer
    std::string stringInit;        //!< char array initialized by string
    bool hasStringInit = false;
    int line = 0;
};

/** Function signature (filled by sema; includes builtins). */
struct FuncSig
{
    const Type *retType = nullptr;
    std::vector<const Type *> params;
    bool isBuiltin = false;
    int trapCode = 0;  //!< builtin: simulator trap; 0 = runtime call
};

struct Program
{
    TypeTable types;
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> functions;
    /** String literal pool: label index -> body. */
    std::vector<std::string> strings;
    /** name -> signature, including builtins (filled by sema). */
    std::map<std::string, FuncSig> signatures;
};

} // namespace d16sim::mc

#endif // D16SIM_MC_AST_HH
