/**
 * @file
 * MiniC IR generation (typed AST -> CFG of three-address code).
 */

#ifndef D16SIM_MC_IRGEN_HH
#define D16SIM_MC_IRGEN_HH

#include "mc/ast.hh"
#include "mc/ir.hh"

namespace d16sim::mc
{

/** Lower all function bodies of an analyzed program. */
IrModule generateIr(const Program &prog);

} // namespace d16sim::mc

#endif // D16SIM_MC_IRGEN_HH
