/**
 * @file
 * Post-emission instruction scheduling ("all optimizations enabled,
 * including instruction scheduling", paper §3):
 *
 *  - branch delay-slot filling: the instruction preceding a branch
 *    moves into its delay slot when the two commute and the candidate
 *    is not itself a branch target;
 *  - load-delay scheduling: an independent instruction is hoisted
 *    between a load and its first use to hide the one-cycle
 *    delayed-load interlock.
 */

#ifndef D16SIM_MC_SCHED_HH
#define D16SIM_MC_SCHED_HH

#include <vector>

#include "asm/item.hh"
#include "isa/target.hh"

namespace d16sim::mc
{

struct SchedStats
{
    int slotsFilled = 0;
    int slotsLeftNop = 0;
    int loadsSeparated = 0;
};

/** Schedule a whole module in place. */
SchedStats schedule(std::vector<assem::AsmItem> &items,
                    const isa::TargetInfo &target);

} // namespace d16sim::mc

#endif // D16SIM_MC_SCHED_HH
