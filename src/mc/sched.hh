/**
 * @file
 * Post-emission instruction scheduling ("all optimizations enabled,
 * including instruction scheduling", paper §3):
 *
 *  - branch delay-slot filling: the instruction preceding a branch
 *    moves into its delay slot when the two commute and the candidate
 *    is not itself a branch target;
 *  - load-delay scheduling: an independent instruction is hoisted
 *    between a load and its first use to hide the one-cycle
 *    delayed-load interlock.
 */

#ifndef D16SIM_MC_SCHED_HH
#define D16SIM_MC_SCHED_HH

#include <vector>

#include "asm/item.hh"
#include "isa/target.hh"

namespace d16sim::mc
{

struct SchedStats
{
    int slotsFilled = 0;
    int slotsLeftNop = 0;
    int loadsSeparated = 0;

    // Filled by applyFeedback() from the binary-level timing analyzer
    // (analysis::analyzeTiming), which sees the *linked* image the
    // scheduler produced: interlocks it left behind, and how many of
    // those an in-block move could still have hidden.
    int residualLoadUse = 0;   //!< guaranteed load-use interlock sites
    int avoidableLoadUse = 0;  //!< ... provably schedulable away
};

/**
 * Post-link hazard annotations fed back to the scheduler's report.
 * Produced by analysis::schedFeedback from the static timing pass;
 * the addresses identify the stalling consumers in the final image.
 */
struct SchedFeedback
{
    int loadUseSites = 0;    //!< guaranteed load-use interlock sites
    int avoidableSites = 0;  //!< ... an independent move could fill
    std::vector<uint32_t> avoidableAddrs;
};

/** Schedule a whole module in place. */
SchedStats schedule(std::vector<assem::AsmItem> &items,
                    const isa::TargetInfo &target);

/** Fold analyzer feedback into a module's scheduling stats. */
void applyFeedback(SchedStats &stats, const SchedFeedback &fb);

} // namespace d16sim::mc

#endif // D16SIM_MC_SCHED_HH
