/**
 * @file
 * MiniC type system.
 *
 * Scalars: void, int, unsigned, char (signed, 1 byte), float, double.
 * Aggregates: pointers, fixed-size arrays, structs. Sizes follow the
 * target machines: int/unsigned/pointer/float are 4 bytes, double is 8.
 * Types are interned in a TypeTable and compared by pointer.
 */

#ifndef D16SIM_MC_TYPE_HH
#define D16SIM_MC_TYPE_HH

#include <memory>
#include <string>
#include <vector>

namespace d16sim::mc
{

enum class TypeKind : uint8_t
{
    Void, Int, Uint, Char, Float, Double, Pointer, Array, Struct,
};

class Type;

struct StructField
{
    std::string name;
    const Type *type = nullptr;
    int offset = 0;
};

struct StructInfo
{
    std::string name;
    std::vector<StructField> fields;
    int size = 0;
    int align = 1;
    bool complete = false;

    const StructField *findField(const std::string &n) const;
};

class Type
{
  public:
    TypeKind kind() const { return kind_; }

    bool isVoid() const { return kind_ == TypeKind::Void; }
    bool
    isInteger() const
    {
        return kind_ == TypeKind::Int || kind_ == TypeKind::Uint ||
               kind_ == TypeKind::Char;
    }
    bool isUnsigned() const { return kind_ == TypeKind::Uint; }
    bool
    isFp() const
    {
        return kind_ == TypeKind::Float || kind_ == TypeKind::Double;
    }
    bool isArith() const { return isInteger() || isFp(); }
    bool isPointer() const { return kind_ == TypeKind::Pointer; }
    bool isArray() const { return kind_ == TypeKind::Array; }
    bool isStruct() const { return kind_ == TypeKind::Struct; }
    bool isScalar() const { return isArith() || isPointer(); }

    /** Element type of a pointer or array. */
    const Type *pointee() const { return pointee_; }
    int arrayLen() const { return arrayLen_; }
    const StructInfo *record() const { return record_; }

    int size() const;
    int align() const;

    std::string str() const;

  private:
    friend class TypeTable;
    Type() = default;

    TypeKind kind_ = TypeKind::Void;
    const Type *pointee_ = nullptr;  //!< pointer/array element
    int arrayLen_ = 0;
    const StructInfo *record_ = nullptr;
};

/** Owns and interns all types for one compilation. */
class TypeTable
{
  public:
    TypeTable();

    const Type *voidTy() const { return &void_; }
    const Type *intTy() const { return &int_; }
    const Type *uintTy() const { return &uint_; }
    const Type *charTy() const { return &char_; }
    const Type *floatTy() const { return &float_; }
    const Type *doubleTy() const { return &double_; }

    const Type *pointerTo(const Type *t);
    const Type *arrayOf(const Type *t, int n);
    const Type *structType(StructInfo *info);

    /** Find or create a (possibly incomplete) struct by tag. */
    StructInfo *declareStruct(const std::string &name);
    StructInfo *findStruct(const std::string &name);

  private:
    Type void_, int_, uint_, char_, float_, double_;
    std::vector<std::unique_ptr<Type>> derived_;
    std::vector<std::unique_ptr<StructInfo>> structs_;
};

} // namespace d16sim::mc

#endif // D16SIM_MC_TYPE_HH
