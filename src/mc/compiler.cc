#include "mc/compiler.hh"

#include <cstdio>
#include <cstdlib>

#include "asm/parser.hh"
#include "mc/codegen.hh"
#include "mc/irgen.hh"
#include "mc/legalize.hh"
#include "mc/opt.hh"
#include "mc/parser.hh"
#include "mc/regalloc.hh"
#include "mc/sema.hh"
#include "mc/runtime.hh"

namespace d16sim::mc
{

namespace
{

/** String literals can appear in global initializers, which sema does
 *  not walk; pool them here. */
void
poolGlobalInitStrings(Program &prog)
{
    auto pool = [&](Expr &e) {
        if (e.kind == ExprKind::StringLit) {
            prog.strings.push_back(e.strValue);
            e.intValue = static_cast<int64_t>(prog.strings.size()) - 1;
        }
    };
    for (GlobalDecl &g : prog.globals) {
        if (g.init)
            pool(*g.init);
        for (ExprPtr &e : g.initList)
            pool(*e);
    }
}

} // namespace

CompileResult
compile(std::string_view source, const CompileOptions &opts)
{
    Program prog = parseProgram(source);
    poolGlobalInitStrings(prog);
    analyze(prog);

    IrModule mod = generateIr(prog);

    const MachineEnv env(opts);
    CodeGen cg(prog, env);
    cg.layoutGlobals();
    const GpOffsetFn gpOff = [&cg](const std::string &sym) {
        return cg.gpOffset(sym);
    };

    // Stage-boundary verification (src/verify installs the hook). The
    // per-pass form is opt-in: the coarse boundaries already bracket
    // every stage, the per-pass hook just names the culprit directly.
    const auto verify = [&](const IrFunction &fn, const char *stage,
                            const MachineEnv *stageEnv) {
        if (opts.verifyHook)
            opts.verifyHook(fn, stage, stageEnv);
    };
    PassHook afterPass;
    if (opts.verifyHook && opts.verifyEach) {
        afterPass = [&](const IrFunction &fn, const char *pass) {
            opts.verifyHook(fn, pass, nullptr);
        };
    }

    CompileResult result;
    for (IrFunction &fn : mod.functions) {
        verify(fn, "irgen", nullptr);
        if (getenv("D16_DEBUG_COMPILE"))
            fprintf(stderr, "[mc] %s: opt\n", fn.name.c_str());
        optimize(fn, opts.optLevel, afterPass);
        verify(fn, "optimize", nullptr);
        if (getenv("D16_DEBUG_COMPILE"))
            fprintf(stderr, "[mc] %s: legalize\n", fn.name.c_str());
        legalize(fn, env, gpOff);
        verify(fn, "legalize", &env);
        lowerCallsAbi(fn, env);
        verify(fn, "lower-calls-abi", &env);
        if (getenv("D16_DEBUG_COMPILE"))
            fprintf(stderr, "[mc] %s: regalloc (%d vregs)\n",
                    fn.name.c_str(), fn.numVRegs());
        const Allocation alloc = allocateRegisters(fn, env);
        result.spilledRegs += alloc.spilledRegs;
        result.coalescedMoves += alloc.coalescedMoves;
        cg.emitFunction(fn, alloc);
    }
    cg.emitData();

    std::vector<assem::AsmItem> items;
    items.push_back(assem::AsmItem::section(true));
    for (assem::AsmItem &item : cg.take())
        items.push_back(std::move(item));

    // Runtime library (identical algorithms on both machines).
    items.push_back(assem::AsmItem::section(true));
    for (assem::AsmItem &item :
         assem::parseAsm(env.target(), runtimeSource(opts.isa))) {
        items.push_back(std::move(item));
    }

    if (opts.optLevel >= 2)
        result.sched = schedule(items, env.target());

    result.items = std::move(items);
    return result;
}

} // namespace d16sim::mc
