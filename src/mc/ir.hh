/**
 * @file
 * MiniC intermediate representation.
 *
 * Three-address code over typed virtual registers, organized as a CFG
 * of basic blocks. Deliberately *not* SSA: the register allocator is a
 * Chaitin-style graph-coloring allocator (the technique the paper
 * cites), which works from liveness over mutable virtual registers.
 *
 * Design notes that matter to the experiments:
 *  - The second operand of integer ops may be an *immediate*; whether
 *    an immediate is actually encodable is decided by the code
 *    generator per target (paper §3.3.3 ablates exactly this).
 *  - Loads/stores carry a symbolic Address (register base, frame slot,
 *    or global) with a byte offset; displacement legality is likewise
 *    a code-generation decision (§3.3.3, "address displacements").
 *  - There are no integer multiply/divide machine ops: Mul/Div/Rem
 *    survive to code generation, which strength-reduces constants and
 *    otherwise calls the runtime routines.
 */

#ifndef D16SIM_MC_IR_HH
#define D16SIM_MC_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/cond.hh"
#include "mc/type.hh"

namespace d16sim::mc
{

enum class RegClass : uint8_t { Int, Fp };

struct VReg
{
    int id = -1;
    RegClass cls = RegClass::Int;

    bool valid() const { return id >= 0; }
    bool operator==(const VReg &o) const
    {
        return id == o.id && cls == o.cls;
    }
};

/** Integer second operand: register or immediate. */
struct Operand
{
    enum class Kind : uint8_t { None, Reg, Imm };
    Kind kind = Kind::None;
    VReg reg;
    int64_t imm = 0;

    static Operand
    ofReg(VReg r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }

    static Operand
    ofImm(int64_t v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        return o;
    }

    bool isImm() const { return kind == Kind::Imm; }
    bool isReg() const { return kind == Kind::Reg; }
};

enum class AddrKind : uint8_t { Reg, Frame, Global };

/** Symbolic memory address: base + constant byte offset. */
struct Address
{
    AddrKind kind = AddrKind::Reg;
    VReg base;          //!< Reg
    int frameSlot = -1; //!< Frame
    std::string sym;    //!< Global
    int32_t offset = 0;

    static Address
    reg(VReg base, int32_t off = 0)
    {
        Address a;
        a.kind = AddrKind::Reg;
        a.base = base;
        a.offset = off;
        return a;
    }

    static Address
    frame(int slot, int32_t off = 0)
    {
        Address a;
        a.kind = AddrKind::Frame;
        a.frameSlot = slot;
        a.offset = off;
        return a;
    }

    static Address
    global(std::string sym, int32_t off = 0)
    {
        Address a;
        a.kind = AddrKind::Global;
        a.sym = std::move(sym);
        a.offset = off;
        return a;
    }
};

enum class IrOp : uint8_t
{
    // Integer: dst = a op b (b may be an immediate).
    Add, Sub, Mul, DivS, DivU, RemS, RemU,
    And, Or, Xor, Shl, ShrL, ShrA,
    Neg, Not,      //!< dst = op a
    Cmp,           //!< dst = (a cond b), integer/pointer operands
    Mov,           //!< dst = a (same class; fp uses this too)
    MovImm,        //!< dst = imm (int class)
    FMovImm,       //!< dst = fimm (fp class; isSingle selects width)
    // Floating point: dst = a op b.reg; width from isSingle.
    FAdd, FSub, FMul, FDiv, FNeg,
    FCmp,          //!< dst(int) = (a cond b.reg), fp operands
    CvtIF,         //!< dst(fp) = (fp)a(int)
    CvtFI,         //!< dst(int) = (int)a(fp); srcSingle gives source width
    CvtFF,         //!< dst(fp) = widen/narrow a(fp)
    Load,          //!< dst = mem[addr]; size 1/2/4/8, signedLoad
    Store,         //!< mem[addr] = a (or fp a); size
    AddrOf,        //!< dst(int) = address of addr (Frame/Global)
    Call,          //!< dst? = sym(args); trapCode >= 0 for builtins
    Ret,           //!< optional a
    Br,            //!< if (a != 0) goto thenBB else elseBB
    Jmp,           //!< goto thenBB

    // Post-legalization forms (inserted by mc/legalize; the 1:1 mirror
    // of the machine's FPU interface and fused compare-and-branch).
    MifL,          //!< dst(fp).lo32 = a(int); full def (written first)
    MifH,          //!< dst(fp).hi32 = a(int); partial (reads dst)
    MfiL,          //!< dst(int) = a(fp).lo32
    MfiH,          //!< dst(int) = a(fp).hi32
    CvtRawIF,      //!< dst(fp) = convert int bits in a(fp) (si2sf/si2df)
    CvtRawFI,      //!< dst(fp) = int bits of a(fp) (sf2si/df2si)
    BrCmp,         //!< if (a cond b) goto thenBB else elseBB
                   //!< (dst = DLXe compare temp; invalid on D16)
    BrFCmp,        //!< FP fused compare-and-branch (dst as above)
};

struct IrInst
{
    IrOp op = IrOp::Jmp;
    isa::Cond cond = isa::Cond::Eq;

    VReg dst;
    VReg a;
    Operand b;

    int64_t imm = 0;    //!< MovImm
    double fimm = 0;    //!< FMovImm
    bool isSingle = false;   //!< fp ops: float (true) vs double
    bool srcSingle = false;  //!< CvtFI/CvtFF source width
    bool signedLoad = true;
    int size = 4;       //!< Load/Store bytes

    Address addr;       //!< Load/Store/AddrOf
    std::string sym;    //!< Call target
    int trapCode = -1;  //!< Call: >= 0 means a simulator trap builtin
    std::vector<VReg> args;

    int thenBB = -1;
    int elseBB = -1;

    bool
    isTerminator() const
    {
        return op == IrOp::Br || op == IrOp::Jmp || op == IrOp::Ret ||
               op == IrOp::BrCmp || op == IrOp::BrFCmp;
    }
};

/** Visit every virtual register the instruction reads. */
template <typename Fn>
void
forEachUse(const IrInst &inst, Fn &&fn)
{
    if (inst.a.valid())
        fn(inst.a);
    if (inst.b.isReg() && inst.b.reg.valid())
        fn(inst.b.reg);
    if (inst.addr.kind == AddrKind::Reg && inst.addr.base.valid() &&
        (inst.op == IrOp::Load || inst.op == IrOp::Store ||
         inst.op == IrOp::AddrOf)) {
        fn(inst.addr.base);
    }
    for (const VReg &arg : inst.args)
        fn(arg);
    // MifH partially updates its destination (the low half written by
    // the preceding MifL survives), so it reads it; MifL is always the
    // first write of a pair and counts as a full definition.
    if (inst.op == IrOp::MifH && inst.dst.valid())
        fn(inst.dst);
}

/** The register the instruction writes, if any. */
inline VReg
defOf(const IrInst &inst)
{
    if (inst.op == IrOp::Store || inst.op == IrOp::Ret ||
        inst.op == IrOp::Br || inst.op == IrOp::Jmp) {
        return VReg{};
    }
    return inst.dst;
}

struct FrameSlot
{
    int size = 4;
    int align = 4;
    std::string name;  //!< for IR dumps
};

struct BasicBlock
{
    int id = 0;
    std::vector<IrInst> insts;

    /** Successor block ids (from the terminator). */
    std::vector<int> successors() const;
};

struct IrFunction
{
    std::string name;
    const Type *retType = nullptr;
    std::vector<VReg> params;
    std::vector<BasicBlock> blocks;
    std::vector<RegClass> vregClass;
    std::vector<FrameSlot> slots;

    VReg
    newReg(RegClass cls)
    {
        vregClass.push_back(cls);
        return VReg{static_cast<int>(vregClass.size()) - 1, cls};
    }

    int numVRegs() const { return static_cast<int>(vregClass.size()); }

    int
    newSlot(int size, int align, std::string name = "")
    {
        slots.push_back({size, align, std::move(name)});
        return static_cast<int>(slots.size()) - 1;
    }

    /** Fixed physical register of a vreg (-1 = none). Used by the ABI
     *  lowering to pin argument/return registers. */
    std::vector<int> precolor;

    void
    setPrecolor(VReg r, int phys)
    {
        if (static_cast<int>(precolor.size()) < numVRegs())
            precolor.resize(numVRegs(), -1);
        precolor[r.id] = phys;
    }

    int
    precolorOf(int id) const
    {
        return id < static_cast<int>(precolor.size()) ? precolor[id] : -1;
    }

    /** Human-readable dump (for tests and debugging). */
    std::string dump() const;
};

struct IrModule
{
    std::vector<IrFunction> functions;
};

/** Dump one instruction (used by IrFunction::dump and tests). */
std::string dumpInst(const IrInst &inst);

} // namespace d16sim::mc

#endif // D16SIM_MC_IR_HH
