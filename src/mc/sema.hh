/**
 * @file
 * MiniC semantic analysis.
 *
 * Resolves identifiers (locals / globals / functions / builtins), type
 * checks every expression, inserts explicit Cast nodes for the usual
 * arithmetic conversions and assignment conversions, decays arrays to
 * pointers, collects string literals into the program pool, and marks
 * address-taken locals (everything else lives in virtual registers).
 * Fills Program::signatures, including the builtins:
 *
 *   print_int(int) print_uint(unsigned) print_char(int)
 *   print_str(char*) print_f64(double) halt(int)  -- simulator traps
 *   alloc(int) -> char*                           -- trap 6
 */

#ifndef D16SIM_MC_SEMA_HH
#define D16SIM_MC_SEMA_HH

#include "mc/ast.hh"

namespace d16sim::mc
{

/** Run semantic analysis in place. Throws FatalError on type errors. */
void analyze(Program &prog);

} // namespace d16sim::mc

#endif // D16SIM_MC_SEMA_HH
