/**
 * @file
 * MiniC compiler facade: source text -> assembler items for one of the
 * paper's five machine variants.
 *
 * Pipeline: lex/parse -> sema -> IR generation -> target-independent
 * optimization -> target legalization -> ABI lowering -> graph-coloring
 * register allocation -> code emission (with D16 constant pools) ->
 * delay-slot and load-delay scheduling; the runtime library is appended
 * to every module.
 */

#ifndef D16SIM_MC_COMPILER_HH
#define D16SIM_MC_COMPILER_HH

#include <string>
#include <string_view>
#include <vector>

#include "asm/item.hh"
#include "mc/options.hh"
#include "mc/sched.hh"

namespace d16sim::mc
{

struct CompileResult
{
    std::vector<assem::AsmItem> items;
    SchedStats sched;
    int spilledRegs = 0;
    int coalescedMoves = 0;
};

/** Compile a MiniC translation unit. Throws FatalError on any error. */
CompileResult compile(std::string_view source,
                      const CompileOptions &opts);

} // namespace d16sim::mc

#endif // D16SIM_MC_COMPILER_HH
