/**
 * @file
 * MiniC lexer.
 */

#ifndef D16SIM_MC_LEXER_HH
#define D16SIM_MC_LEXER_HH

#include <string_view>
#include <vector>

#include "mc/token.hh"

namespace d16sim::mc
{

/** Tokenize MiniC source; the result ends with a Tok::End token.
 *  Throws FatalError with line info on malformed input. */
std::vector<Token> lex(std::string_view source);

} // namespace d16sim::mc

#endif // D16SIM_MC_LEXER_HH
