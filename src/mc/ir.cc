#include "mc/ir.hh"

#include <sstream>

#include "support/error.hh"

namespace d16sim::mc
{

namespace
{

std::string
regStr(VReg r)
{
    if (!r.valid())
        return "_";
    return (r.cls == RegClass::Int ? "v" : "f") + std::to_string(r.id);
}

std::string
opndStr(const Operand &o)
{
    switch (o.kind) {
      case Operand::Kind::None: return "_";
      case Operand::Kind::Reg: return regStr(o.reg);
      case Operand::Kind::Imm: return "#" + std::to_string(o.imm);
    }
    return "?";
}

std::string
addrStr(const Address &a)
{
    std::string base;
    switch (a.kind) {
      case AddrKind::Reg: base = "[" + regStr(a.base); break;
      case AddrKind::Frame:
        base = "[frame" + std::to_string(a.frameSlot);
        break;
      case AddrKind::Global: base = "[@" + a.sym; break;
    }
    if (a.offset)
        base += "+" + std::to_string(a.offset);
    return base + "]";
}

const char *
irOpName(IrOp op)
{
    switch (op) {
      case IrOp::Add: return "add";
      case IrOp::Sub: return "sub";
      case IrOp::Mul: return "mul";
      case IrOp::DivS: return "divs";
      case IrOp::DivU: return "divu";
      case IrOp::RemS: return "rems";
      case IrOp::RemU: return "remu";
      case IrOp::And: return "and";
      case IrOp::Or: return "or";
      case IrOp::Xor: return "xor";
      case IrOp::Shl: return "shl";
      case IrOp::ShrL: return "shrl";
      case IrOp::ShrA: return "shra";
      case IrOp::Neg: return "neg";
      case IrOp::Not: return "not";
      case IrOp::Cmp: return "cmp";
      case IrOp::Mov: return "mov";
      case IrOp::MovImm: return "movi";
      case IrOp::FMovImm: return "fmovi";
      case IrOp::FAdd: return "fadd";
      case IrOp::FSub: return "fsub";
      case IrOp::FMul: return "fmul";
      case IrOp::FDiv: return "fdiv";
      case IrOp::FNeg: return "fneg";
      case IrOp::FCmp: return "fcmp";
      case IrOp::CvtIF: return "cvtif";
      case IrOp::CvtFI: return "cvtfi";
      case IrOp::CvtFF: return "cvtff";
      case IrOp::Load: return "load";
      case IrOp::Store: return "store";
      case IrOp::AddrOf: return "addrof";
      case IrOp::Call: return "call";
      case IrOp::Ret: return "ret";
      case IrOp::Br: return "br";
      case IrOp::Jmp: return "jmp";
      case IrOp::MifL: return "mif.l";
      case IrOp::MifH: return "mif.h";
      case IrOp::MfiL: return "mfi.l";
      case IrOp::MfiH: return "mfi.h";
      case IrOp::CvtRawIF: return "cvtraw.if";
      case IrOp::CvtRawFI: return "cvtraw.fi";
      case IrOp::BrCmp: return "brcmp";
      case IrOp::BrFCmp: return "brfcmp";
    }
    return "?";
}

} // namespace

std::vector<int>
BasicBlock::successors() const
{
    panicIf(insts.empty(), "block ", id, " has no terminator");
    const IrInst &t = insts.back();
    switch (t.op) {
      case IrOp::Jmp: return {t.thenBB};
      case IrOp::Br:
      case IrOp::BrCmp:
      case IrOp::BrFCmp:
        return {t.thenBB, t.elseBB};
      case IrOp::Ret: return {};
      default:
        panic("block ", id, " ends in non-terminator");
    }
}

std::string
dumpInst(const IrInst &inst)
{
    std::ostringstream os;
    os << irOpName(inst.op);
    switch (inst.op) {
      case IrOp::Cmp:
      case IrOp::FCmp:
      case IrOp::BrCmp:
      case IrOp::BrFCmp:
        os << "." << isa::condName(inst.cond);
        break;
      default:
        break;
    }
    if ((inst.op >= IrOp::FMovImm && inst.op <= IrOp::CvtFF) ||
        inst.op == IrOp::FMovImm) {
        os << (inst.isSingle ? ".s" : ".d");
    }
    os << " ";
    switch (inst.op) {
      case IrOp::MovImm:
        os << regStr(inst.dst) << ", #" << inst.imm;
        break;
      case IrOp::FMovImm:
        os << regStr(inst.dst) << ", #" << inst.fimm;
        break;
      case IrOp::Neg: case IrOp::Not: case IrOp::Mov: case IrOp::FNeg:
      case IrOp::CvtIF: case IrOp::CvtFI: case IrOp::CvtFF:
        os << regStr(inst.dst) << ", " << regStr(inst.a);
        break;
      case IrOp::Load:
        os << regStr(inst.dst) << ", " << addrStr(inst.addr) << " sz"
           << inst.size << (inst.signedLoad ? "s" : "u");
        break;
      case IrOp::Store:
        os << regStr(inst.a) << ", " << addrStr(inst.addr) << " sz"
           << inst.size;
        break;
      case IrOp::AddrOf:
        os << regStr(inst.dst) << ", " << addrStr(inst.addr);
        break;
      case IrOp::Call: {
        if (inst.dst.valid())
            os << regStr(inst.dst) << " = ";
        os << inst.sym << "(";
        for (size_t i = 0; i < inst.args.size(); ++i) {
            if (i)
                os << ", ";
            os << regStr(inst.args[i]);
        }
        os << ")";
        break;
      }
      case IrOp::Ret:
        if (inst.a.valid())
            os << regStr(inst.a);
        break;
      case IrOp::Br:
        os << regStr(inst.a) << ", bb" << inst.thenBB << ", bb"
           << inst.elseBB;
        break;
      case IrOp::BrCmp:
      case IrOp::BrFCmp:
        os << regStr(inst.a) << ", " << opndStr(inst.b) << ", bb"
           << inst.thenBB << ", bb" << inst.elseBB;
        break;
      case IrOp::MifL: case IrOp::MifH: case IrOp::MfiL:
      case IrOp::MfiH: case IrOp::CvtRawIF: case IrOp::CvtRawFI:
        os << regStr(inst.dst) << ", " << regStr(inst.a);
        break;
      case IrOp::Jmp:
        os << "bb" << inst.thenBB;
        break;
      default:
        os << regStr(inst.dst) << ", " << regStr(inst.a) << ", "
           << opndStr(inst.b);
        break;
    }
    return os.str();
}

std::string
IrFunction::dump() const
{
    std::ostringstream os;
    os << "func " << name << " (";
    for (size_t i = 0; i < params.size(); ++i) {
        if (i)
            os << ", ";
        os << regStr(params[i]);
    }
    os << ")\n";
    for (size_t i = 0; i < slots.size(); ++i) {
        os << "  slot" << i << ": " << slots[i].size << " bytes";
        if (!slots[i].name.empty())
            os << " (" << slots[i].name << ")";
        os << "\n";
    }
    for (const BasicBlock &bb : blocks) {
        os << "bb" << bb.id << ":\n";
        for (const IrInst &inst : bb.insts)
            os << "  " << dumpInst(inst) << "\n";
    }
    return os.str();
}

} // namespace d16sim::mc
