/**
 * @file
 * Differential fuzzing harness: seeded MiniC program generation, the
 * oracle-vs-toolchain differential driver, and a delta-debugging
 * minimizer for divergent programs (DESIGN.md §10).
 */

#ifndef D16SIM_FUZZ_FUZZ_HH
#define D16SIM_FUZZ_FUZZ_HH

#include <cstdint>
#include <functional>
#include <string>

namespace d16sim::fuzz
{

/**
 * Generate one random MiniC program from a seed.  Deterministic: the
 * same seed always yields the same source.  Programs exercise nested
 * loops, short-circuit conditions, pointer/array aliasing (including
 * multi-dimensional arrays and structs), multi-arg calls, recursion,
 * globals, char narrowing, unsigned arithmetic, variable shift counts,
 * and (for odd seeds) float/double arithmetic — every value read was
 * previously written, so the oracle's pinned semantics fully define
 * each program's behavior unless it trips a trap (e.g. divide by
 * zero), in which case the driver discards it.
 */
std::string generateProgram(uint64_t seed);

/** What one differential run concluded. */
enum class DiffKind : uint8_t
{
    Agree,       //!< oracle and every variant/opt produced equal output
    Skip,        //!< oracle trapped or a budget was hit: no verdict
    Divergence,  //!< some variant/opt disagreed with the oracle
};

struct DiffOutcome
{
    DiffKind kind = DiffKind::Agree;
    std::string detail;   //!< human-readable description
    std::string variant;  //!< first divergent variant name
    int optLevel = -1;    //!< first divergent opt level
};

/**
 * Run `source` through the reference interpreter and through
 * core::build + the simulator on all five machine variants at opt
 * levels 0-2, comparing output and exit status exactly.
 */
DiffOutcome runDifferential(const std::string &source);

/** Minimizer predicate: does this candidate still reproduce? */
using Predicate = std::function<bool(const std::string &)>;

/**
 * Delta-debugging minimizer: repeatedly deletes line chunks (halving
 * chunk sizes down to single lines) while `interesting` stays true.
 * Deterministic for a deterministic predicate.
 */
std::string minimizeLines(const std::string &source,
                          const Predicate &interesting);

/** The real-divergence predicate for minimizeLines: true iff the
 *  program compiles, the oracle exits cleanly, and at least one
 *  variant/opt diverges. */
bool divergenceReproduces(const std::string &source);

} // namespace d16sim::fuzz

#endif // D16SIM_FUZZ_FUZZ_HH
