#include "fuzz/fuzz.hh"

#include <string>
#include <vector>

namespace d16sim::fuzz
{

namespace
{

/** splitmix64: cheap, well-distributed, and seed-0 safe. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [lo, hi] inclusive. */
    int
    range(int lo, int hi)
    {
        return lo + static_cast<int>(next() %
                                     static_cast<uint64_t>(hi - lo + 1));
    }

    bool chance(int pct) { return range(1, 100) <= pct; }

  private:
    uint64_t state_;
};

class Generator
{
  public:
    explicit Generator(uint64_t seed)
        : rng_(seed ^ 0xd16d16d16ull), fp_(seed % 2 == 1)
    {}

    std::string
    run()
    {
        emitGlobals();
        emitHelpers();
        emitMain();
        return src_;
    }

  private:
    Rng rng_;
    bool fp_;           //!< odd seeds exercise float/double
    std::string src_;
    int loopDepth_ = 0;
    int stmtDepth_ = 0;

    void line(const std::string &s) { src_ += s; src_ += '\n'; }

    // ----- expressions ----------------------------------------------------

    /** A value-bearing int expression; depth caps recursion. */
    std::string
    intExpr(int depth)
    {
        if (depth <= 0)
            return intLeaf();
        switch (rng_.range(0, 9)) {
          case 0: case 1:
            return intLeaf();
          case 2:
            return "(" + intExpr(depth - 1) + " + " +
                   intExpr(depth - 1) + ")";
          case 3:
            return "(" + intExpr(depth - 1) + " - " +
                   intExpr(depth - 1) + ")";
          case 4:
            return "(" + intExpr(depth - 1) + " * " +
                   intExpr(depth - 1) + ")";
          case 5: {
            const char *op = rng_.chance(50) ? " & " : " ^ ";
            return "(" + intExpr(depth - 1) + op +
                   intExpr(depth - 1) + ")";
          }
          case 6:
            // Variable shift counts, sometimes beyond 31: both the
            // oracle and the machines mask to the low 5 bits.
            return "(" + intExpr(depth - 1) +
                   (rng_.chance(50) ? " << " : " >> ") + "(" +
                   intLeaf() + " & " +
                   std::to_string(rng_.chance(30) ? 63 : 31) + "))";
          case 7:
            return "(" + condExpr(depth - 1) + " ? " +
                   intExpr(depth - 1) + " : " + intExpr(depth - 1) +
                   ")";
          case 8:
            return "((int)(char)" + intExpr(depth - 1) + ")";
          case 9:
            return "((int)((unsigned)" + intExpr(depth - 1) + " / (" +
                   "(unsigned)(" + intExpr(depth - 1) + " & 7) + 2u)))";
        }
        return intLeaf();
    }

    std::string
    intLeaf()
    {
        switch (rng_.range(0, 11)) {
          case 0:
            return std::to_string(rng_.range(-99, 99));
          case 1:
            // Large magnitudes probe wraparound, INT32_MIN edges, and
            // constant folds of literals outside char range.
            if (rng_.chance(50))
                return std::to_string(rng_.range(-2000000, 2000000));
            return "(" + std::to_string(rng_.range(-9, 9)) +
                   " * 268435397)";
          case 2: return "h";
          case 3: return "s0";
          case 4: return "s1";
          case 5: return "(int)u";
          case 6: return "(int)c";
          case 7: return "gi0";
          case 8: return "gi1";
          case 9:
            return "garr[" + idx16() + "]";
          case 10:
            return "a[" + idx16() + "]";
          case 11:
            return "g2[" + counterOr("3") + " & 3][" + counterOr("7") +
                   " & 7]";
        }
        return "h";
    }

    /** An in-bounds index into a 16-element array. */
    std::string
    idx16()
    {
        if (rng_.chance(50))
            return std::to_string(rng_.range(0, 15));
        return "(" + counterOr("11") + " & 15)";
    }

    /** A live loop counter when inside a loop, else a constant. */
    std::string
    counterOr(const std::string &fallback)
    {
        if (loopDepth_ > 0 && rng_.chance(70))
            return "w" + std::to_string(rng_.range(0, loopDepth_ - 1));
        return rng_.chance(50) ? fallback : "s0";
    }

    std::string
    condExpr(int depth)
    {
        if (depth <= 0 || rng_.chance(30)) {
            const char *rel;
            switch (rng_.range(0, 5)) {
              case 0: rel = " < "; break;
              case 1: rel = " > "; break;
              case 2: rel = " <= "; break;
              case 3: rel = " >= "; break;
              case 4: rel = " == "; break;
              default: rel = " != "; break;
            }
            return "(" + intExpr(depth) + rel + intExpr(depth) + ")";
        }
        switch (rng_.range(0, 3)) {
          case 0:
            return "(" + condExpr(depth - 1) + " && " +
                   condExpr(depth - 1) + ")";
          case 1:
            return "(" + condExpr(depth - 1) + " || " +
                   condExpr(depth - 1) + ")";
          case 2:
            return "(!" + condExpr(depth - 1) + ")";
          default:
            return "(" + intExpr(depth - 1) + ")";
        }
    }

    // ----- program skeleton -----------------------------------------------

    void
    emitGlobals()
    {
        line("int gi0 = " + std::to_string(rng_.range(-1000, 1000)) +
             ";");
        line("int gi1 = " + std::to_string(rng_.range(-1000, 1000)) +
             ";");
        line("unsigned u;");
        line("int garr[16] = {" + std::to_string(rng_.range(-50, 50)) +
             ", " + std::to_string(rng_.range(-50, 50)) + ", " +
             std::to_string(rng_.range(-50, 50)) + "};");
        line("int g2[4][8];");
        line("char gmsg[10] = \"fuzz\";");
        line("struct Pair { int x; int y; };");
        line("struct Pair gp;");
        if (fp_) {
            line("double gd = " +
                 std::to_string(rng_.range(-20, 20)) + ".5;");
        }
        line("");
    }

    void
    emitHelpers()
    {
        // A multi-arg leaf helper over params and globals.
        line("int mix(int p0, int p1, int p2) {");
        line("  int r;");
        line("  r = (p0 * 31 + p1) ^ (p2 << (p0 & 7));");
        line("  r = r + garr[p1 & 15] + gi0;");
        if (rng_.chance(50))
            line("  gi1 = gi1 + (r & 255);");
        line("  return r;");
        line("}");
        line("");
        // Bounded recursion.
        line("int rec(int n, int acc) {");
        line("  if (n <= 0) return acc;");
        line("  return rec(n - 1, acc * 3 + mix(n, acc & 15, n + acc));");
        line("}");
        line("");
        if (fp_) {
            line("double fmix(double x, double y) {");
            line("  double r;");
            line("  r = x * 0.5 + y / 4.0;");
            line("  if (r > 65536.0) r = r / 1024.0;");
            line("  if (r < -65536.0) r = r / 1024.0 + 3.25;");
            line("  return r;");
            line("}");
            line("");
        }
    }

    void
    emitMain()
    {
        line("int main() {");
        line("  int h; h = " + std::to_string(rng_.range(1, 1 << 20)) +
             ";");
        line("  int s0; s0 = " + std::to_string(rng_.range(-64, 64)) +
             ";");
        line("  int s1; s1 = " + std::to_string(rng_.range(-64, 64)) +
             ";");
        line("  char c; c = (char)" +
             std::to_string(rng_.range(-128, 127)) + ";");
        line("  u = " + std::to_string(rng_.range(0, 1 << 30)) + "u;");
        line("  int w0; int w1; int w2;");
        line("  w0 = 0; w1 = 0; w2 = 0;");
        line("  int a[16];");
        line("  for (w0 = 0; w0 < 16; w0++) a[w0] = w0 * " +
             std::to_string(rng_.range(1, 9)) + " - " +
             std::to_string(rng_.range(0, 40)) + ";");
        line("  int *p; p = &a[" + std::to_string(rng_.range(0, 7)) +
             "];");
        if (fp_) {
            line("  double d; d = gd;");
            line("  float f; f = " +
                 std::to_string(rng_.range(-8, 8)) + ".25f;");
        }
        const int blocks = rng_.range(6, 14);
        for (int i = 0; i < blocks; ++i)
            emitStmt(1);
        line("  print_int(h);");
        line("  print_char((char)(97 + (h & 15)));");
        line("  print_str(gmsg);");
        line("  print_uint(u);");
        if (fp_)
            line("  print_f64(d); print_f64((double)f);");
        line("  print_int(gi1 + gp.x + gp.y);");
        line("  return h ^ s0;");
        line("}");
    }

    /** One statement at the given indent level (bounded recursion via
     *  loopDepth_/stmtDepth_). */
    void
    emitStmt(int indent)
    {
        const std::string in(static_cast<size_t>(indent) * 2, ' ');
        ++stmtDepth_;
        const bool nested = stmtDepth_ < 4 && loopDepth_ < 2;
        switch (rng_.range(0, nested ? 13 : 9)) {
          case 0:
            line(in + "h = h * 31 + " + intExpr(2) + ";");
            break;
          case 1:
            line(in + "s" + std::to_string(rng_.range(0, 1)) +
                 (rng_.chance(50) ? " += " : " = ") + intExpr(2) + ";");
            break;
          case 2:
            line(in + "a[" + idx16() + "] = " + intExpr(2) + ";");
            break;
          case 3:
            line(in + "g2[" + counterOr("2") + " & 3][" +
                 counterOr("5") + " & 7] += " + intExpr(1) + ";");
            break;
          case 4:
            // Pointer re-aim + aliased write + read back.
            line(in + "p = &a[" + idx16() + "];");
            line(in + "*p = *p + " + intExpr(1) + ";");
            line(in + "h += a[" + idx16() + "] + p[0];");
            break;
          case 5:
            line(in + "c = (char)(" + intExpr(2) + ");");
            line(in + "h += c;");
            break;
          case 6:
            line(in + "u = u * 2654435761u + (unsigned)(" + intExpr(1) +
                 ");");
            line(in + "h ^= (int)(u >> " +
                 std::to_string(rng_.range(1, 31)) + ");");
            break;
          case 7:
            // Guarded division; denominators are never zero and the
            // dividend avoids the INT32_MIN/-1 pair.
            line(in + "h += (h & 65535) / ((" + intExpr(1) +
                 " & 15) + 1);");
            line(in + "h += s0 % ((" + intExpr(1) + " & 7) + 2);");
            break;
          case 8:
            line(in + "h += mix(" + intExpr(1) + ", " + intExpr(1) +
                 ", " + intExpr(1) + ");");
            break;
          case 9:
            line(in + "gp.x = " + intExpr(1) + ";");
            line(in + "gp.y = gp.y + gp.x;");
            break;
          case 10: {  // if/else
            line(in + "if " + condExpr(2) + " {");
            emitStmt(indent + 1);
            if (rng_.chance(60)) {
                line(in + "} else {");
                emitStmt(indent + 1);
            }
            line(in + "}");
            break;
          }
          case 11: {  // bounded for
            const std::string w = "w" + std::to_string(loopDepth_);
            line(in + "for (" + w + " = 0; " + w + " < " +
                 std::to_string(rng_.range(2, 8)) + "; " + w + "++) {");
            ++loopDepth_;
            const int n = rng_.range(1, 3);
            for (int i = 0; i < n; ++i)
                emitStmt(indent + 1);
            --loopDepth_;
            line(in + "}");
            break;
          }
          case 12: {  // bounded while
            const std::string w = "w" + std::to_string(loopDepth_);
            line(in + w + " = " + std::to_string(rng_.range(1, 6)) +
                 ";");
            line(in + "while (" + w + " > 0) {");
            ++loopDepth_;
            const int n = rng_.range(1, 2);
            for (int i = 0; i < n; ++i)
                emitStmt(indent + 1);
            --loopDepth_;
            line(in + "  " + w + " = " + w + " - 1;");
            line(in + "}");
            break;
          }
          case 13: {
            if (fp_) {
                line(in + "d = fmix(d, (double)(" + intExpr(1) +
                     " & 1023));");
                line(in + "f = f + 0.5f; f" +
                     (rng_.chance(50) ? "++" : "--") + ";");
                line(in + "if (f > 4096.0f) f = f - 4096.0f;");
                line(in + "if (d) h += (int)(d * 0.125);");
            } else {
                line(in + "h += rec((" + intExpr(1) + " & 7) + 1, " +
                     intExpr(1) + " & 255);");
            }
            break;
          }
        }
        --stmtDepth_;
    }
};

} // namespace

std::string
generateProgram(uint64_t seed)
{
    Generator gen(seed);
    return gen.run();
}

} // namespace d16sim::fuzz
