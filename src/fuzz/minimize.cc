#include "fuzz/fuzz.hh"

#include <vector>

namespace d16sim::fuzz
{

namespace
{

std::vector<std::string>
splitLines(const std::string &s)
{
    std::vector<std::string> lines;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t nl = s.find('\n', start);
        if (nl == std::string::npos) {
            if (start < s.size())
                lines.push_back(s.substr(start));
            break;
        }
        lines.push_back(s.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string
joinKept(const std::vector<std::string> &lines,
         const std::vector<bool> &kept)
{
    std::string out;
    for (size_t i = 0; i < lines.size(); ++i) {
        if (!kept[i])
            continue;
        out += lines[i];
        out += '\n';
    }
    return out;
}

} // namespace

std::string
minimizeLines(const std::string &source, const Predicate &interesting)
{
    const std::vector<std::string> lines = splitLines(source);
    std::vector<bool> kept(lines.size(), true);
    size_t alive = lines.size();

    // ddmin over line chunks: try deleting runs of `chunk` consecutive
    // kept lines, halving the chunk size whenever a full sweep at the
    // current size removes nothing.  Deterministic scan order makes the
    // result reproducible for a deterministic predicate.
    size_t chunk = alive / 2;
    if (chunk == 0)
        chunk = 1;
    while (true) {
        bool removedAny = false;
        size_t i = 0;
        while (i < lines.size()) {
            if (!kept[i]) {
                ++i;
                continue;
            }
            // Collect the next `chunk` kept lines starting at i.
            std::vector<size_t> span;
            for (size_t j = i; j < lines.size() && span.size() < chunk;
                 ++j)
                if (kept[j])
                    span.push_back(j);
            if (span.empty())
                break;
            for (const size_t j : span)
                kept[j] = false;
            if (interesting(joinKept(lines, kept))) {
                removedAny = true;
                alive -= span.size();
            } else {
                for (const size_t j : span)
                    kept[j] = true;
            }
            i = span.back() + 1;
        }
        if (!removedAny) {
            if (chunk == 1)
                break;
            chunk = chunk / 2;
        } else if (chunk > alive && alive > 0) {
            chunk = alive;
        }
    }
    return joinKept(lines, kept);
}

} // namespace d16sim::fuzz
