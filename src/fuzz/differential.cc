#include "fuzz/fuzz.hh"

#include <array>

#include "core/toolchain.hh"
#include "oracle/interp.hh"
#include "support/error.hh"

namespace d16sim::fuzz
{

namespace
{

struct Variant
{
    const char *name;
    mc::CompileOptions opts;
};

std::array<Variant, 5>
variants()
{
    return {{
        {"D16", mc::CompileOptions::d16()},
        {"DLXe/16/2", mc::CompileOptions::dlxe(16, false)},
        {"DLXe/16/3", mc::CompileOptions::dlxe(16, true)},
        {"DLXe/32/2", mc::CompileOptions::dlxe(32, false)},
        {"DLXe/32/3", mc::CompileOptions::dlxe(32, true)},
    }};
}

bool
isInstructionLimit(const std::string &msg)
{
    return msg.find("instruction limit") != std::string::npos;
}

std::string
excerpt(const std::string &s)
{
    if (s.size() <= 160)
        return s;
    return s.substr(0, 160) + "...";
}

} // namespace

DiffOutcome
runDifferential(const std::string &source)
{
    DiffOutcome out;

    // The oracle runs first: a program that traps or blows a budget
    // has no pinned meaning, so it is discarded without ever building
    // (CSmith-style discard of undefined candidates).
    oracle::RunResult ref;
    try {
        oracle::Limits lim;
        lim.maxSteps = 20'000'000;
        ref = oracle::interpretSource(source, lim);
    } catch (const FatalError &e) {
        // The front end (parse + sema) is shared with the compiler: a
        // rejection means the program is simply invalid, not that the
        // toolchain diverged.  Skip keeps the minimizer from shrinking
        // reproducers into syntax errors.
        out.kind = DiffKind::Skip;
        out.detail = std::string("front end rejected program: ") +
                     e.what();
        return out;
    }
    if (ref.outcome != oracle::Outcome::Exit) {
        out.kind = DiffKind::Skip;
        out.detail = ref.reason;
        return out;
    }

    for (const Variant &v : variants()) {
        for (int opt = 0; opt <= 2; ++opt) {
            mc::CompileOptions opts = v.opts;
            opts.optLevel = opt;
            const std::string where =
                std::string(v.name) + " -O" + std::to_string(opt);

            // Three-way differential per variant: the reference
            // interpreter, step dispatch, and the block-compiled
            // threaded-code engine must all agree; step vs block
            // additionally compares every SimStats counter.
            core::RunMeasurement run;
            core::RunMeasurement blockRun;
            try {
                const assem::Image image = core::build(source, opts);
                const auto predecoded =
                    std::make_shared<const sim::DecodedText>(image);
                run = core::run(image, {}, {}, predecoded);
                blockRun = core::run(
                    image, {}, {}, predecoded,
                    core::buildBlockProgram(image, predecoded));
            } catch (const PanicError &e) {
                out.kind = DiffKind::Divergence;
                out.variant = v.name;
                out.optLevel = opt;
                out.detail = where + " hit an internal error: " +
                             e.what();
                return out;
            } catch (const FatalError &e) {
                if (isInstructionLimit(e.what())) {
                    // The oracle's step budget and the simulator's
                    // instruction budget are incomparable; give the
                    // program the benefit of the doubt.
                    out.kind = DiffKind::Skip;
                    out.detail = where + ": " + e.what();
                    return out;
                }
                out.kind = DiffKind::Divergence;
                out.variant = v.name;
                out.optLevel = opt;
                out.detail = where + " failed: " + e.what();
                return out;
            }

            if (run.output != ref.output ||
                run.exitStatus != ref.exitStatus) {
                out.kind = DiffKind::Divergence;
                out.variant = v.name;
                out.optLevel = opt;
                out.detail =
                    where + " diverged from the oracle\n  oracle: [" +
                    excerpt(ref.output) + "] exit " +
                    std::to_string(ref.exitStatus) + "\n  " + where +
                    ": [" + excerpt(run.output) + "] exit " +
                    std::to_string(run.exitStatus);
                return out;
            }

            if (blockRun.output != run.output ||
                blockRun.exitStatus != run.exitStatus ||
                !(blockRun.stats == run.stats)) {
                out.kind = DiffKind::Divergence;
                out.variant = v.name;
                out.optLevel = opt;
                out.detail =
                    where + ": block engine diverged from step "
                    "dispatch\n  step:  [" + excerpt(run.output) +
                    "] exit " + std::to_string(run.exitStatus) +
                    ", " + std::to_string(run.stats.instructions) +
                    " insns\n  block: [" + excerpt(blockRun.output) +
                    "] exit " + std::to_string(blockRun.exitStatus) +
                    ", " +
                    std::to_string(blockRun.stats.instructions) +
                    " insns";
                return out;
            }
        }
    }

    out.kind = DiffKind::Agree;
    return out;
}

bool
divergenceReproduces(const std::string &source)
{
    try {
        return runDifferential(source).kind == DiffKind::Divergence;
    } catch (...) {
        return false;
    }
}

} // namespace d16sim::fuzz
