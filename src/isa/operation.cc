#include "isa/operation.hh"

#include <unordered_map>

#include "support/error.hh"

namespace d16sim::isa
{

namespace
{

struct OpInfo
{
    std::string_view name;
    OpClass cls;
};

constexpr OpInfo opTable[numOps] = {
    {"add", OpClass::IntAlu},
    {"sub", OpClass::IntAlu},
    {"and", OpClass::IntAlu},
    {"or", OpClass::IntAlu},
    {"xor", OpClass::IntAlu},
    {"shl", OpClass::IntAlu},
    {"shr", OpClass::IntAlu},
    {"shra", OpClass::IntAlu},
    {"neg", OpClass::IntAlu},
    {"inv", OpClass::IntAlu},
    {"mv", OpClass::IntAlu},
    {"addi", OpClass::IntAluImm},
    {"subi", OpClass::IntAluImm},
    {"shli", OpClass::IntAluImm},
    {"shri", OpClass::IntAluImm},
    {"shrai", OpClass::IntAluImm},
    {"andi", OpClass::IntAluImm},
    {"ori", OpClass::IntAluImm},
    {"xori", OpClass::IntAluImm},
    {"mvi", OpClass::IntAluImm},
    {"mvhi", OpClass::IntAluImm},
    {"cmp", OpClass::IntAlu},
    {"cmpi", OpClass::IntAluImm},
    {"ld", OpClass::Load},
    {"ldh", OpClass::Load},
    {"ldhu", OpClass::Load},
    {"ldb", OpClass::Load},
    {"ldbu", OpClass::Load},
    {"st", OpClass::Store},
    {"sth", OpClass::Store},
    {"stb", OpClass::Store},
    {"ldc", OpClass::LoadConst},
    {"br", OpClass::Branch},
    {"bz", OpClass::Branch},
    {"bnz", OpClass::Branch},
    {"j", OpClass::Jump},
    {"jl", OpClass::Jump},
    {"jr", OpClass::Jump},
    {"jlr", OpClass::Jump},
    {"jrz", OpClass::Jump},
    {"jrnz", OpClass::Jump},
    {"add.sf", OpClass::FpAlu},
    {"add.df", OpClass::FpAlu},
    {"sub.sf", OpClass::FpAlu},
    {"sub.df", OpClass::FpAlu},
    {"mul.sf", OpClass::FpAlu},
    {"mul.df", OpClass::FpAlu},
    {"div.sf", OpClass::FpAlu},
    {"div.df", OpClass::FpAlu},
    {"neg.sf", OpClass::FpAlu},
    {"neg.df", OpClass::FpAlu},
    {"fmv", OpClass::FpMove},
    {"cmp.sf", OpClass::FpAlu},
    {"cmp.df", OpClass::FpAlu},
    {"si2sf", OpClass::FpConvert},
    {"si2df", OpClass::FpConvert},
    {"sf2df", OpClass::FpConvert},
    {"df2sf", OpClass::FpConvert},
    {"sf2si", OpClass::FpConvert},
    {"df2si", OpClass::FpConvert},
    {"mif.l", OpClass::FpMove},
    {"mif.h", OpClass::FpMove},
    {"mfi.l", OpClass::FpMove},
    {"mfi.h", OpClass::FpMove},
    {"trap", OpClass::Misc},
    {"rdsr", OpClass::Misc},
    {"nop", OpClass::Misc},
};

} // namespace

std::string_view
opName(Op op)
{
    panicIf(op >= Op::NumOps, "bad op");
    return opTable[static_cast<int>(op)].name;
}

bool
parseOp(std::string_view name, Op &out)
{
    static const auto *byName = [] {
        auto *m = new std::unordered_map<std::string_view, Op>();
        for (int i = 0; i < numOps; ++i)
            m->emplace(opTable[i].name, static_cast<Op>(i));
        return m;
    }();
    auto it = byName->find(name);
    if (it == byName->end())
        return false;
    out = it->second;
    return true;
}

OpClass
opClass(Op op)
{
    panicIf(op >= Op::NumOps, "bad op");
    return opTable[static_cast<int>(op)].cls;
}

bool
isD16Only(Op op)
{
    return op == Op::Ldc;
}

bool
isDLXeOnly(Op op)
{
    switch (op) {
      case Op::AndI: case Op::OrI: case Op::XorI:
      case Op::MvHI: case Op::CmpI:
      case Op::J: case Op::Jl:
        return true;
      default:
        return false;
    }
}

bool
isPlainLoad(Op op)
{
    switch (op) {
      case Op::Ld: case Op::Ldh: case Op::Ldhu:
      case Op::Ldb: case Op::Ldbu:
        return true;
      default:
        return false;
    }
}

bool
isStore(Op op)
{
    return op == Op::St || op == Op::Sth || op == Op::Stb;
}

int
memAccessSize(Op op)
{
    switch (op) {
      case Op::Ld: case Op::St: case Op::Ldc:
        return 4;
      case Op::Ldh: case Op::Ldhu: case Op::Sth:
        return 2;
      case Op::Ldb: case Op::Ldbu: case Op::Stb:
        return 1;
      default:
        panic("memAccessSize on non-memory op ", opName(op));
    }
}

bool
isControlFlow(Op op)
{
    const OpClass c = opClass(op);
    return c == OpClass::Branch || c == OpClass::Jump;
}

bool
hasCond(Op op)
{
    return op == Op::Cmp || op == Op::CmpI ||
           op == Op::FCmpS || op == Op::FCmpD;
}

} // namespace d16sim::isa
