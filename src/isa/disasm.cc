#include "isa/disasm.hh"

#include <sstream>

#include "support/strings.hh"

namespace d16sim::isa
{

namespace
{

std::string
gpr(const TargetInfo &t, int r)
{
    return t.regName(r);
}

std::string
fpr(const TargetInfo &t, int r)
{
    return t.fregName(r);
}

} // namespace

std::string
disassemble(const TargetInfo &t, const DecodedInst &d, uint32_t pc)
{
    std::ostringstream os;
    const Op op = d.op;
    std::string mnem(opName(op));
    if (hasCond(op) && (op == Op::Cmp || op == Op::CmpI))
        mnem += "." + std::string(condName(d.cond));
    else if (op == Op::FCmpS || op == Op::FCmpD)
        mnem.insert(mnem.find('.'), "." + std::string(condName(d.cond)));
    os << mnem;

    switch (opClass(op)) {
      case OpClass::IntAlu:
        if (op == Op::Cmp) {
            os << " " << gpr(t, d.rd) << ", " << gpr(t, d.rs1) << ", "
               << gpr(t, d.rs2);
        } else if (op == Op::Neg || op == Op::Inv || op == Op::Mv) {
            os << " " << gpr(t, d.rd) << ", " << gpr(t, d.rs1);
        } else {
            os << " " << gpr(t, d.rd) << ", " << gpr(t, d.rs1) << ", "
               << gpr(t, d.rs2);
        }
        break;

      case OpClass::IntAluImm:
        if (op == Op::MvI || op == Op::MvHI)
            os << " " << gpr(t, d.rd) << ", " << d.imm;
        else
            os << " " << gpr(t, d.rd) << ", " << gpr(t, d.rs1) << ", "
               << d.imm;
        break;

      case OpClass::Load:
        os << " " << gpr(t, d.rd) << ", " << d.imm << "("
           << gpr(t, d.rs1) << ")";
        break;

      case OpClass::Store:
        os << " " << gpr(t, d.rs2) << ", " << d.imm << "("
           << gpr(t, d.rs1) << ")";
        break;

      case OpClass::LoadConst:
        os << " " << hexString((pc & ~3u) + d.imm);
        break;

      case OpClass::Branch:
        if (op != Op::Br)
            os << " " << gpr(t, d.rs1) << ",";
        os << " " << hexString(pc + d.imm);
        break;

      case OpClass::Jump:
        if (op == Op::J || op == Op::Jl)
            os << " " << hexString(pc + d.imm);
        else if (op == Op::Jrz || op == Op::Jrnz)
            os << " " << gpr(t, d.rs1) << ", " << gpr(t, d.rs2);
        else
            os << " " << gpr(t, d.rs1);
        break;

      case OpClass::FpAlu:
        if (op == Op::FCmpS || op == Op::FCmpD)
            os << " " << fpr(t, d.rs1) << ", " << fpr(t, d.rs2);
        else if (op == Op::FNegS || op == Op::FNegD)
            os << " " << fpr(t, d.rd) << ", " << fpr(t, d.rs1);
        else
            os << " " << fpr(t, d.rd) << ", " << fpr(t, d.rs1) << ", "
               << fpr(t, d.rs2);
        break;

      case OpClass::FpConvert:
        os << " " << fpr(t, d.rd) << ", " << fpr(t, d.rs1);
        break;

      case OpClass::FpMove:
        if (op == Op::FMv)
            os << " " << fpr(t, d.rd) << ", " << fpr(t, d.rs1);
        else if (op == Op::MifL || op == Op::MifH)
            os << " " << fpr(t, d.rd) << ", " << gpr(t, d.rs1);
        else
            os << " " << gpr(t, d.rd) << ", " << fpr(t, d.rs1);
        break;

      case OpClass::Misc:
        if (op == Op::Trap)
            os << " " << d.imm;
        else if (op == Op::Rdsr)
            os << " " << gpr(t, d.rd);
        break;
    }
    return os.str();
}

} // namespace d16sim::isa
