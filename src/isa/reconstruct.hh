/**
 * @file
 * Inverse of the decode conventions: rebuild the symbolic AsmInst form
 * from a DecodedInst so it can be re-encoded.
 *
 * Both codecs decode canonically (reserved fields are rejected), so
 * encode(reconstruct(decode(w))) == w for every accepted word w. The
 * encoding-space property tests sweep this exhaustively; the machine-
 * code linter (src/verify) leans on it to prove every instruction of a
 * linked image round-trips bit-identically.
 */

#ifndef D16SIM_ISA_RECONSTRUCT_HH
#define D16SIM_ISA_RECONSTRUCT_HH

#include "isa/asm_inst.hh"
#include "isa/decoded.hh"
#include "isa/target.hh"

namespace d16sim::isa
{

/** Rebuild the symbolic form of a decoded instruction (no relocation;
 *  immediates stay the byte deltas decode produced). */
AsmInst reconstruct(const TargetInfo &target, const DecodedInst &d);

} // namespace d16sim::isa

#endif // D16SIM_ISA_RECONSTRUCT_HH
