/**
 * @file
 * DLXe instruction codec — 32-bit encoding (paper Figure 2).
 *
 * DLXe follows the classic DLX three-format layout:
 *
 *   R-type: op6=0x00 | rs1[25:21] rs2[20:16] rd[15:11] func[10:0]
 *           (integer ALU and register compares)
 *   FP R-type: op6=0x01, same fields, func selects the FP page
 *   I-type: op6 | rs1[25:21] rd[20:16] imm16[15:0]
 *   J-type: op6=0x3e/0x3f | offset26 (word-scaled PC delta)
 *
 * Immediates are sign-extended except for the logical ops
 * (andi/ori/xori) and mvhi, which take zero-extended 16-bit fields.
 * `mvi rd, imm` is encoded as `addi rd, r0, imm`; `nop` as
 * `add r0, r0, r0` (the all-zero word).
 *
 * Decoding is canonical: words with nonzero bits in unused fields
 * (unary-op rs2, branch rd, jump immediates, shift amounts above 31,
 * mvhi rs1, ...) are rejected as reserved, so decode-then-encode is
 * the identity on every accepted word.
 *
 * I-type opcode map: 0x04 addi, 0x05 subi, 0x06 andi, 0x07 ori,
 * 0x08 xori, 0x09 shli, 0x0a shri, 0x0b shrai, 0x0c mvhi,
 * 0x10+cond cmpi, 0x20 ld, 0x21 ldh, 0x22 ldhu, 0x23 ldb, 0x24 ldbu,
 * 0x25 st, 0x26 sth, 0x27 stb, 0x28 bz, 0x29 bnz, 0x2a br, 0x2b jr,
 * 0x2c jlr, 0x2d jrz, 0x2e jrnz, 0x2f trap, 0x30 rdsr.
 */

#ifndef D16SIM_ISA_DLXE_CODEC_HH
#define D16SIM_ISA_DLXE_CODEC_HH

#include <cstdint>

#include "isa/asm_inst.hh"
#include "isa/decoded.hh"

namespace d16sim::isa
{

/**
 * Encode one symbolic instruction to DLXe bits. Branch/jump immediates
 * are byte deltas relative to the instruction's address. Throws
 * FatalError on operands the format cannot express.
 */
uint32_t dlxeEncode(const AsmInst &inst);

/** Decode DLXe bits into the common executed form. */
DecodedInst dlxeDecode(uint32_t bits);

} // namespace d16sim::isa

#endif // D16SIM_ISA_DLXE_CODEC_HH
