/**
 * @file
 * Encoding-dispatch facade over the two codecs.
 */

#ifndef D16SIM_ISA_CODEC_HH
#define D16SIM_ISA_CODEC_HH

#include <cstdint>

#include "isa/asm_inst.hh"
#include "isa/d16_codec.hh"
#include "isa/decoded.hh"
#include "isa/dlxe_codec.hh"
#include "isa/target.hh"

namespace d16sim::isa
{

/** Encode for the given target; returns the instruction word (16/32b). */
inline uint32_t
encode(const TargetInfo &target, const AsmInst &inst)
{
    return target.kind() == IsaKind::D16 ? d16Encode(inst)
                                         : dlxeEncode(inst);
}

/** Decode an instruction word fetched for the given target. */
inline DecodedInst
decode(const TargetInfo &target, uint32_t word)
{
    return target.kind() == IsaKind::D16
               ? d16Decode(static_cast<uint16_t>(word))
               : dlxeDecode(word);
}

} // namespace d16sim::isa

#endif // D16SIM_ISA_CODEC_HH
