/**
 * @file
 * Comparison condition codes shared by D16 and DLXe.
 *
 * D16 integer compares support only the first six conditions
 * (lt, ltu, le, leu, eq, ne) and always write r0; DLXe supports all ten
 * with any GPR destination and an immediate comparand (paper Table 1).
 * Floating-point compares support lt, le, eq only on both machines; the
 * remaining relations are obtained by operand swap and/or branch-sense
 * inversion.
 */

#ifndef D16SIM_ISA_COND_HH
#define D16SIM_ISA_COND_HH

#include <cstdint>
#include <string_view>

namespace d16sim::isa
{

enum class Cond : uint8_t
{
    Lt,   //!< signed less-than
    Ltu,  //!< unsigned less-than
    Le,   //!< signed less-or-equal
    Leu,  //!< unsigned less-or-equal
    Eq,   //!< equal
    Ne,   //!< not equal
    Gt,   //!< signed greater-than (DLXe only)
    Gtu,  //!< unsigned greater-than (DLXe only)
    Ge,   //!< signed greater-or-equal (DLXe only)
    Geu,  //!< unsigned greater-or-equal (DLXe only)
};

constexpr int numConds = 10;

/** Mnemonic suffix ("lt", "geu", ...). */
std::string_view condName(Cond c);

/** Parse a condition suffix; returns false if unknown. */
bool parseCond(std::string_view name, Cond &out);

/** True for the six conditions D16 integer compares can encode. */
constexpr bool
d16HasCond(Cond c)
{
    return static_cast<uint8_t>(c) <= static_cast<uint8_t>(Cond::Ne);
}

/** The condition testing the same relation with operands swapped. */
Cond swapCond(Cond c);

/** The complementary condition (true ↔ false). */
Cond negateCond(Cond c);

/** Evaluate an integer condition. */
bool evalCond(Cond c, uint32_t a, uint32_t b);

/** Evaluate a floating-point condition (lt/le/eq/ne/gt/ge meaningful). */
bool evalCondFp(Cond c, double a, double b);

} // namespace d16sim::isa

#endif // D16SIM_ISA_COND_HH
