/**
 * @file
 * AsmInst — the symbolic (pre-encoding) instruction form.
 *
 * The MiniC code generator emits AsmInst directly and the textual
 * assembler parses into it; the per-ISA codecs encode it to bits once
 * labels are resolved. Operand conventions (register numbers index GPRs
 * or FPRs depending on the op):
 *
 *   ALU reg       rd, rs1, rs2        (D16 requires rd == rs1)
 *   Neg/Inv/Mv    rd, rs1
 *   ALU imm       rd, rs1, imm        (D16 requires rd == rs1)
 *   MvI/MvHI      rd, imm
 *   Cmp           rd, rs1, rs2, cond  (D16 requires rd == 0)
 *   CmpI          rd, rs1, imm, cond
 *   Load          rd, rs1 (base), imm (byte offset)
 *   Store         rs2 (data), rs1 (base), imm
 *   Ldc           label/imm           (dest is implicitly r0)
 *   Br/J/Jl       label/imm (PC-relative)
 *   Bz/Bnz        rs1 (test; D16 requires 0), label
 *   Jr/Jlr        rs1 (target)
 *   Jrz/Jrnz      rs1 (target), rs2 (test; D16 requires 0)
 *   FP alu        rd, rs1, rs2 (FPRs; D16 requires rd == rs1)
 *   FNeg/FMv/cvt  rd, rs1 (FPRs)
 *   FCmp          rs1, rs2, cond      (writes FP status register)
 *   MifL/MifH     rd (FPR), rs1 (GPR)
 *   MfiL/MfiH     rd (GPR), rs1 (FPR)
 *   Trap          imm
 *   Rdsr          rd
 */

#ifndef D16SIM_ISA_ASM_INST_HH
#define D16SIM_ISA_ASM_INST_HH

#include <cstdint>
#include <string>

#include "isa/cond.hh"
#include "isa/operation.hh"

namespace d16sim::isa
{

/** How a symbolic label folds into the instruction's immediate. */
enum class Reloc : uint8_t
{
    None,   //!< imm is already a final value
    Abs,    //!< imm = address of label (+ addend)
    Hi16,   //!< imm = high 16 bits of label address (DLXe MvHI)
    Lo16,   //!< imm = low 16 bits of label address (DLXe OrI)
    PcRel,  //!< imm = label address; codec computes the PC delta
};

struct AsmInst
{
    Op op = Op::Nop;
    Cond cond = Cond::Eq;
    int rd = -1;
    int rs1 = -1;
    int rs2 = -1;
    int64_t imm = 0;
    std::string label;         //!< symbolic target; empty if none
    Reloc reloc = Reloc::None;
    int line = 0;              //!< source line for diagnostics

    // Convenience constructors used by the code generator.
    static AsmInst
    r3(Op op, int rd, int rs1, int rs2)
    {
        AsmInst i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.rs2 = rs2;
        return i;
    }

    static AsmInst
    ri(Op op, int rd, int rs1, int64_t imm)
    {
        AsmInst i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.imm = imm;
        return i;
    }

    static AsmInst
    cmp(Cond c, int rd, int rs1, int rs2)
    {
        AsmInst i = r3(Op::Cmp, rd, rs1, rs2);
        i.cond = c;
        return i;
    }

    static AsmInst
    branch(Op op, int test, std::string target)
    {
        AsmInst i;
        i.op = op;
        i.rs1 = test;
        i.label = std::move(target);
        i.reloc = Reloc::PcRel;
        return i;
    }

    static AsmInst
    nop()
    {
        return AsmInst{};
    }
};

} // namespace d16sim::isa

#endif // D16SIM_ISA_ASM_INST_HH
