/**
 * @file
 * D16 instruction codec — 16-bit encoding (paper Figure 1).
 *
 * The paper gives field diagrams and constraints but not a complete
 * opcode map; this is our documented reconstruction. It satisfies every
 * stated constraint: five instruction types, 4-bit register fields,
 * 5-bit unsigned ALU immediates, a 9-bit signed move-immediate, word
 * load/store offsets limited to 124 bytes (word-scaled, unsigned),
 * non-offsettable sub-word accesses, +/-1024-byte branches, and an LDC
 * format whose PC-relative constant load reaches back to -4096 bytes.
 *
 * Format map (bit 15 downward):
 *
 *   0000 1 ddddddddddd    BR    unconditional br, 11-bit halfword delta
 *   0000 0 c dddddddddd   BR    c: 0=bz 1=bnz (test r0); 10-bit delta
 *   0001 0 wwwwwwwwwww    LDC   w: signed word delta from (pc & ~3),
 *                               destination implicitly r0
 *   001  iiiiiiiii rrrr   MVI   i: 9-bit signed immediate
 *   01 0 ooooo yyyy xxxx  REG   reg-reg page (two-address: rx op= ry)
 *   01 1 oooo iiiii xxxx  REG   reg-imm page (5-bit unsigned immediate)
 *   10 s fffff yyyy xxxx  MEM   s: store; f: unsigned word offset;
 *                               ry = base, rx = data
 *   11 ooooo yyyy 0 xxxx  FP    two-address FP page (fx op= fy)
 *
 * Reg-reg page (op5): 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 shl, 6 shr,
 *   7 shra, 8 neg, 9 inv, 10 mv, 11-16 cmp.{lt,ltu,le,leu,eq,ne}
 *   (dest implicitly r0), 17 ldh, 18 ldhu, 19 ldb, 20 ldbu, 21 sth,
 *   22 stb (address in ry, data in rx, no offset), 23 jr, 24 jlr,
 *   25 jrz, 26 jrnz (target in ry; test implicitly r0), 27 rdsr.
 *
 * Reg-imm page (op4): 0 addi, 1 subi, 2 shli, 3 shri, 4 shrai, 5 trap.
 *
 * Decoding is canonical: reserved opcodes and nonzero bits in unused
 * operand fields (jump/rdsr/trap rx, FP bit 4, LDC bit 11) are
 * rejected, so decode-then-encode is the identity on accepted words
 * (verified exhaustively over all 65536 encodings in the tests).
 *
 * FP page (op5): 0-7 {add,sub,mul,div}.{sf,df}, 8 neg.sf, 9 neg.df,
 *   10 fmv, 11-13 cmp.sf.{lt,le,eq}, 14-16 cmp.df.{lt,le,eq},
 *   17-22 conversions, 23 mif.l, 24 mif.h, 25 mfi.l, 26 mfi.h.
 */

#ifndef D16SIM_ISA_D16_CODEC_HH
#define D16SIM_ISA_D16_CODEC_HH

#include <cstdint>

#include "isa/asm_inst.hh"
#include "isa/decoded.hh"

namespace d16sim::isa
{

/**
 * Encode one symbolic instruction to D16 bits.
 *
 * The instruction must be fully resolved: branch/jump/ldc immediates are
 * byte deltas (branches relative to the instruction's address, Ldc
 * relative to the instruction's address rounded down to a word).
 * Throws FatalError on operands the format cannot express.
 */
uint16_t d16Encode(const AsmInst &inst);

/**
 * Decode D16 bits into the common executed form. Throws FatalError on
 * encodings the format map leaves reserved.
 */
DecodedInst d16Decode(uint16_t bits);

} // namespace d16sim::isa

#endif // D16SIM_ISA_D16_CODEC_HH
