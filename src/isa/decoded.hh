/**
 * @file
 * DecodedInst — the post-decode form executed by the pipeline model.
 *
 * Both codecs decode into this common convention so execution is
 * encoding-independent (the paper's machines share one pipeline and
 * differ only in instruction format):
 *
 *   - rd / rs1 / rs2 follow the AsmInst conventions, with D16's
 *     two-address ops expanded (add rx, ry decodes to rd=rx, rs1=rx,
 *     rs2=ry) and implicit registers made explicit (D16 compare dest and
 *     branch test = r0, Ldc dest = r0, link = r1).
 *   - Branch/jump immediates are byte deltas relative to the
 *     instruction's own address; Ldc's immediate is relative to
 *     (pc & ~3).
 */

#ifndef D16SIM_ISA_DECODED_HH
#define D16SIM_ISA_DECODED_HH

#include <cstdint>

#include "isa/cond.hh"
#include "isa/operation.hh"

namespace d16sim::isa
{

struct DecodedInst
{
    Op op = Op::Nop;
    Cond cond = Cond::Eq;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;
};

} // namespace d16sim::isa

#endif // D16SIM_ISA_DECODED_HH
