/**
 * @file
 * Machine descriptions for the two encodings and their ABI conventions.
 *
 * TargetInfo answers the questions the compiler, assembler, and
 * simulator need: how wide are instructions, which immediates fit, how
 * many registers exist, and which registers play dedicated roles.
 *
 * The register conventions (a reconstruction; the paper fixes only r0's
 * and r1's roles):
 *
 *   D16 (16 GPRs):  r0 = at (compare result, Ldc destination, scratch),
 *                   r1 = ra, r2..r5 args/ret, r6..r9 caller temps,
 *                   r10..r13 callee-saved, r14 = gp, r15 = sp.
 *   DLXe (32 GPRs): r0 = zero, r1 = ra, r2..r9 args/ret, r10..r15
 *                   caller temps, r16..r29 callee-saved, r30 = gp,
 *                   r31 = sp.
 *
 * The paper's "restricted DLXe" compiler variants (16 registers,
 * two-address) are *compiler* restrictions on the full DLXe encoding —
 * CompileOptions in src/core selects them; TargetInfo describes the
 * hardware.
 */

#ifndef D16SIM_ISA_TARGET_HH
#define D16SIM_ISA_TARGET_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "isa/cond.hh"
#include "isa/operation.hh"

namespace d16sim::isa
{

struct DecodedInst;

enum class IsaKind : uint8_t
{
    D16,
    DLXe,
};

std::string_view isaName(IsaKind k);

/** Immutable description of one target machine. */
class TargetInfo
{
  public:
    static const TargetInfo &d16();
    static const TargetInfo &dlxe();
    static const TargetInfo &get(IsaKind kind);

    IsaKind kind() const { return kind_; }
    std::string_view name() const { return isaName(kind_); }

    /** Instruction size in bytes (2 or 4); all instructions equal. */
    int insnBytes() const { return insnBytes_; }

    /** Architected register-file sizes. */
    int numGpr() const { return numGpr_; }
    int numFpr() const { return numFpr_; }

    /** Hardware two-address (D16) vs three-address (DLXe) ALU ops. */
    bool threeAddress() const { return threeAddress_; }

    /** r0 reads as zero (DLXe) vs r0 is the at/compare register (D16). */
    bool r0IsZero() const { return r0IsZero_; }

    // Dedicated register roles.
    int raReg() const { return 1; }
    int atReg() const { return 0; }  //!< D16 scratch; DLXe r0 == 0
    int gpReg() const { return numGpr_ - 2; }
    int spReg() const { return numGpr_ - 1; }

    /** Does this encoding have the given operation at all? */
    bool hasOp(Op op) const;

    /** Does `cond` exist for integer Cmp on this machine? */
    bool hasIntCond(Cond c) const
    {
        return kind_ == IsaKind::DLXe || d16HasCond(c);
    }

    // Immediate legality (values are the *semantic* immediates; word
    // scaling of D16 offsets is handled inside the codec).
    bool aluImmFits(Op op, int64_t v) const;
    bool mviImmFits(int64_t v) const;
    bool memOffsetFits(Op op, int64_t v) const;
    bool branchOffsetFits(Op op, int64_t byteDelta) const;
    bool jumpOffsetFits(int64_t byteDelta) const;
    bool ldcOffsetFits(int64_t byteDelta) const;

    /** Range of the branch offset in bytes (for relaxation decisions). */
    int branchRangeBytes() const { return branchRangeBytes_; }

    std::string regName(int r) const;
    std::string fregName(int r) const;

    /** Parse "r4" / "sp" / "gp" / "ra" / "at"; false if not a GPR. */
    bool parseReg(std::string_view s, int &out) const;
    /** Parse "f7"; false if not an FPR. */
    bool parseFreg(std::string_view s, int &out) const;

  private:
    TargetInfo(IsaKind kind);

    IsaKind kind_;
    int insnBytes_;
    int numGpr_;
    int numFpr_;
    bool threeAddress_;
    bool r0IsZero_;
    int branchRangeBytes_;
};

/**
 * Is `d` the target's canonical nop encoding? `Op::Nop` never appears
 * in a decoded stream: the D16 nop assembles to `mv r0, r0` and the
 * DLXe nop to `add r0, r0, r0`. Note that on D16 the encoding still
 * *executes* as a real move of the at register (r0 is an ordinary
 * register there), so this predicate identifies wasted issue slots, not
 * timing-neutral instructions.
 */
bool isCanonicalNop(const TargetInfo &t, const DecodedInst &d);

} // namespace d16sim::isa

#endif // D16SIM_ISA_TARGET_HH
