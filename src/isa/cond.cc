#include "isa/cond.hh"

#include "support/error.hh"

namespace d16sim::isa
{

namespace
{

constexpr std::string_view condNames[numConds] = {
    "lt", "ltu", "le", "leu", "eq", "ne", "gt", "gtu", "ge", "geu",
};

} // namespace

std::string_view
condName(Cond c)
{
    return condNames[static_cast<uint8_t>(c)];
}

bool
parseCond(std::string_view name, Cond &out)
{
    for (int i = 0; i < numConds; ++i) {
        if (condNames[i] == name) {
            out = static_cast<Cond>(i);
            return true;
        }
    }
    return false;
}

Cond
swapCond(Cond c)
{
    switch (c) {
      case Cond::Lt: return Cond::Gt;
      case Cond::Ltu: return Cond::Gtu;
      case Cond::Le: return Cond::Ge;
      case Cond::Leu: return Cond::Geu;
      case Cond::Eq: return Cond::Eq;
      case Cond::Ne: return Cond::Ne;
      case Cond::Gt: return Cond::Lt;
      case Cond::Gtu: return Cond::Ltu;
      case Cond::Ge: return Cond::Le;
      case Cond::Geu: return Cond::Leu;
    }
    panic("bad cond");
}

Cond
negateCond(Cond c)
{
    switch (c) {
      case Cond::Lt: return Cond::Ge;
      case Cond::Ltu: return Cond::Geu;
      case Cond::Le: return Cond::Gt;
      case Cond::Leu: return Cond::Gtu;
      case Cond::Eq: return Cond::Ne;
      case Cond::Ne: return Cond::Eq;
      case Cond::Gt: return Cond::Le;
      case Cond::Gtu: return Cond::Leu;
      case Cond::Ge: return Cond::Lt;
      case Cond::Geu: return Cond::Ltu;
    }
    panic("bad cond");
}

bool
evalCond(Cond c, uint32_t a, uint32_t b)
{
    const int32_t sa = static_cast<int32_t>(a);
    const int32_t sb = static_cast<int32_t>(b);
    switch (c) {
      case Cond::Lt: return sa < sb;
      case Cond::Ltu: return a < b;
      case Cond::Le: return sa <= sb;
      case Cond::Leu: return a <= b;
      case Cond::Eq: return a == b;
      case Cond::Ne: return a != b;
      case Cond::Gt: return sa > sb;
      case Cond::Gtu: return a > b;
      case Cond::Ge: return sa >= sb;
      case Cond::Geu: return a >= b;
    }
    panic("bad cond");
}

bool
evalCondFp(Cond c, double a, double b)
{
    switch (c) {
      case Cond::Lt: case Cond::Ltu: return a < b;
      case Cond::Le: case Cond::Leu: return a <= b;
      case Cond::Eq: return a == b;
      case Cond::Ne: return a != b;
      case Cond::Gt: case Cond::Gtu: return a > b;
      case Cond::Ge: case Cond::Geu: return a >= b;
    }
    panic("bad cond");
}

} // namespace d16sim::isa
