#include "isa/d16_codec.hh"

#include "support/bits.hh"
#include "support/error.hh"
#include "support/strings.hh"

namespace d16sim::isa
{

namespace
{

// Reg-reg page opcodes.
enum RegRegOp : uint32_t
{
    RrAdd = 0, RrSub, RrAnd, RrOr, RrXor, RrShl, RrShr, RrShra,
    RrNeg, RrInv, RrMv,
    RrCmpBase = 11,  // + cond (lt, ltu, le, leu, eq, ne)
    RrLdh = 17, RrLdhu, RrLdb, RrLdbu, RrSth, RrStb,
    RrJr = 23, RrJlr, RrJrz, RrJrnz,
    RrRdsr = 27,
};

// Reg-imm page opcodes.
enum RegImmOp : uint32_t
{
    RiAddi = 0, RiSubi, RiShli, RiShri, RiShrai, RiTrap,
};

// FP page opcodes.
enum FpOp : uint32_t
{
    FpAddS = 0, FpAddD, FpSubS, FpSubD, FpMulS, FpMulD, FpDivS, FpDivD,
    FpNegS, FpNegD, FpFmv,
    FpCmpSBase = 11,  // + {lt=0, le=1, eq=2}
    FpCmpDBase = 14,
    FpSi2Sf = 17, FpSi2Df, FpSf2Df, FpDf2Sf, FpSf2Si, FpDf2Si,
    FpMifL = 23, FpMifH, FpMfiL, FpMfiH,
};

void
checkReg(int r, const char *what, int line)
{
    if (r < 0 || r > 15)
        fatal("D16: bad register ", r, " for ", what, " (line ", line, ")");
}

uint16_t
makeRegReg(uint32_t op5, int ry, int rx)
{
    return static_cast<uint16_t>(
        (0b01u << 14) | (0u << 13) | (op5 << 8) |
        ((ry & 0xf) << 4) | (rx & 0xf));
}

uint16_t
makeRegImm(uint32_t op4, uint32_t imm5, int rx)
{
    return static_cast<uint16_t>(
        (0b01u << 14) | (1u << 13) | (op4 << 9) |
        ((imm5 & 0x1f) << 4) | (rx & 0xf));
}

uint16_t
makeFp(uint32_t op5, int ry, int rx)
{
    return static_cast<uint16_t>(
        (0b11u << 14) | (op5 << 9) | ((ry & 0xf) << 5) | (rx & 0xf));
}

uint32_t
fpCondIndex(Cond c, int line)
{
    switch (c) {
      case Cond::Lt: return 0;
      case Cond::Le: return 1;
      case Cond::Eq: return 2;
      default:
        fatal("D16: FP compare supports lt/le/eq only, got ",
              condName(c), " (line ", line, ")");
    }
}

/** D16 two-address check: destination must equal the left source. */
void
checkTwoAddress(const AsmInst &inst)
{
    if (inst.rd != inst.rs1) {
        fatal("D16: ", opName(inst.op),
              " is two-address; destination must equal first source "
              "(line ", inst.line, ")");
    }
}

} // namespace

uint16_t
d16Encode(const AsmInst &inst)
{
    const int line = inst.line;
    switch (inst.op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or:
      case Op::Xor: case Op::Shl: case Op::Shr: case Op::Shra: {
        checkTwoAddress(inst);
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs2, "source", line);
        const uint32_t op5 = static_cast<uint32_t>(inst.op) -
                             static_cast<uint32_t>(Op::Add) + RrAdd;
        return makeRegReg(op5, inst.rs2, inst.rd);
      }

      case Op::Neg: case Op::Inv: case Op::Mv: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "source", line);
        const uint32_t op5 =
            inst.op == Op::Neg ? RrNeg : inst.op == Op::Inv ? RrInv : RrMv;
        return makeRegReg(op5, inst.rs1, inst.rd);
      }

      case Op::Cmp: {
        if (inst.rd != 0)
            fatal("D16: cmp destination is implicitly r0 (line ", line, ")");
        if (!d16HasCond(inst.cond)) {
            fatal("D16: cmp condition ", condName(inst.cond),
                  " not encodable (line ", line, ")");
        }
        checkReg(inst.rs1, "source", line);
        checkReg(inst.rs2, "source", line);
        // cmp rx, ry computes (rx cond ry): rx is the left operand.
        return makeRegReg(RrCmpBase + static_cast<uint32_t>(inst.cond),
                          inst.rs2, inst.rs1);
      }

      case Op::AddI: case Op::SubI:
      case Op::ShlI: case Op::ShrI: case Op::ShraI: {
        checkTwoAddress(inst);
        checkReg(inst.rd, "dest", line);
        if (!fitsUnsigned(inst.imm, 5)) {
            fatal("D16: immediate ", inst.imm,
                  " out of 5-bit unsigned range (line ", line, ")");
        }
        const uint32_t op4 = static_cast<uint32_t>(inst.op) -
                             static_cast<uint32_t>(Op::AddI) + RiAddi;
        return makeRegImm(op4, static_cast<uint32_t>(inst.imm), inst.rd);
      }

      case Op::MvI: {
        checkReg(inst.rd, "dest", line);
        if (!fitsSigned(inst.imm, 9)) {
            fatal("D16: mvi immediate ", inst.imm,
                  " out of 9-bit signed range (line ", line, ")");
        }
        return static_cast<uint16_t>(
            (0b001u << 13) | ((inst.imm & 0x1ff) << 4) | (inst.rd & 0xf));
      }

      case Op::Ld: case Op::St: {
        const bool store = inst.op == Op::St;
        const int data = store ? inst.rs2 : inst.rd;
        checkReg(data, "data", line);
        checkReg(inst.rs1, "base", line);
        if (inst.imm < 0 || inst.imm > 124 || (inst.imm & 3)) {
            fatal("D16: word memory offset ", inst.imm,
                  " not expressible (0..124, word aligned) (line ",
                  line, ")");
        }
        return static_cast<uint16_t>(
            (0b10u << 14) | (uint32_t{store} << 13) |
            ((inst.imm / 4) << 8) | ((inst.rs1 & 0xf) << 4) | (data & 0xf));
      }

      case Op::Ldh: case Op::Ldhu: case Op::Ldb: case Op::Ldbu:
      case Op::Sth: case Op::Stb: {
        const bool store = isStore(inst.op);
        const int data = store ? inst.rs2 : inst.rd;
        checkReg(data, "data", line);
        checkReg(inst.rs1, "address", line);
        if (inst.imm != 0) {
            fatal("D16: sub-word accesses are not offsettable (line ",
                  line, ")");
        }
        uint32_t op5 = 0;
        switch (inst.op) {
          case Op::Ldh: op5 = RrLdh; break;
          case Op::Ldhu: op5 = RrLdhu; break;
          case Op::Ldb: op5 = RrLdb; break;
          case Op::Ldbu: op5 = RrLdbu; break;
          case Op::Sth: op5 = RrSth; break;
          default: op5 = RrStb; break;
        }
        return makeRegReg(op5, inst.rs1, data);
      }

      case Op::Ldc: {
        if ((inst.imm & 3) || !fitsSigned(inst.imm / 4, 11)) {
            fatal("D16: ldc delta ", inst.imm,
                  " out of range (-4096..4092, word aligned) (line ",
                  line, ")");
        }
        return static_cast<uint16_t>(
            (0b0001u << 12) | ((inst.imm / 4) & 0x7ff));
      }

      case Op::Br: {
        if ((inst.imm & 1) || !fitsSigned(inst.imm / 2, 11)) {
            fatal("D16: br delta ", inst.imm,
                  " out of +/-2048-byte range (line ", line, ")");
        }
        return static_cast<uint16_t>(
            (1u << 11) | ((inst.imm / 2) & 0x7ff));
      }

      case Op::Bz: case Op::Bnz: {
        if (inst.rs1 > 0) {
            fatal("D16: conditional branches test r0 implicitly (line ",
                  line, ")");
        }
        if ((inst.imm & 1) || !fitsSigned(inst.imm / 2, 10)) {
            fatal("D16: branch delta ", inst.imm,
                  " out of +/-1024-byte range (line ", line, ")");
        }
        return static_cast<uint16_t>(
            (uint32_t{inst.op == Op::Bnz} << 10) |
            ((inst.imm / 2) & 0x3ff));
      }

      case Op::Jr: case Op::Jlr: case Op::Jrz: case Op::Jrnz: {
        checkReg(inst.rs1, "target", line);
        if ((inst.op == Op::Jrz || inst.op == Op::Jrnz) && inst.rs2 > 0) {
            fatal("D16: conditional jumps test r0 implicitly (line ",
                  line, ")");
        }
        uint32_t op5 = 0;
        switch (inst.op) {
          case Op::Jr: op5 = RrJr; break;
          case Op::Jlr: op5 = RrJlr; break;
          case Op::Jrz: op5 = RrJrz; break;
          default: op5 = RrJrnz; break;
        }
        return makeRegReg(op5, inst.rs1, 0);
      }

      case Op::FAddS: case Op::FAddD: case Op::FSubS: case Op::FSubD:
      case Op::FMulS: case Op::FMulD: case Op::FDivS: case Op::FDivD: {
        checkTwoAddress(inst);
        checkReg(inst.rd, "fp dest", line);
        checkReg(inst.rs2, "fp source", line);
        const uint32_t op5 = static_cast<uint32_t>(inst.op) -
                             static_cast<uint32_t>(Op::FAddS) + FpAddS;
        return makeFp(op5, inst.rs2, inst.rd);
      }

      case Op::FNegS: case Op::FNegD: case Op::FMv: {
        checkReg(inst.rd, "fp dest", line);
        checkReg(inst.rs1, "fp source", line);
        const uint32_t op5 = inst.op == Op::FNegS ? FpNegS :
                             inst.op == Op::FNegD ? FpNegD : FpFmv;
        return makeFp(op5, inst.rs1, inst.rd);
      }

      case Op::FCmpS: case Op::FCmpD: {
        checkReg(inst.rs1, "fp source", line);
        checkReg(inst.rs2, "fp source", line);
        const uint32_t base =
            inst.op == Op::FCmpS ? FpCmpSBase : FpCmpDBase;
        // cmp fx, fy computes (fx cond fy).
        return makeFp(base + fpCondIndex(inst.cond, line),
                      inst.rs2, inst.rs1);
      }

      case Op::CvtSiSf: case Op::CvtSiDf: case Op::CvtSfDf:
      case Op::CvtDfSf: case Op::CvtSfSi: case Op::CvtDfSi: {
        checkReg(inst.rd, "fp dest", line);
        checkReg(inst.rs1, "fp source", line);
        const uint32_t op5 = static_cast<uint32_t>(inst.op) -
                             static_cast<uint32_t>(Op::CvtSiSf) + FpSi2Sf;
        return makeFp(op5, inst.rs1, inst.rd);
      }

      case Op::MifL: case Op::MifH: case Op::MfiL: case Op::MfiH: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "source", line);
        uint32_t op5 = 0;
        switch (inst.op) {
          case Op::MifL: op5 = FpMifL; break;
          case Op::MifH: op5 = FpMifH; break;
          case Op::MfiL: op5 = FpMfiL; break;
          default: op5 = FpMfiH; break;
        }
        return makeFp(op5, inst.rs1, inst.rd);
      }

      case Op::Trap: {
        if (!fitsUnsigned(inst.imm, 5)) {
            fatal("D16: trap code ", inst.imm,
                  " out of 5-bit range (line ", line, ")");
        }
        return makeRegImm(RiTrap, static_cast<uint32_t>(inst.imm), 0);
      }

      case Op::Rdsr:
        checkReg(inst.rd, "dest", line);
        return makeRegReg(RrRdsr, 0, inst.rd);

      case Op::Nop:
        // mv r0, r0
        return makeRegReg(RrMv, 0, 0);

      default:
        fatal("D16: operation ", opName(inst.op),
              " does not exist in the D16 encoding (line ", line, ")");
    }
}

DecodedInst
d16Decode(uint16_t raw)
{
    DecodedInst d;
    const uint32_t w = raw;
    const uint32_t top2 = bits(w, 15, 14);

    if (top2 == 0b00) {
        if (bits(w, 15, 13) == 0b001) {
            // MVI
            d.op = Op::MvI;
            d.rd = static_cast<uint8_t>(bits(w, 3, 0));
            d.imm = signExtend(bits(w, 12, 4), 9);
            return d;
        }
        if (bits(w, 15, 12) == 0b0000) {
            // BR: bit 11 set = unconditional (11-bit offset);
            // clear = bz/bnz selected by bit 10 (10-bit offset).
            if (bits(w, 11, 11)) {
                d.op = Op::Br;
                d.imm = signExtend(bits(w, 10, 0), 11) * 2;
            } else {
                d.op = bits(w, 10, 10) ? Op::Bnz : Op::Bz;
                d.rs1 = 0;  // implicit r0 test
                d.imm = signExtend(bits(w, 9, 0), 10) * 2;
            }
            return d;
        }
        // LDC
        if (bits(w, 11, 11) != 0)
            fatal("D16: reserved LDC encoding ", hexString(raw, 4));
        d.op = Op::Ldc;
        d.rd = 0;
        d.imm = signExtend(bits(w, 10, 0), 11) * 4;
        return d;
    }

    if (top2 == 0b01) {
        const uint32_t rx = bits(w, 3, 0);
        if (bits(w, 13, 13) == 0) {
            // reg-reg page
            const uint32_t op5 = bits(w, 12, 8);
            const uint32_t ry = bits(w, 7, 4);
            d.rd = static_cast<uint8_t>(rx);
            if (op5 <= RrShra) {
                d.op = static_cast<Op>(static_cast<uint32_t>(Op::Add) +
                                       (op5 - RrAdd));
                d.rs1 = static_cast<uint8_t>(rx);
                d.rs2 = static_cast<uint8_t>(ry);
            } else if (op5 == RrNeg || op5 == RrInv || op5 == RrMv) {
                d.op = op5 == RrNeg ? Op::Neg :
                       op5 == RrInv ? Op::Inv : Op::Mv;
                d.rs1 = static_cast<uint8_t>(ry);
            } else if (op5 >= RrCmpBase && op5 < RrCmpBase + 6) {
                d.op = Op::Cmp;
                d.cond = static_cast<Cond>(op5 - RrCmpBase);
                d.rd = 0;
                d.rs1 = static_cast<uint8_t>(rx);
                d.rs2 = static_cast<uint8_t>(ry);
            } else if (op5 >= RrLdh && op5 <= RrStb) {
                static constexpr Op memOps[] = {
                    Op::Ldh, Op::Ldhu, Op::Ldb, Op::Ldbu, Op::Sth, Op::Stb,
                };
                d.op = memOps[op5 - RrLdh];
                d.rs1 = static_cast<uint8_t>(ry);  // address
                if (isStore(d.op)) {
                    d.rs2 = static_cast<uint8_t>(rx);  // data
                    d.rd = 0;
                }
            } else if (op5 >= RrJr && op5 <= RrJrnz) {
                if (rx != 0) {
                    fatal("D16: reserved operand bits in jump ",
                          hexString(raw, 4));
                }
                static constexpr Op jOps[] = {
                    Op::Jr, Op::Jlr, Op::Jrz, Op::Jrnz,
                };
                d.op = jOps[op5 - RrJr];
                d.rs1 = static_cast<uint8_t>(ry);  // target
                d.rs2 = 0;                         // implicit r0 test
                d.rd = d.op == Op::Jlr ? 1 : 0;
            } else if (op5 == RrRdsr) {
                if (ry != 0) {
                    fatal("D16: reserved operand bits in rdsr ",
                          hexString(raw, 4));
                }
                d.op = Op::Rdsr;
            } else {
                fatal("D16: reserved reg-reg encoding ", hexString(raw, 4));
            }
            return d;
        }
        // reg-imm page
        const uint32_t op4 = bits(w, 12, 9);
        const uint32_t imm5 = bits(w, 8, 4);
        d.rd = static_cast<uint8_t>(rx);
        d.rs1 = static_cast<uint8_t>(rx);
        d.imm = static_cast<int32_t>(imm5);
        switch (op4) {
          case RiAddi: d.op = Op::AddI; break;
          case RiSubi: d.op = Op::SubI; break;
          case RiShli: d.op = Op::ShlI; break;
          case RiShri: d.op = Op::ShrI; break;
          case RiShrai: d.op = Op::ShraI; break;
          case RiTrap:
            if (rx != 0) {
                fatal("D16: reserved operand bits in trap ",
                      hexString(raw, 4));
            }
            d.op = Op::Trap;
            d.rd = 0;
            d.rs1 = 0;
            break;
          default:
            fatal("D16: reserved reg-imm encoding ", hexString(raw, 4));
        }
        return d;
    }

    if (top2 == 0b10) {
        // MEM
        const bool store = bits(w, 13, 13) != 0;
        d.op = store ? Op::St : Op::Ld;
        d.rs1 = static_cast<uint8_t>(bits(w, 7, 4));  // base
        d.imm = static_cast<int32_t>(bits(w, 12, 8) * 4);
        if (store)
            d.rs2 = static_cast<uint8_t>(bits(w, 3, 0));
        else
            d.rd = static_cast<uint8_t>(bits(w, 3, 0));
        return d;
    }

    // FP page
    if (bits(w, 4, 4) != 0)
        fatal("D16: reserved bit in FP encoding ", hexString(raw, 4));
    const uint32_t op5 = bits(w, 13, 9);
    const uint32_t fy = bits(w, 8, 5);
    const uint32_t fx = bits(w, 3, 0);
    d.rd = static_cast<uint8_t>(fx);
    if (op5 <= FpDivD) {
        d.op = static_cast<Op>(static_cast<uint32_t>(Op::FAddS) +
                               (op5 - FpAddS));
        d.rs1 = static_cast<uint8_t>(fx);
        d.rs2 = static_cast<uint8_t>(fy);
    } else if (op5 == FpNegS || op5 == FpNegD || op5 == FpFmv) {
        d.op = op5 == FpNegS ? Op::FNegS :
               op5 == FpNegD ? Op::FNegD : Op::FMv;
        d.rs1 = static_cast<uint8_t>(fy);
    } else if (op5 >= FpCmpSBase && op5 < FpCmpSBase + 6) {
        const uint32_t idx = op5 - FpCmpSBase;
        d.op = idx < 3 ? Op::FCmpS : Op::FCmpD;
        static constexpr Cond conds[] = {Cond::Lt, Cond::Le, Cond::Eq};
        d.cond = conds[idx % 3];
        d.rd = 0;
        d.rs1 = static_cast<uint8_t>(fx);
        d.rs2 = static_cast<uint8_t>(fy);
    } else if (op5 >= FpSi2Sf && op5 <= FpDf2Si) {
        d.op = static_cast<Op>(static_cast<uint32_t>(Op::CvtSiSf) +
                               (op5 - FpSi2Sf));
        d.rs1 = static_cast<uint8_t>(fy);
    } else if (op5 >= FpMifL && op5 <= FpMfiH) {
        static constexpr Op mOps[] = {
            Op::MifL, Op::MifH, Op::MfiL, Op::MfiH,
        };
        d.op = mOps[op5 - FpMifL];
        d.rs1 = static_cast<uint8_t>(fy);
    } else {
        fatal("D16: reserved FP encoding ", hexString(raw, 4));
    }
    return d;
}

} // namespace d16sim::isa
