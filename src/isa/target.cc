#include "isa/target.hh"

#include <cstdlib>

#include "isa/decoded.hh"
#include "support/bits.hh"
#include "support/error.hh"

namespace d16sim::isa
{

std::string_view
isaName(IsaKind k)
{
    return k == IsaKind::D16 ? "D16" : "DLXe";
}

TargetInfo::TargetInfo(IsaKind kind) : kind_(kind)
{
    if (kind == IsaKind::D16) {
        insnBytes_ = 2;
        numGpr_ = 16;
        numFpr_ = 16;
        threeAddress_ = false;
        r0IsZero_ = false;
        // 10-bit signed halfword offset: +/-1024 bytes (paper Table 1).
        branchRangeBytes_ = 1024;
    } else {
        insnBytes_ = 4;
        numGpr_ = 32;
        numFpr_ = 32;
        threeAddress_ = true;
        r0IsZero_ = true;
        // 16-bit signed byte offset.
        branchRangeBytes_ = 32768;
    }
}

const TargetInfo &
TargetInfo::d16()
{
    static const TargetInfo t(IsaKind::D16);
    return t;
}

const TargetInfo &
TargetInfo::dlxe()
{
    static const TargetInfo t(IsaKind::DLXe);
    return t;
}

const TargetInfo &
TargetInfo::get(IsaKind kind)
{
    return kind == IsaKind::D16 ? d16() : dlxe();
}

bool
isCanonicalNop(const TargetInfo &t, const DecodedInst &d)
{
    if (t.kind() == IsaKind::D16)
        return d.op == Op::Mv && d.rd == 0 && d.rs1 == 0;
    return d.op == Op::Add && d.rd == 0 && d.rs1 == 0 && d.rs2 == 0;
}

bool
TargetInfo::hasOp(Op op) const
{
    if (op == Op::Nop)
        return true;
    if (kind_ == IsaKind::D16)
        return !isDLXeOnly(op);
    return !isD16Only(op);
}

bool
TargetInfo::aluImmFits(Op op, int64_t v) const
{
    if (kind_ == IsaKind::D16) {
        switch (op) {
          case Op::AddI: case Op::SubI:
          case Op::ShlI: case Op::ShrI: case Op::ShraI:
            return fitsUnsigned(v, 5);
          default:
            return false;  // no andi/ori/xori/cmpi on D16
        }
    }
    switch (op) {
      case Op::AndI: case Op::OrI: case Op::XorI:
        // Logical immediates are zero-extended 16-bit.
        return fitsUnsigned(v, 16);
      case Op::AddI: case Op::SubI: case Op::CmpI:
        return fitsSigned(v, 16);
      case Op::ShlI: case Op::ShrI: case Op::ShraI:
        return v >= 0 && v < 32;
      case Op::MvHI:
        return fitsUnsigned(v, 16);
      default:
        return false;
    }
}

bool
TargetInfo::mviImmFits(int64_t v) const
{
    return kind_ == IsaKind::D16 ? fitsSigned(v, 9) : fitsSigned(v, 16);
}

bool
TargetInfo::memOffsetFits(Op op, int64_t v) const
{
    if (kind_ == IsaKind::DLXe)
        return fitsSigned(v, 16);
    // D16: word forms take 5-bit unsigned word-scaled offsets
    // (0..124 bytes); sub-word forms are not offsettable.
    switch (op) {
      case Op::Ld: case Op::St:
        return v >= 0 && v <= 124 && (v & 3) == 0;
      case Op::Ldh: case Op::Ldhu: case Op::Sth:
      case Op::Ldb: case Op::Ldbu: case Op::Stb:
        return v == 0;
      default:
        panic("memOffsetFits on non-memory op ", opName(op));
    }
}

bool
TargetInfo::branchOffsetFits(Op op, int64_t byteDelta) const
{
    if (kind_ == IsaKind::D16) {
        // Unconditional br reaches +/-2048; bz/bnz +/-1024 (the paper's
        // stated limit).
        const unsigned width = op == Op::Br ? 11 : 10;
        return (byteDelta & 1) == 0 && fitsSigned(byteDelta / 2, width);
    }
    return (byteDelta & 3) == 0 && fitsSigned(byteDelta, 16);
}

bool
TargetInfo::jumpOffsetFits(int64_t byteDelta) const
{
    if (kind_ == IsaKind::D16)
        return false;  // D16 has no direct jumps
    return (byteDelta & 3) == 0 && fitsSigned(byteDelta, 26);
}

bool
TargetInfo::ldcOffsetFits(int64_t byteDelta) const
{
    if (kind_ != IsaKind::D16)
        return false;
    // 11-bit signed word offset: -4096 .. +4092 bytes, word aligned.
    return (byteDelta & 3) == 0 && fitsSigned(byteDelta / 4, 11);
}

std::string
TargetInfo::regName(int r) const
{
    panicIf(r < 0 || r >= numGpr_, "bad register r", r);
    if (r == spReg())
        return "sp";
    if (r == gpReg())
        return "gp";
    if (r == raReg())
        return "ra";
    if (r == 0 && kind_ == IsaKind::D16)
        return "at";
    return "r" + std::to_string(r);
}

std::string
TargetInfo::fregName(int r) const
{
    panicIf(r < 0 || r >= numFpr_, "bad fp register f", r);
    return "f" + std::to_string(r);
}

bool
TargetInfo::parseReg(std::string_view s, int &out) const
{
    if (s == "sp") {
        out = spReg();
        return true;
    }
    if (s == "gp") {
        out = gpReg();
        return true;
    }
    if (s == "ra") {
        out = raReg();
        return true;
    }
    if (s == "at") {
        out = atReg();
        return true;
    }
    if (s.size() < 2 || s[0] != 'r')
        return false;
    int v = 0;
    for (size_t i = 1; i < s.size(); ++i) {
        if (s[i] < '0' || s[i] > '9')
            return false;
        v = v * 10 + (s[i] - '0');
    }
    if (v >= numGpr_)
        return false;
    out = v;
    return true;
}

bool
TargetInfo::parseFreg(std::string_view s, int &out) const
{
    if (s.size() < 2 || s[0] != 'f')
        return false;
    int v = 0;
    for (size_t i = 1; i < s.size(); ++i) {
        if (s[i] < '0' || s[i] > '9')
            return false;
        v = v * 10 + (s[i] - '0');
    }
    if (v >= numFpr_)
        return false;
    out = v;
    return true;
}

} // namespace d16sim::isa
