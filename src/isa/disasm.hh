/**
 * @file
 * Textual disassembly of decoded instructions (both encodings).
 */

#ifndef D16SIM_ISA_DISASM_HH
#define D16SIM_ISA_DISASM_HH

#include <string>

#include "isa/decoded.hh"
#include "isa/target.hh"

namespace d16sim::isa
{

/**
 * Render one decoded instruction in assembler syntax. PC-relative
 * targets are shown as absolute addresses computed from `pc`.
 */
std::string disassemble(const TargetInfo &target, const DecodedInst &inst,
                        uint32_t pc);

} // namespace d16sim::isa

#endif // D16SIM_ISA_DISASM_HH
