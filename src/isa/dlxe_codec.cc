#include "isa/dlxe_codec.hh"

#include "support/bits.hh"
#include "support/error.hh"
#include "support/strings.hh"

namespace d16sim::isa
{

namespace
{

enum IOp : uint32_t
{
    OpRType = 0x00,
    OpFType = 0x01,
    OpAddi = 0x04, OpSubi, OpAndi, OpOri, OpXori,
    OpShli, OpShri, OpShrai, OpMvhi,
    OpCmpiBase = 0x10,  // + cond (10 conditions)
    OpLd = 0x20, OpLdh, OpLdhu, OpLdb, OpLdbu, OpSt, OpSth, OpStb,
    OpBz = 0x28, OpBnz, OpBr, OpJr, OpJlr, OpJrz, OpJrnz,
    OpTrap = 0x2f, OpRdsr = 0x30,
    OpJ = 0x3e, OpJl = 0x3f,
};

// R-type func values for the integer page.
enum RFunc : uint32_t
{
    FnAdd = 0, FnSub, FnAnd, FnOr, FnXor, FnShl, FnShr, FnShra,
    FnNeg, FnInv, FnMv,
    FnCmpBase = 16,  // + cond (10 conditions)
};

// FP page func values (same ordering as the D16 FP page).
enum FFunc : uint32_t
{
    FfAddS = 0, FfAddD, FfSubS, FfSubD, FfMulS, FfMulD, FfDivS, FfDivD,
    FfNegS, FfNegD, FfFmv,
    FfCmpSBase = 11,
    FfCmpDBase = 14,
    FfSi2Sf = 17, FfSi2Df, FfSf2Df, FfDf2Sf, FfSf2Si, FfDf2Si,
    FfMifL = 23, FfMifH, FfMfiL, FfMfiH,
};

void
checkReg(int r, const char *what, int line)
{
    if (r < 0 || r > 31)
        fatal("DLXe: bad register ", r, " for ", what, " (line ", line, ")");
}

uint32_t
makeR(uint32_t op6, int rs1, int rs2, int rd, uint32_t func)
{
    return (op6 << 26) | ((rs1 & 0x1f) << 21) | ((rs2 & 0x1f) << 16) |
           ((rd & 0x1f) << 11) | (func & 0x7ff);
}

uint32_t
makeI(uint32_t op6, int rs1, int rd, uint32_t imm16)
{
    return (op6 << 26) | ((rs1 & 0x1f) << 21) | ((rd & 0x1f) << 16) |
           (imm16 & 0xffff);
}

uint32_t
fpCondIndex(Cond c, int line)
{
    switch (c) {
      case Cond::Lt: return 0;
      case Cond::Le: return 1;
      case Cond::Eq: return 2;
      default:
        fatal("DLXe: FP compare supports lt/le/eq only, got ",
              condName(c), " (line ", line, ")");
    }
}

void
checkSigned16(int64_t v, const char *what, int line)
{
    if (!fitsSigned(v, 16)) {
        fatal("DLXe: ", what, " ", v, " out of 16-bit signed range (line ",
              line, ")");
    }
}

} // namespace

uint32_t
dlxeEncode(const AsmInst &inst)
{
    const int line = inst.line;
    switch (inst.op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or:
      case Op::Xor: case Op::Shl: case Op::Shr: case Op::Shra: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "source", line);
        checkReg(inst.rs2, "source", line);
        const uint32_t func = static_cast<uint32_t>(inst.op) -
                              static_cast<uint32_t>(Op::Add) + FnAdd;
        return makeR(OpRType, inst.rs1, inst.rs2, inst.rd, func);
      }

      case Op::Neg: case Op::Inv: case Op::Mv: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "source", line);
        const uint32_t func = inst.op == Op::Neg ? FnNeg :
                              inst.op == Op::Inv ? FnInv : FnMv;
        return makeR(OpRType, inst.rs1, 0, inst.rd, func);
      }

      case Op::Cmp: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "source", line);
        checkReg(inst.rs2, "source", line);
        return makeR(OpRType, inst.rs1, inst.rs2, inst.rd,
                     FnCmpBase + static_cast<uint32_t>(inst.cond));
      }

      case Op::CmpI: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "source", line);
        checkSigned16(inst.imm, "compare immediate", line);
        return makeI(OpCmpiBase + static_cast<uint32_t>(inst.cond),
                     inst.rs1, inst.rd, static_cast<uint32_t>(inst.imm));
      }

      case Op::AddI: case Op::SubI: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "source", line);
        checkSigned16(inst.imm, "immediate", line);
        return makeI(inst.op == Op::AddI ? OpAddi : OpSubi,
                     inst.rs1, inst.rd, static_cast<uint32_t>(inst.imm));
      }

      case Op::AndI: case Op::OrI: case Op::XorI: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "source", line);
        if (!fitsUnsigned(inst.imm, 16)) {
            fatal("DLXe: logical immediate ", inst.imm,
                  " out of 16-bit unsigned range (line ", line, ")");
        }
        const uint32_t op6 = inst.op == Op::AndI ? OpAndi :
                             inst.op == Op::OrI ? OpOri : OpXori;
        return makeI(op6, inst.rs1, inst.rd,
                     static_cast<uint32_t>(inst.imm));
      }

      case Op::ShlI: case Op::ShrI: case Op::ShraI: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "source", line);
        if (inst.imm < 0 || inst.imm > 31) {
            fatal("DLXe: shift amount ", inst.imm, " out of range (line ",
                  line, ")");
        }
        const uint32_t op6 = inst.op == Op::ShlI ? OpShli :
                             inst.op == Op::ShrI ? OpShri : OpShrai;
        return makeI(op6, inst.rs1, inst.rd,
                     static_cast<uint32_t>(inst.imm));
      }

      case Op::MvI: {
        checkReg(inst.rd, "dest", line);
        checkSigned16(inst.imm, "mvi immediate", line);
        return makeI(OpAddi, 0, inst.rd, static_cast<uint32_t>(inst.imm));
      }

      case Op::MvHI: {
        checkReg(inst.rd, "dest", line);
        if (!fitsUnsigned(inst.imm, 16)) {
            fatal("DLXe: mvhi immediate ", inst.imm,
                  " out of 16-bit unsigned range (line ", line, ")");
        }
        return makeI(OpMvhi, 0, inst.rd, static_cast<uint32_t>(inst.imm));
      }

      case Op::Ld: case Op::Ldh: case Op::Ldhu:
      case Op::Ldb: case Op::Ldbu: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "base", line);
        checkSigned16(inst.imm, "displacement", line);
        static constexpr uint32_t ops[] = {
            OpLd, OpLdh, OpLdhu, OpLdb, OpLdbu,
        };
        const uint32_t op6 = ops[static_cast<uint32_t>(inst.op) -
                                 static_cast<uint32_t>(Op::Ld)];
        return makeI(op6, inst.rs1, inst.rd,
                     static_cast<uint32_t>(inst.imm));
      }

      case Op::St: case Op::Sth: case Op::Stb: {
        checkReg(inst.rs2, "data", line);
        checkReg(inst.rs1, "base", line);
        checkSigned16(inst.imm, "displacement", line);
        const uint32_t op6 = inst.op == Op::St ? OpSt :
                             inst.op == Op::Sth ? OpSth : OpStb;
        return makeI(op6, inst.rs1, inst.rs2,
                     static_cast<uint32_t>(inst.imm));
      }

      case Op::Br: case Op::Bz: case Op::Bnz: {
        if (inst.op != Op::Br)
            checkReg(inst.rs1, "test", line);
        if (inst.imm & 3)
            fatal("DLXe: misaligned branch delta (line ", line, ")");
        checkSigned16(inst.imm, "branch delta", line);
        const uint32_t op6 = inst.op == Op::Br ? OpBr :
                             inst.op == Op::Bz ? OpBz : OpBnz;
        return makeI(op6, inst.op == Op::Br ? 0 : inst.rs1, 0,
                     static_cast<uint32_t>(inst.imm));
      }

      case Op::J: case Op::Jl: {
        if ((inst.imm & 3) || !fitsSigned(inst.imm / 4, 26)) {
            fatal("DLXe: jump delta ", inst.imm, " out of range (line ",
                  line, ")");
        }
        return ((inst.op == Op::J ? OpJ : OpJl) << 26) |
               (static_cast<uint32_t>(inst.imm / 4) & 0x3ffffff);
      }

      case Op::Jr: case Op::Jlr: {
        checkReg(inst.rs1, "target", line);
        return makeI(inst.op == Op::Jr ? OpJr : OpJlr, inst.rs1,
                     inst.op == Op::Jlr ? 1 : 0, 0);
      }

      case Op::Jrz: case Op::Jrnz: {
        checkReg(inst.rs1, "target", line);
        checkReg(inst.rs2, "test", line);
        return makeI(inst.op == Op::Jrz ? OpJrz : OpJrnz, inst.rs1,
                     inst.rs2, 0);
      }

      case Op::FAddS: case Op::FAddD: case Op::FSubS: case Op::FSubD:
      case Op::FMulS: case Op::FMulD: case Op::FDivS: case Op::FDivD: {
        checkReg(inst.rd, "fp dest", line);
        checkReg(inst.rs1, "fp source", line);
        checkReg(inst.rs2, "fp source", line);
        const uint32_t func = static_cast<uint32_t>(inst.op) -
                              static_cast<uint32_t>(Op::FAddS) + FfAddS;
        return makeR(OpFType, inst.rs1, inst.rs2, inst.rd, func);
      }

      case Op::FNegS: case Op::FNegD: case Op::FMv: {
        checkReg(inst.rd, "fp dest", line);
        checkReg(inst.rs1, "fp source", line);
        const uint32_t func = inst.op == Op::FNegS ? FfNegS :
                              inst.op == Op::FNegD ? FfNegD : FfFmv;
        return makeR(OpFType, inst.rs1, 0, inst.rd, func);
      }

      case Op::FCmpS: case Op::FCmpD: {
        checkReg(inst.rs1, "fp source", line);
        checkReg(inst.rs2, "fp source", line);
        const uint32_t base =
            inst.op == Op::FCmpS ? FfCmpSBase : FfCmpDBase;
        return makeR(OpFType, inst.rs1, inst.rs2, 0,
                     base + fpCondIndex(inst.cond, line));
      }

      case Op::CvtSiSf: case Op::CvtSiDf: case Op::CvtSfDf:
      case Op::CvtDfSf: case Op::CvtSfSi: case Op::CvtDfSi: {
        checkReg(inst.rd, "fp dest", line);
        checkReg(inst.rs1, "fp source", line);
        const uint32_t func = static_cast<uint32_t>(inst.op) -
                              static_cast<uint32_t>(Op::CvtSiSf) + FfSi2Sf;
        return makeR(OpFType, inst.rs1, 0, inst.rd, func);
      }

      case Op::MifL: case Op::MifH: case Op::MfiL: case Op::MfiH: {
        checkReg(inst.rd, "dest", line);
        checkReg(inst.rs1, "source", line);
        static constexpr uint32_t funcs[] = {
            FfMifL, FfMifH, FfMfiL, FfMfiH,
        };
        const uint32_t func = funcs[static_cast<uint32_t>(inst.op) -
                                    static_cast<uint32_t>(Op::MifL)];
        return makeR(OpFType, inst.rs1, 0, inst.rd, func);
      }

      case Op::Trap:
        if (!fitsUnsigned(inst.imm, 16)) {
            fatal("DLXe: trap code ", inst.imm, " out of range (line ",
                  line, ")");
        }
        return makeI(OpTrap, 0, 0, static_cast<uint32_t>(inst.imm));

      case Op::Rdsr:
        checkReg(inst.rd, "dest", line);
        return makeI(OpRdsr, 0, inst.rd, 0);

      case Op::Nop:
        return makeR(OpRType, 0, 0, 0, FnAdd);

      default:
        fatal("DLXe: operation ", opName(inst.op),
              " does not exist in the DLXe encoding (line ", line, ")");
    }
}

DecodedInst
dlxeDecode(uint32_t w)
{
    DecodedInst d;
    const uint32_t op6 = bits(w, 31, 26);
    const uint32_t rs1 = bits(w, 25, 21);
    const uint32_t rs2 = bits(w, 20, 16);

    if (op6 == OpRType) {
        const uint32_t rd = bits(w, 15, 11);
        const uint32_t func = bits(w, 10, 0);
        d.rd = static_cast<uint8_t>(rd);
        d.rs1 = static_cast<uint8_t>(rs1);
        d.rs2 = static_cast<uint8_t>(rs2);
        if (func <= FnShra) {
            d.op = static_cast<Op>(static_cast<uint32_t>(Op::Add) + func);
        } else if (func == FnNeg || func == FnInv || func == FnMv) {
            if (rs2 != 0)
                fatal("DLXe: reserved bits in unary op ", hexString(w));
            d.op = func == FnNeg ? Op::Neg :
                   func == FnInv ? Op::Inv : Op::Mv;
            d.rs2 = 0;
        } else if (func >= FnCmpBase && func < FnCmpBase + numConds) {
            d.op = Op::Cmp;
            d.cond = static_cast<Cond>(func - FnCmpBase);
        } else {
            fatal("DLXe: reserved R-type encoding ", hexString(w));
        }
        return d;
    }

    if (op6 == OpFType) {
        const uint32_t rd = bits(w, 15, 11);
        const uint32_t func = bits(w, 10, 0);
        d.rd = static_cast<uint8_t>(rd);
        d.rs1 = static_cast<uint8_t>(rs1);
        d.rs2 = static_cast<uint8_t>(rs2);
        if (func <= FfDivD) {
            d.op = static_cast<Op>(static_cast<uint32_t>(Op::FAddS) + func);
        } else if (func == FfNegS || func == FfNegD || func == FfFmv) {
            if (rs2 != 0)
                fatal("DLXe: reserved bits in FP unary ", hexString(w));
            d.op = func == FfNegS ? Op::FNegS :
                   func == FfNegD ? Op::FNegD : Op::FMv;
        } else if (func >= FfCmpSBase && func < FfCmpSBase + 6) {
            if (rd != 0)
                fatal("DLXe: reserved bits in FP compare ", hexString(w));
            const uint32_t idx = func - FfCmpSBase;
            d.op = idx < 3 ? Op::FCmpS : Op::FCmpD;
            static constexpr Cond conds[] = {Cond::Lt, Cond::Le, Cond::Eq};
            d.cond = conds[idx % 3];
            d.rd = 0;
        } else if (func >= FfSi2Sf && func <= FfDf2Si) {
            if (rs2 != 0)
                fatal("DLXe: reserved bits in FP convert ", hexString(w));
            d.op = static_cast<Op>(static_cast<uint32_t>(Op::CvtSiSf) +
                                   (func - FfSi2Sf));
        } else if (func >= FfMifL && func <= FfMfiH) {
            if (rs2 != 0)
                fatal("DLXe: reserved bits in FP move ", hexString(w));
            static constexpr Op mOps[] = {
                Op::MifL, Op::MifH, Op::MfiL, Op::MfiH,
            };
            d.op = mOps[func - FfMifL];
        } else {
            fatal("DLXe: reserved FP encoding ", hexString(w));
        }
        return d;
    }

    if (op6 == OpJ || op6 == OpJl) {
        d.op = op6 == OpJ ? Op::J : Op::Jl;
        d.rd = op6 == OpJl ? 1 : 0;
        d.imm = signExtend(bits(w, 25, 0), 26) * 4;
        return d;
    }

    // I-type.
    const uint32_t imm16 = bits(w, 15, 0);
    const int32_t simm = signExtend(imm16, 16);
    d.rs1 = static_cast<uint8_t>(rs1);
    d.rd = static_cast<uint8_t>(rs2);  // rd field of I-type
    d.imm = simm;

    switch (op6) {
      case OpAddi: d.op = Op::AddI; break;
      case OpSubi: d.op = Op::SubI; break;
      case OpAndi: d.op = Op::AndI; d.imm = static_cast<int32_t>(imm16); break;
      case OpOri: d.op = Op::OrI; d.imm = static_cast<int32_t>(imm16); break;
      case OpXori: d.op = Op::XorI; d.imm = static_cast<int32_t>(imm16); break;
      case OpShli: case OpShri: case OpShrai:
        if (imm16 > 31)
            fatal("DLXe: reserved shift amount in ", hexString(w));
        d.op = op6 == OpShli ? Op::ShlI
               : op6 == OpShri ? Op::ShrI : Op::ShraI;
        d.imm = static_cast<int32_t>(imm16);
        break;
      case OpMvhi:
        if (rs1 != 0)
            fatal("DLXe: reserved bits in mvhi ", hexString(w));
        d.op = Op::MvHI;
        d.imm = static_cast<int32_t>(imm16);
        break;
      case OpLd: d.op = Op::Ld; break;
      case OpLdh: d.op = Op::Ldh; break;
      case OpLdhu: d.op = Op::Ldhu; break;
      case OpLdb: d.op = Op::Ldb; break;
      case OpLdbu: d.op = Op::Ldbu; break;
      case OpSt: d.op = Op::St; d.rs2 = d.rd; d.rd = 0; break;
      case OpSth: d.op = Op::Sth; d.rs2 = d.rd; d.rd = 0; break;
      case OpStb: d.op = Op::Stb; d.rs2 = d.rd; d.rd = 0; break;
      case OpBz: case OpBnz: case OpBr:
        if (rs2 != 0 || (op6 == OpBr && rs1 != 0) || (d.imm & 3))
            fatal("DLXe: reserved bits in branch ", hexString(w));
        d.op = op6 == OpBz ? Op::Bz : op6 == OpBnz ? Op::Bnz : Op::Br;
        d.rd = 0;
        break;
      case OpJr: case OpJlr:
        if (imm16 != 0 || (op6 == OpJr && rs2 != 0) ||
            (op6 == OpJlr && rs2 != 1)) {
            fatal("DLXe: reserved bits in jump ", hexString(w));
        }
        d.op = op6 == OpJr ? Op::Jr : Op::Jlr;
        d.rd = op6 == OpJlr ? 1 : 0;
        d.imm = 0;
        break;
      case OpJrz:
      case OpJrnz:
        if (imm16 != 0)
            fatal("DLXe: reserved bits in jump ", hexString(w));
        d.op = op6 == OpJrz ? Op::Jrz : Op::Jrnz;
        d.rs2 = d.rd;  // test register lives in the rd field
        d.rd = 0;
        d.imm = 0;
        break;
      case OpTrap:
        if (rs1 != 0 || rs2 != 0)
            fatal("DLXe: reserved bits in trap ", hexString(w));
        d.op = Op::Trap;
        d.rd = 0;
        d.imm = static_cast<int32_t>(imm16);
        break;
      case OpRdsr:
        if (rs1 != 0 || imm16 != 0)
            fatal("DLXe: reserved bits in rdsr ", hexString(w));
        d.op = Op::Rdsr;
        d.imm = 0;
        break;
      default:
        if (op6 >= OpCmpiBase &&
            op6 < OpCmpiBase + static_cast<uint32_t>(numConds)) {
            d.op = Op::CmpI;
            d.cond = static_cast<Cond>(op6 - OpCmpiBase);
            break;
        }
        fatal("DLXe: reserved opcode in ", hexString(w));
    }
    return d;
}

} // namespace d16sim::isa
