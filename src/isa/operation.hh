/**
 * @file
 * The shared operation vocabulary of D16 and DLXe (paper Table 1).
 *
 * Both instruction sets are "nearly identical in function" — they share
 * ALU, shift, memory, branch, and floating-point operations executed on
 * the same pipeline. This enum is the single semantic namespace; the two
 * codecs map (a per-ISA subset of) it to/from bits. Ops marked D16-only
 * or DLXe-only below follow the paper:
 *
 *  - D16 only:  Ldc (PC-relative constant-pool word load into implicit
 *               r0, the "LDC format" with offsets reaching -4096).
 *  - DLXe only: AndI/OrI/XorI, MvHI ("set upper 16 bits"), CmpI
 *               (immediate compares), J/Jl (26-bit direct jumps).
 *
 * Neither machine has integer multiply/divide (software routines) nor
 * direct FP loads/stores (FPU interface restriction, paper §2): memory
 * traffic to FP registers moves through GPRs via MifL/MifH/MfiL/MfiH.
 */

#ifndef D16SIM_ISA_OPERATION_HH
#define D16SIM_ISA_OPERATION_HH

#include <cstdint>
#include <string_view>

namespace d16sim::isa
{

enum class Op : uint8_t
{
    // Integer ALU, register forms. D16 executes these two-address
    // (rx = rx op ry); DLXe three-address (rd = rs1 op rs2).
    Add, Sub, And, Or, Xor, Shl, Shr, Shra,
    Neg,  //!< rd = -rs1
    Inv,  //!< rd = ~rs1
    Mv,   //!< rd = rs1

    // Integer ALU, immediate forms. D16 immediates are 5-bit unsigned;
    // DLXe immediates are 16 bits (sign-extended for arithmetic,
    // zero-extended for logical ops, per DLX convention).
    AddI, SubI, ShlI, ShrI, ShraI,
    AndI, OrI, XorI,  // DLXe only

    MvI,   //!< rd = imm (D16: 9-bit signed; DLXe: 16-bit signed)
    MvHI,  //!< rd = imm << 16 (DLXe only)

    // Integer compares; result is all-zeros/all-ones... the paper says
    // "sets r0 to zeros or ones"; we define the result as 1/0 (a boolean)
    // which composes with Bz/Bnz identically. D16 destination is always
    // r0 and only the first six conditions exist.
    Cmp,   //!< rd = (rs1 cond rs2)
    CmpI,  //!< rd = (rs1 cond imm), DLXe only

    // Memory. D16 word forms take a 5-bit unsigned word-scaled offset
    // (0..124 bytes); sub-word forms are not offsettable (offset must be
    // zero). DLXe takes 16-bit signed byte displacements everywhere.
    Ld, Ldh, Ldhu, Ldb, Ldbu,
    St, Sth, Stb,
    Ldc,  //!< D16 only: r0 = mem[(pc & ~3) + imm], imm in [-4096, 4092]

    // Control transfer. All branches/jumps have one delay slot.
    Br,    //!< unconditional PC-relative branch
    Bz,    //!< branch if test register zero (D16 tests r0 implicitly)
    Bnz,   //!< branch if test register nonzero
    J,     //!< DLXe only: PC-relative 26-bit jump
    Jl,    //!< DLXe only: PC-relative 26-bit jump-and-link (link = r1)
    Jr,    //!< jump to address in register
    Jlr,   //!< jump to register, link in r1
    Jrz,   //!< jump to register if test register zero
    Jrnz,  //!< jump to register if test register nonzero

    // Floating point (separate 16/32-entry FP register file; 64-bit
    // registers holding either single or double values).
    FAddS, FAddD, FSubS, FSubD, FMulS, FMulD, FDivS, FDivD,
    FNegS, FNegD,
    FMv,    //!< FPR-to-FPR raw move
    FCmpS,  //!< sets FP status (read with Rdsr); conds lt/le/eq
    FCmpD,

    // Conversions.
    CvtSiSf, CvtSiDf, CvtSfDf, CvtDfSf, CvtSfSi, CvtDfSi,

    // GPR <-> FPR half moves (the only path between memory and the FPU).
    MifL,  //!< fpr[rd].lo32 = gpr[rs1] (also how floats enter the FPU)
    MifH,  //!< fpr[rd].hi32 = gpr[rs1]
    MfiL,  //!< gpr[rd] = fpr[rs1].lo32
    MfiH,  //!< gpr[rd] = fpr[rs1].hi32

    // Special.
    Trap,  //!< OS/simulator service call, code in immediate
    Rdsr,  //!< rd = FP status register (result of last FCmp)
    Nop,   //!< assembler-level only; encoded as a harmless Mv/Add

    NumOps
};

constexpr int numOps = static_cast<int>(Op::NumOps);

/** Broad behavioural class, used by the timing model and schedulers. */
enum class OpClass : uint8_t
{
    IntAlu,     //!< register ALU ops incl. moves and compares
    IntAluImm,  //!< immediate ALU ops
    Load,       //!< memory read (has one delay slot, interlocked)
    Store,      //!< memory write
    LoadConst,  //!< D16 Ldc (a load for timing purposes)
    Branch,     //!< conditional/unconditional PC-relative
    Jump,       //!< register or long direct jumps
    FpAlu,      //!< FP arithmetic (multi-cycle, interlocked)
    FpMove,     //!< FMv and GPR<->FPR half moves
    FpConvert,  //!< conversions (multi-cycle)
    Misc,       //!< Trap, Rdsr, Nop
};

/** Mnemonic used by the assembler and disassemblers. */
std::string_view opName(Op op);

/** Parse a mnemonic; returns false if unknown. */
bool parseOp(std::string_view name, Op &out);

/** Behavioural class of the op. */
OpClass opClass(Op op);

/** True iff the op exists only in the D16 encoding. */
bool isD16Only(Op op);

/** True iff the op exists only in the DLXe encoding. */
bool isDLXeOnly(Op op);

/** True for Ld/Ldh/Ldhu/Ldb/Ldbu (not Ldc). */
bool isPlainLoad(Op op);

/** True for St/Sth/Stb. */
bool isStore(Op op);

/** Memory access size in bytes for loads/stores (4 for Ldc). */
int memAccessSize(Op op);

/** True for ops that end a basic block (branches and jumps). */
bool isControlFlow(Op op);

/** True iff the op takes a Cond field. */
bool hasCond(Op op);

} // namespace d16sim::isa

#endif // D16SIM_ISA_OPERATION_HH
