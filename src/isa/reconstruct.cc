#include "isa/reconstruct.hh"

namespace d16sim::isa
{

AsmInst
reconstruct(const TargetInfo &t, const DecodedInst &d)
{
    AsmInst a;
    a.op = d.op;
    a.cond = d.cond;
    switch (opClass(d.op)) {
      case OpClass::IntAlu:
        if (d.op == Op::Cmp) {
            a = AsmInst::cmp(d.cond, d.rd, d.rs1, d.rs2);
        } else if (d.op == Op::Neg || d.op == Op::Inv || d.op == Op::Mv) {
            a = AsmInst::ri(d.op, d.rd, d.rs1, 0);
        } else {
            a = AsmInst::r3(d.op, d.rd, d.rs1, d.rs2);
        }
        break;
      case OpClass::IntAluImm:
        if (d.op == Op::MvI || d.op == Op::MvHI) {
            a = AsmInst::ri(d.op, d.rd, -1, d.imm);
        } else if (d.op == Op::CmpI) {
            a = AsmInst::ri(d.op, d.rd, d.rs1, d.imm);
            a.cond = d.cond;
        } else {
            a = AsmInst::ri(d.op, d.rd, d.rs1, d.imm);
        }
        break;
      case OpClass::Load:
        a = AsmInst::ri(d.op, d.rd, d.rs1, d.imm);
        break;
      case OpClass::Store:
        a.op = d.op;
        a.rs1 = d.rs1;
        a.rs2 = d.rs2;
        a.imm = d.imm;
        break;
      case OpClass::LoadConst:
        a.op = Op::Ldc;
        a.imm = d.imm;
        break;
      case OpClass::Branch:
        a.op = d.op;
        a.rs1 = t.kind() == IsaKind::D16 ? 0 : d.rs1;
        a.imm = d.imm;
        break;
      case OpClass::Jump:
        a.op = d.op;
        if (d.op == Op::J || d.op == Op::Jl) {
            a.imm = d.imm;
        } else if (d.op == Op::Jrz || d.op == Op::Jrnz) {
            a.rs1 = d.rs1;
            a.rs2 = t.kind() == IsaKind::D16 ? 0 : d.rs2;
        } else {
            a.rs1 = d.rs1;
        }
        break;
      case OpClass::FpAlu:
        if (d.op == Op::FCmpS || d.op == Op::FCmpD) {
            a = AsmInst::r3(d.op, -1, d.rs1, d.rs2);
            a.cond = d.cond;
        } else if (d.op == Op::FNegS || d.op == Op::FNegD) {
            a = AsmInst::ri(d.op, d.rd, d.rs1, 0);
        } else {
            a = AsmInst::r3(d.op, d.rd, d.rs1, d.rs2);
        }
        break;
      case OpClass::FpConvert:
      case OpClass::FpMove:
        a = AsmInst::ri(d.op, d.rd, d.rs1, 0);
        break;
      case OpClass::Misc:
        if (d.op == Op::Trap) {
            a.op = Op::Trap;
            a.imm = d.imm;
        } else if (d.op == Op::Rdsr) {
            a = AsmInst::ri(Op::Rdsr, d.rd, -1, 0);
        }
        break;
    }
    return a;
}

} // namespace d16sim::isa
