#include "support/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "support/strings.hh"

namespace d16sim::cli
{

Cli::Cli(std::string prog, std::string usageText)
    : prog_(std::move(prog)), usage_(std::move(usageText))
{}

void
Cli::flag(const std::string &name, bool *target)
{
    flag(name, [target] { *target = true; });
}

void
Cli::flag(const std::string &name, std::function<void()> fn)
{
    Option o;
    o.name = name;
    o.onFlag = std::move(fn);
    options_.push_back(std::move(o));
}

void
Cli::value(const std::string &name,
           std::function<bool(const std::string &)> fn)
{
    Option o;
    o.name = name;
    o.takesValue = true;
    o.onValue = std::move(fn);
    options_.push_back(std::move(o));
}

void
Cli::intValue(const std::string &name, int *target)
{
    value(name, [target](const std::string &v) {
        *target = std::atoi(v.c_str());
        return true;
    });
}

void
Cli::stringValue(const std::string &name, std::string *target)
{
    value(name, [target](const std::string &v) {
        *target = v;
        return true;
    });
}

void
Cli::positionals(std::vector<std::string> *target)
{
    positionals_ = target;
}

const Cli::Option *
Cli::find(const std::string &name) const
{
    for (const Option &o : options_)
        if (o.name == name)
            return &o;
    return nullptr;
}

CliStatus
Cli::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            printUsage();
            return CliStatus::Help;
        }
        if (!a.empty() && a[0] == '-') {
            const Option *o = find(a);
            if (!o) {
                std::fprintf(stderr, "%s: unknown option %s\n",
                             prog_.c_str(), a.c_str());
                printUsage();
                return CliStatus::Error;
            }
            if (!o->takesValue) {
                o->onFlag();
                continue;
            }
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             prog_.c_str(), a.c_str());
                printUsage();
                return CliStatus::Error;
            }
            if (!o->onValue(argv[++i])) {
                std::fprintf(stderr, "%s: bad value for %s: %s\n",
                             prog_.c_str(), a.c_str(), argv[i]);
                printUsage();
                return CliStatus::Error;
            }
            continue;
        }
        if (!positionals_) {
            std::fprintf(stderr, "%s: unexpected argument %s\n",
                         prog_.c_str(), a.c_str());
            printUsage();
            return CliStatus::Error;
        }
        positionals_->push_back(a);
    }
    return CliStatus::Ok;
}

void
Cli::printUsage() const
{
    std::fprintf(stderr, "usage: %s %s\n", prog_.c_str(), usage_.c_str());
}

std::vector<std::string>
csvList(const std::string &s)
{
    std::vector<std::string> out;
    for (std::string_view f : split(s, ','))
        if (!trim(f).empty())
            out.emplace_back(trim(f));
    return out;
}

} // namespace d16sim::cli
