/**
 * @file
 * Small string utilities shared by the assembler, compiler, and report
 * formatting code.
 */

#ifndef D16SIM_SUPPORT_STRINGS_HH
#define D16SIM_SUPPORT_STRINGS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace d16sim
{

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string_view> split(std::string_view s, char delim);

/** Split on runs of whitespace; empty fields are dropped. */
std::vector<std::string_view> splitWhitespace(std::string_view s);

/** True iff s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Format v as 0x%0*x with the given number of hex digits. */
std::string hexString(uint32_t v, int digits = 8);

/** Format a double with fixed precision (used for report tables). */
std::string fixed(double v, int precision);

} // namespace d16sim

#endif // D16SIM_SUPPORT_STRINGS_HH
