/**
 * @file
 * Bit-manipulation helpers used by the instruction codecs.
 *
 * All helpers are constexpr and operate on uint32_t containers; field
 * positions follow the usual [hi:lo] inclusive convention used in the
 * D16/DLXe format diagrams.
 */

#ifndef D16SIM_SUPPORT_BITS_HH
#define D16SIM_SUPPORT_BITS_HH

#include <cstdint>

#include "support/error.hh"

namespace d16sim
{

/** A mask with the low n bits set (n in [0,32]). */
constexpr uint32_t
maskBits(unsigned n)
{
    return n >= 32 ? 0xffffffffu : ((1u << n) - 1u);
}

/** Extract the inclusive bit field [hi:lo] of value. */
constexpr uint32_t
bits(uint32_t value, unsigned hi, unsigned lo)
{
    return (value >> lo) & maskBits(hi - lo + 1);
}

/** Insert field (low bits of field) into [hi:lo] of value. */
constexpr uint32_t
insertBits(uint32_t value, unsigned hi, unsigned lo, uint32_t field)
{
    const uint32_t mask = maskBits(hi - lo + 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low `width` bits of value to a full int32_t. */
constexpr int32_t
signExtend(uint32_t value, unsigned width)
{
    const uint32_t shift = 32 - width;
    return static_cast<int32_t>(value << shift) >> shift;
}

/** True iff v is representable as a signed `width`-bit two's-complement. */
constexpr bool
fitsSigned(int64_t v, unsigned width)
{
    const int64_t lo = -(int64_t{1} << (width - 1));
    const int64_t hi = (int64_t{1} << (width - 1)) - 1;
    return v >= lo && v <= hi;
}

/** True iff v is representable as an unsigned `width`-bit value. */
constexpr bool
fitsUnsigned(int64_t v, unsigned width)
{
    return v >= 0 && v <= static_cast<int64_t>(maskBits(width));
}

/** True iff v is a multiple of `align` (align a power of two). */
constexpr bool
isAligned(uint64_t v, unsigned align)
{
    return (v & (align - 1)) == 0;
}

/** Round v up to the next multiple of `align` (align a power of two). */
constexpr uint64_t
roundUp(uint64_t v, unsigned align)
{
    return (v + align - 1) & ~static_cast<uint64_t>(align - 1);
}

/** True iff v is a (positive) power of two. */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)) for v > 0. */
constexpr unsigned
floorLog2(uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

} // namespace d16sim

#endif // D16SIM_SUPPORT_BITS_HH
