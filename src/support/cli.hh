/**
 * @file
 * Minimal command-line parser shared by the tools (d16lint, d16sweep,
 * d16cfa). Replaces the hand-rolled argv loops each tool used to carry:
 * one registration call per option, one parse() call, and the shared
 * conventions — `--help`/`-h` prints the usage, an unknown option or a
 * missing value prints the usage to stderr — live here once.
 */

#ifndef D16SIM_SUPPORT_CLI_HH
#define D16SIM_SUPPORT_CLI_HH

#include <functional>
#include <string>
#include <vector>

namespace d16sim::cli
{

enum class CliStatus
{
    Ok,    //!< parsed; run the tool
    Help,  //!< --help was given; usage printed, exit 0
    Error, //!< bad usage; message + usage printed, exit 2
};

class Cli
{
  public:
    /** `usageText` is the part after "usage: <prog> ". */
    Cli(std::string prog, std::string usageText);

    /** Register `--name` setting *target = true. */
    void flag(const std::string &name, bool *target);

    /** Register `--name` invoking a callback. */
    void flag(const std::string &name, std::function<void()> fn);

    /** Register `--name VALUE`; the handler returns false to reject
     *  the value (bad usage). */
    void value(const std::string &name,
               std::function<bool(const std::string &)> fn);

    /** Register `--name N` parsing a decimal integer. */
    void intValue(const std::string &name, int *target);

    /** Register `--name S` storing the raw string. */
    void stringValue(const std::string &name, std::string *target);

    /** Accept positional arguments (collected in order). Without this,
     *  a positional argument is bad usage. */
    void positionals(std::vector<std::string> *target);

    CliStatus parse(int argc, char **argv);

    /** Print "usage: <prog> <usageText>" to stderr. */
    void printUsage() const;

    const std::string &prog() const { return prog_; }

  private:
    struct Option
    {
        std::string name;
        bool takesValue = false;
        std::function<void()> onFlag;
        std::function<bool(const std::string &)> onValue;
    };

    const Option *find(const std::string &name) const;

    std::string prog_;
    std::string usage_;
    std::vector<Option> options_;
    std::vector<std::string> *positionals_ = nullptr;
};

/** Split "a,b,c" into trimmed, non-empty fields. */
std::vector<std::string> csvList(const std::string &s);

} // namespace d16sim::cli

#endif // D16SIM_SUPPORT_CLI_HH
