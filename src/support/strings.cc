#include "support/strings.hh"

#include <cctype>
#include <cstdio>

namespace d16sim
{

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view>
split(std::string_view s, char delim)
{
    std::vector<std::string_view> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view>
splitWhitespace(std::string_view s)
{
    std::vector<std::string_view> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
hexString(uint32_t v, int digits)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%0*x", digits, v);
    return buf;
}

std::string
fixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace d16sim
