/**
 * @file
 * Plain-text table formatting for experiment reports.
 *
 * The benchmark harnesses print the same rows/series the paper's tables
 * and figures report; Table gives them a single, consistent renderer
 * (column alignment, optional title/caption, right-aligned numerics).
 */

#ifndef D16SIM_SUPPORT_TABLE_HH
#define D16SIM_SUPPORT_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace d16sim
{

/** A simple aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: title printed above the table. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace d16sim

#endif // D16SIM_SUPPORT_TABLE_HH
