/**
 * @file
 * Error-reporting primitives for the d16sim library.
 *
 * Two categories of failure are distinguished, following simulator
 * convention (cf. gem5's fatal/panic split):
 *
 *  - fatal(): the *input* is at fault (malformed assembly, a MiniC type
 *    error, an out-of-range operand in a user program). Reported as a
 *    d16sim::FatalError exception carrying a formatted message, so
 *    library embedders can catch and present it.
 *
 *  - panic(): the *library* is at fault (an internal invariant broke).
 *    Also an exception (d16sim::PanicError) so tests can assert on it,
 *    but its message is prefixed to make the distinction obvious.
 */

#ifndef D16SIM_SUPPORT_ERROR_HH
#define D16SIM_SUPPORT_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace d16sim
{

/** Base class for all d16sim errors. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/** The user's input (program text, configuration) is invalid. */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &msg) : Error(msg) {}
};

/** An internal invariant of the library was violated. */
class PanicError : public Error
{
  public:
    explicit PanicError(const std::string &msg)
        : Error("internal error: " + msg)
    {}
};

namespace detail
{

inline void
streamAll(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
streamAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    streamAll(os, rest...);
}

} // namespace detail

/** Throw a FatalError whose message is the concatenation of the args. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::streamAll(os, args...);
    throw FatalError(os.str());
}

/** Throw a PanicError whose message is the concatenation of the args. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::streamAll(os, args...);
    throw PanicError(os.str());
}

/** panic() unless the condition holds. */
template <typename... Args>
void
panicIf(bool condition, const Args &...args)
{
    if (condition)
        panic(args...);
}

} // namespace d16sim

#endif // D16SIM_SUPPORT_ERROR_HH
