#include "support/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hh"

namespace d16sim
{

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::asBool() const
{
    panicIf(kind_ != Kind::Bool, "json: not a bool");
    return bool_;
}

int64_t
Json::asInt() const
{
    panicIf(kind_ != Kind::Int, "json: not an integer");
    return int_;
}

double
Json::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    panicIf(kind_ != Kind::Double, "json: not a number");
    return double_;
}

const std::string &
Json::asString() const
{
    panicIf(kind_ != Kind::String, "json: not a string");
    return string_;
}

const std::vector<Json> &
Json::items() const
{
    panicIf(kind_ != Kind::Array, "json: not an array");
    return array_;
}

const std::map<std::string, Json> &
Json::members() const
{
    panicIf(kind_ != Kind::Object, "json: not an object");
    return object_;
}

Json &
Json::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    panicIf(kind_ != Kind::Object, "json: not an object");
    return object_[key];
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

void
Json::push(Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    panicIf(kind_ != Kind::Array, "json: not an array");
    array_.push_back(std::move(v));
}

size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    return 0;
}

// ----- serialization ---------------------------------------------------

namespace
{

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int:
        out += std::to_string(int_);
        break;
      case Kind::Double: {
        if (!std::isfinite(double_)) {
            out += "null";
            break;
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        out += buf;
        // Keep it distinguishable from an integer on re-parse.
        if (std::string_view(buf).find_first_of(".eE") ==
            std::string_view::npos) {
            out += ".0";
        }
        break;
      }
      case Kind::String:
        escapeTo(out, string_);
        break;
      case Kind::Array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const Json &v : array_) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &[k, v] : object_) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            escapeTo(out, k);
            out += indent > 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ----- parsing ---------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json
    document()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        fatal("json parse error at offset ", pos_, ": ", what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    Json
    value()
    {
        skipWs();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return Json(string());
          case 't':
            if (!consume("true"))
                fail("bad literal");
            return Json(true);
          case 'f':
            if (!consume("false"))
                fail("bad literal");
            return Json(false);
          case 'n':
            if (!consume("null"))
                fail("bad literal");
            return Json();
          default: return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            obj[key] = value();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json
    array()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Encode the BMP code point as UTF-8 (surrogate pairs
                // are not needed for our own emissions).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    Json
    number()
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string tok(text_.substr(start, pos_ - start));
        if (tok.empty() || tok == "-")
            fail("bad number");
        if (tok.find_first_of(".eE") == std::string::npos) {
            errno = 0;
            char *end = nullptr;
            const long long v = std::strtoll(tok.c_str(), &end, 10);
            if (errno != 0 || end != tok.c_str() + tok.size())
                fail("bad integer");
            return Json(static_cast<int64_t>(v));
        }
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail("bad number");
        return Json(d);
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

Json
Json::parse(std::string_view text)
{
    return Parser(text).document();
}

} // namespace d16sim
