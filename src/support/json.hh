/**
 * @file
 * Minimal JSON value type with a canonical serializer and a strict
 * parser.
 *
 * Built for the sweep engine's machine-readable emission (sweep.json)
 * and its golden-result comparison: objects keep their members in a
 * std::map, so serialization order is *canonical* (sorted keys), which
 * is what makes two sweeps byte-comparable regardless of the order
 * their jobs completed in. Integers and doubles are kept distinct so
 * golden comparisons can be exact on counters and toleranced on
 * derived rates.
 *
 * Deliberately small: no comments, no NaN/Inf (serialized as null),
 * UTF-8 passed through untouched, \uXXXX escapes decoded to UTF-8.
 */

#ifndef D16SIM_SUPPORT_JSON_HH
#define D16SIM_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace d16sim
{

class Json
{
  public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(int64_t v) : kind_(Kind::Int), int_(v) {}
    Json(uint64_t v) : kind_(Kind::Int), int_(static_cast<int64_t>(v)) {}
    Json(uint32_t v) : kind_(Kind::Int), int_(v) {}
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(const char *s) : kind_(Kind::String), string_(s) {}
    Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isDouble() const { return kind_ == Kind::Double; }
    bool isNumber() const { return isInt() || isDouble(); }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; panic on kind mismatch. */
    bool asBool() const;
    int64_t asInt() const;
    double asDouble() const;  //!< accepts Int too
    const std::string &asString() const;
    const std::vector<Json> &items() const;
    const std::map<std::string, Json> &members() const;

    /** Object access: insert-or-get (converts Null to Object). */
    Json &operator[](const std::string &key);
    /** Object lookup without insertion; null if absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Array append (converts Null to Array). */
    void push(Json v);

    size_t size() const;

    /**
     * Canonical serialization: object keys sorted (the map order),
     * integers in full, doubles via %.17g (round-trip exact), no
     * locale dependence. indent > 0 pretty-prints.
     */
    std::string dump(int indent = 0) const;

    /** Parse a complete JSON document; FatalError on malformed input. */
    static Json parse(std::string_view text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double double_ = 0;
    std::string string_;
    std::vector<Json> array_;
    std::map<std::string, Json> object_;
};

} // namespace d16sim

#endif // D16SIM_SUPPORT_JSON_HH
