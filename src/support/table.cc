#include "support/table.hh"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "support/error.hh"

namespace d16sim
{

namespace
{

/** Cells that parse as numbers are right-aligned. */
bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    size_t i = 0;
    if (s[0] == '-' || s[0] == '+')
        i = 1;
    bool sawDigit = false;
    for (; i < s.size(); ++i) {
        if (std::isdigit(static_cast<unsigned char>(s[i]))) {
            sawDigit = true;
        } else if (s[i] != '.' && s[i] != '%' && s[i] != 'x' &&
                   s[i] != 'e' && s[i] != '-' && s[i] != '+') {
            return false;
        }
    }
    return sawDigit;
}

} // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != headers_.size(),
            "table row arity ", cells.size(), " != header arity ",
            headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    if (!title_.empty())
        os << title_ << "\n";

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            const bool rightAlign = looksNumeric(row[c]);
            const size_t pad = widths[c] - row[c].size();
            if (rightAlign)
                os << std::string(pad, ' ') << row[c];
            else
                os << row[c] << std::string(pad, ' ');
        }
        os << "\n";
    };

    emitRow(headers_);
    size_t total = headers_.size() > 1 ? 2 * (headers_.size() - 1) : 0;
    for (size_t w : widths)
        total += w;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emitRow(row);
}

std::string
Table::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace d16sim
