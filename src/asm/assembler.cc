#include "asm/assembler.hh"

#include <map>

#include "isa/codec.hh"
#include "support/bits.hh"
#include "support/error.hh"

namespace d16sim::assem
{

using isa::AsmInst;
using isa::IsaKind;
using isa::Op;
using isa::Reloc;

namespace
{

/** Per-item layout state recomputed on every relaxation iteration. */
struct Placement
{
    uint32_t addr = 0;
    bool inText = false;
    bool expanded = false;  //!< D16 conditional branch long form
};

bool
isCondBranch(Op op)
{
    return op == Op::Bz || op == Op::Bnz;
}

/** Size in bytes one item contributes, given its alignment-adjusted
 *  start address (returned via `addr`). */
uint32_t
itemSize(const AsmItem &item, const isa::TargetInfo &t, bool expanded,
         uint32_t &addr)
{
    switch (item.kind) {
      case ItemKind::Inst:
        addr = static_cast<uint32_t>(roundUp(addr, t.insnBytes()));
        return (expanded ? 3 : 1) * t.insnBytes();
      case ItemKind::Word:
        addr = static_cast<uint32_t>(roundUp(addr, 4));
        return 4 * static_cast<uint32_t>(item.values.size());
      case ItemKind::Half:
        addr = static_cast<uint32_t>(roundUp(addr, 2));
        return 2 * static_cast<uint32_t>(item.values.size());
      case ItemKind::Byte:
        return static_cast<uint32_t>(item.values.size());
      case ItemKind::Ascii:
        return static_cast<uint32_t>(item.str.size()) + 1;
      case ItemKind::Space:
        return static_cast<uint32_t>(item.amount);
      case ItemKind::Align:
        addr = static_cast<uint32_t>(roundUp(addr, item.amount));
        return 0;
      default:
        return 0;
    }
}

} // namespace

Image
Assembler::link(uint32_t textBase)
{
    const bool d16 = target_.kind() == IsaKind::D16;
    std::vector<Placement> place(items_.size());
    std::map<std::string, uint32_t> symbols;
    uint32_t textEnd = textBase;
    uint32_t dataBase = 0;
    uint32_t dataEnd = 0;

    // Iterative layout: expansion of out-of-range D16 conditional
    // branches grows the text, which can push other branches out of
    // range; sizes only grow, so this converges.
    for (int iter = 0;; ++iter) {
        panicIf(iter > 64, "branch relaxation failed to converge");

        // Pass 1: place every item and record symbols. Text first; the
        // data section starts after the text ends.
        symbols.clear();
        bool inText = true;
        uint32_t text = textBase;
        uint32_t dataOff = 0;  // offset within data section
        // Labels bind to the (alignment-adjusted) address of the next
        // sized item, so a label before an aligned instruction or .word
        // names the item, not the padding.
        std::vector<size_t> pendingLabels;
        auto bindPending = [&](uint32_t addr, bool labelInText) {
            for (size_t idx : pendingLabels) {
                place[idx].addr = addr;
                place[idx].inText = labelInText;
            }
            pendingLabels.clear();
        };
        for (size_t i = 0; i < items_.size(); ++i) {
            AsmItem &item = items_[i];
            if (item.kind == ItemKind::SectionText ||
                item.kind == ItemKind::SectionData) {
                bindPending(inText ? text : dataOff, inText);
                inText = item.kind == ItemKind::SectionText;
                continue;
            }
            if (item.kind == ItemKind::Label) {
                pendingLabels.push_back(i);
                continue;
            }
            uint32_t &cursor = inText ? text : dataOff;
            const uint32_t size =
                itemSize(item, target_, place[i].expanded, cursor);
            place[i].inText = inText;
            place[i].addr = cursor;  // data: section-relative for now
            bindPending(cursor, inText);
            cursor += size;
        }
        bindPending(inText ? text : dataOff, inText);
        textEnd = text;
        dataBase = static_cast<uint32_t>(roundUp(textEnd, 16));
        dataEnd = dataBase + dataOff;

        // Rebase data placements and bind symbols.
        for (size_t i = 0; i < items_.size(); ++i) {
            if (!place[i].inText)
                place[i].addr += dataBase;
            if (items_[i].kind == ItemKind::Label) {
                auto [it, fresh] =
                    symbols.emplace(items_[i].name, place[i].addr);
                if (!fresh) {
                    fatal("duplicate label '", items_[i].name, "' (line ",
                          items_[i].line, ")");
                }
            }
        }

        // Pass 2: find conditional branches that no longer fit.
        bool changed = false;
        for (size_t i = 0; i < items_.size(); ++i) {
            const AsmItem &item = items_[i];
            if (item.kind != ItemKind::Inst || place[i].expanded)
                continue;
            const AsmInst &inst = item.inst;
            if (inst.reloc != Reloc::PcRel || !isControlFlow(inst.op))
                continue;
            auto it = symbols.find(inst.label);
            if (it == symbols.end()) {
                fatal("undefined symbol '", inst.label, "' (line ",
                      inst.line, ")");
            }
            const int64_t delta =
                static_cast<int64_t>(it->second) - place[i].addr;
            if (opClass(inst.op) == isa::OpClass::Branch &&
                !target_.branchOffsetFits(inst.op, delta)) {
                if (d16 && isCondBranch(inst.op)) {
                    place[i].expanded = true;
                    changed = true;
                } else {
                    fatal("branch to '", inst.label, "' out of range (",
                          delta, " bytes; line ", inst.line,
                          ") - function too large for the encoding");
                }
            }
        }
        if (!changed)
            break;
    }

    // Final emission.
    Image img;
    img.target = &target_;
    img.textBase = textBase;
    img.textSize = textEnd - textBase;
    img.dataBase = dataBase;
    img.dataSize = dataEnd - dataBase;
    img.symbols = symbols;
    img.bytes.assign(dataEnd - textBase, 0);
    for (size_t i = 0; i < items_.size(); ++i) {
        if (items_[i].kind == ItemKind::Space && !place[i].inText)
            img.bssSize += static_cast<uint32_t>(items_[i].amount);
    }

    auto put = [&](uint32_t addr, uint64_t value, int bytes) {
        const uint32_t off = addr - textBase;
        panicIf(off + bytes > img.bytes.size(), "emission out of bounds");
        for (int b = 0; b < bytes; ++b)
            img.bytes[off + b] = static_cast<uint8_t>(value >> (8 * b));
    };

    auto resolveValue = [&](const DataValue &v, int line) -> int64_t {
        if (v.label.empty())
            return v.value;
        auto it = symbols.find(v.label);
        if (it == symbols.end())
            fatal("undefined symbol '", v.label, "' (line ", line, ")");
        return static_cast<int64_t>(it->second) + v.value;
    };

    auto emitInst = [&](AsmInst inst, uint32_t addr) {
        if (!inst.label.empty()) {
            auto it = symbols.find(inst.label);
            if (it == symbols.end()) {
                fatal("undefined symbol '", inst.label, "' (line ",
                      inst.line, ")");
            }
            const int64_t sym = it->second;
            switch (inst.reloc) {
              case Reloc::PcRel:
                if (inst.op == Op::Ldc)
                    inst.imm = sym - static_cast<int64_t>(addr & ~3u);
                else
                    inst.imm = sym - static_cast<int64_t>(addr);
                break;
              case Reloc::Abs:
                inst.imm += sym;
                break;
              case Reloc::Hi16:
                inst.imm = ((sym + inst.imm) >> 16) & 0xffff;
                break;
              case Reloc::Lo16:
                inst.imm = (sym + inst.imm) & 0xffff;
                break;
              case Reloc::None:
                fatal("label '", inst.label, "' without relocation (line ",
                      inst.line, ")");
            }
        }
        put(addr, isa::encode(target_, inst), target_.insnBytes());
    };

    for (size_t i = 0; i < items_.size(); ++i) {
        const AsmItem &item = items_[i];
        const uint32_t addr = place[i].addr;
        switch (item.kind) {
          case ItemKind::Inst: {
            if (place[i].expanded) {
                // Inverted-condition short branch over an unconditional
                // branch to the real target. The inverted branch needs
                // its own delay slot (a transfer may not sit in one),
                // and its target is the far branch's delay slot — the
                // original branch's slot instruction, which this way
                // executes exactly once on either path.
                AsmInst skip = item.inst;
                skip.op = item.inst.op == Op::Bz ? Op::Bnz : Op::Bz;
                skip.label.clear();
                skip.reloc = Reloc::None;
                skip.imm = 3 * target_.insnBytes();
                AsmInst far = item.inst;
                far.op = Op::Br;
                far.rs1 = 0;
                const auto step = static_cast<uint32_t>(target_.insnBytes());
                emitInst(skip, addr);
                emitInst(AsmInst::nop(), addr + step);
                emitInst(far, addr + 2 * step);
                img.textInsns += 3;
                img.insnSites.push_back({addr, item.inst.line});
                img.insnSites.push_back({addr + step, item.inst.line});
                img.insnSites.push_back({addr + 2 * step, item.inst.line});
            } else {
                emitInst(item.inst, addr);
                img.textInsns += 1;
                img.insnSites.push_back({addr, item.inst.line});
            }
            break;
          }
          case ItemKind::Word: {
            uint32_t a = addr;
            for (const DataValue &v : item.values) {
                put(a, static_cast<uint64_t>(resolveValue(v, item.line)),
                    4);
                a += 4;
            }
            break;
          }
          case ItemKind::Half: {
            uint32_t a = addr;
            for (const DataValue &v : item.values) {
                const int64_t value = resolveValue(v, item.line);
                if (!fitsSigned(value, 16) && !fitsUnsigned(value, 16))
                    fatal(".half value ", value, " out of range (line ",
                          item.line, ")");
                put(a, static_cast<uint64_t>(value), 2);
                a += 2;
            }
            break;
          }
          case ItemKind::Byte: {
            uint32_t a = addr;
            for (const DataValue &v : item.values) {
                const int64_t value = resolveValue(v, item.line);
                if (!fitsSigned(value, 8) && !fitsUnsigned(value, 8))
                    fatal(".byte value ", value, " out of range (line ",
                          item.line, ")");
                put(a, static_cast<uint64_t>(value), 1);
                a += 1;
            }
            break;
          }
          case ItemKind::Ascii: {
            uint32_t a = addr;
            for (char c : item.str)
                put(a++, static_cast<uint8_t>(c), 1);
            put(a, 0, 1);
            break;
          }
          default:
            break;  // Label/Space/Align/sections need no bytes
        }
    }

    img.entry = img.hasSymbol("main") ? img.symbol("main") : textBase;
    return img;
}

} // namespace d16sim::assem
