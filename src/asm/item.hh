/**
 * @file
 * AsmItem — one element of an assembly module.
 *
 * Both front ends produce AsmItem streams: the MiniC code generator
 * emits them directly, and the textual parser (parser.hh) produces them
 * from `.s` source. The assembler lays a module out into an Image.
 */

#ifndef D16SIM_ASM_ITEM_HH
#define D16SIM_ASM_ITEM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/asm_inst.hh"

namespace d16sim::assem
{

enum class ItemKind : uint8_t
{
    Inst,         //!< one machine instruction
    Label,        //!< symbol definition at the current location
    Word,         //!< 32-bit data values (optionally symbol-valued)
    Half,         //!< 16-bit data values
    Byte,         //!< 8-bit data values
    Ascii,        //!< NUL-terminated string data
    Space,        //!< zero-filled region
    Align,        //!< pad to the given power-of-two boundary
    SectionText,  //!< switch emission to the text section
    SectionData,  //!< switch emission to the data section
    Global,       //!< export marker (metadata only; one namespace)
};

/** One data value: a constant, or the address of a symbol (+ addend). */
struct DataValue
{
    int64_t value = 0;
    std::string label;  //!< if non-empty, value is an addend

    DataValue() = default;
    DataValue(int64_t v) : value(v) {}
    DataValue(std::string sym, int64_t addend = 0)
        : value(addend), label(std::move(sym))
    {}
};

struct AsmItem
{
    ItemKind kind = ItemKind::Inst;
    isa::AsmInst inst;              //!< Inst
    std::string name;               //!< Label / Global
    std::vector<DataValue> values;  //!< Word / Half / Byte
    std::string str;                //!< Ascii (NUL appended at layout)
    int64_t amount = 0;             //!< Space bytes / Align boundary
    int line = 0;

    static AsmItem
    instruction(isa::AsmInst i)
    {
        AsmItem item;
        item.kind = ItemKind::Inst;
        item.line = i.line;
        item.inst = std::move(i);
        return item;
    }

    static AsmItem
    label(std::string n)
    {
        AsmItem item;
        item.kind = ItemKind::Label;
        item.name = std::move(n);
        return item;
    }

    static AsmItem
    word(std::vector<DataValue> vs)
    {
        AsmItem item;
        item.kind = ItemKind::Word;
        item.values = std::move(vs);
        return item;
    }

    static AsmItem
    ascii(std::string s)
    {
        AsmItem item;
        item.kind = ItemKind::Ascii;
        item.str = std::move(s);
        return item;
    }

    static AsmItem
    space(int64_t bytes)
    {
        AsmItem item;
        item.kind = ItemKind::Space;
        item.amount = bytes;
        return item;
    }

    static AsmItem
    align(int64_t boundary)
    {
        AsmItem item;
        item.kind = ItemKind::Align;
        item.amount = boundary;
        return item;
    }

    static AsmItem
    section(bool text)
    {
        AsmItem item;
        item.kind = text ? ItemKind::SectionText : ItemKind::SectionData;
        return item;
    }
};

} // namespace d16sim::assem

#endif // D16SIM_ASM_ITEM_HH
