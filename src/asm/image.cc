#include "asm/image.hh"

#include <algorithm>

namespace d16sim::assem
{

std::vector<std::pair<uint32_t, std::string>>
Image::textSymbols() const
{
    std::vector<std::pair<uint32_t, std::string>> out;
    for (const auto &[name, addr] : symbols) {
        if (addr >= textBase && addr < textBase + textSize)
            out.emplace_back(addr, name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace d16sim::assem
