/**
 * @file
 * Textual assembly parser.
 *
 * Syntax (one statement per line; ';' or '#' starts a comment):
 *
 *   label:
 *       add r3, r4            ; D16 two-address form
 *       add r5, r6, r7        ; DLXe three-address form
 *       addi r3, 5            ; or addi r3, r4, 5 on DLXe
 *       cmp.lt r2, r3         ; D16 (dest implicitly r0)
 *       cmp.lt r5, r2, r3     ; DLXe
 *       cmpi.ge r5, r2, 100   ; DLXe
 *       ld r3, 8(sp)
 *       st r3, 0(gp)
 *       ldc pool_label        ; D16: PC-relative constant load into at
 *       mvi r4, 100           ; also: mvi r4, symbol (absolute)
 *       mvhi r4, hi(symbol)   ; DLXe address materialization
 *       ori r4, r4, lo(symbol)
 *       bz loop               ; D16 (tests at/r0)
 *       bz r5, loop           ; DLXe
 *       jl func               ; DLXe direct call
 *       jlr r6                ; indirect call (both)
 *       ret                   ; pseudo: jr ra
 *       add.sf f1, f2         ; D16 FP two-address
 *       cmp.le.df f1, f2      ; FP compare (status register)
 *       trap 5
 *
 * Directives: .text .data .global NAME .word V|SYM[+N],...
 * .half ... .byte ... .asciz "..." .space N .align N
 */

#ifndef D16SIM_ASM_PARSER_HH
#define D16SIM_ASM_PARSER_HH

#include <string_view>
#include <vector>

#include "asm/item.hh"
#include "isa/target.hh"

namespace d16sim::assem
{

/** Parse `.s` source into assembler items. Throws FatalError with line
 *  information on malformed input. */
std::vector<AsmItem> parseAsm(const isa::TargetInfo &target,
                              std::string_view source);

} // namespace d16sim::assem

#endif // D16SIM_ASM_PARSER_HH
