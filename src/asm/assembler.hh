/**
 * @file
 * Two-pass assembler with iterative D16 branch relaxation.
 *
 * The assembler accepts a stream of AsmItems (from the MiniC code
 * generator or the textual parser), lays out text and data sections,
 * resolves symbols and relocations, and encodes instructions through
 * the target codec.
 *
 * D16 conditional branches reach only +/-1024 bytes (paper Table 1);
 * when a target is farther, the assembler relaxes
 *
 *     bz  L          bnz .+4        (inverted condition over a skip)
 *                    br  L
 *
 * iterating layout until sizes are stable. An unconditional branch that
 * still cannot reach is a fatal error ("function too large"), mirroring
 * what a real D16 toolchain would force the compiler to handle by
 * splitting the function.
 */

#ifndef D16SIM_ASM_ASSEMBLER_HH
#define D16SIM_ASM_ASSEMBLER_HH

#include <cstdint>
#include <vector>

#include "asm/image.hh"
#include "asm/item.hh"
#include "isa/target.hh"

namespace d16sim::assem
{

/** Default load address of the text section. */
constexpr uint32_t kDefaultTextBase = 0x1000;

class Assembler
{
  public:
    explicit Assembler(const isa::TargetInfo &target) : target_(target) {}

    void add(AsmItem item) { items_.push_back(std::move(item)); }

    void
    add(std::vector<AsmItem> items)
    {
        for (auto &i : items)
            items_.push_back(std::move(i));
    }

    /**
     * Lay out, relax, resolve, and encode the module.
     * @param textBase load address of the text section.
     */
    Image link(uint32_t textBase = kDefaultTextBase);

    const isa::TargetInfo &target() const { return target_; }

  private:
    const isa::TargetInfo &target_;
    std::vector<AsmItem> items_;
};

} // namespace d16sim::assem

#endif // D16SIM_ASM_ASSEMBLER_HH
