#include "asm/parser.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "support/bits.hh"
#include "support/error.hh"
#include "support/strings.hh"

namespace d16sim::assem
{

using isa::AsmInst;
using isa::Cond;
using isa::Op;
using isa::OpClass;
using isa::Reloc;

namespace
{

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
}

bool
isIdentStart(std::string_view s)
{
    return !s.empty() &&
           (std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_' ||
            s[0] == '.' || s[0] == '$');
}

/** Parse a decimal/hex/char literal. */
bool
parseNumber(std::string_view s, int64_t &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    if (s.size() >= 3 && s.front() == '\'') {
        // Character literal.
        char c = s[1];
        size_t closing = 2;
        if (c == '\\' && s.size() >= 4) {
            switch (s[2]) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case '0': c = '\0'; break;
              case 'r': c = '\r'; break;
              case '\\': c = '\\'; break;
              case '\'': c = '\''; break;
              default: return false;
            }
            closing = 3;
        }
        if (closing + 1 != s.size() || s[closing] != '\'')
            return false;
        out = static_cast<unsigned char>(c);
        return true;
    }
    const std::string str(s);
    char *end = nullptr;
    const long long v = std::strtoll(str.c_str(), &end, 0);
    if (end == str.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

struct LineParser
{
    const isa::TargetInfo &target;
    int line;

    [[noreturn]] void
    err(const std::string &msg) const
    {
        fatal("asm line ", line, ": ", msg);
    }

    int
    reg(std::string_view s) const
    {
        int r;
        if (!target.parseReg(trim(s), r))
            err("expected register, got '" + std::string(s) + "'");
        return r;
    }

    int
    freg(std::string_view s) const
    {
        int r;
        if (!target.parseFreg(trim(s), r))
            err("expected FP register, got '" + std::string(s) + "'");
        return r;
    }

    int64_t
    number(std::string_view s) const
    {
        int64_t v;
        if (!parseNumber(s, v))
            err("expected number, got '" + std::string(s) + "'");
        return v;
    }

    /** imm / symbol / hi(sym) / lo(sym) into inst.{imm,label,reloc}. */
    void
    immOrSymbol(AsmInst &inst, std::string_view s, Reloc symbolReloc) const
    {
        s = trim(s);
        int64_t v;
        if (parseNumber(s, v)) {
            inst.imm = v;
            return;
        }
        if ((startsWith(s, "hi(") || startsWith(s, "lo(")) &&
            s.back() == ')') {
            inst.reloc = s[0] == 'h' ? Reloc::Hi16 : Reloc::Lo16;
            inst.label = std::string(trim(s.substr(3, s.size() - 4)));
            return;
        }
        if (isIdentStart(s)) {
            inst.reloc = symbolReloc;
            inst.label = std::string(s);
            return;
        }
        err("expected immediate or symbol, got '" + std::string(s) + "'");
    }

    /** off(base): returns base register, sets imm. */
    int
    memOperand(AsmInst &inst, std::string_view s) const
    {
        s = trim(s);
        const size_t open = s.find('(');
        if (open == std::string_view::npos || s.back() != ')')
            err("expected mem operand off(base), got '" + std::string(s) +
                "'");
        const std::string_view off = trim(s.substr(0, open));
        inst.imm = off.empty() ? 0 : number(off);
        return reg(s.substr(open + 1, s.size() - open - 2));
    }
};

/** Split operands on top-level commas. */
std::vector<std::string_view>
splitOperands(std::string_view s)
{
    std::vector<std::string_view> out;
    s = trim(s);
    if (s.empty())
        return out;
    for (std::string_view part : split(s, ','))
        out.push_back(trim(part));
    return out;
}

/** Resolve a mnemonic to op + optional condition. */
bool
resolveMnemonic(std::string_view mnem, Op &op, Cond &cond, bool &condSet)
{
    condSet = false;
    if (parseOp(mnem, op))
        return true;
    // cmp.<cond>, cmpi.<cond>, cmp.<cond>.sf, cmp.<cond>.df
    if (startsWith(mnem, "cmp")) {
        const bool isImm = startsWith(mnem, "cmpi");
        std::string_view rest = mnem.substr(isImm ? 4 : 3);
        if (rest.empty() || rest[0] != '.')
            return false;
        rest = rest.substr(1);
        // FP variant? "<cond>.sf" / "<cond>.df"
        const size_t dot = rest.find('.');
        if (dot != std::string_view::npos) {
            if (isImm)
                return false;
            const std::string_view suffix = rest.substr(dot + 1);
            if (!parseCond(rest.substr(0, dot), cond))
                return false;
            condSet = true;
            if (suffix == "sf")
                op = Op::FCmpS;
            else if (suffix == "df")
                op = Op::FCmpD;
            else
                return false;
            return true;
        }
        if (!parseCond(rest, cond))
            return false;
        condSet = true;
        op = isImm ? Op::CmpI : Op::Cmp;
        return true;
    }
    return false;
}

AsmInst
parseInstruction(const LineParser &lp, std::string_view mnem,
                 std::vector<std::string_view> ops)
{
    AsmInst inst;
    inst.line = lp.line;

    if (mnem == "ret") {
        inst.op = Op::Jr;
        inst.rs1 = lp.target.raReg();
        if (!ops.empty())
            lp.err("ret takes no operands");
        return inst;
    }

    bool condSet = false;
    if (!resolveMnemonic(mnem, inst.op, inst.cond, condSet))
        lp.err("unknown mnemonic '" + std::string(mnem) + "'");

    auto need = [&](size_t lo, size_t hi) {
        if (ops.size() < lo || ops.size() > hi) {
            lp.err("wrong operand count for '" + std::string(mnem) + "'");
        }
    };

    switch (inst.op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or:
      case Op::Xor: case Op::Shl: case Op::Shr: case Op::Shra:
        need(2, 3);
        if (ops.size() == 2) {
            inst.rd = inst.rs1 = lp.reg(ops[0]);
            inst.rs2 = lp.reg(ops[1]);
        } else {
            inst.rd = lp.reg(ops[0]);
            inst.rs1 = lp.reg(ops[1]);
            inst.rs2 = lp.reg(ops[2]);
        }
        break;

      case Op::Neg: case Op::Inv: case Op::Mv:
        need(2, 2);
        inst.rd = lp.reg(ops[0]);
        inst.rs1 = lp.reg(ops[1]);
        break;

      case Op::AddI: case Op::SubI: case Op::ShlI: case Op::ShrI:
      case Op::ShraI: case Op::AndI: case Op::OrI: case Op::XorI:
        need(2, 3);
        if (ops.size() == 2) {
            inst.rd = inst.rs1 = lp.reg(ops[0]);
            lp.immOrSymbol(inst, ops[1], Reloc::Abs);
        } else {
            inst.rd = lp.reg(ops[0]);
            inst.rs1 = lp.reg(ops[1]);
            lp.immOrSymbol(inst, ops[2], Reloc::Abs);
        }
        break;

      case Op::MvI: case Op::MvHI:
        need(2, 2);
        inst.rd = lp.reg(ops[0]);
        lp.immOrSymbol(inst, ops[1], Reloc::Abs);
        break;

      case Op::Cmp:
        need(2, 3);
        if (ops.size() == 2) {
            inst.rd = 0;
            inst.rs1 = lp.reg(ops[0]);
            inst.rs2 = lp.reg(ops[1]);
        } else {
            inst.rd = lp.reg(ops[0]);
            inst.rs1 = lp.reg(ops[1]);
            inst.rs2 = lp.reg(ops[2]);
        }
        break;

      case Op::CmpI:
        need(3, 3);
        inst.rd = lp.reg(ops[0]);
        inst.rs1 = lp.reg(ops[1]);
        lp.immOrSymbol(inst, ops[2], Reloc::Abs);
        break;

      case Op::Ld: case Op::Ldh: case Op::Ldhu:
      case Op::Ldb: case Op::Ldbu:
        need(2, 2);
        inst.rd = lp.reg(ops[0]);
        inst.rs1 = lp.memOperand(inst, ops[1]);
        break;

      case Op::St: case Op::Sth: case Op::Stb:
        need(2, 2);
        inst.rs2 = lp.reg(ops[0]);
        inst.rs1 = lp.memOperand(inst, ops[1]);
        break;

      case Op::Ldc:
        need(1, 1);
        lp.immOrSymbol(inst, ops[0], Reloc::PcRel);
        inst.rd = 0;
        break;

      case Op::Br: case Op::J: case Op::Jl:
        need(1, 1);
        lp.immOrSymbol(inst, ops[0], Reloc::PcRel);
        break;

      case Op::Bz: case Op::Bnz:
        need(1, 2);
        if (ops.size() == 2) {
            inst.rs1 = lp.reg(ops[0]);
            lp.immOrSymbol(inst, ops[1], Reloc::PcRel);
        } else {
            inst.rs1 = 0;
            lp.immOrSymbol(inst, ops[0], Reloc::PcRel);
        }
        break;

      case Op::Jr: case Op::Jlr:
        need(1, 1);
        inst.rs1 = lp.reg(ops[0]);
        break;

      case Op::Jrz: case Op::Jrnz:
        need(1, 2);
        inst.rs1 = lp.reg(ops[0]);
        inst.rs2 = ops.size() == 2 ? lp.reg(ops[1]) : 0;
        break;

      case Op::FAddS: case Op::FAddD: case Op::FSubS: case Op::FSubD:
      case Op::FMulS: case Op::FMulD: case Op::FDivS: case Op::FDivD:
        need(2, 3);
        if (ops.size() == 2) {
            inst.rd = inst.rs1 = lp.freg(ops[0]);
            inst.rs2 = lp.freg(ops[1]);
        } else {
            inst.rd = lp.freg(ops[0]);
            inst.rs1 = lp.freg(ops[1]);
            inst.rs2 = lp.freg(ops[2]);
        }
        break;

      case Op::FNegS: case Op::FNegD: case Op::FMv:
      case Op::CvtSiSf: case Op::CvtSiDf: case Op::CvtSfDf:
      case Op::CvtDfSf: case Op::CvtSfSi: case Op::CvtDfSi:
        need(2, 2);
        inst.rd = lp.freg(ops[0]);
        inst.rs1 = lp.freg(ops[1]);
        break;

      case Op::FCmpS: case Op::FCmpD:
        need(2, 2);
        inst.rs1 = lp.freg(ops[0]);
        inst.rs2 = lp.freg(ops[1]);
        break;

      case Op::MifL: case Op::MifH:
        need(2, 2);
        inst.rd = lp.freg(ops[0]);
        inst.rs1 = lp.reg(ops[1]);
        break;

      case Op::MfiL: case Op::MfiH:
        need(2, 2);
        inst.rd = lp.reg(ops[0]);
        inst.rs1 = lp.freg(ops[1]);
        break;

      case Op::Trap:
        need(1, 1);
        inst.imm = lp.number(ops[0]);
        break;

      case Op::Rdsr:
        need(1, 1);
        inst.rd = lp.reg(ops[0]);
        break;

      case Op::Nop:
        need(0, 0);
        break;

      default:
        lp.err("unsupported mnemonic '" + std::string(mnem) + "'");
    }

    if (condSet && !hasCond(inst.op))
        lp.err("condition suffix on non-compare");
    return inst;
}

/** Parse ".asciz"-style quoted string with escapes. */
std::string
parseQuoted(const LineParser &lp, std::string_view s)
{
    s = trim(s);
    if (s.size() < 2 || s.front() != '"' || s.back() != '"')
        lp.err("expected quoted string");
    std::string out;
    for (size_t i = 1; i + 1 < s.size(); ++i) {
        char c = s[i];
        if (c == '\\' && i + 2 < s.size()) {
            ++i;
            switch (s[i]) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case 'r': c = '\r'; break;
              case '0': c = '\0'; break;
              case '\\': c = '\\'; break;
              case '"': c = '"'; break;
              default: lp.err("unknown string escape");
            }
        }
        out.push_back(c);
    }
    return out;
}

std::vector<DataValue>
parseDataValues(const LineParser &lp, std::string_view s)
{
    std::vector<DataValue> out;
    for (std::string_view part : splitOperands(s)) {
        int64_t v;
        if (parseNumber(part, v)) {
            out.emplace_back(v);
            continue;
        }
        // symbol, symbol+N, symbol-N
        size_t cut = part.find_first_of("+-");
        if (cut == 0)
            cut = std::string_view::npos;
        const std::string_view sym =
            trim(part.substr(0, std::min(cut, part.size())));
        if (!isIdentStart(sym))
            lp.err("bad data value '" + std::string(part) + "'");
        int64_t addend = 0;
        if (cut != std::string_view::npos)
            addend = lp.number(part.substr(cut));
        out.emplace_back(std::string(sym), addend);
    }
    if (out.empty())
        lp.err("empty data list");
    return out;
}

} // namespace

std::vector<AsmItem>
parseAsm(const isa::TargetInfo &target, std::string_view source)
{
    std::vector<AsmItem> items;
    int lineNo = 0;

    for (std::string_view rawLine : split(source, '\n')) {
        ++lineNo;
        LineParser lp{target, lineNo};

        // Strip comments, respecting string literals.
        std::string_view line = rawLine;
        bool inString = false;
        size_t cut = line.size();
        for (size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            if (c == '"' && (i == 0 || line[i - 1] != '\\'))
                inString = !inString;
            if (!inString && (c == ';' || c == '#')) {
                cut = i;
                break;
            }
        }
        line = trim(line.substr(0, cut));
        if (line.empty())
            continue;

        // Leading labels.
        while (true) {
            size_t i = 0;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            if (i == 0 || i >= line.size() || line[i] != ':')
                break;
            AsmItem label = AsmItem::label(std::string(line.substr(0, i)));
            label.line = lineNo;
            items.push_back(std::move(label));
            line = trim(line.substr(i + 1));
        }
        if (line.empty())
            continue;

        // Directive?
        if (line[0] == '.') {
            size_t sp = line.find_first_of(" \t");
            const std::string_view dir = line.substr(0, sp);
            const std::string_view rest =
                sp == std::string_view::npos ? "" : trim(line.substr(sp));
            AsmItem item;
            item.line = lineNo;
            if (dir == ".text") {
                item = AsmItem::section(true);
            } else if (dir == ".data") {
                item = AsmItem::section(false);
            } else if (dir == ".global" || dir == ".globl") {
                item.kind = ItemKind::Global;
                item.name = std::string(rest);
            } else if (dir == ".word") {
                item = AsmItem::word(parseDataValues(lp, rest));
            } else if (dir == ".half") {
                item.kind = ItemKind::Half;
                item.values = parseDataValues(lp, rest);
            } else if (dir == ".byte") {
                item.kind = ItemKind::Byte;
                item.values = parseDataValues(lp, rest);
            } else if (dir == ".asciz" || dir == ".string") {
                item = AsmItem::ascii(parseQuoted(lp, rest));
            } else if (dir == ".space") {
                item = AsmItem::space(lp.number(rest));
            } else if (dir == ".align") {
                const int64_t boundary = lp.number(rest);
                if (!isPowerOfTwo(static_cast<uint64_t>(boundary)))
                    lp.err(".align boundary must be a power of two");
                item = AsmItem::align(boundary);
            } else {
                lp.err("unknown directive '" + std::string(dir) + "'");
            }
            item.line = lineNo;
            items.push_back(std::move(item));
            continue;
        }

        // Instruction.
        size_t sp = line.find_first_of(" \t");
        const std::string_view mnem = line.substr(0, sp);
        const std::string_view rest =
            sp == std::string_view::npos ? "" : line.substr(sp);
        items.push_back(AsmItem::instruction(
            parseInstruction(lp, mnem, splitOperands(rest))));
    }
    return items;
}

} // namespace d16sim::assem
