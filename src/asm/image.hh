/**
 * @file
 * Image — a laid-out, loadable program.
 *
 * The image holds the text and data sections contiguously starting at
 * textBase. sizeBytes() (text + initialized/zero data) is the "stripped
 * binary" size the paper's code-density experiments measure (§3.1).
 */

#ifndef D16SIM_ASM_IMAGE_HH
#define D16SIM_ASM_IMAGE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/target.hh"
#include "support/error.hh"

namespace d16sim::assem
{

/** Where one encoded instruction landed (text addresses only). Pools
 *  and data emit no sites, so a consumer can walk the instructions of
 *  the text section without disassembling padding or literal words. */
struct InsnSite
{
    uint32_t addr = 0;
    int line = 0;  //!< source line of the AsmInst, 0 if synthesized
};

struct Image
{
    const isa::TargetInfo *target = nullptr;

    uint32_t textBase = 0;
    uint32_t textSize = 0;  //!< bytes of instructions + pools
    uint32_t dataBase = 0;
    uint32_t dataSize = 0;  //!< bytes of initialized + zero data
    uint32_t bssSize = 0;   //!< zero-filled (.space) bytes within data

    /** text then data, contiguous from textBase. */
    std::vector<uint8_t> bytes;

    std::map<std::string, uint32_t> symbols;

    /** Address of `main` (program entry). */
    uint32_t entry = 0;

    /** The paper's static-size measure: bytes of the stripped binary
     *  file, i.e. text + initialized data (zero-filled .space regions
     *  are BSS and occupy no file bytes). */
    uint32_t sizeBytes() const { return textSize + dataSize - bssSize; }

    /** Number of instructions in the text section (excluding pools). */
    uint32_t textInsns = 0;

    /** One record per emitted instruction, in ascending address order
     *  (size textInsns). The machine-code linter and disassemblers use
     *  this to separate instructions from in-text constant pools. */
    std::vector<InsnSite> insnSites;

    /** (addr, name) for every symbol that lands inside the text
     *  section, ascending by address — the order the verification and
     *  analysis layers use to blame findings on the enclosing
     *  function. Ties (aliased labels) sort by name. */
    std::vector<std::pair<uint32_t, std::string>> textSymbols() const;

    uint32_t
    symbol(const std::string &name) const
    {
        auto it = symbols.find(name);
        if (it == symbols.end())
            fatal("undefined symbol: ", name);
        return it->second;
    }

    bool
    hasSymbol(const std::string &name) const
    {
        return symbols.count(name) != 0;
    }
};

} // namespace d16sim::assem

#endif // D16SIM_ASM_IMAGE_HH
