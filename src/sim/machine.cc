#include "sim/machine.hh"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "isa/codec.hh"
#include "sim/trap.hh"
#include "support/bits.hh"
#include "support/strings.hh"

namespace d16sim::sim
{

using isa::Cond;
using isa::DecodedInst;
using isa::Op;
using isa::OpClass;

namespace
{

float
asFloat(uint64_t raw)
{
    return std::bit_cast<float>(static_cast<uint32_t>(raw));
}

uint64_t
fromFloat(float f)
{
    return std::bit_cast<uint32_t>(f);
}

double
asDouble(uint64_t raw)
{
    return std::bit_cast<double>(raw);
}

uint64_t
fromDouble(double d)
{
    return std::bit_cast<uint64_t>(d);
}

} // namespace

Machine::Machine(const assem::Image &image, MachineConfig config,
                 std::shared_ptr<const DecodedText> predecoded)
    : target_(image.target),
      config_(config),
      memory_(config.memBytes)
{
    panicIf(!target_, "image has no target");
    memory_.loadImage(image);
    pc_ = image.entry;
    textBase_ = image.textBase;
    textEnd_ = image.textBase + image.textSize;
    text_ = predecoded ? std::move(predecoded)
                       : std::make_shared<const DecodedText>(image);
    panicIf(text_->base() != textBase_,
            "predecoded table does not match image");
    limitCheckAt_ = std::min(config_.maxInstructions, LimitCheckInterval);

    // ABI environment the startup stub would otherwise establish:
    // stack at the top of memory, gp at the data segment, return into
    // the halt sentinel (address 0).
    gpr_[target_->spReg()] = memory_.size();
    gpr_[target_->gpReg()] = image.dataBase;
    gpr_[target_->raReg()] = 0;
    heapPtr_ = static_cast<uint32_t>(
        roundUp(image.dataBase + image.dataSize, 8));
}

float
Machine::fregS(int r) const
{
    return asFloat(fpr_[r]);
}

double
Machine::fregD(int r) const
{
    return asDouble(fpr_[r]);
}

const DecodedInst &
Machine::decoded(uint32_t pc)
{
    // Hot path: one shift, one bounds check, one table load. A pc
    // below textBase_ wraps to a huge index and lands in the slow path.
    const uint32_t idx = (pc - textBase_) >> text_->insnShift();
    if (idx < text_->size() && text_->valid(idx))
        return text_->at(idx);

    if (pc < textBase_ || pc >= textEnd_)
        fatal("pc ", hexString(pc), " outside text section");
    // Executing a word that is not an emitted instruction (in-text pool
    // data): decode the raw memory word as before the predecode table.
    const uint32_t word = target_->insnBytes() == 2 ? memory_.read16(pc)
                                                    : memory_.read32(pc);
    scratch_ = isa::decode(*target_, word);
    return scratch_;
}

void
Machine::writeGpr(int r, uint32_t v)
{
    if (r == 0 && target_->r0IsZero())
        return;
    gpr_[r] = v;
}

void
Machine::useGpr(int r)
{
    const uint64_t ready = gprReady_[r];
    const uint64_t issue = cycle_ + 1;
    if (ready > issue && ready - issue > stallThisInsn_) {
        stallThisInsn_ = ready - issue;
        stallIsFp_ = false;
    }
}

void
Machine::useFpr(int r)
{
    const uint64_t ready = fprReady_[r];
    const uint64_t issue = cycle_ + 1;
    if (ready > issue && ready - issue > stallThisInsn_) {
        stallThisInsn_ = ready - issue;
        stallIsFp_ = true;
    }
}

void
Machine::useStatus()
{
    const uint64_t issue = cycle_ + 1;
    if (statusReady_ > issue && statusReady_ - issue > stallThisInsn_) {
        stallThisInsn_ = statusReady_ - issue;
        stallIsFp_ = true;
    }
}

void
Machine::setGprReady(int r, uint64_t when)
{
    if (r == 0 && target_->r0IsZero())
        return;
    gprReady_[r] = when;
}

void
Machine::setFprReady(int r, uint64_t when)
{
    fprReady_[r] = when;
}

int
Machine::run()
{
    // Block dispatch is eligible only when no probe needs the
    // per-instruction callbacks: either no probes at all, or exactly
    // one that declared itself a block-capable TraceSink. The guard
    // on the delay-slot/shadow flags keeps a pending transfer (from a
    // step()-executed branch) in step()'s hands until it resolves.
    if (blocks_ && (probes_.empty() ||
                    (probes_.size() == 1 && traceSink_ != nullptr))) {
        while (!halted_) {
            if (!inDelaySlot_ && !inCfShadow_ && runBlocks())
                break;
            if (!step())
                break;
        }
        return exitStatus_;
    }
    while (step()) {
    }
    return exitStatus_;
}

bool
Machine::step()
{
    if (halted_)
        return false;
    if (pc_ == 0) {
        // Halt sentinel: the startup return address.
        halted_ = true;
        exitStatus_ = static_cast<int>(gpr_[2]);
        return false;
    }
    if (stats_.instructions >= limitCheckAt_) {
        if (stats_.instructions >= config_.maxInstructions)
            fatal("instruction limit exceeded (runaway program?)");
        limitCheckAt_ = std::min(config_.maxInstructions,
                                 stats_.instructions + LimitCheckInterval);
    }

    const DecodedInst &inst = decoded(pc_);
    const uint32_t pc = pc_;
    if (!probes_.empty()) {
        for (Probe *p : probes_)
            p->onIFetch(pc_);
        for (Probe *p : probes_)
            p->onExec(inst, pc_);
    }

    stats_.instructions += 1;
    const bool shadow = inCfShadow_;
    inCfShadow_ = false;  // re-armed by execute() for branches/jumps
    stallThisInsn_ = 0;
    execute(inst);
    if (shadow && isa::isCanonicalNop(*target_, inst))
        stats_.branchBubbles += 1;
    if (stallThisInsn_ != 0 && !probes_.empty())
        for (Probe *p : probes_)
            p->onStall(pc, stallThisInsn_, stallIsFp_);

    return !halted_;
}

void
Machine::execute(const DecodedInst &inst)
{
    const Op op = inst.op;
    const int ib = target_->insnBytes();
    const uint32_t pc = pc_;
    bool taken = false;
    uint32_t target = 0;

    const FpLatencies &fpu = config_.fpu;

    // Scoreboard bookkeeping happens alongside execution; useX() calls
    // must precede the commit of this instruction's issue time.
    auto finishIssue = [&]() -> uint64_t {
        if (stallThisInsn_) {
            if (stallIsFp_)
                stats_.fpInterlocks += stallThisInsn_;
            else
                stats_.loadInterlocks += stallThisInsn_;
        }
        cycle_ += 1 + stallThisInsn_;
        return cycle_;  // this instruction's issue cycle
    };

    auto dataRead = [&](uint32_t addr, int size) {
        stats_.loads += 1;
        if (!probes_.empty())
            for (Probe *p : probes_)
                p->onDataRead(addr, size);
    };
    auto dataWrite = [&](uint32_t addr, int size) {
        stats_.stores += 1;
        if (!probes_.empty())
            for (Probe *p : probes_)
                p->onDataWrite(addr, size);
    };

    switch (op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or:
      case Op::Xor: case Op::Shl: case Op::Shr: case Op::Shra: {
        useGpr(inst.rs1);
        useGpr(inst.rs2);
        const uint64_t t = finishIssue();
        const uint32_t a = gpr_[inst.rs1];
        const uint32_t b = gpr_[inst.rs2];
        uint32_t r = 0;
        switch (op) {
          case Op::Add: r = a + b; break;
          case Op::Sub: r = a - b; break;
          case Op::And: r = a & b; break;
          case Op::Or: r = a | b; break;
          case Op::Xor: r = a ^ b; break;
          case Op::Shl: r = a << (b & 31); break;
          case Op::Shr: r = a >> (b & 31); break;
          default:
            r = static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
            break;
        }
        writeGpr(inst.rd, r);
        setGprReady(inst.rd, t + 1);
        break;
      }

      case Op::Neg: case Op::Inv: case Op::Mv: {
        useGpr(inst.rs1);
        const uint64_t t = finishIssue();
        const uint32_t a = gpr_[inst.rs1];
        writeGpr(inst.rd, op == Op::Neg ? 0u - a :
                          op == Op::Inv ? ~a : a);
        setGprReady(inst.rd, t + 1);
        break;
      }

      case Op::AddI: case Op::SubI: case Op::AndI: case Op::OrI:
      case Op::XorI: case Op::ShlI: case Op::ShrI: case Op::ShraI: {
        useGpr(inst.rs1);
        const uint64_t t = finishIssue();
        const uint32_t a = gpr_[inst.rs1];
        const uint32_t imm = static_cast<uint32_t>(inst.imm);
        uint32_t r = 0;
        switch (op) {
          case Op::AddI: r = a + imm; break;
          case Op::SubI: r = a - imm; break;
          case Op::AndI: r = a & imm; break;
          case Op::OrI: r = a | imm; break;
          case Op::XorI: r = a ^ imm; break;
          case Op::ShlI: r = a << (imm & 31); break;
          case Op::ShrI: r = a >> (imm & 31); break;
          default:
            r = static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                      (imm & 31));
            break;
        }
        writeGpr(inst.rd, r);
        setGprReady(inst.rd, t + 1);
        break;
      }

      case Op::MvI: case Op::MvHI: {
        const uint64_t t = finishIssue();
        writeGpr(inst.rd, op == Op::MvI
                              ? static_cast<uint32_t>(inst.imm)
                              : static_cast<uint32_t>(inst.imm) << 16);
        setGprReady(inst.rd, t + 1);
        break;
      }

      case Op::Cmp: {
        useGpr(inst.rs1);
        useGpr(inst.rs2);
        const uint64_t t = finishIssue();
        writeGpr(inst.rd,
                 isa::evalCond(inst.cond, gpr_[inst.rs1], gpr_[inst.rs2])
                     ? 1 : 0);
        setGprReady(inst.rd, t + 1);
        break;
      }

      case Op::CmpI: {
        useGpr(inst.rs1);
        const uint64_t t = finishIssue();
        writeGpr(inst.rd,
                 isa::evalCond(inst.cond, gpr_[inst.rs1],
                               static_cast<uint32_t>(inst.imm))
                     ? 1 : 0);
        setGprReady(inst.rd, t + 1);
        break;
      }

      case Op::Ld: case Op::Ldh: case Op::Ldhu:
      case Op::Ldb: case Op::Ldbu: {
        useGpr(inst.rs1);
        const uint64_t t = finishIssue();
        const uint32_t ea = gpr_[inst.rs1] + static_cast<uint32_t>(inst.imm);
        uint32_t v = 0;
        switch (op) {
          case Op::Ld: v = memory_.read32(ea); break;
          case Op::Ldh:
            v = static_cast<uint32_t>(
                static_cast<int32_t>(static_cast<int16_t>(
                    memory_.read16(ea))));
            break;
          case Op::Ldhu: v = memory_.read16(ea); break;
          case Op::Ldb:
            v = static_cast<uint32_t>(
                static_cast<int32_t>(static_cast<int8_t>(
                    memory_.read8(ea))));
            break;
          default: v = memory_.read8(ea); break;
        }
        dataRead(ea, isa::memAccessSize(op));
        writeGpr(inst.rd, v);
        setGprReady(inst.rd, t + 2);  // one load delay slot
        break;
      }

      case Op::St: case Op::Sth: case Op::Stb: {
        useGpr(inst.rs1);
        useGpr(inst.rs2);
        finishIssue();
        const uint32_t ea = gpr_[inst.rs1] + static_cast<uint32_t>(inst.imm);
        const uint32_t v = gpr_[inst.rs2];
        switch (op) {
          case Op::St: memory_.write32(ea, v); break;
          case Op::Sth:
            memory_.write16(ea, static_cast<uint16_t>(v));
            break;
          default: memory_.write8(ea, static_cast<uint8_t>(v)); break;
        }
        dataWrite(ea, isa::memAccessSize(op));
        break;
      }

      case Op::Ldc: {
        const uint64_t t = finishIssue();
        const uint32_t ea = (pc & ~3u) + static_cast<uint32_t>(inst.imm);
        const uint32_t v = memory_.read32(ea);
        dataRead(ea, 4);
        writeGpr(0, v);
        setGprReady(0, t + 2);
        break;
      }

      case Op::Br: case Op::Bz: case Op::Bnz: {
        stats_.branches += 1;
        inCfShadow_ = true;
        if (op != Op::Br)
            useGpr(inst.rs1);
        finishIssue();
        const bool cond =
            op == Op::Br ? true
            : op == Op::Bz ? gpr_[inst.rs1] == 0
                           : gpr_[inst.rs1] != 0;
        if (cond) {
            taken = true;
            target = pc + static_cast<uint32_t>(inst.imm);
        }
        break;
      }

      case Op::J: case Op::Jl: {
        stats_.branches += 1;
        inCfShadow_ = true;
        const uint64_t t = finishIssue();
        taken = true;
        target = pc + static_cast<uint32_t>(inst.imm);
        if (op == Op::Jl) {
            writeGpr(1, pc + 2 * ib);
            setGprReady(1, t + 1);
        }
        break;
      }

      case Op::Jr: case Op::Jlr: {
        stats_.branches += 1;
        inCfShadow_ = true;
        useGpr(inst.rs1);
        const uint64_t t = finishIssue();
        taken = true;
        target = gpr_[inst.rs1];
        if (op == Op::Jlr) {
            writeGpr(1, pc + 2 * ib);
            setGprReady(1, t + 1);
        }
        break;
      }

      case Op::Jrz: case Op::Jrnz: {
        stats_.branches += 1;
        inCfShadow_ = true;
        useGpr(inst.rs1);
        useGpr(inst.rs2);
        finishIssue();
        const bool cond = op == Op::Jrz ? gpr_[inst.rs2] == 0
                                        : gpr_[inst.rs2] != 0;
        if (cond) {
            taken = true;
            target = gpr_[inst.rs1];
        }
        break;
      }

      case Op::FAddS: case Op::FSubS: case Op::FMulS: case Op::FDivS: {
        stats_.fpOps += 1;
        useFpr(inst.rs1);
        useFpr(inst.rs2);
        const uint64_t t = finishIssue();
        const float a = asFloat(fpr_[inst.rs1]);
        const float b = asFloat(fpr_[inst.rs2]);
        float r = 0;
        int lat = fpu.addSub;
        switch (op) {
          case Op::FAddS: r = a + b; break;
          case Op::FSubS: r = a - b; break;
          case Op::FMulS: r = a * b; lat = fpu.mul; break;
          default: r = a / b; lat = fpu.divS; break;
        }
        fpr_[inst.rd] = fromFloat(r);
        setFprReady(inst.rd, t + lat);
        break;
      }

      case Op::FAddD: case Op::FSubD: case Op::FMulD: case Op::FDivD: {
        stats_.fpOps += 1;
        useFpr(inst.rs1);
        useFpr(inst.rs2);
        const uint64_t t = finishIssue();
        const double a = asDouble(fpr_[inst.rs1]);
        const double b = asDouble(fpr_[inst.rs2]);
        double r = 0;
        int lat = fpu.addSub;
        switch (op) {
          case Op::FAddD: r = a + b; break;
          case Op::FSubD: r = a - b; break;
          case Op::FMulD: r = a * b; lat = fpu.mul; break;
          default: r = a / b; lat = fpu.divD; break;
        }
        fpr_[inst.rd] = fromDouble(r);
        setFprReady(inst.rd, t + lat);
        break;
      }

      case Op::FNegS: case Op::FNegD: case Op::FMv: {
        stats_.fpOps += 1;
        useFpr(inst.rs1);
        const uint64_t t = finishIssue();
        if (op == Op::FNegS)
            fpr_[inst.rd] = fromFloat(-asFloat(fpr_[inst.rs1]));
        else if (op == Op::FNegD)
            fpr_[inst.rd] = fromDouble(-asDouble(fpr_[inst.rs1]));
        else
            fpr_[inst.rd] = fpr_[inst.rs1];
        setFprReady(inst.rd,
                    t + (op == Op::FMv ? fpu.move : fpu.addSub));
        break;
      }

      case Op::FCmpS: case Op::FCmpD: {
        stats_.fpOps += 1;
        useFpr(inst.rs1);
        useFpr(inst.rs2);
        const uint64_t t = finishIssue();
        const bool r =
            op == Op::FCmpS
                ? isa::evalCondFp(inst.cond, asFloat(fpr_[inst.rs1]),
                                  asFloat(fpr_[inst.rs2]))
                : isa::evalCondFp(inst.cond, asDouble(fpr_[inst.rs1]),
                                  asDouble(fpr_[inst.rs2]));
        fpStatus_ = r ? 1 : 0;
        statusReady_ = t + fpu.compare;
        break;
      }

      case Op::CvtSiSf: case Op::CvtSiDf: case Op::CvtSfDf:
      case Op::CvtDfSf: case Op::CvtSfSi: case Op::CvtDfSi: {
        stats_.fpOps += 1;
        useFpr(inst.rs1);
        const uint64_t t = finishIssue();
        const uint64_t src = fpr_[inst.rs1];
        uint64_t r = 0;
        switch (op) {
          case Op::CvtSiSf:
            r = fromFloat(static_cast<float>(
                static_cast<int32_t>(static_cast<uint32_t>(src))));
            break;
          case Op::CvtSiDf:
            r = fromDouble(static_cast<double>(
                static_cast<int32_t>(static_cast<uint32_t>(src))));
            break;
          case Op::CvtSfDf:
            r = fromDouble(static_cast<double>(asFloat(src)));
            break;
          case Op::CvtDfSf:
            r = fromFloat(static_cast<float>(asDouble(src)));
            break;
          case Op::CvtSfSi:
            r = static_cast<uint32_t>(
                static_cast<int32_t>(asFloat(src)));
            break;
          default:
            r = static_cast<uint32_t>(
                static_cast<int32_t>(asDouble(src)));
            break;
        }
        fpr_[inst.rd] = r;
        setFprReady(inst.rd, t + fpu.convert);
        break;
      }

      case Op::MifL: case Op::MifH: {
        stats_.fpOps += 1;
        useGpr(inst.rs1);
        useFpr(inst.rd);  // partial update reads the other half
        const uint64_t t = finishIssue();
        const uint64_t g = gpr_[inst.rs1];
        if (op == Op::MifL)
            fpr_[inst.rd] = (fpr_[inst.rd] & 0xffffffff00000000ull) | g;
        else
            fpr_[inst.rd] =
                (fpr_[inst.rd] & 0xffffffffull) | (g << 32);
        setFprReady(inst.rd, t + fpu.move);
        break;
      }

      case Op::MfiL: case Op::MfiH: {
        stats_.fpOps += 1;
        useFpr(inst.rs1);
        const uint64_t t = finishIssue();
        const uint64_t f = fpr_[inst.rs1];
        writeGpr(inst.rd, op == Op::MfiL
                              ? static_cast<uint32_t>(f)
                              : static_cast<uint32_t>(f >> 32));
        setGprReady(inst.rd, t + 1);
        break;
      }

      case Op::Trap: {
        stats_.traps += 1;
        useGpr(2);
        const uint64_t t = finishIssue();
        doTrap(inst.imm);
        setGprReady(2, t + 1);
        break;
      }

      case Op::Rdsr: {
        useStatus();
        const uint64_t t = finishIssue();
        writeGpr(inst.rd, fpStatus_);
        setGprReady(inst.rd, t + 1);
        break;
      }

      case Op::Nop:
        finishIssue();
        break;

      default:
        panic("unexecutable op ", opName(op));
    }

    // Delay-slot sequencing: a taken transfer takes effect after the
    // next sequential instruction executes.
    if (inDelaySlot_) {
        // The assembler never schedules a transfer into a delay slot,
        // but a program that jumps into pool data (or clobbers its
        // return address) can execute one anyway; that is the
        // program's fault, not an internal invariant.
        if (taken)
            fatal("control transfer in a delay slot at pc ",
                  hexString(pc));
        pc_ = delayedTarget_;
        inDelaySlot_ = false;
    } else if (taken) {
        stats_.takenBranches += 1;
        delayedTarget_ = target;
        inDelaySlot_ = true;
        pc_ = pc + ib;
        if (target == 0 && pc + ib >= textEnd_) {
            // Returning to the halt sentinel from the last instruction:
            // there is no delay-slot instruction to execute.
            pc_ = 0;
            inDelaySlot_ = false;
        }
    } else {
        pc_ = pc + ib;
    }
}

void
Machine::doTrap(int code)
{
    char buf[64];
    switch (code) {
      case TrapPrintInt:
        std::snprintf(buf, sizeof(buf), "%d",
                      static_cast<int32_t>(gpr_[2]));
        output_ += buf;
        break;
      case TrapPrintUint:
        std::snprintf(buf, sizeof(buf), "%u", gpr_[2]);
        output_ += buf;
        break;
      case TrapPrintChar:
        output_.push_back(static_cast<char>(gpr_[2]));
        break;
      case TrapPrintStr:
        output_ += memory_.readString(gpr_[2]);
        break;
      case TrapPrintF64:
        std::snprintf(buf, sizeof(buf), "%.4f", asDouble(fpr_[2]));
        output_ += buf;
        break;
      case TrapHalt:
        halted_ = true;
        exitStatus_ = static_cast<int>(gpr_[2]);
        break;
      case TrapAlloc: {
        const uint32_t bytes = gpr_[2];
        const uint32_t base = heapPtr_;
        heapPtr_ = static_cast<uint32_t>(roundUp(heapPtr_ + bytes, 8));
        if (heapPtr_ > gpr_[target_->spReg()])
            fatal("heap/stack collision in guest program");
        writeGpr(2, base);
        break;
      }
      default:
        fatal("unknown trap code ", code);
    }
}

} // namespace d16sim::sim
