/**
 * @file
 * Block-compiled threaded-code execution engine.
 *
 * Machine::step pays a full dispatch (halt check, limit check, probe
 * fan-out, shadow bookkeeping, operand scoreboard) per instruction.
 * Most dynamic instructions, however, sit inside statically recovered
 * basic blocks whose shape never changes: the CFG analyzer proves
 * where every block starts, which instruction terminates it, and that
 * the delay slot belongs to its branch. A BlockProgram translates each
 * such block ONCE into a contiguous run of pre-bound uops — operands
 * resolved, branch targets and Ldc pool addresses turned into absolute
 * values, link values precomputed, load-use hazard checks narrowed to
 * the only instructions that can actually stall — and the machine then
 * dispatches block-to-block through a pc -> block map.
 *
 * Exactness contract (the golden sweeps, trace replay and the static
 * timing analyzer all cross-validate against Machine::step):
 *
 *  - Architectural state, program output and every SimStats field are
 *    bit-identical to stepping. Interlock accounting keeps the issue
 *    scoreboard's semantics: a GPR stall can only be caused by the
 *    *immediately preceding* dynamic instruction being a load, so a
 *    uop carries a hazard-check flag per source iff its static
 *    predecessor is a load writing that source (or the uop opens the
 *    block, where the predecessor is unknown). FP/status latencies
 *    span blocks and keep the full scoreboard.
 *  - `instructions` is batched per block with an exact fixup when a
 *    halt trap exits mid-block; `takenBranches` increments before the
 *    delay slot executes, as in step order; `branchBubbles` is static
 *    per block (shadow nop-ness is a decode-time property).
 *  - The engine punts to step() for anything outside the static
 *    picture: unclaimed pcs (jumps into pool data or mid-block),
 *    misaligned pcs, blocks the translator marked NeedsStep (no delay
 *    slot, control flow in a slot, undecodable sites), and instruction
 *    -limit crossings (so the limit fires at the precise instruction).
 *    Probe-attached runs never enter the engine at all — except a
 *    lone TraceSink, which receives whole-block fetch chunks that
 *    reproduce the per-instruction stream exactly.
 *
 * Layering: this lives in src/sim (the machine executes uops), but the
 * block *discovery* comes from src/analysis, which depends on sim.
 * The BlockTable struct is the narrow waist: analysis exports spans,
 * sim translates them (analysis::exportBlockTable, then
 * core::buildBlockProgram glues the two).
 */

#ifndef D16SIM_SIM_BLOCK_ENGINE_HH
#define D16SIM_SIM_BLOCK_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "asm/image.hh"
#include "isa/decoded.hh"
#include "sim/predecode.hh"

namespace d16sim::sim
{

/** One analyzer-recovered basic block: `count` contiguous instruction
 *  sites starting at `startPc` (delay slot included, per the CFG's
 *  block ownership rule). */
struct BlockSpan
{
    uint32_t startPc = 0;
    uint32_t count = 0;
};

/** The narrow waist between analysis (which proves block boundaries)
 *  and sim (which compiles them). Spans must be disjoint, ascending,
 *  and cover only valid instruction sites. */
struct BlockTable
{
    std::vector<BlockSpan> spans;
};

/**
 * Block-granularity trace consumer. The engine cannot afford a
 * per-instruction virtual call, but trace capture only needs the
 * run-length-encoded fetch stream — which a block IS: `count`
 * sequential fetches from `startPc`. A probe that also implements
 * this interface (TraceProbe) keeps block dispatch eligible; data
 * accesses reuse the Probe callback names so one override serves both.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** `count` sequential ifetches starting at `startPc`. Equivalent
     *  to `count` onIFetch calls at insnBytes stride. */
    virtual void onFetchChunk(uint32_t startPc, uint32_t count) = 0;

    virtual void onDataRead(uint32_t addr, int size) = 0;
    virtual void onDataWrite(uint32_t addr, int size) = 0;
};

/** One pre-bound micro-operation. Immediates are resolved at
 *  translation: branch/jump targets and Ldc pool addresses become
 *  absolute, MvHI's shift is folded, link values are precomputed. */
struct Uop
{
    /** Hazard-check flags: test the GPR scoreboard for this source.
     *  Clear means the translator proved the static predecessor is not
     *  a load writing it, so no stall is possible. */
    static constexpr uint8_t ChkRs1 = 1;
    static constexpr uint8_t ChkRs2 = 2;

    isa::Op op{};
    isa::Cond cond{};
    uint8_t flags = 0;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;   //!< immediate / absolute target / absolute ea
    uint32_t aux = 0;  //!< link value (Jl/Jlr) or access size (ld/st)
};

/**
 * An image's text section compiled to threaded code. Immutable after
 * construction and shareable read-only across threads, exactly like
 * the DecodedText it was built from; the sweep engine builds one per
 * build node.
 */
class BlockProgram
{
  public:
    struct Block
    {
        uint32_t startPc = 0;
        uint32_t count = 0;          //!< instructions incl. term + slot
        uint32_t fallThroughPc = 0;  //!< next *address* (may be pool)
        uint32_t uopBegin = 0;       //!< body run in the uop pool
        uint32_t uopCount = 0;       //!< body size (count - 2 if term)
        Uop term;                    //!< terminator, valid iff hasTerm
        Uop slot;                    //!< delay slot, valid iff hasTerm
        bool hasTerm = false;
        bool slotBubble = false;     //!< slot is the canonical nop
        bool needsStep = false;      //!< dispatch must punt to step()
    };

    /** Translate every span. `text` must be the predecode table of
     *  `image`; spans outside it or holding invalid slots are marked
     *  needsStep rather than rejected. */
    BlockProgram(const assem::Image &image, const DecodedText &text,
                 const BlockTable &table);

    /** Block starting exactly at `pc`, or -1 (unclaimed / misaligned /
     *  outside text). */
    int32_t
    blockAt(uint32_t pc) const
    {
        const uint32_t off = pc - textBase_;
        if (off >= textSize_ || (off & mask_) != 0)
            return -1;
        return index_[off >> shift_];
    }

    const Block &block(int32_t id) const { return blocks_[id]; }
    const Uop *uops(const Block &b) const { return uops_.data() + b.uopBegin; }

    size_t blockCount() const { return blocks_.size(); }
    size_t needsStepCount() const { return needsStep_; }
    size_t uopCount() const { return uops_.size(); }

  private:
    void translate(const isa::TargetInfo &t, const DecodedText &text,
                   const BlockSpan &span);

    uint32_t textBase_ = 0;
    uint32_t textSize_ = 0;
    unsigned shift_ = 2;
    uint32_t mask_ = 3;
    size_t needsStep_ = 0;
    std::vector<Block> blocks_;
    std::vector<Uop> uops_;
    std::vector<int32_t> index_;  //!< per text slot: block id or -1
};

} // namespace d16sim::sim

#endif // D16SIM_SIM_BLOCK_ENGINE_HH
