/**
 * @file
 * Machine — functional + timing model of the shared five-stage pipeline.
 *
 * Both instruction sets execute on this one model (the paper's central
 * methodological point: identical execution resources, different
 * encodings). Behaviour follows §2 and Appendix A:
 *
 *  - single issue, peak one instruction per cycle;
 *  - branches and jumps have ONE architectural delay slot (the next
 *    sequential instruction always executes);
 *  - loads have one delay slot enforced by a hardware interlock: an
 *    immediately-dependent consumer stalls one cycle;
 *  - FPU results interlock by latency (a simple ready-time scoreboard);
 *  - r0 reads as zero and ignores writes on DLXe; on D16 r0 is the
 *    ordinary at/compare register.
 *
 * Timing is accounted per instruction (issue-time scoreboard), which
 * for this in-order, single-issue pipeline is cycle-equivalent to a
 * stage-by-stage model. Memory latency is deliberately NOT modeled
 * here: the machine reports base cycles (instructions + interlocks) and
 * exposes the reference streams through Probes; the §4 memory models in
 * src/mem add ell * traffic or missPenalty * misses exactly as the
 * paper's formulas do.
 */

#ifndef D16SIM_SIM_MACHINE_HH
#define D16SIM_SIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asm/image.hh"
#include "isa/decoded.hh"
#include "isa/target.hh"
#include "mem/memory.hh"
#include "sim/block_engine.hh"
#include "sim/predecode.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"

namespace d16sim::sim
{

/** FPU result latencies in cycles (result ready latency-1 cycles after
 *  the consumer would first want it). */
struct FpLatencies
{
    int addSub = 2;
    int mul = 4;
    int divS = 10;
    int divD = 16;
    int convert = 2;
    int compare = 2;
    int move = 1;
};

struct MachineConfig
{
    uint32_t memBytes = 8u << 20;
    uint64_t maxInstructions = 2'000'000'000;
    FpLatencies fpu;
};

class Machine
{
  public:
    /** `predecoded` is an optional shared decode table for the image's
     *  text section (see DecodedText); when null the machine builds a
     *  private one. Passing the same table to many machines amortizes
     *  decoding across runs of one image. */
    Machine(const assem::Image &image, MachineConfig config = {},
            std::shared_ptr<const DecodedText> predecoded = nullptr);

    /** Attach an observation probe (not owned). */
    void addProbe(Probe *p) { probes_.push_back(p); }

    /** Attach a compiled block program for the image (shared,
     *  immutable; see BlockProgram). run() then dispatches whole
     *  blocks wherever the static picture holds and falls back to
     *  step() everywhere else. Probe-attached runs ignore it — except
     *  a lone TraceSink (setTraceSink), which keeps block dispatch
     *  eligible. Results are bit-identical either way. */
    void
    setBlockProgram(std::shared_ptr<const BlockProgram> blocks)
    {
        blocks_ = std::move(blocks);
    }

    /** Declare the single attached probe as block-capable: it receives
     *  block-granularity fetch chunks and direct data callbacks from
     *  the engine (and normal per-instruction probe callbacks from any
     *  step() fallback). `sink` must also be registered via addProbe. */
    void setTraceSink(TraceSink *sink) { traceSink_ = sink; }

    /** Instructions retired through block dispatch (diagnostic; the
     *  remainder of stats().instructions went through step()). */
    uint64_t blockInstructions() const { return blockInstructions_; }

    /** Run until halt; returns the exit status (r2 at halt). */
    int run();

    /** Execute one instruction; returns false once halted. */
    bool step();

    bool halted() const { return halted_; }

    const SimStats &stats() const { return stats_; }
    const std::string &output() const { return output_; }
    const isa::TargetInfo &target() const { return *target_; }
    mem::Memory &memory() { return memory_; }

    uint32_t pc() const { return pc_; }
    uint32_t reg(int r) const { return gpr_[r]; }
    void setReg(int r, uint32_t v) { writeGpr(r, v); }
    uint64_t fregRaw(int r) const { return fpr_[r]; }
    double fregD(int r) const;
    float fregS(int r) const;

  private:
    const isa::DecodedInst &decoded(uint32_t pc);
    void execute(const isa::DecodedInst &inst);
    void writeGpr(int r, uint32_t v);
    void doTrap(int code);

    /** Block-engine dispatch (defined in block_engine.cc). */
    bool runBlocks();
    bool execUop(const Uop &u);
    void uopGprStall(const Uop &u);
    uint64_t uopFinishIssue();

    /** Issue-time scoreboard helpers. */
    void useGpr(int r);
    void useFpr(int r);
    void useStatus();
    void setGprReady(int r, uint64_t when);
    void setFprReady(int r, uint64_t when);

    const isa::TargetInfo *target_;
    MachineConfig config_;
    mem::Memory memory_;

    uint32_t pc_ = 0;
    std::array<uint32_t, 32> gpr_{};
    std::array<uint64_t, 32> fpr_{};
    uint32_t fpStatus_ = 0;
    bool halted_ = false;
    int exitStatus_ = 0;

    // Delay-slot bookkeeping.
    bool inDelaySlot_ = false;
    uint32_t delayedTarget_ = 0;

    // True while the next instruction sits in a branch/jump shadow
    // (taken or not) — a canonical nop there is a branch bubble.
    bool inCfShadow_ = false;

    // Scoreboard: absolute cycle each register becomes available.
    uint64_t cycle_ = 0;
    uint64_t stallThisInsn_ = 0;
    bool stallIsFp_ = false;
    std::array<uint64_t, 32> gprReady_{};
    std::array<uint64_t, 32> fprReady_{};
    uint64_t statusReady_ = 0;

    // Immutable predecoded text section (shared or privately built).
    uint32_t textBase_ = 0;
    uint32_t textEnd_ = 0;
    std::shared_ptr<const DecodedText> text_;
    isa::DecodedInst scratch_;  //!< decode target for non-site words

    // The runaway guard is re-armed every LimitCheckInterval
    // instructions instead of comparing against maxInstructions in the
    // hot loop; limitCheckAt_ never exceeds maxInstructions, so the
    // limit still fires exactly.
    static constexpr uint64_t LimitCheckInterval = 4096;
    uint64_t limitCheckAt_ = 0;

    uint32_t heapPtr_ = 0;

    SimStats stats_;
    std::string output_;
    std::vector<Probe *> probes_;

    // Threaded-code engine (optional; null = pure step dispatch).
    std::shared_ptr<const BlockProgram> blocks_;
    TraceSink *traceSink_ = nullptr;
    uint64_t blockInstructions_ = 0;
};

} // namespace d16sim::sim

#endif // D16SIM_SIM_MACHINE_HH
