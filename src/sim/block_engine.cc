#include "sim/block_engine.hh"

#include <algorithm>
#include <bit>

#include "isa/codec.hh"
#include "isa/operation.hh"
#include "isa/target.hh"
#include "sim/machine.hh"
#include "support/error.hh"

namespace d16sim::sim
{

using isa::DecodedInst;
using isa::Op;

namespace
{

float
asFloat(uint64_t raw)
{
    return std::bit_cast<float>(static_cast<uint32_t>(raw));
}

uint64_t
fromFloat(float f)
{
    return std::bit_cast<uint32_t>(f);
}

double
asDouble(uint64_t raw)
{
    return std::bit_cast<double>(raw);
}

uint64_t
fromDouble(double d)
{
    return std::bit_cast<uint64_t>(d);
}

/** Which register-file reads does `op` issue through the GPR
 *  scoreboard (Machine::execute's useGpr calls)? Reported as "reads
 *  the rs1/rs2 field"; Trap's fixed read of r2 is normalized onto rs1
 *  by makeUop. FPR/status reads are not listed: those latencies span
 *  blocks and always take the full scoreboard path. */
void
gprReads(Op op, bool &rs1, bool &rs2)
{
    rs1 = false;
    rs2 = false;
    switch (op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or:
      case Op::Xor: case Op::Shl: case Op::Shr: case Op::Shra:
      case Op::Cmp:
      case Op::St: case Op::Sth: case Op::Stb:
      case Op::Jrz: case Op::Jrnz:
        rs1 = true;
        rs2 = true;
        break;
      case Op::Neg: case Op::Inv: case Op::Mv:
      case Op::AddI: case Op::SubI: case Op::AndI: case Op::OrI:
      case Op::XorI: case Op::ShlI: case Op::ShrI: case Op::ShraI:
      case Op::CmpI:
      case Op::Ld: case Op::Ldh: case Op::Ldhu:
      case Op::Ldb: case Op::Ldbu:
      case Op::Bz: case Op::Bnz:
      case Op::Jr: case Op::Jlr:
      case Op::MifL: case Op::MifH:
      case Op::Trap:
        rs1 = true;
        break;
      default:
        break;
    }
}

/** Does the *previous* instruction leave `r` pending in the load
 *  delay slot? Only loads set a ready time that can still stall the
 *  next issue (t+2); every other producer's t+1 is already met. */
bool
loadWrites(const isa::TargetInfo &t, const DecodedInst &prev, int r)
{
    if (isa::isPlainLoad(prev.op))
        return prev.rd == r && !(r == 0 && t.r0IsZero());
    if (prev.op == Op::Ldc)
        return r == 0;  // D16-only; r0 is a real register there
    return false;
}

/** Pre-bind one instruction. `prev` is the static predecessor in
 *  issue order (null when unknown, i.e. at a block entry: then every
 *  GPR read keeps its hazard check). */
Uop
makeUop(const isa::TargetInfo &t, const DecodedInst &d, uint32_t pc,
        const DecodedInst *prev)
{
    const uint32_t ib = static_cast<uint32_t>(t.insnBytes());
    Uop u;
    u.op = d.op;
    u.cond = d.cond;
    u.rd = static_cast<uint8_t>(d.rd);
    u.rs1 = static_cast<uint8_t>(d.rs1);
    u.rs2 = static_cast<uint8_t>(d.rs2);
    u.imm = d.imm;

    switch (d.op) {
      case Op::MvHI:
        // Fold the shift: MvI and MvHI collapse to one load-immediate.
        u.op = Op::MvI;
        u.imm = static_cast<int32_t>(static_cast<uint32_t>(d.imm) << 16);
        break;
      case Op::Ldc:
        u.imm = static_cast<int32_t>((pc & ~3u) +
                                     static_cast<uint32_t>(d.imm));
        u.aux = 4;
        break;
      case Op::Ld: case Op::Ldh: case Op::Ldhu:
      case Op::Ldb: case Op::Ldbu:
      case Op::St: case Op::Sth: case Op::Stb:
        u.aux = static_cast<uint32_t>(isa::memAccessSize(d.op));
        break;
      case Op::Br: case Op::Bz: case Op::Bnz:
      case Op::J: case Op::Jl:
        u.imm = static_cast<int32_t>(pc + static_cast<uint32_t>(d.imm));
        if (d.op == Op::Jl)
            u.aux = pc + 2 * ib;
        break;
      case Op::Jlr:
        u.aux = pc + 2 * ib;
        break;
      case Op::Trap:
        u.rs1 = 2;  // the service argument register
        break;
      default:
        break;
    }

    bool r1 = false, r2 = false;
    gprReads(d.op, r1, r2);
    if (r1 && (!prev || loadWrites(t, *prev, u.rs1)))
        u.flags |= Uop::ChkRs1;
    if (r2 && (!prev || loadWrites(t, *prev, u.rs2)))
        u.flags |= Uop::ChkRs2;
    return u;
}

} // namespace

BlockProgram::BlockProgram(const assem::Image &image,
                           const DecodedText &text,
                           const BlockTable &table)
{
    panicIf(!image.target, "image has no target");
    panicIf(text.base() != image.textBase,
            "predecoded table does not match image");
    textBase_ = image.textBase;
    textSize_ = image.textSize;
    shift_ = text.insnShift();
    mask_ = (1u << shift_) - 1;
    index_.assign(text.size(), -1);
    blocks_.reserve(table.spans.size());
    for (const BlockSpan &span : table.spans)
        translate(*image.target, text, span);
}

void
BlockProgram::translate(const isa::TargetInfo &t, const DecodedText &text,
                        const BlockSpan &span)
{
    const uint32_t ib = 1u << shift_;
    const uint32_t idx0 = (span.startPc - textBase_) >> shift_;
    panicIf(span.count == 0 || (span.startPc - textBase_) > textSize_ ||
                ((span.startPc - textBase_) & mask_) != 0 ||
                idx0 + span.count > text.size(),
            "block span outside the text section");

    Block b;
    b.startPc = span.startPc;
    b.count = span.count;
    b.fallThroughPc = span.startPc + span.count * ib;

    const auto finish = [&](bool needsStep) {
        b.needsStep = needsStep;
        if (needsStep)
            ++needsStep_;
        index_[idx0] = static_cast<int32_t>(blocks_.size());
        blocks_.push_back(b);
    };

    // Every site must hold a decoded instruction; a span that touches
    // an invalid slot (pool data mis-claimed as code) is stepped.
    for (uint32_t i = 0; i < span.count; ++i)
        if (!text.valid(idx0 + i))
            return finish(true);

    int cf = -1;
    for (uint32_t i = 0; i < span.count; ++i) {
        if (isa::isControlFlow(text.at(idx0 + i).op)) {
            cf = static_cast<int>(i);
            break;
        }
    }

    // Compiled blocks carry their terminator at count-2 with a
    // non-control-flow delay slot. Anything else — a transfer as the
    // last text instruction (no slot to fold), or a transfer sitting
    // in the slot itself — keeps step()'s exact edge-case handling.
    if (cf >= 0 && (cf != static_cast<int>(span.count) - 2 ||
                    isa::isControlFlow(text.at(idx0 + cf + 1).op)))
        return finish(true);

    b.uopBegin = static_cast<uint32_t>(uops_.size());
    const uint32_t body = cf >= 0 ? span.count - 2 : span.count;
    const DecodedInst *prev = nullptr;  // block entry: predecessor unknown
    for (uint32_t i = 0; i < body; ++i) {
        const DecodedInst &d = text.at(idx0 + i);
        uops_.push_back(makeUop(t, d, span.startPc + i * ib, prev));
        prev = &d;
    }
    b.uopCount = body;

    if (cf >= 0) {
        const DecodedInst &cfd = text.at(idx0 + cf);
        const DecodedInst &slotd = text.at(idx0 + cf + 1);
        b.hasTerm = true;
        b.term = makeUop(t, cfd, span.startPc + cf * ib, prev);
        // The slot's dynamic predecessor is always the terminator,
        // which is never a load: no GPR hazard check can fire.
        b.slot = makeUop(t, slotd, span.startPc + (cf + 1) * ib, &cfd);
        b.slotBubble = isa::isCanonicalNop(t, slotd);
    }
    finish(false);
}

// ----- Machine dispatch ------------------------------------------------

/** GPR hazard check for the flagged sources of `u`. Mirrors
 *  useGpr+finishIssue's stall arithmetic for the loadInterlocks case
 *  (ties and maxima resolve identically: both sources attribute to the
 *  load interlock counter). The caller adds the base issue cycle. */
void
Machine::uopGprStall(const Uop &u)
{
    const uint64_t issue = cycle_ + 1;
    uint64_t stall = 0;
    if (u.flags & Uop::ChkRs1) {
        const uint64_t ready = gprReady_[u.rs1];
        if (ready > issue)
            stall = ready - issue;
    }
    if (u.flags & Uop::ChkRs2) {
        const uint64_t ready = gprReady_[u.rs2];
        if (ready > issue && ready - issue > stall)
            stall = ready - issue;
    }
    if (stall) {
        stats_.loadInterlocks += stall;
        cycle_ += stall;
    }
}

/** finishIssue() for the slow (scoreboarded) uop cases; requires
 *  stallThisInsn_ reset by the caller before its useX() calls. */
uint64_t
Machine::uopFinishIssue()
{
    if (stallThisInsn_) {
        if (stallIsFp_)
            stats_.fpInterlocks += stallThisInsn_;
        else
            stats_.loadInterlocks += stallThisInsn_;
    }
    cycle_ += 1 + stallThisInsn_;
    return cycle_;
}

/**
 * Execute one pre-bound body/slot uop (never a terminator). Identical
 * architectural and timing semantics to Machine::execute, minus the
 * work the translator already did: operand binding, hazard-check
 * narrowing (the ChkRs flags), and the t+1 ready-time writes of
 * single-cycle producers, which can never stall a later issue and are
 * elided. Returns true iff the uop halted the machine (Trap halt).
 */
bool
Machine::execUop(const Uop &u)
{
    const FpLatencies &fpu = config_.fpu;

    switch (u.op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or:
      case Op::Xor: case Op::Shl: case Op::Shr: case Op::Shra: {
        if (u.flags)
            uopGprStall(u);
        ++cycle_;
        const uint32_t a = gpr_[u.rs1];
        const uint32_t b = gpr_[u.rs2];
        uint32_t r = 0;
        switch (u.op) {
          case Op::Add: r = a + b; break;
          case Op::Sub: r = a - b; break;
          case Op::And: r = a & b; break;
          case Op::Or: r = a | b; break;
          case Op::Xor: r = a ^ b; break;
          case Op::Shl: r = a << (b & 31); break;
          case Op::Shr: r = a >> (b & 31); break;
          default:
            r = static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
            break;
        }
        writeGpr(u.rd, r);
        break;
      }

      case Op::Neg: case Op::Inv: case Op::Mv: {
        if (u.flags)
            uopGprStall(u);
        ++cycle_;
        const uint32_t a = gpr_[u.rs1];
        writeGpr(u.rd, u.op == Op::Neg ? 0u - a :
                       u.op == Op::Inv ? ~a : a);
        break;
      }

      case Op::AddI: case Op::SubI: case Op::AndI: case Op::OrI:
      case Op::XorI: case Op::ShlI: case Op::ShrI: case Op::ShraI: {
        if (u.flags)
            uopGprStall(u);
        ++cycle_;
        const uint32_t a = gpr_[u.rs1];
        const uint32_t imm = static_cast<uint32_t>(u.imm);
        uint32_t r = 0;
        switch (u.op) {
          case Op::AddI: r = a + imm; break;
          case Op::SubI: r = a - imm; break;
          case Op::AndI: r = a & imm; break;
          case Op::OrI: r = a | imm; break;
          case Op::XorI: r = a ^ imm; break;
          case Op::ShlI: r = a << (imm & 31); break;
          case Op::ShrI: r = a >> (imm & 31); break;
          default:
            r = static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                      (imm & 31));
            break;
        }
        writeGpr(u.rd, r);
        break;
      }

      case Op::MvI:  // MvHI folded in at translation
        ++cycle_;
        writeGpr(u.rd, static_cast<uint32_t>(u.imm));
        break;

      case Op::Cmp:
        if (u.flags)
            uopGprStall(u);
        ++cycle_;
        writeGpr(u.rd,
                 isa::evalCond(u.cond, gpr_[u.rs1], gpr_[u.rs2]) ? 1 : 0);
        break;

      case Op::CmpI:
        if (u.flags)
            uopGprStall(u);
        ++cycle_;
        writeGpr(u.rd,
                 isa::evalCond(u.cond, gpr_[u.rs1],
                               static_cast<uint32_t>(u.imm)) ? 1 : 0);
        break;

      case Op::Ld: case Op::Ldh: case Op::Ldhu:
      case Op::Ldb: case Op::Ldbu: {
        if (u.flags)
            uopGprStall(u);
        const uint64_t t = ++cycle_;
        const uint32_t ea = gpr_[u.rs1] + static_cast<uint32_t>(u.imm);
        uint32_t v = 0;
        switch (u.op) {
          case Op::Ld: v = memory_.read32(ea); break;
          case Op::Ldh:
            v = static_cast<uint32_t>(
                static_cast<int32_t>(static_cast<int16_t>(
                    memory_.read16(ea))));
            break;
          case Op::Ldhu: v = memory_.read16(ea); break;
          case Op::Ldb:
            v = static_cast<uint32_t>(
                static_cast<int32_t>(static_cast<int8_t>(
                    memory_.read8(ea))));
            break;
          default: v = memory_.read8(ea); break;
        }
        stats_.loads += 1;
        if (traceSink_)
            traceSink_->onDataRead(ea, static_cast<int>(u.aux));
        writeGpr(u.rd, v);
        setGprReady(u.rd, t + 2);  // one load delay slot
        break;
      }

      case Op::St: case Op::Sth: case Op::Stb: {
        if (u.flags)
            uopGprStall(u);
        ++cycle_;
        const uint32_t ea = gpr_[u.rs1] + static_cast<uint32_t>(u.imm);
        const uint32_t v = gpr_[u.rs2];
        switch (u.op) {
          case Op::St: memory_.write32(ea, v); break;
          case Op::Sth:
            memory_.write16(ea, static_cast<uint16_t>(v));
            break;
          default: memory_.write8(ea, static_cast<uint8_t>(v)); break;
        }
        stats_.stores += 1;
        if (traceSink_)
            traceSink_->onDataWrite(ea, static_cast<int>(u.aux));
        break;
      }

      case Op::Ldc: {
        const uint64_t t = ++cycle_;
        const uint32_t ea = static_cast<uint32_t>(u.imm);  // pre-bound
        const uint32_t v = memory_.read32(ea);
        stats_.loads += 1;
        if (traceSink_)
            traceSink_->onDataRead(ea, 4);
        writeGpr(0, v);
        setGprReady(0, t + 2);
        break;
      }

      case Op::FAddS: case Op::FSubS: case Op::FMulS: case Op::FDivS: {
        stats_.fpOps += 1;
        stallThisInsn_ = 0;
        useFpr(u.rs1);
        useFpr(u.rs2);
        const uint64_t t = uopFinishIssue();
        const float a = asFloat(fpr_[u.rs1]);
        const float b = asFloat(fpr_[u.rs2]);
        float r = 0;
        int lat = fpu.addSub;
        switch (u.op) {
          case Op::FAddS: r = a + b; break;
          case Op::FSubS: r = a - b; break;
          case Op::FMulS: r = a * b; lat = fpu.mul; break;
          default: r = a / b; lat = fpu.divS; break;
        }
        fpr_[u.rd] = fromFloat(r);
        setFprReady(u.rd, t + lat);
        break;
      }

      case Op::FAddD: case Op::FSubD: case Op::FMulD: case Op::FDivD: {
        stats_.fpOps += 1;
        stallThisInsn_ = 0;
        useFpr(u.rs1);
        useFpr(u.rs2);
        const uint64_t t = uopFinishIssue();
        const double a = asDouble(fpr_[u.rs1]);
        const double b = asDouble(fpr_[u.rs2]);
        double r = 0;
        int lat = fpu.addSub;
        switch (u.op) {
          case Op::FAddD: r = a + b; break;
          case Op::FSubD: r = a - b; break;
          case Op::FMulD: r = a * b; lat = fpu.mul; break;
          default: r = a / b; lat = fpu.divD; break;
        }
        fpr_[u.rd] = fromDouble(r);
        setFprReady(u.rd, t + lat);
        break;
      }

      case Op::FNegS: case Op::FNegD: case Op::FMv: {
        stats_.fpOps += 1;
        stallThisInsn_ = 0;
        useFpr(u.rs1);
        const uint64_t t = uopFinishIssue();
        if (u.op == Op::FNegS)
            fpr_[u.rd] = fromFloat(-asFloat(fpr_[u.rs1]));
        else if (u.op == Op::FNegD)
            fpr_[u.rd] = fromDouble(-asDouble(fpr_[u.rs1]));
        else
            fpr_[u.rd] = fpr_[u.rs1];
        setFprReady(u.rd, t + (u.op == Op::FMv ? fpu.move : fpu.addSub));
        break;
      }

      case Op::FCmpS: case Op::FCmpD: {
        stats_.fpOps += 1;
        stallThisInsn_ = 0;
        useFpr(u.rs1);
        useFpr(u.rs2);
        const uint64_t t = uopFinishIssue();
        const bool r =
            u.op == Op::FCmpS
                ? isa::evalCondFp(u.cond, asFloat(fpr_[u.rs1]),
                                  asFloat(fpr_[u.rs2]))
                : isa::evalCondFp(u.cond, asDouble(fpr_[u.rs1]),
                                  asDouble(fpr_[u.rs2]));
        fpStatus_ = r ? 1 : 0;
        statusReady_ = t + fpu.compare;
        break;
      }

      case Op::CvtSiSf: case Op::CvtSiDf: case Op::CvtSfDf:
      case Op::CvtDfSf: case Op::CvtSfSi: case Op::CvtDfSi: {
        stats_.fpOps += 1;
        stallThisInsn_ = 0;
        useFpr(u.rs1);
        const uint64_t t = uopFinishIssue();
        const uint64_t src = fpr_[u.rs1];
        uint64_t r = 0;
        switch (u.op) {
          case Op::CvtSiSf:
            r = fromFloat(static_cast<float>(
                static_cast<int32_t>(static_cast<uint32_t>(src))));
            break;
          case Op::CvtSiDf:
            r = fromDouble(static_cast<double>(
                static_cast<int32_t>(static_cast<uint32_t>(src))));
            break;
          case Op::CvtSfDf:
            r = fromDouble(static_cast<double>(asFloat(src)));
            break;
          case Op::CvtDfSf:
            r = fromFloat(static_cast<float>(asDouble(src)));
            break;
          case Op::CvtSfSi:
            r = static_cast<uint32_t>(
                static_cast<int32_t>(asFloat(src)));
            break;
          default:
            r = static_cast<uint32_t>(
                static_cast<int32_t>(asDouble(src)));
            break;
        }
        fpr_[u.rd] = r;
        setFprReady(u.rd, t + fpu.convert);
        break;
      }

      case Op::MifL: case Op::MifH: {
        stats_.fpOps += 1;
        stallThisInsn_ = 0;
        if (u.flags & Uop::ChkRs1)
            useGpr(u.rs1);
        useFpr(u.rd);  // partial update reads the other half
        const uint64_t t = uopFinishIssue();
        const uint64_t g = gpr_[u.rs1];
        if (u.op == Op::MifL)
            fpr_[u.rd] = (fpr_[u.rd] & 0xffffffff00000000ull) | g;
        else
            fpr_[u.rd] = (fpr_[u.rd] & 0xffffffffull) | (g << 32);
        setFprReady(u.rd, t + fpu.move);
        break;
      }

      case Op::MfiL: case Op::MfiH: {
        stats_.fpOps += 1;
        stallThisInsn_ = 0;
        useFpr(u.rs1);
        uopFinishIssue();
        const uint64_t f = fpr_[u.rs1];
        writeGpr(u.rd, u.op == Op::MfiL
                           ? static_cast<uint32_t>(f)
                           : static_cast<uint32_t>(f >> 32));
        break;
      }

      case Op::Trap:
        stats_.traps += 1;
        if (u.flags)
            uopGprStall(u);  // rs1 normalized to r2 at translation
        ++cycle_;
        doTrap(u.imm);
        return halted_;

      case Op::Rdsr:
        stallThisInsn_ = 0;
        useStatus();
        uopFinishIssue();
        writeGpr(u.rd, fpStatus_);
        break;

      case Op::Nop:
        ++cycle_;
        break;

      default:
        panic("block engine: unexpected op in a compiled block");
    }
    return false;
}

/**
 * Dispatch compiled blocks from pc_ until the machine halts (true) or
 * the current pc needs step() — unclaimed/misaligned pc, a NeedsStep
 * block, or an instruction-limit crossing (false). Entered only with
 * no delay slot or shadow pending; leaves none pending (every
 * compiled block either ends before its terminator or consumes the
 * shadow with its own slot).
 */
bool
Machine::runBlocks()
{
    const BlockProgram &bp = *blocks_;
    TraceSink *const sink = traceSink_;

    while (true) {
        if (pc_ == 0) {
            // Halt sentinel: the startup return address.
            halted_ = true;
            exitStatus_ = static_cast<int>(gpr_[2]);
            return true;
        }
        const int32_t id = bp.blockAt(pc_);
        if (id < 0)
            return false;
        const BlockProgram::Block &b = bp.block(id);
        if (b.needsStep)
            return false;

        const uint64_t n = b.count;
        if (stats_.instructions + n > limitCheckAt_) {
            // Crossing maxInstructions inside a block: hand the block
            // to step() so the limit fires at the precise instruction.
            if (stats_.instructions + n > config_.maxInstructions)
                return false;
            limitCheckAt_ = std::min(config_.maxInstructions,
                                     stats_.instructions +
                                         LimitCheckInterval);
        }
        stats_.instructions += n;
        blockInstructions_ += n;

        // Tracks how many of the block's n instructions have retired
        // (counting the one in flight), so both a mid-block halt trap
        // and a faulting uop (memory error -> FatalError) can back out
        // the unexecuted tail — step() counts the faulting instruction
        // and the block path must report identical stats.
        uint64_t executed = 0;
        try {

        const Uop *const body = bp.uops(b);
        const Uop *const end = body + b.uopCount;
        for (const Uop *u = body; u != end; ++u) {
            executed = static_cast<uint64_t>(u - body) + 1;
            if (execUop(*u)) {
                // Halt trap mid-block: back out the unexecuted tail.
                stats_.instructions -= n - executed;
                blockInstructions_ -= n - executed;
                // step() leaves pc_ just past a halting instruction.
                pc_ = b.startPc +
                      static_cast<uint32_t>(executed) *
                          static_cast<uint32_t>(target_->insnBytes());
                if (sink)
                    sink->onFetchChunk(b.startPc,
                                       static_cast<uint32_t>(executed));
                return true;
            }
        }

        if (!b.hasTerm) {
            // Straight-line block: fall through to the next address
            // (which may be pool data — then the next iteration's
            // lookup fails and step() takes over, as in step mode).
            pc_ = b.fallThroughPc;
            if (sink)
                sink->onFetchChunk(b.startPc, b.count);
            continue;
        }

        // Terminator: compute taken/target, then the folded delay
        // slot. takenBranches increments before the slot executes,
        // matching step()'s ordering.
        const Uop &cf = b.term;
        executed = b.uopCount + 1;
        stats_.branches += 1;
        bool taken = false;
        uint32_t target = 0;
        switch (cf.op) {
          case Op::Br:
            ++cycle_;
            taken = true;
            target = static_cast<uint32_t>(cf.imm);
            break;
          case Op::Bz: case Op::Bnz: {
            if (cf.flags)
                uopGprStall(cf);
            ++cycle_;
            const bool z = gpr_[cf.rs1] == 0;
            if (cf.op == Op::Bz ? z : !z) {
                taken = true;
                target = static_cast<uint32_t>(cf.imm);
            }
            break;
          }
          case Op::J:
            ++cycle_;
            taken = true;
            target = static_cast<uint32_t>(cf.imm);
            break;
          case Op::Jl:
            ++cycle_;
            taken = true;
            target = static_cast<uint32_t>(cf.imm);
            writeGpr(1, cf.aux);  // pre-bound link value
            break;
          case Op::Jr: case Op::Jlr:
            if (cf.flags)
                uopGprStall(cf);
            ++cycle_;
            taken = true;
            target = gpr_[cf.rs1];
            if (cf.op == Op::Jlr)
                writeGpr(1, cf.aux);
            break;
          case Op::Jrz: case Op::Jrnz: {
            if (cf.flags)
                uopGprStall(cf);
            ++cycle_;
            const bool z = gpr_[cf.rs2] == 0;
            if (cf.op == Op::Jrz ? z : !z) {
                taken = true;
                target = gpr_[cf.rs1];
            }
            break;
          }
          default:
            panic("block engine: bad terminator op");
        }
        if (taken)
            stats_.takenBranches += 1;

        executed = n;
        const bool slotHalted = execUop(b.slot);
        if (b.slotBubble)
            stats_.branchBubbles += 1;
        if (sink)
            sink->onFetchChunk(b.startPc, b.count);
        // On a delay-slot halt trap this matches step(), which applies
        // the pending redirect in its epilogue before noticing halted_.
        pc_ = taken ? target : b.fallThroughPc;
        if (slotHalted)
            return true;

        } catch (...) {
            // A faulting uop (memory error): restore the exact stats
            // and pc step() would report for the same fault — execute()
            // only advances pc_ in its epilogue, so step() faults with
            // pc_ still at the offending instruction.
            stats_.instructions -= n - executed;
            blockInstructions_ -= n - executed;
            if (executed)
                pc_ = b.startPc +
                      static_cast<uint32_t>(executed - 1) *
                          static_cast<uint32_t>(target_->insnBytes());
            throw;
        }
    }
}

} // namespace d16sim::sim
