/**
 * @file
 * DecodedText — an immutable predecoded view of an image's text
 * section.
 *
 * The table is built once per image (every InsnSite decoded eagerly)
 * and can be shared, read-only, by any number of Machines across
 * threads; the sweep engine builds one per build node so the dozens of
 * runs that share an image never re-decode it. Slots that hold no
 * emitted instruction (in-text constant pools, padding) stay invalid;
 * a machine that reaches one falls back to decoding the raw memory
 * word, preserving the exact pre-table behaviour for stray control
 * flow.
 */

#ifndef D16SIM_SIM_PREDECODE_HH
#define D16SIM_SIM_PREDECODE_HH

#include <cstdint>
#include <vector>

#include "asm/image.hh"
#include "isa/decoded.hh"

namespace d16sim::sim
{

class DecodedText
{
  public:
    explicit DecodedText(const assem::Image &image);

    uint32_t base() const { return base_; }

    /** log2(insnBytes): pc -> slot is (pc - base()) >> insnShift(). */
    unsigned insnShift() const { return shift_; }

    /** Number of slots (text bytes / instruction width). */
    uint32_t size() const { return static_cast<uint32_t>(insts_.size()); }

    /** True when the slot holds a decoded instruction (not pool data). */
    bool valid(uint32_t idx) const { return valid_[idx] != 0; }

    const isa::DecodedInst &at(uint32_t idx) const { return insts_[idx]; }

  private:
    uint32_t base_ = 0;
    unsigned shift_ = 2;
    std::vector<isa::DecodedInst> insts_;
    std::vector<uint8_t> valid_;
};

} // namespace d16sim::sim

#endif // D16SIM_SIM_PREDECODE_HH
