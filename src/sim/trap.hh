/**
 * @file
 * Trap (simulator service) codes shared by the compiler runtime and the
 * machine model. Arguments are passed in r2 (integers/pointers) or f2
 * (floating point); results return in r2.
 */

#ifndef D16SIM_SIM_TRAP_HH
#define D16SIM_SIM_TRAP_HH

namespace d16sim::sim
{

enum TrapCode : int
{
    TrapPrintInt = 1,   //!< print r2 as signed decimal
    TrapPrintChar = 2,  //!< print low byte of r2
    TrapPrintStr = 3,   //!< print NUL-terminated string at r2
    TrapPrintF64 = 4,   //!< print f2 as %.4f
    TrapHalt = 5,       //!< stop simulation; exit status in r2
    TrapAlloc = 6,      //!< r2 = bump-allocate r2 bytes (8-aligned)
    TrapPrintUint = 7,  //!< print r2 as unsigned decimal
};

} // namespace d16sim::sim

#endif // D16SIM_SIM_TRAP_HH
