/**
 * @file
 * Dynamic execution statistics (the paper's raw measures).
 *
 * `instructions` is the paper's *path length*; `loadInterlocks` +
 * `fpInterlocks` is the interlock count of Table 10; loads/stores feed
 * the data-traffic comparisons of Tables 3 and 9. Base cycles
 * (instructions + interlocks) combine with the memory models in
 * src/mem to produce the time-to-completion numbers of §4.
 */

#ifndef D16SIM_SIM_STATS_HH
#define D16SIM_SIM_STATS_HH

#include <cstdint>

namespace d16sim::sim
{

struct SimStats
{
    uint64_t instructions = 0;  //!< path length
    uint64_t loads = 0;         //!< incl. Ldc pool loads
    uint64_t stores = 0;
    uint64_t loadInterlocks = 0;  //!< delayed-load stall cycles
    uint64_t fpInterlocks = 0;    //!< math-unit stall cycles
    uint64_t branches = 0;        //!< branches + jumps executed
    uint64_t takenBranches = 0;
    uint64_t fpOps = 0;
    uint64_t traps = 0;

    /** Canonical nops executed in a branch/jump shadow (unfilled delay
     *  slots). Already included in `instructions`: a bubble is a wasted
     *  issue slot, not an extra stall — counted separately so static
     *  and dynamic cycle accounting share one taxonomy. */
    uint64_t branchBubbles = 0;

    /** Field-by-field equality (the block-engine differential gate). */
    bool operator==(const SimStats &) const = default;

    uint64_t interlocks() const { return loadInterlocks + fpInterlocks; }

    /** Cycles assuming a perfect memory system (no wait states). */
    uint64_t baseCycles() const { return instructions + interlocks(); }

    /** Total load/store operations (the paper's MemOps). */
    uint64_t memOps() const { return loads + stores; }

    double
    interlockRate() const
    {
        return instructions ? static_cast<double>(interlocks()) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

} // namespace d16sim::sim

#endif // D16SIM_SIM_STATS_HH
