#include "sim/predecode.hh"

#include "isa/codec.hh"
#include "support/error.hh"

namespace d16sim::sim
{

DecodedText::DecodedText(const assem::Image &image)
{
    panicIf(!image.target, "image has no target");
    const isa::TargetInfo &target = *image.target;
    const uint32_t ib = static_cast<uint32_t>(target.insnBytes());
    base_ = image.textBase;
    shift_ = ib == 2 ? 1 : 2;

    const uint32_t slots = (image.textSize + ib - 1) >> shift_;
    insts_.resize(slots);
    valid_.assign(slots, 0);

    for (const assem::InsnSite &site : image.insnSites) {
        const uint32_t off = site.addr - image.textBase;
        panicIf(off + ib > image.bytes.size(),
                "instruction site outside image bytes");
        uint32_t word = static_cast<uint32_t>(image.bytes[off]) |
                        (static_cast<uint32_t>(image.bytes[off + 1]) << 8);
        if (ib == 4) {
            word |= (static_cast<uint32_t>(image.bytes[off + 2]) << 16) |
                    (static_cast<uint32_t>(image.bytes[off + 3]) << 24);
        }
        const uint32_t idx = off >> shift_;
        insts_[idx] = isa::decode(target, word);
        valid_[idx] = 1;
    }
}

} // namespace d16sim::sim
