/**
 * @file
 * Observation interface for the pipeline simulator.
 *
 * Experiment harnesses attach probes to observe the dynamic
 * instruction/data reference streams without the machine knowing what
 * is being measured — fetch-buffer counters, cache models, and
 * instruction-mix classifiers are all probes.
 */

#ifndef D16SIM_SIM_PROBE_HH
#define D16SIM_SIM_PROBE_HH

#include <cstdint>

#include "isa/decoded.hh"

namespace d16sim::sim
{

class Probe
{
  public:
    virtual ~Probe() = default;

    /** An instruction at `pc` is being fetched. */
    virtual void onIFetch(uint32_t pc) { (void)pc; }

    /** An instruction has been decoded and will execute. */
    virtual void
    onExec(const isa::DecodedInst &inst, uint32_t pc)
    {
        (void)inst;
        (void)pc;
    }

    /** Data read of `size` bytes at `addr` (loads and Ldc). */
    virtual void
    onDataRead(uint32_t addr, int size)
    {
        (void)addr;
        (void)size;
    }

    /** Data write of `size` bytes at `addr`. */
    virtual void
    onDataWrite(uint32_t addr, int size)
    {
        (void)addr;
        (void)size;
    }

    /** The instruction at `pc` stalled `cycles` cycles before issuing;
     *  `fp` mirrors the machine's interlock attribution (true = math
     *  unit busy, false = delayed load). Only called when cycles > 0,
     *  after the instruction executed. */
    virtual void
    onStall(uint32_t pc, uint64_t cycles, bool fp)
    {
        (void)pc;
        (void)cycles;
        (void)fp;
    }
};

} // namespace d16sim::sim

#endif // D16SIM_SIM_PROBE_HH
