/**
 * @file
 * Compiler playground: compile a MiniC source file (or a built-in
 * sample) for any machine variant and dump the generated code as a
 * disassembly listing, plus the size/path/traffic numbers.
 *
 * Usage: ./build/examples/compiler_playground [file.mc] [variant]
 *   variant: d16 | dlxe | dlxe16 | dlxe16-2 | dlxe-2  (default: all)
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/toolchain.hh"
#include "isa/codec.hh"
#include "isa/disasm.hh"
#include "support/strings.hh"

using namespace d16sim;
using namespace d16sim::core;

namespace
{

const char *sample = R"(
int gcd(int a, int b) {
    while (b) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}
int main() {
    print_int(gcd(462, 1071));
    print_char('\n');
    return 0;
}
)";

mc::CompileOptions
variantByName(const std::string &name)
{
    if (name == "d16")
        return mc::CompileOptions::d16();
    if (name == "dlxe16")
        return mc::CompileOptions::dlxe(16, true);
    if (name == "dlxe16-2")
        return mc::CompileOptions::dlxe(16, false);
    if (name == "dlxe-2")
        return mc::CompileOptions::dlxe(32, false);
    return mc::CompileOptions::dlxe();
}

void
show(const std::string &source, const mc::CompileOptions &opts)
{
    const assem::Image img = build(source, opts);
    const isa::TargetInfo &t = opts.target();

    std::cout << "======== " << opts.name() << " ========\n";
    std::cout << "text " << img.textSize << " bytes, " << img.textInsns
              << " instructions; file " << img.sizeBytes() << " bytes\n\n";

    // Disassemble the text section up to the runtime library.
    const uint32_t stop =
        img.hasSymbol("__mul") ? img.symbol("__mul") : img.textBase +
                                                           img.textSize;
    uint32_t pc = img.textBase;
    const int ib = t.insnBytes();
    while (pc < stop) {
        // Print labels.
        for (const auto &[name, addr] : img.symbols) {
            if (addr == pc && name.rfind(".LP", 0) != 0)
                std::cout << name << ":\n";
        }
        uint32_t word = 0;
        for (int b = ib - 1; b >= 0; --b)
            word = (word << 8) | img.bytes[pc - img.textBase + b];
        std::string text;
        try {
            text = isa::disassemble(t, isa::decode(t, word), pc);
        } catch (const Error &) {
            text = ".word " + hexString(word);
        }
        std::cout << "  " << hexString(pc) << "  " << text << "\n";
        pc += ib;
    }

    const RunMeasurement m = run(img);
    std::cout << "\nruns: output \"" << m.output << "\", path length "
              << m.stats.instructions << ", interlocks "
              << m.stats.interlocks() << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string source = sample;
    if (argc > 1 && std::string(argv[1]) != "all") {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        source = ss.str();
    }
    if (argc > 2) {
        show(source, variantByName(argv[2]));
        return 0;
    }
    show(source, mc::CompileOptions::d16());
    show(source, mc::CompileOptions::dlxe());
    return 0;
}
