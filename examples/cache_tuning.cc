/**
 * @file
 * Cache tuning: the embedded-design question the paper motivates —
 * given a silicon budget, how much instruction cache does each
 * encoding need? Sweeps I-cache sizes for one workload and reports
 * the smallest cache where each machine reaches 95% of its
 * large-cache performance.
 *
 * Each machine is built and simulated exactly once: the run is
 * captured as a trace (core/replay) and every cache size is then
 * evaluated from the recorded reference streams in a single pass —
 * the same build-once/replay-many structure d16sweep uses.
 *
 * Usage: ./build/examples/cache_tuning [workload] [missPenalty]
 */

#include <iostream>

#include "core/replay/replay.hh"
#include "core/replay/trace.hh"
#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "support/table.hh"

using namespace d16sim;
using namespace d16sim::core;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "assem";
    const int missPenalty = argc > 2 ? std::atoi(argv[2]) : 8;
    const Workload &w = workload(name);

    std::cout << "Workload: " << name << " (" << w.description
              << "), miss penalty " << missPenalty << " cycles\n\n";

    Table t({"I-cache", "D16 CPI", "DLXe CPI", "D16 miss/insn",
             "DLXe miss/insn"});

    const std::vector<uint32_t> sizesKb = {1, 2, 4, 8, 16, 32};

    struct Point
    {
        uint32_t kb;
        double cpi[2];
        double missPerInsn[2];
    };
    std::vector<Point> points;
    points.reserve(sizesKb.size());
    for (uint32_t kb : sizesKb)
        points.push_back({kb, {0, 0}, {0, 0}});

    // Build and simulate each machine once; every cache size is
    // evaluated from the captured trace in one pass.
    int idx = 0;
    for (const auto &opts :
         {mc::CompileOptions::d16(), mc::CompileOptions::dlxe()}) {
        const auto img = build(w.source, opts);
        const replay::Trace trace = replay::capture(img);

        std::vector<replay::CacheEval> evals(sizesKb.size());
        for (size_t i = 0; i < sizesKb.size(); ++i) {
            mem::CacheConfig cfg;
            cfg.sizeBytes = sizesKb[i] * 1024;
            cfg.blockBytes = 32;
            cfg.subBlockBytes = 8;
            evals[i].icache = cfg;
            evals[i].dcache = cfg;
        }
        replay::replayCaches(trace, evals);

        for (size_t i = 0; i < evals.size(); ++i) {
            const uint64_t cycles =
                cyclesWithCache(trace.base.stats, missPenalty,
                                evals[i].icacheStats,
                                evals[i].dcacheStats);
            const double insns = static_cast<double>(
                trace.base.stats.instructions);
            points[i].cpi[idx] = static_cast<double>(cycles) / insns;
            points[i].missPerInsn[idx] =
                static_cast<double>(evals[i].icacheStats.misses()) /
                insns;
        }
        ++idx;
    }

    for (const Point &pt : points) {
        t.addRow({std::to_string(pt.kb) + "K", fixed(pt.cpi[0], 2),
                  fixed(pt.cpi[1], 2), fixed(pt.missPerInsn[0], 4),
                  fixed(pt.missPerInsn[1], 4)});
    }
    t.print(std::cout);

    // Smallest cache achieving 95% of the 32K performance.
    for (int idx = 0; idx < 2; ++idx) {
        const double best = points.back().cpi[idx];
        for (const Point &pt : points) {
            if (pt.cpi[idx] <= best / 0.95) {
                std::cout << (idx == 0 ? "D16" : "DLXe")
                          << " reaches 95% of peak with a " << pt.kb
                          << "K instruction cache\n";
                break;
            }
        }
    }
    std::cout << "\nByte for byte, the 16-bit encoding fits twice the "
                 "instructions per cache line\n(paper §4.1): it "
                 "typically needs half the cache for the same hit "
                 "rate.\n";
    return 0;
}
