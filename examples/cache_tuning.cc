/**
 * @file
 * Cache tuning: the embedded-design question the paper motivates —
 * given a silicon budget, how much instruction cache does each
 * encoding need? Sweeps I-cache sizes for one workload and reports
 * the smallest cache where each machine reaches 95% of its
 * large-cache performance.
 *
 * Usage: ./build/examples/cache_tuning [workload] [missPenalty]
 */

#include <iostream>

#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "support/table.hh"

using namespace d16sim;
using namespace d16sim::core;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "assem";
    const int missPenalty = argc > 2 ? std::atoi(argv[2]) : 8;
    const Workload &w = workload(name);

    std::cout << "Workload: " << name << " (" << w.description
              << "), miss penalty " << missPenalty << " cycles\n\n";

    Table t({"I-cache", "D16 CPI", "DLXe CPI", "D16 miss/insn",
             "DLXe miss/insn"});

    struct Point
    {
        uint32_t kb;
        double cpi[2];
    };
    std::vector<Point> points;

    for (uint32_t kb : {1u, 2u, 4u, 8u, 16u, 32u}) {
        Point pt{kb, {0, 0}};
        std::vector<std::string> row = {std::to_string(kb) + "K"};
        std::vector<std::string> missCols;
        int idx = 0;
        for (const auto &opts :
             {mc::CompileOptions::d16(), mc::CompileOptions::dlxe()}) {
            mem::CacheConfig cfg;
            cfg.sizeBytes = kb * 1024;
            cfg.blockBytes = 32;
            cfg.subBlockBytes = 8;
            CacheProbe probe(cfg, cfg);
            const auto img = build(w.source, opts);
            const auto m = run(img, {&probe});
            const uint64_t cycles =
                cyclesWithCache(m.stats, missPenalty,
                                probe.icache().stats(),
                                probe.dcache().stats());
            pt.cpi[idx] =
                static_cast<double>(cycles) / m.stats.instructions;
            row.push_back(fixed(pt.cpi[idx], 2));
            missCols.push_back(fixed(
                static_cast<double>(probe.icache().stats().misses()) /
                    m.stats.instructions,
                4));
            ++idx;
        }
        row.insert(row.end(), missCols.begin(), missCols.end());
        t.addRow(std::move(row));
        points.push_back(pt);
    }
    t.print(std::cout);

    // Smallest cache achieving 95% of the 32K performance.
    for (int idx = 0; idx < 2; ++idx) {
        const double best = points.back().cpi[idx];
        for (const Point &pt : points) {
            if (pt.cpi[idx] <= best / 0.95) {
                std::cout << (idx == 0 ? "D16" : "DLXe")
                          << " reaches 95% of peak with a " << pt.kb
                          << "K instruction cache\n";
                break;
            }
        }
    }
    std::cout << "\nByte for byte, the 16-bit encoding fits twice the "
                 "instructions per cache line\n(paper §4.1): it "
                 "typically needs half the cache for the same hit "
                 "rate.\n";
    return 0;
}
