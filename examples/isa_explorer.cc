/**
 * @file
 * ISA explorer: assembles a snippet for both machines and dumps the
 * encodings side by side — a concrete view of the 16-bit format's
 * restrictions (two-address ties, r0-targeted compares, pooled
 * constants) against the roomy 32-bit format.
 *
 * Usage: ./build/examples/isa_explorer [file.s]
 *        (no argument: uses a built-in snippet appropriate per ISA)
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hh"
#include "asm/parser.hh"
#include "isa/codec.hh"
#include "isa/disasm.hh"
#include "support/strings.hh"

using namespace d16sim;

namespace
{

const char *d16Snippet = R"(
    .align 4
pool:
    .word 100000
main:
    mvi r2, 0
    mvi r3, 10
loop:
    add r2, r3          ; two-address: r2 += r3
    subi r3, 1
    cmp.ne r3, r2       ; result goes to at (r0)
    bnz loop
    nop
    ldc pool            ; large constant from the pool
    add r2, at
    ret
    nop
)";

const char *dlxeSnippet = R"(
main:
    mvi r2, 0
    mvi r3, 10
loop:
    add r2, r2, r3      ; three-address
    subi r3, r3, 1
    cmp.ne r4, r3, r2   ; any destination register
    bnz r4, loop
    nop
    mvhi r5, 1          ; large constant via mvhi/ori
    ori r5, r5, 34464
    add r2, r2, r5
    ret
    nop
)";

void
dump(const isa::TargetInfo &target, const std::string &source)
{
    assem::Assembler as(target);
    as.add(assem::parseAsm(target, source));
    const assem::Image img = as.link();

    std::cout << "---- " << target.name() << ": " << img.textSize
              << " bytes of text, " << img.textInsns
              << " instructions ----\n";
    uint32_t pc = img.textBase;
    const int ib = target.insnBytes();
    while (pc < img.textBase + img.textSize) {
        for (const auto &[name, addr] : img.symbols) {
            if (addr == pc)
                std::cout << name << ":\n";
        }
        uint32_t word = 0;
        for (int b = ib - 1; b >= 0; --b)
            word = (word << 8) | img.bytes[pc - img.textBase + b];
        std::string text;
        try {
            const isa::DecodedInst d = isa::decode(target, word);
            text = isa::disassemble(target, d, pc);
        } catch (const Error &) {
            text = "(data)";
        }
        std::cout << hexString(pc) << "  "
                  << hexString(word, ib * 2) << "  " << text << "\n";
        pc += ib;
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        // User-provided source is assembled for both machines; it must
        // use the portable subset.
        dump(isa::TargetInfo::d16(), ss.str());
        dump(isa::TargetInfo::dlxe(), ss.str());
        return 0;
    }
    dump(isa::TargetInfo::d16(), d16Snippet);
    dump(isa::TargetInfo::dlxe(), dlxeSnippet);
    std::cout << "Note how the D16 loop body is half the bytes, needs "
                 "the at register\nfor compares, and reaches big "
                 "constants through a PC-relative pool.\n";
    return 0;
}
