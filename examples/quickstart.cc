/**
 * @file
 * Quickstart: compile one MiniC program for both instruction sets,
 * simulate it, and print the paper's headline comparison — static
 * size, path length, instruction traffic, and cacheless cycles at one
 * wait state.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/toolchain.hh"

using namespace d16sim;
using namespace d16sim::core;

namespace
{

const char *program = R"(
int primes(int limit) {
    int count = 0, n, d;
    for (n = 2; n < limit; n++) {
        int prime = 1;
        for (d = 2; d * d <= n; d++)
            if (n % d == 0) { prime = 0; break; }
        count += prime;
    }
    return count;
}
int main() {
    print_str("primes(2000)=");
    print_int(primes(2000));
    print_char('\n');
    return 0;
}
)";

} // namespace

int
main()
{
    std::cout << "Compiling the same program for D16 (16-bit) and DLXe "
                 "(32-bit)...\n\n";

    for (const auto &opts :
         {mc::CompileOptions::d16(), mc::CompileOptions::dlxe()}) {
        const assem::Image image = build(program, opts);
        FetchBufferProbe fetch(4);  // 32-bit fetch bus
        const RunMeasurement m = run(image, {&fetch});

        std::cout << "---- " << opts.name() << " ----\n";
        std::cout << "program output:      " << m.output;
        std::cout << "static size:         " << m.sizeBytes << " bytes ("
                  << m.textInsns << " instructions)\n";
        std::cout << "path length:         " << m.stats.instructions
                  << " instructions\n";
        std::cout << "interlock cycles:    " << m.stats.interlocks()
                  << "\n";
        std::cout << "instruction traffic: " << fetch.words()
                  << " bus words\n";
        std::cout << "cycles (1 wait state): "
                  << cyclesNoCache(m.stats, 1, fetch.requests()) << "\n\n";
    }

    std::cout << "The 16-bit encoding runs more instructions but "
                 "fetches far fewer words;\nwith any nonzero memory "
                 "latency that wins (the paper's central result).\n";
    return 0;
}
