#!/bin/sh
# Performance benchmark: timed d16sweep runs (replay on and off) plus
# the bench_micro microbenchmarks, emitting one machine-readable
# measurement entry.
#
#   scripts/bench.sh                 smoke matrix (fast)
#   scripts/bench.sh --full          full experiment matrix
#   scripts/bench.sh --out FILE      write JSON here
#                                    (default build/bench_sweep.json)
#   scripts/bench.sh --label NAME    label recorded in the entry
#   JOBS=N ...                       worker threads (default nproc)
#
# The entry's "sweep" object is the engine's own per-phase accounting
# (wall clock split into build / simulate / replay, instructions
# simulated, sim MIPS); "sweepNoReplay" is the same matrix with every
# job re-simulated, so their wall-clock ratio is the measured replay
# speedup; "sweepNoBlocks" is the same matrix (replay on) with
# --no-block-engine, so sweep.simMips / sweepNoBlocks.simMips is the
# measured block-engine speedup over per-instruction step dispatch.
# Entries in this format are appended to the committed
# BENCH_sweep.json history. Requires jq.
#
# Run from the repository root. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}

MATRIX=smoke
OUT=build/bench_sweep.json
LABEL=""
while [ $# -gt 0 ]; do
    case "$1" in
      --full) MATRIX=full ;;
      --out) OUT=$2; shift ;;
      --label) LABEL=$2; shift ;;
      *) echo "bench.sh: unknown option $1" >&2; exit 2 ;;
    esac
    shift
done
[ -n "$LABEL" ] || LABEL="$MATRIX matrix"

SMOKE_FLAG=""
[ "$MATRIX" = smoke ] && SMOKE_FLAG="--smoke"

echo "== build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target d16sweep bench_micro

echo "== d16sweep: $MATRIX matrix, replay on, $JOBS threads =="
# shellcheck disable=SC2086  # SMOKE_FLAG is intentionally word-split
./build/tools/d16sweep $SMOKE_FLAG --jobs "$JOBS" \
    --json build/bench_replay.json

echo "== d16sweep: $MATRIX matrix, replay off (A/B baseline) =="
# shellcheck disable=SC2086
./build/tools/d16sweep $SMOKE_FLAG --jobs "$JOBS" --no-replay \
    --json build/bench_noreplay.json

# Replay stays on so this leg simulates the same job set as "sweep"
# (base runs + trace captures): the simMips ratio isolates the block
# engine instead of being diluted by probe-attached step jobs.
echo "== d16sweep: $MATRIX matrix, block engine off (A/B baseline) =="
# shellcheck disable=SC2086
./build/tools/d16sweep $SMOKE_FLAG --jobs "$JOBS" \
    --no-block-engine --json build/bench_noblocks.json

echo "== bench_micro =="
./build/bench/bench_micro --benchmark_format=console \
    --benchmark_out_format=json --benchmark_out=build/bench_micro.json

jq -n \
    --arg lbl "$LABEL" \
    --arg matrix "$MATRIX" \
    --argjson jobs "$JOBS" \
    --slurpfile replay build/bench_replay.json \
    --slurpfile noreplay build/bench_noreplay.json \
    --slurpfile noblocks build/bench_noblocks.json \
    --slurpfile micro build/bench_micro.json \
    '{
        "label": $lbl,
        "matrix": $matrix,
        "jobs": $jobs,
        "sweep": $replay[0].timing,
        "sweepNoReplay": $noreplay[0].timing,
        "sweepNoBlocks": $noblocks[0].timing,
        "replaySpeedup": (if $replay[0].timing.wallSeconds > 0
                          then ($noreplay[0].timing.wallSeconds /
                                $replay[0].timing.wallSeconds)
                          else 0 end),
        "blockSpeedup": (if $noblocks[0].timing.simMips > 0
                         then ($replay[0].timing.simMips /
                               $noblocks[0].timing.simMips)
                         else 0 end),
        "micro": ($micro[0].benchmarks
                  | map({"key": .name,
                         "value": {"realTime": .real_time,
                                   "timeUnit": .time_unit}})
                  | from_entries)
     }' > "$OUT"

echo "bench.sh: wrote $OUT"
jq -r '"bench.sh: \(.label): wall \(.sweep.wallSeconds | . * 100 | round / 100)s with replay (build \(.sweep.buildSeconds | . * 100 | round / 100)s + simulate \(.sweep.simulateSeconds | . * 100 | round / 100)s + replay \(.sweep.replaySeconds | . * 100 | round / 100)s), \(.sweepNoReplay.wallSeconds | . * 100 | round / 100)s without, speedup \(.replaySpeedup * 100 | round / 100)x, \(.sweep.simMips | . * 10 | round / 10) sim MIPS (block engine \(.blockSpeedup * 100 | round / 100)x over step)"' "$OUT"
