#!/bin/sh
# CI gate: tier-1 build + tests, sanitizer build + tests, and the
# toolchain verification layer over every workload on both targets.
#
#   scripts/check.sh            run everything
#   SKIP_SANITIZE=1 ...         skip the ASan/UBSan and TSan builds
#                               (fast local run)
#
# Run from the repository root. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 2)

echo "== tier 1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier 1: tests =="
ctest --test-dir build -j "$JOBS" --output-on-failure

echo "== lint: clang-tidy (skips if unavailable) =="
cmake --build build --target lint

echo "== d16lint: workloads x {D16, DLXe}, --verify-each --cfg =="
./build/tools/d16lint --verify-each --cfg --json > build/lint.json
echo "   wrote build/lint.json ($(wc -c < build/lint.json) bytes)"

echo "== d16cfa: binary CFG analysis, workloads x {D16, DLXe} x opt =="
for opt in 0 1 2; do
    ./build/tools/d16cfa --opt "$opt" --jobs "$JOBS" > /dev/null
done

echo "== d16cfa: static/dynamic cross-validation (smoke matrix) =="
./build/tools/d16cfa --smoke --cross-validate --jobs "$JOBS" > /dev/null

echo "== d16timing: static timing vs simulator (smoke matrix) =="
./build/tools/d16timing --smoke --cross-validate --jobs "$JOBS" > /dev/null

echo "== d16sweep: smoke matrix vs golden (trace replay on) =="
./build/tools/d16sweep --smoke --jobs "$JOBS" \
    --json build/sweep.json --golden tests/golden/sweep_golden.json

echo "== d16sweep: smoke matrix vs golden, --no-replay (A/B) =="
./build/tools/d16sweep --smoke --jobs "$JOBS" --no-replay \
    --json build/sweep_noreplay.json \
    --golden tests/golden/sweep_golden.json

echo "== d16sweep: smoke matrix vs golden, --no-block-engine (A/B) =="
./build/tools/d16sweep --smoke --jobs "$JOBS" --no-block-engine \
    --json build/sweep_noblocks.json \
    --golden tests/golden/sweep_golden.json

echo "== d16fuzz: corpus replay + 200-seed differential fuzz =="
# Each seed is a three-way differential: oracle vs step dispatch vs
# the block-compiled threaded-code engine (output, exit status, and
# every SimStats counter).
./build/tools/d16fuzz --corpus tests/corpus --seeds 200 --jobs "$JOBS"

if [ "${SKIP_SANITIZE:-0}" != "1" ]; then
    echo "== sanitizers: ASan + UBSan build =="
    cmake -B build-asan -S . -DD16SIM_SANITIZE=ON >/dev/null
    cmake --build build-asan -j "$JOBS"

    echo "== sanitizers: tests =="
    ctest --test-dir build-asan -j "$JOBS" --output-on-failure

    echo "== sanitizers: d16fuzz corpus replay + 50-seed fuzz =="
    ./build-asan/tools/d16fuzz --corpus tests/corpus --seeds 50 \
        --jobs "$JOBS"

    # The threaded paths (sweep/timing/fuzz worker pools, trace
    # replay) get a dedicated TSan build: ASan and TSan can't share a
    # binary, and the single-threaded tier-1 tests would not exercise
    # the races TSan exists to catch.
    echo "== sanitizers: TSan build =="
    cmake -B build-tsan -S . -DD16SIM_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$JOBS"

    # Block-compiled dispatch is on by default, so this also races the
    # shared BlockProgram across 8 workers under TSan.
    echo "== sanitizers: TSan d16sweep smoke, 8 workers =="
    ./build-tsan/tools/d16sweep --smoke --jobs 8 \
        --json build-tsan/sweep.json \
        --golden tests/golden/sweep_golden.json

    echo "== sanitizers: TSan d16fuzz 24-seed burst =="
    ./build-tsan/tools/d16fuzz --seeds 24 --jobs 8
fi

echo "check.sh: all gates passed"
