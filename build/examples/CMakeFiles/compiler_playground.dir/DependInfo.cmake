
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/compiler_playground.cc" "examples/CMakeFiles/compiler_playground.dir/compiler_playground.cc.o" "gcc" "examples/CMakeFiles/compiler_playground.dir/compiler_playground.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/d16_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/d16_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d16_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/d16_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/d16_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/d16_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/d16_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
