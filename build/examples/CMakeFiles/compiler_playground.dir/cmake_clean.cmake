file(REMOVE_RECURSE
  "CMakeFiles/compiler_playground.dir/compiler_playground.cc.o"
  "CMakeFiles/compiler_playground.dir/compiler_playground.cc.o.d"
  "compiler_playground"
  "compiler_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
