# Empty dependencies file for d16_mem.
# This may be replaced when dependencies are built.
