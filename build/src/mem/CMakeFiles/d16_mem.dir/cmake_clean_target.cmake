file(REMOVE_RECURSE
  "libd16_mem.a"
)
