file(REMOVE_RECURSE
  "CMakeFiles/d16_mem.dir/cache.cc.o"
  "CMakeFiles/d16_mem.dir/cache.cc.o.d"
  "libd16_mem.a"
  "libd16_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d16_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
