file(REMOVE_RECURSE
  "libd16_sim.a"
)
