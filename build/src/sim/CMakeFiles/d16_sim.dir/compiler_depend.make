# Empty compiler generated dependencies file for d16_sim.
# This may be replaced when dependencies are built.
