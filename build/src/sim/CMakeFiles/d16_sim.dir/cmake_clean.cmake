file(REMOVE_RECURSE
  "CMakeFiles/d16_sim.dir/machine.cc.o"
  "CMakeFiles/d16_sim.dir/machine.cc.o.d"
  "libd16_sim.a"
  "libd16_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d16_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
