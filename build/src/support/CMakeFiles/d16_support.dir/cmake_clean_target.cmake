file(REMOVE_RECURSE
  "libd16_support.a"
)
