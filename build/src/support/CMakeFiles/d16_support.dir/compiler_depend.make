# Empty compiler generated dependencies file for d16_support.
# This may be replaced when dependencies are built.
