file(REMOVE_RECURSE
  "CMakeFiles/d16_support.dir/strings.cc.o"
  "CMakeFiles/d16_support.dir/strings.cc.o.d"
  "CMakeFiles/d16_support.dir/table.cc.o"
  "CMakeFiles/d16_support.dir/table.cc.o.d"
  "libd16_support.a"
  "libd16_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d16_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
