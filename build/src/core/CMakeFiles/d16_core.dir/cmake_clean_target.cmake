file(REMOVE_RECURSE
  "libd16_core.a"
)
