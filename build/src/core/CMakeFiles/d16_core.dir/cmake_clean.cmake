file(REMOVE_RECURSE
  "CMakeFiles/d16_core.dir/toolchain.cc.o"
  "CMakeFiles/d16_core.dir/toolchain.cc.o.d"
  "CMakeFiles/d16_core.dir/workloads.cc.o"
  "CMakeFiles/d16_core.dir/workloads.cc.o.d"
  "libd16_core.a"
  "libd16_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d16_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
