# Empty dependencies file for d16_core.
# This may be replaced when dependencies are built.
