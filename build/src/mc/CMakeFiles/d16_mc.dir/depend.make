# Empty dependencies file for d16_mc.
# This may be replaced when dependencies are built.
