file(REMOVE_RECURSE
  "libd16_mc.a"
)
