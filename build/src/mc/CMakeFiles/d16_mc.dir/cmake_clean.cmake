file(REMOVE_RECURSE
  "CMakeFiles/d16_mc.dir/codegen.cc.o"
  "CMakeFiles/d16_mc.dir/codegen.cc.o.d"
  "CMakeFiles/d16_mc.dir/compiler.cc.o"
  "CMakeFiles/d16_mc.dir/compiler.cc.o.d"
  "CMakeFiles/d16_mc.dir/ir.cc.o"
  "CMakeFiles/d16_mc.dir/ir.cc.o.d"
  "CMakeFiles/d16_mc.dir/irgen.cc.o"
  "CMakeFiles/d16_mc.dir/irgen.cc.o.d"
  "CMakeFiles/d16_mc.dir/legalize.cc.o"
  "CMakeFiles/d16_mc.dir/legalize.cc.o.d"
  "CMakeFiles/d16_mc.dir/lexer.cc.o"
  "CMakeFiles/d16_mc.dir/lexer.cc.o.d"
  "CMakeFiles/d16_mc.dir/liveness.cc.o"
  "CMakeFiles/d16_mc.dir/liveness.cc.o.d"
  "CMakeFiles/d16_mc.dir/machine_env.cc.o"
  "CMakeFiles/d16_mc.dir/machine_env.cc.o.d"
  "CMakeFiles/d16_mc.dir/opt.cc.o"
  "CMakeFiles/d16_mc.dir/opt.cc.o.d"
  "CMakeFiles/d16_mc.dir/parser.cc.o"
  "CMakeFiles/d16_mc.dir/parser.cc.o.d"
  "CMakeFiles/d16_mc.dir/regalloc.cc.o"
  "CMakeFiles/d16_mc.dir/regalloc.cc.o.d"
  "CMakeFiles/d16_mc.dir/runtime.cc.o"
  "CMakeFiles/d16_mc.dir/runtime.cc.o.d"
  "CMakeFiles/d16_mc.dir/sched.cc.o"
  "CMakeFiles/d16_mc.dir/sched.cc.o.d"
  "CMakeFiles/d16_mc.dir/sema.cc.o"
  "CMakeFiles/d16_mc.dir/sema.cc.o.d"
  "CMakeFiles/d16_mc.dir/type.cc.o"
  "CMakeFiles/d16_mc.dir/type.cc.o.d"
  "libd16_mc.a"
  "libd16_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d16_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
