
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/codegen.cc" "src/mc/CMakeFiles/d16_mc.dir/codegen.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/codegen.cc.o.d"
  "/root/repo/src/mc/compiler.cc" "src/mc/CMakeFiles/d16_mc.dir/compiler.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/compiler.cc.o.d"
  "/root/repo/src/mc/ir.cc" "src/mc/CMakeFiles/d16_mc.dir/ir.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/ir.cc.o.d"
  "/root/repo/src/mc/irgen.cc" "src/mc/CMakeFiles/d16_mc.dir/irgen.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/irgen.cc.o.d"
  "/root/repo/src/mc/legalize.cc" "src/mc/CMakeFiles/d16_mc.dir/legalize.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/legalize.cc.o.d"
  "/root/repo/src/mc/lexer.cc" "src/mc/CMakeFiles/d16_mc.dir/lexer.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/lexer.cc.o.d"
  "/root/repo/src/mc/liveness.cc" "src/mc/CMakeFiles/d16_mc.dir/liveness.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/liveness.cc.o.d"
  "/root/repo/src/mc/machine_env.cc" "src/mc/CMakeFiles/d16_mc.dir/machine_env.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/machine_env.cc.o.d"
  "/root/repo/src/mc/opt.cc" "src/mc/CMakeFiles/d16_mc.dir/opt.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/opt.cc.o.d"
  "/root/repo/src/mc/parser.cc" "src/mc/CMakeFiles/d16_mc.dir/parser.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/parser.cc.o.d"
  "/root/repo/src/mc/regalloc.cc" "src/mc/CMakeFiles/d16_mc.dir/regalloc.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/regalloc.cc.o.d"
  "/root/repo/src/mc/runtime.cc" "src/mc/CMakeFiles/d16_mc.dir/runtime.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/runtime.cc.o.d"
  "/root/repo/src/mc/sched.cc" "src/mc/CMakeFiles/d16_mc.dir/sched.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/sched.cc.o.d"
  "/root/repo/src/mc/sema.cc" "src/mc/CMakeFiles/d16_mc.dir/sema.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/sema.cc.o.d"
  "/root/repo/src/mc/type.cc" "src/mc/CMakeFiles/d16_mc.dir/type.cc.o" "gcc" "src/mc/CMakeFiles/d16_mc.dir/type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/d16_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/d16_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/d16_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
