file(REMOVE_RECURSE
  "libd16_isa.a"
)
