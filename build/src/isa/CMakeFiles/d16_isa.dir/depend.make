# Empty dependencies file for d16_isa.
# This may be replaced when dependencies are built.
