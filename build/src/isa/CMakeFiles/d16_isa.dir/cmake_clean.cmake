file(REMOVE_RECURSE
  "CMakeFiles/d16_isa.dir/cond.cc.o"
  "CMakeFiles/d16_isa.dir/cond.cc.o.d"
  "CMakeFiles/d16_isa.dir/d16_codec.cc.o"
  "CMakeFiles/d16_isa.dir/d16_codec.cc.o.d"
  "CMakeFiles/d16_isa.dir/disasm.cc.o"
  "CMakeFiles/d16_isa.dir/disasm.cc.o.d"
  "CMakeFiles/d16_isa.dir/dlxe_codec.cc.o"
  "CMakeFiles/d16_isa.dir/dlxe_codec.cc.o.d"
  "CMakeFiles/d16_isa.dir/operation.cc.o"
  "CMakeFiles/d16_isa.dir/operation.cc.o.d"
  "CMakeFiles/d16_isa.dir/target.cc.o"
  "CMakeFiles/d16_isa.dir/target.cc.o.d"
  "libd16_isa.a"
  "libd16_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d16_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
