
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/cond.cc" "src/isa/CMakeFiles/d16_isa.dir/cond.cc.o" "gcc" "src/isa/CMakeFiles/d16_isa.dir/cond.cc.o.d"
  "/root/repo/src/isa/d16_codec.cc" "src/isa/CMakeFiles/d16_isa.dir/d16_codec.cc.o" "gcc" "src/isa/CMakeFiles/d16_isa.dir/d16_codec.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/isa/CMakeFiles/d16_isa.dir/disasm.cc.o" "gcc" "src/isa/CMakeFiles/d16_isa.dir/disasm.cc.o.d"
  "/root/repo/src/isa/dlxe_codec.cc" "src/isa/CMakeFiles/d16_isa.dir/dlxe_codec.cc.o" "gcc" "src/isa/CMakeFiles/d16_isa.dir/dlxe_codec.cc.o.d"
  "/root/repo/src/isa/operation.cc" "src/isa/CMakeFiles/d16_isa.dir/operation.cc.o" "gcc" "src/isa/CMakeFiles/d16_isa.dir/operation.cc.o.d"
  "/root/repo/src/isa/target.cc" "src/isa/CMakeFiles/d16_isa.dir/target.cc.o" "gcc" "src/isa/CMakeFiles/d16_isa.dir/target.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/d16_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
