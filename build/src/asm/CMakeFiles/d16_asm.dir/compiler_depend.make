# Empty compiler generated dependencies file for d16_asm.
# This may be replaced when dependencies are built.
