file(REMOVE_RECURSE
  "CMakeFiles/d16_asm.dir/assembler.cc.o"
  "CMakeFiles/d16_asm.dir/assembler.cc.o.d"
  "CMakeFiles/d16_asm.dir/parser.cc.o"
  "CMakeFiles/d16_asm.dir/parser.cc.o.d"
  "libd16_asm.a"
  "libd16_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d16_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
