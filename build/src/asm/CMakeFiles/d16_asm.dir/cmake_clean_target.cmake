file(REMOVE_RECURSE
  "libd16_asm.a"
)
