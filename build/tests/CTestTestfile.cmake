# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(isa_test "/root/repo/build/tests/isa_test")
set_tests_properties(isa_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(asm_test "/root/repo/build/tests/asm_test")
set_tests_properties(asm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cache_test "/root/repo/build/tests/cache_test")
set_tests_properties(cache_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mc_front_test "/root/repo/build/tests/mc_front_test")
set_tests_properties(mc_front_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;22;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mc_compile_test "/root/repo/build/tests/mc_compile_test")
set_tests_properties(mc_compile_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;25;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;28;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;31;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mc_back_test "/root/repo/build/tests/mc_back_test")
set_tests_properties(mc_back_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;34;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;37;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(isa_property_test "/root/repo/build/tests/isa_property_test")
set_tests_properties(isa_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;40;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sched_test "/root/repo/build/tests/sched_test")
set_tests_properties(sched_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;43;add_d16_test;/root/repo/tests/CMakeLists.txt;0;")
