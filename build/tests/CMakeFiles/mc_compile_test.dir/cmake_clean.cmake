file(REMOVE_RECURSE
  "CMakeFiles/mc_compile_test.dir/mc_compile_test.cc.o"
  "CMakeFiles/mc_compile_test.dir/mc_compile_test.cc.o.d"
  "mc_compile_test"
  "mc_compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
