# Empty compiler generated dependencies file for mc_compile_test.
# This may be replaced when dependencies are built.
