file(REMOVE_RECURSE
  "CMakeFiles/mc_back_test.dir/mc_back_test.cc.o"
  "CMakeFiles/mc_back_test.dir/mc_back_test.cc.o.d"
  "mc_back_test"
  "mc_back_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_back_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
