# Empty compiler generated dependencies file for mc_back_test.
# This may be replaced when dependencies are built.
