file(REMOVE_RECURSE
  "CMakeFiles/isa_property_test.dir/isa_property_test.cc.o"
  "CMakeFiles/isa_property_test.dir/isa_property_test.cc.o.d"
  "isa_property_test"
  "isa_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
