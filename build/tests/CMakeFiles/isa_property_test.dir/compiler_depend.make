# Empty compiler generated dependencies file for isa_property_test.
# This may be replaced when dependencies are built.
