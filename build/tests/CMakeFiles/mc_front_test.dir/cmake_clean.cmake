file(REMOVE_RECURSE
  "CMakeFiles/mc_front_test.dir/mc_front_test.cc.o"
  "CMakeFiles/mc_front_test.dir/mc_front_test.cc.o.d"
  "mc_front_test"
  "mc_front_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_front_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
