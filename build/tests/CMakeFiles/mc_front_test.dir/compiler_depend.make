# Empty compiler generated dependencies file for mc_front_test.
# This may be replaced when dependencies are built.
