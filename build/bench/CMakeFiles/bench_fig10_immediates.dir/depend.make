# Empty dependencies file for bench_fig10_immediates.
# This may be replaced when dependencies are built.
