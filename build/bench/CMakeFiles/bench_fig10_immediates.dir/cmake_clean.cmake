file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_immediates.dir/bench_fig10_immediates.cc.o"
  "CMakeFiles/bench_fig10_immediates.dir/bench_fig10_immediates.cc.o.d"
  "bench_fig10_immediates"
  "bench_fig10_immediates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_immediates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
