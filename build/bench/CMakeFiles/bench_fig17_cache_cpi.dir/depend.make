# Empty dependencies file for bench_fig17_cache_cpi.
# This may be replaced when dependencies are built.
