file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_cache_cpi.dir/bench_fig17_cache_cpi.cc.o"
  "CMakeFiles/bench_fig17_cache_cpi.dir/bench_fig17_cache_cpi.cc.o.d"
  "bench_fig17_cache_cpi"
  "bench_fig17_cache_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_cache_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
