file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_twoaddr.dir/bench_fig08_twoaddr.cc.o"
  "CMakeFiles/bench_fig08_twoaddr.dir/bench_fig08_twoaddr.cc.o.d"
  "bench_fig08_twoaddr"
  "bench_fig08_twoaddr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_twoaddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
