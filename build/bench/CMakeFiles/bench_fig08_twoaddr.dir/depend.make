# Empty dependencies file for bench_fig08_twoaddr.
# This may be replaced when dependencies are built.
