file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_summary.dir/bench_fig11_summary.cc.o"
  "CMakeFiles/bench_fig11_summary.dir/bench_fig11_summary.cc.o.d"
  "bench_fig11_summary"
  "bench_fig11_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
