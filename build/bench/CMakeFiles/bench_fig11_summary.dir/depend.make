# Empty dependencies file for bench_fig11_summary.
# This may be replaced when dependencies are built.
