file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_regfile.dir/bench_fig06_regfile.cc.o"
  "CMakeFiles/bench_fig06_regfile.dir/bench_fig06_regfile.cc.o.d"
  "bench_fig06_regfile"
  "bench_fig06_regfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
