# Empty compiler generated dependencies file for bench_fig05_pathlength.
# This may be replaced when dependencies are built.
