file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_pathlength.dir/bench_fig05_pathlength.cc.o"
  "CMakeFiles/bench_fig05_pathlength.dir/bench_fig05_pathlength.cc.o.d"
  "bench_fig05_pathlength"
  "bench_fig05_pathlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_pathlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
