file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_missrates.dir/bench_fig16_missrates.cc.o"
  "CMakeFiles/bench_fig16_missrates.dir/bench_fig16_missrates.cc.o.d"
  "bench_fig16_missrates"
  "bench_fig16_missrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_missrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
