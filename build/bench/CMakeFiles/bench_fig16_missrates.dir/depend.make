# Empty dependencies file for bench_fig16_missrates.
# This may be replaced when dependencies are built.
