file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_cache_traffic.dir/bench_fig19_cache_traffic.cc.o"
  "CMakeFiles/bench_fig19_cache_traffic.dir/bench_fig19_cache_traffic.cc.o.d"
  "bench_fig19_cache_traffic"
  "bench_fig19_cache_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_cache_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
