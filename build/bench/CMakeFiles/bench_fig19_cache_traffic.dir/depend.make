# Empty dependencies file for bench_fig19_cache_traffic.
# This may be replaced when dependencies are built.
