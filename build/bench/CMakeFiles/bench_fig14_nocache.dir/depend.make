# Empty dependencies file for bench_fig14_nocache.
# This may be replaced when dependencies are built.
