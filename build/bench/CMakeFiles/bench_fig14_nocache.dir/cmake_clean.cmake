file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_nocache.dir/bench_fig14_nocache.cc.o"
  "CMakeFiles/bench_fig14_nocache.dir/bench_fig14_nocache.cc.o.d"
  "bench_fig14_nocache"
  "bench_fig14_nocache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_nocache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
