/**
 * @file
 * Tests for the MiniC reference interpreter (the oracle), the
 * differential driver, and the delta-debugging minimizer.
 *
 * The oracle is the independent ground truth the fuzzer compares the
 * whole toolchain against, so its pinned semantics are unit-tested
 * directly, and then the oracle itself is cross-checked against the
 * simulator over the full paper workload suite: two implementations
 * that share nothing below the type-checked AST must agree exactly.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "fuzz/fuzz.hh"
#include "oracle/interp.hh"

namespace
{

using namespace d16sim;
using oracle::Outcome;

oracle::RunResult
run(const std::string &src)
{
    return oracle::interpretSource(src);
}

std::string
wrapMain(const std::string &body)
{
    return "int main() {\n" + body + "\n  return 0;\n}\n";
}

// ---------------------------------------------------------------------
// Pinned semantics
// ---------------------------------------------------------------------

TEST(Oracle, WraparoundArithmetic)
{
    const auto r = run(wrapMain(R"(
  int m = -2147483647 - 1;
  print_int(m - 1); print_char(' ');
  print_int(2147483647 + 1); print_char(' ');
  print_int(65537 * 65537); print_char(' ');
  print_int(-m);
)"));
    ASSERT_EQ(r.outcome, Outcome::Exit);
    EXPECT_EQ(r.output, "2147483647 -2147483648 131073 -2147483648");
}

TEST(Oracle, ShiftCountsMaskToFiveBits)
{
    const auto r = run(wrapMain(R"(
  int k = 33;
  print_int(1 << k); print_char(' ');
  print_int(1 << 32); print_char(' ');
  print_int(-8 >> 33); print_char(' ');
  unsigned u = 2147483648u;
  print_uint(u >> -1);
)"));
    ASSERT_EQ(r.outcome, Outcome::Exit);
    EXPECT_EQ(r.output, "2 1 -4 1");
}

TEST(Oracle, TruncatingDivision)
{
    const auto r = run(wrapMain(R"(
  print_int(-7 / 2); print_char(' ');
  print_int(-7 % 2); print_char(' ');
  print_int(7 / -2); print_char(' ');
  print_int(7 % -2);
)"));
    ASSERT_EQ(r.outcome, Outcome::Exit);
    EXPECT_EQ(r.output, "-3 -1 -3 1");
}

TEST(Oracle, DivisionTrapsArePinned)
{
    const auto zero = run(wrapMain("  int z = 0;\n  print_int(5 / z);"));
    EXPECT_EQ(zero.outcome, Outcome::Trap) << zero.output;

    const auto remZero = run(wrapMain("  int z = 0;\n  print_int(5 % z);"));
    EXPECT_EQ(remZero.outcome, Outcome::Trap);

    const auto ovf = run(wrapMain(
        "  int m = -2147483647 - 1;\n  int n = -1;\n  print_int(m / n);"));
    EXPECT_EQ(ovf.outcome, Outcome::Trap);

    const auto remOvf = run(wrapMain(
        "  int m = -2147483647 - 1;\n  int n = -1;\n  print_int(m % n);"));
    EXPECT_EQ(remOvf.outcome, Outcome::Trap);
}

TEST(Oracle, CharIsSignedAndNarrowing)
{
    const auto r = run(wrapMain(R"(
  char c = (char)200;
  print_int(c); print_char(' ');
  print_int((char)256); print_char(' ');
  print_int((char)384); print_char(' ');
  c = (char)127; c++;
  print_int(c);
)"));
    ASSERT_EQ(r.outcome, Outcome::Exit);
    EXPECT_EQ(r.output, "-56 0 -128 -128");
}

TEST(Oracle, FloatToIntTruncatesOrTraps)
{
    const auto ok = run(wrapMain(R"(
  double d = 3.9;
  print_int((int)d); print_char(' ');
  print_int((int)-3.9); print_char(' ');
  print_int((int)2147483600.0);
)"));
    ASSERT_EQ(ok.outcome, Outcome::Exit);
    EXPECT_EQ(ok.output, "3 -3 2147483600");

    const auto nan = run(wrapMain(
        "  double z = 0.0;\n  double n = z / z;\n  print_int((int)n);"));
    EXPECT_EQ(nan.outcome, Outcome::Trap);

    const auto big = run(wrapMain(
        "  double d = 4000000000.0;\n  print_int((int)d);"));
    EXPECT_EQ(big.outcome, Outcome::Trap);
}

TEST(Oracle, MemorySafetyTraps)
{
    const auto oob = run(wrapMain(
        "  int a[4];\n  int i = 9;\n  a[i] = 1;\n  print_int(a[0]);"));
    EXPECT_EQ(oob.outcome, Outcome::Trap);

    const auto nullDeref = run(wrapMain(
        "  int *p = (int *)0;\n  print_int(*p);"));
    EXPECT_EQ(nullDeref.outcome, Outcome::Trap);
}

TEST(Oracle, StepLimitIsALimitNotATrap)
{
    oracle::Limits lim;
    lim.maxSteps = 1000;
    const auto r = oracle::interpretSource(
        wrapMain("  int i;\n  for (i = 0; i >= 0; i++) ;"), lim);
    EXPECT_EQ(r.outcome, Outcome::Limit);
}

// ---------------------------------------------------------------------
// Oracle vs simulator over the whole paper suite
// ---------------------------------------------------------------------

TEST(Oracle, MatchesSimulatorOnEveryWorkload)
{
    for (const core::Workload &w : core::workloadSuite()) {
        SCOPED_TRACE(w.name);
        const auto ref = oracle::interpretSource(w.source);
        ASSERT_EQ(ref.outcome, Outcome::Exit) << w.name << ": "
                                              << ref.reason;
        const auto m =
            core::buildAndRun(w.source, mc::CompileOptions::d16());
        EXPECT_EQ(ref.output, m.output) << w.name;
        EXPECT_EQ(ref.exitStatus, m.exitStatus) << w.name;
    }
}

// ---------------------------------------------------------------------
// Generator, differential driver, and minimizer
// ---------------------------------------------------------------------

TEST(Fuzz, GeneratorIsDeterministic)
{
    EXPECT_EQ(fuzz::generateProgram(7), fuzz::generateProgram(7));
    EXPECT_NE(fuzz::generateProgram(7), fuzz::generateProgram(8));
}

TEST(Fuzz, SmokeSeedsAllAgree)
{
    int agree = 0;
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        const auto out =
            fuzz::runDifferential(fuzz::generateProgram(seed));
        EXPECT_NE(out.kind, fuzz::DiffKind::Divergence)
            << "seed " << seed << ": " << out.detail;
        if (out.kind == fuzz::DiffKind::Agree)
            ++agree;
    }
    // The generator is built to emit fully-defined programs; a high
    // skip rate would silently gut the fuzzer's coverage.
    EXPECT_GE(agree, 20);
}

TEST(Fuzz, MinimizerShrinksDeterministically)
{
    // The predicate keys on the oracle's result, standing in for a
    // real divergence: "still prints -56" plays the role of "still
    // miscompiles".  The fat program pads the essential two lines
    // with removable noise.
    std::string fat;
    fat += "int unused_global = 5;\n";
    fat += "int helper(int x) { return x * 3; }\n";
    fat += "int main() {\n";
    for (int i = 0; i < 20; ++i)
        fat += "  int pad" + std::to_string(i) + " = " +
               std::to_string(i) + ";\n";
    fat += "  print_int((char)200);\n";
    fat += "  return 0;\n";
    fat += "}\n";

    const auto interesting = [](const std::string &src) {
        try {
            const auto r = oracle::interpretSource(src);
            return r.outcome == Outcome::Exit &&
                   r.output.find("-56") != std::string::npos;
        } catch (const FatalError &) {
            return false;  // no longer parses: not interesting
        }
    };

    ASSERT_TRUE(interesting(fat));
    const std::string small1 = fuzz::minimizeLines(fat, interesting);
    const std::string small2 = fuzz::minimizeLines(fat, interesting);
    EXPECT_EQ(small1, small2);
    EXPECT_TRUE(interesting(small1));
    const auto lines =
        static_cast<int>(std::count(small1.begin(), small1.end(), '\n'));
    EXPECT_LE(lines, 4) << small1;
}

// ---------------------------------------------------------------------
// Checked-in corpus
// ---------------------------------------------------------------------

TEST(Corpus, EveryReproducerReplaysClean)
{
    namespace fs = std::filesystem;
    int replayed = 0;
    for (const auto &entry : fs::directory_iterator(D16SIM_CORPUS_DIR)) {
        if (entry.path().extension() != ".c")
            continue;
        SCOPED_TRACE(entry.path().filename().string());
        std::ifstream in(entry.path());
        std::stringstream ss;
        ss << in.rdbuf();
        const auto out = fuzz::runDifferential(ss.str());
        EXPECT_EQ(out.kind, fuzz::DiffKind::Agree) << out.detail;
        ++replayed;
    }
    // The corpus holds one reproducer per miscompile this layer has
    // caught; an empty directory means the gate is vacuous.
    EXPECT_GE(replayed, 5);
}

} // namespace
