/**
 * @file
 * Assembler and parser tests: layout, symbols, relocation, and D16
 * branch relaxation.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "asm/parser.hh"
#include "isa/codec.hh"
#include "support/bits.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::assem;
using namespace d16sim::isa;

Image
assemble(const TargetInfo &t, std::string_view src,
         uint32_t base = kDefaultTextBase)
{
    Assembler as(t);
    as.add(parseAsm(t, src));
    return as.link(base);
}

uint32_t
fetchWord(const Image &img, uint32_t addr)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | img.bytes[addr - img.textBase + i];
    return v;
}

uint16_t
fetchHalf(const Image &img, uint32_t addr)
{
    return static_cast<uint16_t>(img.bytes[addr - img.textBase] |
                                 (img.bytes[addr - img.textBase + 1] << 8));
}

TEST(Parser, BasicDLXeProgram)
{
    const auto items = parseAsm(TargetInfo::dlxe(), R"(
; comment line
main:
    addi sp, sp, -16     # trailing comment
    add r5, r6, r7
    ld r3, 8(sp)
    st r3, 0(gp)
    bz r5, main
    jl main
    ret
)");
    // 1 label + 7 instructions.
    ASSERT_EQ(items.size(), 8u);
    EXPECT_EQ(items[0].kind, ItemKind::Label);
    EXPECT_EQ(items[0].name, "main");
    EXPECT_EQ(items[1].inst.op, Op::AddI);
    EXPECT_EQ(items[1].inst.imm, -16);
    EXPECT_EQ(items[2].inst.op, Op::Add);
    EXPECT_EQ(items[2].inst.rd, 5);
    EXPECT_EQ(items[3].inst.op, Op::Ld);
    EXPECT_EQ(items[3].inst.rs1, 31);
    EXPECT_EQ(items[4].inst.op, Op::St);
    EXPECT_EQ(items[4].inst.rs2, 3);
    EXPECT_EQ(items[4].inst.rs1, 30);
    EXPECT_EQ(items[5].inst.op, Op::Bz);
    EXPECT_EQ(items[5].inst.label, "main");
    EXPECT_EQ(items[6].inst.op, Op::Jl);
    EXPECT_EQ(items[7].inst.op, Op::Jr);  // ret
    EXPECT_EQ(items[7].inst.rs1, 1);
}

TEST(Parser, D16TwoAddressForms)
{
    const auto items = parseAsm(TargetInfo::d16(), R"(
    add r3, r4
    addi r3, 5
    cmp.lt r3, r4
    bz loop
    ldc pool
    mvi r2, 'a'
loop:
pool:
)");
    EXPECT_EQ(items[0].inst.op, Op::Add);
    EXPECT_EQ(items[0].inst.rd, 3);
    EXPECT_EQ(items[0].inst.rs1, 3);
    EXPECT_EQ(items[0].inst.rs2, 4);
    EXPECT_EQ(items[1].inst.op, Op::AddI);
    EXPECT_EQ(items[1].inst.rd, 3);
    EXPECT_EQ(items[2].inst.op, Op::Cmp);
    EXPECT_EQ(items[2].inst.cond, Cond::Lt);
    EXPECT_EQ(items[2].inst.rd, 0);
    EXPECT_EQ(items[3].inst.op, Op::Bz);
    EXPECT_EQ(items[3].inst.rs1, 0);
    EXPECT_EQ(items[4].inst.op, Op::Ldc);
    EXPECT_EQ(items[4].inst.reloc, Reloc::PcRel);
    EXPECT_EQ(items[5].inst.op, Op::MvI);
    EXPECT_EQ(items[5].inst.imm, 'a');
}

TEST(Parser, FpAndCompareMnemonics)
{
    const auto items = parseAsm(TargetInfo::dlxe(), R"(
    add.df f1, f2, f3
    cmp.le.sf f4, f5
    cmpi.geu r7, r8, 100
    si2df f1, f2
    mif.l f3, r9
    mfi.h r9, f3
)");
    EXPECT_EQ(items[0].inst.op, Op::FAddD);
    EXPECT_EQ(items[1].inst.op, Op::FCmpS);
    EXPECT_EQ(items[1].inst.cond, Cond::Le);
    EXPECT_EQ(items[2].inst.op, Op::CmpI);
    EXPECT_EQ(items[2].inst.cond, Cond::Geu);
    EXPECT_EQ(items[2].inst.imm, 100);
    EXPECT_EQ(items[3].inst.op, Op::CvtSiDf);
    EXPECT_EQ(items[4].inst.op, Op::MifL);
    EXPECT_EQ(items[4].inst.rd, 3);
    EXPECT_EQ(items[4].inst.rs1, 9);
    EXPECT_EQ(items[5].inst.op, Op::MfiH);
}

TEST(Parser, Directives)
{
    const auto items = parseAsm(TargetInfo::dlxe(), R"(
    .data
vals: .word 1, -2, 0x10, vals, vals+8
s:    .asciz "hi\n"
    .byte 1, 2, 3
    .half 256
    .space 12
    .align 4
    .global main
)");
    EXPECT_EQ(items[0].kind, ItemKind::SectionData);
    EXPECT_EQ(items[2].kind, ItemKind::Word);
    ASSERT_EQ(items[2].values.size(), 5u);
    EXPECT_EQ(items[2].values[1].value, -2);
    EXPECT_EQ(items[2].values[3].label, "vals");
    EXPECT_EQ(items[2].values[4].label, "vals");
    EXPECT_EQ(items[2].values[4].value, 8);
    EXPECT_EQ(items[4].kind, ItemKind::Ascii);
    EXPECT_EQ(items[4].str, "hi\n");
    EXPECT_EQ(items[5].kind, ItemKind::Byte);
    EXPECT_EQ(items[6].kind, ItemKind::Half);
    EXPECT_EQ(items[7].kind, ItemKind::Space);
    EXPECT_EQ(items[7].amount, 12);
    EXPECT_EQ(items[8].kind, ItemKind::Align);
}

TEST(Parser, Errors)
{
    const TargetInfo &t = TargetInfo::dlxe();
    EXPECT_THROW(parseAsm(t, "bogus r1, r2"), FatalError);
    EXPECT_THROW(parseAsm(t, "add r1"), FatalError);
    EXPECT_THROW(parseAsm(t, "ld r1, r2"), FatalError);
    EXPECT_THROW(parseAsm(t, ".word"), FatalError);
    EXPECT_THROW(parseAsm(t, ".align 3"), FatalError);
    EXPECT_THROW(parseAsm(t, "add r1, r2, r99"), FatalError);
    // D16 cannot name r16+.
    EXPECT_THROW(parseAsm(TargetInfo::d16(), "mv r3, r16"), FatalError);
}

TEST(Assembler, LayoutAndSymbols)
{
    const Image img = assemble(TargetInfo::dlxe(), R"(
main:
    addi sp, sp, -8
    ret
    .data
x:  .word 42
y:  .word 7, 8
)");
    EXPECT_EQ(img.textBase, kDefaultTextBase);
    EXPECT_EQ(img.textSize, 8u);  // two 4-byte instructions
    EXPECT_EQ(img.symbol("main"), kDefaultTextBase);
    EXPECT_EQ(img.entry, kDefaultTextBase);
    EXPECT_EQ(img.dataBase, roundUp(kDefaultTextBase + 8, 16));
    EXPECT_EQ(img.symbol("x"), img.dataBase);
    EXPECT_EQ(img.symbol("y"), img.dataBase + 4);
    EXPECT_EQ(img.dataSize, 12u);
    EXPECT_EQ(img.sizeBytes(), img.textSize + img.dataSize);
    EXPECT_EQ(img.textInsns, 2u);
    EXPECT_EQ(fetchWord(img, img.symbol("x")), 42u);
    EXPECT_EQ(fetchWord(img, img.symbol("y") + 4), 8u);
}

TEST(Assembler, DataSymbolRelocation)
{
    const Image img = assemble(TargetInfo::dlxe(), R"(
main:
    ret
    .data
p:  .word q+4
q:  .word 0
)");
    EXPECT_EQ(fetchWord(img, img.symbol("p")), img.symbol("q") + 4);
}

TEST(Assembler, BranchTargetsResolve)
{
    const Image img = assemble(TargetInfo::dlxe(), R"(
main:
    bz r3, done
    add r1, r1, r1
done:
    ret
)");
    const DecodedInst bz = dlxeDecode(fetchWord(img, img.textBase));
    EXPECT_EQ(bz.op, Op::Bz);
    EXPECT_EQ(bz.imm, 8);  // two instructions ahead
}

TEST(Assembler, HiLoRelocation)
{
    const Image img = assemble(TargetInfo::dlxe(), R"(
main:
    mvhi r4, hi(buf)
    ori r4, r4, lo(buf)
    ret
    .data
    .space 70000
buf: .word 0
)");
    const uint32_t addr = img.symbol("buf");
    const DecodedInst hi = dlxeDecode(fetchWord(img, img.textBase));
    const DecodedInst lo = dlxeDecode(fetchWord(img, img.textBase + 4));
    EXPECT_EQ(hi.op, Op::MvHI);
    EXPECT_EQ(lo.op, Op::OrI);
    EXPECT_EQ((static_cast<uint32_t>(hi.imm) << 16) |
                  static_cast<uint32_t>(lo.imm),
              addr);
}

TEST(Assembler, D16LdcPoolResolution)
{
    const Image img = assemble(TargetInfo::d16(), R"(
    .align 4
pool: .word target
main:
    ldc pool
    jr at
target:
    ret
)");
    const uint32_t main = img.symbol("main");
    const DecodedInst ldc = d16Decode(fetchHalf(img, main));
    EXPECT_EQ(ldc.op, Op::Ldc);
    // Effective address = (pc & ~3) + imm must hit the pool.
    EXPECT_EQ((main & ~3u) + static_cast<uint32_t>(ldc.imm),
              img.symbol("pool"));
    // The pool word contains target's absolute address.
    EXPECT_EQ(fetchWord(img, img.symbol("pool")), img.symbol("target"));
}

TEST(Assembler, D16CondBranchRelaxation)
{
    // Conditional branch over > 1 KB of code must be relaxed into an
    // inverted branch plus an unconditional branch.
    std::string src = "main:\n    bz far\n";
    for (int i = 0; i < 600; ++i)
        src += "    add r2, r3\n";
    src += "far:\n    ret\n";
    const Image img = assemble(TargetInfo::d16(), src);

    const DecodedInst first = d16Decode(fetchHalf(img, img.textBase));
    const DecodedInst slot = d16Decode(fetchHalf(img, img.textBase + 2));
    const DecodedInst third = d16Decode(fetchHalf(img, img.textBase + 4));
    EXPECT_EQ(first.op, Op::Bnz);  // inverted
    // Skips the far branch and lands in its delay slot; the inverted
    // branch's own delay slot holds a nop (a transfer may not sit in a
    // delay slot).
    EXPECT_EQ(first.imm, 6);
    EXPECT_EQ(slot.op, Op::Mv);  // the D16 nop encoding (mv r0, r0)
    EXPECT_EQ(third.op, Op::Br);
    EXPECT_EQ(img.textBase + 4 + static_cast<uint32_t>(third.imm),
              img.symbol("far"));
    // 600 + relaxed triple + ret.
    EXPECT_EQ(img.textInsns, 604u);
}

TEST(Assembler, D16UnconditionalOutOfRangeIsFatal)
{
    std::string src = "main:\n    br far\n";
    for (int i = 0; i < 1200; ++i)
        src += "    add r2, r3\n";
    src += "far:\n    ret\n";
    EXPECT_THROW(assemble(TargetInfo::d16(), src), FatalError);
}

TEST(Assembler, DLXeLongBranchNoRelaxationNeeded)
{
    std::string src = "main:\n    bz r3, far\n";
    for (int i = 0; i < 600; ++i)
        src += "    add r2, r2, r3\n";
    src += "far:\n    ret\n";
    const Image img = assemble(TargetInfo::dlxe(), src);
    const DecodedInst bz = dlxeDecode(fetchWord(img, img.textBase));
    EXPECT_EQ(bz.op, Op::Bz);
    EXPECT_EQ(bz.imm, 601 * 4);
}

TEST(Assembler, UndefinedSymbolIsFatal)
{
    EXPECT_THROW(assemble(TargetInfo::dlxe(), "main:\n  bz r1, nowhere\n"),
                 FatalError);
    EXPECT_THROW(assemble(TargetInfo::dlxe(),
                          "main:\n  ret\n  .data\np: .word nothing\n"),
                 FatalError);
}

TEST(Assembler, DuplicateLabelIsFatal)
{
    EXPECT_THROW(assemble(TargetInfo::dlxe(), "a:\na:\n  ret\n"),
                 FatalError);
}

TEST(Assembler, InstructionAlignmentAfterAscii)
{
    // An odd-length string in text must not misalign instructions.
    const Image img = assemble(TargetInfo::dlxe(), R"(
main:
    ret
s:  .asciz "ab"
next:
    nop
)");
    EXPECT_EQ(img.symbol("next") % 4, 0u);
}

TEST(Assembler, MviAbsoluteSymbol)
{
    const Image img = assemble(TargetInfo::dlxe(), R"(
main:
    mvi r2, x
    ret
    .data
x:  .word 5
)");
    const DecodedInst mvi = dlxeDecode(fetchWord(img, img.textBase));
    EXPECT_EQ(mvi.op, Op::AddI);
    EXPECT_EQ(static_cast<uint32_t>(mvi.imm), img.symbol("x"));
}

} // namespace
