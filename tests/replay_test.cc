/**
 * @file
 * Trace-replay tests: replay-vs-direct equivalence over the smoke
 * matrix (exact CacheStats and CPI for every cache variant), binary
 * round-trip of the D16T format, and the truncated/corrupt-trace
 * error paths.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <vector>

#include "core/replay/replay.hh"
#include "core/replay/trace.hh"
#include "core/sweep/sweep.hh"
#include "core/toolchain.hh"
#include "core/workloads.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::core;
using mc::CompileOptions;
using replay::Trace;

/** A small program with loops (taken branches), loads and stores of
 *  several sizes — enough structure to exercise every trace record. */
constexpr const char *kProgram = R"(
int sums[8];
char bytes[16];

int main() {
    int i;
    int j;
    int acc;
    acc = 0;
    for (i = 0; i < 16; i = i + 1)
        bytes[i] = i * 3;
    for (i = 0; i < 8; i = i + 1) {
        for (j = 0; j < 16; j = j + 1)
            acc = acc + bytes[j];
        sums[i] = acc;
    }
    print_int(acc);
    return 0;
}
)";

Trace
captureProgram(const CompileOptions &opts)
{
    const assem::Image image = build(kProgram, opts);
    return replay::capture(image);
}

// ----- capture basics -------------------------------------------------

TEST(TraceCapture, StreamsCrossCheckWithMeasurement)
{
    for (const CompileOptions &opts :
         {CompileOptions::d16(), CompileOptions::dlxe()}) {
        const Trace t = captureProgram(opts);
        EXPECT_EQ(t.insnBytes,
                  static_cast<uint32_t>(opts.target().insnBytes()));
        // Every executed instruction is one recorded fetch...
        EXPECT_EQ(t.fetchCount(), t.base.stats.instructions);
        // ...and every load/store is one recorded data access.
        EXPECT_EQ(t.accesses.size(), t.base.stats.memOps());
        // Run-length encoding only breaks at taken branches, so the
        // run count is bounded by taken branches + 1.
        EXPECT_LE(t.runs.size(), t.base.stats.takenBranches + 1);
        EXPECT_GT(t.runs.size(), 1u);
    }
}

TEST(TraceCapture, MeasurementMatchesProbelessRun)
{
    // Probes never perturb execution: the capture run's measurement is
    // identical to a probe-less run of the same image.
    const assem::Image image = build(kProgram, CompileOptions::d16());
    const RunMeasurement direct = run(image);
    const Trace t = replay::capture(image);
    EXPECT_EQ(t.base.output, direct.output);
    EXPECT_EQ(t.base.exitStatus, direct.exitStatus);
    EXPECT_EQ(t.base.stats.instructions, direct.stats.instructions);
    EXPECT_EQ(t.base.stats.baseCycles(), direct.stats.baseCycles());
    EXPECT_EQ(t.base.stats.memOps(), direct.stats.memOps());
}

// ----- replay equivalence ---------------------------------------------

/** Feed the trace through a live-simulation CacheProbe equivalent and
 *  through the replay evaluator; both must agree bit-for-bit. */
void
expectCacheEquivalence(const assem::Image &image, const Trace &trace,
                       const mem::CacheConfig &icfg,
                       const mem::CacheConfig &dcfg)
{
    CacheProbe probe(icfg, dcfg);
    probe.setInsnBytes(static_cast<int>(trace.insnBytes));
    run(image, {&probe});

    const auto [istats, dstats] = replay::replayCache(trace, icfg, dcfg);

    const mem::CacheStats &di = probe.icache().stats();
    const mem::CacheStats &dd = probe.dcache().stats();
    EXPECT_EQ(istats.reads, di.reads);
    EXPECT_EQ(istats.readMisses, di.readMisses);
    EXPECT_EQ(istats.wordsIn, di.wordsIn);
    EXPECT_EQ(istats.wordsOut, di.wordsOut);
    EXPECT_EQ(dstats.reads, dd.reads);
    EXPECT_EQ(dstats.writes, dd.writes);
    EXPECT_EQ(dstats.readMisses, dd.readMisses);
    EXPECT_EQ(dstats.writeMisses, dd.writeMisses);
    EXPECT_EQ(dstats.wordsIn, dd.wordsIn);
    EXPECT_EQ(dstats.wordsOut, dd.wordsOut);
}

TEST(Replay, CacheStatsMatchDirectSimulation)
{
    for (const CompileOptions &opts :
         {CompileOptions::d16(), CompileOptions::dlxe()}) {
        const assem::Image image = build(kProgram, opts);
        const Trace trace = replay::capture(image);
        // Tiny caches force conflict misses and write-backs.
        for (uint32_t size : {256u, 1024u}) {
            mem::CacheConfig cfg;
            cfg.sizeBytes = size;
            cfg.blockBytes = 16;
            cfg.subBlockBytes = 8;
            expectCacheEquivalence(image, trace, cfg, cfg);
        }
    }
}

TEST(Replay, FetchRequestsMatchDirectSimulation)
{
    const assem::Image image = build(kProgram, CompileOptions::d16());
    const Trace trace = replay::capture(image);
    for (uint32_t bus : {4u, 8u}) {
        FetchBufferProbe probe(bus);
        run(image, {&probe});
        EXPECT_EQ(replay::replayFetchRequests(trace, bus),
                  probe.requests())
            << "bus " << bus;
    }
}

TEST(Replay, SinglePassMatchesIndependentPasses)
{
    const assem::Image image = build(kProgram, CompileOptions::d16());
    const Trace trace = replay::capture(image);

    std::vector<replay::CacheEval> evals(3);
    for (size_t i = 0; i < evals.size(); ++i) {
        evals[i].icache.sizeBytes = 256u << i;
        evals[i].icache.blockBytes = 16;
        evals[i].dcache = evals[i].icache;
    }
    replay::replayCaches(trace, evals);

    for (const replay::CacheEval &e : evals) {
        const auto [istats, dstats] =
            replay::replayCache(trace, e.icache, e.dcache);
        EXPECT_EQ(e.icacheStats.misses(), istats.misses());
        EXPECT_EQ(e.icacheStats.wordsTransferred(),
                  istats.wordsTransferred());
        EXPECT_EQ(e.dcacheStats.misses(), dstats.misses());
        EXPECT_EQ(e.dcacheStats.wordsTransferred(),
                  dstats.wordsTransferred());
    }
}

TEST(Replay, SmokeMatrixJobsMatchDirectExecution)
{
    // The acceptance check behind the golden gate: every replayable
    // job of the golden-regression matrix evaluates from a trace to a
    // result bit-identical to direct simulation — same canonical JSON,
    // same CacheStats, same CPI.
    std::map<std::string, std::vector<sweep::JobSpec>> groups;
    for (sweep::JobSpec &j : sweep::smokeMatrix()) {
        if (j.probe == sweep::ProbeKind::None ||
            !sweep::replayable(j)) {
            continue;
        }
        groups[sweep::buildKey(j)].push_back(std::move(j));
    }
    ASSERT_FALSE(groups.empty());

    int checked = 0;
    for (const auto &[key, specs] : groups) {
        const assem::Image image =
            build(workload(specs.front().workload).source,
                  specs.front().opts);
        const Trace trace = replay::capture(image);
        for (const sweep::JobSpec &spec : specs) {
            const sweep::JobResult direct =
                sweep::executeJob(spec, image);
            const sweep::JobResult replayed =
                sweep::replayJob(spec, trace);
            // Canonical JSON covers the run measurement and every
            // probe metric the sweep document publishes.
            EXPECT_EQ(replayed.json().dump(), direct.json().dump())
                << sweep::jobKey(spec);
            if (spec.probe == sweep::ProbeKind::CacheSim) {
                // CPI from the §4.1 formula must agree exactly too.
                for (int penalty : {8, 16}) {
                    EXPECT_EQ(
                        cyclesWithCache(replayed.run.stats, penalty,
                                        replayed.icache,
                                        replayed.dcache),
                        cyclesWithCache(direct.run.stats, penalty,
                                        direct.icache, direct.dcache))
                        << sweep::jobKey(spec);
                }
            }
            ++checked;
        }
    }
    EXPECT_GE(checked, 4);
}

// ----- binary round-trip ----------------------------------------------

TEST(TraceFormat, SerializeDeserializeRoundTripsByteExactly)
{
    for (const CompileOptions &opts :
         {CompileOptions::d16(), CompileOptions::dlxe()}) {
        const Trace t = captureProgram(opts);
        const std::vector<uint8_t> bytes = t.serialize();
        const Trace back = Trace::deserialize(bytes);

        EXPECT_EQ(back.insnBytes, t.insnBytes);
        ASSERT_EQ(back.runs.size(), t.runs.size());
        ASSERT_EQ(back.accesses.size(), t.accesses.size());
        EXPECT_EQ(back.fetchCount(), t.fetchCount());
        // Re-serializing the parsed trace reproduces the bytes.
        EXPECT_EQ(back.serialize(), bytes);
    }
}

TEST(TraceFormat, FileRoundTrip)
{
    const Trace t = captureProgram(CompileOptions::d16());
    const std::string path = ::testing::TempDir() + "replay_test.d16t";
    t.writeFile(path);
    const Trace back = Trace::readFile(path);
    EXPECT_EQ(back.serialize(), t.serialize());
    std::remove(path.c_str());
}

// ----- error paths ----------------------------------------------------

TEST(TraceFormat, RejectsTruncatedTrace)
{
    std::vector<uint8_t> bytes =
        captureProgram(CompileOptions::d16()).serialize();
    // Chop anywhere: header, mid-stream, or just the trailer.
    for (size_t keep : {size_t{0}, size_t{3}, bytes.size() / 2,
                        bytes.size() - 1}) {
        std::vector<uint8_t> cut(bytes.begin(),
                                 bytes.begin() +
                                     static_cast<long>(keep));
        EXPECT_THROW(Trace::deserialize(cut), FatalError)
            << "kept " << keep << " bytes";
    }
    // Trailing garbage is also structural corruption.
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_THROW(Trace::deserialize(padded), FatalError);
}

TEST(TraceFormat, RejectsCorruptedTrace)
{
    const std::vector<uint8_t> good =
        captureProgram(CompileOptions::d16()).serialize();

    {
        std::vector<uint8_t> bad = good;
        bad[0] ^= 0xff;  // header magic
        EXPECT_THROW(Trace::deserialize(bad), FatalError);
    }
    {
        std::vector<uint8_t> bad = good;
        bad[4] = 99;  // unsupported version
        EXPECT_THROW(Trace::deserialize(bad), FatalError);
    }
    {
        std::vector<uint8_t> bad = good;
        bad[bad.size() - 1] ^= 0xff;  // trailer magic
        EXPECT_THROW(Trace::deserialize(bad), FatalError);
    }
}

} // namespace
