/**
 * @file
 * Cache-model tests against hand-traced reference behaviour:
 * sub-block (sector) semantics, wrap-around prefetch, write-allocate
 * write-back policy, LRU replacement, and traffic accounting.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/memory.hh"
#include "support/error.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::mem;

CacheConfig
smallConfig()
{
    CacheConfig c;
    c.sizeBytes = 256;
    c.blockBytes = 32;
    c.subBlockBytes = 8;
    c.assoc = 1;
    return c;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallConfig());
    EXPECT_FALSE(c.read(0x100, 4));
    EXPECT_TRUE(c.read(0x100, 4));
    EXPECT_EQ(c.stats().reads, 2u);
    EXPECT_EQ(c.stats().readMisses, 1u);
    EXPECT_DOUBLE_EQ(c.stats().readMissRate(), 0.5);
}

TEST(Cache, ReadMissFillsWholeBlockViaPrefetch)
{
    Cache c(smallConfig());
    EXPECT_FALSE(c.read(0x100, 4));
    // The wrap-around prefetch filled all four 8-byte sub-blocks.
    EXPECT_TRUE(c.read(0x108, 4));
    EXPECT_TRUE(c.read(0x110, 4));
    EXPECT_TRUE(c.read(0x118, 4));
    EXPECT_EQ(c.stats().wordsIn, 8u);  // 32 bytes = 8 words
}

TEST(Cache, WriteMissFillsOnlyItsSubBlock)
{
    Cache c(smallConfig());
    EXPECT_FALSE(c.write(0x100, 4));
    // Same sub-block: hit.
    EXPECT_TRUE(c.read(0x104, 4));
    // Different sub-block of the same block: sub-block miss (tag hit).
    EXPECT_FALSE(c.read(0x108, 4));
    EXPECT_EQ(c.stats().readMisses, 1u);
    EXPECT_EQ(c.stats().writeMisses, 1u);
    // Write fill: 2 words; then read miss fills the remaining three
    // sub-blocks (one demand + prefetch of the other two invalid).
    EXPECT_EQ(c.stats().wordsIn, 2u + 6u);
}

TEST(Cache, SubBlockMissAfterWriteCountsAsMiss)
{
    Cache c(smallConfig());
    c.write(0x100, 4);
    c.read(0x118, 4);  // sub-block miss within a resident block
    EXPECT_EQ(c.stats().misses(), 2u);
}

TEST(Cache, DirectMappedConflict)
{
    // 256-byte direct-mapped with 32-byte blocks: addresses 256 apart
    // conflict.
    Cache c(smallConfig());
    EXPECT_FALSE(c.read(0x000, 4));
    EXPECT_FALSE(c.read(0x100, 4));  // evicts 0x000
    EXPECT_FALSE(c.read(0x000, 4));  // miss again
    EXPECT_EQ(c.stats().readMisses, 3u);
}

TEST(Cache, TwoWayLruAvoidsConflict)
{
    CacheConfig cfg = smallConfig();
    cfg.assoc = 2;
    Cache c(cfg);
    EXPECT_FALSE(c.read(0x000, 4));
    EXPECT_FALSE(c.read(0x100, 4));  // other way
    EXPECT_TRUE(c.read(0x000, 4));   // both resident
    EXPECT_TRUE(c.read(0x100, 4));
    EXPECT_FALSE(c.read(0x200, 4));  // evicts LRU = 0x000
    EXPECT_FALSE(c.read(0x000, 4));  // evicts LRU = 0x100
    EXPECT_FALSE(c.read(0x100, 4));
}

TEST(Cache, LruVictimSelection)
{
    CacheConfig cfg = smallConfig();
    cfg.assoc = 2;
    Cache c(cfg);
    c.read(0x000, 4);
    c.read(0x100, 4);
    c.read(0x000, 4);   // 0x100 is now LRU
    c.read(0x200, 4);   // evicts 0x100
    EXPECT_TRUE(c.read(0x000, 4));
    EXPECT_FALSE(c.read(0x100, 4));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    Cache c(smallConfig());
    c.write(0x100, 4);            // dirty sub-block (2 words in)
    c.read(0x200, 4);             // conflicts: evicts dirty block
    EXPECT_EQ(c.stats().wordsOut, 2u);  // one dirty 8-byte sub-block
}

TEST(Cache, CleanEvictionWritesNothing)
{
    Cache c(smallConfig());
    c.read(0x100, 4);
    c.read(0x200, 4);  // evicts clean block
    EXPECT_EQ(c.stats().wordsOut, 0u);
}

TEST(Cache, WriteHitMakesDirtyOnlyThatSubBlock)
{
    Cache c(smallConfig());
    c.read(0x100, 4);   // whole block resident
    c.write(0x108, 4);  // dirty second sub-block (hit)
    EXPECT_EQ(c.stats().writeMisses, 0u);
    c.read(0x200, 4);   // evict
    EXPECT_EQ(c.stats().wordsOut, 2u);
}

TEST(Cache, FlushWritesBackDirty)
{
    Cache c(smallConfig());
    c.write(0x100, 4);
    c.write(0x118, 4);
    c.flush();
    EXPECT_EQ(c.stats().wordsOut, 4u);  // two dirty sub-blocks
    EXPECT_FALSE(c.read(0x100, 4));     // invalidated
}

TEST(Cache, WriteThroughCountsWordTraffic)
{
    CacheConfig cfg = smallConfig();
    cfg.writeBack = false;
    Cache c(cfg);
    c.read(0x100, 4);    // fill block
    c.write(0x100, 4);   // hit: 1 word through
    c.write(0x104, 4);   // hit: 1 word through
    EXPECT_EQ(c.stats().wordsOut, 2u);
    c.flush();
    EXPECT_EQ(c.stats().wordsOut, 2u);  // nothing dirty
}

TEST(Cache, NoWriteAllocate)
{
    CacheConfig cfg = smallConfig();
    cfg.writeAllocate = false;
    cfg.writeBack = false;
    Cache c(cfg);
    EXPECT_FALSE(c.write(0x100, 4));
    // Still not resident.
    EXPECT_FALSE(c.read(0x100, 4));
    EXPECT_EQ(c.stats().wordsOut, 1u);
    EXPECT_EQ(c.stats().wordsIn, 8u);  // only the read miss filled
}

TEST(Cache, NoPrefetchMode)
{
    CacheConfig cfg = smallConfig();
    cfg.prefetchWrapAround = false;
    Cache c(cfg);
    EXPECT_FALSE(c.read(0x100, 4));
    EXPECT_FALSE(c.read(0x108, 4));  // not prefetched
    EXPECT_EQ(c.stats().wordsIn, 4u);
}

TEST(Cache, GeometryValidation)
{
    CacheConfig bad = smallConfig();
    bad.sizeBytes = 3000;
    EXPECT_THROW(Cache{bad}, FatalError);
    bad = smallConfig();
    bad.subBlockBytes = 2;
    EXPECT_THROW(Cache{bad}, FatalError);
    bad = smallConfig();
    bad.blockBytes = 512;  // bigger than the cache
    EXPECT_THROW(Cache{bad}, FatalError);
    bad = smallConfig();
    bad.subBlockBytes = 64;  // bigger than block
    EXPECT_THROW(Cache{bad}, FatalError);
}

TEST(Cache, AccessValidation)
{
    Cache c(smallConfig());
    EXPECT_THROW(c.read(0x100, 16), PanicError);  // exceeds sub-block
    EXPECT_THROW(c.read(0x106, 4), PanicError);   // spans sub-blocks
}

/** Sequential-scan miss rate equals blockBytes/stride geometry. */
class CacheScan : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(CacheScan, SequentialMissRateMatchesGeometry)
{
    const auto [blockBytes, subBytes] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = 4096;
    cfg.blockBytes = blockBytes;
    cfg.subBlockBytes = subBytes;
    Cache c(cfg);
    const int n = 2048;  // words, half the cache: no capacity misses
    for (int i = 0; i < n; ++i)
        c.read(static_cast<uint32_t>(4 * i), 4);
    // One miss per block thanks to wrap-around prefetch.
    EXPECT_EQ(c.stats().readMisses,
              static_cast<uint64_t>(n * 4 / blockBytes));
    EXPECT_EQ(c.stats().wordsIn, static_cast<uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheScan,
    ::testing::Values(std::tuple{8, 4}, std::tuple{8, 8},
                      std::tuple{16, 8}, std::tuple{32, 4},
                      std::tuple{32, 8}, std::tuple{32, 32},
                      std::tuple{64, 8}, std::tuple{64, 64}));

/** Bigger caches never miss more on a loop trace (LRU inclusion holds
 *  per associativity when sets nest; checked for a simple loop). */
TEST(Cache, MissRateMonotoneInSizeForLoopTrace)
{
    uint64_t prevMisses = ~0ull;
    for (uint32_t size : {1024u, 2048u, 4096u, 8192u, 16384u}) {
        CacheConfig cfg;
        cfg.sizeBytes = size;
        cfg.blockBytes = 32;
        cfg.subBlockBytes = 8;
        Cache c(cfg);
        // Loop over a 6 KB instruction-like footprint, 40 passes.
        for (int pass = 0; pass < 40; ++pass)
            for (uint32_t a = 0; a < 6144; a += 4)
                c.read(0x1000 + a, 4);
        EXPECT_LE(c.stats().readMisses, prevMisses) << size;
        prevMisses = c.stats().readMisses;
    }
}

TEST(Memory, ReadWriteRoundTrip)
{
    Memory m(4096);
    m.write32(0x100, 0xdeadbeef);
    EXPECT_EQ(m.read32(0x100), 0xdeadbeefu);
    EXPECT_EQ(m.read16(0x100), 0xbeefu);
    EXPECT_EQ(m.read16(0x102), 0xdeadu);
    EXPECT_EQ(m.read8(0x103), 0xdeu);
    m.write16(0x200, 0x1234);
    m.write8(0x202, 0x56);
    EXPECT_EQ(m.read32(0x200), 0x00561234u);
}

TEST(Memory, AlignmentAndBoundsEnforced)
{
    Memory m(4096);
    EXPECT_THROW(m.read32(2), FatalError);
    EXPECT_THROW(m.read16(1), FatalError);
    EXPECT_THROW(m.read32(4096), FatalError);
    EXPECT_THROW(m.write32(4094, 0), FatalError);
    EXPECT_NO_THROW(m.read8(4095));
}

TEST(Memory, ReadString)
{
    Memory m(4096);
    const char *s = "hello";
    for (int i = 0; i < 6; ++i)
        m.write8(0x300 + i, static_cast<uint8_t>(s[i]));
    EXPECT_EQ(m.readString(0x300), "hello");
}

} // namespace
