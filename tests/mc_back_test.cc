/**
 * @file
 * Compiler back-end unit tests: optimization passes, liveness, the
 * legalizer, and the register allocator, checked on hand-built IR and
 * on small compiled programs.
 */

#include <gtest/gtest.h>

#include "mc/irgen.hh"
#include "mc/legalize.hh"
#include "mc/liveness.hh"
#include "mc/opt.hh"
#include "mc/parser.hh"
#include "mc/regalloc.hh"
#include "mc/sema.hh"

namespace
{

using namespace d16sim;
using namespace d16sim::mc;

IrModule
toIr(std::string_view src, int optLevel = 2)
{
    Program p = parseProgram(src);
    analyze(p);
    IrModule m = generateIr(p);
    for (IrFunction &fn : m.functions)
        optimize(fn, optLevel);
    return m;
}

int
countOps(const IrFunction &fn, IrOp op)
{
    int n = 0;
    for (const auto &bb : fn.blocks)
        for (const auto &i : bb.insts)
            if (i.op == op)
                ++n;
    return n;
}

int
countInsts(const IrFunction &fn)
{
    int n = 0;
    for (const auto &bb : fn.blocks)
        n += static_cast<int>(bb.insts.size());
    return n;
}

// ---------------------------------------------------------------------
// Optimization passes
// ---------------------------------------------------------------------

TEST(Opt, ConstantFolding)
{
    IrModule m = toIr("int f() { return 3 * 4 + 10 / 2 - (7 & 5); }\n");
    const IrFunction &f = m.functions[0];
    // Everything folds to a single constant (12 + 5 - 5 = 12).
    EXPECT_EQ(countOps(f, IrOp::Mul), 0);
    EXPECT_EQ(countOps(f, IrOp::DivS), 0);
    bool found = false;
    for (const auto &bb : f.blocks)
        for (const auto &i : bb.insts)
            if (i.op == IrOp::MovImm && i.imm == 12)
                found = true;
    EXPECT_TRUE(found);
}

TEST(Opt, DeadCodeElimination)
{
    IrModule m = toIr(R"(
int f(int a) {
    int unused = a * 77;
    int alsoUnused = unused + 1;
    return a;
}
)");
    // The dead multiply chain disappears.
    EXPECT_EQ(countOps(m.functions[0], IrOp::Mul), 0);
    EXPECT_LE(countInsts(m.functions[0]), 3);
}

TEST(Opt, ConstantBranchFolds)
{
    IrModule m = toIr(R"(
int f(int a) {
    if (1 < 2) return a + 1;
    return a * 1000;  /* unreachable: block removed */
}
)");
    EXPECT_EQ(countOps(m.functions[0], IrOp::Br), 0);
    EXPECT_EQ(countOps(m.functions[0], IrOp::BrCmp), 0);
    EXPECT_EQ(countOps(m.functions[0], IrOp::Mul), 0);
}

TEST(Opt, LocalCseRemovesRedundantLoads)
{
    Program p = parseProgram(R"(
int g;
int f() { return g + g; }
)");
    analyze(p);
    IrModule m = generateIr(p);
    localCse(m.functions[0]);
    eliminateDeadCode(m.functions[0]);
    EXPECT_EQ(countOps(m.functions[0], IrOp::Load), 1);
}

TEST(Opt, StoreKillsLoadCse)
{
    Program p = parseProgram(R"(
int g;
int f(int v) { int a = g; g = v; return a + g; }
)");
    analyze(p);
    IrModule m = generateIr(p);
    localCse(m.functions[0]);
    eliminateDeadCode(m.functions[0]);
    // The load after the store must survive.
    EXPECT_EQ(countOps(m.functions[0], IrOp::Load), 2);
}

TEST(Opt, LicmHoistsInvariantMultiply)
{
    IrModule m = toIr(R"(
int f(int a, int n) {
    int i, s = 0;
    for (i = 0; i < n; i++)
        s += i & (a * 3 + 1);   /* a*3+1 is loop invariant */
    return s;
}
)");
    const IrFunction &f = m.functions[0];
    // The multiply must sit in a block that is not part of the loop
    // (the loop is the strongly-connected region; entry/preheader
    // blocks execute once). Heuristic check: the Mul's block has no
    // back edge into it.
    int mulBlock = -1;
    for (const auto &bb : f.blocks)
        for (const auto &i : bb.insts)
            if (i.op == IrOp::Mul)
                mulBlock = bb.id;
    ASSERT_GE(mulBlock, 0);
    for (const auto &bb : f.blocks)
        for (int s : bb.successors())
            if (s == mulBlock) {
                EXPECT_LT(bb.id, mulBlock) << "loop back edge into Mul";
            }
}

// ---------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------

TEST(Liveness, RegSetBasics)
{
    RegSet s(200);
    EXPECT_FALSE(s.contains(150));
    s.add(150);
    s.add(3);
    EXPECT_TRUE(s.contains(150));
    EXPECT_EQ(s.count(), 2);
    RegSet t(200);
    t.add(3);
    t.add(9);
    EXPECT_TRUE(s.unionWith(t));
    EXPECT_FALSE(s.unionWith(t));  // no change second time
    EXPECT_EQ(s.count(), 3);
    s.remove(3);
    EXPECT_FALSE(s.contains(3));
    int seen = 0;
    s.forEach([&](int) { ++seen; });
    EXPECT_EQ(seen, 2);
}

TEST(Liveness, LoopKeepsAccumulatorLive)
{
    IrModule m = toIr(R"(
int f(int n) {
    int s = 0, i;
    for (i = 0; i < n; i++) s += i;
    return s;
}
)");
    const IrFunction &f = m.functions[0];
    const Liveness lv = computeLiveness(f);
    // Some register is live around the loop back edge: at least one
    // block has a nonempty live-out.
    int maxLive = 0;
    for (const auto &out : lv.liveOut)
        maxLive = std::max(maxLive, out.count());
    EXPECT_GE(maxLive, 2);  // accumulator + induction variable
}

// ---------------------------------------------------------------------
// Legalizer
// ---------------------------------------------------------------------

TEST(Legalize, D16HoistsWideImmediates)
{
    Program p = parseProgram("int f(int a) { return a + 1000; }\n");
    analyze(p);
    IrModule m = generateIr(p);
    const MachineEnv env(CompileOptions::d16());
    legalize(m.functions[0], env);
    // a + 1000 becomes movi + register add.
    EXPECT_EQ(countOps(m.functions[0], IrOp::MovImm), 1);
    bool regAdd = false;
    for (const auto &bb : m.functions[0].blocks)
        for (const auto &i : bb.insts)
            if (i.op == IrOp::Add && i.b.isReg())
                regAdd = true;
    EXPECT_TRUE(regAdd);
}

TEST(Legalize, DLXeKeepsWideImmediates)
{
    Program p = parseProgram("int f(int a) { return a + 1000; }\n");
    analyze(p);
    IrModule m = generateIr(p);
    const MachineEnv env(CompileOptions::dlxe());
    legalize(m.functions[0], env);
    EXPECT_EQ(countOps(m.functions[0], IrOp::MovImm), 0);
}

TEST(Legalize, MulBecomesShiftAddOrCall)
{
    {
        Program p = parseProgram("int f(int a) { return a * 8; }\n");
        analyze(p);
        IrModule m = generateIr(p);
        const MachineEnv env(CompileOptions::dlxe());
        legalize(m.functions[0], env);
        EXPECT_EQ(countOps(m.functions[0], IrOp::Mul), 0);
        EXPECT_EQ(countOps(m.functions[0], IrOp::Call), 0);
        EXPECT_GE(countOps(m.functions[0], IrOp::Shl), 1);
    }
    {
        Program p = parseProgram("int f(int a, int b) { return a * b; }\n");
        analyze(p);
        IrModule m = generateIr(p);
        const MachineEnv env(CompileOptions::dlxe());
        legalize(m.functions[0], env);
        EXPECT_EQ(countOps(m.functions[0], IrOp::Mul), 0);
        EXPECT_EQ(countOps(m.functions[0], IrOp::Call), 1);
    }
}

TEST(Legalize, CompareBranchFusion)
{
    Program p = parseProgram(R"(
int f(int a, int b) {
    if (a < b) return 1;
    return 2;
}
)");
    analyze(p);
    IrModule m = generateIr(p);
    optimize(m.functions[0], 2);
    const MachineEnv env(CompileOptions::d16());
    legalize(m.functions[0], env);
    EXPECT_EQ(countOps(m.functions[0], IrOp::BrCmp), 1);
    EXPECT_EQ(countOps(m.functions[0], IrOp::Cmp), 0);
}

TEST(Legalize, D16SwapsUnavailableConditions)
{
    Program p = parseProgram(R"(
int f(int a, int b) { return a > b; }
)");
    analyze(p);
    IrModule m = generateIr(p);
    const MachineEnv env(CompileOptions::d16());
    legalize(m.functions[0], env);
    for (const auto &bb : m.functions[0].blocks)
        for (const auto &i : bb.insts)
            if (i.op == IrOp::Cmp || i.op == IrOp::BrCmp) {
                EXPECT_TRUE(d16HasCond(i.cond))
                    << isa::condName(i.cond);
            }
}

TEST(Legalize, FpMemorySplitsThroughGprs)
{
    Program p = parseProgram(R"(
double g;
double f() { return g; }
)");
    analyze(p);
    IrModule m = generateIr(p);
    const MachineEnv env(CompileOptions::dlxe());
    legalize(m.functions[0], env);
    const IrFunction &f = m.functions[0];
    // 8-byte FP load becomes two word loads + mif.l/mif.h.
    EXPECT_EQ(countOps(f, IrOp::Load), 2);
    EXPECT_EQ(countOps(f, IrOp::MifL), 1);
    EXPECT_EQ(countOps(f, IrOp::MifH), 1);
}

TEST(Legalize, TwoAddressTying)
{
    Program p = parseProgram("int f(int a, int b) { return a + b; }\n");
    analyze(p);
    IrModule m = generateIr(p);
    const MachineEnv env(CompileOptions::dlxe(32, false));
    legalize(m.functions[0], env);
    // Every tied binop has dst == a.
    for (const auto &bb : m.functions[0].blocks)
        for (const auto &i : bb.insts)
            if (i.op == IrOp::Add && i.dst.valid()) {
                EXPECT_EQ(i.dst.id, i.a.id);
            }
}

// ---------------------------------------------------------------------
// Register allocation
// ---------------------------------------------------------------------

TEST(RegAlloc, AssignsOnlyAllocatableRegisters)
{
    Program p = parseProgram(R"(
int f(int a, int b, int c, int d) {
    return a * b + c * d + a * c + b * d;
}
)");
    analyze(p);
    IrModule m = generateIr(p);
    for (const auto &optsPair :
         {CompileOptions::d16(), CompileOptions::dlxe(16, true),
          CompileOptions::dlxe()}) {
        IrModule copy = generateIr(p);
        IrFunction &fn = copy.functions[0];
        optimize(fn, 2);
        const MachineEnv env(optsPair);
        legalize(fn, env);
        lowerCallsAbi(fn, env);
        const Allocation alloc = allocateRegisters(fn, env);
        for (int v = 0; v < fn.numVRegs(); ++v) {
            const int c = alloc.color[v];
            if (c < 0)
                continue;
            const RegClass cls = fn.vregClass[v];
            const auto &pool = env.allocatable(cls);
            const bool inPool =
                std::find(pool.begin(), pool.end(), c) != pool.end();
            const bool dedicated =
                cls == RegClass::Int &&
                (c == env.retReg(RegClass::Int) || c == env.raReg() ||
                 c == 2 || c == 3 || c == 4 || c == 5);
            EXPECT_TRUE(inPool || dedicated)
                << optsPair.name() << " v" << v << " -> " << c;
        }
    }
}

TEST(RegAlloc, CoalescesMostAbiMoves)
{
    Program p = parseProgram(R"(
int add2(int a, int b) { return a + b; }
)");
    analyze(p);
    IrModule m = generateIr(p);
    IrFunction &fn = m.functions[0];
    optimize(fn, 2);
    const MachineEnv env(CompileOptions::dlxe());
    legalize(fn, env);
    lowerCallsAbi(fn, env);
    const Allocation alloc = allocateRegisters(fn, env);
    // add2's params arrive in r2/r3 and the result leaves in r2; all
    // ABI moves should coalesce away.
    EXPECT_GE(alloc.coalescedMoves, 2);
    EXPECT_EQ(alloc.spilledRegs, 0);
}

TEST(RegAlloc, SpillsConvergeUnderExtremePressure)
{
    // 30 live values on a 12-register machine.
    std::string src = "int f() {\n";
    for (int i = 0; i < 30; ++i)
        src += "  int v" + std::to_string(i) + " = " +
               std::to_string(i * 3 + 1) + ";\n";
    // Keep them all live across a statement barrier.
    src += "  int s = 0;\n  int i;\n  for (i = 0; i < 3; i++) {\n";
    for (int i = 0; i < 30; ++i)
        src += "    s += v" + std::to_string(i) + ";\n";
    for (int i = 0; i < 30; ++i)
        src += "    v" + std::to_string(i) + " ^= s;\n";
    src += "  }\n  return s;\n}\n";

    Program p = parseProgram(src);
    analyze(p);
    IrModule m = generateIr(p);
    IrFunction &fn = m.functions[0];
    optimize(fn, 2);
    const MachineEnv env(CompileOptions::d16());
    legalize(fn, env);
    lowerCallsAbi(fn, env);
    const Allocation alloc = allocateRegisters(fn, env);
    EXPECT_GT(alloc.spilledRegs, 0);
    // Every used vreg ends with a color.
    for (const auto &bb : fn.blocks) {
        for (const auto &inst : bb.insts) {
            forEachUse(inst, [&](VReg r) {
                EXPECT_GE(alloc.color[r.id], 0);
            });
        }
    }
}

} // namespace
